package cellpilot

// Benchmarks regenerating the paper's evaluation (Section V). Each
// benchmark iteration is one PingPong round trip on the simulated
// cluster; the reported custom metrics are the paper's quantities:
// virtual one-way latency in microseconds (Table II, Figure 5) and
// throughput in MB/s (Figure 6). Wall-clock ns/op measures the simulator
// itself and is not a paper quantity.
//
//	go test -bench BenchmarkTable2 -benchmem
//	go test -bench . -benchmem
//
// The per-experiment index lives in DESIGN.md §4; paper-vs-measured
// numbers are recorded in EXPERIMENTS.md.

import (
	"fmt"
	"testing"

	"cellpilot/internal/sim"
	"cellpilot/internal/workload"
)

// runPingPong drives one Table II cell with b.N round trips.
func runPingPong(b *testing.B, cfg workload.PingPongConfig) {
	b.Helper()
	cfg.Reps = b.N
	res, err := workload.PingPong(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.OneWay.Micros(), "vus/oneway")
	b.ReportMetric(res.ThroughputMBps, "MB/s")
}

// BenchmarkTable2 regenerates every cell of paper Table II (and the bars
// of Figure 5): 5 channel types × {1, 1600} bytes × 3 methods.
func BenchmarkTable2(b *testing.B) {
	for typ := 1; typ <= 5; typ++ {
		for _, bytes := range []int{1, 1600} {
			for _, m := range []workload.Method{
				workload.MethodCellPilot, workload.MethodDMA, workload.MethodCopy,
			} {
				b.Run(fmt.Sprintf("type%d/%dB/%s", typ, bytes, m), func(b *testing.B) {
					runPingPong(b, workload.PingPongConfig{Type: typ, Bytes: bytes, Method: m})
				})
			}
		}
	}
}

// BenchmarkFigure6 regenerates the Figure 6 throughput series: the
// 1600-byte (100 long double) array across all types and methods.
func BenchmarkFigure6(b *testing.B) {
	for typ := 1; typ <= 5; typ++ {
		for _, m := range []workload.Method{
			workload.MethodCellPilot, workload.MethodDMA, workload.MethodCopy,
		} {
			b.Run(fmt.Sprintf("type%d/%s", typ, m), func(b *testing.B) {
				runPingPong(b, workload.PingPongConfig{Type: typ, Bytes: 1600, Method: m})
			})
		}
	}
}

// BenchmarkFootprint regenerates the Section V memory comparison: the SPE
// local-store budget under CellPilot's 10336-byte runtime vs DaCS's
// 36600-byte library.
func BenchmarkFootprint(b *testing.B) {
	for _, row := range workload.Footprints(nil) {
		row := row
		b.Run(row.Library, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows := workload.Footprints(nil)
				if rows[0].UsableLS <= rows[1].UsableLS {
					b.Fatal("CellPilot must leave more usable local store than DaCS")
				}
			}
			b.ReportMetric(float64(row.UsableLS), "usableLSbytes")
			b.ReportMetric(float64(row.MaxMessage), "maxmsgbytes")
		})
	}
}

// BenchmarkAblationType2Path is ablation A1: the type-2 PPE↔Co-Pilot leg
// over local MPI (the paper's design) versus a direct shared-memory copy
// (the speed-up its Section V analysis predicts).
func BenchmarkAblationType2Path(b *testing.B) {
	for _, direct := range []bool{false, true} {
		name := "local-mpi"
		if direct {
			name = "direct-copy"
		}
		for _, bytes := range []int{1, 1600} {
			b.Run(fmt.Sprintf("%s/%dB", name, bytes), func(b *testing.B) {
				runPingPong(b, workload.PingPongConfig{
					Type: 2, Bytes: bytes, Method: workload.MethodCellPilot, DirectLocal: direct,
				})
			})
		}
	}
}

// BenchmarkAblationCoPilotPerCell is ablation A4: contention on a
// dual-Cell blade, one Co-Pilot per node (the paper's design) vs one per
// Cell processor.
func BenchmarkAblationCoPilotPerCell(b *testing.B) {
	for _, perCell := range []bool{false, true} {
		name := "per-node"
		if perCell {
			name = "per-cell"
		}
		for _, pairs := range []int{2, 6} {
			b.Run(fmt.Sprintf("%s/pairs%d", name, pairs), func(b *testing.B) {
				var total sim.Time
				for i := 0; i < b.N; i++ {
					t, err := workload.CoPilotContention(perCell, pairs, 4)
					if err != nil {
						b.Fatal(err)
					}
					total = t
				}
				b.ReportMetric(total.Micros(), "vus/run")
			})
		}
	}
}

// BenchmarkAblationPollInterval is ablation A2: type-4 latency versus the
// Co-Pilot mailbox polling interval.
func BenchmarkAblationPollInterval(b *testing.B) {
	for _, iv := range []sim.Time{
		2 * sim.Microsecond, 5 * sim.Microsecond, 14 * sim.Microsecond,
		40 * sim.Microsecond, 80 * sim.Microsecond,
	} {
		b.Run(iv.String(), func(b *testing.B) {
			runPingPong(b, workload.PingPongConfig{
				Type: 4, Bytes: 1, Method: workload.MethodCellPilot, PollInterval: iv,
			})
		})
	}
}

// BenchmarkAblationEagerThreshold is ablation A3: type-1 latency across
// payload sizes under different MPI eager/rendezvous thresholds.
func BenchmarkAblationEagerThreshold(b *testing.B) {
	for _, th := range []int{1, 4096, 1 << 20} {
		for _, bytes := range []int{64, 1600, 65536} {
			b.Run(fmt.Sprintf("thr%d/%dB", th, bytes), func(b *testing.B) {
				runPingPong(b, workload.PingPongConfig{
					Type: 1, Bytes: bytes, Method: workload.MethodCellPilot, EagerThreshold: th,
				})
			})
		}
	}
}

// BenchmarkScatterSearch measures the Section VI case study end to end:
// virtual completion time of the SPE-offloaded heuristic per worker-farm
// size.
func BenchmarkScatterSearch(b *testing.B) {
	for _, workers := range []int{1, 4, 8, 16} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			var elapsed sim.Time
			for i := 0; i < b.N; i++ {
				res, err := workload.ScatterSearch(workload.ScatterConfig{
					Items: 128, Workers: workers, Iterations: 2, Seed: 11,
				})
				if err != nil {
					b.Fatal(err)
				}
				elapsed = res.Elapsed
			}
			b.ReportMetric(elapsed.Micros(), "vus/run")
		})
	}
}

// BenchmarkMatMul measures the block matrix-multiplication case study:
// virtual completion time per worker count, exposing where the problem
// flips from compute-bound to communication-bound.
func BenchmarkMatMul(b *testing.B) {
	for _, workers := range []int{1, 4, 8, 16} {
		b.Run(fmt.Sprintf("n128/workers%d", workers), func(b *testing.B) {
			var elapsed sim.Time
			for i := 0; i < b.N; i++ {
				res, err := workload.MatMul(workload.MatMulConfig{N: 128, Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				elapsed = res.Elapsed
			}
			b.ReportMetric(elapsed.Micros(), "vus/run")
		})
	}
}

// BenchmarkIMB runs the wider IMB-MPI1 pattern set (the paper's
// measurement suite) over the raw simulated transport.
func BenchmarkIMB(b *testing.B) {
	for _, pat := range []workload.IMBPattern{
		workload.IMBPingPong, workload.IMBPingPing, workload.IMBSendRecv,
		workload.IMBExchange, workload.IMBBcast, workload.IMBAllreduce, workload.IMBBarrier,
	} {
		ranks := 8
		if pat == workload.IMBPingPong || pat == workload.IMBPingPing {
			ranks = 2
		}
		b.Run(fmt.Sprintf("%s/%dranks", pat, ranks), func(b *testing.B) {
			res, err := workload.IMB(workload.IMBConfig{
				Pattern: pat, Ranks: ranks, Bytes: 1600, Reps: b.N,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.AvgTime.Micros(), "vus/op")
		})
	}
}

// BenchmarkStencil measures the halo-exchange workload: virtual time for
// a fixed-size domain as the SPE ring grows (communication/computation
// balance of nearest-neighbour codes).
func BenchmarkStencil(b *testing.B) {
	for _, workers := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			var elapsed sim.Time
			for i := 0; i < b.N; i++ {
				res, err := workload.Stencil(workload.StencilConfig{
					Workers: workers, CellsPerWorker: 256 / workers, Iterations: 20,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.MaxErr != 0 {
					b.Fatal("stencil diverged")
				}
				elapsed = res.Elapsed
			}
			b.ReportMetric(elapsed.Micros(), "vus/run")
		})
	}
}

// BenchmarkCMLBaseline measures the Cell Messaging Layer baseline on the
// remote SPE↔SPE exchange, for comparison with BenchmarkTable2/type5.
func BenchmarkCMLBaseline(b *testing.B) {
	for _, bytes := range []int{1, 1600} {
		b.Run(fmt.Sprintf("%dB", bytes), func(b *testing.B) {
			oneWay, err := workload.CMLPingPong(bytes, b.N)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(oneWay.Micros(), "vus/oneway")
		})
	}
}

// BenchmarkSimulatorThroughput measures the simulator substrate itself:
// simulated messages per wall-clock second on the type-5 path (the most
// event-intensive protocol). This is an engineering metric, not a paper
// figure.
func BenchmarkSimulatorThroughput(b *testing.B) {
	runPingPong(b, workload.PingPongConfig{Type: 5, Bytes: 1600, Method: workload.MethodCellPilot})
}
