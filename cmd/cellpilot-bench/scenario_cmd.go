package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"cellpilot/internal/scenario"
)

// The scenario verbs: `cellpilot-bench run scenarios/<name>.yaml` executes
// named scenario files, `cellpilot-bench validate` sweeps the checked-in
// scenarios/ library and gates on assertions plus golden fingerprints.
// Verbs dispatch before the flag-based experiment surface, so the two
// entry styles coexist.

// scenarioVerb recognizes a scenario subcommand in os.Args[1].
func scenarioVerb(arg string) bool {
	return arg == "run" || arg == "validate"
}

// scenarioCmd runs one verb and returns the process exit code.
func scenarioCmd(verb string, args []string) int {
	fs := flag.NewFlagSet("cellpilot-bench "+verb, flag.ExitOnError)
	quick := fs.Bool("quick", false, "shrink measurement workloads for CI (skips golden comparison; chaos fault arithmetic is untouched)")
	update := fs.Bool("update-golden", false, "rewrite golden fingerprints from this run (full mode only)")
	dir := fs.String("scenarios", "scenarios", "scenario library directory (validate's default file set)")
	showFingerprint := fs.Bool("fingerprint", false, "print each scenario's outcome fingerprint")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: cellpilot-bench %s [flags] [scenario.yaml ...]\n", verb)
		fmt.Fprintf(fs.Output(), "  run      executes the named scenario files (at least one)\n")
		fmt.Fprintf(fs.Output(), "  validate executes the named files, or the whole -scenarios library\n\n")
		fs.PrintDefaults()
	}
	fs.Parse(args)

	if *update && *quick {
		fmt.Fprintln(os.Stderr, "error: -update-golden needs a full run; drop -quick (quick outcomes are not golden-comparable)")
		return 2
	}

	files := fs.Args()
	if verb == "run" && len(files) == 0 {
		fmt.Fprintln(os.Stderr, "error: run needs at least one scenario file (try: cellpilot-bench validate for the whole library)")
		return 2
	}
	if len(files) == 0 {
		var err error
		files, err = scenario.ListFiles(*dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			return 2
		}
	}

	type row struct {
		name, status, detail string
		asserts              int
		elapsed              time.Duration
	}
	var rows []row
	failures := 0
	for _, file := range files {
		start := time.Now()
		r := row{name: file}
		name, detail, violations := runScenarioFile(file, scenario.Options{Quick: *quick}, *update, *showFingerprint)
		if name != "" {
			r.name = name
		}
		r.elapsed = time.Since(start).Round(time.Millisecond)
		r.detail = detail
		switch {
		case len(violations) > 0 || strings.HasPrefix(detail, "error"):
			r.status = "FAIL"
			failures++
		default:
			r.status = "PASS"
		}
		if s, err := scenario.Load(file); err == nil {
			r.asserts = len(s.Assertions)
		}
		rows = append(rows, r)

		fmt.Printf("%s %-28s %2d asserts  %8s", r.status, r.name, r.asserts, r.elapsed)
		if r.detail != "" && len(violations) == 0 {
			fmt.Printf("  (%s)", r.detail)
		}
		fmt.Println()
		for _, v := range violations {
			fmt.Printf("     %s\n", strings.ReplaceAll(v, "\n", "\n     "))
		}
		if len(violations) == 0 && strings.HasPrefix(r.detail, "error") {
			fmt.Printf("     %s\n", r.detail)
		}
	}

	mode := "full"
	if *quick {
		mode = "quick (golden comparison skipped)"
	}
	fmt.Printf("\n%s: %d/%d scenarios passed [%s]\n", verb, len(rows)-failures, len(rows), mode)
	if failures > 0 {
		return 1
	}
	return 0
}

// runScenarioFile executes one scenario file end to end. It returns the
// scenario's name, a status detail ("golden recorded", "error: ...") and
// the rendered violations (assertion failures and golden mismatches).
func runScenarioFile(file string, opt scenario.Options, updateGolden, showFingerprint bool) (name, detail string, violations []string) {
	s, err := scenario.Load(file)
	if err != nil {
		return "", fmt.Sprintf("error: %v", err), nil
	}
	out, err := scenario.Run(s, opt)
	if err != nil {
		return s.Name, fmt.Sprintf("error: %v", err), nil
	}
	if showFingerprint {
		fmt.Printf("--- fingerprint: %s ---\n%s---\n", s.Name, out.Fingerprint)
	}
	for _, v := range scenario.Check(out) {
		violations = append(violations, v.String())
	}
	goldenPath := scenario.GoldenPath(file)
	switch {
	case opt.Quick:
		// Quick reps change the fingerprint; only full runs compare.
	case updateGolden:
		if err := scenario.WriteGolden(goldenPath, out.Fingerprint); err != nil {
			return s.Name, fmt.Sprintf("error: writing golden: %v", err), violations
		}
		detail = "golden recorded"
	default:
		diff, missing, err := scenario.CompareGolden(goldenPath, out.Fingerprint)
		switch {
		case err != nil:
			return s.Name, fmt.Sprintf("error: reading golden: %v", err), violations
		case missing:
			detail = "no golden yet — record with -update-golden"
		case diff != "":
			violations = append(violations, fmt.Sprintf("golden %s: %s", goldenPath, diff))
		}
	}
	return s.Name, detail, violations
}

// listScenarioLibrary prints the library with one-line descriptions.
func listScenarioLibrary(dir string) error {
	sums, err := scenario.ListSummaries(dir)
	if err != nil {
		return err
	}
	fmt.Printf("scenario library (%s):\n", dir)
	for _, s := range sums {
		fmt.Printf("  %-28s %s\n", s.Name, s.Description)
	}
	fmt.Printf("\nrun one:      cellpilot-bench run %s/<name>.yaml\nvalidate all: cellpilot-bench validate\n", dir)
	return nil
}
