// Command cellpilot-bench regenerates every table and figure of the
// paper's evaluation (Section V) on the simulated cluster:
//
//	cellpilot-bench -exp table2     # Table II, measured vs paper
//	cellpilot-bench -exp fig5       # Figure 5 latency bars
//	cellpilot-bench -exp fig6       # Figure 6 throughput
//	cellpilot-bench -exp loc        # Section IV.C lines-of-code comparison
//	cellpilot-bench -exp footprint  # Section V SPE memory footprint
//	cellpilot-bench -exp ablations  # A1-A3 design-choice ablations
//	cellpilot-bench -exp phases     # per-phase latency breakdown (spans)
//	cellpilot-bench -exp chaos      # seeded fault-injection sweep (robustness)
//	cellpilot-bench -exp pingpong   # metered five-type grid (live telemetry)
//	cellpilot-bench -exp profile    # virtual-time profiler breakdown
//	cellpilot-bench -exp sizesweep  # 64B..1MB grid, chunk engine off vs on
//	cellpilot-bench -exp guard      # regression gate vs results/BENCH_pingpong.json
//	cellpilot-bench -exp hostbench  # host-cost suite -> results/BENCH_hostbench.json
//	cellpilot-bench -exp kiloscale  # 1000-node sharded fleet, seq vs parallel arms
//	cellpilot-bench -exp all        # everything
//
// With -serve ADDR the process exposes OpenMetrics text at /metrics, a
// JSON snapshot at /metrics.json, the windowed telemetry timeline at
// /timeline.json, Go pprof profiles under /debug/pprof/ and expvar at
// /debug/vars over plain HTTP while the experiments run (the pingpong
// experiment publishes between batches, so a mid-run scrape watches the
// counters grow), and keeps serving after they finish.
//
// With -out DIR the pingpong experiment additionally writes a
// machine-readable BENCH_pingpong.json (ops, bytes, latency p50/p99 and
// bandwidth per channel type).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"cellpilot/internal/core"
	"cellpilot/internal/critpath"
	"cellpilot/internal/flowmap"
	"cellpilot/internal/hostbench"
	"cellpilot/internal/metrics"
	"cellpilot/internal/profile"
	"cellpilot/internal/sim"
	"cellpilot/internal/timeline"
	"cellpilot/internal/trace"
	"cellpilot/internal/workload"
)

// experiments is every value -exp accepts, alphabetized ("all" last).
// guard, hostbench and kiloscale run only when named explicitly (guard
// needs a committed baseline; the other two are long wall-clock
// measurements), so "all" excludes them.
var experiments = []string{
	"ablations", "chaos", "cml", "fig5", "fig6", "footprint", "guard",
	"hostbench", "imb", "kiloscale", "loc", "phases", "pingpong", "profile",
	"sizesweep", "table2", "all",
}

// validateExp rejects unknown experiment names up front — a typo must
// fail loudly, not silently run nothing.
func validateExp(exp string) error {
	for _, e := range experiments {
		if exp == e {
			return nil
		}
	}
	return fmt.Errorf("unknown experiment %q; valid experiments: %s (scenario files run via the verbs: cellpilot-bench run <file.yaml>, cellpilot-bench validate)",
		exp, strings.Join(experiments, ", "))
}

func main() {
	// Scenario verbs dispatch before the flag surface: `run <file.yaml>`
	// executes scenario files, `validate` sweeps the scenarios/ library.
	if len(os.Args) > 1 && scenarioVerb(os.Args[1]) {
		os.Exit(scenarioCmd(os.Args[1], os.Args[2:]))
	}
	exp := flag.String("exp", "all", "experiment: "+strings.Join(experiments, "|"))
	seed := flag.Int64("seed", 1, "chaos: base RNG seed for the fault schedule")
	chaosRuns := flag.Int("chaos-runs", 5, "chaos: number of seeded runs per scenario")
	reps := flag.Int("reps", 1000, "PingPong repetitions (paper: 1000)")
	repo := flag.String("repo", ".", "repository root (for the loc experiment)")
	chrome := flag.String("chrome", "", "phases: write Chrome trace JSON for -trace-type's run to this file")
	metricsOut := flag.String("metrics", "", "phases: write the metric registry JSON for -trace-type's run to this file")
	traceType := flag.Int("trace-type", 5, "phases/profile: channel type whose run the exporter flags capture")
	serve := flag.String("serve", "", "serve OpenMetrics (/metrics) and JSON (/metrics.json) on this address during and after the run")
	outDir := flag.String("out", "", "directory for machine-readable BENCH_<exp>.json results")
	folded := flag.String("folded", "", "profile: write folded-stack text for -trace-type's run to this file")
	pprofOut := flag.String("pprof", "", "profile: write a pprof profile for -trace-type's run to this file")
	baseline := flag.String("baseline", "results/BENCH_pingpong.json", "guard: committed baseline to compare against")
	hostBaseline := flag.String("host-baseline", "results/BENCH_hostbench.json", "guard/hostbench: committed host-cost baseline")
	tolerance := flag.Float64("tolerance", 0.10, "guard: relative regression tolerance (0.10 = +10%)")
	iters := flag.Int("iters", 0, "hostbench/guard: iterations per suite (0 = 3 for hostbench, 2 for the guard's re-measure)")
	quick := flag.Bool("quick", false, "hostbench/kiloscale: shrink workloads for CI")
	shards := flag.Int("shards", 0, "kiloscale: host worker shards for the parallel arm (0 = one shard per host core)")
	burn := flag.Int("burn-alloc", 0, "hostbench/guard: deliberately allocate N bytes per kernel event (guard self-test: the gate must trip and blame a subsystem)")
	gateWall := flag.Bool("gate-wall", false, "guard: make wall-clock metrics fatal, not advisory (use on quiet dedicated runners)")
	listScen := flag.Bool("list-scenarios", false, "print the scenario library with one-line descriptions and exit")
	scenDir := flag.String("scenarios", "scenarios", "scenario library directory (for -list-scenarios and the validate verb)")
	flag.Parse()

	if *listScen {
		if err := listScenarioLibrary(*scenDir); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := validateExp(*exp); err != nil {
		log.Fatal(err)
	}
	if *burn > 0 {
		hostbench.BurnAllocBytes = *burn
		fmt.Printf("burning %d bytes of allocation per kernel event (guard self-test)\n", *burn)
	}

	var pub *metrics.Publisher
	serving := false
	if *serve != "" {
		pub = metrics.NewPublisher()
		ln, err := net.Listen("tcp", *serve)
		if err != nil {
			log.Fatal(err)
		}
		go func() {
			if err := http.Serve(ln, pub.DebugHandler()); err != nil {
				log.Print(err)
			}
		}()
		serving = true
		fmt.Printf("serving metrics on http://%s/metrics (pprof at /debug/pprof/)\n", ln.Addr())
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }
	var rows []workload.Table2Row
	needGrid := want("table2") || want("fig5") || want("fig6")
	if needGrid {
		var err error
		rows, err = workload.Table2(*reps)
		if err != nil {
			log.Fatal(err)
		}
	}
	if want("table2") {
		fmt.Println(workload.FormatTable2(rows))
	}
	if want("fig5") {
		fmt.Println(workload.FormatFigure5(workload.Figure5(rows)))
	}
	if want("fig6") {
		fmt.Println(workload.FormatFigure6(workload.Figure6(rows)))
	}
	if want("loc") {
		lr, err := workload.CodeSizes(*repo)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loc: %v (run from the repository root or pass -repo)\n", err)
		} else {
			fmt.Println(workload.FormatCodeSizes(lr))
		}
	}
	if want("footprint") {
		fmt.Println(workload.FormatFootprints(workload.Footprints(nil)))
	}
	if want("ablations") {
		runAblations(*reps)
	}
	if want("imb") {
		runIMB(*reps / 4)
	}
	if want("cml") {
		runCML(*reps / 4)
	}
	if want("phases") {
		runPhases(*reps/10, *traceType, *chrome, *metricsOut)
	}
	if want("chaos") {
		runChaos(*seed, *chaosRuns)
	}
	if want("pingpong") {
		runPingPongGrid(*reps, pub, *outDir)
	}
	if want("profile") {
		runProfile(*reps/10, *traceType, *folded, *pprofOut)
	}
	if want("sizesweep") {
		runSizeSweep(*outDir)
	}
	if *exp == "guard" { // explicit only: needs a committed baseline file
		runGuard(*reps, *baseline, *tolerance)
		runHostGuard(*hostBaseline, *iters, *tolerance, *gateWall)
	}
	if *exp == "hostbench" { // explicit only: a long wall-clock measurement
		runHostBench(*outDir, *iters, *quick)
	}
	if *exp == "kiloscale" { // explicit only: a long wall-clock measurement
		runKiloscale(*shards, *seed, *quick)
	}
	if serving {
		fmt.Println("experiments done; still serving metrics (interrupt to exit)")
		select {}
	}
}

// runPingPongGrid runs the Table II pingpong grid (1600B payload, all five
// channel types) with one shared meter, publishing a registry snapshot to
// the live endpoint between batches so a concurrent scrape watches the
// counters grow, and optionally emits BENCH_pingpong.json.
func runPingPongGrid(reps int, pub *metrics.Publisher, outDir string) {
	if reps < 10 {
		reps = 10
	}
	const batches = 10
	meter := core.NewMeter()
	publish := func() {
		if pub != nil {
			pub.Publish(meter.Registry())
		}
	}
	publish()
	fmt.Println("metered pingpong grid (1600B payload, CellPilot, all five channel types)")
	type typeResult struct {
		Type         string  `json:"type"`
		Ops          int64   `json:"ops"`
		Bytes        int64   `json:"bytes"`
		OneWayUs     float64 `json:"one_way_us"`
		LatencyP50Us float64 `json:"latency_p50_us"`
		LatencyP99Us float64 `json:"latency_p99_us"`
		BandwidthP50 float64 `json:"bandwidth_mbps_p50"`
	}
	var results []typeResult
	blame := &critpath.File{Experiment: "pingpong", PayloadBytes: 1600, Reps: reps}
	for typ := 1; typ <= 5; typ++ {
		var oneWay sim.Time
		ran := 0
		for b := 0; b < batches; b++ {
			n := reps / batches
			if n < 1 {
				n = 1
			}
			cfg := workload.PingPongConfig{
				Type: typ, Bytes: 1600, Method: workload.MethodCellPilot, Reps: n,
				Metrics: meter,
			}
			var st core.Stats
			var tl *timeline.Recorder
			var fl *flowmap.Map
			if b == 0 {
				// Trace the first batch only: recording is free in virtual
				// time, so the timings match the untraced batches exactly,
				// and one batch of spans is enough for the blame baseline.
				// The timeline and flow observatory ride along for
				// /timeline.json and /flows.json.
				cfg.Trace = trace.NewRecorder(0)
				cfg.Stats = &st
				tl = timeline.New(0)
				cfg.Timeline = tl
				fl = flowmap.New(0)
				cfg.Flows = fl
			}
			res, err := workload.PingPong(cfg)
			if err != nil {
				log.Fatal(err)
			}
			if tl != nil && pub != nil {
				if data, err := json.Marshal(tl); err == nil {
					pub.PublishTimeline(append(data, '\n'))
				}
			}
			if fl != nil && pub != nil {
				if data, err := json.Marshal(fl); err == nil {
					pub.PublishFlows(append(data, '\n'))
				}
			}
			if b == 0 && st.CritPath != nil {
				f := st.CritPath.ToFile("pingpong", 1600, n)
				blame.Types = append(blame.Types, f.Types...)
				blame.Pairs = append(blame.Pairs, f.Pairs...)
			}
			oneWay += res.OneWay
			ran++
			publish()
		}
		oneWay /= sim.Time(ran)
		prefix := fmt.Sprintf("chan/type%d", typ)
		reg := meter.Registry()
		lat := reg.LookupHistogram(prefix + "/latency_us")
		bw := reg.LookupHistogram(prefix + "/bandwidth_mbps")
		tr := typeResult{
			Type:     fmt.Sprintf("type%d", typ),
			Ops:      reg.Counter(prefix + "/ops").Value(),
			Bytes:    reg.Counter(prefix + "/payload_bytes_total").Value(),
			OneWayUs: oneWay.Micros(),
		}
		if lat != nil {
			tr.LatencyP50Us, tr.LatencyP99Us = lat.Quantile(0.5), lat.Quantile(0.99)
		}
		if bw != nil && bw.Count() > 0 {
			tr.BandwidthP50 = bw.Quantile(0.5)
		}
		results = append(results, tr)
		fmt.Printf("type%d  one-way %8.1fus  ops=%-6d bytes=%-9d latency p50=%.1fus p99=%.1fus bw p50=%.1fMB/s\n",
			typ, tr.OneWayUs, tr.Ops, tr.Bytes, tr.LatencyP50Us, tr.LatencyP99Us, tr.BandwidthP50)
	}
	if outDir != "" {
		path := filepath.Join(outDir, "BENCH_pingpong.json")
		data, err := json.MarshalIndent(struct {
			Experiment   string       `json:"experiment"`
			Reps         int          `json:"reps"`
			PayloadBytes int          `json:"payload_bytes"`
			ChannelTypes []typeResult `json:"channel_types"`
		}{"pingpong", reps, 1600, results}, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("results written to %s\n", path)
		bpath := filepath.Join(outDir, "BLAME_pingpong.json")
		bf, err := os.Create(bpath)
		if err != nil {
			log.Fatal(err)
		}
		if err := blame.Write(bf); err != nil {
			log.Fatal(err)
		}
		bf.Close()
		fmt.Printf("critical-path blame written to %s\n", bpath)
	}
}

// runSizeSweep runs the 64B..1MB PingPong grid over all five channel types
// with the chunk engine off and on, prints the paired latencies/bandwidths,
// and (with -out) emits BENCH_sizesweep.json.
func runSizeSweep(outDir string) {
	points, err := workload.SizeSweep(workload.SizeSweepConfig{})
	if err != nil {
		log.Fatal(err)
	}
	type row struct {
		Type          string  `json:"type"`
		Bytes         int     `json:"bytes"`
		Chunked       bool    `json:"chunked"`
		OneWayP50Us   float64 `json:"one_way_p50_us"`
		OneWayP99Us   float64 `json:"one_way_p99_us"`
		BandwidthMBps float64 `json:"bandwidth_mbps"`
	}
	rows := make([]row, 0, len(points))
	for _, p := range points {
		rows = append(rows, row{
			Type: fmt.Sprintf("type%d", p.Type), Bytes: p.Bytes, Chunked: p.Chunked,
			OneWayP50Us: p.OneWayP50.Micros(), OneWayP99Us: p.OneWayP99.Micros(),
			BandwidthMBps: p.BandwidthMBps,
		})
	}
	fmt.Println("size sweep: one-way p50 latency and bandwidth, chunk engine off vs on")
	for i := 0; i+1 < len(rows); i += 2 {
		b, c := rows[i], rows[i+1]
		speedup := 0.0
		if c.OneWayP50Us > 0 {
			speedup = b.OneWayP50Us / c.OneWayP50Us
		}
		fmt.Printf("%s %8dB  baseline %10.1fus %8.1fMB/s   chunked %10.1fus %8.1fMB/s   %.2fx\n",
			b.Type, b.Bytes, b.OneWayP50Us, b.BandwidthMBps, c.OneWayP50Us, c.BandwidthMBps, speedup)
	}
	if outDir != "" {
		path := filepath.Join(outDir, "BENCH_sizesweep.json")
		data, err := json.MarshalIndent(struct {
			Experiment string `json:"experiment"`
			ChunkSize  int    `json:"chunk_size"`
			Depth      int    `json:"pipeline_depth"`
			Points     []row  `json:"points"`
		}{"sizesweep", 8192, 4, rows}, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("results written to %s\n", path)
	}
}

// exceedsTolerance reports whether got regressed past the gate's relative
// tolerance over the baseline ref (higher is worse; improvements and
// in-band movement pass).
func exceedsTolerance(ref, got, tolerance float64) bool {
	return got > ref*(1+tolerance)
}

// runGuard is the performance-regression gate: it re-measures the five-type
// pingpong grid and fails (exit 1) if any channel type's one-way p50 is
// more than tolerance slower than the committed baseline JSON.
func runGuard(reps int, baselinePath string, tolerance float64) {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		log.Fatalf("guard: cannot read baseline: %v (run 'make bench-json' and commit the result first)", err)
	}
	var base struct {
		PayloadBytes int `json:"payload_bytes"`
		ChannelTypes []struct {
			Type     string  `json:"type"`
			OneWayUs float64 `json:"one_way_us"`
		} `json:"channel_types"`
	}
	if err := json.Unmarshal(raw, &base); err != nil {
		log.Fatalf("guard: %s: %v", baselinePath, err)
	}
	want := map[string]float64{}
	for _, ct := range base.ChannelTypes {
		want[ct.Type] = ct.OneWayUs
	}
	if base.PayloadBytes == 0 || len(want) == 0 {
		log.Fatalf("guard: %s has no channel baselines", baselinePath)
	}
	// The committed blame decomposition rides next to the latency baseline;
	// when the gate trips it turns "type N got slower" into "stage X of
	// type N got slower, mostly service|queueing".
	blameBase, blameErr := critpath.LoadFile(filepath.Join(filepath.Dir(baselinePath), "BLAME_pingpong.json"))
	fmt.Printf("bench guard: one-way p50 vs %s (payload %dB, tolerance +%.0f%%)\n", baselinePath, base.PayloadBytes, 100*tolerance)
	failed := false
	for typ := 1; typ <= 5; typ++ {
		name := fmt.Sprintf("type%d", typ)
		ref, ok := want[name]
		if !ok {
			continue
		}
		// The recorder observes at zero virtual-time cost, so the guarded
		// latencies are identical to an untraced run's.
		var st core.Stats
		res, err := workload.PingPong(workload.PingPongConfig{
			Type: typ, Bytes: base.PayloadBytes, Method: workload.MethodCellPilot, Reps: reps,
			Trace: trace.NewRecorder(0), Stats: &st,
		})
		if err != nil {
			log.Fatal(err)
		}
		got := res.OneWay.Micros()
		verdict := "ok"
		if exceedsTolerance(ref, got, tolerance) {
			verdict = "REGRESSION"
			failed = true
		}
		fmt.Printf("%s  baseline %8.1fus  now %8.1fus  (%+.1f%%)  %s\n",
			name, ref, got, 100*(got-ref)/ref, verdict)
		if verdict != "REGRESSION" {
			continue
		}
		switch {
		case blameErr != nil:
			fmt.Printf("  (no blame baseline: %v; run 'make bench-json' and commit results/BLAME_pingpong.json)\n", blameErr)
		case st.CritPath == nil:
			fmt.Println("  (no trace spans recorded; cannot attribute the regression)")
		default:
			bt, ok := blameBase.TypeByName(name)
			if !ok {
				fmt.Printf("  (blame baseline has no entry for %s)\n", name)
				continue
			}
			nt, ok := st.CritPath.ToFile("pingpong", base.PayloadBytes, reps).TypeByName(name)
			if !ok {
				fmt.Printf("  (no transfers analyzed for %s)\n", name)
				continue
			}
			fmt.Print(critpath.FormatDiff(name, critpath.DiffType(bt, nt)))
		}
	}
	if failed {
		log.Fatalf("guard: one-way latency regressed more than %.0f%% on at least one channel type", 100*tolerance)
	}
	fmt.Println("guard: all channel types within tolerance")
}

// runHostBench runs the host-cost benchmark suite and writes the
// schema-versioned ledger artifact (BENCH_hostbench.json).
func runHostBench(outDir string, iters int, quick bool) {
	f, err := hostbench.Run(hostbench.Suites(quick), iters, func(format string, args ...any) {
		fmt.Printf(format+"\n", args...)
	})
	if err != nil {
		log.Fatal(err)
	}
	f.Quick = quick
	fmt.Printf("hostbench: %d suites x %d iterations on %s/%s go%s (%d CPUs)\n",
		len(f.Suites), f.Iterations, f.Env.GOOS, f.Env.GOARCH,
		strings.TrimPrefix(f.Env.GoVersion, "go"), f.Env.NumCPU)
	if outDir == "" {
		return
	}
	path := filepath.Join(outDir, "BENCH_hostbench.json")
	if err := hostbench.WriteFile(path, f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("results written to %s\n", path)
}

// runKiloscale runs the thousand-node sharded fleet: for each workload it
// times a sequential reference arm (1 worker) and a parallel arm (-shards
// workers, 0 = one per host core), checks the two arms' fingerprints are
// bit-for-bit identical — the parallel-kernel determinism contract at full
// scale — and prints the wall-clock speedup the host actually delivered.
func runKiloscale(shards int, seed int64, quick bool) {
	workers := shards
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	nodes, ppReps, chReps := 1000, 10, 2
	if quick {
		nodes, ppReps, chReps = 120, 5, 2
	}
	fmt.Printf("kiloscale: %d simulated nodes as independent 3-node replicas, 1 vs %d host workers\n", nodes, workers)
	for _, wl := range []string{"pingpong", "chaos"} {
		reps := ppReps
		if wl == "chaos" {
			reps = chReps
		}
		arm := func(w int) (workload.KiloscaleResult, time.Duration) {
			t0 := time.Now()
			res, err := workload.Kiloscale(workload.KiloscaleConfig{
				Nodes: nodes, Workload: wl, Workers: w, Seed: seed, Reps: reps,
			})
			if err != nil {
				log.Fatal(err)
			}
			return res, time.Since(t0)
		}
		seq, seqWall := arm(1)
		par, parWall := arm(workers)
		match := "MATCH"
		if seq.Fingerprint != par.Fingerprint {
			match = "MISMATCH"
		}
		fmt.Printf("  %-8s %d replicas, %d events, vt %s\n", wl, par.Replicas, par.Events, par.VirtualTime)
		fmt.Printf("           seq %8.0fms (%8.0f events/s)  par %8.0fms (%8.0f events/s)  speedup %.2fx\n",
			float64(seqWall.Milliseconds()), float64(seq.Events)/seqWall.Seconds(),
			float64(parWall.Milliseconds()), float64(par.Events)/parWall.Seconds(),
			float64(seqWall)/float64(parWall))
		fmt.Printf("           fingerprint %s vs %s: %s\n", seq.Fingerprint, par.Fingerprint, match)
		if match == "MISMATCH" {
			log.Fatalf("kiloscale: %s seq/par fingerprints diverge — parallel determinism broken", wl)
		}
	}
}

// runHostGuard is the host-cost half of the regression gate: it re-runs
// the host benchmark suite (the same suite shape the committed baseline
// was measured with) and fails if any suite's host metrics moved outside
// the noise-aware band, naming the subsystem that regressed. A missing
// baseline skips the gate with a note — the virtual-latency guard above
// already ran, so this is an additive check.
func runHostGuard(baselinePath string, iters int, tolerance float64, gateWall bool) {
	base, err := hostbench.ReadFile(baselinePath)
	if err != nil {
		if os.IsNotExist(err) {
			fmt.Printf("host guard: no baseline at %s (run 'make bench-host' and commit it); skipping\n", baselinePath)
			return
		}
		log.Fatalf("host guard: %v", err)
	}
	if iters == 0 {
		iters = 2 // the MAD band comes from the baseline's dispersion
	}
	cur, err := hostbench.Run(hostbench.Suites(base.Quick), iters, func(format string, args ...any) {
		fmt.Printf(format+"\n", args...)
	})
	if err != nil {
		log.Fatal(err)
	}
	// -tolerance scales the per-metric floors: 0.10 (the default) keeps
	// them as designed, 0.20 doubles every band.
	rep := hostbench.Guard(base, cur, hostbench.GuardOptions{FloorScale: tolerance / 0.10, GateWall: gateWall})
	fmt.Print(hostbench.FormatGuard(rep))
	if regs := rep.Regressions(); len(regs) > 0 {
		log.Fatalf("host guard: %d host metric(s) regressed (blame: %s)", len(regs), regs[0].Blame)
	}
	fmt.Println("host guard: all suites within tolerance")
}

// runProfile reruns the pingpong grid with the virtual-time profiler
// attached and prints each type's exclusive-bucket attribution — where
// every process's virtual lifetime went (compute, pack, mailbox, Co-Pilot
// service, MPI, copy/relay). The -folded and -pprof flags export the
// -trace-type run for flamegraph and pprof tooling.
func runProfile(reps, traceType int, foldedPath, pprofPath string) {
	if reps < 10 {
		reps = 10
	}
	fmt.Println("virtual-time attribution per process (1600B payload, CellPilot)")
	for typ := 1; typ <= 5; typ++ {
		prof := profile.New()
		if _, err := workload.PingPong(workload.PingPongConfig{
			Type: typ, Bytes: 1600, Method: workload.MethodCellPilot, Reps: reps,
			Profile: prof,
		}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("--- type%d ---\n%s", typ, prof.Report())
		if typ == traceType {
			if foldedPath != "" {
				writeFile(foldedPath, prof.FoldedStacks)
				fmt.Printf("  folded stacks for type%d written to %s\n", typ, foldedPath)
			}
			if pprofPath != "" {
				writeFile(pprofPath, prof.WritePprof)
				fmt.Printf("  pprof profile for type%d written to %s\n", typ, pprofPath)
			}
		}
	}
}

// runChaos sweeps seeded fault schedules over concurrent traffic on all
// five Table I channel types, printing per-scenario delivery and fault
// counters plus a determinism check (every seed is run twice and the two
// outcomes must be bit-for-bit identical).
func runChaos(seed int64, runs int) {
	if runs < 1 {
		runs = 1
	}
	seeds := make([]int64, runs)
	for i := range seeds {
		seeds[i] = seed + int64(i)
	}
	scenarios := []struct {
		name string
		cfg  workload.ChaosConfig
	}{
		{"loss10", workload.ChaosConfig{LossProb: 0.1}},
		{"kill-spe", workload.ChaosConfig{KillSPE: true}},
		{"mbox-drops", workload.ChaosConfig{MailboxDrops: 4}},
		{"combined", workload.ChaosConfig{LossProb: 0.1, KillSPE: true, MailboxDrops: 2}},
	}
	fmt.Println("chaos sweep: 5 channel types x 20 round trips per run, seeded fault schedules")
	for _, sc := range scenarios {
		rs, err := workload.ChaosSweep(sc.cfg, seeds)
		if err != nil {
			log.Fatal(err)
		}
		rs2, err := workload.ChaosSweep(sc.cfg, seeds)
		if err != nil {
			log.Fatal(err)
		}
		for i, r := range rs {
			det := "deterministic"
			if r.Fingerprint() != rs2[i].Fingerprint() {
				det = "NON-DETERMINISTIC"
			}
			status := "clean"
			if r.RunErr != "" {
				status = "degraded"
			}
			fmt.Printf("%-10s seed=%-3d %-9s done=%v drops=%d rexmit=%d mbox=%d/%d killed=%d timeouts=%d  %s\n",
				sc.name, r.Config.Seed, status, r.Completed[1:],
				r.Counts.LinkDrops, r.Counts.Retransmits,
				r.Counts.MailboxDrops, r.Counts.MailboxReposts,
				r.Counts.ProcsKilled, r.Counts.OpTimeouts, det)
		}
	}
}

// runPhases reruns the Table II pingpong grid with the recorder and meter
// attached and decomposes each channel type's one-way latency into its
// transfer phases (mailbox, Co-Pilot wait/service, relay/copy, MPI) — the
// observability view of where Table II's microseconds go. Observation is
// free in virtual time, so the latencies match the uninstrumented runs
// exactly.
func runPhases(reps, traceType int, chromePath, metricsPath string) {
	if reps < 10 {
		reps = 10
	}
	fmt.Println("phase breakdown per one-way transfer (1600B payload, CellPilot)")
	for typ := 1; typ <= 5; typ++ {
		rec := trace.NewRecorder(0)
		meter := core.NewMeter()
		res, err := workload.PingPong(workload.PingPongConfig{
			Type: typ, Bytes: 1600, Method: workload.MethodCellPilot, Reps: reps,
			Trace: rec, Metrics: meter,
		})
		if err != nil {
			log.Fatal(err)
		}
		spans := rec.Spans()
		phase := map[trace.PhaseKind]sim.Time{}
		for _, sp := range spans {
			for _, ph := range sp.Phases {
				phase[ph.Phase] += ph.Dur()
			}
		}
		kinds := make([]trace.PhaseKind, 0, len(phase))
		for k := range phase {
			kinds = append(kinds, k)
		}
		sort.Slice(kinds, func(i, j int) bool { return phase[kinds[i]] > phase[kinds[j]] })
		fmt.Printf("type%d  one-way %8.1fus  (%d spans):", typ, res.OneWay.Micros(), len(spans))
		for _, k := range kinds {
			fmt.Printf("  %s=%.1fus", k, (phase[k] / sim.Time(len(spans))).Micros())
		}
		fmt.Println()
		if typ == traceType {
			if chromePath != "" {
				writeFile(chromePath, rec.WriteChrome)
				fmt.Printf("  chrome trace for type%d written to %s\n", typ, chromePath)
			}
			if metricsPath != "" {
				writeFile(metricsPath, func(w io.Writer) error {
					data, err := meter.Registry().MarshalJSON()
					if err != nil {
						return err
					}
					_, err = w.Write(append(data, '\n'))
					return err
				})
				fmt.Printf("  metrics for type%d written to %s\n", typ, metricsPath)
			}
		}
	}
}

// writeFile writes one exporter's output ("-" = stdout).
func writeFile(path string, fn func(w io.Writer) error) {
	f := os.Stdout
	if path != "-" {
		var err error
		f, err = os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
	}
	if err := fn(f); err != nil {
		log.Fatal(err)
	}
}

// runCML compares the Cell Messaging Layer baseline against CellPilot's
// general type-5 channel for remote SPE↔SPE transfers — the generality
// vs. performance trade-off the paper's related-work section implies.
func runCML(reps int) {
	if reps < 10 {
		reps = 10
	}
	fmt.Println("CML baseline vs CellPilot (remote SPE↔SPE, one-way)")
	for _, bytes := range []int{1, 1600} {
		cp, err := workload.PingPong(workload.PingPongConfig{
			Type: 5, Bytes: bytes, Method: workload.MethodCellPilot, Reps: reps,
		})
		if err != nil {
			log.Fatal(err)
		}
		cml, err := workload.CMLPingPong(bytes, reps)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6dB: CML %8.1fus   CellPilot type5 %8.1fus\n",
			bytes, cml.Micros(), cp.OneWay.Micros())
	}
	fmt.Println("(CML: ranks on SPEs only, no PPE/non-Cell endpoints, no formats, no type checking)")
}

// runIMB prints the wider IMB-MPI1 pattern set over the raw transport —
// the benchmark suite the paper's Section V measurement methodology
// comes from.
func runIMB(reps int) {
	if reps < 10 {
		reps = 10
	}
	sizes := []int{0, 64, 1024, 1600, 16384}
	fmt.Println("IMB-MPI1 patterns on the simulated transport (avg per op)")
	for _, pat := range []workload.IMBPattern{
		workload.IMBPingPong, workload.IMBPingPing, workload.IMBSendRecv,
		workload.IMBExchange, workload.IMBBcast, workload.IMBAllreduce,
	} {
		ranks := 8
		if pat == workload.IMBPingPong || pat == workload.IMBPingPing {
			ranks = 2
		}
		fmt.Printf("%-10s (%d ranks):", pat, ranks)
		for _, sz := range sizes {
			if sz == 0 {
				continue
			}
			res, err := workload.IMB(workload.IMBConfig{Pattern: pat, Ranks: ranks, Bytes: sz, Reps: reps})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %dB=%.1fus", sz, res.AvgTime.Micros())
		}
		fmt.Println()
	}
	b, err := workload.IMB(workload.IMBConfig{Pattern: workload.IMBBarrier, Ranks: 8, Reps: reps})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-10s (8 ranks):  %.1fus\n", workload.IMBBarrier, b.AvgTime.Micros())
}

func runAblations(reps int) {
	mpiPath, direct, err := workload.AblationDirectLocal(reps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("A1 — type-2 PPE↔Co-Pilot leg: local MPI (paper design) vs direct copy")
	fmt.Printf("%-10s %12s %12s\n", "payload", "local MPI", "direct copy")
	for i, bytes := range []int{1, 1600} {
		fmt.Printf("%-10d %10.1fus %10.1fus\n", bytes, mpiPath[i].Micros(), direct[i].Micros())
	}
	fmt.Println()

	intervals := []sim.Time{2 * sim.Microsecond, 5 * sim.Microsecond, 10 * sim.Microsecond,
		14 * sim.Microsecond, 20 * sim.Microsecond, 40 * sim.Microsecond, 80 * sim.Microsecond}
	poll, err := workload.AblationPoll(intervals, reps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("A2 — type-4 latency vs Co-Pilot poll interval (1-byte payload)")
	for _, iv := range intervals {
		t := poll[iv]
		fmt.Printf("poll %6s: %8.1fus |%s\n", iv, t.Micros(), strings.Repeat("#", int(t.Micros()/4)))
	}
	fmt.Println()

	fmt.Println("A4 — Co-Pilot placement: one per node (paper) vs one per Cell")
	fmt.Printf("%-8s %14s %14s\n", "pairs", "per-node", "per-cell")
	for _, pairs := range []int{2, 4, 6, 8} {
		single, err := workload.CoPilotContention(false, pairs, 4)
		if err != nil {
			log.Fatal(err)
		}
		per, err := workload.CoPilotContention(true, pairs, 4)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8d %12.1fus %12.1fus\n", pairs, single.Micros(), per.Micros())
	}
	fmt.Println()

	sizes := []int{64, 512, 1600, 8192, 65536}
	thresholds := []int{1, 4096, 1 << 20}
	eager, err := workload.AblationEager(sizes, thresholds, reps/4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("A3 — type-1 latency vs MPI eager threshold")
	fmt.Printf("%-10s", "payload")
	for _, th := range thresholds {
		fmt.Printf(" %10s", fmt.Sprintf("thr=%d", th))
	}
	fmt.Println()
	for _, sz := range sizes {
		fmt.Printf("%-10d", sz)
		for _, th := range thresholds {
			fmt.Printf(" %8.1fus", eager[[2]int{th, sz}].Micros())
		}
		fmt.Println()
	}
}
