package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cellpilot/internal/scenario"
)

func TestScenarioVerb(t *testing.T) {
	for _, v := range []string{"run", "validate"} {
		if !scenarioVerb(v) {
			t.Errorf("scenarioVerb(%q) = false", v)
		}
	}
	for _, v := range []string{"-exp", "runs", "validated", "", "all"} {
		if scenarioVerb(v) {
			t.Errorf("scenarioVerb(%q) = true", v)
		}
	}
}

func TestValidateExpMentionsVerbs(t *testing.T) {
	// The fast-fail listing must teach the verb entry points too.
	err := validateExp("nope")
	if err == nil {
		t.Fatal("no error")
	}
	for _, want := range []string{"cellpilot-bench run", "cellpilot-bench validate"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error does not mention %q: %v", want, err)
		}
	}
}

const cliScenario = `
name: cli-smoke
description: "CLI-level smoke scenario"
seed: 3
workloads:
  - kind: chaos
    reps: 2
assertions:
  - kind: completed
    type: 1
    full: true
`

func TestRunScenarioFileGoldenLifecycle(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "cli-smoke.yaml")
	if err := os.WriteFile(file, []byte(cliScenario), 0o644); err != nil {
		t.Fatal(err)
	}
	// First full run: no golden yet — a note, not a failure.
	name, detail, violations := runScenarioFile(file, scenario.Options{}, false, false)
	if name != "cli-smoke" || len(violations) != 0 {
		t.Fatalf("first run: name=%q violations=%v", name, violations)
	}
	if !strings.Contains(detail, "update-golden") {
		t.Fatalf("missing-golden note absent: %q", detail)
	}
	// Record, then re-compare: clean.
	_, detail, violations = runScenarioFile(file, scenario.Options{}, true, false)
	if detail != "golden recorded" || len(violations) != 0 {
		t.Fatalf("record: detail=%q violations=%v", detail, violations)
	}
	_, _, violations = runScenarioFile(file, scenario.Options{}, false, false)
	if len(violations) != 0 {
		t.Fatalf("after recording, compare should be clean: %v", violations)
	}
	// Corrupt the golden: the mismatch is a violation with a line diff.
	golden := scenario.GoldenPath(file)
	if err := os.WriteFile(golden, []byte("scenario=cli-smoke tampered\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, violations = runScenarioFile(file, scenario.Options{}, false, false)
	if len(violations) != 1 || !strings.Contains(violations[0], "golden mismatch") {
		t.Fatalf("tampered golden: %v", violations)
	}
	// Quick mode skips the (tampered) golden entirely.
	_, _, violations = runScenarioFile(file, scenario.Options{Quick: true}, false, false)
	if len(violations) != 0 {
		t.Fatalf("quick mode must skip golden comparison: %v", violations)
	}
}

func TestRunScenarioFileFailsOnBrokenAssertion(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "broken.yaml")
	broken := strings.Replace(cliScenario, "name: cli-smoke", "name: broken-bound", 1) +
		"  - kind: faults\n    min:\n      link_drops: 999\n"
	if err := os.WriteFile(file, []byte(broken), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, violations := runScenarioFile(file, scenario.Options{}, false, false)
	if len(violations) != 1 {
		t.Fatalf("want exactly the broken bound to fail, got %v", violations)
	}
	if !strings.Contains(violations[0], "link_drops = 0 below bound 999") {
		t.Fatalf("violation must name the violated bound: %s", violations[0])
	}
}

func TestRunScenarioFileParseError(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "bad.yaml")
	os.WriteFile(file, []byte("name: x\nworkloads:\n  - kind: warp\n"), 0o644)
	_, detail, _ := runScenarioFile(file, scenario.Options{}, false, false)
	if !strings.HasPrefix(detail, "error:") || !strings.Contains(detail, "unknown workload kind") {
		t.Fatalf("parse failure should surface as an error detail, got %q", detail)
	}
}
