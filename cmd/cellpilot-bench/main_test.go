package main

import (
	"sort"
	"strings"
	"testing"
)

func TestValidateExp(t *testing.T) {
	for _, e := range experiments {
		if err := validateExp(e); err != nil {
			t.Errorf("validateExp(%q) = %v, want nil", e, err)
		}
	}
	err := validateExp("pingpnog")
	if err == nil {
		t.Fatal("typo'd experiment accepted")
	}
	// The error must teach: it names the bad value and lists every valid one.
	msg := err.Error()
	if !strings.Contains(msg, "pingpnog") {
		t.Errorf("error does not name the bad value: %v", err)
	}
	for _, e := range experiments {
		if !strings.Contains(msg, e) {
			t.Errorf("error does not list %q: %v", e, err)
		}
	}
}

func TestExceedsTolerance(t *testing.T) {
	cases := []struct {
		ref, got, tol float64
		want          bool
	}{
		{100, 100, 0.10, false},   // unchanged
		{100, 109.9, 0.10, false}, // inside the band
		{100, 110.1, 0.10, true},  // just past it
		{100, 50, 0.10, false},    // improvement never trips
		{100, 115, 0.20, false},   // wider -tolerance admits more
		{100, 121, 0.20, true},
		{100, 101, 0.0, true}, // zero tolerance: any slowdown trips
	}
	for _, c := range cases {
		if got := exceedsTolerance(c.ref, c.got, c.tol); got != c.want {
			t.Errorf("exceedsTolerance(%v, %v, %v) = %v, want %v", c.ref, c.got, c.tol, got, c.want)
		}
	}
}

// TestExperimentsAlphabetized: the -exp list stays sorted (with the "all"
// catch-all last) so the usage text and the validateExp error read as a
// directory, not an accretion log.
func TestExperimentsAlphabetized(t *testing.T) {
	if experiments[len(experiments)-1] != "all" {
		t.Fatalf("experiments must end with %q, got %q", "all", experiments[len(experiments)-1])
	}
	named := experiments[:len(experiments)-1]
	if !sort.StringsAreSorted(named) {
		t.Fatalf("experiment names not alphabetized: %v", named)
	}
}
