// Command pingpong runs a single IMB-style PingPong measurement on the
// simulated cluster — one cell of paper Table II:
//
//	pingpong -type 5 -bytes 1600 -method cellpilot -reps 1000
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"cellpilot/internal/workload"
)

func main() {
	typ := flag.Int("type", 1, "channel type 1..5 (paper Table I)")
	bytes := flag.Int("bytes", 1, "payload size (paper: 1 or 1600)")
	method := flag.String("method", "cellpilot", "cellpilot|dma|copy")
	reps := flag.Int("reps", 1000, "round trips")
	flag.Parse()

	var m workload.Method
	switch strings.ToLower(*method) {
	case "cellpilot":
		m = workload.MethodCellPilot
	case "dma":
		m = workload.MethodDMA
	case "copy":
		m = workload.MethodCopy
	default:
		log.Fatalf("unknown method %q", *method)
	}
	res, err := workload.PingPong(workload.PingPongConfig{
		Type: *typ, Bytes: *bytes, Method: m, Reps: *reps,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("type %d, %d bytes, %s, %d reps: one-way %.2f us, %.2f MB/s\n",
		*typ, *bytes, m, *reps, res.OneWay.Micros(), res.ThroughputMBps)
}
