// Command cellpilot-trace runs a demonstration CellPilot application with
// the communication recorder and meter attached and prints the event
// timeline, per-channel statistics and per-channel-type metrics — a view
// of what the Co-Pilot moves around during a run, at zero virtual-time
// cost (traced runs keep the calibrated timings exactly).
//
// Exporters (all optional, "-" means stdout):
//
//	cellpilot-trace -chrome out.json    # Chrome trace_event JSON (Perfetto)
//	cellpilot-trace -json out.jsonl     # event timeline as JSON lines
//	cellpilot-trace -metrics out.json   # metric registry as JSON
//	cellpilot-trace -top                # utilization: procs, channels, links
//	cellpilot-trace -timeline           # windowed telemetry sparklines
//	cellpilot-trace -flows              # traffic heatmap + top-K flow table
//
// -timeline also folds per-window counter tracks into the -chrome export,
// so Perfetto renders backlog, utilization and saturation as counter
// graphs above the span tracks.
//
// With -host BASE,NEW the command instead renders two host-cost benchmark
// artifacts (BENCH_hostbench.json, written by cellpilot-bench -exp
// hostbench) as a trend table and exits — no simulation runs.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"cellpilot"
	"cellpilot/internal/hostbench"
	"cellpilot/internal/trace"
)

// writeOut opens path for an exporter ("-" = stdout) and runs fn on it.
func writeOut(path string, fn func(w io.Writer) error) {
	f := os.Stdout
	if path != "-" {
		var err error
		f, err = os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
	}
	if err := fn(f); err != nil {
		log.Fatal(err)
	}
}

func main() {
	rounds := flag.Int("rounds", 5, "pingpong rounds per channel type")
	events := flag.Int("events", 40, "timeline events to print")
	chrome := flag.String("chrome", "", "write Chrome trace_event JSON to this file (\"-\" = stdout)")
	jsonl := flag.String("json", "", "write the event timeline as JSON lines to this file (\"-\" = stdout)")
	metricsOut := flag.String("metrics", "", "write the metric registry as JSON to this file (\"-\" = stdout)")
	spans := flag.Int("spans", 10, "transfer spans to print")
	top := flag.Bool("top", false, "print the per-process / per-channel-type utilization table")
	critpathOn := flag.Bool("critpath", false, "print the critical-path blame report (per-stage service vs queueing)")
	folded := flag.String("folded", "", "with -critpath: write folded critical-path stacks to this file (\"-\" = stdout)")
	host := flag.String("host", "", "render two BENCH_hostbench.json files as a host-cost trend table: BASE,NEW")
	timelineOn := flag.Bool("timeline", false, "record and print the windowed telemetry timeline (sparklines, peaks, recovery)")
	timelineWindow := flag.Duration("timeline-window", 0, "with -timeline: virtual-time bucket width (0 = 100µs)")
	flowsOn := flag.Bool("flows", false, "record and print the flow observatory (node×node traffic heatmap, top-K flows, per-resource breakdown)")
	flag.Parse()

	if *host != "" {
		printHostTrend(*host)
		return
	}

	clu, err := cellpilot.NewCluster(cellpilot.ClusterSpec{CellNodes: 2})
	if err != nil {
		log.Fatal(err)
	}
	app := cellpilot.NewApp(clu, cellpilot.Options{})
	rec := cellpilot.NewTraceRecorder(0)
	app.Trace = rec
	meter := cellpilot.NewMeter()
	app.Metrics = meter
	var tl *cellpilot.Timeline
	if *timelineOn {
		tl = cellpilot.NewTimeline(cellpilot.Time(timelineWindow.Nanoseconds()))
		app.Timeline = tl
	}
	if *flowsOn {
		app.Flows = cellpilot.NewFlowmap(0)
	}

	// One channel pair of each Table I flavour: type 1 (PPE↔remote PPE),
	// type 2 (PPE↔local SPE), type 3 (PPE↔remote SPE), type 4 (SPE↔SPE
	// same blade) and type 5 (SPE↔remote SPE).
	var t1down, t1up, t2down, t2up, t3down, t3up, t4ab, t4ba, t5ab, t5ba *cellpilot.Channel
	n := *rounds
	mkEcho := func(down, up **cellpilot.Channel) *cellpilot.SPEProgram {
		return &cellpilot.SPEProgram{Name: "echo", Body: func(ctx *cellpilot.SPECtx) {
			buf := make([]int32, 32)
			for r := 0; r < n; r++ {
				ctx.Read(*down, "%32d", buf)
				ctx.Write(*up, "%32d", buf)
			}
		}}
	}
	mkInit := func(up, down **cellpilot.Channel) *cellpilot.SPEProgram {
		return &cellpilot.SPEProgram{Name: "init", Body: func(ctx *cellpilot.SPECtx) {
			buf := make([]int32, 32)
			for r := 0; r < n; r++ {
				ctx.Write(*up, "%32d", buf)
				ctx.Read(*down, "%32d", buf)
			}
		}}
	}

	spe2 := app.CreateSPE(mkEcho(&t2down, &t2up), app.Main(), 0)
	spe4a := app.CreateSPE(mkInit(&t4ab, &t4ba), app.Main(), 1)
	spe4b := app.CreateSPE(mkEcho(&t4ab, &t4ba), app.Main(), 2)
	parent := app.CreateProcessOn(1, "parent", func(ctx *cellpilot.Ctx, _ int, arg any) {
		procs := arg.([]*cellpilot.Process)
		for _, sp := range procs {
			ctx.RunSPE(sp, 0, nil)
		}
		buf := make([]int32, 32)
		for r := 0; r < n; r++ {
			ctx.Read(t1down, "%32d", buf)
			ctx.Write(t1up, "%32d", buf)
		}
	}, 0, nil)
	spe5a := app.CreateSPE(mkInit(&t5ab, &t5ba), app.Main(), 3)
	spe5b := app.CreateSPE(mkEcho(&t5ab, &t5ba), parent, 0)
	spe3 := app.CreateSPE(mkEcho(&t3down, &t3up), parent, 1)
	parent.SetArg([]*cellpilot.Process{spe5b, spe3})

	t1down = app.CreateChannel(app.Main(), parent)
	t1up = app.CreateChannel(parent, app.Main())
	t2down = app.CreateChannel(app.Main(), spe2)
	t2up = app.CreateChannel(spe2, app.Main())
	t3down = app.CreateChannel(app.Main(), spe3)
	t3up = app.CreateChannel(spe3, app.Main())
	t4ab = app.CreateChannel(spe4a, spe4b)
	t4ba = app.CreateChannel(spe4b, spe4a)
	t5ab = app.CreateChannel(spe5a, spe5b)
	t5ba = app.CreateChannel(spe5b, spe5a)
	all := []*cellpilot.Channel{t1down, t1up, t2down, t2up, t3down, t3up, t4ab, t4ba, t5ab, t5ba}
	for _, ch := range all {
		ch.SetName(fmt.Sprintf("%s/%d", ch.Type(), ch.ID()))
	}

	err = app.Run(func(ctx *cellpilot.Ctx) {
		ctx.RunSPE(spe2, 0, nil)
		ctx.RunSPE(spe4a, 0, nil)
		ctx.RunSPE(spe4b, 0, nil)
		ctx.RunSPE(spe5a, 0, nil)
		buf := make([]int32, 32)
		for r := 0; r < n; r++ {
			ctx.Write(t1down, "%32d", buf)
			ctx.Read(t1up, "%32d", buf)
			ctx.Write(t2down, "%32d", buf)
			ctx.Read(t2up, "%32d", buf)
			ctx.Write(t3down, "%32d", buf)
			ctx.Read(t3up, "%32d", buf)
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	if tl != nil {
		// Fold the timeline's window samples into the Chrome export as
		// counter tracks; the recorder renders them as ph:"C" events.
		var pts []trace.CounterPoint
		for _, p := range tl.Points() {
			pts = append(pts, trace.CounterPoint{At: p.At, Name: p.Series, Value: p.Value})
		}
		rec.SetCounters(pts)
	}
	if *chrome != "" {
		writeOut(*chrome, rec.WriteChrome)
		if *chrome != "-" {
			fmt.Printf("chrome trace written to %s (load in Perfetto or chrome://tracing)\n", *chrome)
		}
	}
	if *jsonl != "" {
		writeOut(*jsonl, rec.WriteJSONL)
		if *jsonl != "-" {
			fmt.Printf("event timeline written to %s\n", *jsonl)
		}
	}
	if *metricsOut != "" {
		writeOut(*metricsOut, func(w io.Writer) error {
			data, err := meter.Registry().MarshalJSON()
			if err != nil {
				return err
			}
			_, err = w.Write(append(data, '\n'))
			return err
		})
		if *metricsOut != "-" {
			fmt.Printf("metrics written to %s\n", *metricsOut)
		}
	}

	fmt.Printf("timeline (first %d of %d events):\n", *events, len(rec.Events()))
	for i, ev := range rec.Events() {
		if i >= *events {
			break
		}
		fmt.Printf("  [%12s] %-7s ch=%-3d %5dB  %s\n", ev.At, ev.Kind, ev.Channel, ev.Bytes, ev.Proc)
	}
	fmt.Println()
	allSpans := rec.Spans()
	fmt.Printf("transfer spans (first %d of %d):\n", *spans, len(allSpans))
	for i, sp := range allSpans {
		if i >= *spans {
			break
		}
		fmt.Printf("  #%-4d ch=%-3d type%d %5dB %10s:", sp.ID, sp.Channel, sp.ChanType, sp.Bytes, sp.Dur())
		for _, ph := range sp.Phases {
			fmt.Printf(" %s=%s", ph.Phase, ph.Dur())
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Print(rec.Summary())
	fmt.Println()
	st := app.Stats()
	fmt.Print(st)
	if st.Timeline != nil {
		fmt.Println()
		fmt.Print(st.Timeline.String())
	}
	if st.Flows != nil {
		fmt.Println()
		fmt.Print(st.Flows.String())
	}
	if *top {
		fmt.Println()
		printTop(st)
	}
	if *critpathOn && st.CritPath != nil {
		fmt.Println()
		fmt.Print(st.CritPath.Table())
		if *folded != "" {
			writeOut(*folded, st.CritPath.FoldedStacks)
			if *folded != "-" {
				fmt.Printf("folded critical-path stacks written to %s\n", *folded)
			}
		}
	}
}

// printHostTrend loads two host-benchmark ledger artifacts and prints
// their movement per suite and metric — the host-cost counterpart of the
// virtual-time views above.
func printHostTrend(arg string) {
	parts := strings.Split(arg, ",")
	if len(parts) != 2 {
		log.Fatalf("-host wants two files: -host BASE.json,NEW.json (got %q)", arg)
	}
	base, err := hostbench.ReadFile(strings.TrimSpace(parts[0]))
	if err != nil {
		log.Fatal(err)
	}
	now, err := hostbench.ReadFile(strings.TrimSpace(parts[1]))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(hostbench.FormatTrend(base, now))
}

// printTop renders the utilization view: where each process's virtual
// lifetime went, how loaded each channel type, Co-Pilot and interconnect
// link ran.
func printTop(st cellpilot.Stats) {
	pct := func(part, total cellpilot.Time) float64 {
		if total <= 0 {
			return 0
		}
		return 100 * float64(part) / float64(total)
	}
	fmt.Println("top: per-process virtual-time utilization")
	fmt.Printf("  %-28s %12s %8s %8s %8s %8s\n", "process", "lifetime", "compute", "read", "write", "mbox")
	for _, pt := range st.ProcTimes {
		fmt.Printf("  %-28s %12s %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n",
			pt.Process, pt.Total,
			pct(pt.Compute, pt.Total), pct(pt.BlockedRead, pt.Total),
			pct(pt.BlockedWrite, pt.Total), pct(pt.MailboxWait, pt.Total))
	}
	fmt.Println("top: per-channel-type load")
	fmt.Printf("  %-6s %8s %10s %12s %12s %14s %8s\n",
		"type", "ops", "bytes", "p50 lat", "p99 lat", "p50 bw", "backlog")
	for _, ct := range st.ChannelTypes {
		bw := "-"
		if ct.BandwidthMBps != nil && ct.BandwidthMBps.Count() > 0 {
			bw = fmt.Sprintf("%.1fMB/s", ct.BandwidthMBps.Quantile(0.5))
		}
		fmt.Printf("  %-6s %8d %10d %10.1fus %10.1fus %14s %8d\n",
			ct.Type, ct.Ops, ct.Bytes,
			ct.LatencyUs.Quantile(0.5), ct.LatencyUs.Quantile(0.99), bw, ct.BacklogHighWater)
	}
	fmt.Println("top: co-pilot service loops")
	for _, cp := range st.CoPilots {
		fmt.Printf("  copilot@node%-2d busy %12s  %5.1f%% utilized  (%d reqs)\n",
			cp.Node, cp.Busy, 100*cp.Utilization, cp.WriteReqs+cp.ReadReqs)
	}
	fmt.Println("top: interconnect links")
	for _, lu := range st.Links {
		fmt.Printf("  %-6s busy %12s  %5.1f%% saturated\n", lu.Name, lu.Busy, 100*lu.Utilization)
	}
	fmt.Println("top: SPE mailbox high-water marks and MFC DMA engines")
	for _, spe := range st.SPEs {
		fmt.Printf("  %-28s in=%d/4 out=%d/1  mfc-dma busy %12s  %5.1f%% utilized\n",
			spe.Process, spe.InMboxHighWater, spe.OutMboxHighWater, spe.DMABusy, 100*spe.DMAUtilization)
	}
}
