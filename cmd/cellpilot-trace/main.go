// Command cellpilot-trace runs a demonstration CellPilot application with
// the communication recorder attached and prints the event timeline and
// per-channel statistics — a view of what the Co-Pilot moves around
// during a run, at zero virtual-time cost (traced runs keep the
// calibrated timings exactly).
package main

import (
	"flag"
	"fmt"
	"log"

	"cellpilot"
	"cellpilot/internal/trace"
)

func main() {
	rounds := flag.Int("rounds", 5, "pingpong rounds per channel type")
	events := flag.Int("events", 40, "timeline events to print")
	flag.Parse()

	clu, err := cellpilot.NewCluster(cellpilot.ClusterSpec{CellNodes: 2})
	if err != nil {
		log.Fatal(err)
	}
	app := cellpilot.NewApp(clu, cellpilot.Options{})
	rec := trace.NewRecorder(0)
	app.Trace = rec

	// One channel pair of each SPE-connected flavour: type 2 (PPE↔local
	// SPE), type 4 (SPE↔SPE same blade) and type 5 (SPE↔remote SPE).
	var t2down, t2up, t4ab, t4ba, t5ab, t5ba *cellpilot.Channel
	n := *rounds
	mkEcho := func(down, up **cellpilot.Channel) *cellpilot.SPEProgram {
		return &cellpilot.SPEProgram{Name: "echo", Body: func(ctx *cellpilot.SPECtx) {
			buf := make([]int32, 32)
			for r := 0; r < n; r++ {
				ctx.Read(*down, "%32d", buf)
				ctx.Write(*up, "%32d", buf)
			}
		}}
	}
	mkInit := func(up, down **cellpilot.Channel) *cellpilot.SPEProgram {
		return &cellpilot.SPEProgram{Name: "init", Body: func(ctx *cellpilot.SPECtx) {
			buf := make([]int32, 32)
			for r := 0; r < n; r++ {
				ctx.Write(*up, "%32d", buf)
				ctx.Read(*down, "%32d", buf)
			}
		}}
	}

	spe2 := app.CreateSPE(mkEcho(&t2down, &t2up), app.Main(), 0)
	spe4a := app.CreateSPE(mkInit(&t4ab, &t4ba), app.Main(), 1)
	spe4b := app.CreateSPE(mkEcho(&t4ab, &t4ba), app.Main(), 2)
	parent := app.CreateProcessOn(1, "parent", func(ctx *cellpilot.Ctx, _ int, arg any) {
		ctx.RunSPE(arg.(*cellpilot.Process), 0, nil)
	}, 0, nil)
	spe5a := app.CreateSPE(mkInit(&t5ab, &t5ba), app.Main(), 3)
	spe5b := app.CreateSPE(mkEcho(&t5ab, &t5ba), parent, 0)
	parent.SetArg(spe5b)

	t2down = app.CreateChannel(app.Main(), spe2)
	t2up = app.CreateChannel(spe2, app.Main())
	t4ab = app.CreateChannel(spe4a, spe4b)
	t4ba = app.CreateChannel(spe4b, spe4a)
	t5ab = app.CreateChannel(spe5a, spe5b)
	t5ba = app.CreateChannel(spe5b, spe5a)
	for _, ch := range []*cellpilot.Channel{t2down, t2up, t4ab, t4ba, t5ab, t5ba} {
		ch.SetName(fmt.Sprintf("%s/%d", ch.Type(), ch.ID()))
	}

	err = app.Run(func(ctx *cellpilot.Ctx) {
		ctx.RunSPE(spe2, 0, nil)
		ctx.RunSPE(spe4a, 0, nil)
		ctx.RunSPE(spe4b, 0, nil)
		ctx.RunSPE(spe5a, 0, nil)
		buf := make([]int32, 32)
		for r := 0; r < n; r++ {
			ctx.Write(t2down, "%32d", buf)
			ctx.Read(t2up, "%32d", buf)
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("timeline (first %d of %d events):\n", *events, len(rec.Events()))
	for i, ev := range rec.Events() {
		if i >= *events {
			break
		}
		fmt.Printf("  [%12s] %-7s ch=%-3d %5dB  %s\n", ev.At, ev.Kind, ev.Channel, ev.Bytes, ev.Proc)
	}
	fmt.Println()
	fmt.Print(rec.Summary())
	fmt.Println()
	fmt.Print(app.Stats())
}
