// Command clusterinfo prints the topology of a simulated hybrid cluster:
// nodes, processors, SPE local stores and the effective-address layout —
// a quick way to see the machine the other tools run on.
package main

import (
	"flag"
	"fmt"
	"log"

	"cellpilot/internal/cellbe"
	"cellpilot/internal/cluster"
)

func main() {
	cellNodes := flag.Int("cells", 8, "Cell blades")
	cellsPer := flag.Int("cells-per-node", 2, "Cell processors per blade")
	xeons := flag.Int("xeons", 4, "conventional nodes")
	cores := flag.Int("cores", 8, "cores per conventional node")
	flag.Parse()

	c, err := cluster.New(cluster.Spec{
		CellNodes: *cellNodes, CellsPerNode: *cellsPer,
		XeonNodes: *xeons, XeonCores: *cores,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster: %d nodes, %d SPEs total\n\n", len(c.Nodes), c.TotalSPEs())
	for _, n := range c.Nodes {
		fmt.Printf("node %d %-8s arch=%-5s cores=%d mem=%dMB\n",
			n.ID, n.Name, n.Arch, n.Cores, n.Mem.Size()>>20)
		for _, cell := range n.Cells {
			fmt.Printf("  cell %d: PPE + %d SPEs (EIB %.1f GB/s)\n",
				cell.Index, len(cell.SPEs), c.Params.EIBBytesPerSec/1e9)
			for _, spe := range cell.SPEs {
				fmt.Printf("    spe%-2d LS %3dKB at EA %#x\n",
					spe.GlobalIndex, spe.LS.Size()>>10, spe.LSBase())
			}
		}
	}
	fmt.Printf("\nSPE local-store budget under each library:\n")
	fmt.Printf("  CellPilot runtime: %d bytes resident\n", c.Params.CellPilotFootprint)
	fmt.Printf("  DaCS runtime:      %d bytes resident\n", c.Params.DaCSFootprint)
	fmt.Printf("  LS map: base %#x, stride %#x per SPE\n", cellbe.LSMapBase, cellbe.LSMapStride)
}
