module cellpilot

go 1.22
