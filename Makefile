# Standard-library Go only; everything runs offline.

GO ?= go

.PHONY: build test vet race bench ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchmem

# Tier-1 gate: what must stay green on every change.
ci: build vet test

# Deeper sweep (slower): tier-1 plus the race detector.
ci-full: ci race
.PHONY: ci-full
