# Standard-library Go only; everything runs offline.

GO ?= go

.PHONY: build test vet race bench ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchmem

# Tier-1 gate: what must stay green on every change.
ci: build vet test

# Robustness gate: the seeded chaos suite (fault injection, degradation,
# determinism) plus a short fuzz smoke of the format parser.
ci-chaos:
	$(GO) test -run 'TestChaos' ./internal/workload/
	$(GO) test -run 'TestReliable' ./internal/mpi/
	$(GO) test -run 'Fault|Timeout|Kill|Degradation|Recover|Lossy|Mailbox' ./internal/core/ ./internal/fault/
	$(GO) test -run '^$$' -fuzz=FuzzParse -fuzztime=5s ./internal/fmtmsg
.PHONY: ci-chaos

# Observability gate: profiler, flight recorder, sampling, congestion
# telemetry, metrics endpoint, the zero-virtual-cost guarantee, and the
# critical-path analyzer (exact partition, golden blame table, blame
# diff) — plus a profile-experiment smoke run exercising both export
# formats.
ci-obs:
	$(GO) test -run 'Observability|Flight|Sampling|Chrome|Telemetry|Attach|ChunkSpan|StreamInflight' ./internal/core/ ./internal/trace/
	$(GO) test ./internal/profile/ ./internal/metrics/ ./internal/critpath/
	$(GO) test -run 'CritPath|GoldenBlame|BlameDiff' ./internal/workload/
	$(GO) run ./cmd/cellpilot-bench -exp profile -reps 5 -trace-type 2 \
		-folded /tmp/cellpilot-ci.folded -pprof /tmp/cellpilot-ci.pb.gz >/dev/null
	@rm -f /tmp/cellpilot-ci.folded /tmp/cellpilot-ci.pb.gz
.PHONY: ci-obs

# Machine-readable benchmark results (BENCH_<exp>.json) under results/.
bench-json:
	@mkdir -p results
	$(GO) run ./cmd/cellpilot-bench -exp pingpong -out results
	$(GO) run ./cmd/cellpilot-bench -exp sizesweep -out results
.PHONY: bench-json

# Performance-regression gate: re-measure the five-type pingpong grid and
# fail if any channel type's one-way p50 regressed >10% vs the committed
# results/BENCH_pingpong.json baseline. A tripped gate prints the
# critical-path blame diff against results/BLAME_pingpong.json, naming
# the stage that got slower and whether it is service or queueing time.
bench-guard:
	$(GO) run ./cmd/cellpilot-bench -exp guard
.PHONY: bench-guard

# Deeper sweep (slower): tier-1 plus the race detector, the chaos and
# observability gates, the perf-regression guard, and staticcheck when the
# host has it installed.
ci-full: ci race ci-chaos ci-obs bench-guard
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping"; \
	fi
.PHONY: ci-full
