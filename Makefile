# Standard-library Go only; everything runs offline.

GO ?= go

.PHONY: build test vet race bench ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchmem

# Tier-1 gate: what must stay green on every change.
ci: build vet test

# Robustness gate: the seeded chaos suite (fault injection, degradation,
# determinism) plus a short fuzz smoke of the format parser.
ci-chaos:
	$(GO) test -run 'TestChaos' ./internal/workload/
	$(GO) test -run 'TestReliable' ./internal/mpi/
	$(GO) test -run 'Fault|Timeout|Kill|Degradation|Recover|Lossy|Mailbox' ./internal/core/ ./internal/fault/
	$(GO) test -run '^$$' -fuzz=FuzzParse -fuzztime=5s ./internal/fmtmsg
.PHONY: ci-chaos

# Deeper sweep (slower): tier-1 plus the race detector and the chaos gate.
ci-full: ci race ci-chaos
.PHONY: ci-full
