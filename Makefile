# Standard-library Go only; everything runs offline.

GO ?= go

.PHONY: build test vet race bench ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchmem

# Tier-1 gate: what must stay green on every change.
ci: build vet test

# Robustness gate: the seeded chaos suite (fault injection, degradation,
# determinism) plus a short fuzz smoke of the format parser.
ci-chaos:
	$(GO) test -run 'TestChaos' ./internal/workload/
	$(GO) test -run 'TestReliable' ./internal/mpi/
	$(GO) test -run 'Fault|Timeout|Kill|Degradation|Recover|Lossy|Mailbox' ./internal/core/ ./internal/fault/
	$(GO) test -run '^$$' -fuzz=FuzzParse -fuzztime=5s ./internal/fmtmsg
.PHONY: ci-chaos

# Observability gate: profiler, flight recorder, sampling, congestion
# telemetry, metrics endpoint, the zero-virtual-cost guarantee, and the
# critical-path analyzer (exact partition, golden blame table, blame
# diff) — plus a profile-experiment smoke run exercising both export
# formats.
ci-obs:
	$(GO) test -run 'Observability|Flight|Sampling|Chrome|Telemetry|Attach|ChunkSpan|StreamInflight' ./internal/core/ ./internal/trace/
	$(GO) test ./internal/profile/ ./internal/metrics/ ./internal/critpath/
	$(GO) test -run 'CritPath|GoldenBlame|BlameDiff' ./internal/workload/
	$(GO) run ./cmd/cellpilot-bench -exp profile -reps 5 -trace-type 2 \
		-folded /tmp/cellpilot-ci.folded -pprof /tmp/cellpilot-ci.pb.gz >/dev/null
	@rm -f /tmp/cellpilot-ci.folded /tmp/cellpilot-ci.pb.gz
.PHONY: ci-obs

# Scenario-fleet gate: the scenario DSL unit suites (parser, lowering,
# assertions, CLI verbs), a short fuzz smoke of the YAML-subset parser,
# then the checked-in scenarios/ library validated end to end against
# its golden determinism fingerprints. `go run ./cmd/cellpilot-bench
# validate -quick` is the cheap variant (shrunk measurement arms, golden
# comparison skipped).
ci-scenarios:
	$(GO) test ./internal/scenario/ ./cmd/cellpilot-bench/
	$(GO) test -run '^$$' -fuzz=FuzzScenarioParse -fuzztime=5s ./internal/scenario/
	$(GO) run ./cmd/cellpilot-bench validate
.PHONY: ci-scenarios

# Timeline gate: the windowed virtual-time telemetry recorder (bucket
# math, analytics, recovery detection, fingerprints), its core/App and
# scenario-DSL integrations (temporal assertions, zero-cost contract),
# then the two scenarios that carry calibrated temporal assertions
# validated against their golden fingerprints.
ci-timeline:
	$(GO) test ./internal/timeline/
	$(GO) test -run 'Timeline|Temporal|ClockHook' ./internal/sim/ ./internal/core/ ./internal/scenario/
	$(GO) run ./cmd/cellpilot-bench validate scenarios/az-node-loss.yaml scenarios/hotspot-contention.yaml
.PHONY: ci-timeline

# Flow-observatory gate: the flowmap unit suite (bounded exact table,
# overflow bucket, fingerprint stability, matrix growth), the
# zero-virtual-cost proof with the flowmap arm, the kernel-arm
# determinism check (flow tables bit-identical across calendar/heap/
# sharded drivers), the scenario-DSL `flow` assertion suites, and the
# relay-hotspot scenario validated against its golden fingerprint.
ci-flows:
	$(GO) test ./internal/flowmap/
	$(GO) test -run 'ObservabilityZeroCost|KernelArms' ./internal/core/ ./internal/workload/
	$(GO) test -run 'TestFlow' ./internal/scenario/
	$(GO) run ./cmd/cellpilot-bench validate scenarios/relay-hotspot.yaml
.PHONY: ci-flows

# Kernel microbenchmarks, both event-queue implementations side by side:
# push/pop, steady-state churn and the cancel/purge path on the calendar
# queue vs the retained heap, plus the allocation-free dispatch/handoff
# paths (-benchmem makes a pooling regression visible as allocs/op).
bench-kernel:
	$(GO) test -run '^$$' -bench 'HeapPushPop|QueueChurn|TimerCancelPurge|EventThroughput|QueueHandoff' -benchmem ./internal/sim/
.PHONY: bench-kernel

# Parallel-kernel gate: the sharded runtime's determinism suites under
# the race detector — the sim-layer LP protocol tests, the kiloscale
# seq-vs-par fingerprint equivalence, and the scenario fleet driven
# through the sharded runtime.
ci-parallel:
	$(GO) test -race -run 'TestSharded|TestQueueDifferential|TestKernelQueueKinds|TestCancelCompaction' ./internal/sim/
	$(GO) test -race -run 'Kiloscale|KernelArms' ./internal/workload/
	$(GO) test -race -run 'TestScenarioFleet' ./internal/scenario/
.PHONY: ci-parallel

# Machine-readable benchmark results (BENCH_<exp>.json) under results/.
bench-json:
	@mkdir -p results
	$(GO) run ./cmd/cellpilot-bench -exp pingpong -out results
	$(GO) run ./cmd/cellpilot-bench -exp sizesweep -out results
.PHONY: bench-json

# Performance-regression gate: re-measure the five-type pingpong grid and
# fail if any channel type's one-way p50 regressed >10% vs the committed
# results/BENCH_pingpong.json baseline (plus, when a host baseline is
# committed, the noise-aware host-cost comparison). A tripped gate prints
# the critical-path blame diff against results/BLAME_pingpong.json, naming
# the stage that got slower and whether it is service or queueing time.
bench-guard:
	$(GO) run ./cmd/cellpilot-bench -exp guard
.PHONY: bench-guard

# Host-cost benchmark ledger: run the wall-clock suite (pingpong x5 types,
# sizesweep, chaos, 64-node IMB) and write the schema-versioned
# results/BENCH_hostbench.json — commit it as the guard baseline.
# The committed baseline uses the CI-shrunk (-quick) workloads so the
# ci-host gate re-measures the identical suite shape cheaply.
bench-host:
	@mkdir -p results
	$(GO) run ./cmd/cellpilot-bench -exp hostbench -quick -iters 5 -out results
.PHONY: bench-host

# Host-cost gate: kernel microbenchmarks, the hostprof/hostbench unit
# suites, the host-side determinism proofs, then the noise-aware guard —
# reduced iterations against the committed baseline, with MAD-derived
# tolerance bands absorbing machine noise.
ci-host:
	$(GO) test ./internal/hostprof/ ./internal/hostbench/ ./cmd/cellpilot-bench/
	$(GO) test -run 'HostProf|ObservabilityZeroCost' ./internal/workload/ ./internal/core/
	$(GO) test -run '^$$' -bench 'HeapPushPop|TimerCancelPurge|EventDispatch' -benchtime 100000x ./internal/sim/
	$(GO) run ./cmd/cellpilot-bench -exp guard -reps 200 -iters 2
.PHONY: ci-host

# Deeper sweep (slower): tier-1 plus the race detector, the chaos,
# observability, scenario-fleet and host-cost gates, the perf-regression
# guard, and staticcheck when the host has it installed.
ci-full: ci race ci-chaos ci-obs ci-scenarios ci-timeline ci-flows ci-parallel bench-guard ci-host
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping"; \
	fi
.PHONY: ci-full
