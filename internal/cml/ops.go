package cml

import (
	"encoding/binary"

	"cellpilot/internal/cellbe"
)

// rank-side helpers: every operation stages payload bytes in the SPE
// local store, DMAs them to/from the rank's main-memory staging buffer,
// and exchanges two-word descriptors with the node's router through the
// hardware mailboxes — the receiver-initiated protocol of the CML paper.

func (c *Ctx) fail(format string, args ...any) {
	c.P.Fatalf("cml: rank %d: "+format, append([]any{c.rs.id}, args...)...)
}

// stageOut copies data into LS and DMAs it to the staging buffer.
func (c *Ctx) stageOut(data []byte) {
	if len(data) == 0 || len(data) > MaxMessage {
		c.fail("message of %d bytes out of range (1..%d)", len(data), MaxMessage)
	}
	size := cellbe.Align(len(data), 16)
	lsAddr, err := c.rs.spe.LS.Alloc("cml-out", size, 128)
	if err != nil {
		c.fail("%v", err)
	}
	defer c.rs.spe.LS.Release()
	win, err := c.rs.spe.LS.Window(lsAddr, len(data))
	if err != nil {
		c.fail("%v", err)
	}
	copy(win, data)
	if err := c.rs.sctx.MFCPut(c.P, lsAddr, c.rs.staging, size, 1); err != nil {
		c.fail("%v", err)
	}
	c.rs.sctx.TagWait(c.P, 1<<1)
}

// stageIn DMAs size bytes from the staging buffer into LS and returns a
// copy.
func (c *Ctx) stageIn(size int) []byte {
	aligned := cellbe.Align(size, 16)
	lsAddr, err := c.rs.spe.LS.Alloc("cml-in", aligned, 128)
	if err != nil {
		c.fail("%v", err)
	}
	defer c.rs.spe.LS.Release()
	if err := c.rs.sctx.MFCGet(c.P, lsAddr, c.rs.staging, aligned, 2); err != nil {
		c.fail("%v", err)
	}
	c.rs.sctx.TagWait(c.P, 1<<2)
	win, err := c.rs.spe.LS.Window(lsAddr, size)
	if err != nil {
		c.fail("%v", err)
	}
	return append([]byte(nil), win...)
}

// request posts a two-word descriptor and nudges the router.
func (c *Ctx) request(op opcode, peer, size int) {
	c.rs.sctx.WriteOutMbox(c.P, word0(op, peer))
	c.w.routers[c.rs.node].nudge()
	c.rs.sctx.WriteOutMbox(c.P, uint32(size))
}

// ack blocks on the inbound mailbox for the router's reply.
func (c *Ctx) ack() uint32 { return c.rs.sctx.ReadInMbox(c.P) }

// Send transmits data to rank dst (MPI_Send; no tags in the CML subset).
func (c *Ctx) Send(dst int, data []byte) {
	c.stageOut(data)
	c.request(opSend, dst, len(data))
	c.ack()
}

// Recv receives the next message from rank src (MPI_Recv).
func (c *Ctx) Recv(src int) []byte {
	if src < 0 || src >= len(c.w.ranks) || src == c.rs.id {
		c.fail("recv from invalid rank %d", src)
	}
	c.request(opRecv, src, 0)
	size := int(c.ack())
	return c.stageIn(size)
}

// Bcast distributes root's data to every rank (hierarchical MPI_Bcast:
// the root's router fans out locally and over MPI to the other routers).
// The root passes the payload; others pass nil and receive it.
func (c *Ctx) Bcast(root int, data []byte) []byte {
	if c.rs.id == root {
		c.stageOut(data)
		c.request(opBcastRoot, root, len(data))
		c.ack()
		return data
	}
	c.request(opBcastRecv, root, 0)
	size := int(c.ack())
	return c.stageIn(size)
}

// ReduceInt32 combines every rank's int32 vector elementwise (sum) at
// root (hierarchical MPI_Reduce: local combining on each PPE router,
// partials to the root's router). The root gets the result; others nil.
func (c *Ctx) ReduceInt32(root int, contrib []int32) []int32 {
	wire := make([]byte, 4*len(contrib))
	for i, v := range contrib {
		binary.BigEndian.PutUint32(wire[i*4:], uint32(v))
	}
	c.stageOut(wire)
	if c.rs.id == root {
		c.request(opReduceRecv, root, len(wire))
		size := int(c.ack())
		out := c.stageIn(size)
		res := make([]int32, size/4)
		for i := range res {
			res[i] = int32(binary.BigEndian.Uint32(out[i*4:]))
		}
		return res
	}
	c.request(opReduceSend, root, len(wire))
	c.ack()
	return nil
}

// AllreduceInt32 is Reduce to rank 0 followed by Bcast (CML's
// hierarchical MPI_Allreduce).
func (c *Ctx) AllreduceInt32(contrib []int32) []int32 {
	res := c.ReduceInt32(0, contrib)
	var wire []byte
	if c.rs.id == 0 {
		wire = make([]byte, 4*len(res))
		for i, v := range res {
			binary.BigEndian.PutUint32(wire[i*4:], uint32(v))
		}
	}
	out := c.Bcast(0, wire)
	final := make([]int32, len(out)/4)
	for i := range final {
		final[i] = int32(binary.BigEndian.Uint32(out[i*4:]))
	}
	return final
}

// Barrier synchronizes every rank (a 1-element Allreduce, as small CML
// deployments do).
func (c *Ctx) Barrier() {
	c.AllreduceInt32([]int32{0})
}
