// Package cml is a working model of the Cell Messaging Layer (the
// paper's reference [10], Pakin's receiver-initiated message passing):
// a small MPI subset where ranks live on the SPEs — not the PPEs, which
// are reserved for the library as per-node routers carrying out
// inter-Cell communication over conventional MPI.
//
// The paper rejects CML as a substrate because of its "limited
// implementation": ranks cannot live on PPEs or non-Cell nodes, there
// are no tags or wildcards, and only Send/Recv plus hierarchical Bcast,
// Reduce and Allreduce exist. Those limits are reproduced here, which is
// what makes the comparison meaningful: CML's special-purpose path is
// faster than CellPilot's general type-5 channel (see the experiments),
// and CellPilot's contribution is generality, not raw speed.
package cml

import (
	"fmt"

	"cellpilot/internal/cellbe"
	"cellpilot/internal/cluster"
	"cellpilot/internal/mpi"
	"cellpilot/internal/sdk"
	"cellpilot/internal/sim"
)

// RuntimeFootprint is the SPE local-store cost of the CML runtime. CML
// is famously tiny compared to full MPI stacks; the model charges 8 KB.
const RuntimeFootprint = 8 * 1024

// MaxMessage bounds a single CML message (one staging buffer).
const MaxMessage = 16 * 1024

// World is a CML job: one rank per participating SPE, a router process
// per Cell node.
type World struct {
	clu     *cluster.Cluster
	par     *cellbe.Params
	mpiw    *mpi.World
	ranks   []*rankState
	routers []*router
	body    func(ctx *Ctx)
	errs    []error
}

type rankState struct {
	id      int
	node    int
	spe     *cellbe.SPE
	sctx    *sdk.Context
	staging int64 // per-rank main-memory staging buffer EA
}

// Ctx is a rank's handle inside the job body.
type Ctx struct {
	w  *World
	rs *rankState
	P  *sim.Proc
}

// NewWorld builds a CML job over every Cell node, ranksPerNode SPE ranks
// on each. Non-Cell nodes cannot host ranks (the limitation the paper
// cites).
func NewWorld(clu *cluster.Cluster, ranksPerNode int) (*World, error) {
	cells := clu.CellNodesList()
	if len(cells) == 0 {
		return nil, fmt.Errorf("cml: no Cell nodes")
	}
	w := &World{clu: clu, par: clu.Params}
	placements := make([]mpi.Placement, 0, len(cells))
	for _, n := range cells {
		if ranksPerNode > len(n.SPEs()) {
			return nil, fmt.Errorf("cml: %d ranks per node exceeds %d SPEs", ranksPerNode, len(n.SPEs()))
		}
		placements = append(placements, mpi.Placement{Node: n.ID, Label: fmt.Sprintf("cml-router@%s", n.Name)})
	}
	mw, err := mpi.NewWorld(clu, placements)
	if err != nil {
		return nil, err
	}
	w.mpiw = mw
	for ni, n := range cells {
		rt := newRouter(w, ni, n, mw.Rank(ni))
		w.routers = append(w.routers, rt)
		for s := 0; s < ranksPerNode; s++ {
			spe, err := n.SPE(s)
			if err != nil {
				return nil, err
			}
			staging, err := n.Mem.Alloc(MaxMessage, 128)
			if err != nil {
				return nil, err
			}
			rs := &rankState{id: len(w.ranks), node: ni, spe: spe, staging: staging}
			w.ranks = append(w.ranks, rs)
			rt.local = append(rt.local, rs)
		}
	}
	return w, nil
}

// Size reports the rank count.
func (w *World) Size() int { return len(w.ranks) }

// Run loads the CML runtime plus body onto every rank's SPE and drives
// the job to completion.
func (w *World) Run(body func(ctx *Ctx)) error {
	w.body = body
	k := w.clu.K
	for _, rt := range w.routers {
		rt := rt
		k.Spawn(rt.rank.Label(), rt.loop)
	}
	live := len(w.ranks)
	for _, rs := range w.ranks {
		rs := rs
		sctx, err := sdk.ContextCreate(k, rs.spe)
		if err != nil {
			return err
		}
		prog := &sdk.Program{Name: fmt.Sprintf("cml-rank%d", rs.id), Main: func(c *sdk.Context, _ int, _ any) {
			body(&Ctx{w: w, rs: rs, P: c.Proc})
			live--
			if live == 0 {
				for _, rt := range w.routers {
					rt.shutdown = true
					rt.nudge()
				}
			}
		}}
		if err := sctx.Load(prog, RuntimeFootprint); err != nil {
			return err
		}
		rs.sctx = sctx
		if err := sctx.Run(rs.id, nil); err != nil {
			return err
		}
	}
	if err := k.Run(); err != nil {
		return err
	}
	if len(w.errs) > 0 {
		return w.errs[0]
	}
	return nil
}

// Rank reports the calling rank's id.
func (c *Ctx) Rank() int { return c.rs.id }

// Size reports the job's rank count.
func (c *Ctx) Size() int { return c.w.Size() }
