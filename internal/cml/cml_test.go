package cml

import (
	"bytes"
	"testing"

	"cellpilot/internal/cluster"
	"cellpilot/internal/sim"
)

func newClu(t *testing.T, cells int) *cluster.Cluster {
	t.Helper()
	c, err := cluster.New(cluster.Spec{CellNodes: cells})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRanksLiveOnSPEsOnly(t *testing.T) {
	clu := newClu(t, 2)
	w, err := NewWorld(clu, 4)
	if err != nil {
		t.Fatal(err)
	}
	if w.Size() != 8 {
		t.Fatalf("size = %d", w.Size())
	}
	// Non-Cell-only cluster is rejected.
	x, _ := cluster.New(cluster.Spec{XeonNodes: 2})
	if _, err := NewWorld(x, 1); err == nil {
		t.Fatal("CML without Cell nodes accepted")
	}
	if _, err := NewWorld(newClu(t, 1), 99); err == nil {
		t.Fatal("too many ranks per node accepted")
	}
}

func TestSendRecvLocalAndRemote(t *testing.T) {
	clu := newClu(t, 2)
	w, err := NewWorld(clu, 2) // ranks 0,1 on node 0; 2,3 on node 1
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(ctx *Ctx) {
		switch ctx.Rank() {
		case 0:
			ctx.Send(1, []byte("local hop"))  // same node
			ctx.Send(2, []byte("remote hop")) // via both routers
		case 1:
			if got := ctx.Recv(0); string(got) != "local hop" {
				ctx.fail("got %q", got)
			}
		case 2:
			if got := ctx.Recv(0); string(got) != "remote hop" {
				ctx.fail("got %q", got)
			}
			ctx.Send(3, bytes.Repeat([]byte{7}, 4096))
		case 3:
			got := ctx.Recv(2)
			if len(got) != 4096 || got[0] != 7 || got[4095] != 7 {
				ctx.fail("big local payload wrong")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcastHierarchical(t *testing.T) {
	clu := newClu(t, 2)
	w, err := NewWorld(clu, 3)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("from rank 4")
	err = w.Run(func(ctx *Ctx) {
		var in []byte
		if ctx.Rank() == 4 {
			in = payload
		}
		got := ctx.Bcast(4, in)
		if !bytes.Equal(got, payload) {
			ctx.fail("bcast got %q", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceAndAllreduce(t *testing.T) {
	clu := newClu(t, 2)
	w, err := NewWorld(clu, 2) // 4 ranks
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(ctx *Ctx) {
		contrib := []int32{int32(ctx.Rank() + 1), int32(-(ctx.Rank() + 1))}
		res := ctx.ReduceInt32(2, contrib) // root on node 1
		if ctx.Rank() == 2 {
			if res == nil || res[0] != 10 || res[1] != -10 { // 1+2+3+4
				ctx.fail("reduce = %v", res)
			}
		} else if res != nil {
			ctx.fail("non-root got a result")
		}
		all := ctx.AllreduceInt32([]int32{1})
		if all[0] != int32(ctx.Size()) {
			ctx.fail("allreduce = %v", all)
		}
		ctx.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCMLFasterThanCellPilotType5 verifies the paper's implicit
// trade-off: the special-purpose CML path beats CellPilot's general
// type-5 channel for remote SPE↔SPE transfers, because CellPilot buys
// generality (PPE/non-Cell endpoints, formats, architecture checks) with
// Co-Pilot overhead.
func TestCMLFasterThanCellPilotType5(t *testing.T) {
	clu := newClu(t, 2)
	w, err := NewWorld(clu, 1) // rank 0 on node 0, rank 1 on node 1
	if err != nil {
		t.Fatal(err)
	}
	const reps = 50
	payload := bytes.Repeat([]byte{3}, 1600)
	var total sim.Time
	err = w.Run(func(ctx *Ctx) {
		if ctx.Rank() == 0 {
			start := ctx.P.Now()
			for i := 0; i < reps; i++ {
				ctx.Send(1, payload)
				ctx.Recv(1)
			}
			total = ctx.P.Now() - start
		} else {
			for i := 0; i < reps; i++ {
				got := ctx.Recv(0)
				ctx.Send(0, got)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	oneWay := total / (2 * reps)
	// CellPilot type 5 at 1600 B measures 238 µs (golden); CML should be
	// meaningfully cheaper while still crossing the same wire.
	if oneWay >= 238*sim.Microsecond {
		t.Fatalf("CML one-way %s not faster than CellPilot type 5", oneWay)
	}
	if oneWay < 100*sim.Microsecond {
		t.Fatalf("CML one-way %s implausibly beats raw internode MPI", oneWay)
	}
	t.Logf("CML remote SPE<->SPE one-way: %s (CellPilot type 5: 238us)", oneWay)
}

func TestLSBudgetUnderCML(t *testing.T) {
	// The tiny CML runtime leaves nearly the whole store; paper context:
	// CellPilot (10336) is small, DaCS (36600) is big, CML is smaller yet.
	clu := newClu(t, 1)
	w, err := NewWorld(clu, 1)
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(ctx *Ctx) {
		free := ctx.rs.spe.LS.Free()
		par := ctx.w.par
		if free < par.LSSize-RuntimeFootprint-par.DefaultCodeSize-par.StackReserve-64 {
			ctx.fail("free LS %d below the CML budget", free)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
