package cml

import (
	"encoding/binary"
	"fmt"

	"cellpilot/internal/cellbe"
	"cellpilot/internal/mpi"
	"cellpilot/internal/sim"
)

// Rank-side mailbox descriptors: two 32-bit words, opcode|peer then size.
type opcode uint32

const (
	opSend opcode = iota + 1
	opRecv
	opBcastRoot
	opBcastRecv
	opReduceSend
	opReduceRecv
)

// cmlDispatch is the router's per-descriptor processing cost: CML is a
// lean special-purpose runtime, far cheaper than the general Co-Pilot.
const cmlDispatch = 5 * sim.Microsecond

func word0(op opcode, peer int) uint32 { return uint32(op)<<24 | uint32(peer&0xFFFFFF) }

func parseWord0(w uint32) (opcode, int) { return opcode(w >> 24), int(w & 0xFFFFFF) }

// Router-router MPI tags encode (kind, src-or-root).
func sendTag(src, dst int) int   { return 1<<18 | src<<9 | dst }
func bcastTag(root int) int      { return 2<<18 | root }
func reducePartial(root int) int { return 3<<18 | root }

// router is the per-Cell-node PPE process CML reserves for itself.
type router struct {
	w     *World
	idx   int
	node  *cellbe.Node
	rank  *mpi.Rank
	local []*rankState
	q     *sim.Queue[struct{}]

	shutdown bool
	// Matching state.
	sends  map[[2]int][]*queuedSend
	recvs  map[[2]int][]*rankState
	bcasts map[int][]*bcastMsg // root -> FIFO of messages being fanned out
	bwait  map[int][]*rankState
	reduce map[int]*reduceOp // root -> in-progress reduction
	rwait  map[int]*rankState
}

// queuedSend is one message waiting for its receiver: a local sender's
// staging reference (sender acked only on delivery — receiver-initiated
// semantics) or an arrived remote payload.
type queuedSend struct {
	data []byte     // remote payload; nil when src is set
	src  *rankState // local sender, acked at delivery
	size int
}

type bcastMsg struct {
	data      []byte
	remaining int
}

type reduceOp struct {
	acc          []byte
	localGot     int
	partialsGot  int
	rootDeliverd bool
}

func newRouter(w *World, idx int, node *cellbe.Node, rank *mpi.Rank) *router {
	rt := &router{
		w: w, idx: idx, node: node, rank: rank,
		q:      sim.NewQueue[struct{}](w.clu.K, fmt.Sprintf("cml-router%d/events", idx), 1<<14),
		sends:  map[[2]int][]*queuedSend{},
		recvs:  map[[2]int][]*rankState{},
		bcasts: map[int][]*bcastMsg{},
		bwait:  map[int][]*rankState{},
		reduce: map[int]*reduceOp{},
		rwait:  map[int]*rankState{},
	}
	rank.OnArrival(func() { rt.q.TryPut(struct{}{}) })
	return rt
}

func (rt *router) nudge() { rt.q.TryPut(struct{}{}) }

func (rt *router) fail(p *sim.Proc, format string, args ...any) {
	err := fmt.Errorf("cml: "+format, args...)
	rt.w.errs = append(rt.w.errs, err)
	p.Fatalf("%v", err)
}

// staging returns rank rs's staging window for size bytes.
func (rt *router) staging(p *sim.Proc, rs *rankState, size int) []byte {
	win, err := rt.w.clu.Nodes[rt.node.ID].Mem.Window(rs.staging, size)
	if err != nil {
		rt.fail(p, "staging: %v", err)
	}
	return win
}

func (rt *router) loop(p *sim.Proc) {
	par := rt.w.par
	for {
		if rt.shutdown {
			return
		}
		rt.q.Get(p)
		if rt.shutdown {
			return
		}
		for {
			if poll := par.CoPilotPoll; poll > 0 {
				tick := (p.Now() + poll - 1) / poll * poll
				p.AdvanceTo(tick)
			}
			if !rt.step(p) {
				break
			}
		}
	}
}

// step drains one rank descriptor or one incoming MPI message.
func (rt *router) step(p *sim.Proc) bool {
	// Rank descriptors first.
	for _, rs := range rt.local {
		if rs.sctx == nil {
			continue
		}
		w0, ok := rs.sctx.TryReadOutMbox(p)
		if !ok {
			continue
		}
		op, peer := parseWord0(w0)
		size := int(rs.sctx.ReadOutMbox(p))
		p.Advance(cmlDispatch)
		rt.handleDescriptor(p, rs, op, peer, size)
		return true
	}
	// Then incoming router-router traffic.
	if st, ok := rt.rank.Iprobe(p, mpi.AnySource, mpi.AnyTag); ok {
		p.Advance(cmlDispatch)
		// Receiver-initiated fast path: a point-to-point payload whose
		// receive is already posted lands directly in the receiver's
		// staging buffer — no intermediate copy.
		if st.Tag>>18 == 1 {
			src := (st.Tag >> 9) & 0x1FF
			dst := st.Tag & 0x1FF
			key := [2]int{src, dst}
			if len(rt.recvs[key]) > 0 {
				rs := rt.recvs[key][0]
				rt.recvs[key] = rt.recvs[key][1:]
				rt.rank.RecvInto(p, st.Source, st.Tag, rt.staging(p, rs, st.Count))
				rs.spe.InMbox.Write(p, uint32(st.Count))
				return true
			}
		}
		data, rst := rt.rank.Recv(p, st.Source, st.Tag)
		rt.handleIncoming(p, rst.Tag, data)
		return true
	}
	return false
}

func (rt *router) handleDescriptor(p *sim.Proc, rs *rankState, op opcode, peer, size int) {
	w := rt.w
	switch op {
	case opSend:
		if peer < 0 || peer >= len(w.ranks) || peer == rs.id {
			rt.fail(p, "rank %d sends to invalid rank %d", rs.id, peer)
		}
		dst := w.ranks[peer]
		if dst.node == rt.idx {
			// Receiver-initiated local transfer: the payload stays in the
			// sender's staging buffer; the sender is acked at delivery.
			rt.sends[[2]int{rs.id, peer}] = append(rt.sends[[2]int{rs.id, peer}],
				&queuedSend{src: rs, size: size})
			rt.match(p, rs.id, peer)
		} else {
			// Isend snapshots the staging window, so the sender may reuse
			// it as soon as we ack.
			rt.rank.Isend(p, dst.node, sendTag(rs.id, peer), rt.staging(p, rs, size))
			rs.spe.InMbox.Write(p, 0)
		}

	case opRecv:
		rt.recvs[[2]int{peer, rs.id}] = append(rt.recvs[[2]int{peer, rs.id}], rs)
		rt.match(p, peer, rs.id)

	case opBcastRoot:
		payload := append([]byte(nil), rt.staging(p, rs, size)...)
		p.Advance(w.par.ShmCopyTime(size))
		for _, other := range rt.w.routers {
			if other.idx != rt.idx {
				rt.rank.Isend(p, other.idx, bcastTag(rs.id), payload)
			}
		}
		rt.enqueueBcast(p, rs.id, payload, len(rt.local)-1)
		rs.spe.InMbox.Write(p, 0)

	case opBcastRecv:
		rt.bwait[peer] = append(rt.bwait[peer], rs)
		rt.matchBcast(p, peer)

	case opReduceSend, opReduceRecv:
		root := peer
		contrib := append([]byte(nil), rt.staging(p, rs, size)...)
		p.Advance(w.par.ShmCopyTime(size))
		red := rt.reduce[root]
		if red == nil {
			red = &reduceOp{}
			rt.reduce[root] = red
		}
		red.combine(contrib)
		red.localGot++
		if op == opReduceRecv {
			rt.rwait[root] = rs // the root rank waits for the result here
		} else {
			rs.spe.InMbox.Write(p, 0)
		}
		rt.progressReduce(p, root)
	}
}

func (rt *router) handleIncoming(p *sim.Proc, tag int, data []byte) {
	kind := tag >> 18
	switch kind {
	case 1: // point-to-point
		src := (tag >> 9) & 0x1FF
		dst := tag & 0x1FF
		rt.sends[[2]int{src, dst}] = append(rt.sends[[2]int{src, dst}],
			&queuedSend{data: data, size: len(data)})
		rt.match(p, src, dst)
	case 2: // bcast fan-in from the root's router
		root := tag & 0x3FFFF
		rt.enqueueBcast(p, root, data, rt.localCountExcept(root))
	case 3: // reduce partial from another router (this router hosts root)
		root := tag & 0x3FFFF
		red := rt.reduce[root]
		if red == nil {
			red = &reduceOp{}
			rt.reduce[root] = red
		}
		red.combine(data)
		red.partialsGot++
		rt.progressReduce(p, root)
	}
}

func (rt *router) localCountExcept(rank int) int {
	n := 0
	for _, rs := range rt.local {
		if rs.id != rank {
			n++
		}
	}
	return n
}

// match delivers a queued (src,dst) payload to a waiting local receiver.
func (rt *router) match(p *sim.Proc, src, dst int) {
	key := [2]int{src, dst}
	for len(rt.sends[key]) > 0 && len(rt.recvs[key]) > 0 {
		qs := rt.sends[key][0]
		rt.sends[key] = rt.sends[key][1:]
		rs := rt.recvs[key][0]
		rt.recvs[key] = rt.recvs[key][1:]
		payload := qs.data
		if qs.src != nil {
			payload = rt.staging(p, qs.src, qs.size)
		}
		copy(rt.staging(p, rs, qs.size), payload)
		p.Advance(rt.w.par.ShmCopyTime(qs.size))
		if qs.src != nil {
			qs.src.spe.InMbox.Write(p, 0) // sender completes at delivery
		}
		rs.spe.InMbox.Write(p, uint32(qs.size))
	}
}

func (rt *router) enqueueBcast(p *sim.Proc, root int, data []byte, fanout int) {
	if fanout > 0 {
		rt.bcasts[root] = append(rt.bcasts[root], &bcastMsg{data: data, remaining: fanout})
	}
	rt.matchBcast(p, root)
}

func (rt *router) matchBcast(p *sim.Proc, root int) {
	for len(rt.bcasts[root]) > 0 && len(rt.bwait[root]) > 0 {
		msg := rt.bcasts[root][0]
		rs := rt.bwait[root][0]
		rt.bwait[root] = rt.bwait[root][1:]
		copy(rt.staging(p, rs, len(msg.data)), msg.data)
		p.Advance(rt.w.par.ShmCopyTime(len(msg.data)))
		rs.spe.InMbox.Write(p, uint32(len(msg.data)))
		msg.remaining--
		if msg.remaining == 0 {
			rt.bcasts[root] = rt.bcasts[root][1:]
		}
	}
}

// progressReduce forwards a completed local partial toward the root's
// router, or delivers the final result to the waiting root rank.
func (rt *router) progressReduce(p *sim.Proc, root int) {
	red := rt.reduce[root]
	if red == nil || red.localGot < len(rt.local) {
		return
	}
	rootRouter := rt.w.ranks[root].node
	if rootRouter != rt.idx {
		rt.rank.Isend(p, rootRouter, reducePartial(root), red.acc)
		delete(rt.reduce, root)
		return
	}
	if red.partialsGot < len(rt.w.routers)-1 || red.rootDeliverd {
		return
	}
	rs := rt.rwait[root]
	if rs == nil {
		return // root rank's request not yet decoded
	}
	copy(rt.staging(p, rs, len(red.acc)), red.acc)
	p.Advance(rt.w.par.ShmCopyTime(len(red.acc)))
	rs.spe.InMbox.Write(p, uint32(len(red.acc)))
	red.rootDeliverd = true
	delete(rt.reduce, root)
	delete(rt.rwait, root)
}

// combine folds a big-endian int32 vector contribution into the
// accumulator (CML's reduction kernel; sum).
func (r *reduceOp) combine(in []byte) {
	if r.acc == nil {
		r.acc = append([]byte(nil), in...)
		return
	}
	for off := 0; off+4 <= len(r.acc) && off+4 <= len(in); off += 4 {
		a := int32(binary.BigEndian.Uint32(r.acc[off:]))
		b := int32(binary.BigEndian.Uint32(in[off:]))
		binary.BigEndian.PutUint32(r.acc[off:], uint32(a+b))
	}
}
