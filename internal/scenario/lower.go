package scenario

import (
	"fmt"
	"sort"
	"strings"

	"cellpilot/internal/fault"
	"cellpilot/internal/flowmap"
	"cellpilot/internal/workload"
)

// Validate checks everything about a scenario that can be checked without
// running it: topology shape, workload parameters, fault targets against
// the topology and the chaos process layout, link-policy overlap, and
// assertion/workload binding. A scenario that validates either runs or
// fails an assertion — it never panics or dies on a config mistake at
// virtual time T.
func (s *Scenario) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario needs a name")
	}
	if !validKey(s.Name) {
		return fmt.Errorf("scenario name %q must be a kebab-case identifier", s.Name)
	}
	if s.Seed < 0 {
		return fmt.Errorf("scenario seed must be non-negative, got %d", s.Seed)
	}
	t := s.topology()
	if t.CellNodes < 2 {
		return fmt.Errorf("topology: need at least 2 Cell nodes (the channel grid spans two blades), got %d", t.CellNodes)
	}
	if t.CellsPerNode < 1 || t.CellsPerNode > 4 {
		return fmt.Errorf("topology: cells_per_node must be 1..4, got %d", t.CellsPerNode)
	}
	if t.XeonNodes < 0 {
		return fmt.Errorf("topology: xeon_nodes must be non-negative, got %d", t.XeonNodes)
	}
	if len(s.Workloads) == 0 {
		return fmt.Errorf("scenario needs at least one workload")
	}
	for i, w := range s.Workloads {
		if err := s.validateWorkload(i, w); err != nil {
			return err
		}
	}
	if len(s.Faults) > 0 && !s.hasWorkload(KindChaos) {
		return fmt.Errorf("faults need a chaos workload entry to bite on (pingpong/sizesweep/imb run unhardened and would hang)")
	}
	if s.Timeline.Window < 0 {
		return fmt.Errorf("timeline: window must be non-negative, got %s", s.Timeline.Window)
	}
	if (s.Timeline.Window > 0 || s.hasTemporalAssertion()) && !s.hasWorkload(KindChaos) {
		return fmt.Errorf("timeline: the telemetry recorder attaches to chaos runs — add a chaos workload entry")
	}
	for i, f := range s.Faults {
		if err := s.validateFault(i, f); err != nil {
			return err
		}
	}
	if err := s.checkLinkOverlap(); err != nil {
		return err
	}
	for i, a := range s.Assertions {
		if err := s.validateAssertion(i, a); err != nil {
			return err
		}
	}
	return nil
}

// topology returns the topology with defaults applied.
func (s *Scenario) topology() Topology {
	t := s.Topology
	if t.CellNodes == 0 {
		t.CellNodes = 2
	}
	if t.CellsPerNode == 0 {
		t.CellsPerNode = 2
	}
	if s.Topology.CellNodes == 0 && s.Topology.XeonNodes == 0 {
		t.XeonNodes = 1
	}
	return t
}

// seed returns the scenario seed with the default applied.
func (s *Scenario) seed() int64 {
	if s.Seed == 0 {
		return 1
	}
	return s.Seed
}

func (s *Scenario) hasWorkload(kind string) bool {
	for _, w := range s.Workloads {
		if w.Kind == kind {
			return true
		}
	}
	return false
}

func (s *Scenario) validateWorkload(i int, w Workload) error {
	what := fmt.Sprintf("workloads[%d] (%s)", i, w.Kind)
	switch w.Kind {
	case KindPingPong:
		for _, t := range w.Types {
			if t < 1 || t > 5 {
				return fmt.Errorf("%s: channel type %d out of range 1..5", what, t)
			}
		}
		if w.Bytes < 0 || w.Reps < 0 {
			return fmt.Errorf("%s: bytes and reps must be non-negative", what)
		}
	case KindChaos:
		if w.Bytes < 0 || w.Reps < 0 {
			return fmt.Errorf("%s: bytes and reps must be non-negative", what)
		}
		for _, seed := range w.Seeds {
			if seed < 0 {
				return fmt.Errorf("%s: negative chaos seed %d", what, seed)
			}
		}
		if w.SoftTimeout < 0 {
			return fmt.Errorf("%s: negative soft_timeout", what)
		}
		t := s.topology()
		if t.Nodes() < workload.ChaosNodes {
			return fmt.Errorf("%s: chaos pins traffic to %d nodes but the topology has %d",
				what, workload.ChaosNodes, t.Nodes())
		}
	case KindSizeSweep:
		for _, sz := range w.Sizes {
			if sz < 1 {
				return fmt.Errorf("%s: payload size %d must be positive", what, sz)
			}
		}
		if w.Reps < 0 {
			return fmt.Errorf("%s: reps must be non-negative", what)
		}
	case KindIMB:
		if _, err := imbPattern(w.effective(s.seed(), false).Pattern); err != nil {
			return fmt.Errorf("%s: %v", what, err)
		}
		if w.Ranks < 0 || w.Bytes < 0 || w.Reps < 0 {
			return fmt.Errorf("%s: ranks, bytes and reps must be non-negative", what)
		}
	default:
		return fmt.Errorf("%s: unknown workload kind", what)
	}
	if w.Transfer.ChunkSize < 0 || w.Transfer.PipelineDepth < 0 || w.Transfer.EagerMax < 0 {
		return fmt.Errorf("%s: transfer options must be non-negative", what)
	}
	return nil
}

func (s *Scenario) validateFault(i int, f FaultSpec) error {
	what := fmt.Sprintf("faults[%d] (%s)", i, f.Kind)
	t := s.topology()
	checkNode := func(node int) error {
		if node < 0 || node >= t.Nodes() {
			return fmt.Errorf("%s: node %d does not exist (topology has nodes 0..%d)", what, node, t.Nodes()-1)
		}
		return nil
	}
	checkProc := func(proc string) error {
		for _, p := range workload.ChaosSPEs() {
			if p == proc {
				return nil
			}
		}
		return fmt.Errorf("%s: proc %q is not a chaos SPE stub (valid: %s)",
			what, proc, strings.Join(workload.ChaosSPEs(), ", "))
	}
	switch f.Kind {
	case FaultCrashNode:
		if err := checkNode(f.Node); err != nil {
			return err
		}
		// Crashing node 0, 1 or 2 takes out the chaos endpoints wholesale;
		// that is a legitimate scenario, so only existence is checked.
	case FaultKillCoPilot:
		if err := checkNode(f.Node); err != nil {
			return err
		}
		if f.Node >= t.CellNodes {
			return fmt.Errorf("%s: node %d is an x86 node — only Cell blades (0..%d) run a Co-Pilot",
				what, f.Node, t.CellNodes-1)
		}
	case FaultKillSPE, FaultMailboxDrop:
		if err := checkProc(f.Proc); err != nil {
			return err
		}
	case FaultMailboxStall:
		if err := checkProc(f.Proc); err != nil {
			return err
		}
		if f.Delay <= 0 {
			return fmt.Errorf("%s: a stall needs a positive delay", what)
		}
	case FaultLossyLink:
		if err := checkNode(f.From); err != nil {
			return err
		}
		if err := checkNode(f.To); err != nil {
			return err
		}
		if f.From == f.To {
			return fmt.Errorf("%s: a link policy needs two distinct nodes, got %d -> %d", what, f.From, f.To)
		}
		for _, p := range []struct {
			name string
			v    float64
		}{{"drop_prob", f.DropProb}, {"corrupt_prob", f.CorruptProb}, {"delay_prob", f.DelayProb}} {
			if p.v < 0 || p.v > 1 {
				return fmt.Errorf("%s: %s %g out of range [0, 1]", what, p.name, p.v)
			}
		}
		if f.DropProb == 0 && f.CorruptProb == 0 && f.DelayProb == 0 {
			return fmt.Errorf("%s: policy does nothing — set drop_prob, corrupt_prob or delay_prob", what)
		}
		if f.DelayProb > 0 && f.MaxDelay <= 0 {
			return fmt.Errorf("%s: delay_prob needs a positive max_delay", what)
		}
		if f.DelayProb == 0 && f.MaxDelay > 0 {
			return fmt.Errorf("%s: max_delay without delay_prob has no effect", what)
		}
	default:
		return fmt.Errorf("%s: unknown fault kind", what)
	}
	return nil
}

// checkLinkOverlap rejects two policies covering the same directed link:
// the injector keeps one policy per direction and would silently let the
// last one win, which turns a config mistake into a quiet behavior change.
func (s *Scenario) checkLinkOverlap() error {
	seen := map[[2]int]int{} // directed link -> faults index
	claim := func(from, to, idx int) error {
		k := [2]int{from, to}
		if prev, dup := seen[k]; dup {
			return fmt.Errorf("faults[%d]: link %d -> %d already carries a policy from faults[%d] (one policy per directed link; merge them)",
				idx, from, to, prev)
		}
		seen[k] = idx
		return nil
	}
	for i, f := range s.Faults {
		if f.Kind != FaultLossyLink {
			continue
		}
		if err := claim(f.From, f.To, i); err != nil {
			return err
		}
		if f.Bidirectional {
			if err := claim(f.To, f.From, i); err != nil {
				return err
			}
		}
	}
	return nil
}

func (s *Scenario) validateAssertion(i int, a Assertion) error {
	what := fmt.Sprintf("assertions[%d] (%s)", i, a.Kind)
	bind := map[string]string{
		AssertLatency: KindPingPong, AssertBandwidth: KindPingPong,
		AssertSpeedup: KindSizeSweep,
		AssertCompleted: KindChaos, AssertFaults: KindChaos,
		AssertDegraded: KindChaos, AssertVirtualTime: KindChaos,
		AssertBlame: KindChaos, AssertContention: KindChaos,
		AssertWindow: KindChaos, AssertPeakBacklog: KindChaos,
		AssertRecoveryWithin: KindChaos, AssertFlow: KindChaos,
	}
	if kind, ok := bind[a.Kind]; ok {
		if a.Workload != "" && a.Workload != kind {
			return fmt.Errorf("%s: applies to the %s workload, not %q", what, kind, a.Workload)
		}
		if !s.hasWorkload(kind) {
			return fmt.Errorf("%s: scenario has no %s workload to check", what, kind)
		}
	}
	typed := func(lo, hi int) error {
		if a.Type < lo || a.Type > hi {
			return fmt.Errorf("%s: channel type %d out of range %d..%d", what, a.Type, lo, hi)
		}
		return nil
	}
	switch a.Kind {
	case AssertLatency:
		if err := typed(1, 5); err != nil {
			return err
		}
		if a.MaxOneWayUs <= 0 && a.MaxP99Us <= 0 {
			return fmt.Errorf("%s: set max_one_way_us and/or max_p99_us", what)
		}
	case AssertBandwidth:
		if err := typed(1, 5); err != nil {
			return err
		}
		if a.MinMBps <= 0 {
			return fmt.Errorf("%s: min_mbps must be positive", what)
		}
	case AssertSpeedup:
		if err := typed(1, 5); err != nil {
			return err
		}
		if a.Bytes <= 0 {
			return fmt.Errorf("%s: bytes selects the sweep point and must be positive", what)
		}
		if a.MinRatio <= 0 {
			return fmt.Errorf("%s: min_ratio must be positive", what)
		}
	case AssertCompleted:
		if err := typed(1, 5); err != nil {
			return err
		}
		if !a.Full && a.MinCompleted <= 0 {
			return fmt.Errorf("%s: set min or full: true", what)
		}
		if a.Full && a.MinCompleted > 0 {
			return fmt.Errorf("%s: full and min are mutually exclusive", what)
		}
	case AssertFaults:
		if len(a.Min) == 0 && len(a.Max) == 0 {
			return fmt.Errorf("%s: set at least one min/max counter bound", what)
		}
		for name, lo := range a.Min {
			if hi, ok := a.Max[name]; ok && hi < lo {
				return fmt.Errorf("%s: %s bounds are empty (min %d > max %d)", what, name, lo, hi)
			}
		}
	case AssertDegraded:
		if !a.Want && a.ErrorContains != "" {
			return fmt.Errorf("%s: error_contains needs want: true", what)
		}
	case AssertBlame:
		if err := typed(1, 5); err != nil {
			return err
		}
		if a.Stage == "" {
			return fmt.Errorf("%s: name the stage that must own the critical path", what)
		}
		if a.MinShare < 0 || a.MinShare > 1 {
			return fmt.Errorf("%s: min_share %g out of range [0, 1]", what, a.MinShare)
		}
	case AssertContention:
		if a.MinPairs <= 0 {
			return fmt.Errorf("%s: min_pairs must be positive", what)
		}
	case AssertDeterminism:
		if a.Runs < 0 || a.Runs == 1 {
			return fmt.Errorf("%s: runs must be at least 2 (default 2)", what)
		}
	case AssertVirtualTime:
		if a.MaxVirtual <= 0 {
			return fmt.Errorf("%s: set a positive max", what)
		}
	case AssertWindow:
		if a.Series == "" {
			return fmt.Errorf("%s: name the timeline series to bound", what)
		}
		if err := checkSeries(what, a.Series); err != nil {
			return err
		}
		if a.To != 0 && a.To <= a.From {
			return fmt.Errorf("%s: empty window range [%s, %s) (to must exceed from, or 0 for end of run)", what, a.From, a.To)
		}
		if a.MaxValue <= 0 && a.MinPeak <= 0 {
			return fmt.Errorf("%s: set max and/or min_peak", what)
		}
		if a.MaxValue > 0 && a.MinPeak > a.MaxValue {
			return fmt.Errorf("%s: bounds are empty (min_peak %g > max %g)", what, a.MinPeak, a.MaxValue)
		}
	case AssertPeakBacklog:
		if a.Type < 0 || a.Type > 5 {
			return fmt.Errorf("%s: channel type %d out of range 0..5 (0 = total)", what, a.Type)
		}
		if a.MaxBacklog <= 0 {
			return fmt.Errorf("%s: max must be positive", what)
		}
		if a.MinBacklog < 0 || a.MinBacklog > a.MaxBacklog {
			return fmt.Errorf("%s: bounds are empty (min %g, max %g)", what, a.MinBacklog, a.MaxBacklog)
		}
	case AssertRecoveryWithin:
		if a.Series != "" {
			if err := checkSeries(what, a.Series); err != nil {
				return err
			}
		}
		if a.MaxRecovery <= 0 {
			return fmt.Errorf("%s: set a positive max recovery time", what)
		}
		if !s.hasEventFault() {
			return fmt.Errorf("%s: recovery is measured from an injected fault — schedule at least one timed fault (crash-node, kill-spe, kill-copilot)", what)
		}
	case AssertFlow:
		if a.Route == "" && a.TopOf == "" {
			return fmt.Errorf("%s: set route (byte bounds) and/or top_of (top-contributor check)", what)
		}
		if a.Route != "" && !flowmap.ValidRoute(a.Route) {
			return fmt.Errorf("%s: unknown flow route %q (valid: %s)",
				what, a.Route, strings.Join(flowmap.Routes(), ", "))
		}
		if a.MinBytes < 0 || a.MaxBytes < 0 {
			return fmt.Errorf("%s: byte bounds must be non-negative", what)
		}
		if (a.MinBytes > 0 || a.MaxBytes > 0) && a.Route == "" {
			return fmt.Errorf("%s: byte bounds need a route to bound", what)
		}
		if a.MaxBytes > 0 && a.MinBytes > a.MaxBytes {
			return fmt.Errorf("%s: bounds are empty (min_bytes %d > max_bytes %d)", what, a.MinBytes, a.MaxBytes)
		}
		if a.TopOf != "" && a.Route == "" {
			return fmt.Errorf("%s: top_of needs a route the top contributor must travel", what)
		}
	default:
		return fmt.Errorf("%s: unknown assertion kind", what)
	}
	if a.Seed != 0 {
		found := false
		for _, w := range s.Workloads {
			if w.Kind != KindChaos {
				continue
			}
			for _, seed := range w.effective(s.seed(), false).Seeds {
				if seed == a.Seed {
					found = true
				}
			}
		}
		if !found {
			return fmt.Errorf("%s: seed %d is not in the chaos workload's seed list", what, a.Seed)
		}
	}
	return nil
}

// checkSeries vets a timeline series name at validate time. Exact series
// names depend on the topology (link and mailbox series embed node and
// proc names), so the check is a vocabulary gate: the backlog series are
// matched exactly, everything else by its family prefix. A series that
// validates but never materializes in the run is an assertion violation,
// not a config error.
func checkSeries(what, name string) error {
	if name == "backlog/total" {
		return nil
	}
	for t := 1; t <= 5; t++ {
		if name == fmt.Sprintf("backlog/type%d", t) {
			return nil
		}
	}
	for _, prefix := range []string{"copilot/", "link/", "mailbox/", "fault/", "chan/", "net/", "flow/"} {
		if strings.HasPrefix(name, prefix) && len(name) > len(prefix) {
			return nil
		}
	}
	return fmt.Errorf("%s: unknown timeline series %q (valid: backlog/total, backlog/type1..5, or a copilot/, link/, mailbox/, fault/, chan/, net/ or flow/ series)", what, name)
}

// hasEventFault reports whether the schedule contains a timed fault event
// the timeline marks (link policies and mailbox faults degrade throughput
// but do not anchor a recovery measurement).
func (s *Scenario) hasEventFault() bool {
	for _, f := range s.Faults {
		switch f.Kind {
		case FaultCrashNode, FaultKillSPE, FaultKillCoPilot:
			return true
		}
	}
	return false
}

// hasTemporalAssertion reports whether any assertion reads the timeline —
// which forces a recorder onto every chaos run.
func (s *Scenario) hasTemporalAssertion() bool {
	for _, a := range s.Assertions {
		switch a.Kind {
		case AssertWindow, AssertPeakBacklog, AssertRecoveryWithin:
			return true
		}
	}
	return false
}

// hasFlowAssertion reports whether any assertion reads the flow
// observatory — which forces a flowmap onto every chaos run. Temporal
// assertions over flow/* series count: those timeline series only
// materialize when a flowmap feeds the sampler.
func (s *Scenario) hasFlowAssertion() bool {
	for _, a := range s.Assertions {
		switch a.Kind {
		case AssertFlow:
			return true
		case AssertWindow, AssertRecoveryWithin:
			if strings.HasPrefix(a.Series, "flow/") {
				return true
			}
		}
	}
	return false
}

// lowerFaults compiles the scenario's fault schedule into the injector's
// plan. Validate has already vetted every target, so this is a pure
// translation; the plan's Seed is the scenario seed (the chaos driver
// re-stamps it per chaos seed when sweeping).
func (s *Scenario) lowerFaults() *fault.Plan {
	if len(s.Faults) == 0 {
		return nil
	}
	p := &fault.Plan{Seed: s.seed()}
	for _, f := range s.Faults {
		switch f.Kind {
		case FaultCrashNode:
			p.Events = append(p.Events, fault.Event{At: f.At, Kind: fault.CrashNode, Node: f.Node})
		case FaultKillCoPilot:
			p.Events = append(p.Events, fault.Event{At: f.At, Kind: fault.KillCoPilot, Node: f.Node})
		case FaultKillSPE:
			p.Events = append(p.Events, fault.Event{At: f.At, Kind: fault.KillSPE, Proc: f.Proc})
		case FaultMailboxDrop:
			p.Events = append(p.Events, fault.Event{At: f.At, Kind: fault.MailboxDrop, Proc: f.Proc})
		case FaultMailboxStall:
			p.Events = append(p.Events, fault.Event{At: f.At, Kind: fault.MailboxStall, Proc: f.Proc, Delay: f.Delay})
		case FaultLossyLink:
			pol := fault.LinkPolicy{
				From: f.From, To: f.To,
				DropProb: f.DropProb, CorruptProb: f.CorruptProb,
				DelayProb: f.DelayProb, MaxDelay: f.MaxDelay, After: f.After,
			}
			p.Links = append(p.Links, pol)
			if f.Bidirectional {
				rev := pol
				rev.From, rev.To = pol.To, pol.From
				p.Links = append(p.Links, rev)
			}
		}
	}
	return p
}

// counterValue resolves a fault-counter name against a Counts snapshot.
// With a nil receiver it only answers whether the name is valid — the
// decoder uses that to reject unknown counters at parse time.
func counterValue(c *fault.Counts, name string) (int64, bool) {
	var v int64
	switch name {
	case "link_drops":
		if c != nil {
			v = c.LinkDrops
		}
	case "link_corrupts":
		if c != nil {
			v = c.LinkCorrupts
		}
	case "link_delays":
		if c != nil {
			v = c.LinkDelays
		}
	case "retransmits":
		if c != nil {
			v = c.Retransmits
		}
	case "dup_frames":
		if c != nil {
			v = c.DupFrames
		}
	case "ack_drops":
		if c != nil {
			v = c.AckDrops
		}
	case "give_ups":
		if c != nil {
			v = c.GiveUps
		}
	case "give_up_drops":
		if c != nil {
			v = c.GiveUpDrops
		}
	case "mailbox_drops":
		if c != nil {
			v = c.MailboxDrops
		}
	case "mailbox_stalls":
		if c != nil {
			v = c.MailboxStalls
		}
	case "mailbox_nacks":
		if c != nil {
			v = c.MailboxNacks
		}
	case "mailbox_reposts":
		if c != nil {
			v = c.MailboxReposts
		}
	case "op_timeouts":
		if c != nil {
			v = c.OpTimeouts
		}
	case "channel_faults":
		if c != nil {
			v = c.ChannelFaults
		}
	case "procs_killed":
		if c != nil {
			v = c.ProcsKilled
		}
	default:
		return 0, false
	}
	return v, true
}

// counterNames lists every valid fault-counter name, sorted.
func counterNames() []string {
	names := []string{
		"link_drops", "link_corrupts", "link_delays",
		"retransmits", "dup_frames", "ack_drops", "give_ups", "give_up_drops",
		"mailbox_drops", "mailbox_stalls", "mailbox_nacks", "mailbox_reposts",
		"op_timeouts", "channel_faults", "procs_killed",
	}
	sort.Strings(names)
	return names
}
