package scenario

import (
	"fmt"
	"os"
	"strings"
)

// Golden fingerprint files pin every scenario's full outcome shape —
// latencies, chaos fingerprints, blame attribution — into the repository.
// validate compares each full-mode run against its golden and renders a
// line diff on mismatch; -update-golden rewrites them after an intended
// behavior change.

// GoldenPath derives a scenario file's golden sibling:
// scenarios/foo.yaml -> scenarios/foo.golden.
func GoldenPath(scenarioPath string) string {
	base := strings.TrimSuffix(scenarioPath, ".yaml")
	return base + ".golden"
}

// WriteGolden records a fingerprint.
func WriteGolden(path, fingerprint string) error {
	return os.WriteFile(path, []byte(fingerprint), 0o644)
}

// CompareGolden checks a fingerprint against its golden file. missing
// reports an absent golden (not a failure — record it with
// -update-golden); diff is the readable mismatch rendering, empty when
// the fingerprint matches.
func CompareGolden(path, fingerprint string) (diff string, missing bool, err error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return "", true, nil
	}
	if err != nil {
		return "", false, err
	}
	want := string(data)
	if want == fingerprint {
		return "", false, nil
	}
	return diffLines(want, fingerprint), false, nil
}

// diffLines renders a compact line diff: every differing line as a
// -want/+got pair (capped), with one line of matching context before.
func diffLines(want, got string) string {
	wl := strings.Split(strings.TrimRight(want, "\n"), "\n")
	gl := strings.Split(strings.TrimRight(got, "\n"), "\n")
	n := len(wl)
	if len(gl) > n {
		n = len(gl)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "golden mismatch (%d golden lines, %d run lines):", len(wl), len(gl))
	shown := 0
	for i := 0; i < n && shown < 8; i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w == g {
			continue
		}
		if shown == 0 && i > 0 && wl[i-1] == gl[i-1] {
			fmt.Fprintf(&b, "\n      %s", wl[i-1])
		}
		if w != "" {
			fmt.Fprintf(&b, "\n    - %s", w)
		}
		if g != "" {
			fmt.Fprintf(&b, "\n    + %s", g)
		}
		shown++
	}
	if shown == 8 {
		fmt.Fprintf(&b, "\n    ... (more differences elided)")
	}
	return b.String()
}
