package scenario

// The Go builder mirrors the YAML schema for scenarios constructed in
// code — tests and ad-hoc tools get the same Validate gate as files, so
// the two entry points cannot drift.

import (
	"cellpilot/internal/sim"
	"cellpilot/internal/timeline"
)

// Builder accumulates a Scenario fluently; Build runs Validate.
type Builder struct {
	s Scenario
}

// New starts a scenario with the library defaults (2 Cell blades × 2
// Cells + 1 x86 node, seed 1).
func New(name string) *Builder {
	return &Builder{s: Scenario{Name: name}}
}

// Describe sets the one-line description.
func (b *Builder) Describe(d string) *Builder {
	b.s.Description = d
	return b
}

// WithSeed sets the scenario seed.
func (b *Builder) WithSeed(seed int64) *Builder {
	b.s.Seed = seed
	return b
}

// WithTopology sets the cluster shape.
func (b *Builder) WithTopology(cellNodes, cellsPerNode, xeonNodes int) *Builder {
	b.s.Topology = Topology{CellNodes: cellNodes, CellsPerNode: cellsPerNode, XeonNodes: xeonNodes}
	return b
}

// WithTimeline attaches a telemetry timeline (window 0 = the default
// 100µs) to every chaos run, even without temporal assertions.
func (b *Builder) WithTimeline(window sim.Time) *Builder {
	if window == 0 {
		window = timeline.DefaultWindow
	}
	b.s.Timeline = TimelineSpec{Window: window}
	return b
}

// AddWorkload appends a traffic-mix entry.
func (b *Builder) AddWorkload(w Workload) *Builder {
	b.s.Workloads = append(b.s.Workloads, w)
	return b
}

// AddFault appends a fault-schedule entry.
func (b *Builder) AddFault(f FaultSpec) *Builder {
	b.s.Faults = append(b.s.Faults, f)
	return b
}

// Assert appends a post-run assertion.
func (b *Builder) Assert(a Assertion) *Builder {
	b.s.Assertions = append(b.s.Assertions, a)
	return b
}

// Build validates and returns the scenario.
func (b *Builder) Build() (*Scenario, error) {
	s := b.s
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}
