package scenario

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cellpilot/internal/sim"
)

// smallScenario is a fast end-to-end scenario exercising every workload
// driver the executor dispatches to.
func smallScenario() *Scenario {
	return &Scenario{
		Name: "small",
		Seed: 3,
		Workloads: []Workload{
			{Kind: KindPingPong, Types: []int{1, 3}, Reps: 10},
			{Kind: KindChaos, Reps: 2},
		},
	}
}

func TestRunProducesFingerprint(t *testing.T) {
	s := smallScenario()
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	out, err := Run(s, Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	fp := out.Fingerprint
	for _, want := range []string{
		"scenario=small seed=3 topology=2x2+1",
		"pingpong type=1",
		"pingpong type=3",
		"chaos seed=3",
		"  completed=",
		"  blame type=",
		"  contention pairs=",
	} {
		if !strings.Contains(fp, want) {
			t.Fatalf("fingerprint missing %q:\n%s", want, fp)
		}
	}
	if out.PingPong == nil || len(out.PingPong.Types) != 2 {
		t.Fatalf("pingpong outcome: %+v", out.PingPong)
	}
	if out.Chaos == nil || len(out.Chaos.Runs) != 1 {
		t.Fatalf("chaos outcome: %+v", out.Chaos)
	}
	if out.Chaos.Runs[0].Stats.CritPath == nil {
		t.Fatalf("chaos run should carry a critical-path report")
	}
}

func TestRunIsDeterministic(t *testing.T) {
	s := smallScenario()
	s.Assertions = []Assertion{{Kind: AssertDeterminism, Runs: 3}}
	out, err := Run(s, Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if out.DeterminismRuns != 3 {
		t.Fatalf("DeterminismRuns = %d", out.DeterminismRuns)
	}
	if out.DeterminismDiff != "" {
		t.Fatalf("fingerprints diverged:\n%s", out.DeterminismDiff)
	}
	if vs := Check(out); len(vs) != 0 {
		t.Fatalf("violations: %v", vs)
	}
}

func TestAssertionsPassAndFail(t *testing.T) {
	s := smallScenario()
	s.Assertions = []Assertion{
		{Kind: AssertLatency, Type: 1, MaxOneWayUs: 1e6},       // generous: passes
		{Kind: AssertCompleted, Type: 2, Full: true},           // clean run: passes
		{Kind: AssertLatency, Type: 3, MaxOneWayUs: 0.001},     // impossible: fails
		{Kind: AssertBandwidth, Type: 1, MinMBps: 1e9},         // impossible: fails
		{Kind: AssertFaults, Min: map[string]int64{"link_drops": 5}}, // clean run: fails
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	out, err := Run(s, Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	vs := Check(out)
	if len(vs) != 3 {
		t.Fatalf("want 3 violations, got %d: %v", len(vs), vs)
	}
	if vs[0].Index != 2 || !strings.Contains(vs[0].Message, "exceeds bound") {
		t.Fatalf("latency violation: %+v", vs[0])
	}
	if vs[1].Index != 3 || !strings.Contains(vs[1].Message, "below bound") {
		t.Fatalf("bandwidth violation: %+v", vs[1])
	}
	if vs[2].Index != 4 || !strings.Contains(vs[2].Message, "link_drops = 0 below bound 5") {
		t.Fatalf("faults violation: %+v", vs[2])
	}
}

func TestFaultyScenarioAssertions(t *testing.T) {
	// Lossy link + SPE kill: the canonical chaos shape. Asserts the
	// degradation contract end to end through the DSL.
	s := &Scenario{
		Name: "faulty",
		Seed: 3,
		Workloads: []Workload{
			{Kind: KindChaos, Reps: 3},
		},
		Faults: []FaultSpec{
			{Kind: FaultLossyLink, From: 0, To: 1, Bidirectional: true, DropProb: 0.15},
			{Kind: FaultKillSPE, At: sim.Millisecond, Proc: "c4w#2"},
		},
		Assertions: []Assertion{
			{Kind: AssertDegraded, Want: true, ErrorContains: "c4w#2"},
			{Kind: AssertFaults, Min: map[string]int64{"link_drops": 1, "retransmits": 1, "procs_killed": 1}},
			{Kind: AssertCompleted, Type: 2, Full: true}, // node-local type rides out the lossy internode link
			{Kind: AssertVirtualTime, MaxVirtual: 10 * sim.Second},
			{Kind: AssertDeterminism},
		},
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	out, err := Run(s, Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if vs := Check(out); len(vs) != 0 {
		t.Fatalf("violations:\n%s", violationText(vs))
	}
	// Breaking the expectation produces a blame-carrying message.
	s.Assertions = []Assertion{{Kind: AssertCompleted, Type: 4, Full: true}}
	out2, err := Run(s, Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	vs := Check(out2)
	if len(vs) != 1 {
		t.Fatalf("want the killed type-4 flow to miss its bound, got %v", vs)
	}
	msg := vs[0].Message
	for _, want := range []string{"type 4 completed", "bound 3", "counts:", "fault log:"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("violation message missing %q:\n%s", want, msg)
		}
	}
}

func TestQuickModeShrinksMeasurementArms(t *testing.T) {
	s := smallScenario()
	s.Workloads[0].Reps = 200
	full, err := Run(s, Options{})
	if err != nil {
		t.Fatalf("Run full: %v", err)
	}
	quick, err := Run(s, Options{Quick: true})
	if err != nil {
		t.Fatalf("Run quick: %v", err)
	}
	if full.PingPong.Reps != 200 || quick.PingPong.Reps != 30 {
		t.Fatalf("reps full=%d quick=%d", full.PingPong.Reps, quick.PingPong.Reps)
	}
	// Chaos reps are never shrunk: the fault arithmetic of committed
	// assertions depends on them.
	if full.Chaos.Reps != quick.Chaos.Reps {
		t.Fatalf("quick mode must not touch chaos reps: %d vs %d", full.Chaos.Reps, quick.Chaos.Reps)
	}
}

func TestGoldenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	yamlPath := filepath.Join(dir, "g.yaml")
	golden := GoldenPath(yamlPath)
	if golden != filepath.Join(dir, "g.golden") {
		t.Fatalf("GoldenPath = %q", golden)
	}
	// Missing golden: flagged as missing, not a mismatch.
	diff, missing, err := CompareGolden(golden, "a\nb\n")
	if err != nil || !missing || diff != "" {
		t.Fatalf("missing golden: diff=%q missing=%v err=%v", diff, missing, err)
	}
	if err := WriteGolden(golden, "a\nb\n"); err != nil {
		t.Fatalf("WriteGolden: %v", err)
	}
	diff, missing, err = CompareGolden(golden, "a\nb\n")
	if err != nil || missing || diff != "" {
		t.Fatalf("match: diff=%q missing=%v err=%v", diff, missing, err)
	}
	diff, _, err = CompareGolden(golden, "a\nc\n")
	if err != nil || !strings.Contains(diff, "- b") || !strings.Contains(diff, "+ c") {
		t.Fatalf("mismatch diff = %q (err %v)", diff, err)
	}
}

func TestLoadFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "file.yaml")
	if err := os.WriteFile(path, []byte(minimal), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if s.Name != "mini" {
		t.Fatalf("name = %q", s.Name)
	}
	if _, err := Load(filepath.Join(dir, "absent.yaml")); err == nil {
		t.Fatalf("loading an absent file should error")
	}
	bad := filepath.Join(dir, "bad.yaml")
	os.WriteFile(bad, []byte("name: x\nworkloads:\n  - kind: warp\n"), 0o644)
	if _, err := Load(bad); err == nil || !strings.Contains(err.Error(), bad) {
		t.Fatalf("load error should name the file, got %v", err)
	}
}

func TestListSummaries(t *testing.T) {
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "b.yaml"), []byte("name: b-scen\ndescription: \"second\"\nworkloads:\n  - kind: chaos\n"), 0o644)
	os.WriteFile(filepath.Join(dir, "a.yaml"), []byte("name: a-scen\ndescription: \"first\"\nworkloads:\n  - kind: chaos\n"), 0o644)
	os.WriteFile(filepath.Join(dir, "broken.yaml"), []byte("name: [\n"), 0o644)
	os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("ignored"), 0o644)
	sums, err := ListSummaries(dir)
	if err != nil {
		t.Fatalf("ListSummaries: %v", err)
	}
	if len(sums) != 3 {
		t.Fatalf("summaries = %d", len(sums))
	}
	if sums[0].Name != "a-scen" || sums[0].Description != "first" {
		t.Fatalf("order/content: %+v", sums[0])
	}
	if !strings.HasPrefix(sums[2].Description, "BROKEN:") {
		t.Fatalf("broken file should surface its parse error: %+v", sums[2])
	}
}

func violationText(vs []Violation) string {
	var b strings.Builder
	for _, v := range vs {
		b.WriteString(v.String() + "\n")
	}
	return b.String()
}
