package scenario

import (
	"strings"
	"testing"

	"cellpilot/internal/sim"
)

// minimal is the smallest valid scenario document.
const minimal = `
name: mini
workloads:
  - kind: chaos
    reps: 2
`

func TestParseMinimal(t *testing.T) {
	s, err := Parse([]byte(minimal))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if s.Name != "mini" || len(s.Workloads) != 1 {
		t.Fatalf("unexpected scenario: %+v", s)
	}
	top := s.topology()
	if top.CellNodes != 2 || top.CellsPerNode != 2 || top.XeonNodes != 1 {
		t.Fatalf("default topology = %+v", top)
	}
	if s.seed() != 1 {
		t.Fatalf("default seed = %d", s.seed())
	}
}

func TestParseFull(t *testing.T) {
	src := `
name: full
description: "everything at once"
seed: 9
topology:
  cell_nodes: 3
  cells_per_node: 2
  xeon_nodes: 1
workloads:
  - kind: pingpong
    types: [1, 3, 5]
    bytes: 1600
    reps: 40
  - kind: chaos
    reps: 4
    seeds: [9, 10]
    soft_timeout: 100ms
    transfer:
      chunk_size: 4096
      pipeline_depth: 2
  - kind: sizesweep
    sizes: [1024]
    reps: 3
  - kind: imb
    pattern: allreduce
    ranks: 4
    reps: 20
faults:
  - kind: lossy-link
    from: 0
    to: 1
    bidirectional: true
    drop_prob: 0.05
  - kind: kill-spe
    at: 2ms
    proc: "c4w#2"
  - kind: mailbox-stall
    at: 1ms
    proc: "c2e#0"
    delay: 500us
assertions:
  - kind: latency
    type: 1
    max_one_way_us: 100
  - kind: completed
    type: 2
    full: true
  - kind: faults
    min:
      link_drops: 1
  - kind: determinism
`
	s, err := Parse([]byte(src))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(s.Workloads) != 4 || len(s.Faults) != 3 || len(s.Assertions) != 4 {
		t.Fatalf("counts: %d workloads, %d faults, %d assertions",
			len(s.Workloads), len(s.Faults), len(s.Assertions))
	}
	if s.Workloads[1].SoftTimeout != 100*sim.Millisecond {
		t.Fatalf("soft_timeout = %v", s.Workloads[1].SoftTimeout)
	}
	if s.Workloads[1].Transfer.ChunkSize != 4096 {
		t.Fatalf("chunk_size = %d", s.Workloads[1].Transfer.ChunkSize)
	}
	if s.Faults[2].Delay != 500*sim.Microsecond {
		t.Fatalf("stall delay = %v", s.Faults[2].Delay)
	}
	if s.Assertions[2].Min["link_drops"] != 1 {
		t.Fatalf("faults min = %+v", s.Assertions[2].Min)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"no-name", "workloads:\n  - kind: chaos", "needs a name"},
		{"bad-name", "name: \"no spaces\"\nworkloads:\n  - kind: chaos", "kebab-case"},
		{"no-workloads", "name: x", "at least one workload"},
		{"unknown-workload", "name: x\nworkloads:\n  - kind: warp", "unknown workload kind"},
		{"unknown-fault", minimal + "faults:\n  - kind: meteor\n", "unknown fault kind"},
		{"unknown-assert", minimal + "assertions:\n  - kind: vibes\n", "unknown assertion kind"},
		{"unknown-key", "name: x\nnonsense: 1\nworkloads:\n  - kind: chaos", `unknown key "nonsense"`},
		{"wrong-kind-key", "name: x\nworkloads:\n  - kind: chaos\n    sizes: [1]", `unknown key "sizes"`},
		{"neg-seed", "name: x\nseed: -3\nworkloads:\n  - kind: chaos", "non-negative"},
		{"neg-time", minimal + "faults:\n  - kind: kill-spe\n    at: -2ms\n    proc: \"c4w#2\"\n", "negative duration"},
		{"quoted-number", "name: x\nseed: \"7\"\nworkloads:\n  - kind: chaos", "quoted string"},
		{"bad-counter", minimal + "assertions:\n  - kind: faults\n    min:\n      warp_cores: 1\n", "unknown fault counter"},
		{"one-cell-node", "name: x\ntopology:\n  cell_nodes: 1\nworkloads:\n  - kind: chaos", "at least 2 Cell nodes"},
		{"faults-no-chaos", "name: x\nworkloads:\n  - kind: pingpong\nfaults:\n  - kind: crash-node\n    at: 1ms\n    node: 0", "need a chaos workload"},
		{"bad-imb-pattern", "name: x\nworkloads:\n  - kind: imb\n    pattern: gather", "unknown IMB pattern"},
		{"bad-type", "name: x\nworkloads:\n  - kind: pingpong\nassertions:\n  - kind: latency\n    type: 9\n    max_one_way_us: 1\n", "out of range"},
		{"latency-no-pingpong", minimal + "assertions:\n  - kind: latency\n    type: 1\n    max_one_way_us: 1\n", "no pingpong workload"},
		{"det-one-run", minimal + "assertions:\n  - kind: determinism\n    runs: 1\n", "at least 2"},
		{"seed-not-swept", minimal + "assertions:\n  - kind: degraded\n    want: true\n    seed: 99\n", "not in the chaos workload's seed list"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.src))
			if err == nil {
				t.Fatalf("no error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestBuilderMirrorsYAML(t *testing.T) {
	// The builder and the file format must agree: the same scenario built
	// both ways validates identically and lowers to the same fault plan.
	fromYAML, err := Parse([]byte(`
name: mirror
seed: 4
workloads:
  - kind: chaos
    reps: 3
faults:
  - kind: lossy-link
    from: 0
    to: 1
    drop_prob: 0.1
`))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	built, err := New("mirror").
		WithSeed(4).
		AddWorkload(Workload{Kind: KindChaos, Reps: 3}).
		AddFault(FaultSpec{Kind: FaultLossyLink, From: 0, To: 1, DropProb: 0.1}).
		Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	a, b := fromYAML.lowerFaults(), built.lowerFaults()
	if len(a.Links) != 1 || len(b.Links) != 1 || a.Links[0] != b.Links[0] || a.Seed != b.Seed {
		t.Fatalf("lowered plans differ: %+v vs %+v", a, b)
	}
}

func TestBuilderRejectsInvalid(t *testing.T) {
	_, err := New("bad").
		AddWorkload(Workload{Kind: KindChaos}).
		AddFault(FaultSpec{Kind: FaultKillSPE, Proc: "nope"}).
		Build()
	if err == nil || !strings.Contains(err.Error(), "not a chaos SPE stub") {
		t.Fatalf("want SPE-target error, got %v", err)
	}
}
