package scenario

import (
	"strings"
	"testing"

	"cellpilot/internal/flowmap"
)

// flowScenario is a clean (fault-free) chaos run: all five channel types
// complete, so every canonical route carries traffic and node 1's
// Co-Pilot relays only the type-5 flow (the other types either stay on
// node 0 or bypass Co-Pilots entirely).
func flowScenario() *Scenario {
	return &Scenario{
		Name: "flowcheck",
		Seed: 11,
		Workloads: []Workload{
			{Kind: KindChaos, Reps: 10},
		},
	}
}

func TestFlowAssertionDecode(t *testing.T) {
	doc := `
name: flows
workloads:
  - kind: chaos
assertions:
  - kind: flow
    route: spe->copilot->mpi->copilot->spe
    min_bytes: 1024
    max_bytes: 1048576
    top_of: copilot@cell1
`
	s, err := Parse([]byte(doc))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(s.Assertions) != 1 {
		t.Fatalf("assertions = %d", len(s.Assertions))
	}
	a := s.Assertions[0]
	if a.Kind != AssertFlow || a.Route != flowmap.RouteSPEtoRemSPE ||
		a.MinBytes != 1024 || a.MaxBytes != 1048576 || a.TopOf != "copilot@cell1" {
		t.Fatalf("flow assertion = %+v", a)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestFlowValidationErrors(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Scenario)
		want string
	}{
		{"needs route or top_of", func(s *Scenario) {
			s.Assertions = []Assertion{{Kind: AssertFlow}}
		}, "set route (byte bounds) and/or top_of"},
		{"unknown route", func(s *Scenario) {
			s.Assertions = []Assertion{{Kind: AssertFlow, Route: "spe->teleport->spe", MinBytes: 1}}
		}, "unknown flow route"},
		{"negative bounds", func(s *Scenario) {
			s.Assertions = []Assertion{{Kind: AssertFlow, Route: flowmap.RoutePPEtoPPE, MinBytes: -1}}
		}, "must be non-negative"},
		{"empty bounds", func(s *Scenario) {
			s.Assertions = []Assertion{{Kind: AssertFlow, Route: flowmap.RoutePPEtoPPE, MinBytes: 10, MaxBytes: 5}}
		}, "bounds are empty"},
		{"top_of needs route", func(s *Scenario) {
			s.Assertions = []Assertion{{Kind: AssertFlow, TopOf: "copilot@cell1"}}
		}, "top_of needs a route"},
		{"needs chaos workload", func(s *Scenario) {
			s.Workloads = []Workload{{Kind: KindPingPong}}
			s.Assertions = []Assertion{{Kind: AssertFlow, Route: flowmap.RoutePPEtoPPE, MinBytes: 1}}
		}, "no chaos workload"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := flowScenario()
			tc.mut(s)
			err := s.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate = %v, want mention of %q", err, tc.want)
			}
		})
	}
}

// One run, checked against passing and violated flow bounds. The clean
// chaos run delivers every route, and node 1's Co-Pilot sees only the
// type-5 relay traffic, so its top contributor travels the type-5 route.
func TestFlowChecksPassAndFail(t *testing.T) {
	s := flowScenario()
	s.Assertions = []Assertion{
		{Kind: AssertFlow, Route: flowmap.RouteSPEtoRemSPE, MinBytes: 1},                         // traffic flowed: passes
		{Kind: AssertFlow, Route: flowmap.RouteSPEtoRemSPE, TopOf: "copilot@cell1"},              // type 5 dominates cell1: passes
		{Kind: AssertFlow, Route: flowmap.RouteSPEtoRemSPE, MaxBytes: 1},                         // way over: fails
		{Kind: AssertFlow, Route: flowmap.RouteSPEtoRemSPE, MinBytes: 1 << 40},                   // unreachable: fails
		{Kind: AssertFlow, Route: flowmap.RouteSPEtoSPE, TopOf: "copilot@cell1"},                 // type 4 never crosses cell1: fails
		{Kind: AssertFlow, Route: flowmap.RouteSPEtoRemSPE, TopOf: "copilot@nowhere", MinBytes: 1}, // no such resource: fails
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	out, err := Run(s, Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	vs := Check(out)
	byIndex := map[int][]Violation{}
	for _, v := range vs {
		byIndex[v.Index] = append(byIndex[v.Index], v)
	}
	for _, idx := range []int{0, 1} {
		if len(byIndex[idx]) != 0 {
			t.Errorf("assertions[%d] should pass: %v", idx, byIndex[idx])
		}
	}
	if len(byIndex[2]) != 1 || !strings.Contains(byIndex[2][0].Message, "bound ≤ 1 B") {
		t.Errorf("max-bytes violation = %v", byIndex[2])
	}
	if len(byIndex[3]) != 1 || !strings.Contains(byIndex[3][0].Message, "bound ≥") {
		t.Errorf("min-bytes violation = %v", byIndex[3])
	}
	if len(byIndex[4]) != 1 || !strings.Contains(byIndex[4][0].Message, "top contributor") {
		t.Errorf("top-of violation = %v", byIndex[4])
	}
	if len(byIndex[5]) != 1 || !strings.Contains(byIndex[5][0].Message, "no flow crossed resource") {
		t.Errorf("missing-resource violation = %v", byIndex[5])
	}
}

// A flow assertion forces a flowmap onto the chaos runs; its fingerprint
// lines fold into the scenario fingerprint and the whole outcome stays
// deterministic. Without one, no flowmap attaches — the zero-cost
// contract at the DSL layer.
func TestFlowFingerprintDeterministicUnderChaos(t *testing.T) {
	s := flowScenario()
	s.Assertions = []Assertion{
		{Kind: AssertFlow, Route: flowmap.RouteSPEtoRemSPE, MinBytes: 1},
		{Kind: AssertDeterminism},
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	out, err := Run(s, Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, want := range []string{
		"  flowmap flows=",
		"  flowroute " + flowmap.RouteSPEtoRemSPE,
	} {
		if !strings.Contains(out.Fingerprint, want) {
			t.Fatalf("fingerprint missing %q:\n%s", want, out.Fingerprint)
		}
	}
	if out.DeterminismDiff != "" {
		t.Fatalf("fingerprints diverged:\n%s", out.DeterminismDiff)
	}
	if out.Chaos.Runs[0].Flows == nil {
		t.Fatal("flow assertion did not attach a flowmap")
	}
	if vs := Check(out); len(vs) != 0 {
		t.Fatalf("violations: %v", vs)
	}

	bare := flowScenario()
	bareOut, err := Run(bare, Options{})
	if err != nil {
		t.Fatalf("Run bare: %v", err)
	}
	if strings.Contains(bareOut.Fingerprint, "flowmap flows=") {
		t.Fatalf("bare run fingerprint carries flowmap lines:\n%s", bareOut.Fingerprint)
	}
	if bareOut.Chaos.Runs[0].Flows != nil {
		t.Fatal("bare run attached a flowmap")
	}
	// The flowmap rides along without perturbing the run: every
	// non-flowmap fingerprint line matches the bare run exactly.
	var nonFlow []string
	for _, line := range strings.Split(out.Fingerprint, "\n") {
		lt := strings.TrimSpace(line)
		if strings.HasPrefix(lt, "flowmap ") || strings.HasPrefix(lt, "flowroute ") {
			continue
		}
		nonFlow = append(nonFlow, line)
	}
	if got := strings.Join(nonFlow, "\n"); got != bareOut.Fingerprint {
		t.Fatalf("attaching a flowmap perturbed the run:\n--- with flows (flow lines stripped) ---\n%s\n--- bare ---\n%s",
			got, bareOut.Fingerprint)
	}
}
