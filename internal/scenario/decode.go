package scenario

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"cellpilot/internal/sim"
)

// Scalar conversions. Every accessor returns an error naming the line so
// a malformed scenario fails with a pointer into the file, not a zero
// value that surfaces as a confusing run-time difference.

func (n *node) str(what string) (string, error) {
	if n.kind != scalarNode {
		return "", fmt.Errorf("line %d: %s must be a scalar, got a %s", n.line, what, n.kindName())
	}
	return n.scalar, nil
}

func (n *node) integer(what string) (int, error) {
	v, err := n.int64(what)
	if err != nil {
		return 0, err
	}
	if v > int64(int(^uint(0)>>1)) || v < -int64(int(^uint(0)>>1))-1 {
		return 0, fmt.Errorf("line %d: %s %d overflows int", n.line, what, v)
	}
	return int(v), nil
}

func (n *node) int64(what string) (int64, error) {
	s, err := n.str(what)
	if err != nil {
		return 0, err
	}
	if n.quoted {
		return 0, fmt.Errorf("line %d: %s must be a number, got a quoted string", n.line, what)
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("line %d: %s: %q is not an integer", n.line, what, s)
	}
	return v, nil
}

func (n *node) float(what string) (float64, error) {
	s, err := n.str(what)
	if err != nil {
		return 0, err
	}
	if n.quoted {
		return 0, fmt.Errorf("line %d: %s must be a number, got a quoted string", n.line, what)
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("line %d: %s: %q is not a number", n.line, what, s)
	}
	return v, nil
}

func (n *node) boolean(what string) (bool, error) {
	s, err := n.str(what)
	if err != nil {
		return false, err
	}
	switch s {
	case "true":
		return true, nil
	case "false":
		return false, nil
	}
	return false, fmt.Errorf("line %d: %s: %q is not true/false", n.line, what, s)
}

// duration parses a virtual-time scalar: "250us", "2ms", "1.5s" (the Go
// duration units down to nanoseconds), or a bare "0".
func (n *node) duration(what string) (sim.Time, error) {
	s, err := n.str(what)
	if err != nil {
		return 0, err
	}
	if s == "0" {
		return 0, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("line %d: %s: %q is not a duration (use e.g. 250us, 2ms, 1s)", n.line, what, s)
	}
	if d < 0 {
		return 0, fmt.Errorf("line %d: %s: negative duration %q", n.line, what, s)
	}
	return sim.Time(d.Nanoseconds()), nil
}

func (n *node) intList(what string) ([]int, error) {
	if n.kind != listNode {
		return nil, fmt.Errorf("line %d: %s must be a list, got a %s", n.line, what, n.kindName())
	}
	out := make([]int, 0, len(n.list))
	for i, el := range n.list {
		v, err := el.integer(fmt.Sprintf("%s[%d]", what, i))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func (n *node) int64List(what string) ([]int64, error) {
	if n.kind != listNode {
		return nil, fmt.Errorf("line %d: %s must be a list, got a %s", n.line, what, n.kindName())
	}
	out := make([]int64, 0, len(n.list))
	for i, el := range n.list {
		v, err := el.int64(fmt.Sprintf("%s[%d]", what, i))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// mapReader walks a mapping with strict unknown-key detection: every key
// the decoder does not consume is an error naming the key and its line.
type mapReader struct {
	n    *node
	what string
	used map[string]bool
}

func newMapReader(n *node, what string) (*mapReader, error) {
	if n.kind != mapNode {
		return nil, fmt.Errorf("line %d: %s must be a mapping, got a %s", n.line, what, n.kindName())
	}
	return &mapReader{n: n, what: what, used: map[string]bool{}}, nil
}

// get consumes and returns the key's value, or nil when absent.
func (m *mapReader) get(key string) *node {
	m.used[key] = true
	return m.n.fields[key]
}

// finish fails on any unconsumed (unknown) key.
func (m *mapReader) finish() error {
	var unknown []string
	for _, k := range m.n.keys {
		if !m.used[k] {
			unknown = append(unknown, k)
		}
	}
	if len(unknown) == 0 {
		return nil
	}
	sort.Strings(unknown)
	var valid []string
	for k := range m.used {
		valid = append(valid, k)
	}
	sort.Strings(valid)
	return fmt.Errorf("line %d: unknown key %q in %s (valid keys: %s)",
		m.n.fields[unknown[0]].line, unknown[0], m.what, strings.Join(valid, ", "))
}

// Typed optional-field helpers: absent keys leave the destination at its
// default; present keys must convert.

func (m *mapReader) strField(key string, dst *string) error {
	if n := m.get(key); n != nil {
		v, err := n.str(m.what + "." + key)
		if err != nil {
			return err
		}
		*dst = v
	}
	return nil
}

func (m *mapReader) intField(key string, dst *int) error {
	if n := m.get(key); n != nil {
		v, err := n.integer(m.what + "." + key)
		if err != nil {
			return err
		}
		*dst = v
	}
	return nil
}

func (m *mapReader) int64Field(key string, dst *int64) error {
	if n := m.get(key); n != nil {
		v, err := n.int64(m.what + "." + key)
		if err != nil {
			return err
		}
		*dst = v
	}
	return nil
}

func (m *mapReader) floatField(key string, dst *float64) error {
	if n := m.get(key); n != nil {
		v, err := n.float(m.what + "." + key)
		if err != nil {
			return err
		}
		*dst = v
	}
	return nil
}

func (m *mapReader) boolField(key string, dst *bool) error {
	if n := m.get(key); n != nil {
		v, err := n.boolean(m.what + "." + key)
		if err != nil {
			return err
		}
		*dst = v
	}
	return nil
}

func (m *mapReader) durField(key string, dst *sim.Time) error {
	if n := m.get(key); n != nil {
		v, err := n.duration(m.what + "." + key)
		if err != nil {
			return err
		}
		*dst = v
	}
	return nil
}
