package scenario

import (
	"fmt"
	"strings"

	"cellpilot/internal/critpath"
	"cellpilot/internal/fault"
	"cellpilot/internal/flowmap"
	"cellpilot/internal/sim"
)

// Violation is one failed assertion. Message names the violated bound and
// the measured value; for chaos-bound checks it carries the blame/fault
// context needed to diagnose the regression without re-running.
type Violation struct {
	// Index is the assertion's position in the scenario.
	Index int
	// Kind echoes the assertion kind.
	Kind string
	// Message is the human diagnosis (may span lines).
	Message string
}

func (v Violation) String() string {
	return fmt.Sprintf("assertions[%d] (%s): %s", v.Index, v.Kind, v.Message)
}

// Check evaluates every assertion against a run's outcome. An empty slice
// means the scenario passed.
func Check(out *Outcome) []Violation {
	var vs []Violation
	for i, a := range out.Scenario.Assertions {
		for _, msg := range checkOne(out, a) {
			vs = append(vs, Violation{Index: i, Kind: a.Kind, Message: msg})
		}
	}
	return vs
}

func checkOne(out *Outcome, a Assertion) []string {
	switch a.Kind {
	case AssertLatency:
		pt, msg := pingType(out, a.Type)
		if msg != "" {
			return []string{msg}
		}
		var vs []string
		oneWay := float64(pt.OneWay) / 1e3
		if a.MaxOneWayUs > 0 && oneWay > a.MaxOneWayUs {
			vs = append(vs, fmt.Sprintf("type %d one-way latency %.2fµs exceeds bound %.2fµs", a.Type, oneWay, a.MaxOneWayUs))
		}
		p99 := float64(pt.P99) / 1e3
		if a.MaxP99Us > 0 && p99 > a.MaxP99Us {
			vs = append(vs, fmt.Sprintf("type %d p99 one-way latency %.2fµs exceeds bound %.2fµs", a.Type, p99, a.MaxP99Us))
		}
		return vs
	case AssertBandwidth:
		pt, msg := pingType(out, a.Type)
		if msg != "" {
			return []string{msg}
		}
		if pt.MBps < a.MinMBps {
			return []string{fmt.Sprintf("type %d bandwidth %.2f MB/s below bound %.2f MB/s", a.Type, pt.MBps, a.MinMBps)}
		}
	case AssertSpeedup:
		return checkSpeedup(out, a)
	case AssertCompleted:
		return eachChaos(out, a, func(r ChaosRun) []string {
			want := a.MinCompleted
			if a.Full {
				want = out.Chaos.Reps
			}
			got := r.Result.Completed[a.Type]
			if got < want {
				return []string{fmt.Sprintf("seed %d: type %d completed %d/%d round trips (bound %d)%s",
					r.Seed, a.Type, got, out.Chaos.Reps, want, chaosContext(r))}
			}
			return nil
		})
	case AssertFaults:
		return checkFaults(out, a)
	case AssertDegraded:
		return eachChaos(out, a, func(r ChaosRun) []string {
			degraded := r.Result.RunErr != ""
			if degraded != a.Want {
				if a.Want {
					return []string{fmt.Sprintf("seed %d: expected a degraded run, but it finished clean", r.Seed)}
				}
				return []string{fmt.Sprintf("seed %d: expected a clean run, but it degraded: %s%s",
					r.Seed, r.Result.RunErr, chaosContext(r))}
			}
			if a.Want && a.ErrorContains != "" && !strings.Contains(r.Result.RunErr, a.ErrorContains) {
				return []string{fmt.Sprintf("seed %d: degradation error %q does not mention %q",
					r.Seed, r.Result.RunErr, a.ErrorContains)}
			}
			return nil
		})
	case AssertBlame:
		return eachChaos(out, a, func(r ChaosRun) []string {
			return checkBlame(r, a)
		})
	case AssertContention:
		return eachChaos(out, a, func(r ChaosRun) []string {
			return checkContention(r, a)
		})
	case AssertDeterminism:
		if out.DeterminismDiff != "" {
			return []string{fmt.Sprintf("outcome is not deterministic across %d runs: %s",
				out.DeterminismRuns, out.DeterminismDiff)}
		}
	case AssertVirtualTime:
		return eachChaos(out, a, func(r ChaosRun) []string {
			if r.Result.VirtualTime > a.MaxVirtual {
				return []string{fmt.Sprintf("seed %d: run took %s of virtual time, bound %s — degradation is not completing promptly%s",
					r.Seed, r.Result.VirtualTime, a.MaxVirtual, chaosContext(r))}
			}
			return nil
		})
	case AssertWindow:
		return eachChaos(out, a, func(r ChaosRun) []string {
			return checkWindow(r, a)
		})
	case AssertPeakBacklog:
		return eachChaos(out, a, func(r ChaosRun) []string {
			return checkPeakBacklog(r, a)
		})
	case AssertRecoveryWithin:
		return eachChaos(out, a, func(r ChaosRun) []string {
			return checkRecovery(r, a)
		})
	case AssertFlow:
		return eachChaos(out, a, func(r ChaosRun) []string {
			return checkFlow(r, a)
		})
	}
	return nil
}

// checkFlow bounds a route's delivered payload bytes and/or pins a shared
// resource's dominant flow to that route. Failure messages carry the
// per-route aggregates so a shifted traffic pattern diagnoses itself.
func checkFlow(r ChaosRun, a Assertion) []string {
	fl := r.Flows
	if fl == nil {
		return []string{fmt.Sprintf("seed %d: run recorded no flow observatory", r.Seed)}
	}
	var vs []string
	if a.Route != "" && (a.MinBytes > 0 || a.MaxBytes > 0) {
		got := fl.RouteBytes(a.Route)
		if a.MinBytes > 0 && got < a.MinBytes {
			vs = append(vs, fmt.Sprintf("seed %d: route %s delivered %d B, bound ≥ %d B%s",
				r.Seed, a.Route, got, a.MinBytes, flowContext(fl)))
		}
		if a.MaxBytes > 0 && got > a.MaxBytes {
			vs = append(vs, fmt.Sprintf("seed %d: route %s delivered %d B, bound ≤ %d B%s",
				r.Seed, a.Route, got, a.MaxBytes, flowContext(fl)))
		}
	}
	if a.TopOf != "" {
		rep := fl.Report(0)
		var rs *flowmap.ResourceStat
		var names []string
		for i := range rep.Resources {
			names = append(names, rep.Resources[i].Name)
			if rep.Resources[i].Name == a.TopOf {
				rs = &rep.Resources[i]
			}
		}
		switch {
		case rs == nil:
			vs = append(vs, fmt.Sprintf("seed %d: no flow crossed resource %q (resources seen: %s)",
				r.Seed, a.TopOf, strings.Join(names, ", ")))
		case len(rs.Top) == 0:
			vs = append(vs, fmt.Sprintf("seed %d: resource %q carried no attributed flow", r.Seed, a.TopOf))
		case rs.Top[0].Route != a.Route:
			top := rs.Top[0]
			vs = append(vs, fmt.Sprintf("seed %d: %q's top contributor is %s -> %s via %s (%d B), want route %s%s",
				r.Seed, a.TopOf, top.Src, top.Dst, top.Route, top.Bytes, a.Route, flowContext(fl)))
		}
	}
	return vs
}

// flowContext renders the per-route byte aggregates for a failure message.
func flowContext(fl *flowmap.Map) string {
	var b strings.Builder
	for _, route := range fl.RouteNames() {
		fmt.Fprintf(&b, "\n    route %-32s %d B", route, fl.RouteBytes(route))
	}
	return b.String()
}

// checkWindow bounds every window of a series over a virtual-time range
// (max) and/or requires the series to reach a level somewhere in the range
// (min_peak).
func checkWindow(r ChaosRun, a Assertion) []string {
	tl := r.Timeline
	if tl == nil {
		return []string{fmt.Sprintf("seed %d: run recorded no timeline", r.Seed)}
	}
	vals, ok := tl.Range(a.Series, a.From, a.To)
	if !ok {
		return []string{fmt.Sprintf("seed %d: timeline has no series %q (have: %s)",
			r.Seed, a.Series, strings.Join(tl.SeriesNames(), ", "))}
	}
	rangeEnd := a.To
	if rangeEnd == 0 {
		rangeEnd = tl.End()
	}
	var vs []string
	peak, peakAt := 0.0, sim.Time(0)
	w := tl.Window()
	base := int(a.From / w)
	for i, v := range vals {
		if v > peak || i == 0 {
			peak, peakAt = v, sim.Time(base+i)*w
		}
		if a.MaxValue > 0 && v > a.MaxValue {
			vs = append(vs, fmt.Sprintf("seed %d: %s = %g in window [%s, %s) exceeds bound %g",
				r.Seed, a.Series, v, sim.Time(base+i)*w, sim.Time(base+i+1)*w, a.MaxValue))
		}
	}
	if a.MinPeak > 0 && peak < a.MinPeak {
		vs = append(vs, fmt.Sprintf("seed %d: %s peaked at %g (window starting %s) over [%s, %s), bound ≥ %g",
			r.Seed, a.Series, peak, peakAt, a.From, rangeEnd, a.MinPeak))
	}
	return vs
}

// checkPeakBacklog bounds the whole-run peak of a backlog series.
func checkPeakBacklog(r ChaosRun, a Assertion) []string {
	tl := r.Timeline
	if tl == nil {
		return []string{fmt.Sprintf("seed %d: run recorded no timeline", r.Seed)}
	}
	name := "backlog/total"
	if a.Type > 0 {
		name = fmt.Sprintf("backlog/type%d", a.Type)
	}
	vals, ok := tl.Range(name, 0, 0)
	if !ok {
		return []string{fmt.Sprintf("seed %d: timeline has no series %q", r.Seed, name)}
	}
	peak, peakAt := 0.0, sim.Time(0)
	for i, v := range vals {
		if v > peak {
			peak, peakAt = v, sim.Time(i)*tl.Window()
		}
	}
	var vs []string
	if peak > a.MaxBacklog {
		vs = append(vs, fmt.Sprintf("seed %d: %s peaked at %g (window starting %s), bound ≤ %g",
			r.Seed, name, peak, peakAt, a.MaxBacklog))
	}
	if a.MinBacklog > 0 && peak < a.MinBacklog {
		vs = append(vs, fmt.Sprintf("seed %d: %s peaked at %g, bound ≥ %g — the workload never queued",
			r.Seed, name, peak, a.MinBacklog))
	}
	return vs
}

// checkRecovery bounds the settle time of a series after every injected
// fault the timeline marked.
func checkRecovery(r ChaosRun, a Assertion) []string {
	tl := r.Timeline
	if tl == nil {
		return []string{fmt.Sprintf("seed %d: run recorded no timeline", r.Seed)}
	}
	series := a.Series
	if series == "" {
		series = "backlog/total"
	}
	if _, ok := tl.Range(series, 0, 0); !ok {
		return []string{fmt.Sprintf("seed %d: timeline has no series %q (have: %s)",
			r.Seed, series, strings.Join(tl.SeriesNames(), ", "))}
	}
	marks := tl.Faults()
	if len(marks) == 0 {
		return []string{fmt.Sprintf("seed %d: the run injected no fault the timeline marked — nothing to recover from", r.Seed)}
	}
	var vs []string
	for _, f := range marks {
		d, ok := tl.Recovery(series, f.At)
		if !ok {
			vs = append(vs, fmt.Sprintf("seed %d: %s never recovered after %s at %s (bound %s)%s",
				r.Seed, series, f.Label, f.At, a.MaxRecovery, chaosContext(r)))
			continue
		}
		if d > a.MaxRecovery {
			vs = append(vs, fmt.Sprintf("seed %d: %s took %s to recover after %s at %s, bound %s%s",
				r.Seed, series, d, f.Label, f.At, a.MaxRecovery, chaosContext(r)))
		}
	}
	return vs
}

// pingType finds a channel type's pingpong measurement.
func pingType(out *Outcome, typ int) (PingPongType, string) {
	if out.PingPong == nil {
		return PingPongType{}, "no pingpong workload ran"
	}
	for _, pt := range out.PingPong.Types {
		if pt.Type == typ {
			return pt, ""
		}
	}
	return PingPongType{}, fmt.Sprintf("pingpong did not measure channel type %d (types: %v)", typ, pingTypes(out))
}

func pingTypes(out *Outcome) []int {
	var ts []int
	for _, pt := range out.PingPong.Types {
		ts = append(ts, pt.Type)
	}
	return ts
}

func checkSpeedup(out *Outcome, a Assertion) []string {
	if out.Sweep == nil {
		return []string{"no sizesweep workload ran"}
	}
	var base, chunked sim.Time
	found := false
	for _, pt := range out.Sweep {
		if pt.Type != a.Type || pt.Bytes != a.Bytes {
			continue
		}
		found = true
		if pt.Chunked {
			chunked = pt.OneWayP50
		} else {
			base = pt.OneWayP50
		}
	}
	if !found {
		return []string{fmt.Sprintf("sweep has no (type %d, %d B) point", a.Type, a.Bytes)}
	}
	if chunked == 0 {
		return []string{fmt.Sprintf("sweep (type %d, %d B) has no chunked arm", a.Type, a.Bytes)}
	}
	ratio := float64(base) / float64(chunked)
	if ratio < a.MinRatio {
		return []string{fmt.Sprintf("type %d @ %d B chunked speedup %.2fx below bound %.2fx (baseline p50 %s, chunked p50 %s)",
			a.Type, a.Bytes, ratio, a.MinRatio, base, chunked)}
	}
	return nil
}

// eachChaos applies a per-run check across the chaos runs matching the
// assertion's seed filter (0 = every seed).
func eachChaos(out *Outcome, a Assertion, check func(ChaosRun) []string) []string {
	if out.Chaos == nil {
		return []string{"no chaos workload ran"}
	}
	var vs []string
	for _, r := range out.Chaos.Runs {
		if a.Seed != 0 && r.Seed != a.Seed {
			continue
		}
		vs = append(vs, check(r)...)
	}
	return vs
}

// checkFaults bounds fault counters summed across the matching runs, so a
// seed sweep is judged on aggregate behavior while a.Seed pins one run.
func checkFaults(out *Outcome, a Assertion) []string {
	if out.Chaos == nil {
		return []string{"no chaos workload ran"}
	}
	sum := fault.Counts{}
	var seeds []int64
	for _, r := range out.Chaos.Runs {
		if a.Seed != 0 && r.Seed != a.Seed {
			continue
		}
		seeds = append(seeds, r.Seed)
		addCounts(&sum, r.Result.Counts)
	}
	var vs []string
	for _, name := range counterNames() {
		lo, hasLo := a.Min[name]
		hi, hasHi := a.Max[name]
		if !hasLo && !hasHi {
			continue
		}
		got, _ := counterValue(&sum, name)
		if hasLo && got < lo {
			vs = append(vs, fmt.Sprintf("counter %s = %d below bound %d (seeds %v)", name, got, lo, seeds))
		}
		if hasHi && got > hi {
			vs = append(vs, fmt.Sprintf("counter %s = %d above bound %d (seeds %v)", name, got, hi, seeds))
		}
	}
	return vs
}

func addCounts(dst *fault.Counts, c fault.Counts) {
	dst.LinkDrops += c.LinkDrops
	dst.LinkCorrupts += c.LinkCorrupts
	dst.LinkDelays += c.LinkDelays
	dst.Retransmits += c.Retransmits
	dst.DupFrames += c.DupFrames
	dst.AckDrops += c.AckDrops
	dst.GiveUps += c.GiveUps
	dst.GiveUpDrops += c.GiveUpDrops
	dst.MailboxDrops += c.MailboxDrops
	dst.MailboxStalls += c.MailboxStalls
	dst.MailboxNacks += c.MailboxNacks
	dst.MailboxReposts += c.MailboxReposts
	dst.OpTimeouts += c.OpTimeouts
	dst.ChannelFaults += c.ChannelFaults
	dst.ProcsKilled += c.ProcsKilled
}

// checkBlame asserts that a stage owns a channel type's critical path.
// The failure message carries the full per-stage blame decomposition —
// the diff a regression hunt starts from.
func checkBlame(r ChaosRun, a Assertion) []string {
	tb, msg := blameType(r, a.Type)
	if msg != "" {
		return []string{msg}
	}
	top, topShare := topStage(tb)
	share := stageShare(tb, a.Stage)
	ok := top == a.Stage
	if a.MinShare > 0 {
		ok = ok && share >= a.MinShare
	}
	if ok {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "seed %d: type %d critical path is owned by %s (%.0f%%), want %s",
		r.Seed, a.Type, top, topShare*100, a.Stage)
	if a.MinShare > 0 {
		fmt.Fprintf(&b, " with share ≥ %.0f%% (got %.0f%%)", a.MinShare*100, share*100)
	}
	fmt.Fprintf(&b, "\n    blame for type %d (%d transfers, %s total):", tb.ChanType, tb.Transfers, tb.Total)
	for _, sb := range tb.Stages {
		fmt.Fprintf(&b, "\n      %-10s service %-12s queue %-12s (%.0f%% of path)",
			critpath.StageName(sb.Phase), sb.Service, sb.Queue,
			float64(sb.Total())/float64(tb.Total)*100)
	}
	return []string{b.String()}
}

func blameType(r ChaosRun, typ int) (critpath.TypeBlame, string) {
	rep := r.Stats.CritPath
	if rep == nil {
		return critpath.TypeBlame{}, fmt.Sprintf("seed %d: run produced no critical-path report", r.Seed)
	}
	for _, tb := range rep.Types {
		if tb.ChanType == typ {
			return tb, ""
		}
	}
	return critpath.TypeBlame{}, fmt.Sprintf("seed %d: no type-%d transfers reached the critical-path analyzer", r.Seed, typ)
}

func checkContention(r ChaosRun, a Assertion) []string {
	rep := r.Stats.CritPath
	if rep == nil {
		return []string{fmt.Sprintf("seed %d: run produced no critical-path report", r.Seed)}
	}
	var matching []critpath.Pair
	for _, p := range rep.Pairs {
		if a.ResourcePrefix == "" || strings.HasPrefix(p.Resource, a.ResourcePrefix) {
			matching = append(matching, p)
		}
	}
	if len(matching) >= a.MinPairs {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "seed %d: %d victim/aggressor pair(s)", r.Seed, len(matching))
	if a.ResourcePrefix != "" {
		fmt.Fprintf(&b, " on %s*", a.ResourcePrefix)
	}
	fmt.Fprintf(&b, ", bound ≥ %d", a.MinPairs)
	for _, p := range rep.Pairs {
		fmt.Fprintf(&b, "\n      pair resource=%s victim=%d aggressor=%d blocked=%s",
			p.Resource, p.Victim, p.Aggressor, p.Blocked)
	}
	return []string{b.String()}
}

// chaosContext renders a run's fault evidence for a failure message: the
// degradation error, killed processes, headline counters and the tail of
// the fault log.
func chaosContext(r ChaosRun) string {
	var b strings.Builder
	if r.Result.RunErr != "" {
		fmt.Fprintf(&b, "\n    run error: %s", r.Result.RunErr)
	}
	if len(r.Result.Killed) > 0 {
		fmt.Fprintf(&b, "\n    killed: %s", strings.Join(r.Result.Killed, ", "))
	}
	fmt.Fprintf(&b, "\n    counts: %+v", r.Result.Counts)
	log := r.Result.FaultLog
	if len(log) > 5 {
		log = log[len(log)-5:]
	}
	for _, l := range log {
		fmt.Fprintf(&b, "\n    fault log: %s", l)
	}
	return b.String()
}
