package scenario

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// The checked-in library under scenarios/ is the chaos regression fleet.
// This file enumerates it for the CLI's validate and -list-scenarios.

// ListFiles returns the library's scenario files, sorted by name.
func ListFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".yaml") {
			continue
		}
		out = append(out, filepath.Join(dir, e.Name()))
	}
	sort.Strings(out)
	if len(out) == 0 {
		return nil, fmt.Errorf("no *.yaml scenarios under %s", dir)
	}
	return out, nil
}

// Summary is one library entry for -list-scenarios.
type Summary struct {
	File        string
	Name        string
	Description string
}

// ListSummaries loads every library scenario's name and description. A
// file that fails to parse still gets a row — its Description carries the
// error, so a broken library file is visible instead of silently absent.
func ListSummaries(dir string) ([]Summary, error) {
	files, err := ListFiles(dir)
	if err != nil {
		return nil, err
	}
	out := make([]Summary, 0, len(files))
	for _, f := range files {
		s, err := Load(f)
		if err != nil {
			out = append(out, Summary{File: f, Name: strings.TrimSuffix(filepath.Base(f), ".yaml"),
				Description: fmt.Sprintf("BROKEN: %v", err)})
			continue
		}
		out = append(out, Summary{File: f, Name: s.Name, Description: s.Description})
	}
	return out, nil
}
