package scenario

import (
	"strings"
	"testing"
)

func mustTree(t *testing.T, src string) *node {
	t.Helper()
	n, err := parseTree([]byte(src))
	if err != nil {
		t.Fatalf("parseTree: %v", err)
	}
	return n
}

func TestYAMLBasics(t *testing.T) {
	n := mustTree(t, `
name: demo
seed: 42
topology:
  cell_nodes: 3
list: [1, 2, 3]
quoted: "a # not a comment"
nested:
  - kind: chaos
    reps: 5
  - kind: pingpong
# full-line comment
trail: 7 # trailing comment
`)
	if n.fields["name"].scalar != "demo" {
		t.Fatalf("name = %q", n.fields["name"].scalar)
	}
	if got := n.fields["topology"].fields["cell_nodes"].scalar; got != "3" {
		t.Fatalf("cell_nodes = %q", got)
	}
	if got := len(n.fields["list"].list); got != 3 {
		t.Fatalf("inline list len = %d", got)
	}
	if got := n.fields["quoted"].scalar; got != "a # not a comment" {
		t.Fatalf("quoted = %q", got)
	}
	items := n.fields["nested"].list
	if len(items) != 2 {
		t.Fatalf("nested len = %d", len(items))
	}
	if items[0].fields["reps"].scalar != "5" {
		t.Fatalf("nested[0].reps = %q", items[0].fields["reps"].scalar)
	}
	if items[1].fields["kind"].scalar != "pingpong" {
		t.Fatalf("nested[1].kind = %q", items[1].fields["kind"].scalar)
	}
	if n.fields["trail"].scalar != "7" {
		t.Fatalf("trail = %q", n.fields["trail"].scalar)
	}
}

func TestYAMLErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"tab-indent", "a:\n\tb: 1", "tab in indentation"},
		{"tab-content", "a: b\tc", "tab inside content"},
		{"dup-key", "a: 1\na: 2", "duplicate key"},
		{"bad-key", "a b: 1", "key"},
		{"no-value", "a:\nb: 2", `"a" has no value`},
		{"dangling-dash", "items:\n  -x", "missing space"},
		{"unclosed-list", "a: [1, 2", "not closed"},
		{"empty-elem", "a: [1, , 2]", "empty element"},
		{"flow-map", "a: {b: 1}", "flow mappings"},
		{"unclosed-quote", `a: "oops`, "not closed"},
		{"bad-escape", `a: "x\n"`, "unsupported escape"},
		{"top-indent", "  a: 1", "must not be indented"},
		{"top-list", "- a\n- b", "must be a mapping"},
		{"over-indent", "a: 1\n  b: 2", "unexpected indentation"},
		{"empty-item", "a:\n  -\nb: 1", "empty list item"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseTree([]byte(tc.src))
			if err == nil {
				t.Fatalf("no error for %q", tc.src)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestYAMLBlockScalarList(t *testing.T) {
	n := mustTree(t, "seeds:\n  - 3\n  - 14\n  - \"x\"\n")
	items := n.fields["seeds"].list
	if len(items) != 3 || items[0].scalar != "3" || items[1].scalar != "14" {
		t.Fatalf("block scalar list = %+v", items)
	}
	if items[2].scalar != "x" || !items[2].quoted {
		t.Fatalf("quoted item = %+v", items[2])
	}
}

func TestYAMLEmptyDoc(t *testing.T) {
	n := mustTree(t, "\n# only a comment\n")
	if n.kind != mapNode || len(n.keys) != 0 {
		t.Fatalf("empty doc should parse to an empty mapping")
	}
}

func TestYAMLLineNumbersInErrors(t *testing.T) {
	_, err := parseTree([]byte("a: 1\nb: 2\nb: 3\n"))
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("want a line-3 error, got %v", err)
	}
}
