// Package scenario is the declarative chaos-regression DSL for the
// simulated hybrid cluster. One scenario names a topology (N Cell blades
// × M Cells + x86 nodes), a workload mix drawn from internal/workload
// (pingpong, chaos, sizesweep, IMB), a timed fault schedule lowered onto
// internal/fault, and a block of assertions checked after the run:
// latency/bandwidth bounds per channel type, fault-counter and
// degradation shape, critical-path blame attribution, contention pairs,
// and determinism fingerprints (same seed ⇒ bit-identical outcome).
//
// Scenarios live in YAML files (see scenarios/ and the parser subset in
// yaml.go) or are built directly in Go — the Scenario struct below IS
// the schema, every YAML key maps 1:1 onto a field. The checked-in
// library under scenarios/ is the regression fleet: `cellpilot-bench
// validate` runs every file and compares outcomes against committed
// golden fingerprints, so every robustness and observability investment
// stays load-bearing for future PRs.
package scenario

import (
	"fmt"
	"os"
	"strings"

	"cellpilot/internal/core"
	"cellpilot/internal/sim"
	"cellpilot/internal/workload"
)

// Scenario is one declarative chaos-regression case.
type Scenario struct {
	// Name identifies the scenario (kebab-case; golden files derive from it).
	Name string
	// Description is the one-line summary -list-scenarios prints.
	Description string
	// Seed feeds the fault injector's RNG and is the default chaos seed.
	// Zero means 1.
	Seed int64
	// Topology shapes the simulated cluster every workload runs on.
	Topology Topology
	// Workloads is the ordered traffic mix.
	Workloads []Workload
	// Faults is the timed fault schedule, lowered onto a fault.Plan and
	// injected into the chaos workload entries.
	Faults []FaultSpec
	// Timeline configures the windowed telemetry recorder chaos runs
	// attach. A recorder is also attached implicitly (at the default
	// window) whenever a temporal assertion is present.
	Timeline TimelineSpec
	// Assertions are checked against the run's outcome.
	Assertions []Assertion
}

// TimelineSpec configures the per-chaos-run telemetry timeline.
type TimelineSpec struct {
	// Window is the virtual-time bucket width (0 = the timeline package's
	// default, 100µs). Setting it attaches a recorder to every chaos run
	// even without temporal assertions, folding the timeline fingerprint
	// into the scenario fingerprint and goldens.
	Window sim.Time
}

// Topology describes the simulated cluster.
type Topology struct {
	// CellNodes is the number of Cell blades (default 2; the five-type
	// channel grid needs at least 2).
	CellNodes int
	// CellsPerNode is Cell processors per blade, 8 SPEs each (default 2,
	// the paper's dual PowerXCell 8i).
	CellsPerNode int
	// XeonNodes is the number of conventional x86 nodes (default 1).
	XeonNodes int
}

// Nodes is the total node count (Cell blades first, then x86).
func (t Topology) Nodes() int { return t.CellNodes + t.XeonNodes }

// Workload kinds.
const (
	KindPingPong  = "pingpong"
	KindChaos     = "chaos"
	KindSizeSweep = "sizesweep"
	KindIMB       = "imb"
)

// Workload is one entry of the traffic mix. Kind selects the driver;
// the other fields parameterize it (unused fields must stay zero — the
// decoder rejects keys that do not belong to the kind).
type Workload struct {
	// Kind is pingpong, chaos, sizesweep or imb.
	Kind string
	// Types are the Table I channel types a pingpong entry measures
	// (default 1..5).
	Types []int
	// Bytes is the payload size (pingpong default 1600, chaos default 256).
	Bytes int
	// Reps is round trips per type (pingpong default 100, chaos default
	// 20, sizesweep default 10, imb default 100).
	Reps int
	// Seeds are the chaos seeds to sweep (default: the scenario seed).
	Seeds []int64
	// SoftTimeout bounds every chaos channel operation (default 200ms).
	SoftTimeout sim.Time
	// Sizes are the sizesweep payload sizes (default 1 KiB and 64 KiB).
	Sizes []int
	// Pattern is the IMB pattern name (pingpong, pingping, sendrecv,
	// exchange, bcast, allreduce, barrier; default pingpong).
	Pattern string
	// Ranks is the IMB rank count (default: pattern-dependent).
	Ranks int
	// Transfer tunes the chunked transfer engine for pingpong, chaos and
	// sizesweep entries (zero = the paper-faithful protocol; sizesweep
	// defaults to 8 KiB chunks, depth 4, zero-copy type 4 for its
	// chunked arm).
	Transfer core.TransferOptions
}

// Fault kinds (the scenario-level vocabulary; lower.go maps them onto
// fault.Plan events and link policies).
const (
	FaultCrashNode    = "crash-node"
	FaultKillSPE      = "kill-spe"
	FaultKillCoPilot  = "kill-copilot"
	FaultMailboxDrop  = "mailbox-drop"
	FaultMailboxStall = "mailbox-stall"
	FaultLossyLink    = "lossy-link"
)

// FaultSpec is one scheduled fault or link policy.
type FaultSpec struct {
	// Kind selects the fault class (see the Fault* constants).
	Kind string
	// At is the virtual firing time (timed kinds; mailbox kinds arm at At).
	At sim.Time
	// Node targets crash-node / kill-copilot.
	Node int
	// Proc names the target SPE stub (kill-spe, mailbox-drop,
	// mailbox-stall) — must be one of workload.ChaosSPEs().
	Proc string
	// Delay is the stall duration (mailbox-stall).
	Delay sim.Time
	// From/To are the directed link's node ids (lossy-link).
	From, To int
	// Bidirectional mirrors the policy onto the reverse link too.
	Bidirectional bool
	// DropProb / CorruptProb / DelayProb are per-frame probabilities.
	DropProb, CorruptProb, DelayProb float64
	// MaxDelay bounds an injected frame delay (required with DelayProb).
	MaxDelay sim.Time
	// After delays the policy's activation — e.g. to tear a link halfway
	// through a chunked stream.
	After sim.Time
}

// Assertion kinds.
const (
	AssertLatency     = "latency"
	AssertBandwidth   = "bandwidth"
	AssertSpeedup     = "speedup"
	AssertCompleted   = "completed"
	AssertFaults      = "faults"
	AssertDegraded    = "degraded"
	AssertBlame       = "blame"
	AssertContention  = "contention"
	AssertDeterminism = "determinism"
	AssertVirtualTime = "virtual-time"
	// Temporal assertion kinds: checked against the chaos runs' telemetry
	// timeline (attached automatically when any of these is present).
	AssertWindow         = "window"
	AssertPeakBacklog    = "peak_backlog"
	AssertRecoveryWithin = "recovery_within"
	// AssertFlow checks the chaos runs' flow observatory (attached
	// automatically when present): per-route delivered-byte bounds and
	// the top contributor of a named resource (NIC or Co-Pilot).
	AssertFlow = "flow"
)

// Assertion is one post-run check. Kind selects the check; Workload
// binds it to a workload entry by kind (optional when the scenario has
// exactly one entry; determinism binds to the whole scenario).
type Assertion struct {
	Kind     string
	Workload string
	// Type is the Table I channel type the check applies to (latency,
	// bandwidth, speedup, completed, blame).
	Type int
	// Bytes selects the sizesweep point (speedup).
	Bytes int
	// MaxOneWayUs / MaxP99Us bound a pingpong type's latency (µs).
	MaxOneWayUs float64
	MaxP99Us    float64
	// MinMBps bounds a pingpong type's bandwidth from below.
	MinMBps float64
	// MinRatio bounds the chunked-vs-baseline p50 speedup (speedup).
	MinRatio float64
	// Min/Max bound fault counters by name (faults): link_drops,
	// retransmits, procs_killed, op_timeouts, ... — see counterValue.
	Min map[string]int64
	Max map[string]int64
	// MinCompleted / Full bound a chaos type's completed round trips;
	// Full means "all configured reps".
	MinCompleted int
	Full         bool
	// Want is the expected degradation state (degraded): true = the run
	// must return a fault summary, false = it must finish clean.
	Want bool
	// ErrorContains additionally greps the degradation error text.
	ErrorContains string
	// Stage names the critical-path stage that must own the type's tail
	// (blame); MinShare is its minimum share of the critical path.
	Stage    string
	MinShare float64
	// MinPairs bounds the victim/aggressor contention pairs (contention);
	// ResourcePrefix restricts which contended resource must appear.
	MinPairs       int
	ResourcePrefix string
	// Runs is the determinism re-run count (default 2).
	Runs int
	// MaxVirtual bounds a chaos run's final virtual clock (virtual-time) —
	// degradation must complete, not hang until a timeout horizon.
	MaxVirtual sim.Time
	// Series names the timeline series a temporal check reads (window,
	// recovery_within; see validSeries for the vocabulary). recovery_within
	// defaults to backlog/total.
	Series string
	// From/To bound the virtual-time range a window check covers
	// (To 0 = end of run).
	From, To sim.Time
	// MaxValue bounds every window value in [From, To) from above (window).
	MaxValue float64
	// MinPeak requires at least one window in [From, To) to reach this
	// value (window) — proves the series actually moved.
	MinPeak float64
	// MaxBacklog / MinBacklog bound the whole-run peak of a backlog series
	// (peak_backlog; Type selects backlog/typeN, 0 = backlog/total).
	MaxBacklog float64
	MinBacklog float64
	// MaxRecovery bounds how long after each injected fault the Series
	// takes to settle back to its pre-fault baseline (recovery_within).
	MaxRecovery sim.Time
	// Route names the flow route a flow assertion checks (one of
	// flowmap.Routes(), e.g. "spe->copilot->mpi->copilot->spe").
	Route string
	// MinBytes/MaxBytes bound the route's delivered payload bytes (flow;
	// MaxBytes 0 = unbounded above).
	MinBytes, MaxBytes int64
	// TopOf names a resource (NIC "nicN" or Co-Pilot rank label, e.g.
	// "copilot@cell1") whose top contributor must travel Route (flow).
	TopOf string
	// Seed restricts a chaos-bound check to one seed (0 = every seed).
	Seed int64
}

// Parse decodes and validates one scenario document.
func Parse(data []byte) (*Scenario, error) {
	tree, err := parseTree(data)
	if err != nil {
		return nil, err
	}
	s, err := decodeScenario(tree)
	if err != nil {
		return nil, err
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// Load reads and parses a scenario file.
func Load(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

func decodeScenario(tree *node) (*Scenario, error) {
	m, err := newMapReader(tree, "scenario")
	if err != nil {
		return nil, err
	}
	s := &Scenario{}
	if err := firstErr(
		m.strField("name", &s.Name),
		m.strField("description", &s.Description),
		m.int64Field("seed", &s.Seed),
	); err != nil {
		return nil, err
	}
	if n := m.get("topology"); n != nil {
		if err := decodeTopology(n, &s.Topology); err != nil {
			return nil, err
		}
	}
	if n := m.get("workloads"); n != nil {
		if n.kind != listNode {
			return nil, fmt.Errorf("line %d: workloads must be a list", n.line)
		}
		for i, el := range n.list {
			w, err := decodeWorkload(el, i)
			if err != nil {
				return nil, err
			}
			s.Workloads = append(s.Workloads, w)
		}
	}
	if n := m.get("faults"); n != nil {
		if n.kind != listNode {
			return nil, fmt.Errorf("line %d: faults must be a list", n.line)
		}
		for i, el := range n.list {
			f, err := decodeFault(el, i)
			if err != nil {
				return nil, err
			}
			s.Faults = append(s.Faults, f)
		}
	}
	if n := m.get("timeline"); n != nil {
		if err := decodeTimeline(n, &s.Timeline); err != nil {
			return nil, err
		}
	}
	if n := m.get("assertions"); n != nil {
		if n.kind != listNode {
			return nil, fmt.Errorf("line %d: assertions must be a list", n.line)
		}
		for i, el := range n.list {
			a, err := decodeAssertion(el, i)
			if err != nil {
				return nil, err
			}
			s.Assertions = append(s.Assertions, a)
		}
	}
	return s, m.finish()
}

func decodeTopology(n *node, t *Topology) error {
	m, err := newMapReader(n, "topology")
	if err != nil {
		return err
	}
	if err := firstErr(
		m.intField("cell_nodes", &t.CellNodes),
		m.intField("cells_per_node", &t.CellsPerNode),
		m.intField("xeon_nodes", &t.XeonNodes),
	); err != nil {
		return err
	}
	return m.finish()
}

func decodeTimeline(n *node, t *TimelineSpec) error {
	m, err := newMapReader(n, "timeline")
	if err != nil {
		return err
	}
	if err := m.durField("window", &t.Window); err != nil {
		return err
	}
	return m.finish()
}

func decodeWorkload(n *node, idx int) (Workload, error) {
	what := fmt.Sprintf("workloads[%d]", idx)
	m, err := newMapReader(n, what)
	if err != nil {
		return Workload{}, err
	}
	var w Workload
	if err := m.strField("kind", &w.Kind); err != nil {
		return Workload{}, err
	}
	if w.Kind == "" {
		return Workload{}, fmt.Errorf("line %d: %s needs a kind", n.line, what)
	}
	// Per-kind keys: consuming only the kind's own keys makes a stray
	// key ("sizes" on a chaos entry) an unknown-key error.
	var errs []error
	switch w.Kind {
	case KindPingPong:
		if tn := m.get("types"); tn != nil {
			w.Types, err = tn.intList(what + ".types")
			errs = append(errs, err)
		}
		errs = append(errs,
			m.intField("bytes", &w.Bytes),
			m.intField("reps", &w.Reps),
			decodeTransfer(m, what, &w.Transfer))
	case KindChaos:
		if sn := m.get("seeds"); sn != nil {
			w.Seeds, err = sn.int64List(what + ".seeds")
			errs = append(errs, err)
		}
		errs = append(errs,
			m.intField("bytes", &w.Bytes),
			m.intField("reps", &w.Reps),
			m.durField("soft_timeout", &w.SoftTimeout),
			decodeTransfer(m, what, &w.Transfer))
	case KindSizeSweep:
		if sn := m.get("sizes"); sn != nil {
			w.Sizes, err = sn.intList(what + ".sizes")
			errs = append(errs, err)
		}
		errs = append(errs,
			m.intField("reps", &w.Reps),
			decodeTransfer(m, what, &w.Transfer))
	case KindIMB:
		errs = append(errs,
			m.strField("pattern", &w.Pattern),
			m.intField("ranks", &w.Ranks),
			m.intField("bytes", &w.Bytes),
			m.intField("reps", &w.Reps))
	default:
		return Workload{}, fmt.Errorf("line %d: %s: unknown workload kind %q (valid: %s)",
			n.line, what, w.Kind, strings.Join([]string{KindPingPong, KindChaos, KindSizeSweep, KindIMB}, ", "))
	}
	if err := firstErr(errs...); err != nil {
		return Workload{}, err
	}
	return w, m.finish()
}

func decodeTransfer(m *mapReader, what string, t *core.TransferOptions) error {
	n := m.get("transfer")
	if n == nil {
		return nil
	}
	tm, err := newMapReader(n, what+".transfer")
	if err != nil {
		return err
	}
	if err := firstErr(
		tm.intField("chunk_size", &t.ChunkSize),
		tm.intField("pipeline_depth", &t.PipelineDepth),
		tm.intField("eager_max", &t.EagerMax),
		tm.boolField("zero_copy_type4", &t.ZeroCopyType4),
	); err != nil {
		return err
	}
	return tm.finish()
}

func decodeFault(n *node, idx int) (FaultSpec, error) {
	what := fmt.Sprintf("faults[%d]", idx)
	m, err := newMapReader(n, what)
	if err != nil {
		return FaultSpec{}, err
	}
	var f FaultSpec
	if err := m.strField("kind", &f.Kind); err != nil {
		return FaultSpec{}, err
	}
	var errs []error
	switch f.Kind {
	case FaultCrashNode, FaultKillCoPilot:
		errs = append(errs,
			m.durField("at", &f.At),
			m.intField("node", &f.Node))
	case FaultKillSPE, FaultMailboxDrop:
		errs = append(errs,
			m.durField("at", &f.At),
			m.strField("proc", &f.Proc))
	case FaultMailboxStall:
		errs = append(errs,
			m.durField("at", &f.At),
			m.strField("proc", &f.Proc),
			m.durField("delay", &f.Delay))
	case FaultLossyLink:
		errs = append(errs,
			m.intField("from", &f.From),
			m.intField("to", &f.To),
			m.boolField("bidirectional", &f.Bidirectional),
			m.floatField("drop_prob", &f.DropProb),
			m.floatField("corrupt_prob", &f.CorruptProb),
			m.floatField("delay_prob", &f.DelayProb),
			m.durField("max_delay", &f.MaxDelay),
			m.durField("after", &f.After))
	default:
		return FaultSpec{}, fmt.Errorf("line %d: %s: unknown fault kind %q (valid: %s)",
			n.line, what, f.Kind, strings.Join(faultKinds(), ", "))
	}
	if err := firstErr(errs...); err != nil {
		return FaultSpec{}, err
	}
	return f, m.finish()
}

func faultKinds() []string {
	return []string{FaultCrashNode, FaultKillSPE, FaultKillCoPilot,
		FaultMailboxDrop, FaultMailboxStall, FaultLossyLink}
}

func decodeAssertion(n *node, idx int) (Assertion, error) {
	what := fmt.Sprintf("assertions[%d]", idx)
	m, err := newMapReader(n, what)
	if err != nil {
		return Assertion{}, err
	}
	var a Assertion
	if err := firstErr(
		m.strField("kind", &a.Kind),
		m.strField("workload", &a.Workload),
	); err != nil {
		return Assertion{}, err
	}
	var errs []error
	switch a.Kind {
	case AssertLatency:
		errs = append(errs,
			m.intField("type", &a.Type),
			m.floatField("max_one_way_us", &a.MaxOneWayUs),
			m.floatField("max_p99_us", &a.MaxP99Us))
	case AssertBandwidth:
		errs = append(errs,
			m.intField("type", &a.Type),
			m.floatField("min_mbps", &a.MinMBps))
	case AssertSpeedup:
		errs = append(errs,
			m.intField("type", &a.Type),
			m.intField("bytes", &a.Bytes),
			m.floatField("min_ratio", &a.MinRatio))
	case AssertCompleted:
		errs = append(errs,
			m.intField("type", &a.Type),
			m.intField("min", &a.MinCompleted),
			m.boolField("full", &a.Full),
			m.int64Field("seed", &a.Seed))
	case AssertFaults:
		var err1, err2 error
		a.Min, err1 = decodeCounterMap(m, what, "min")
		a.Max, err2 = decodeCounterMap(m, what, "max")
		errs = append(errs, err1, err2, m.int64Field("seed", &a.Seed))
	case AssertDegraded:
		errs = append(errs,
			m.boolField("want", &a.Want),
			m.strField("error_contains", &a.ErrorContains),
			m.int64Field("seed", &a.Seed))
	case AssertBlame:
		errs = append(errs,
			m.intField("type", &a.Type),
			m.strField("stage", &a.Stage),
			m.floatField("min_share", &a.MinShare))
	case AssertContention:
		errs = append(errs,
			m.intField("min_pairs", &a.MinPairs),
			m.strField("resource_prefix", &a.ResourcePrefix))
	case AssertDeterminism:
		errs = append(errs, m.intField("runs", &a.Runs))
	case AssertVirtualTime:
		errs = append(errs,
			m.durField("max", &a.MaxVirtual),
			m.int64Field("seed", &a.Seed))
	case AssertWindow:
		errs = append(errs,
			m.strField("series", &a.Series),
			m.durField("from", &a.From),
			m.durField("to", &a.To),
			m.floatField("max", &a.MaxValue),
			m.floatField("min_peak", &a.MinPeak),
			m.int64Field("seed", &a.Seed))
	case AssertPeakBacklog:
		errs = append(errs,
			m.intField("type", &a.Type),
			m.floatField("max", &a.MaxBacklog),
			m.floatField("min", &a.MinBacklog),
			m.int64Field("seed", &a.Seed))
	case AssertRecoveryWithin:
		errs = append(errs,
			m.strField("series", &a.Series),
			m.durField("max", &a.MaxRecovery),
			m.int64Field("seed", &a.Seed))
	case AssertFlow:
		errs = append(errs,
			m.strField("route", &a.Route),
			m.int64Field("min_bytes", &a.MinBytes),
			m.int64Field("max_bytes", &a.MaxBytes),
			m.strField("top_of", &a.TopOf),
			m.int64Field("seed", &a.Seed))
	default:
		return Assertion{}, fmt.Errorf("line %d: %s: unknown assertion kind %q (valid: %s)",
			n.line, what, a.Kind, strings.Join(assertionKinds(), ", "))
	}
	if err := firstErr(errs...); err != nil {
		return Assertion{}, err
	}
	return a, m.finish()
}

func assertionKinds() []string {
	return []string{AssertLatency, AssertBandwidth, AssertSpeedup, AssertCompleted,
		AssertFaults, AssertDegraded, AssertBlame, AssertContention,
		AssertDeterminism, AssertVirtualTime,
		AssertWindow, AssertPeakBacklog, AssertRecoveryWithin, AssertFlow}
}

func decodeCounterMap(m *mapReader, what, key string) (map[string]int64, error) {
	n := m.get(key)
	if n == nil {
		return nil, nil
	}
	cm, err := newMapReader(n, what+"."+key)
	if err != nil {
		return nil, err
	}
	out := map[string]int64{}
	for _, k := range n.keys {
		if _, ok := counterValue(nil, k); !ok {
			return nil, fmt.Errorf("line %d: %s.%s: unknown fault counter %q (valid: %s)",
				n.fields[k].line, what, key, k, strings.Join(counterNames(), ", "))
		}
		v, err := n.fields[k].int64(what + "." + key + "." + k)
		if err != nil {
			return nil, err
		}
		cm.used[k] = true
		out[k] = v
	}
	return out, cm.finish()
}

func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// effective returns the workload with defaults applied and, in quick
// mode, the long measurement arms shrunk to bound validate's runtime.
// Chaos reps stay untouched — they are cheap and the fault arithmetic of
// committed assertions depends on them.
func (w Workload) effective(seed int64, quick bool) Workload {
	switch w.Kind {
	case KindPingPong:
		if len(w.Types) == 0 {
			w.Types = []int{1, 2, 3, 4, 5}
		}
		if w.Bytes == 0 {
			w.Bytes = 1600
		}
		if w.Reps == 0 {
			w.Reps = 100
		}
		if quick && w.Reps > 30 {
			w.Reps = 30
		}
	case KindChaos:
		if w.Bytes == 0 {
			w.Bytes = 256
		}
		if w.Reps == 0 {
			w.Reps = 20
		}
		if len(w.Seeds) == 0 {
			w.Seeds = []int64{seed}
		}
	case KindSizeSweep:
		if len(w.Sizes) == 0 {
			w.Sizes = []int{1024, 65536}
		}
		if w.Reps == 0 {
			w.Reps = 10
		}
		if quick && w.Reps > 5 {
			w.Reps = 5
		}
	case KindIMB:
		if w.Pattern == "" {
			w.Pattern = "pingpong"
		}
		if w.Bytes == 0 {
			w.Bytes = 1600
		}
		if w.Reps == 0 {
			w.Reps = 100
		}
		if quick && w.Reps > 25 {
			w.Reps = 25
		}
	}
	return w
}

// imbPattern maps the YAML pattern name onto the workload constant.
func imbPattern(name string) (workload.IMBPattern, error) {
	switch name {
	case "pingpong":
		return workload.IMBPingPong, nil
	case "pingping":
		return workload.IMBPingPing, nil
	case "sendrecv":
		return workload.IMBSendRecv, nil
	case "exchange":
		return workload.IMBExchange, nil
	case "bcast":
		return workload.IMBBcast, nil
	case "allreduce":
		return workload.IMBAllreduce, nil
	case "barrier":
		return workload.IMBBarrier, nil
	}
	return 0, fmt.Errorf("unknown IMB pattern %q (valid: pingpong, pingping, sendrecv, exchange, bcast, allreduce, barrier)", name)
}
