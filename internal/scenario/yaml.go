// The scenario files are YAML, but the repo is standard-library-only, so
// this file implements the strict subset the DSL needs: block mappings,
// block lists ("- " items, including inline "- key: value" openers),
// inline lists ("[1, 2, 3]"), double-quoted and bare scalars, and "#"
// comments. No anchors, no flow mappings, no multi-line scalars — a
// scenario that needs those is a scenario that should be simplified.
//
// The parser is the robustness boundary for everything a scenario file
// can say, so it is written to the fuzz contract of FuzzScenarioParse:
// any input either yields a well-formed tree or an error naming the
// offending line; it never panics.
package scenario

import (
	"fmt"
	"strings"
)

// nodeKind discriminates the three tree shapes.
type nodeKind int

const (
	scalarNode nodeKind = iota
	listNode
	mapNode
)

// node is one parsed YAML value. Mappings keep key order (keys) so error
// reporting and re-rendering stay deterministic.
type node struct {
	line   int
	kind   nodeKind
	scalar string
	quoted bool // scalar came double-quoted: never reinterpreted as a number
	list   []*node
	keys   []string
	fields map[string]*node
}

func (n *node) kindName() string {
	switch n.kind {
	case scalarNode:
		return "scalar"
	case listNode:
		return "list"
	default:
		return "mapping"
	}
}

// srcLine is one significant source line after comment stripping.
type srcLine struct {
	num    int // 1-based line number in the file
	indent int
	text   string
}

// lex splits the input into significant lines: indentation measured,
// comments stripped (a "#" at the start of content or preceded by a
// space, outside double quotes), blanks dropped. Tabs in indentation are
// rejected — silently treating a tab as one column misnests blocks.
func lex(data []byte) ([]srcLine, error) {
	var out []srcLine
	for num, raw := range strings.Split(string(data), "\n") {
		line := strings.TrimSuffix(raw, "\r")
		indent := 0
		for indent < len(line) && line[indent] == ' ' {
			indent++
		}
		if indent < len(line) && line[indent] == '\t' {
			return nil, fmt.Errorf("line %d: tab in indentation (use spaces)", num+1)
		}
		text := stripComment(line[indent:])
		text = strings.TrimRight(text, " \t")
		if text == "" {
			continue
		}
		if strings.ContainsRune(text, '\t') {
			return nil, fmt.Errorf("line %d: tab inside content", num+1)
		}
		out = append(out, srcLine{num: num + 1, indent: indent, text: text})
	}
	return out, nil
}

// stripComment removes a trailing comment: "#" outside double quotes, at
// the start of the content or preceded by whitespace.
func stripComment(text string) string {
	inQuote := false
	for i := 0; i < len(text); i++ {
		switch text[i] {
		case '\\':
			if inQuote {
				i++ // skip the escaped character
			}
		case '"':
			inQuote = !inQuote
		case '#':
			if !inQuote && (i == 0 || text[i-1] == ' ') {
				return text[:i]
			}
		}
	}
	return text
}

// parseTree parses a whole document into one node (a mapping at the top
// level; an empty document parses to an empty mapping).
func parseTree(data []byte) (*node, error) {
	lines, err := lex(data)
	if err != nil {
		return nil, err
	}
	if len(lines) == 0 {
		return &node{kind: mapNode, fields: map[string]*node{}, line: 0}, nil
	}
	if lines[0].indent != 0 {
		return nil, fmt.Errorf("line %d: top-level content must not be indented", lines[0].num)
	}
	p := &parser{lines: lines}
	n, err := p.block(0)
	if err != nil {
		return nil, err
	}
	if p.pos < len(p.lines) {
		return nil, fmt.Errorf("line %d: content outside the document structure", p.lines[p.pos].num)
	}
	if n.kind != mapNode {
		return nil, fmt.Errorf("line %d: the document must be a mapping", n.line)
	}
	return n, nil
}

type parser struct {
	lines []srcLine
	pos   int
}

// block parses the run of lines at exactly the given indent into one
// list or mapping node.
func (p *parser) block(indent int) (*node, error) {
	l := p.lines[p.pos]
	if l.text == "-" || strings.HasPrefix(l.text, "- ") {
		return p.blockList(indent)
	}
	if strings.HasPrefix(l.text, "-") {
		return nil, fmt.Errorf("line %d: list item must be \"- value\" (missing space after -)", l.num)
	}
	if _, _, ok := splitKeyVal(l.text); !ok {
		// A lone scalar line: the content of a "- value" list item (after
		// blockList's rewrite) or stray top-level text (parseTree then
		// rejects the non-mapping document).
		p.pos++
		n, err := parseInline(l.text, l.num)
		if err != nil {
			return nil, err
		}
		if p.pos < len(p.lines) && p.lines[p.pos].indent > indent {
			return nil, fmt.Errorf("line %d: unexpected indentation after scalar", p.lines[p.pos].num)
		}
		return n, nil
	}
	return p.blockMap(indent)
}

func (p *parser) blockMap(indent int) (*node, error) {
	n := &node{kind: mapNode, fields: map[string]*node{}, line: p.lines[p.pos].num}
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent < indent {
			break
		}
		if l.indent > indent {
			return nil, fmt.Errorf("line %d: unexpected indentation", l.num)
		}
		if strings.HasPrefix(l.text, "-") {
			break // a list item at this indent belongs to an enclosing context
		}
		key, val, ok := splitKeyVal(l.text)
		if !ok {
			return nil, fmt.Errorf("line %d: expected \"key: value\"", l.num)
		}
		if !validKey(key) {
			return nil, fmt.Errorf("line %d: invalid key %q", l.num, key)
		}
		if _, dup := n.fields[key]; dup {
			return nil, fmt.Errorf("line %d: duplicate key %q", l.num, key)
		}
		p.pos++
		var child *node
		var err error
		if val == "" {
			if p.pos >= len(p.lines) || p.lines[p.pos].indent <= indent {
				return nil, fmt.Errorf("line %d: key %q has no value", l.num, key)
			}
			child, err = p.block(p.lines[p.pos].indent)
		} else {
			child, err = parseInline(val, l.num)
		}
		if err != nil {
			return nil, err
		}
		n.keys = append(n.keys, key)
		n.fields[key] = child
	}
	return n, nil
}

func (p *parser) blockList(indent int) (*node, error) {
	n := &node{kind: listNode, line: p.lines[p.pos].num}
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent < indent {
			break
		}
		if l.indent > indent {
			return nil, fmt.Errorf("line %d: unexpected indentation", l.num)
		}
		if l.text != "-" && !strings.HasPrefix(l.text, "- ") {
			break // back to mapping keys of an enclosing context
		}
		var child *node
		var err error
		if l.text == "-" {
			p.pos++
			if p.pos >= len(p.lines) || p.lines[p.pos].indent <= indent {
				return nil, fmt.Errorf("line %d: empty list item", l.num)
			}
			child, err = p.block(p.lines[p.pos].indent)
		} else {
			// Rewrite "- content" as "content" two columns deeper and
			// re-parse: continuation lines of an inline-opened item
			// ("- key: v" followed by "  key2: v") then line up naturally.
			rest := strings.TrimLeft(l.text[2:], " ")
			pad := len(l.text) - len(rest)
			p.lines[p.pos] = srcLine{num: l.num, indent: indent + pad, text: rest}
			child, err = p.block(indent + pad)
		}
		if err != nil {
			return nil, err
		}
		n.list = append(n.list, child)
	}
	return n, nil
}

// splitKeyVal splits "key: value" at the first ':' that ends the key (a
// colon followed by a space or the end of the line).
func splitKeyVal(text string) (key, val string, ok bool) {
	for i := 0; i < len(text); i++ {
		switch text[i] {
		case ':':
			if i+1 == len(text) {
				return strings.TrimSpace(text[:i]), "", true
			}
			if text[i+1] == ' ' {
				return strings.TrimSpace(text[:i]), strings.TrimSpace(text[i+1:]), true
			}
		case '"':
			return "", "", false // a quoted scalar line is not a key line
		}
	}
	return "", "", false
}

// validKey accepts snake_case / kebab-case identifiers.
func validKey(key string) bool {
	if key == "" {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case i > 0 && (c >= '0' && c <= '9' || c == '-'):
		default:
			return false
		}
	}
	return true
}

// parseInline parses a value that sits on the key's own line: a bare
// scalar, a double-quoted scalar, or an inline list of scalars.
func parseInline(val string, line int) (*node, error) {
	switch {
	case strings.HasPrefix(val, "["):
		if !strings.HasSuffix(val, "]") {
			return nil, fmt.Errorf("line %d: inline list is not closed", line)
		}
		inner := strings.TrimSpace(val[1 : len(val)-1])
		n := &node{kind: listNode, line: line}
		if inner == "" {
			return n, nil
		}
		for _, part := range strings.Split(inner, ",") {
			part = strings.TrimSpace(part)
			if part == "" {
				return nil, fmt.Errorf("line %d: empty element in inline list", line)
			}
			if strings.ContainsAny(part, "[]\"") {
				return nil, fmt.Errorf("line %d: inline lists hold bare scalars only", line)
			}
			n.list = append(n.list, &node{kind: scalarNode, scalar: part, line: line})
		}
		return n, nil
	case strings.HasPrefix(val, "\""):
		s, err := unquote(val, line)
		if err != nil {
			return nil, err
		}
		return &node{kind: scalarNode, scalar: s, quoted: true, line: line}, nil
	case strings.ContainsAny(val, "{}"):
		return nil, fmt.Errorf("line %d: flow mappings are not supported", line)
	default:
		return &node{kind: scalarNode, scalar: val, line: line}, nil
	}
}

// unquote decodes a double-quoted scalar supporting \" and \\ escapes.
func unquote(val string, line int) (string, error) {
	var b strings.Builder
	i := 1
	for i < len(val) {
		switch c := val[i]; c {
		case '"':
			if i != len(val)-1 {
				return "", fmt.Errorf("line %d: content after closing quote", line)
			}
			return b.String(), nil
		case '\\':
			if i+1 >= len(val) {
				return "", fmt.Errorf("line %d: dangling escape in quoted scalar", line)
			}
			switch val[i+1] {
			case '"', '\\':
				b.WriteByte(val[i+1])
			default:
				return "", fmt.Errorf("line %d: unsupported escape \\%c", line, val[i+1])
			}
			i++
		default:
			b.WriteByte(c)
		}
		i++
	}
	return "", fmt.Errorf("line %d: quoted scalar is not closed", line)
}
