package scenario

import (
	"strings"
	"testing"
)

// FuzzScenarioParse is the parser's robustness contract: any byte string
// — malformed topologies, negative times, unknown fault kinds, torn
// indentation, garbage — either parses into a valid scenario or returns
// an error. It must never panic: scenario files are the one input a
// cluster operator hand-edits.
func FuzzScenarioParse(f *testing.F) {
	seeds := []string{
		minimal,
		"",
		"# nothing but a comment\n",
		"name: x\nworkloads:\n  - kind: chaos\n    reps: 1000000000000000000000\n", // integer overflow
		"name: x\nworkloads:\n  - kind: chaos\nfaults:\n  - kind: meteor\n",
		"name: x\nworkloads:\n  - kind: chaos\nfaults:\n  - kind: kill-spe\n    at: -5ms\n    proc: \"c4w#2\"\n",
		"name: x\ntopology:\n  cell_nodes: -3\nworkloads:\n  - kind: chaos\n",
		"name: x\ntopology:\n  cell_nodes: 9999999\nworkloads:\n  - kind: chaos\n",
		"a:\n  b:\n    c:\n      d: 1\n",
		"workloads: [1, 2\n",
		"x: \"un\\terminated\n",
		"- top\n- level\n- list\n",
		"\t\nname: x\n",
		"name: x\nname: y\n",
		"assertions:\n  - kind: faults\n    min:\n      bogus_counter: 1\n",
		strings.Repeat("  ", 40) + "deep: 1\n",
		"name: x\nworkloads:\n  -\n    kind: chaos\n",
		"name: x\nseed: \"quoted\"\nworkloads:\n  - kind: chaos\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(data)
		if err != nil {
			if s != nil {
				t.Fatalf("error and a scenario at once: %v", err)
			}
			return
		}
		// Whatever parses must re-validate cleanly (Parse already ran
		// Validate; a second pass must agree) and lower without panic.
		if err := s.Validate(); err != nil {
			t.Fatalf("parsed scenario fails re-validation: %v", err)
		}
		s.lowerFaults()
		s.topology()
	})
}
