package scenario

import (
	"fmt"
	"testing"

	"cellpilot/internal/sim"
)

// The scenario library is the kernel's broadest regression surface: nine
// files spanning every workload kind, fault plan and assertion the DSL
// can express. These suites run the whole fleet under the alternate
// kernel configurations — heap vs calendar event queue, sequential vs
// sharded parallel driver — and demand bit-for-bit identical
// fingerprints. Quick mode is fine here: both arms of each comparison
// run the same shape, so equivalence (unlike golden comparison) holds.

// fleetFingerprints runs every library scenario once (no determinism
// re-runs — the comparison across arms is the determinism check) and
// returns file -> fingerprint.
func fleetFingerprints(files []string) (map[string]string, error) {
	out := make(map[string]string, len(files))
	for _, f := range files {
		s, err := Load(f)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", f, err)
		}
		o, err := runOnce(s, Options{Quick: true})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", f, err)
		}
		out[f] = o.Fingerprint
	}
	return out, nil
}

// TestScenarioFleetQueueKindEquivalence: every checked-in scenario must
// fingerprint identically under the calendar queue (the default) and the
// original heap queue.
func TestScenarioFleetQueueKindEquivalence(t *testing.T) {
	files, err := ListFiles("../../scenarios")
	if err != nil {
		t.Fatal(err)
	}
	cal, err := fleetFingerprints(files)
	if err != nil {
		t.Fatal(err)
	}
	prev := sim.SetDefaultQueueKind(sim.QueueHeap)
	hp, err := fleetFingerprints(files)
	sim.SetDefaultQueueKind(prev)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		if cal[f] != hp[f] {
			t.Errorf("%s: queue kinds diverge:\n%s", f, firstDiff(cal[f], hp[f]))
		}
	}
}

// TestScenarioFleetShardedEquivalence: the whole library executed as
// logical processes of one parallel sharded fleet (4 workers contending
// on however many cores the host has) must reproduce the sequential
// fingerprints exactly.
func TestScenarioFleetShardedEquivalence(t *testing.T) {
	files, err := ListFiles("../../scenarios")
	if err != nil {
		t.Fatal(err)
	}
	seq, err := fleetFingerprints(files)
	if err != nil {
		t.Fatal(err)
	}
	par := make([]string, len(files))
	sh := sim.NewSharded(4)
	for i, f := range files {
		i, f := i, f
		sh.AddLP(f, func(lp *sim.LP) error {
			s, err := Load(f)
			if err != nil {
				return fmt.Errorf("%s: %w", f, err)
			}
			o, err := runOnce(s, Options{Quick: true})
			if err != nil {
				return fmt.Errorf("%s: %w", f, err)
			}
			par[i] = o.Fingerprint
			return nil
		})
	}
	if err := sh.Run(); err != nil {
		t.Fatal(err)
	}
	for i, f := range files {
		if par[i] != seq[f] {
			t.Errorf("%s: sharded run diverges from sequential:\n%s", f, firstDiff(seq[f], par[i]))
		}
	}
}
