package scenario

import (
	"strings"
	"testing"

	"cellpilot/internal/sim"
)

// azScenario mirrors scenarios/az-node-loss.yaml: a whole Cell blade
// crashes at 2ms. The backlog drains back to baseline within a
// millisecond while the dead type-1 channel retains its unread write
// forever — the shape the temporal checks below exercise.
func azScenario() *Scenario {
	return &Scenario{
		Name:     "az",
		Seed:     11,
		Topology: Topology{CellNodes: 3, CellsPerNode: 2, XeonNodes: 1},
		Workloads: []Workload{
			{Kind: KindChaos, Reps: 20},
		},
		Faults: []FaultSpec{
			{Kind: FaultCrashNode, At: 2 * sim.Millisecond, Node: 1},
		},
	}
}

func TestTemporalAssertionsDecode(t *testing.T) {
	doc := `
name: temporal
workloads:
  - kind: chaos
faults:
  - kind: kill-spe
    at: 1ms
    proc: c4w#2
timeline:
  window: 50us
assertions:
  - kind: window
    series: copilot/copilot@cell0/utilization
    from: 100us
    to: 3ms
    max: 4.0
    min_peak: 0.5
  - kind: peak_backlog
    type: 3
    max: 8
    min: 1
  - kind: recovery_within
    series: backlog/total
    max: 2ms
`
	s, err := Parse([]byte(doc))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if s.Timeline.Window != 50*sim.Microsecond {
		t.Fatalf("timeline window = %v", s.Timeline.Window)
	}
	if len(s.Assertions) != 3 {
		t.Fatalf("assertions = %d", len(s.Assertions))
	}
	w := s.Assertions[0]
	if w.Kind != AssertWindow || w.Series != "copilot/copilot@cell0/utilization" ||
		w.From != 100*sim.Microsecond || w.To != 3*sim.Millisecond ||
		w.MaxValue != 4.0 || w.MinPeak != 0.5 {
		t.Fatalf("window assertion = %+v", w)
	}
	p := s.Assertions[1]
	if p.Kind != AssertPeakBacklog || p.Type != 3 || p.MaxBacklog != 8 || p.MinBacklog != 1 {
		t.Fatalf("peak_backlog assertion = %+v", p)
	}
	r := s.Assertions[2]
	if r.Kind != AssertRecoveryWithin || r.Series != "backlog/total" || r.MaxRecovery != 2*sim.Millisecond {
		t.Fatalf("recovery_within assertion = %+v", r)
	}
}

func TestTemporalValidationErrors(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Scenario)
		want string
	}{
		{"window needs series", func(s *Scenario) {
			s.Assertions = []Assertion{{Kind: AssertWindow, MaxValue: 1}}
		}, "name the timeline series"},
		{"unknown series", func(s *Scenario) {
			s.Assertions = []Assertion{{Kind: AssertWindow, Series: "cpu/steal", MaxValue: 1}}
		}, "unknown timeline series"},
		{"empty window range", func(s *Scenario) {
			s.Assertions = []Assertion{{Kind: AssertWindow, Series: "net/bytes",
				From: 2 * sim.Millisecond, To: sim.Millisecond, MaxValue: 1}}
		}, "empty window range"},
		{"window needs a bound", func(s *Scenario) {
			s.Assertions = []Assertion{{Kind: AssertWindow, Series: "net/bytes"}}
		}, "set max and/or min_peak"},
		{"window bounds empty", func(s *Scenario) {
			s.Assertions = []Assertion{{Kind: AssertWindow, Series: "net/bytes", MaxValue: 1, MinPeak: 2}}
		}, "min_peak 2 > max 1"},
		{"peak_backlog type range", func(s *Scenario) {
			s.Assertions = []Assertion{{Kind: AssertPeakBacklog, Type: 6, MaxBacklog: 4}}
		}, "out of range 0..5"},
		{"peak_backlog needs max", func(s *Scenario) {
			s.Assertions = []Assertion{{Kind: AssertPeakBacklog, Type: 1}}
		}, "max must be positive"},
		{"recovery needs positive max", func(s *Scenario) {
			s.Assertions = []Assertion{{Kind: AssertRecoveryWithin}}
		}, "positive max recovery"},
		{"recovery needs a fault", func(s *Scenario) {
			s.Faults = nil
			s.Assertions = []Assertion{{Kind: AssertRecoveryWithin, MaxRecovery: sim.Millisecond}}
		}, "schedule at least one timed fault"},
		{"recovery rejects link-only faults", func(s *Scenario) {
			s.Faults = []FaultSpec{{Kind: FaultLossyLink, From: 0, To: 1, DropProb: 0.1}}
			s.Assertions = []Assertion{{Kind: AssertRecoveryWithin, MaxRecovery: sim.Millisecond}}
		}, "schedule at least one timed fault"},
		{"timeline needs chaos", func(s *Scenario) {
			s.Workloads = []Workload{{Kind: KindPingPong}}
			s.Faults = nil
			s.Timeline = TimelineSpec{Window: 100 * sim.Microsecond}
		}, "add a chaos workload"},
		{"negative window", func(s *Scenario) {
			s.Timeline = TimelineSpec{Window: -1}
		}, "window must be non-negative"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := azScenario()
			tc.mut(s)
			err := s.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate = %v, want mention of %q", err, tc.want)
			}
		})
	}
}

// One run, checked against passing and violated temporal bounds — the
// bounds are calibrated against the deterministic az-node-loss shape:
// backlog/total peaks at 3 and recovers 900µs after the 2ms crash, while
// the dead type-1 channel's backlog never drains.
func TestTemporalChecksPassAndFail(t *testing.T) {
	s := azScenario()
	s.Assertions = []Assertion{
		{Kind: AssertRecoveryWithin, MaxRecovery: 2 * sim.Millisecond},                         // 900µs: passes
		{Kind: AssertPeakBacklog, MaxBacklog: 6, MinBacklog: 2},                                // peak 3: passes
		{Kind: AssertWindow, Series: "copilot/copilot@cell0/utilization", To: 2 * sim.Millisecond, MinPeak: 1}, // hot pre-crash: passes
		{Kind: AssertRecoveryWithin, MaxRecovery: 100 * sim.Microsecond},                       // too tight: fails
		{Kind: AssertRecoveryWithin, Series: "backlog/type1", MaxRecovery: sim.Second},         // never drains: fails
		{Kind: AssertPeakBacklog, Type: 2, MinBacklog: 1, MaxBacklog: 5},                       // type 2 never queued: fails
		{Kind: AssertWindow, Series: "backlog/total", MaxValue: 0.5},                           // backlog exists: fails
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	out, err := Run(s, Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	vs := Check(out)
	byIndex := map[int][]Violation{}
	for _, v := range vs {
		byIndex[v.Index] = append(byIndex[v.Index], v)
	}
	for _, idx := range []int{0, 1, 2} {
		if len(byIndex[idx]) != 0 {
			t.Errorf("assertions[%d] should pass: %v", idx, byIndex[idx])
		}
	}
	if len(byIndex[3]) != 1 || !strings.Contains(byIndex[3][0].Message, "took") ||
		!strings.Contains(byIndex[3][0].Message, "crash-node(node1)") {
		t.Errorf("tight recovery violation = %v", byIndex[3])
	}
	if len(byIndex[4]) != 1 || !strings.Contains(byIndex[4][0].Message, "never recovered") {
		t.Errorf("stuck-series violation = %v", byIndex[4])
	}
	if len(byIndex[5]) != 1 || !strings.Contains(byIndex[5][0].Message, "never queued") {
		t.Errorf("min-backlog violation = %v", byIndex[5])
	}
	if len(byIndex[6]) == 0 || !strings.Contains(byIndex[6][0].Message, "exceeds bound") {
		t.Errorf("window-max violation = %v", byIndex[6])
	}
}

// Temporal assertions force a timeline onto the chaos runs; its
// fingerprint folds into the scenario fingerprint and stays bit-identical
// across re-runs (the determinism assertion compares full fingerprints,
// timeline lines included).
func TestTimelineFingerprintDeterministicUnderChaos(t *testing.T) {
	s := azScenario()
	s.Timeline = TimelineSpec{Window: 100 * sim.Microsecond}
	s.Assertions = []Assertion{{Kind: AssertDeterminism}}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	out, err := Run(s, Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, want := range []string{
		"  timeline window_ns=100000",
		"  series backlog/total",
		"  fault at_ns=2000000 label=\"crash-node(node1)\"",
	} {
		if !strings.Contains(out.Fingerprint, want) {
			t.Fatalf("fingerprint missing %q:\n%s", want, out.Fingerprint)
		}
	}
	if out.DeterminismDiff != "" {
		t.Fatalf("fingerprints diverged:\n%s", out.DeterminismDiff)
	}
	if vs := Check(out); len(vs) != 0 {
		t.Fatalf("violations: %v", vs)
	}
	// Without a timeline block or temporal assertion no recorder attaches
	// and the fingerprint carries no timeline lines — the zero-cost
	// contract at the DSL layer.
	bare := azScenario()
	bareOut, err := Run(bare, Options{})
	if err != nil {
		t.Fatalf("Run bare: %v", err)
	}
	if strings.Contains(bareOut.Fingerprint, "timeline window_ns=") {
		t.Fatalf("bare run fingerprint carries timeline lines:\n%s", bareOut.Fingerprint)
	}
	if bareOut.Chaos.Runs[0].Timeline != nil {
		t.Fatal("bare run attached a timeline recorder")
	}
}

// The builder reaches the same validation gate as YAML.
func TestBuilderWithTimeline(t *testing.T) {
	s, err := New("built-temporal").
		WithSeed(11).
		WithTopology(3, 2, 1).
		AddWorkload(Workload{Kind: KindChaos, Reps: 20}).
		AddFault(FaultSpec{Kind: FaultCrashNode, At: 2 * sim.Millisecond, Node: 1}).
		WithTimeline(0).
		Assert(Assertion{Kind: AssertRecoveryWithin, MaxRecovery: 2 * sim.Millisecond}).
		Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if s.Timeline.Window != 100*sim.Microsecond {
		t.Fatalf("default window = %v", s.Timeline.Window)
	}
	_, err = New("bad-temporal").
		AddWorkload(Workload{Kind: KindChaos}).
		Assert(Assertion{Kind: AssertRecoveryWithin, MaxRecovery: sim.Millisecond}).
		Build()
	if err == nil || !strings.Contains(err.Error(), "timed fault") {
		t.Fatalf("Build without a fault = %v", err)
	}
}
