package scenario

import (
	"strings"
	"testing"

	"cellpilot/internal/fault"
	"cellpilot/internal/sim"
)

// chaosOnly builds a small chaos-only scenario for fault-plan tests.
func chaosOnly(faults ...FaultSpec) *Scenario {
	return &Scenario{
		Name:      "lowering",
		Seed:      3,
		Workloads: []Workload{{Kind: KindChaos, Reps: 2}},
		Faults:    faults,
	}
}

func TestLowerFaultPlan(t *testing.T) {
	s := chaosOnly(
		FaultSpec{Kind: FaultCrashNode, At: 5 * sim.Millisecond, Node: 1},
		FaultSpec{Kind: FaultKillCoPilot, At: 1 * sim.Millisecond, Node: 0},
		FaultSpec{Kind: FaultKillSPE, At: 2 * sim.Millisecond, Proc: "c4w#2"},
		FaultSpec{Kind: FaultMailboxDrop, At: 300 * sim.Microsecond, Proc: "c2e#0"},
		FaultSpec{Kind: FaultMailboxStall, At: 400 * sim.Microsecond, Proc: "c5e#0", Delay: sim.Millisecond},
		FaultSpec{Kind: FaultLossyLink, From: 0, To: 2, Bidirectional: true, DropProb: 0.2, After: 3 * sim.Millisecond},
	)
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	p := s.lowerFaults()
	if p.Seed != 3 {
		t.Fatalf("plan seed = %d", p.Seed)
	}
	if len(p.Events) != 5 {
		t.Fatalf("events = %d", len(p.Events))
	}
	wantKinds := []fault.Kind{fault.CrashNode, fault.KillCoPilot, fault.KillSPE, fault.MailboxDrop, fault.MailboxStall}
	for i, k := range wantKinds {
		if p.Events[i].Kind != k {
			t.Fatalf("event %d kind = %v, want %v", i, p.Events[i].Kind, k)
		}
	}
	if p.Events[4].Delay != sim.Millisecond {
		t.Fatalf("stall delay = %v", p.Events[4].Delay)
	}
	if len(p.Links) != 2 {
		t.Fatalf("links = %d", len(p.Links))
	}
	fwd, rev := p.Links[0], p.Links[1]
	if fwd.From != 0 || fwd.To != 2 || rev.From != 2 || rev.To != 0 {
		t.Fatalf("bidirectional expansion wrong: %+v / %+v", fwd, rev)
	}
	if fwd.After != 3*sim.Millisecond || rev.DropProb != 0.2 {
		t.Fatalf("policy fields lost in expansion: %+v / %+v", fwd, rev)
	}
	if s.lowerFaults() == nil || chaosOnly().lowerFaults() != nil {
		t.Fatalf("nil-plan contract: faults => plan, no faults => nil")
	}
}

func TestLowerRejectsNonexistentTargets(t *testing.T) {
	// Config errors, never panics: targets are vetted against the
	// topology and the chaos process layout before anything runs.
	cases := []struct {
		name string
		s    *Scenario
		want string
	}{
		{"node-too-high", chaosOnly(FaultSpec{Kind: FaultCrashNode, Node: 7}), "node 7 does not exist"},
		{"node-negative", chaosOnly(FaultSpec{Kind: FaultCrashNode, Node: -1}), "node -1 does not exist"},
		{"copilot-on-xeon", chaosOnly(FaultSpec{Kind: FaultKillCoPilot, Node: 2}), "x86 node"},
		{"unknown-spe", chaosOnly(FaultSpec{Kind: FaultKillSPE, Proc: "c9z#0"}), "not a chaos SPE stub"},
		{"mbox-unknown-spe", chaosOnly(FaultSpec{Kind: FaultMailboxDrop, Proc: "ppe"}), "not a chaos SPE stub"},
		{"stall-no-delay", chaosOnly(FaultSpec{Kind: FaultMailboxStall, Proc: "c2e#0"}), "positive delay"},
		{"link-self", chaosOnly(FaultSpec{Kind: FaultLossyLink, From: 1, To: 1, DropProb: 0.1}), "distinct nodes"},
		{"link-bad-node", chaosOnly(FaultSpec{Kind: FaultLossyLink, From: 0, To: 9, DropProb: 0.1}), "node 9 does not exist"},
		{"link-prob-range", chaosOnly(FaultSpec{Kind: FaultLossyLink, From: 0, To: 1, DropProb: 1.5}), "out of range"},
		{"link-no-effect", chaosOnly(FaultSpec{Kind: FaultLossyLink, From: 0, To: 1}), "does nothing"},
		{"delay-no-max", chaosOnly(FaultSpec{Kind: FaultLossyLink, From: 0, To: 1, DelayProb: 0.1}), "positive max_delay"},
		{"max-no-delay", chaosOnly(FaultSpec{Kind: FaultLossyLink, From: 0, To: 1, DropProb: 0.1, MaxDelay: sim.Millisecond}), "without delay_prob"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.s.Validate()
			if err == nil {
				t.Fatalf("no error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestLowerRejectsOverlappingLinkPolicies(t *testing.T) {
	// The injector keeps one policy per directed link and would let the
	// last one silently win — the DSL makes the overlap a config error.
	direct := chaosOnly(
		FaultSpec{Kind: FaultLossyLink, From: 0, To: 1, DropProb: 0.1},
		FaultSpec{Kind: FaultLossyLink, From: 0, To: 1, CorruptProb: 0.1},
	)
	if err := direct.Validate(); err == nil || !strings.Contains(err.Error(), "already carries a policy") {
		t.Fatalf("want overlap error, got %v", err)
	}
	// A bidirectional policy claims both directions.
	viaBidi := chaosOnly(
		FaultSpec{Kind: FaultLossyLink, From: 0, To: 1, Bidirectional: true, DropProb: 0.1},
		FaultSpec{Kind: FaultLossyLink, From: 1, To: 0, DropProb: 0.2},
	)
	if err := viaBidi.Validate(); err == nil || !strings.Contains(err.Error(), "already carries a policy") {
		t.Fatalf("want bidirectional overlap error, got %v", err)
	}
	// Opposite directions without bidirectional are two distinct links.
	ok := chaosOnly(
		FaultSpec{Kind: FaultLossyLink, From: 0, To: 1, DropProb: 0.1},
		FaultSpec{Kind: FaultLossyLink, From: 1, To: 0, DropProb: 0.2},
	)
	if err := ok.Validate(); err != nil {
		t.Fatalf("reverse direction should not overlap: %v", err)
	}
}

func TestFaultAfterWorkloadCompletion(t *testing.T) {
	// A fault scheduled far past the workload's natural end must not
	// panic or wedge: the kernel drains the timer against dead processes
	// and the run completes fully, deterministically.
	s := chaosOnly(FaultSpec{Kind: FaultKillSPE, At: 10 * sim.Second, Proc: "c4w#2"})
	s.Assertions = []Assertion{
		{Kind: AssertCompleted, Type: 4, Full: true},
		{Kind: AssertDeterminism},
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	out, err := Run(s, Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if vs := Check(out); len(vs) != 0 {
		t.Fatalf("violations: %v", vs)
	}
	r := out.Chaos.Runs[0].Result
	if r.VirtualTime < 10*sim.Second {
		t.Fatalf("the late fault timer should stretch the clock to its firing time, vt = %v", r.VirtualTime)
	}
	for typ := 1; typ <= 5; typ++ {
		if r.Completed[typ] != 2 {
			t.Fatalf("type %d completed %d/2 — a post-completion fault must not cost traffic", typ, r.Completed[typ])
		}
	}
	// The parked (already idle) SPE is still killed when the timer fires,
	// deterministically, without dragging any traffic down with it.
	if r.Counts.ProcsKilled != 1 || len(r.Killed) != 1 || !strings.Contains(r.Killed[0], "c4w#2") {
		t.Fatalf("late kill bookkeeping: counts=%+v killed=%v", r.Counts, r.Killed)
	}
}
