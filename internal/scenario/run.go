package scenario

import (
	"fmt"
	"sort"
	"strings"

	"cellpilot/internal/cluster"
	"cellpilot/internal/core"
	"cellpilot/internal/critpath"
	"cellpilot/internal/flowmap"
	"cellpilot/internal/sim"
	"cellpilot/internal/timeline"
	"cellpilot/internal/trace"
	"cellpilot/internal/workload"
)

// Options tunes one scenario execution.
type Options struct {
	// Quick shrinks the long measurement arms (pingpong/sizesweep/imb
	// reps) to bound validate's runtime. Chaos reps are never shrunk —
	// committed fault-count assertions depend on them. Quick outcomes are
	// not comparable against golden fingerprints.
	Quick bool
}

// Outcome is everything one scenario run observed, plus the fingerprint
// that renders it for golden comparison and determinism checks.
type Outcome struct {
	Scenario *Scenario
	Quick    bool
	// Fingerprint is the deterministic rendering of the whole outcome.
	Fingerprint string
	PingPong    *PingPongOutcome
	Chaos       *ChaosOutcome
	Sweep       []workload.SizeSweepPoint
	IMB         *workload.IMBResult
	// DeterminismRuns counts how many full executions the determinism
	// assertion compared (0 = no determinism assertion).
	DeterminismRuns int
	// DeterminismDiff is empty when every re-run fingerprinted
	// identically; otherwise it carries the first diverging lines.
	DeterminismDiff string
}

// PingPongOutcome is the measured five-type latency grid.
type PingPongOutcome struct {
	Bytes, Reps int
	Types       []PingPongType
}

// PingPongType is one channel type's latency/bandwidth measurement.
type PingPongType struct {
	Type int
	// OneWay is the mean one-way latency; P50/P99 are one-way quantiles
	// over the timed rounds.
	OneWay, P50, P99 sim.Time
	MBps             float64
}

// ChaosOutcome is the chaos seed sweep's outcome.
type ChaosOutcome struct {
	Reps int
	Runs []ChaosRun
}

// ChaosRun is one seed's result plus the traced post-run report (its
// CritPath field carries the blame decomposition and contention pairs).
type ChaosRun struct {
	Seed   int64
	Result workload.ChaosResult
	Stats  core.Stats
	// Timeline is the run's telemetry recorder, attached when the scenario
	// declares a timeline block or any temporal assertion; nil otherwise.
	Timeline *timeline.Recorder
	// Flows is the run's flow observatory, attached when the scenario
	// carries a flow assertion; nil otherwise.
	Flows *flowmap.Map
}

// Run executes a validated scenario: every workload entry in order on the
// declared topology, faults lowered into the chaos entries, and — when a
// determinism assertion is present — the whole suite re-executed and
// fingerprint-compared. The returned error is an execution error (a
// workload refused to run); assertion violations are Check's business.
func Run(s *Scenario, opt Options) (*Outcome, error) {
	out, err := runOnce(s, opt)
	if err != nil {
		return nil, err
	}
	runs := 0
	for _, a := range s.Assertions {
		if a.Kind == AssertDeterminism {
			r := a.Runs
			if r == 0 {
				r = 2
			}
			if r > runs {
				runs = r
			}
		}
	}
	for i := 1; i < runs; i++ {
		again, err := runOnce(s, opt)
		if err != nil {
			return nil, fmt.Errorf("determinism re-run %d: %w", i+1, err)
		}
		if again.Fingerprint != out.Fingerprint {
			out.DeterminismDiff = firstDiff(out.Fingerprint, again.Fingerprint)
			break
		}
	}
	out.DeterminismRuns = runs
	return out, nil
}

func runOnce(s *Scenario, opt Options) (*Outcome, error) {
	t := s.topology()
	out := &Outcome{Scenario: s, Quick: opt.Quick}
	var fp strings.Builder
	fmt.Fprintf(&fp, "scenario=%s seed=%d topology=%dx%d+%d\n",
		s.Name, s.seed(), t.CellNodes, t.CellsPerNode, t.XeonNodes)
	plan := s.lowerFaults()
	for i, w := range s.Workloads {
		w = w.effective(s.seed(), opt.Quick)
		spec := func() *cluster.Spec {
			return &cluster.Spec{CellNodes: t.CellNodes, CellsPerNode: t.CellsPerNode, XeonNodes: t.XeonNodes}
		}
		switch w.Kind {
		case KindPingPong:
			po := &PingPongOutcome{Bytes: w.Bytes, Reps: w.Reps}
			for _, typ := range w.Types {
				var rtts []sim.Time
				res, err := workload.PingPong(workload.PingPongConfig{
					Type: typ, Bytes: w.Bytes, Method: workload.MethodCellPilot,
					Reps: w.Reps, Transfer: w.Transfer,
					RoundTrips: &rtts, Spec: spec(),
				})
				if err != nil {
					return nil, fmt.Errorf("workloads[%d] pingpong type %d: %w", i, typ, err)
				}
				p50, p99 := oneWayQuantiles(rtts)
				pt := PingPongType{Type: typ, OneWay: res.OneWay, P50: p50, P99: p99, MBps: res.ThroughputMBps}
				po.Types = append(po.Types, pt)
				fmt.Fprintf(&fp, "pingpong type=%d bytes=%d oneway_ns=%d p50_ns=%d p99_ns=%d mbps=%.3f\n",
					typ, w.Bytes, int64(pt.OneWay), int64(pt.P50), int64(pt.P99), pt.MBps)
			}
			if out.PingPong == nil {
				out.PingPong = po
			}
		case KindChaos:
			co := &ChaosOutcome{Reps: w.Reps}
			wantTimeline := s.Timeline.Window > 0 || s.hasTemporalAssertion()
			wantFlows := s.hasFlowAssertion()
			for _, seed := range w.Seeds {
				rec := trace.NewRecorder(0)
				var st core.Stats
				var tl *timeline.Recorder
				if wantTimeline {
					tl = timeline.New(s.Timeline.Window)
				}
				var fl *flowmap.Map
				if wantFlows {
					fl = flowmap.New(0)
				}
				res, err := workload.Chaos(workload.ChaosConfig{
					Seed: seed, Reps: w.Reps, Bytes: w.Bytes,
					SoftTimeout: w.SoftTimeout, Transfer: w.Transfer,
					Spec: spec(), Plan: plan, Trace: rec, Stats: &st,
					Timeline: tl, Flows: fl,
				})
				if err != nil {
					return nil, fmt.Errorf("workloads[%d] chaos seed %d: %w", i, seed, err)
				}
				co.Runs = append(co.Runs, ChaosRun{Seed: seed, Result: res, Stats: st, Timeline: tl, Flows: fl})
				fmt.Fprintf(&fp, "chaos seed=%d\n", seed)
				for _, line := range strings.Split(strings.TrimRight(res.Fingerprint(), "\n"), "\n") {
					fmt.Fprintf(&fp, "  %s\n", line)
				}
				writeBlameLines(&fp, st.CritPath)
				if tl != nil {
					for _, line := range strings.Split(strings.TrimRight(tl.Fingerprint(), "\n"), "\n") {
						fmt.Fprintf(&fp, "  %s\n", line)
					}
				}
				if fl != nil {
					for _, line := range strings.Split(strings.TrimRight(fl.FingerprintLines(), "\n"), "\n") {
						fmt.Fprintf(&fp, "  %s\n", line)
					}
				}
			}
			if out.Chaos == nil {
				out.Chaos = co
			}
		case KindSizeSweep:
			pts, err := workload.SizeSweep(workload.SizeSweepConfig{
				Reps: w.Reps, Transfer: w.Transfer, Sizes: w.Sizes, Spec: spec(),
			})
			if err != nil {
				return nil, fmt.Errorf("workloads[%d] sizesweep: %w", i, err)
			}
			if out.Sweep == nil {
				out.Sweep = pts
			}
			for _, pt := range pts {
				fmt.Fprintf(&fp, "sweep type=%d bytes=%d chunked=%v p50_ns=%d p99_ns=%d mbps=%.3f\n",
					pt.Type, pt.Bytes, pt.Chunked, int64(pt.OneWayP50), int64(pt.OneWayP99), pt.BandwidthMBps)
			}
		case KindIMB:
			pat, err := imbPattern(w.Pattern)
			if err != nil {
				return nil, fmt.Errorf("workloads[%d] imb: %w", i, err)
			}
			res, err := workload.IMB(workload.IMBConfig{
				Pattern: pat, Ranks: w.Ranks, Bytes: w.Bytes, Reps: w.Reps,
				Nodes: t.CellNodes,
			})
			if err != nil {
				return nil, fmt.Errorf("workloads[%d] imb: %w", i, err)
			}
			if out.IMB == nil {
				out.IMB = &res
			}
			fmt.Fprintf(&fp, "imb pattern=%s ranks=%d bytes=%d avg_ns=%d mbps=%.3f\n",
				res.Config.Pattern, res.Config.Ranks, res.Config.Bytes, int64(res.AvgTime), res.MBps)
		}
	}
	out.Fingerprint = fp.String()
	return out, nil
}

// writeBlameLines renders the critical-path decomposition into the
// fingerprint: per channel type the top stage and its share, plus the
// contention-pair count. Shares round to 1e-4 so the rendering is exact.
func writeBlameLines(fp *strings.Builder, rep *critpath.Report) {
	if rep == nil {
		return
	}
	for _, tb := range rep.Types {
		stage, share := topStage(tb)
		fmt.Fprintf(fp, "  blame type=%d transfers=%d total_ns=%d top=%s share=%.4f\n",
			tb.ChanType, tb.Transfers, int64(tb.Total), stage, share)
	}
	fmt.Fprintf(fp, "  contention pairs=%d\n", len(rep.Pairs))
}

// topStage names the stage owning the largest share of a type's critical
// path and that share in [0, 1].
func topStage(tb critpath.TypeBlame) (string, float64) {
	if tb.Total == 0 || len(tb.Stages) == 0 {
		return "none", 0
	}
	best := tb.Stages[0]
	for _, sb := range tb.Stages[1:] {
		if sb.Total() > best.Total() {
			best = sb
		}
	}
	return critpath.StageName(best.Phase), float64(best.Total()) / float64(tb.Total)
}

// stageShare returns the named stage's share of a type's critical path.
func stageShare(tb critpath.TypeBlame, stage string) float64 {
	if tb.Total == 0 {
		return 0
	}
	var sum sim.Time
	for _, sb := range tb.Stages {
		if critpath.StageName(sb.Phase) == stage {
			sum += sb.Total()
		}
	}
	return float64(sum) / float64(tb.Total)
}

// oneWayQuantiles reduces round-trip samples to one-way p50/p99.
func oneWayQuantiles(rtts []sim.Time) (p50, p99 sim.Time) {
	if len(rtts) == 0 {
		return 0, 0
	}
	s := append([]sim.Time(nil), rtts...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	at := func(q float64) sim.Time {
		return s[int(q*float64(len(s)-1))] / 2
	}
	return at(0.5), at(0.99)
}

// firstDiff renders the first diverging line of two fingerprints.
func firstDiff(a, b string) string {
	al := strings.Split(a, "\n")
	bl := strings.Split(b, "\n")
	n := len(al)
	if len(bl) < n {
		n = len(bl)
	}
	for i := 0; i < n; i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("fingerprint line %d diverged:\n  run 1: %s\n  rerun: %s", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("fingerprint length diverged: %d vs %d lines", len(al), len(bl))
}
