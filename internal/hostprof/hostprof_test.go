package hostprof

import (
	"strings"
	"testing"

	"cellpilot/internal/metrics"
)

func TestNilReceiverSafe(t *testing.T) {
	var p *Profiler
	p.Event()
	p.HeapPush(3)
	p.HeapPop()
	p.CancelPurge()
	p.SliceStart(1)
	p.Enter(SubsysMPI)
	p.Exit()
	p.SliceEnd(1)
	if s := p.Snapshot(); s.Events != 0 || len(s.Subsystems) != 0 {
		t.Fatalf("nil profiler snapshot not zero: %+v", s)
	}
}

func TestKernelCounters(t *testing.T) {
	p := New(1)
	for i := 0; i < 5; i++ {
		p.HeapPush(i + 1)
	}
	for i := 0; i < 3; i++ {
		p.HeapPop()
		p.Event()
	}
	p.HeapPop()
	p.CancelPurge()
	s := p.Snapshot()
	if s.Events != 3 || s.HeapPushes != 5 || s.HeapPops != 4 || s.CancelPurged != 1 {
		t.Fatalf("counters wrong: %+v", s)
	}
	if s.MaxHeapDepth != 5 {
		t.Fatalf("max heap depth = %d, want 5", s.MaxHeapDepth)
	}
}

func TestSliceSamplingStride(t *testing.T) {
	p := New(4)
	for i := 0; i < 16; i++ {
		p.SliceStart(1)
		p.SliceEnd(1)
	}
	s := p.Snapshot()
	if s.Slices != 16 {
		t.Fatalf("slices = %d, want 16", s.Slices)
	}
	if s.SampledSlices != 4 {
		t.Fatalf("sampled = %d, want 4 (stride 4)", s.SampledSlices)
	}
	if s.SampledNs <= 0 || s.NsPerSlice <= 0 {
		t.Fatalf("sampled slices accumulated no time: %+v", s)
	}
}

func TestSubsystemAttribution(t *testing.T) {
	p := New(1) // sample everything
	p.SliceStart(1)
	p.Enter(SubsysMPI)
	p.Enter(SubsysFmtmsg)
	busy()
	p.Exit()
	p.Exit()
	p.SliceEnd(1)
	s := p.Snapshot()
	sh := s.SubsysShares()
	if sh["fmtmsg"] <= 0 {
		t.Fatalf("fmtmsg got no time: %v", sh)
	}
	var total float64
	for _, v := range sh {
		total += v
	}
	if total < 0.99 || total > 1.01 {
		t.Fatalf("shares sum to %v, want ~1: %v", total, sh)
	}
	for _, sub := range s.Subsystems {
		if sub.Name == "mpi" && sub.Calls != 1 {
			t.Fatalf("mpi calls = %d, want 1", sub.Calls)
		}
	}
}

// TestFrameSurvivesPark is the load-bearing property: a frame opened
// before a park tags only the owning proc's own slices. Another proc
// running while proc 1 is parked must not be charged to proc 1's frame.
func TestFrameSurvivesPark(t *testing.T) {
	p := New(1)

	// Proc 1 enters an MPI frame, then parks (slice ends, frame open).
	p.SliceStart(1)
	p.Enter(SubsysMPI)
	p.SliceEnd(1)

	// Proc 2 runs untagged code; it must land in "user", not "mpi".
	p.SliceStart(2)
	busy()
	p.SliceEnd(2)

	// Proc 1 resumes and closes the frame.
	p.SliceStart(1)
	busy()
	p.Exit()
	p.SliceEnd(1)

	sh := p.Snapshot().SubsysShares()
	if sh["user"] <= 0 {
		t.Fatalf("proc 2's time missing from user bucket: %v", sh)
	}
	if sh["mpi"] <= 0 {
		t.Fatalf("proc 1's resumed slice missing from mpi bucket: %v", sh)
	}
}

// TestSchedulerCallbackStackReset: scheduler-callback slices never span
// each other, so a frame leaked by a panicking callback must not leak
// into the next callback's attribution.
func TestSchedulerCallbackStackReset(t *testing.T) {
	p := New(1)
	p.SliceStart(-1)
	p.Enter(SubsysInterconnect) // never exited (unwound)
	p.SliceEnd(-1)
	p.SliceStart(-1)
	busy()
	p.SliceEnd(-1)
	sh := p.Snapshot().SubsysShares()
	if sh["kernel"] <= 0 {
		t.Fatalf("second callback's time not in kernel bucket: %v", sh)
	}
}

func TestExitOnEmptyStack(t *testing.T) {
	p := New(1)
	p.SliceStart(1)
	p.Exit() // unbalanced: must not panic
	p.SliceEnd(1)
}

func TestBurnAllocBytes(t *testing.T) {
	p := New(1)
	p.BurnAllocBytes = 1024
	allocs := testing.AllocsPerRun(10, func() { p.Event() })
	// 1024 bytes burned in 64-byte pieces: 16 allocations per event.
	if allocs < 16 {
		t.Fatalf("burn allocated %v times per event, want >= 16", allocs)
	}
	if len(p.burn) == 0 {
		t.Fatalf("burn allocation missing")
	}
}

func TestPublishTo(t *testing.T) {
	p := New(1)
	p.Event()
	p.HeapPush(1)
	p.SliceStart(1)
	p.Enter(SubsysCoPilot)
	busy()
	p.Exit()
	p.SliceEnd(1)
	reg := metrics.NewRegistry()
	p.Snapshot().PublishTo(reg)
	if v := reg.Gauge("host/events").Value(); v != 1 {
		t.Fatalf("host/events gauge = %v, want 1", v)
	}
	if v := reg.Gauge("host/subsys/copilot/share").Value(); v <= 0 {
		t.Fatalf("copilot share gauge = %v, want > 0", v)
	}
}

func TestSnapshotString(t *testing.T) {
	p := New(1)
	p.SliceStart(1)
	p.Enter(SubsysMPI)
	busy()
	p.Exit()
	p.SliceEnd(1)
	out := p.Snapshot().String()
	if !strings.Contains(out, "mpi") || !strings.Contains(out, "events") {
		t.Fatalf("report missing fields:\n%s", out)
	}
}

func TestSubsystemStrings(t *testing.T) {
	want := []string{"kernel", "user", "copilot", "mpi", "interconnect", "fmtmsg"}
	for i, w := range want {
		if got := Subsystem(i).String(); got != w {
			t.Fatalf("Subsystem(%d) = %q, want %q", i, got, w)
		}
	}
}

// busy spins long enough for time.Now deltas to be reliably nonzero.
var sink int

func busy() {
	for i := 0; i < 200000; i++ {
		sink += i
	}
}

func TestAbsorbMergesShardSnapshots(t *testing.T) {
	mk := func(events uint64, depth int, subsys Subsystem, ns int64) Snapshot {
		p := New(1)
		for i := uint64(0); i < events; i++ {
			p.HeapPush(depth)
			p.HeapPop()
			p.Event()
		}
		s := p.Snapshot()
		s.Subsystems = append(s.Subsystems, SubsysShare{Name: subsys.String(), Calls: 2, SampledNs: ns})
		return s
	}
	agg := New(1)
	agg.Absorb(mk(10, 3, SubsysMPI, 100))
	agg.Absorb(mk(7, 9, SubsysMPI, 50))
	agg.Absorb(mk(5, 2, SubsysCoPilot, 25))
	s := agg.Snapshot()
	if s.Events != 22 || s.HeapPushes != 22 || s.HeapPops != 22 {
		t.Fatalf("merged counters wrong: %+v", s)
	}
	if s.MaxHeapDepth != 9 {
		t.Fatalf("merged max depth = %d, want 9 (max, not sum)", s.MaxHeapDepth)
	}
	if s.Shards != 3 {
		t.Fatalf("Shards = %d, want 3", s.Shards)
	}
	shares := map[string]int64{}
	for _, sh := range s.Subsystems {
		shares[sh.Name] = sh.SampledNs
	}
	if shares["mpi"] != 150 || shares["copilot"] != 25 {
		t.Fatalf("subsystem merge wrong: %v", shares)
	}
	// Absorbing an already-merged snapshot carries its shard count through.
	agg2 := New(1)
	agg2.Absorb(s)
	if got := agg2.Snapshot().Shards; got != 3 {
		t.Fatalf("re-absorbed Shards = %d, want 3", got)
	}
	if !strings.Contains(s.String(), "merged from 3 shards") {
		t.Fatalf("String() missing shard note:\n%s", s)
	}
	reg := metrics.NewRegistry()
	s.PublishTo(reg)
	if v := reg.Gauge("host/shards").Value(); v != 3 {
		t.Fatalf("host/shards gauge = %v, want 3", v)
	}
}
