// Package hostprof measures what the simulator itself costs on the host:
// wall-clock time, not virtual time. It is the dual of internal/profile
// (which attributes the *virtual* timeline) — hostprof answers "how many
// events per second does the kernel dispatch, how many allocations does a
// transfer cost, and which subsystem burns the host CPU", the questions
// that gate the parallel-kernel work.
//
// Everything here rides strictly outside the virtual timeline: a Profiler
// never reads or advances the virtual clock, never touches the kernel RNG,
// and never changes any scheduling decision, so a run with one attached is
// bit-for-bit identical (virtual times, chaos fingerprints, trace spans)
// to a run without.
//
// Two instrumentation layers feed a Profiler:
//
//   - Kernel counters (sim.HostProbe): events dispatched, heap push/pop
//     counts, max heap depth, cancelled timers purged. Counting is always
//     on while attached; wall-clock timing of execution slices is sampled
//     every Stride-th slice so the hot event loop pays two time.Now calls
//     only occasionally (<2% overhead at the default stride).
//
//   - Subsystem frames (Enter/Exit): lightweight hooks at the existing
//     span-phase boundaries of the Co-Pilot service loop, the MPI stack,
//     the interconnect and fmtmsg pack/unpack. Frames are kept per proc,
//     so a frame opened before a park correctly tags only that proc's own
//     execution slices — wall time while the proc is parked is attributed
//     to whatever actually runs. Within a sampled slice attribution is
//     exclusive: a frame's time excludes its nested children.
//
// The Profiler is confined by the same execution protocol as the kernel:
// exactly one goroutine (scheduler or the single running proc) calls into
// it at a time, so it needs no locks and adds no synchronization to the
// simulation.
package hostprof

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"cellpilot/internal/metrics"
)

// Subsystem labels one host-time attribution bucket.
type Subsystem int

// Attribution buckets. SubsysKernel collects scheduler callbacks and any
// simulation code outside an instrumented frame running in scheduler
// context; SubsysUser collects proc code outside any instrumented frame
// (the workload bodies themselves).
const (
	SubsysKernel Subsystem = iota
	SubsysUser
	SubsysCoPilot
	SubsysMPI
	SubsysInterconnect
	SubsysFmtmsg
	NumSubsystems
)

// String implements fmt.Stringer.
func (s Subsystem) String() string {
	switch s {
	case SubsysKernel:
		return "kernel"
	case SubsysUser:
		return "user"
	case SubsysCoPilot:
		return "copilot"
	case SubsysMPI:
		return "mpi"
	case SubsysInterconnect:
		return "interconnect"
	case SubsysFmtmsg:
		return "fmtmsg"
	default:
		return fmt.Sprintf("subsys(%d)", int(s))
	}
}

// DefaultStride samples one execution slice in 64 — measured well under
// the 2% overhead budget on the hostbench suite.
const DefaultStride = 64

// subsysAcc accumulates one bucket.
type subsysAcc struct {
	calls uint64 // Enter calls, always counted
	ns    int64  // exclusive wall ns within sampled slices
}

// procTags is one proc's persistent frame stack. It survives parks: a
// frame opened before a park is still the proc's innermost tag when the
// scheduler resumes it later.
type procTags struct {
	stack []Subsystem
}

// Profiler implements sim.HostProbe and the subsystem Enter/Exit hooks.
// Attach to a kernel with Kernel.SetHostProbe and to an App via
// App.HostProf. All methods are safe on a nil receiver (no-ops), so call
// sites can hook unconditionally.
type Profiler struct {
	stride uint64

	// BurnAllocBytes, when > 0, allocates that many bytes on every
	// dispatched event — a deliberate host-cost injection used by the
	// regression-guard tests to prove the guard catches an allocs/event
	// slowdown. Zero in every production path.
	BurnAllocBytes int
	burn           []byte

	// Kernel counters, always on while attached.
	events   uint64
	pushes   uint64
	pops     uint64
	purged   uint64
	maxDepth int

	// Slice sampling.
	slices    uint64
	sampled   uint64
	sampledNs int64
	sampling  bool
	sliceT0   time.Time
	segT0     time.Time

	subsys [NumSubsystems]subsysAcc

	// absorbed counts per-shard snapshots merged in via Absorb; a plain
	// single-kernel run leaves it zero.
	absorbed int

	tags    map[int]*procTags
	scratch *procTags // scheduler-callback stack (proc -1); never spans a slice
	cur     *procTags
	curProc int
}

// New creates a profiler sampling every stride-th execution slice
// (stride <= 0 selects DefaultStride).
func New(stride int) *Profiler {
	if stride <= 0 {
		stride = DefaultStride
	}
	return &Profiler{
		stride:  uint64(stride),
		tags:    map[int]*procTags{},
		scratch: &procTags{},
		curProc: -1,
	}
}

// --- sim.HostProbe ---

// Event counts one dispatched kernel event.
func (p *Profiler) Event() {
	if p == nil {
		return
	}
	p.events++
	// Burn in 64-byte pieces so the injection moves allocs/event, not
	// just bytes/event — the guard must see it on both axes.
	for n := p.BurnAllocBytes; n > 0; n -= 64 {
		p.burn = make([]byte, 64)
	}
}

// HeapPush counts one event-heap push and tracks the depth watermark.
func (p *Profiler) HeapPush(depth int) {
	if p == nil {
		return
	}
	p.pushes++
	if depth > p.maxDepth {
		p.maxDepth = depth
	}
}

// HeapPop counts one event-heap pop.
func (p *Profiler) HeapPop() {
	if p == nil {
		return
	}
	p.pops++
}

// CancelPurge counts one cancelled timer discarded unexecuted.
func (p *Profiler) CancelPurge() {
	if p == nil {
		return
	}
	p.purged++
}

// SliceStart begins one host execution slice for proc (-1 = scheduler
// callback). Every stride-th slice is timed.
func (p *Profiler) SliceStart(proc int) {
	if p == nil {
		return
	}
	p.slices++
	p.curProc = proc
	if proc < 0 {
		p.scratch.stack = p.scratch.stack[:0] // callbacks never span slices
		p.cur = p.scratch
	} else {
		p.cur = p.tagsFor(proc)
	}
	if p.slices%p.stride == 0 {
		now := time.Now()
		p.sampling = true
		p.sliceT0 = now
		p.segT0 = now
	}
}

// SliceEnd closes the slice opened by the matching SliceStart.
func (p *Profiler) SliceEnd(proc int) {
	if p == nil {
		return
	}
	if p.sampling {
		now := time.Now()
		p.flushSeg(now)
		p.sampledNs += now.Sub(p.sliceT0).Nanoseconds()
		p.sampled++
		p.sampling = false
	}
	p.cur = nil
	p.curProc = -1
}

func (p *Profiler) tagsFor(proc int) *procTags {
	t, ok := p.tags[proc]
	if !ok {
		t = &procTags{}
		p.tags[proc] = t
	}
	return t
}

// topTag reports the bucket the current segment belongs to.
func (p *Profiler) topTag() Subsystem {
	if p.cur != nil && len(p.cur.stack) > 0 {
		return p.cur.stack[len(p.cur.stack)-1]
	}
	if p.curProc < 0 {
		return SubsysKernel
	}
	return SubsysUser
}

// flushSeg attributes the wall time since segT0 to the current tag.
func (p *Profiler) flushSeg(now time.Time) {
	p.subsys[p.topTag()].ns += now.Sub(p.segT0).Nanoseconds()
	p.segT0 = now
}

// --- subsystem frames ---

// Enter opens a subsystem frame on the current proc's stack. Frames must
// be closed with Exit in LIFO order (use defer); a frame may span parks —
// only the owning proc's own execution slices are charged to it. Safe on
// a nil receiver.
func (p *Profiler) Enter(s Subsystem) {
	if p == nil {
		return
	}
	if p.sampling {
		p.flushSeg(time.Now())
	}
	st := p.cur
	if st == nil {
		st = p.scratch // Enter outside any slice (e.g. before Run): inert tag
	}
	st.stack = append(st.stack, s)
	p.subsys[s].calls++
}

// Exit closes the innermost frame. Safe on a nil receiver and tolerant of
// an empty stack (a proc unwound by fault injection mid-frame).
func (p *Profiler) Exit() {
	if p == nil {
		return
	}
	if p.sampling {
		p.flushSeg(time.Now())
	}
	st := p.cur
	if st == nil {
		st = p.scratch
	}
	if n := len(st.stack); n > 0 {
		st.stack = st.stack[:n-1]
	}
}

// --- shard aggregation ---

// subsysByName inverts Subsystem.String for Absorb's name-keyed merge.
func subsysByName(name string) (Subsystem, bool) {
	for i := Subsystem(0); i < NumSubsystems; i++ {
		if i.String() == name {
			return i, true
		}
	}
	return 0, false
}

// Absorb merges another profiler's snapshot into this one — the
// aggregation path for sharded runs, where each logical process carries
// its own confined Profiler and the driver folds them into a fleet-wide
// view after Run. Counters and sampled time add; the heap-depth watermark
// takes the max (it is a per-kernel depth, so the merged value reads as
// "deepest queue any shard saw"). Subsystem buckets merge by name, so a
// snapshot from an older schema with fewer buckets still lands correctly.
// Safe on a nil receiver.
func (p *Profiler) Absorb(s Snapshot) {
	if p == nil {
		return
	}
	p.events += s.Events
	p.pushes += s.HeapPushes
	p.pops += s.HeapPops
	p.purged += s.CancelPurged
	if s.MaxHeapDepth > p.maxDepth {
		p.maxDepth = s.MaxHeapDepth
	}
	p.slices += s.Slices
	p.sampled += s.SampledSlices
	p.sampledNs += s.SampledNs
	for _, sh := range s.Subsystems {
		if i, ok := subsysByName(sh.Name); ok {
			p.subsys[i].calls += sh.Calls
			p.subsys[i].ns += sh.SampledNs
		}
	}
	if s.Shards > 0 {
		p.absorbed += s.Shards
	} else {
		p.absorbed++
	}
}

// --- reporting ---

// SubsysShare is one bucket's slice of the sampled host time.
type SubsysShare struct {
	Name string `json:"name"`
	// Calls counts Enter frames (0 for the implicit kernel/user buckets).
	Calls uint64 `json:"calls"`
	// SampledNs is exclusive wall time within sampled slices.
	SampledNs int64 `json:"sampled_ns"`
	// Share is SampledNs over the snapshot's total sampled time.
	Share float64 `json:"share"`
}

// Snapshot is a point-in-time copy of everything the profiler measured.
type Snapshot struct {
	// Events is the number of kernel events dispatched; HeapPushes,
	// HeapPops and CancelPurged count event-heap traffic; MaxHeapDepth is
	// the heap-size watermark.
	Events       uint64 `json:"events"`
	HeapPushes   uint64 `json:"heap_pushes"`
	HeapPops     uint64 `json:"heap_pops"`
	CancelPurged uint64 `json:"cancel_purged"`
	MaxHeapDepth int    `json:"max_heap_depth"`
	// Slices counts host execution slices; SampledSlices of them were
	// timed, accumulating SampledNs of wall time.
	Slices        uint64 `json:"slices"`
	SampledSlices uint64 `json:"sampled_slices"`
	SampledNs     int64  `json:"sampled_ns"`
	// NsPerSlice is the mean sampled wall cost of one execution slice —
	// the sampled estimate of host ns per kernel event.
	NsPerSlice float64 `json:"ns_per_slice"`
	// Shards counts the per-shard profilers merged into this snapshot via
	// Absorb; 0 means a plain single-kernel run.
	Shards int `json:"shards,omitempty"`
	// Subsystems is the per-bucket attribution, largest share first.
	Subsystems []SubsysShare `json:"subsystems"`
}

// Snapshot captures the current totals. Safe on a nil receiver (returns a
// zero snapshot).
func (p *Profiler) Snapshot() Snapshot {
	if p == nil {
		return Snapshot{}
	}
	s := Snapshot{
		Events: p.events, HeapPushes: p.pushes, HeapPops: p.pops,
		CancelPurged: p.purged, MaxHeapDepth: p.maxDepth,
		Slices: p.slices, SampledSlices: p.sampled, SampledNs: p.sampledNs,
		Shards: p.absorbed,
	}
	if p.sampled > 0 {
		s.NsPerSlice = float64(p.sampledNs) / float64(p.sampled)
	}
	for i := Subsystem(0); i < NumSubsystems; i++ {
		acc := p.subsys[i]
		if acc.calls == 0 && acc.ns == 0 {
			continue
		}
		sh := SubsysShare{Name: i.String(), Calls: acc.calls, SampledNs: acc.ns}
		if p.sampledNs > 0 {
			sh.Share = float64(acc.ns) / float64(p.sampledNs)
		}
		s.Subsystems = append(s.Subsystems, sh)
	}
	sort.Slice(s.Subsystems, func(i, j int) bool {
		if s.Subsystems[i].SampledNs != s.Subsystems[j].SampledNs {
			return s.Subsystems[i].SampledNs > s.Subsystems[j].SampledNs
		}
		return s.Subsystems[i].Name < s.Subsystems[j].Name
	})
	return s
}

// SubsysShares returns name -> share of sampled host time.
func (s Snapshot) SubsysShares() map[string]float64 {
	out := make(map[string]float64, len(s.Subsystems))
	for _, sh := range s.Subsystems {
		out[sh.Name] = sh.Share
	}
	return out
}

// PublishTo writes the snapshot into a metrics registry as host/* gauges,
// so host cost rides along in dumps, JSON snapshots and the live
// OpenMetrics endpoint next to the virtual-time metrics.
func (s Snapshot) PublishTo(reg *metrics.Registry) {
	reg.Gauge("host/events").Set(float64(s.Events))
	reg.Gauge("host/heap_pushes").Set(float64(s.HeapPushes))
	reg.Gauge("host/heap_pops").Set(float64(s.HeapPops))
	reg.Gauge("host/cancel_purged").Set(float64(s.CancelPurged))
	reg.Gauge("host/max_heap_depth").Set(float64(s.MaxHeapDepth))
	reg.Gauge("host/slices").Set(float64(s.Slices))
	reg.Gauge("host/ns_per_event_sampled").Set(s.NsPerSlice)
	if s.Shards > 0 {
		reg.Gauge("host/shards").Set(float64(s.Shards))
	}
	for _, sh := range s.Subsystems {
		reg.Gauge("host/subsys/" + sh.Name + "/share").Set(sh.Share)
	}
}

// String renders a compact report.
func (s Snapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "host: %d events, heap push/pop %d/%d (max depth %d, %d cancels purged)\n",
		s.Events, s.HeapPushes, s.HeapPops, s.MaxHeapDepth, s.CancelPurged)
	fmt.Fprintf(&b, "  sampled %d/%d slices, %.0fns/event\n", s.SampledSlices, s.Slices, s.NsPerSlice)
	if s.Shards > 0 {
		fmt.Fprintf(&b, "  merged from %d shards\n", s.Shards)
	}
	for _, sh := range s.Subsystems {
		fmt.Fprintf(&b, "  %-13s %6.1f%%  (%d frames)\n", sh.Name, 100*sh.Share, sh.Calls)
	}
	return b.String()
}
