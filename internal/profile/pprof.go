package profile

import (
	"compress/gzip"
	"io"
	"sort"
)

// WritePprof writes the attribution as a gzip-compressed pprof protobuf
// profile (the format `go tool pprof` and speedscope read). Each sample
// is a two-frame stack — process as the root frame, bucket as the leaf —
// valued in virtual nanoseconds. The encoding is hand-rolled against
// pprof's profile.proto so the repo stays standard-library only.
func (p *Profiler) WritePprof(w io.Writer) error {
	zw := gzip.NewWriter(w)
	if _, err := zw.Write(p.pprofBytes()); err != nil {
		zw.Close()
		return err
	}
	return zw.Close()
}

// pprofBytes builds the uncompressed profile.proto message.
func (p *Profiler) pprofBytes() []byte {
	st := newStringTable()
	var enc protoBuf

	// sample_type = 1: one value per sample, ("virtual", "nanoseconds").
	var vt protoBuf
	vt.int64Field(1, st.index("virtual"))
	vt.int64Field(2, st.index("nanoseconds"))
	enc.bytesField(1, vt.buf)

	// Function and location tables: one entry per distinct frame name
	// (process names and bucket names). Ids are 1-based.
	frameIDs := map[string]uint64{}
	var frames []string
	frameID := func(name string) uint64 {
		if id, ok := frameIDs[name]; ok {
			return id
		}
		id := uint64(len(frames) + 1)
		frameIDs[name] = id
		frames = append(frames, name)
		return id
	}

	// samples = 2: leaf-first stacks [bucket, proc].
	var durationNanos int64
	for _, name := range p.Procs() {
		start, end, _ := p.Lifetime(name)
		if d := int64(end - start); d > durationNanos {
			durationNanos = d
		}
		buckets := p.Buckets(name)
		keys := make([]string, 0, len(buckets))
		for b := range buckets {
			keys = append(keys, b)
		}
		sort.Strings(keys)
		procID := frameID(name)
		for _, b := range keys {
			d := buckets[b]
			if d <= 0 {
				continue
			}
			var sample protoBuf
			sample.uint64Field(1, frameID(b)) // leaf
			sample.uint64Field(1, procID)     // root
			sample.int64Field(2, int64(d))
			enc.bytesField(2, sample.buf)
		}
	}

	// mapping = 3: one synthetic mapping covering the virtual "binary".
	var mapping protoBuf
	mapping.uint64Field(1, 1)
	mapping.uint64Field(2, 0x1000)
	mapping.uint64Field(3, 0x2000)
	mapping.int64Field(5, st.index("cellpilot-virtual"))
	enc.bytesField(3, mapping.buf)

	// location = 4 and function = 5, one pair per frame.
	for i, name := range frames {
		id := uint64(i + 1)

		var line protoBuf
		line.uint64Field(1, id) // function_id
		line.int64Field(2, 1)   // line number

		var loc protoBuf
		loc.uint64Field(1, id) // location id
		loc.uint64Field(2, 1)  // mapping id
		loc.bytesField(4, line.buf)
		enc.bytesField(4, loc.buf)

		var fn protoBuf
		fn.uint64Field(1, id)
		fn.int64Field(2, st.index(name))
		fn.int64Field(3, st.index(name))
		fn.int64Field(4, st.index("virtual"))
		enc.bytesField(5, fn.buf)
	}

	// string_table = 6.
	for _, s := range st.strings {
		enc.stringField(6, s)
	}

	// duration_nanos = 10, period_type = 11, period = 12. time_nanos is
	// left zero: the run exists on a virtual timeline only.
	enc.int64Field(10, durationNanos)
	var pt protoBuf
	pt.int64Field(1, st.index("virtual"))
	pt.int64Field(2, st.index("nanoseconds"))
	enc.bytesField(11, pt.buf)
	enc.int64Field(12, 1)

	return enc.buf
}

// stringTable interns strings for profile.proto; index 0 is always "".
type stringTable struct {
	strings []string
	index_  map[string]int64
}

func newStringTable() *stringTable {
	return &stringTable{strings: []string{""}, index_: map[string]int64{"": 0}}
}

func (t *stringTable) index(s string) int64 {
	if i, ok := t.index_[s]; ok {
		return i
	}
	i := int64(len(t.strings))
	t.strings = append(t.strings, s)
	t.index_[s] = i
	return i
}

// protoBuf is a minimal protobuf wire-format writer: varints (wire type
// 0) and length-delimited fields (wire type 2) cover everything
// profile.proto needs.
type protoBuf struct {
	buf []byte
}

func (b *protoBuf) varint(v uint64) {
	for v >= 0x80 {
		b.buf = append(b.buf, byte(v)|0x80)
		v >>= 7
	}
	b.buf = append(b.buf, byte(v))
}

func (b *protoBuf) key(field, wire int) {
	b.varint(uint64(field)<<3 | uint64(wire))
}

func (b *protoBuf) int64Field(field int, v int64) {
	b.key(field, 0)
	b.varint(uint64(v))
}

func (b *protoBuf) uint64Field(field int, v uint64) {
	b.key(field, 0)
	b.varint(v)
}

func (b *protoBuf) bytesField(field int, data []byte) {
	b.key(field, 2)
	b.varint(uint64(len(data)))
	b.buf = append(b.buf, data...)
}

func (b *protoBuf) stringField(field int, s string) {
	b.key(field, 2)
	b.varint(uint64(len(s)))
	b.buf = append(b.buf, s...)
}
