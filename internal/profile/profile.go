// Package profile attributes virtual time. It folds every process's
// timeline into exclusive buckets — compute, pack, mailbox traffic and
// waits, Co-Pilot service, data moves, MPI legs, fault backoff — so a
// whole run answers "where did the virtual time go?" at a glance. The
// attribution is fed by the same phase events that drive the span
// recorder, costs no virtual time, and exports both folded-stack text
// (for flamegraph tools) and pprof-compatible profiles (for `go tool
// pprof` and speedscope).
package profile

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"cellpilot/internal/sim"
)

// Bucket names. Every nanosecond of a process's lifetime lands in exactly
// one bucket; BucketCompute is the remainder after the instrumented
// phases are subtracted.
const (
	BucketCompute        = "compute"
	BucketPack           = "pack"
	BucketMboxReq        = "mbox-req"
	BucketMboxWait       = "mbox-wait"
	BucketCoPilotService = "copilot-service"
	BucketCopy           = "copy"
	BucketRelay          = "relay"
	BucketMPISend        = "mpi-send"
	BucketMPIWait        = "mpi-wait"
	BucketFaultBackoff   = "fault-backoff"
	BucketChunkRelay     = "chunk-relay"
)

// procProfile is one process's attribution state.
type procProfile struct {
	start   sim.Time
	end     sim.Time
	ended   bool
	buckets map[string]sim.Time
}

// Profiler accumulates per-process virtual-time attribution. It is used
// from simulation context only (single-threaded by construction), with
// read-out after the run completes.
type Profiler struct {
	procs map[string]*procProfile
	order []string
}

// New creates an empty profiler.
func New() *Profiler {
	return &Profiler{procs: map[string]*procProfile{}}
}

func (p *Profiler) proc(name string) *procProfile {
	pp, ok := p.procs[name]
	if !ok {
		pp = &procProfile{buckets: map[string]sim.Time{}}
		p.procs[name] = pp
		p.order = append(p.order, name)
	}
	return pp
}

// ProcStart marks a process's lifetime beginning.
func (p *Profiler) ProcStart(name string, at sim.Time) {
	if p == nil {
		return
	}
	p.proc(name).start = at
}

// ProcEnd marks a process's lifetime end.
func (p *Profiler) ProcEnd(name string, at sim.Time) {
	if p == nil {
		return
	}
	pp := p.proc(name)
	pp.end = at
	pp.ended = true
}

// Attribute charges d of the process's time to the named bucket.
// Non-positive durations are ignored.
func (p *Profiler) Attribute(name, bucket string, d sim.Time) {
	if p == nil || d <= 0 {
		return
	}
	p.proc(name).buckets[bucket] += d
}

// Finish closes every process that never reported an end (service loops
// such as Co-Pilots) at the given time, normally the simulation's final
// virtual clock.
func (p *Profiler) Finish(at sim.Time) {
	if p == nil {
		return
	}
	for _, pp := range p.procs {
		if !pp.ended {
			pp.end = at
			pp.ended = true
		}
	}
}

// Procs returns the profiled process names, sorted.
func (p *Profiler) Procs() []string {
	if p == nil {
		return nil
	}
	out := append([]string(nil), p.order...)
	sort.Strings(out)
	return out
}

// Buckets returns one process's exclusive attribution, including the
// derived compute remainder. The map is a copy.
func (p *Profiler) Buckets(name string) map[string]sim.Time {
	if p == nil {
		return nil
	}
	pp, ok := p.procs[name]
	if !ok {
		return nil
	}
	out := make(map[string]sim.Time, len(pp.buckets)+1)
	var attributed sim.Time
	for b, d := range pp.buckets {
		out[b] = d
		attributed += d
	}
	if compute := pp.end - pp.start - attributed; compute > 0 {
		out[BucketCompute] = compute
	}
	return out
}

// Lifetime reports a process's [start, end] on the virtual timeline.
func (p *Profiler) Lifetime(name string) (start, end sim.Time, ok bool) {
	if p == nil {
		return 0, 0, false
	}
	pp, found := p.procs[name]
	if !found {
		return 0, 0, false
	}
	return pp.start, pp.end, true
}

// FoldedStacks writes the attribution in folded-stack form — one
// "proc;bucket <nanoseconds>" line per non-empty bucket, sorted — the
// input format of flamegraph.pl, inferno, and speedscope.
func (p *Profiler) FoldedStacks(w io.Writer) error {
	for _, name := range p.Procs() {
		buckets := p.Buckets(name)
		keys := make([]string, 0, len(buckets))
		for b := range buckets {
			keys = append(keys, b)
		}
		sort.Strings(keys)
		for _, b := range keys {
			if buckets[b] <= 0 {
				continue
			}
			if _, err := fmt.Fprintf(w, "%s;%s %d\n", name, b, int64(buckets[b])); err != nil {
				return err
			}
		}
	}
	return nil
}

// Report renders a human-readable per-process table: each bucket's share
// of the process lifetime, largest first.
func (p *Profiler) Report() string {
	var b strings.Builder
	for _, name := range p.Procs() {
		start, end, _ := p.Lifetime(name)
		life := end - start
		fmt.Fprintf(&b, "%s (lifetime %s)\n", name, life)
		buckets := p.Buckets(name)
		type row struct {
			bucket string
			d      sim.Time
		}
		rows := make([]row, 0, len(buckets))
		for bk, d := range buckets {
			if d > 0 {
				rows = append(rows, row{bk, d})
			}
		}
		sort.Slice(rows, func(i, j int) bool {
			if rows[i].d != rows[j].d {
				return rows[i].d > rows[j].d
			}
			return rows[i].bucket < rows[j].bucket
		})
		for _, r := range rows {
			pct := 0.0
			if life > 0 {
				pct = 100 * float64(r.d) / float64(life)
			}
			fmt.Fprintf(&b, "  %-16s %12s  %5.1f%%\n", r.bucket, r.d, pct)
		}
	}
	return b.String()
}
