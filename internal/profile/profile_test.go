package profile

import (
	"bytes"
	"compress/gzip"
	"io"
	"strings"
	"testing"

	"cellpilot/internal/sim"
)

func TestAttributionAndComputeRemainder(t *testing.T) {
	p := New()
	p.ProcStart("worker", 100)
	p.Attribute("worker", BucketPack, 30)
	p.Attribute("worker", BucketMPISend, 50)
	p.Attribute("worker", BucketPack, 10) // accumulates
	p.Attribute("worker", BucketCopy, 0)  // ignored
	p.Attribute("worker", BucketCopy, -5) // ignored
	p.ProcEnd("worker", 300)

	b := p.Buckets("worker")
	if b[BucketPack] != 40 || b[BucketMPISend] != 50 {
		t.Fatalf("buckets = %v", b)
	}
	// compute = 200 lifetime - 90 attributed
	if b[BucketCompute] != 110 {
		t.Fatalf("compute = %v, want 110", b[BucketCompute])
	}
	if _, ok := b[BucketCopy]; ok {
		t.Fatal("zero-duration bucket materialized")
	}
	start, end, ok := p.Lifetime("worker")
	if !ok || start != 100 || end != 300 {
		t.Fatalf("Lifetime = %v..%v ok=%v", start, end, ok)
	}
}

func TestOverAttributedClampsCompute(t *testing.T) {
	p := New()
	p.ProcStart("w", 0)
	p.Attribute("w", BucketRelay, 500)
	p.ProcEnd("w", 100) // attributed exceeds lifetime (overlapping phases)
	b := p.Buckets("w")
	if _, ok := b[BucketCompute]; ok {
		t.Fatalf("negative compute surfaced: %v", b)
	}
}

func TestFinishClosesOpenProcs(t *testing.T) {
	p := New()
	p.ProcStart("loop", 10)
	p.Attribute("loop", BucketCoPilotService, 40)
	p.Finish(110)
	if b := p.Buckets("loop"); b[BucketCompute] != 60 {
		t.Fatalf("buckets after Finish = %v", b)
	}
	// Finish must not reopen or move already-ended procs.
	p2 := New()
	p2.ProcStart("done", 0)
	p2.ProcEnd("done", 50)
	p2.Finish(1000)
	if _, end, _ := p2.Lifetime("done"); end != 50 {
		t.Fatalf("Finish moved an ended proc to %v", end)
	}
}

func TestFoldedStacksFormat(t *testing.T) {
	p := New()
	p.ProcStart("b-proc", 0)
	p.Attribute("b-proc", BucketMboxWait, 70)
	p.ProcEnd("b-proc", 100)
	p.ProcStart("a-proc", 0)
	p.Attribute("a-proc", BucketPack, 25)
	p.ProcEnd("a-proc", 25) // fully attributed: no compute line
	var buf bytes.Buffer
	if err := p.FoldedStacks(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a-proc;pack 25\nb-proc;compute 30\nb-proc;mbox-wait 70\n"
	if buf.String() != want {
		t.Fatalf("folded stacks:\n%q\nwant:\n%q", buf.String(), want)
	}
}

func TestReportSortsByDuration(t *testing.T) {
	p := New()
	p.ProcStart("w", 0)
	p.Attribute("w", BucketPack, 10)
	p.Attribute("w", BucketMPIWait, 80)
	p.ProcEnd("w", 100)
	rep := p.Report()
	if !strings.Contains(rep, "w (lifetime 100ns)") {
		t.Fatalf("report header missing:\n%s", rep)
	}
	if strings.Index(rep, "mpi-wait") > strings.Index(rep, "pack") {
		t.Fatalf("buckets not sorted by duration:\n%s", rep)
	}
	if !strings.Contains(rep, "80.0%") {
		t.Fatalf("percentage missing:\n%s", rep)
	}
}

func TestNilProfilerSafe(t *testing.T) {
	var p *Profiler
	p.ProcStart("x", 0)
	p.ProcEnd("x", 1)
	p.Attribute("x", BucketPack, 1)
	p.Finish(2)
	if p.Procs() != nil || p.Buckets("x") != nil {
		t.Fatal("nil profiler is not inert")
	}
	if _, _, ok := p.Lifetime("x"); ok {
		t.Fatal("nil profiler reported a lifetime")
	}
}

// The pprof export must be a gzipped protobuf whose string table carries
// the process and bucket names; `go tool pprof` parses it (verified
// manually), here we check the container and the embedded strings.
func TestWritePprof(t *testing.T) {
	p := New()
	p.ProcStart("worker#0", 0)
	p.Attribute("worker#0", BucketMboxWait, 700*sim.Microsecond)
	p.Attribute("worker#0", BucketPack, 100*sim.Microsecond)
	p.ProcEnd("worker#0", sim.Millisecond)
	var buf bytes.Buffer
	if err := p.WritePprof(&buf); err != nil {
		t.Fatal(err)
	}
	zr, err := gzip.NewReader(&buf)
	if err != nil {
		t.Fatalf("pprof output is not gzip: %v", err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) == 0 {
		t.Fatal("empty profile")
	}
	for _, want := range []string{"worker#0", "mbox-wait", "pack", "compute", "virtual", "nanoseconds", "cellpilot-virtual"} {
		if !bytes.Contains(raw, []byte(want)) {
			t.Errorf("profile string table lacks %q", want)
		}
	}
}

func TestWritePprofEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := New().WritePprof(&buf); err != nil {
		t.Fatalf("empty profiler WritePprof: %v", err)
	}
	if buf.Len() == 0 {
		t.Fatal("no gzip container written")
	}
}
