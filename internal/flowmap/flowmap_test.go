package flowmap

import (
	"strings"
	"testing"

	"cellpilot/internal/sim"
)

func key(src, dst string, typ int, route string) Key {
	return Key{Src: src, Dst: dst, Type: typ, Route: route}
}

// A nil map must be a complete no-op: every hook and every reader is
// called on the detached (nil) sink by the runtime.
func TestNilReceiverSafety(t *testing.T) {
	var m *Map
	m.SetNodes(4)
	m.Deliver(key("a", "b", 1, RoutePPEtoPPE), 100, 5)
	m.HopBytes("nic0", key("a", "b", 1, RoutePPEtoPPE), 100)
	m.HopBusy("nic0", key("a", "b", 1, RoutePPEtoPPE), 7)
	m.Node(0, 1, 100)
	m.Wire("nic0", 128)
	if m.Flows() != 0 {
		t.Fatal("nil map reports flows")
	}
	if msgs, bytes := m.Totals(); msgs != 0 || bytes != 0 {
		t.Fatal("nil map reports totals")
	}
	if m.Overflowed() {
		t.Fatal("nil map overflowed")
	}
	if m.RouteNames() != nil || m.RouteBytes(RoutePPEtoPPE) != 0 {
		t.Fatal("nil map reports routes")
	}
	if m.Report(0) != nil {
		t.Fatal("nil map produced a report")
	}
	if m.Fingerprint() != "" || m.FingerprintLines() != "" {
		t.Fatal("nil map produced a fingerprint")
	}
}

func TestRouteVocabulary(t *testing.T) {
	rs := Routes()
	if len(rs) != 7 {
		t.Fatalf("want 7 canonical routes, got %d", len(rs))
	}
	for _, r := range rs {
		if !ValidRoute(r) {
			t.Errorf("canonical route %q not valid", r)
		}
	}
	if ValidRoute("spe->teleport->spe") {
		t.Fatal("bogus route validated")
	}
}

func TestDeliverAggregation(t *testing.T) {
	m := New(0)
	k1 := key("main", "worker", 1, RoutePPEtoPPE)
	k2 := key("main", "s#0", 2, RoutePPEtoSPE)
	m.Deliver(k1, 100, 10)
	m.Deliver(k1, 100, 30)
	m.Deliver(k2, 50, 5)
	if m.Flows() != 2 {
		t.Fatalf("want 2 flows, got %d", m.Flows())
	}
	if msgs, bytes := m.Totals(); msgs != 3 || bytes != 250 {
		t.Fatalf("totals = (%d, %d), want (3, 250)", msgs, bytes)
	}
	if got := m.RouteBytes(RoutePPEtoPPE); got != 200 {
		t.Fatalf("route bytes = %d, want 200", got)
	}
	rep := m.Report(0)
	if len(rep.TopK) != 2 || rep.TopK[0].Bytes != 200 {
		t.Fatalf("top-K misordered: %+v", rep.TopK)
	}
	if rep.TopK[0].LatMean != 20 || rep.TopK[0].LatMax != 30 {
		t.Fatalf("latency aggregation wrong: mean=%d max=%d", rep.TopK[0].LatMean, rep.TopK[0].LatMax)
	}
	// Route names come back sorted regardless of observation order.
	names := m.RouteNames()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("route names unsorted: %v", names)
		}
	}
}

// The flow table is bounded; flows past the bound fold into one overflow
// bucket and the whole-run totals stay exact.
func TestOverflowBucketExactTotals(t *testing.T) {
	m := New(2)
	routes := Routes()
	for i := 0; i < 5; i++ {
		src := string(rune('a' + i))
		m.Deliver(key(src, "dst", 1, routes[i%len(routes)]), 10, 1)
	}
	if m.Flows() != 2 {
		t.Fatalf("table holds %d flows, want the bound 2", m.Flows())
	}
	if !m.Overflowed() {
		t.Fatal("overflow not flagged")
	}
	if msgs, bytes := m.Totals(); msgs != 5 || bytes != 50 {
		t.Fatalf("totals = (%d, %d), want exact (5, 50)", msgs, bytes)
	}
	rep := m.Report(0)
	if rep.Overflow == nil || rep.Overflow.Msgs != 3 || rep.Overflow.Bytes != 30 {
		t.Fatalf("overflow bucket = %+v, want 3 msgs / 30 bytes", rep.Overflow)
	}
	// Hop attribution for spilled flows folds into the overflow key too.
	m.HopBytes("nic0", key("zzz", "dst", 1, routes[0]), 10)
	if got := rep.FlowCount + len(rep.TopK); got != 4 {
		t.Fatalf("table flows leaked past the bound: %d", got)
	}
}

// Two maps fed the same facts in different orders fingerprint identically;
// a single extra byte diverges them.
func TestFingerprintStability(t *testing.T) {
	feed := func(m *Map, reversed bool) {
		ks := []Key{
			key("a", "b", 1, RoutePPEtoPPE),
			key("c", "d", 5, RouteSPEtoRemSPE),
			key("e", "f", 4, RouteSPEtoSPE),
		}
		if reversed {
			for i, j := 0, len(ks)-1; i < j; i, j = i+1, j-1 {
				ks[i], ks[j] = ks[j], ks[i]
			}
		}
		for _, k := range ks {
			m.Deliver(k, 100, 10)
			m.HopBytes("copilot@cell0", k, 100)
			m.HopBusy("copilot@cell0", k, 3)
		}
		m.Node(0, 1, 100)
		m.Wire("nic0", 128)
	}
	a, b := New(0), New(0)
	feed(a, false)
	feed(b, true)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("observation order changed the fingerprint:\n%s\nvs\n%s", a.Fingerprint(), b.Fingerprint())
	}
	if a.FingerprintLines() != b.FingerprintLines() {
		t.Fatal("observation order changed the fingerprint lines")
	}
	b.Deliver(key("a", "b", 1, RoutePPEtoPPE), 1, 0)
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("an extra delivery left the fingerprint unchanged")
	}
}

// The traffic matrix grows on demand and growth preserves recorded cells.
func TestMatrixGrowth(t *testing.T) {
	m := New(0)
	m.Node(0, 1, 100)
	m.Node(1, 1, 50) // diagonal: local delivery
	m.Node(3, 0, 25) // forces growth to 4 nodes
	rep := m.Report(0)
	if rep.Nodes != 4 {
		t.Fatalf("matrix is %d nodes, want 4", rep.Nodes)
	}
	if rep.MatrixBytes[0][1] != 100 || rep.MatrixBytes[1][1] != 50 || rep.MatrixBytes[3][0] != 25 {
		t.Fatalf("growth lost cells: %+v", rep.MatrixBytes)
	}
	if rep.MatrixMsgs[0][1] != 1 {
		t.Fatalf("message count wrong: %+v", rep.MatrixMsgs)
	}
}

// Wire counts are per-NIC truth independent of flow attribution.
func TestWireVersusAttributed(t *testing.T) {
	m := New(0)
	k := key("a", "b", 1, RoutePPEtoPPE)
	m.Deliver(k, 100, 1)
	m.HopBytes("nic0", k, 100)
	m.Wire("nic0", 128) // payload frame with headers
	m.Wire("nic0", 28)  // retransmit/control frame the flow never sees
	rep := m.Report(0)
	if len(rep.Resources) != 1 {
		t.Fatalf("want 1 resource, got %d", len(rep.Resources))
	}
	r := rep.Resources[0]
	if r.Bytes != 100 || r.WireFrames != 2 || r.WireBytes != 156 {
		t.Fatalf("resource = %+v, want attributed 100 B and wire 2 frames / 156 B", r)
	}
	if len(r.Top) != 1 || r.Top[0].Route != RoutePPEtoPPE {
		t.Fatalf("top contributor wrong: %+v", r.Top)
	}
}

// Report rendering is deterministic and contains each section.
func TestReportRendering(t *testing.T) {
	m := New(0)
	k := key("main", "s5e", 5, RouteSPEtoRemSPE)
	m.Deliver(k, 256, 100*sim.Microsecond)
	m.HopBytes("copilot@cell0", k, 256)
	m.HopBusy("copilot@cell0", k, 10*sim.Microsecond)
	m.Node(0, 1, 256)
	m.Wire("nic0", 300)
	s1 := m.Report(0).String()
	s2 := m.Report(0).String()
	if s1 != s2 {
		t.Fatal("rendering is not deterministic")
	}
	for _, want := range []string{
		"traffic matrix", "top flows", "routes:", "resource breakdown",
		RouteSPEtoRemSPE, "copilot@cell0", "flow fingerprint:",
	} {
		if !strings.Contains(s1, want) {
			t.Errorf("rendering missing %q:\n%s", want, s1)
		}
	}
}
