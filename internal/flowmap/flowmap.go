// Package flowmap is the cluster flow observatory: an always-on flow
// accounting sink that classifies every delivered channel message into a
// flow — (source process, destination process, channel type, route) —
// and aggregates per-flow messages, bytes and latency plus per-hop byte
// and occupancy attribution. The result is (a) a node×node traffic
// matrix fed by the MPI delivery hook, (b) a per-link / per-Co-Pilot
// breakdown naming the top contributing flows of every shared resource,
// and (c) a deterministic top-K heavy-hitter table.
//
// Counting is exact, never sampled: the flow table is bounded
// (DefaultMaxFlows) with an overflow bucket that keeps totals exact when
// a workload exceeds the bound, and there are no randomized sketches, so
// fingerprints are bit-stable across runs and across shard counts (the
// map is per-App state updated in per-App event order, which the sharded
// driver reproduces exactly).
//
// Like every other observability sink in this repo the map only ever
// observes — it never advances virtual time — so attaching one keeps the
// virtual timeline bit-for-bit identical to a bare run.
package flowmap

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"

	"cellpilot/internal/sim"
)

// Canonical route strings — the ordered hop taxonomy of the paper's five
// channel types. Types 2 and 3 are asymmetric (the SPE side differs from
// the PPE side), so five channel types yield seven routes.
const (
	RoutePPEtoPPE    = "ppe->mpi->ppe"                   // type 1
	RoutePPEtoSPE    = "ppe->copilot->spe"               // type 2, PPE writes
	RouteSPEtoPPE    = "spe->copilot->ppe"               // type 2, SPE writes
	RoutePPEtoRemSPE = "ppe->mpi->copilot->spe"          // type 3, PPE writes
	RouteRemSPEtoPPE = "spe->copilot->mpi->ppe"          // type 3, SPE writes
	RouteSPEtoSPE    = "spe->copilot->spe"               // type 4
	RouteSPEtoRemSPE = "spe->copilot->mpi->copilot->spe" // type 5
)

// Routes lists every canonical route string, in channel-type order. The
// scenario DSL validates `flow` assertions against this vocabulary.
func Routes() []string {
	return []string{
		RoutePPEtoPPE,
		RoutePPEtoSPE, RouteSPEtoPPE,
		RoutePPEtoRemSPE, RouteRemSPEtoPPE,
		RouteSPEtoSPE,
		RouteSPEtoRemSPE,
	}
}

// ValidRoute reports whether s is one of the canonical route strings.
func ValidRoute(s string) bool {
	for _, r := range Routes() {
		if r == s {
			return true
		}
	}
	return false
}

// DefaultMaxFlows bounds the exact flow table. Every workload in this
// repo is far below it; a synthetic run with more distinct flows keeps
// exact totals through the overflow bucket.
const DefaultMaxFlows = 512

// overflowKey labels the overflow bucket in tables and contributions.
const overflowKey = "(overflow)"

// Key identifies one flow.
type Key struct {
	// Src and Dst are the endpoint process names (Process.String()).
	Src, Dst string
	// Type is the Table I channel type (1..5).
	Type int
	// Route is the canonical hop list (one of Routes()).
	Route string
}

func (k Key) String() string {
	return fmt.Sprintf("%s->%s type%d via %s", k.Src, k.Dst, k.Type, k.Route)
}

// flow is one exact per-flow accumulator.
type flow struct {
	key    Key
	msgs   int64
	bytes  int64
	latSum sim.Time
	latMax sim.Time
}

// contrib is one flow's contribution to a shared resource.
type contrib struct {
	key   Key
	bytes int64
	busy  sim.Time
}

// resource is one shared hop (a Co-Pilot service loop or a NIC) with its
// flow-attributed load and, for NICs, the wire-level truth from the
// interconnect hook (which counts retransmits and control frames too).
type resource struct {
	name       string
	bytes      int64
	busy       sim.Time
	wireFrames int64
	wireBytes  int64
	contribs   []*contrib
	cIdx       map[Key]*contrib
}

func (r *resource) add(k Key, bytes int64, busy sim.Time) {
	c := r.cIdx[k]
	if c == nil {
		c = &contrib{key: k}
		r.cIdx[k] = c
		r.contribs = append(r.contribs, c)
	}
	c.bytes += bytes
	c.busy += busy
	r.bytes += bytes
	r.busy += busy
}

// routeAgg is one route's aggregate across flows.
type routeAgg struct {
	route string
	msgs  int64
	bytes int64
}

// Map is the flow accounting sink. The zero value is not usable; use New.
// All methods are nil-receiver safe so a detached sink costs one pointer
// test per hook, and single-goroutine, matching the kernel's event loop.
type Map struct {
	max      int
	flows    []*flow
	index    map[Key]*flow
	over     flow // overflow bucket: exact totals past the table bound
	nodes    int
	matMsgs  []int64 // node×node, row-major [src*nodes+dst]
	matBytes []int64
	res      []*resource
	resIdx   map[string]*resource
	routes   []*routeAgg // sorted by route name
	routeIdx map[string]*routeAgg

	totalMsgs  int64
	totalBytes int64
}

// New builds a flow map; maxFlows <= 0 selects DefaultMaxFlows.
func New(maxFlows int) *Map {
	if maxFlows <= 0 {
		maxFlows = DefaultMaxFlows
	}
	return &Map{
		max:      maxFlows,
		index:    map[Key]*flow{},
		resIdx:   map[string]*resource{},
		routeIdx: map[string]*routeAgg{},
		over:     flow{key: Key{Src: overflowKey, Dst: overflowKey, Route: overflowKey}},
	}
}

// SetNodes sizes the node×node traffic matrix. The runtime calls it when
// the sink is attached; growing later preserves recorded cells.
func (m *Map) SetNodes(n int) {
	if m == nil || n <= m.nodes {
		return
	}
	msgs := make([]int64, n*n)
	bytes := make([]int64, n*n)
	for s := 0; s < m.nodes; s++ {
		copy(msgs[s*n:s*n+m.nodes], m.matMsgs[s*m.nodes:(s+1)*m.nodes])
		copy(bytes[s*n:s*n+m.nodes], m.matBytes[s*m.nodes:(s+1)*m.nodes])
	}
	m.nodes, m.matMsgs, m.matBytes = n, msgs, bytes
}

// Deliver classifies one delivered message into its flow: per-flow
// message/byte/latency accounting plus the per-route aggregates the
// timeline samples. Latency is the reader-observed delivery time.
func (m *Map) Deliver(k Key, bytes int, lat sim.Time) {
	if m == nil {
		return
	}
	f := m.index[k]
	if f == nil {
		if len(m.flows) >= m.max {
			f = &m.over
		} else {
			f = &flow{key: k}
			m.index[k] = f
			m.flows = append(m.flows, f)
		}
	}
	f.msgs++
	f.bytes += int64(bytes)
	f.latSum += lat
	if lat > f.latMax {
		f.latMax = lat
	}
	m.totalMsgs++
	m.totalBytes += int64(bytes)

	ra := m.routeIdx[k.Route]
	if ra == nil {
		ra = &routeAgg{route: k.Route}
		m.routeIdx[k.Route] = ra
		at := sort.Search(len(m.routes), func(i int) bool { return m.routes[i].route >= k.Route })
		m.routes = append(m.routes, nil)
		copy(m.routes[at+1:], m.routes[at:])
		m.routes[at] = ra
	}
	ra.msgs++
	ra.bytes += int64(bytes)
}

// resourceFor returns (creating on first use) a named shared resource.
func (m *Map) resourceFor(name string) *resource {
	r := m.resIdx[name]
	if r == nil {
		r = &resource{name: name, cIdx: map[Key]*contrib{}}
		m.resIdx[name] = r
		m.res = append(m.res, r)
	}
	return r
}

// hopKey folds overflowed flows into the overflow contribution so the
// per-resource breakdown stays bounded alongside the flow table.
func (m *Map) hopKey(k Key) Key {
	if m.index[k] == nil && len(m.flows) >= m.max {
		return m.over.key
	}
	return k
}

// HopBytes attributes payload bytes crossing a hop to the flow's entry in
// that resource's breakdown.
func (m *Map) HopBytes(name string, k Key, bytes int) {
	if m == nil {
		return
	}
	m.resourceFor(name).add(m.hopKey(k), int64(bytes), 0)
}

// HopBusy attributes occupancy (service time a hop spent working this
// flow) to the flow's entry in that resource's breakdown. Co-Pilot hops
// report measured relay/copy span durations; NIC hops report the modeled
// serialization time of each delivered payload.
func (m *Map) HopBusy(name string, k Key, busy sim.Time) {
	if m == nil || busy <= 0 {
		return
	}
	m.resourceFor(name).add(m.hopKey(k), 0, busy)
}

// Node records one MPI envelope delivery into the node×node traffic
// matrix (the internal/mpi hook). Local deliveries fill the diagonal.
func (m *Map) Node(src, dst, bytes int) {
	if m == nil || src < 0 || dst < 0 {
		return
	}
	if src >= m.nodes || dst >= m.nodes {
		n := src + 1
		if dst+1 > n {
			n = dst + 1
		}
		m.SetNodes(n)
	}
	m.matMsgs[src*m.nodes+dst]++
	m.matBytes[src*m.nodes+dst] += int64(bytes)
}

// Wire records one frame put on a named link by the interconnect (the
// internal/interconnect hook) — wire-level truth per NIC, counting
// retransmitted and control frames the payload attribution never sees.
func (m *Map) Wire(link string, bytes int) {
	if m == nil {
		return
	}
	r := m.resourceFor(link)
	r.wireFrames++
	r.wireBytes += int64(bytes)
}

// Flows returns the number of distinct flows in the exact table (the
// overflow bucket excluded).
func (m *Map) Flows() int {
	if m == nil {
		return 0
	}
	return len(m.flows)
}

// Totals returns whole-run message and byte counts across every flow,
// overflow included.
func (m *Map) Totals() (msgs, bytes int64) {
	if m == nil {
		return 0, 0
	}
	return m.totalMsgs, m.totalBytes
}

// Overflowed reports whether the bounded table spilled any flow.
func (m *Map) Overflowed() bool { return m != nil && m.over.msgs > 0 }

// RouteNames returns the routes observed so far, sorted — the
// deterministic iteration order for the timeline's per-route series.
func (m *Map) RouteNames() []string {
	if m == nil {
		return nil
	}
	out := make([]string, len(m.routes))
	for i, ra := range m.routes {
		out[i] = ra.route
	}
	return out
}

// RouteBytes returns the cumulative bytes delivered over one route.
func (m *Map) RouteBytes(route string) int64 {
	if m == nil {
		return 0
	}
	if ra := m.routeIdx[route]; ra != nil {
		return ra.bytes
	}
	return 0
}

// sortedFlows returns every table flow ordered for the heavy-hitter
// table: bytes desc, then msgs desc, then key asc — a total order, so the
// rendering is byte-stable.
func (m *Map) sortedFlows() []*flow {
	out := append([]*flow(nil), m.flows...)
	sort.Slice(out, func(i, j int) bool { return flowLess(out[i], out[j]) })
	return out
}

func flowLess(a, b *flow) bool {
	if a.bytes != b.bytes {
		return a.bytes > b.bytes
	}
	if a.msgs != b.msgs {
		return a.msgs > b.msgs
	}
	return keyLess(a.key, b.key)
}

func keyLess(a, b Key) bool {
	if a.Src != b.Src {
		return a.Src < b.Src
	}
	if a.Dst != b.Dst {
		return a.Dst < b.Dst
	}
	if a.Type != b.Type {
		return a.Type < b.Type
	}
	return a.Route < b.Route
}

// FlowStat is one flow's exported aggregate.
type FlowStat struct {
	Src     string   `json:"src"`
	Dst     string   `json:"dst"`
	Type    int      `json:"type"`
	Route   string   `json:"route"`
	Msgs    int64    `json:"msgs"`
	Bytes   int64    `json:"bytes"`
	LatMean sim.Time `json:"lat_mean_ns"`
	LatMax  sim.Time `json:"lat_max_ns"`
}

func statOf(f *flow) FlowStat {
	st := FlowStat{
		Src: f.key.Src, Dst: f.key.Dst, Type: f.key.Type, Route: f.key.Route,
		Msgs: f.msgs, Bytes: f.bytes, LatMax: f.latMax,
	}
	if f.msgs > 0 {
		st.LatMean = f.latSum / sim.Time(f.msgs)
	}
	return st
}

// Contributor is one flow's share of a shared resource.
type Contributor struct {
	Src   string   `json:"src"`
	Dst   string   `json:"dst"`
	Type  int      `json:"type"`
	Route string   `json:"route"`
	Bytes int64    `json:"bytes"`
	Busy  sim.Time `json:"busy_ns"`
}

// ResourceStat is one shared hop's breakdown: flow-attributed payload
// bytes and occupancy, wire-level truth (NICs only), and the top
// contributing flows by attributed bytes.
type ResourceStat struct {
	Name       string        `json:"name"`
	Bytes      int64         `json:"bytes"`
	Busy       sim.Time      `json:"busy_ns"`
	WireFrames int64         `json:"wire_frames,omitempty"`
	WireBytes  int64         `json:"wire_bytes,omitempty"`
	Top        []Contributor `json:"top"`
}

// RouteStat is one route's aggregate.
type RouteStat struct {
	Route string `json:"route"`
	Msgs  int64  `json:"msgs"`
	Bytes int64  `json:"bytes"`
}

// Report is the exported flow observatory: the traffic matrix, the
// heavy-hitter table, per-route aggregates and per-resource breakdowns.
// Field order is the JSON order, so marshalling is deterministic.
type Report struct {
	Nodes       int            `json:"nodes"`
	MatrixMsgs  [][]int64      `json:"matrix_msgs"`
	MatrixBytes [][]int64      `json:"matrix_bytes"`
	TotalMsgs   int64          `json:"total_msgs"`
	TotalBytes  int64          `json:"total_bytes"`
	FlowCount   int            `json:"flow_count"`
	TopK        []FlowStat     `json:"top_k"`
	Overflow    *FlowStat      `json:"overflow,omitempty"`
	Routes      []RouteStat    `json:"routes"`
	Resources   []ResourceStat `json:"resources"`
	Fingerprint string         `json:"fingerprint"`
}

// DefaultTopK is the heavy-hitter table length Report uses for k <= 0.
const DefaultTopK = 10

// Report derives the exported view. k bounds the heavy-hitter table and
// each resource's contributor list (k <= 0 selects DefaultTopK).
func (m *Map) Report(k int) *Report {
	if m == nil {
		return nil
	}
	if k <= 0 {
		k = DefaultTopK
	}
	rep := &Report{
		Nodes: m.nodes, TotalMsgs: m.totalMsgs, TotalBytes: m.totalBytes,
		FlowCount: len(m.flows), Fingerprint: m.Fingerprint(),
	}
	rep.MatrixMsgs = make([][]int64, m.nodes)
	rep.MatrixBytes = make([][]int64, m.nodes)
	for s := 0; s < m.nodes; s++ {
		rep.MatrixMsgs[s] = append([]int64(nil), m.matMsgs[s*m.nodes:(s+1)*m.nodes]...)
		rep.MatrixBytes[s] = append([]int64(nil), m.matBytes[s*m.nodes:(s+1)*m.nodes]...)
	}
	for i, f := range m.sortedFlows() {
		if i >= k {
			break
		}
		rep.TopK = append(rep.TopK, statOf(f))
	}
	if m.over.msgs > 0 {
		st := statOf(&m.over)
		rep.Overflow = &st
	}
	for _, ra := range m.routes {
		rep.Routes = append(rep.Routes, RouteStat{Route: ra.route, Msgs: ra.msgs, Bytes: ra.bytes})
	}
	names := make([]string, 0, len(m.res))
	for _, r := range m.res {
		names = append(names, r.name)
	}
	sort.Strings(names)
	for _, name := range names {
		r := m.resIdx[name]
		rs := ResourceStat{
			Name: r.name, Bytes: r.bytes, Busy: r.busy,
			WireFrames: r.wireFrames, WireBytes: r.wireBytes,
		}
		cs := append([]*contrib(nil), r.contribs...)
		sort.Slice(cs, func(i, j int) bool {
			if cs[i].bytes != cs[j].bytes {
				return cs[i].bytes > cs[j].bytes
			}
			if cs[i].busy != cs[j].busy {
				return cs[i].busy > cs[j].busy
			}
			return keyLess(cs[i].key, cs[j].key)
		})
		for i, c := range cs {
			if i >= k {
				break
			}
			rs.Top = append(rs.Top, Contributor{
				Src: c.key.Src, Dst: c.key.Dst, Type: c.key.Type, Route: c.key.Route,
				Bytes: c.bytes, Busy: c.busy,
			})
		}
		rep.Resources = append(rep.Resources, rs)
	}
	return rep
}

// MarshalJSON exports the derived Report (with the default top-K).
func (m *Map) MarshalJSON() ([]byte, error) { return json.Marshal(m.Report(0)) }

// canonical renders every recorded fact in a fixed order — the byte
// string the fingerprint binds. Full precision, no truncation: two maps
// fingerprint equal only when every flow, cell, route and contribution
// matches exactly.
func (m *Map) canonical() string {
	var b strings.Builder
	fmt.Fprintf(&b, "flowmap flows=%d msgs=%d bytes=%d\n", len(m.flows), m.totalMsgs, m.totalBytes)
	for s := 0; s < m.nodes; s++ {
		for d := 0; d < m.nodes; d++ {
			fmt.Fprintf(&b, "cell %d %d %d %d\n", s, d, m.matMsgs[s*m.nodes+d], m.matBytes[s*m.nodes+d])
		}
	}
	for _, f := range m.sortedFlows() {
		fmt.Fprintf(&b, "flow %s|%s|%d|%s msgs=%d bytes=%d latsum=%d latmax=%d\n",
			f.key.Src, f.key.Dst, f.key.Type, f.key.Route, f.msgs, f.bytes, int64(f.latSum), int64(f.latMax))
	}
	if m.over.msgs > 0 {
		fmt.Fprintf(&b, "overflow msgs=%d bytes=%d latsum=%d latmax=%d\n",
			m.over.msgs, m.over.bytes, int64(m.over.latSum), int64(m.over.latMax))
	}
	for _, ra := range m.routes {
		fmt.Fprintf(&b, "route %s msgs=%d bytes=%d\n", ra.route, ra.msgs, ra.bytes)
	}
	names := make([]string, 0, len(m.res))
	for _, r := range m.res {
		names = append(names, r.name)
	}
	sort.Strings(names)
	for _, name := range names {
		r := m.resIdx[name]
		fmt.Fprintf(&b, "res %s bytes=%d busy=%d wframes=%d wbytes=%d\n",
			r.name, r.bytes, int64(r.busy), r.wireFrames, r.wireBytes)
		cs := append([]*contrib(nil), r.contribs...)
		sort.Slice(cs, func(i, j int) bool { return keyLess(cs[i].key, cs[j].key) })
		for _, c := range cs {
			fmt.Fprintf(&b, "  via %s|%s|%d|%s bytes=%d busy=%d\n",
				c.key.Src, c.key.Dst, c.key.Type, c.key.Route, c.bytes, int64(c.busy))
		}
	}
	return b.String()
}

// Fingerprint is FNV-1a over the canonical rendering: bit-stable across
// runs of the same seed and across shard counts.
func (m *Map) Fingerprint() string {
	if m == nil {
		return ""
	}
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for _, c := range []byte(m.canonical()) {
		h ^= uint64(c)
		h *= prime
	}
	return fmt.Sprintf("%016x", h)
}

// FingerprintLines renders the compact multi-line form folded into chaos
// and scenario fingerprints: a header binding everything via the hash,
// then one line per route.
func (m *Map) FingerprintLines() string {
	if m == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "flowmap flows=%d msgs=%d bytes=%d overflow=%t fp=%s\n",
		len(m.flows), m.totalMsgs, m.totalBytes, m.over.msgs > 0, m.Fingerprint())
	for _, ra := range m.routes {
		fmt.Fprintf(&b, "flowroute %s msgs=%d bytes=%d\n", ra.route, ra.msgs, ra.bytes)
	}
	return b.String()
}

// humanBytes renders a byte count compactly and deterministically.
func humanBytes(v int64) string {
	switch {
	case v >= 10*(1<<20):
		return fmt.Sprintf("%dM", v/(1<<20))
	case v >= 10*(1<<10):
		return fmt.Sprintf("%dK", v/(1<<10))
	default:
		return fmt.Sprintf("%d", v)
	}
}

// heatRamp maps a cell's share of the matrix maximum to an ASCII shade.
var heatRamp = []byte(" .:-=+*#@")

func heatChar(v, max int64) byte {
	if v <= 0 || max <= 0 {
		return heatRamp[0]
	}
	// Log scale: one ramp step per ~x4 of the max, so light flows stay
	// visible next to a dominant one.
	frac := math.Log1p(float64(v)) / math.Log1p(float64(max))
	idx := 1 + int(frac*float64(len(heatRamp)-2)+0.5)
	if idx >= len(heatRamp) {
		idx = len(heatRamp) - 1
	}
	return heatRamp[idx]
}

// RenderMatrix renders the node×node traffic matrix as an aligned
// heatmap table: every cell is "bytes heat-char", shaded on a log scale
// against the busiest cell. Byte-identical across same-seed runs.
func (rep *Report) RenderMatrix() string {
	if rep == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "traffic matrix (%d nodes, bytes src->dst; shade ramp %q per ~x4):\n", rep.Nodes, string(heatRamp))
	if rep.Nodes == 0 {
		b.WriteString("  (no MPI traffic observed)\n")
		return b.String()
	}
	var max int64
	for _, row := range rep.MatrixBytes {
		for _, v := range row {
			if v > max {
				max = v
			}
		}
	}
	const w = 9
	fmt.Fprintf(&b, "  %8s", "src\\dst")
	for d := 0; d < rep.Nodes; d++ {
		fmt.Fprintf(&b, " %*s", w, fmt.Sprintf("n%d", d))
	}
	b.WriteByte('\n')
	for s := 0; s < rep.Nodes; s++ {
		fmt.Fprintf(&b, "  %8s", fmt.Sprintf("n%d", s))
		for d := 0; d < rep.Nodes; d++ {
			v := rep.MatrixBytes[s][d]
			cell := "."
			if v > 0 {
				cell = fmt.Sprintf("%s%c", humanBytes(v), heatChar(v, max))
			}
			fmt.Fprintf(&b, " %*s", w, cell)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderTopK renders the heavy-hitter flow table.
func (rep *Report) RenderTopK() string {
	if rep == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "top flows (%d of %d, by bytes; %d msgs / %s total):\n",
		len(rep.TopK), rep.FlowCount, rep.TotalMsgs, humanBytes(rep.TotalBytes))
	fmt.Fprintf(&b, "  %-4s %-34s %-4s %-30s %8s %10s %12s %12s\n",
		"#", "src -> dst", "type", "route", "msgs", "bytes", "lat mean", "lat max")
	for i, f := range rep.TopK {
		fmt.Fprintf(&b, "  %-4d %-34s %-4d %-30s %8d %10d %12s %12s\n",
			i+1, f.Src+" -> "+f.Dst, f.Type, f.Route, f.Msgs, f.Bytes, f.LatMean, f.LatMax)
	}
	if rep.Overflow != nil {
		fmt.Fprintf(&b, "  %-4s %-34s %-4s %-30s %8d %10d %12s %12s\n",
			"+", overflowKey, "-", "-", rep.Overflow.Msgs, rep.Overflow.Bytes,
			rep.Overflow.LatMean, rep.Overflow.LatMax)
	}
	return b.String()
}

// RenderResources renders the per-link / per-Co-Pilot breakdown with each
// resource's top contributing flows.
func (rep *Report) RenderResources() string {
	if rep == nil {
		return ""
	}
	var b strings.Builder
	b.WriteString("resource breakdown (flow-attributed bytes and occupancy):\n")
	for _, r := range rep.Resources {
		fmt.Fprintf(&b, "  %-20s bytes=%-10d busy=%-14s", r.Name, r.Bytes, r.Busy)
		if r.WireFrames > 0 {
			fmt.Fprintf(&b, " wire=%d frames/%d B", r.WireFrames, r.WireBytes)
		}
		b.WriteByte('\n')
		for i, c := range r.Top {
			fmt.Fprintf(&b, "    top%-2d %-34s type%d %-30s bytes=%-10d busy=%s\n",
				i+1, c.Src+" -> "+c.Dst, c.Type, c.Route, c.Bytes, c.Busy)
		}
	}
	return b.String()
}

// String renders the whole observatory: matrix, heavy hitters, routes,
// resources. This is what `cellpilot-trace -flows` prints.
func (rep *Report) String() string {
	if rep == nil {
		return ""
	}
	var b strings.Builder
	b.WriteString(rep.RenderMatrix())
	b.WriteString(rep.RenderTopK())
	b.WriteString("routes:\n")
	for _, ra := range rep.Routes {
		fmt.Fprintf(&b, "  %-32s msgs=%-8d bytes=%d\n", ra.Route, ra.Msgs, ra.Bytes)
	}
	b.WriteString(rep.RenderResources())
	fmt.Fprintf(&b, "flow fingerprint: %s\n", rep.Fingerprint)
	return b.String()
}
