// Package dacs is a working model of IBM's Data Communication and
// Synchronization library (DaCS) and its hybrid extension (DaCSH), built
// as the paper's baseline: a strictly hierarchical topology of host
// elements (HE) and accelerator elements (AE) — Figure 1 — with remote
// memory regions, put/get data movement, mailboxes, and parent↔child
// messaging only.
//
// The limitations the paper holds against DaCS are reproduced
// deliberately: no direct SPE↔SPE communication (ErrNotSupported), no
// flexibility beyond the fixed hierarchy, and an SPE library footprint of
// 36600 bytes (libdacs.a) charged against every loaded SPE program.
package dacs

import (
	"errors"
	"fmt"

	"cellpilot/internal/cellbe"
	"cellpilot/internal/cluster"
	"cellpilot/internal/sdk"
	"cellpilot/internal/sim"
)

// ErrNotSupported marks operations outside DaCS's hierarchical model,
// such as SPE-to-SPE communication.
var ErrNotSupported = errors.New("dacs: operation not supported by the hierarchical model")

// Kind classifies a DaCS element.
type Kind int

// Element kinds in the DaCSH hierarchy.
const (
	// KindClusterHE is the one non-Cell node acting as HE for the cluster.
	KindClusterHE Kind = iota
	// KindCellHE is a Cell node's PPE: an AE of the cluster HE and the HE
	// of its own SPEs.
	KindCellHE
	// KindSPEAE is a leaf SPE accelerator element.
	KindSPEAE
)

// Element is one node of the DaCSH process hierarchy.
type Element struct {
	rt       *Runtime
	ID       int
	Kind     Kind
	Parent   *Element
	Children []*Element
	Node     *cellbe.Node
	SPE      *cellbe.SPE  // leaves only
	Ctx      *sdk.Context // leaves only, after StartProgram

	inbox *sim.Queue[[]byte]
}

// Name identifies the element.
func (e *Element) Name() string {
	switch e.Kind {
	case KindClusterHE:
		return fmt.Sprintf("HE(%s)", e.Node.Name)
	case KindCellHE:
		return fmt.Sprintf("AE/HE(%s)", e.Node.Name)
	default:
		return fmt.Sprintf("AE(%s)", e.SPE.Name())
	}
}

// Runtime is a DaCSH instance over a cluster.
type Runtime struct {
	K    *sim.Kernel
	Clu  *cluster.Cluster
	Par  *cellbe.Params
	Root *Element
	all  []*Element
}

// NewTopology builds the Figure 1 hierarchy: the first non-Cell node is
// the cluster HE; every Cell node's PPE is one of its AEs and the HE of
// its own SPE AEs. A cluster without a non-Cell node gets a single-level
// hierarchy rooted at the first Cell node (plain DaCS, no DaCSH).
func NewTopology(c *cluster.Cluster) (*Runtime, error) {
	rt := &Runtime{K: c.K, Clu: c, Par: c.Params}
	xeons := c.XeonNodesList()
	cells := c.CellNodesList()
	if len(cells) == 0 {
		return nil, fmt.Errorf("dacs: no Cell nodes in the cluster")
	}
	mk := func(kind Kind, node *cellbe.Node, spe *cellbe.SPE, parent *Element) *Element {
		e := &Element{rt: rt, ID: len(rt.all), Kind: kind, Node: node, SPE: spe, Parent: parent}
		e.inbox = sim.NewQueue[[]byte](c.K, fmt.Sprintf("dacs/inbox/%d", e.ID), 16)
		rt.all = append(rt.all, e)
		if parent != nil {
			parent.Children = append(parent.Children, e)
		}
		return e
	}
	if len(xeons) > 0 {
		rt.Root = mk(KindClusterHE, xeons[0], nil, nil)
	}
	for _, cn := range cells {
		he := mk(KindCellHE, cn, nil, rt.Root)
		if rt.Root == nil {
			rt.Root = he
		}
		for _, spe := range cn.SPEs() {
			mk(KindSPEAE, cn, spe, he)
		}
	}
	return rt, nil
}

// Elements returns every element in creation order.
func (rt *Runtime) Elements() []*Element { return rt.all }

// related reports whether a and b are parent and child (the only pairs
// DaCS lets communicate).
func related(a, b *Element) bool {
	return a.Parent == b || b.Parent == a
}

// StartProgram loads prog onto a leaf SPE AE with the DaCS library
// resident (36600 bytes of local store) and runs it (dacs_de_start).
func (rt *Runtime) StartProgram(e *Element, prog *sdk.Program, arg int, env any) error {
	if e.Kind != KindSPEAE {
		return fmt.Errorf("dacs: StartProgram on non-SPE element %s", e.Name())
	}
	ctx, err := sdk.ContextCreate(rt.K, e.SPE)
	if err != nil {
		return err
	}
	if err := ctx.Load(prog, rt.Par.DaCSFootprint); err != nil {
		ctx.Destroy()
		return err
	}
	e.Ctx = ctx
	return ctx.Run(arg, env)
}

// SendTo sends a data message from e to dst (dacs_send_to). Only
// parent↔child pairs may communicate; anything else — in particular
// SPE↔SPE — returns ErrNotSupported.
func (e *Element) SendTo(p *sim.Proc, dst *Element, data []byte) error {
	if !related(e, dst) {
		return fmt.Errorf("%w: %s -> %s", ErrNotSupported, e.Name(), dst.Name())
	}
	par := e.rt.Par
	switch {
	case e.Kind == KindSPEAE || dst.Kind == KindSPEAE:
		// SPE leg: staged through the MFC (DMA) plus a mailbox handshake.
		p.Advance(par.DMASetup + par.MailboxWrite)
	case e.Node.ID != dst.Node.ID:
		// Cluster leg (DaCSH): across the interconnect.
		arr, err := e.rt.Clu.Net.Send(p, e.Node.ID, dst.Node.ID, len(data))
		if err != nil {
			return err
		}
		p.AdvanceTo(arr)
	default:
		p.Advance(par.MemcpyTime(len(data)))
	}
	dst.inbox.Put(p, append([]byte(nil), data...))
	return nil
}

// RecvFrom receives the next message from src (dacs_recv_from), blocking
// until one arrives.
func (e *Element) RecvFrom(p *sim.Proc, src *Element) ([]byte, error) {
	if !related(e, src) {
		return nil, fmt.Errorf("%w: %s <- %s", ErrNotSupported, e.Name(), src.Name())
	}
	return e.inbox.Get(p), nil
}

// RemoteMem is a shareable handle to a memory region
// (dacs_remote_mem_create/query). Only main-memory regions can be shared;
// that is exactly why DaCS cannot do SPE↔SPE.
type RemoteMem struct {
	Node     *cellbe.Node
	EA       int64
	Size     int
	released bool
}

// RemoteMemCreate publishes a main-memory region for remote access.
func (rt *Runtime) RemoteMemCreate(node *cellbe.Node, ea int64, size int) (*RemoteMem, error) {
	if cellbe.IsLSMapped(ea) {
		return nil, fmt.Errorf("%w: remote memory must be in main storage", ErrNotSupported)
	}
	if _, err := node.Mem.Window(ea, size); err != nil {
		return nil, err
	}
	return &RemoteMem{Node: node, EA: ea, Size: size}, nil
}

// Release invalidates the handle (dacs_remote_mem_release).
func (rm *RemoteMem) Release() { rm.released = true }

// Put copies size bytes from the element's local store into the remote
// region (dacs_put): leaf AEs only, DMA under the hood, completion via
// Wait.
func (e *Element) Put(p *sim.Proc, rm *RemoteMem, off int64, lsAddr uint32, size, tag int) error {
	return e.rma(p, rm, off, lsAddr, size, tag, true)
}

// Get copies size bytes from the remote region into local store
// (dacs_get).
func (e *Element) Get(p *sim.Proc, rm *RemoteMem, off int64, lsAddr uint32, size, tag int) error {
	return e.rma(p, rm, off, lsAddr, size, tag, false)
}

func (e *Element) rma(p *sim.Proc, rm *RemoteMem, off int64, lsAddr uint32, size, tag int, put bool) error {
	if e.Kind != KindSPEAE || e.Ctx == nil {
		return fmt.Errorf("dacs: put/get requires a started SPE AE")
	}
	if rm.released {
		return fmt.Errorf("dacs: remote memory handle released")
	}
	if rm.Node.ID != e.Node.ID {
		return fmt.Errorf("%w: remote memory on another node requires the hybrid message path", ErrNotSupported)
	}
	if off < 0 || int(off)+size > rm.Size {
		return fmt.Errorf("dacs: put/get [%d,+%d) outside remote region of %d bytes", off, size, rm.Size)
	}
	if put {
		return e.Ctx.MFCPut(p, lsAddr, rm.EA+off, size, tag)
	}
	return e.Ctx.MFCGet(p, lsAddr, rm.EA+off, size, tag)
}

// Wait blocks until DMAs issued under tag complete (dacs_wait).
func (e *Element) Wait(p *sim.Proc, tag int) error {
	if e.Kind != KindSPEAE || e.Ctx == nil {
		return fmt.Errorf("dacs: wait requires a started SPE AE")
	}
	e.Ctx.TagWait(p, 1<<uint(tag))
	return nil
}

// MailboxWrite posts one 32-bit value toward a child or parent
// (dacs_mailbox_write); SPE legs use the hardware mailboxes.
func (e *Element) MailboxWrite(p *sim.Proc, dst *Element, v uint32) error {
	if !related(e, dst) {
		return fmt.Errorf("%w: mailbox %s -> %s", ErrNotSupported, e.Name(), dst.Name())
	}
	switch {
	case dst.Kind == KindSPEAE:
		dst.SPE.InMbox.Write(p, v)
	case e.Kind == KindSPEAE:
		e.SPE.OutMbox.Write(p, v)
	default:
		var b [4]byte
		b[0], b[1], b[2], b[3] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
		return e.SendTo(p, dst, b[:])
	}
	return nil
}

// MailboxRead reads one 32-bit value sent by src (dacs_mailbox_read).
func (e *Element) MailboxRead(p *sim.Proc, src *Element) (uint32, error) {
	if !related(e, src) {
		return 0, fmt.Errorf("%w: mailbox %s <- %s", ErrNotSupported, e.Name(), src.Name())
	}
	switch {
	case src.Kind == KindSPEAE:
		return src.SPE.OutMbox.Read(p), nil
	case e.Kind == KindSPEAE:
		return e.SPE.InMbox.Read(p), nil
	default:
		b, err := e.RecvFrom(p, src)
		if err != nil || len(b) != 4 {
			return 0, fmt.Errorf("dacs: malformed mailbox message")
		}
		return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3]), nil
	}
}
