package dacs

import (
	"bytes"
	"errors"
	"testing"

	"cellpilot/internal/cluster"
	"cellpilot/internal/sdk"
	"cellpilot/internal/sim"
)

func newRT(t *testing.T) *Runtime {
	t.Helper()
	c, err := cluster.New(cluster.Spec{CellNodes: 2, XeonNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewTopology(c)
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func TestFigure1Hierarchy(t *testing.T) {
	// E5: the DaCSH process hierarchy — one x86 HE, Cell PPEs as its AEs,
	// each the HE of its own 16 SPE AEs.
	rt := newRT(t)
	if rt.Root.Kind != KindClusterHE {
		t.Fatalf("root kind %d", rt.Root.Kind)
	}
	if len(rt.Root.Children) != 2 {
		t.Fatalf("cluster HE has %d AEs, want 2 Cell nodes", len(rt.Root.Children))
	}
	for _, cellHE := range rt.Root.Children {
		if cellHE.Kind != KindCellHE || len(cellHE.Children) != 16 {
			t.Fatalf("cell HE %s has %d children", cellHE.Name(), len(cellHE.Children))
		}
		for _, ae := range cellHE.Children {
			if ae.Kind != KindSPEAE || ae.Parent != cellHE {
				t.Fatalf("bad leaf %s", ae.Name())
			}
		}
	}
	if len(rt.Elements()) != 1+2+32 {
		t.Fatalf("%d elements", len(rt.Elements()))
	}
}

func TestNoSPEToSPE(t *testing.T) {
	// The paper's criticism (a): DaCS does not address SPE-to-SPE
	// communication.
	rt := newRT(t)
	cellHE := rt.Root.Children[0]
	s1, s2 := cellHE.Children[0], cellHE.Children[1]
	rt.K.Spawn("try", func(p *sim.Proc) {
		if err := s1.SendTo(p, s2, []byte("x")); !errors.Is(err, ErrNotSupported) {
			p.Fatalf("SPE->SPE send: %v", err)
		}
		if _, err := s1.MailboxRead(p, s2); !errors.Is(err, ErrNotSupported) {
			p.Fatalf("SPE->SPE mailbox: %v", err)
		}
		// Cross-subtree is equally forbidden.
		other := rt.Root.Children[1].Children[0]
		if err := s1.SendTo(p, other, nil); !errors.Is(err, ErrNotSupported) {
			p.Fatalf("cross-subtree send: %v", err)
		}
	})
	if err := rt.K.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRemoteMemRejectsLocalStore(t *testing.T) {
	rt := newRT(t)
	cell := rt.Root.Children[0]
	spe := cell.Children[0].SPE
	if _, err := rt.RemoteMemCreate(cell.Node, spe.LSBase(), 64); !errors.Is(err, ErrNotSupported) {
		t.Fatalf("LS-backed remote mem: %v", err)
	}
}

func TestPutGetWaitRoundTrip(t *testing.T) {
	rt := newRT(t)
	cellHE := rt.Root.Children[0]
	leaf := cellHE.Children[0]
	node := cellHE.Node
	ea, _ := node.Mem.Alloc(4096, 128)
	rm, err := rt.RemoteMemCreate(node, ea, 4096)
	if err != nil {
		t.Fatal(err)
	}
	prog := &sdk.Program{Name: "rma", Main: func(c *sdk.Context, arg int, env any) {
		p := c.Proc
		lsAddr, _ := c.SPE.LS.Alloc("buf", 256, 128)
		w, _ := c.SPE.LS.Window(lsAddr, 256)
		for i := range w {
			w[i] = byte(i ^ 0x5a)
		}
		if err := leaf.Put(p, rm, 0, lsAddr, 256, 1); err != nil {
			p.Fatalf("put: %v", err)
		}
		if err := leaf.Wait(p, 1); err != nil {
			p.Fatalf("wait: %v", err)
		}
		// Read it back into a second buffer and compare.
		ls2, _ := c.SPE.LS.Alloc("buf2", 256, 128)
		if err := leaf.Get(p, rm, 0, ls2, 256, 2); err != nil {
			p.Fatalf("get: %v", err)
		}
		leaf.Wait(p, 2)
		w2, _ := c.SPE.LS.Window(ls2, 256)
		if !bytes.Equal(w, w2) {
			p.Fatalf("round trip corrupted")
		}
		// Out-of-range put must fail.
		if err := leaf.Put(p, rm, 4000, lsAddr, 256, 3); err == nil {
			p.Fatalf("overrun accepted")
		}
	}}
	if err := rt.StartProgram(leaf, prog, 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := rt.K.Run(); err != nil {
		t.Fatal(err)
	}
	mw, _ := node.Mem.Window(ea, 4)
	if mw[0] != 0x5a^0 || mw[1] != 1^0x5a {
		t.Fatal("put did not land in main memory")
	}
}

func TestDaCSFootprintSqueezesLS(t *testing.T) {
	// E4 behaviour: the same program that loads under CellPilot's 10336-
	// byte runtime fails under libdacs.a's 36600 bytes.
	rt := newRT(t)
	leaf := rt.Root.Children[0].Children[1]
	par := rt.Par
	prog := &sdk.Program{
		Name:     "big-app",
		CodeSize: par.LSSize - par.DaCSFootprint - par.StackReserve + 1,
		Main:     func(*sdk.Context, int, any) {},
	}
	if err := rt.StartProgram(leaf, prog, 0, nil); err == nil {
		t.Fatal("oversized program loaded under DaCS footprint")
	}
	ctx, err := sdk.ContextCreate(rt.K, leaf.SPE)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.Load(prog, par.CellPilotFootprint); err != nil {
		t.Fatalf("same program should fit under CellPilot's footprint: %v", err)
	}
}

func TestHybridMessagePath(t *testing.T) {
	// Cluster HE <-> Cell HE messaging crosses the interconnect (DaCSH).
	rt := newRT(t)
	cellHE := rt.Root.Children[0]
	var elapsed sim.Time
	rt.K.Spawn("he", func(p *sim.Proc) {
		start := p.Now()
		if err := rt.Root.SendTo(p, cellHE, make([]byte, 1600)); err != nil {
			p.Fatalf("%v", err)
		}
		elapsed = p.Now() - start
	})
	rt.K.Spawn("ae", func(p *sim.Proc) {
		data, err := cellHE.RecvFrom(p, rt.Root)
		if err != nil || len(data) != 1600 {
			p.Fatalf("recv: %v len %d", err, len(data))
		}
	})
	if err := rt.K.Run(); err != nil {
		t.Fatal(err)
	}
	if elapsed < 100*sim.Microsecond {
		t.Fatalf("hybrid send took %s; should cross the network", elapsed)
	}
}
