package dacs

import (
	"errors"
	"testing"

	"cellpilot/internal/sdk"
	"cellpilot/internal/sim"
)

func TestMailboxBetweenHEAndLeaf(t *testing.T) {
	rt := newRT(t)
	cellHE := rt.Root.Children[0]
	leaf := cellHE.Children[2]
	prog := &sdk.Program{Name: "mb", Main: func(c *sdk.Context, _ int, _ any) {
		p := c.Proc
		v, err := leaf.MailboxRead(p, cellHE) // HE -> SPE: hardware in-mbox
		if err != nil || v != 77 {
			p.Fatalf("read %d %v", v, err)
		}
		if err := leaf.MailboxWrite(p, cellHE, 88); err != nil { // SPE -> HE
			p.Fatalf("%v", err)
		}
	}}
	if err := rt.StartProgram(leaf, prog, 0, nil); err != nil {
		t.Fatal(err)
	}
	rt.K.Spawn("he", func(p *sim.Proc) {
		if err := cellHE.MailboxWrite(p, leaf, 77); err != nil {
			p.Fatalf("%v", err)
		}
		v, err := cellHE.MailboxRead(p, leaf)
		if err != nil || v != 88 {
			p.Fatalf("read back %d %v", v, err)
		}
	})
	if err := rt.K.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMailboxBetweenHEs(t *testing.T) {
	// Cluster HE <-> Cell HE mailbox rides the hybrid message path.
	rt := newRT(t)
	cellHE := rt.Root.Children[1]
	rt.K.Spawn("root", func(p *sim.Proc) {
		if err := rt.Root.MailboxWrite(p, cellHE, 0xBEEF); err != nil {
			p.Fatalf("%v", err)
		}
	})
	rt.K.Spawn("cell", func(p *sim.Proc) {
		v, err := cellHE.MailboxRead(p, rt.Root)
		if err != nil || v != 0xBEEF {
			p.Fatalf("read %#x %v", v, err)
		}
	})
	if err := rt.K.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestReleasedRemoteMemRejected(t *testing.T) {
	rt := newRT(t)
	cellHE := rt.Root.Children[0]
	leaf := cellHE.Children[3]
	ea, _ := cellHE.Node.Mem.Alloc(256, 128)
	rm, err := rt.RemoteMemCreate(cellHE.Node, ea, 256)
	if err != nil {
		t.Fatal(err)
	}
	rm.Release()
	prog := &sdk.Program{Name: "stale", Main: func(c *sdk.Context, _ int, _ any) {
		p := c.Proc
		lsAddr, _ := c.SPE.LS.Alloc("b", 64, 128)
		if err := leaf.Put(p, rm, 0, lsAddr, 64, 1); err == nil {
			p.Fatalf("released handle accepted")
		}
	}}
	if err := rt.StartProgram(leaf, prog, 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := rt.K.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRMAOnWrongElementRejected(t *testing.T) {
	rt := newRT(t)
	cellHE := rt.Root.Children[0]
	ea, _ := cellHE.Node.Mem.Alloc(256, 128)
	rm, _ := rt.RemoteMemCreate(cellHE.Node, ea, 256)
	rt.K.Spawn("he", func(p *sim.Proc) {
		if err := cellHE.Put(p, rm, 0, 0, 64, 1); err == nil {
			p.Fatalf("put from a non-SPE element accepted")
		}
		if err := cellHE.Wait(p, 1); err == nil {
			p.Fatalf("wait on a non-SPE element accepted")
		}
	})
	if err := rt.K.Run(); err != nil {
		t.Fatal(err)
	}
	// RMA against a remote node's region is the hybrid path's job.
	other := rt.Root.Children[1].Children[0]
	prog := &sdk.Program{Name: "x", Main: func(c *sdk.Context, _ int, _ any) {
		p := c.Proc
		lsAddr, _ := c.SPE.LS.Alloc("b", 64, 128)
		if err := other.Put(p, rm, 0, lsAddr, 64, 1); !errors.Is(err, ErrNotSupported) {
			p.Fatalf("cross-node RMA: %v", err)
		}
	}}
	if err := rt.StartProgram(other, prog, 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := rt.K.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestElementNames(t *testing.T) {
	rt := newRT(t)
	if rt.Root.Name() == "" || rt.Root.Children[0].Name() == "" ||
		rt.Root.Children[0].Children[0].Name() == "" {
		t.Fatal("element names empty")
	}
}
