package hostbench

import (
	"math"
	"path/filepath"
	"strings"
	"testing"

	"cellpilot/internal/core"
	"cellpilot/internal/hostprof"
	"cellpilot/internal/sim"
	"cellpilot/internal/workload"
)

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{3}, 3},
		{[]float64{3, 1}, 2},
		{[]float64{5, 1, 3}, 3},
		{[]float64{4, 1, 3, 2}, 2.5},
	}
	for _, c := range cases {
		if got := Median(c.in); got != c.want {
			t.Errorf("Median(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestMAD(t *testing.T) {
	// Median 3, deviations {2,1,0,1,2} -> MAD 1.
	if got := MAD([]float64{1, 2, 3, 4, 5}); got != 1 {
		t.Errorf("MAD = %v, want 1", got)
	}
	if got := MAD(nil); got != 0 {
		t.Errorf("MAD(nil) = %v, want 0", got)
	}
}

// syntheticFile builds an artifact with the given allocs/event per suite
// iteration; the other metrics are held constant.
func syntheticFile(name string, allocs []float64, shares map[string]float64) File {
	sr := SuiteResult{Name: name, SubsysNs: map[string]int64{}, SubsysShare: shares}
	for _, a := range allocs {
		sr.Iters = append(sr.Iters, Iter{
			WallNs: 1e9, Events: 1000, EventsPerSec: 1000,
			AllocsPerEvent: a, BytesPerEvent: 100, VirtualUs: 42,
		})
	}
	return File{Schema: Schema, Iterations: len(allocs), Env: CaptureEnv(), Suites: []SuiteResult{sr}}
}

func TestGuardIdenticalFilesPass(t *testing.T) {
	f := syntheticFile("pp", []float64{10, 10.2, 9.8}, map[string]float64{"kernel": 0.6, "mpi": 0.4})
	rep := Guard(f, f, GuardOptions{})
	if regs := rep.Regressions(); len(regs) != 0 {
		t.Fatalf("identical files regressed: %+v", regs)
	}
	if len(rep.Deltas) == 0 {
		t.Fatal("no deltas computed")
	}
}

func TestGuardFlagsAllocGrowthWithBlame(t *testing.T) {
	base := syntheticFile("pp", []float64{10, 10.1, 9.9}, map[string]float64{"kernel": 0.5, "mpi": 0.5})
	now := syntheticFile("pp", []float64{15, 15.2, 14.9}, map[string]float64{"kernel": 0.8, "mpi": 0.2})
	rep := Guard(base, now, GuardOptions{})
	var hit *Delta
	for i, d := range rep.Deltas {
		if d.Metric == MetricAllocsPerEvent && d.Regressed {
			hit = &rep.Deltas[i]
		}
	}
	if hit == nil {
		t.Fatalf("50%% allocs/event growth not flagged: %+v", rep.Deltas)
	}
	if hit.Blame != "kernel" {
		t.Errorf("blame = %q, want kernel (its share grew most)", hit.Blame)
	}
	out := FormatGuard(rep)
	if !strings.Contains(out, "REGRESSED (kernel)") {
		t.Errorf("FormatGuard missing blame verdict:\n%s", out)
	}
}

func TestGuardDirectionAware(t *testing.T) {
	base := syntheticFile("pp", []float64{10, 10, 10}, nil)
	// Improvement: allocs/event halves. Must not trip.
	now := syntheticFile("pp", []float64{5, 5, 5}, nil)
	if regs := Guard(base, now, GuardOptions{}).Regressions(); len(regs) != 0 {
		t.Errorf("improvement tripped guard: %+v", regs)
	}
	// events/sec dropping far below band must trip — but only fail the
	// gate when wall-coupled metrics are opted in (GateWall); by default
	// it is marked regressed yet advisory.
	slow := syntheticFile("pp", []float64{10, 10, 10}, nil)
	for i := range slow.Suites[0].Iters {
		slow.Suites[0].Iters[i].EventsPerSec = 100 // was 1000
	}
	rep := Guard(base, slow, GuardOptions{GateWall: true})
	found := false
	for _, d := range rep.Regressions() {
		if d.Metric == MetricEventsPerSec {
			found = true
		}
	}
	if !found {
		t.Errorf("10x events/sec drop not flagged with GateWall: %+v", rep.Deltas)
	}
	advisory := Guard(base, slow, GuardOptions{})
	if len(advisory.Regressions()) != 0 {
		t.Errorf("advisory wall metric failed the gate: %+v", advisory.Regressions())
	}
	marked := false
	for _, d := range advisory.Deltas {
		if d.Metric == MetricEventsPerSec && d.Regressed && d.Advisory {
			marked = true
		}
	}
	if !marked {
		t.Errorf("events/sec drop not even marked advisory-regressed: %+v", advisory.Deltas)
	}
}

func TestGuardFloorScale(t *testing.T) {
	base := syntheticFile("pp", []float64{10, 10, 10}, nil)
	now := syntheticFile("pp", []float64{11.5, 11.5, 11.5}, nil) // +15%
	// Default floor 10%: trips.
	if len(Guard(base, now, GuardOptions{}).Regressions()) == 0 {
		t.Error("+15%% allocs/event not flagged at default floor")
	}
	// Doubled floors (20%): passes.
	if regs := Guard(base, now, GuardOptions{FloorScale: 2}).Regressions(); len(regs) != 0 {
		t.Errorf("+15%% flagged with FloorScale 2: %+v", regs)
	}
}

func TestGuardMADWidensBand(t *testing.T) {
	// Noisy baseline: allocs median 10, MAD 2 -> band 5*2/10 = 100%.
	base := syntheticFile("pp", []float64{8, 10, 12, 7, 13}, nil)
	now := syntheticFile("pp", []float64{15, 15, 15}, nil) // +50%, inside noise
	if regs := Guard(base, now, GuardOptions{}).Regressions(); len(regs) != 0 {
		t.Errorf("movement within baseline noise flagged: %+v", regs)
	}
}

func TestGuardRangeWidensBand(t *testing.T) {
	// Wall time with one straggler iteration: median 1000, MAD 0 (two of
	// three agree), but the observed range spans 9x. A heavy-tailed spread
	// like this is exactly what MAD-of-3 misses; the range term must keep
	// a same-magnitude current value inside the band.
	base := syntheticFile("pp", []float64{10, 10, 10}, nil)
	for i, w := range []int64{1000, 1000, 9000} {
		base.Suites[0].Iters[i].WallNs = w
	}
	now := syntheticFile("pp", []float64{10, 10, 10}, nil)
	for i := range now.Suites[0].Iters {
		now.Suites[0].Iters[i].WallNs = 5000 // 5x the baseline median
	}
	for _, d := range Guard(base, now, GuardOptions{GateWall: true}).Regressions() {
		if d.Metric == MetricWallNs {
			t.Errorf("wall time within the baseline's own range flagged: %+v", d)
		}
	}
}

func TestGuardMissingSuites(t *testing.T) {
	base := syntheticFile("old", []float64{10}, nil)
	now := syntheticFile("new", []float64{10}, nil)
	rep := Guard(base, now, GuardOptions{})
	if len(rep.Missing) != 2 {
		t.Fatalf("Missing = %v, want both directions reported", rep.Missing)
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	f := syntheticFile("pp", []float64{1, 2}, map[string]float64{"kernel": 1})
	f.Suites[0].SubsysNs = map[string]int64{"kernel": 12345}
	if err := WriteFile(path, f); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != Schema || len(got.Suites) != 1 || got.Suites[0].Name != "pp" {
		t.Fatalf("round trip mangled: %+v", got)
	}
	if got.Suites[0].SubsysNs["kernel"] != 12345 {
		t.Errorf("SubsysNs lost: %+v", got.Suites[0].SubsysNs)
	}
	if len(got.Suites[0].Iters) != 2 {
		t.Errorf("iters lost: %+v", got.Suites[0].Iters)
	}
}

func TestReadFileRejectsSchemaMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	f := syntheticFile("pp", []float64{1}, nil)
	f.Schema = Schema + 1
	if err := WriteFile(path, f); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("schema mismatch not rejected: %v", err)
	}
}

// tinySuite is a fast single-workload suite for end-to-end tests.
func tinySuite() []Suite {
	return []Suite{{
		Name: "pp-tiny",
		Run: func(h *hostprof.Profiler) (sim.Time, error) {
			var st core.Stats
			_, err := workload.PingPong(workload.PingPongConfig{
				Type: 1, Bytes: 256, Method: workload.MethodCellPilot,
				Reps: 10, Host: h, Stats: &st,
			})
			return st.VirtualTime, err
		},
	}}
}

func TestRunProducesArtifact(t *testing.T) {
	f, err := Run(tinySuite(), 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if f.Schema != Schema || f.Iterations != 2 || len(f.Suites) != 1 {
		t.Fatalf("artifact shape wrong: %+v", f)
	}
	sr := f.Suites[0]
	if len(sr.Iters) != 2 {
		t.Fatalf("want 2 iters, got %d", len(sr.Iters))
	}
	for i, it := range sr.Iters {
		if it.Events == 0 || it.EventsPerSec <= 0 || it.WallNs <= 0 {
			t.Errorf("iter %d has empty host metrics: %+v", i, it)
		}
		if it.VirtualUs != sr.Iters[0].VirtualUs {
			t.Errorf("iter %d virtual time %v != iter 0's %v", i, it.VirtualUs, sr.Iters[0].VirtualUs)
		}
	}
	var total float64
	for _, share := range sr.SubsysShare {
		total += share
	}
	if math.Abs(total-1) > 0.01 {
		t.Errorf("subsystem shares sum to %v, want ~1 (%+v)", total, sr.SubsysShare)
	}
}

// TestGuardCatchesInjectedAllocs is the acceptance check: a forced
// per-event allocation (the BurnAllocBytes knob, standing in for a real
// host-side regression in the dispatch loop) must trip the guard on
// allocs/event and blame the kernel subsystem.
func TestGuardCatchesInjectedAllocs(t *testing.T) {
	suites := tinySuite()
	base, err := Run(suites, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	BurnAllocBytes = 4096
	defer func() { BurnAllocBytes = 0 }()
	slow, err := Run(suites, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The injection must not perturb the virtual result.
	if b, s := base.Suites[0].Iters[0].VirtualUs, slow.Suites[0].Iters[0].VirtualUs; b != s {
		t.Fatalf("burn changed virtual time: %v -> %v", b, s)
	}
	rep := Guard(base, slow, GuardOptions{})
	var hit *Delta
	for i, d := range rep.Deltas {
		if d.Metric == MetricAllocsPerEvent && d.Regressed {
			hit = &rep.Deltas[i]
		}
	}
	if hit == nil {
		t.Fatalf("injected per-event allocation not flagged:\n%s", FormatGuard(rep))
	}
	if hit.Blame == "" {
		t.Error("regression has no subsystem blame")
	}
}

func TestFormatTrend(t *testing.T) {
	base := syntheticFile("pp", []float64{10, 10}, map[string]float64{"kernel": 0.5, "mpi": 0.5})
	now := syntheticFile("pp", []float64{12, 12}, map[string]float64{"kernel": 0.7, "mpi": 0.3})
	out := FormatTrend(base, now)
	for _, want := range []string{"host-cost trend", "pp", "allocs_per_event", "+20.0%", "kernel +20.0pp"} {
		if !strings.Contains(out, want) {
			t.Errorf("trend output missing %q:\n%s", want, out)
		}
	}
}

// TestRunSeqFillsSpeedupColumn: a suite with a sequential reference arm
// gets the shard count and speedup columns, and a sequential arm whose
// virtual result diverges fails the run (the seq/par determinism check).
func TestRunSeqFillsSpeedupColumn(t *testing.T) {
	kilo := func(workers int) func(h *hostprof.Profiler) (sim.Time, error) {
		return func(h *hostprof.Profiler) (sim.Time, error) {
			res, err := workload.Kiloscale(workload.KiloscaleConfig{
				Nodes: 12, Reps: 2, Workers: workers, Seed: 5, Host: h,
			})
			return res.VirtualTime, err
		}
	}
	f, err := Run([]Suite{{Name: "kilo-tiny", Run: kilo(2), RunSeq: kilo(1)}}, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	sr := f.Suites[0]
	if sr.Shards != 4 {
		t.Fatalf("Shards = %d, want 4 replicas", sr.Shards)
	}
	if sr.ParallelSpeedup <= 0 {
		t.Fatalf("ParallelSpeedup not recorded: %+v", sr)
	}
	// A sequential arm that computes something else must fail loudly.
	bad := []Suite{{
		Name: "bad",
		Run:  kilo(2),
		RunSeq: func(h *hostprof.Profiler) (sim.Time, error) {
			v, err := kilo(1)(h)
			return v + 1, err
		},
	}}
	if _, err := Run(bad, 1, nil); err == nil || !strings.Contains(err.Error(), "determinism") {
		t.Fatalf("diverging sequential arm not rejected: %v", err)
	}
}
