// Package hostbench is the host-cost benchmark suite and its regression
// ledger: it runs a fixed set of simulator workloads with the wall-clock
// profiler (internal/hostprof) attached, measures what each run costs the
// host (wall time, events/sec, allocations and bytes per event, GC
// pauses) alongside its virtual result, and serializes everything into a
// schema-versioned JSON artifact (results/BENCH_hostbench.json). The
// noise-aware guard in guard.go compares two artifacts and names the
// subsystem that regressed.
package hostbench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"cellpilot/internal/core"
	"cellpilot/internal/hostprof"
	"cellpilot/internal/sim"
	"cellpilot/internal/workload"
)

// Schema is the artifact's schema version. Bump on any incompatible
// change to File; the guard refuses to compare mismatched schemas.
// Schema 2 added the sharded-run columns (SuiteResult.Shards and
// SuiteResult.ParallelSpeedup) and the kiloscale suite.
const Schema = 2

// Env captures the host environment a benchmark ran on — the context a
// reader (or the guard's tolerance floors) needs to judge comparability.
type Env struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// CaptureEnv reads the current host environment.
func CaptureEnv() Env {
	return Env{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}

// Iter is one iteration's host-side measurement of one suite.
type Iter struct {
	// WallNs is the iteration's wall-clock duration.
	WallNs int64 `json:"wall_ns"`
	// Events is the number of kernel events the run dispatched;
	// EventsPerSec is Events over wall time — the kernel's headline
	// throughput number.
	Events       uint64  `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
	// AllocsPerEvent and BytesPerEvent are heap allocation counts/bytes
	// per dispatched event (runtime.MemStats deltas).
	AllocsPerEvent float64 `json:"allocs_per_event"`
	BytesPerEvent  float64 `json:"bytes_per_event"`
	// GCPauseNs is the stop-the-world pause time the iteration incurred.
	GCPauseNs int64 `json:"gc_pause_ns"`
	// MaxHeapDepth is the event-heap watermark.
	MaxHeapDepth int `json:"max_heap_depth"`
	// VirtualUs is the run's virtual result (final clock in microseconds)
	// — identical across iterations and machines by the determinism
	// contract, so it doubles as a correctness cross-check in the ledger.
	VirtualUs float64 `json:"virtual_us"`
}

// SuiteResult aggregates one suite's iterations plus its subsystem
// host-time attribution (shares of sampled wall time, summed over all
// iterations).
type SuiteResult struct {
	Name  string `json:"name"`
	Iters []Iter `json:"iters"`
	// SubsysNs is exclusive sampled host time per subsystem; SubsysShare
	// the same normalized to the total sampled time.
	SubsysNs    map[string]int64   `json:"subsys_ns"`
	SubsysShare map[string]float64 `json:"subsys_share"`
	// Shards is the per-shard profiler count the suite's runs merged
	// (hostprof.Snapshot.Shards); 0 for single-kernel suites.
	Shards int `json:"shards,omitempty"`
	// ParallelSpeedup is the suite's sequential-arm wall time over the
	// median parallel-arm wall time, recorded only for suites with a
	// sequential reference (Suite.RunSeq). On a single-core host it
	// honestly reads ~1.0 — the ledger records what the machine did, not
	// what a bigger one would.
	ParallelSpeedup float64 `json:"parallel_speedup,omitempty"`
}

// File is the BENCH_hostbench.json artifact.
type File struct {
	Schema     int `json:"schema"`
	Iterations int `json:"iterations"`
	// Quick records whether the suites ran in their CI-shrunk shape; the
	// guard re-runs the same shape so medians compare like against like.
	Quick  bool          `json:"quick"`
	Env    Env           `json:"env"`
	Suites []SuiteResult `json:"suites"`
}

// Suite is one benchmark workload: run the scenario with the given
// profiler attached and return its final virtual time.
type Suite struct {
	Name string
	Run  func(h *hostprof.Profiler) (sim.Time, error)
	// RunSeq, when non-nil, is the same workload pinned to one host
	// worker — the sequential reference arm. Run times it once per suite
	// to fill the ParallelSpeedup column, and its virtual result must
	// equal the parallel arm's bit for bit (the seq-vs-par determinism
	// contract, enforced at measurement time).
	RunSeq func(h *hostprof.Profiler) (sim.Time, error)
}

// Suites returns the fixed benchmark suite in ledger order: PingPong over
// all five channel types, the transfer-engine size sweep, a seeded chaos
// run, and a 64-node IMB Exchange stressing kernel scaling well past the
// paper's 8-node testbed. quick shrinks the workloads for CI.
func Suites(quick bool) []Suite {
	ppReps, sweepReps, chaosReps, imbReps := 200, 5, 10, 40
	if quick {
		ppReps, sweepReps, chaosReps, imbReps = 50, 2, 5, 10
	}
	var suites []Suite
	for t := 1; t <= 5; t++ {
		t := t
		suites = append(suites, Suite{
			Name: fmt.Sprintf("pingpong-t%d", t),
			Run: func(h *hostprof.Profiler) (sim.Time, error) {
				var st core.Stats
				_, err := workload.PingPong(workload.PingPongConfig{
					Type: t, Bytes: 1600, Method: workload.MethodCellPilot,
					Reps: ppReps, Host: h, Stats: &st,
				})
				return st.VirtualTime, err
			},
		})
	}
	suites = append(suites, Suite{
		Name: "sizesweep",
		Run: func(h *hostprof.Profiler) (sim.Time, error) {
			pts, err := workload.SizeSweep(workload.SizeSweepConfig{
				Reps: sweepReps, Host: h,
				Sizes: []int{64, 4096, 65536},
			})
			if err != nil {
				return 0, err
			}
			// The sweep spans many independent apps; fold the virtual
			// result into a stable scalar (sum of p50 latencies).
			var virt sim.Time
			for _, p := range pts {
				virt += p.OneWayP50
			}
			return virt, nil
		},
	})
	suites = append(suites, Suite{
		Name: "chaos",
		Run: func(h *hostprof.Profiler) (sim.Time, error) {
			res, err := workload.Chaos(workload.ChaosConfig{
				Seed: 42, Reps: chaosReps, LossProb: 0.05,
				KillSPE: true, MailboxDrops: 2, Host: h,
			})
			return res.VirtualTime, err
		},
	})
	suites = append(suites, Suite{
		Name: "imb64",
		Run: func(h *hostprof.Profiler) (sim.Time, error) {
			res, err := workload.IMB(workload.IMBConfig{
				Pattern: workload.IMBExchange, Ranks: 64, Nodes: 64,
				Bytes: 1024, Reps: imbReps, Host: h,
			})
			return res.AvgTime, err
		},
	})
	kiloNodes, kiloReps := 300, 10
	if quick {
		kiloNodes, kiloReps = 60, 3
	}
	kiloRun := func(workers int) func(h *hostprof.Profiler) (sim.Time, error) {
		return func(h *hostprof.Profiler) (sim.Time, error) {
			res, err := workload.Kiloscale(workload.KiloscaleConfig{
				Nodes: kiloNodes, Reps: kiloReps, Workers: workers, Seed: 9, Host: h,
			})
			return res.VirtualTime, err
		}
	}
	suites = append(suites, Suite{
		Name:   "kiloscale",
		Run:    kiloRun(0), // one worker per host core
		RunSeq: kiloRun(1),
	})
	return suites
}

// Run executes every suite for iters iterations and assembles the
// artifact. Each iteration gets a fresh profiler, so per-iteration event
// counts are exact; subsystem attribution is summed across iterations.
// logf (nil = silent) receives one progress line per suite.
func Run(suites []Suite, iters int, logf func(format string, args ...any)) (File, error) {
	if iters <= 0 {
		iters = 3
	}
	f := File{Schema: Schema, Iterations: iters, Env: CaptureEnv()}
	for _, s := range suites {
		sr := SuiteResult{Name: s.Name, SubsysNs: map[string]int64{}, SubsysShare: map[string]float64{}}
		var totalNs int64
		for i := 0; i < iters; i++ {
			it, snap, err := measure(s)
			if err != nil {
				return File{}, fmt.Errorf("hostbench: suite %s iteration %d: %w", s.Name, i, err)
			}
			if i > 0 && it.VirtualUs != sr.Iters[0].VirtualUs {
				return File{}, fmt.Errorf("hostbench: suite %s iteration %d: virtual time %v differs from iteration 0's %v — determinism broken",
					s.Name, i, it.VirtualUs, sr.Iters[0].VirtualUs)
			}
			sr.Iters = append(sr.Iters, it)
			if i == 0 {
				sr.Shards = snap.Shards
			}
			for _, sh := range snap.Subsystems {
				sr.SubsysNs[sh.Name] += sh.SampledNs
			}
			totalNs += snap.SampledNs
		}
		if totalNs > 0 {
			for name, ns := range sr.SubsysNs {
				sr.SubsysShare[name] = float64(ns) / float64(totalNs)
			}
		}
		if s.RunSeq != nil {
			// One timed sequential-reference run fills the speedup column;
			// its virtual result doubles as the seq-vs-par determinism
			// check — the parallel iterations above must have produced the
			// exact same virtual clock.
			hseq := hostprof.New(0)
			hseq.BurnAllocBytes = BurnAllocBytes
			t0 := time.Now()
			virt, err := s.RunSeq(hseq)
			seqWall := time.Since(t0)
			if err != nil {
				return File{}, fmt.Errorf("hostbench: suite %s sequential arm: %w", s.Name, err)
			}
			if virt.Micros() != sr.Iters[0].VirtualUs {
				return File{}, fmt.Errorf("hostbench: suite %s: sequential arm's virtual time %v differs from parallel's %v — seq/par determinism broken",
					s.Name, virt.Micros(), sr.Iters[0].VirtualUs)
			}
			if med := Median(metricValues(sr, MetricWallNs)); med > 0 {
				sr.ParallelSpeedup = float64(seqWall.Nanoseconds()) / med
			}
		}
		if logf != nil {
			extra := ""
			if sr.ParallelSpeedup > 0 {
				extra = fmt.Sprintf(", %dx shards %.2fx speedup", sr.Shards, sr.ParallelSpeedup)
			}
			logf("hostbench: %-12s %d iters, median %.0f events/sec, %.1f allocs/event%s",
				s.Name, iters, Median(metricValues(sr, MetricEventsPerSec)), Median(metricValues(sr, MetricAllocsPerEvent)), extra)
		}
		f.Suites = append(f.Suites, sr)
	}
	return f, nil
}

// BurnAllocBytes, when non-zero, makes every benchmark profiler allocate
// this many bytes per kernel event — a deliberate host-side slowdown for
// exercising the regression guard (the bench CLI's guard self-test and
// the package tests set it; production runs leave it 0).
var BurnAllocBytes int

// measure runs one suite iteration under a fresh profiler and MemStats
// bracketing.
func measure(s Suite) (Iter, hostprof.Snapshot, error) {
	h := hostprof.New(0) // default stride
	h.BurnAllocBytes = BurnAllocBytes
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	virt, err := s.Run(h)
	wall := time.Since(t0)
	runtime.ReadMemStats(&m1)
	if err != nil {
		return Iter{}, hostprof.Snapshot{}, err
	}
	snap := h.Snapshot()
	it := Iter{
		WallNs:       wall.Nanoseconds(),
		Events:       snap.Events,
		GCPauseNs:    int64(m1.PauseTotalNs - m0.PauseTotalNs),
		MaxHeapDepth: snap.MaxHeapDepth,
		VirtualUs:    virt.Micros(),
	}
	if wall > 0 {
		it.EventsPerSec = float64(snap.Events) / wall.Seconds()
	}
	if snap.Events > 0 {
		it.AllocsPerEvent = float64(m1.Mallocs-m0.Mallocs) / float64(snap.Events)
		it.BytesPerEvent = float64(m1.TotalAlloc-m0.TotalAlloc) / float64(snap.Events)
	}
	return it, snap, nil
}

// WriteFile serializes the artifact (indented, trailing newline).
func WriteFile(path string, f File) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile loads and schema-checks an artifact.
func ReadFile(path string) (File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return File{}, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return File{}, fmt.Errorf("hostbench: %s: %w", path, err)
	}
	if f.Schema != Schema {
		return File{}, fmt.Errorf("hostbench: %s: schema %d, this build reads %d", path, f.Schema, Schema)
	}
	return f, nil
}
