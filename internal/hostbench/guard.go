package hostbench

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// The noise-aware regression guard. Host metrics are noisy in a way
// virtual metrics are not: wall time moves with CPU frequency, co-tenant
// load and GC scheduling. A single fixed threshold either cries wolf or
// sleeps through real regressions, so the guard compares
// median-of-iterations values and derives each metric's tolerance band
// from the baseline's own dispersion (MAD — median absolute deviation),
// floored per metric: wide for wall-clock-coupled metrics, tight for
// allocs/event, which is deterministic per workload and machine-stable.

// Metric names the host metrics the guard tracks per suite.
type Metric string

// Guarded metrics. Direction matters: wall and allocation metrics regress
// upward, events/sec regresses downward.
const (
	MetricWallNs         Metric = "wall_ns"
	MetricEventsPerSec   Metric = "events_per_sec"
	MetricAllocsPerEvent Metric = "allocs_per_event"
	MetricBytesPerEvent  Metric = "bytes_per_event"
)

// higherIsBetter reports the metric's good direction.
func (m Metric) higherIsBetter() bool { return m == MetricEventsPerSec }

// floor is the metric's minimum relative tolerance band: the noise level
// assumed even when the baseline's iterations happened to agree closely
// (e.g. a baseline recorded on an idle machine, compared on a loaded CI
// runner).
func (m Metric) floor() float64 {
	switch m {
	case MetricAllocsPerEvent:
		return 0.10 // deterministic per workload; 10% is a real change
	case MetricBytesPerEvent:
		return 0.15
	default:
		// Wall-coupled metrics swing hard on shared hardware (co-tenant
		// load, frequency scaling, goroutine scheduling); they gate only
		// gross regressions — allocs/event is the precise tripwire.
		return 0.50
	}
}

// GuardOptions tune the comparison.
type GuardOptions struct {
	// MADFactor scales the baseline's MAD into the tolerance band
	// (band = max(floor, MADFactor * MAD/median, RangeFactor * range/median)).
	// 0 selects 5 — roughly "outside anything the baseline's own
	// iterations did".
	MADFactor float64
	// RangeFactor scales the baseline's relative range (max-min over
	// median) into the band. With the few iterations a CI baseline
	// affords, MAD of a heavy-tailed wall-time distribution
	// underestimates its spread; the range is the robust small-n
	// complement. 0 selects 1.5.
	RangeFactor float64
	// FloorScale multiplies every per-metric floor; the -tolerance flag
	// maps onto it (1.0 = the defaults above). 0 selects 1.
	FloorScale float64
	// GateWall makes the wall-coupled metrics (wall_ns, events_per_sec)
	// fail the gate. By default they are advisory — reported, banded and
	// blamed, but not fatal: on shared hardware a co-tenant can double
	// wall time while allocs/event (deterministic per workload) moves
	// 0.1%, so the allocation metrics carry the gate and the wall
	// metrics carry the trend. Set on quiet dedicated runners.
	GateWall bool
}

func (o GuardOptions) withDefaults() GuardOptions {
	if o.MADFactor == 0 {
		o.MADFactor = 5
	}
	if o.RangeFactor == 0 {
		o.RangeFactor = 1.5
	}
	if o.FloorScale == 0 {
		o.FloorScale = 1
	}
	return o
}

// Median returns the median of vs (0 for an empty slice).
func Median(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	s := append([]float64(nil), vs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// MAD returns the median absolute deviation of vs around its median.
func MAD(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	med := Median(vs)
	devs := make([]float64, len(vs))
	for i, v := range vs {
		devs[i] = math.Abs(v - med)
	}
	return Median(devs)
}

// rangeOf returns max - min of vs (0 for an empty slice).
func rangeOf(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	lo, hi := vs[0], vs[0]
	for _, v := range vs[1:] {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	return hi - lo
}

// metricValues extracts one metric's per-iteration samples.
func metricValues(sr SuiteResult, m Metric) []float64 {
	out := make([]float64, 0, len(sr.Iters))
	for _, it := range sr.Iters {
		switch m {
		case MetricWallNs:
			out = append(out, float64(it.WallNs))
		case MetricEventsPerSec:
			out = append(out, it.EventsPerSec)
		case MetricAllocsPerEvent:
			out = append(out, it.AllocsPerEvent)
		case MetricBytesPerEvent:
			out = append(out, it.BytesPerEvent)
		}
	}
	return out
}

// Delta is one (suite, metric) comparison row.
type Delta struct {
	Suite  string  `json:"suite"`
	Metric Metric  `json:"metric"`
	Base   float64 `json:"base"`
	Now    float64 `json:"now"`
	// Ratio is now/base - 1 (signed relative movement).
	Ratio float64 `json:"ratio"`
	// Band is the tolerance the row was judged against.
	Band float64 `json:"band"`
	// Regressed means the movement exceeded the band in the bad
	// direction; improvements never trip the guard.
	Regressed bool `json:"regressed"`
	// Advisory marks a wall-coupled row that reports but never fails the
	// gate (see GuardOptions.GateWall).
	Advisory bool `json:"advisory,omitempty"`
	// Blame names the subsystem whose host-time share grew most, set only
	// on regressed rows of suites with subsystem attribution.
	Blame string `json:"blame,omitempty"`
}

// Report is a full guard comparison.
type Report struct {
	Deltas []Delta
	// Missing lists suites present in only one of the two files (renamed
	// suite sets are reported, not silently skipped).
	Missing []string
}

// Regressions returns the rows that fail the gate (regressed and not
// advisory).
func (r Report) Regressions() []Delta {
	var out []Delta
	for _, d := range r.Deltas {
		if d.Regressed && !d.Advisory {
			out = append(out, d)
		}
	}
	return out
}

// Guard compares a current run against a committed baseline.
func Guard(base, now File, opts GuardOptions) Report {
	opts = opts.withDefaults()
	var rep Report
	baseByName := map[string]SuiteResult{}
	for _, sr := range base.Suites {
		baseByName[sr.Name] = sr
	}
	seen := map[string]bool{}
	for _, cur := range now.Suites {
		seen[cur.Name] = true
		bs, ok := baseByName[cur.Name]
		if !ok {
			rep.Missing = append(rep.Missing, cur.Name+" (no baseline)")
			continue
		}
		for _, m := range []Metric{MetricWallNs, MetricEventsPerSec, MetricAllocsPerEvent, MetricBytesPerEvent} {
			bv, nv := metricValues(bs, m), metricValues(cur, m)
			bmed, nmed := Median(bv), Median(nv)
			if bmed == 0 {
				continue
			}
			band := m.floor() * opts.FloorScale
			if rel := opts.MADFactor * MAD(bv) / math.Abs(bmed); rel > band {
				band = rel
			}
			if rel := opts.RangeFactor * rangeOf(bv) / math.Abs(bmed); rel > band {
				band = rel
			}
			d := Delta{Suite: cur.Name, Metric: m, Base: bmed, Now: nmed, Band: band}
			if m == MetricWallNs || m == MetricEventsPerSec {
				d.Advisory = !opts.GateWall
			}
			d.Ratio = nmed/bmed - 1
			bad := d.Ratio > band
			if m.higherIsBetter() {
				bad = d.Ratio < -band
			}
			if bad {
				d.Regressed = true
				d.Blame = blameSubsys(bs, cur)
			}
			rep.Deltas = append(rep.Deltas, d)
		}
	}
	for _, bs := range base.Suites {
		if !seen[bs.Name] {
			rep.Missing = append(rep.Missing, bs.Name+" (not in current run)")
		}
	}
	return rep
}

// blameSubsys names the subsystem whose share of the suite's host time
// grew most between baseline and current — the critpath blame-diff idea
// applied to wall-clock attribution. Counter-backed growth (allocs
// injected into the event loop, say) shows up in whichever bucket hosts
// the extra work.
func blameSubsys(base, now SuiteResult) string {
	best, bestGrowth := "", 0.0
	for name, share := range now.SubsysShare {
		if g := share - base.SubsysShare[name]; g > bestGrowth {
			best, bestGrowth = name, g
		}
	}
	if best == "" {
		return "kernel" // no attributed growth: the dispatch loop itself
	}
	return best
}

// FormatGuard renders the comparison as the per-suite/per-metric diff
// table the bench guard prints, regressed rows marked and blamed.
func FormatGuard(rep Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "host guard (median of iterations, MAD-derived band):\n")
	fmt.Fprintf(&b, "  %-12s %-16s %12s %12s %8s %7s  %s\n",
		"suite", "metric", "baseline", "now", "delta", "band", "verdict")
	for _, d := range rep.Deltas {
		verdict := "ok"
		switch {
		case d.Regressed && d.Advisory:
			verdict = "slower (advisory, " + d.Blame + ")"
		case d.Regressed:
			verdict = "REGRESSED (" + d.Blame + ")"
		}
		fmt.Fprintf(&b, "  %-12s %-16s %12s %12s %+7.1f%% %6.0f%%  %s\n",
			d.Suite, d.Metric, fmtVal(d.Metric, d.Base), fmtVal(d.Metric, d.Now),
			100*d.Ratio, 100*d.Band, verdict)
	}
	for _, m := range rep.Missing {
		fmt.Fprintf(&b, "  suite mismatch: %s\n", m)
	}
	if regs := rep.Regressions(); len(regs) > 0 {
		fmt.Fprintf(&b, "  %d host metric(s) regressed:", len(regs))
		for _, d := range regs {
			fmt.Fprintf(&b, " %s/%s (blame: %s)", d.Suite, d.Metric, d.Blame)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatTrend renders two artifacts side by side as a trend table —
// cellpilot-trace -host's output. Unlike the guard it applies no
// tolerance judgment; it just shows the movement of every suite's
// headline metrics plus the subsystem share shift.
func FormatTrend(base, now File) string {
	var b strings.Builder
	fmt.Fprintf(&b, "host-cost trend (%s/%s, %d CPUs -> %d CPUs):\n",
		now.Env.GOOS, now.Env.GOARCH, base.Env.NumCPU, now.Env.NumCPU)
	fmt.Fprintf(&b, "  %-12s %-16s %12s %12s %8s\n", "suite", "metric", "base", "now", "delta")
	baseByName := map[string]SuiteResult{}
	for _, sr := range base.Suites {
		baseByName[sr.Name] = sr
	}
	for _, cur := range now.Suites {
		bs, ok := baseByName[cur.Name]
		if !ok {
			fmt.Fprintf(&b, "  %-12s (no baseline)\n", cur.Name)
			continue
		}
		for _, m := range []Metric{MetricEventsPerSec, MetricAllocsPerEvent, MetricWallNs} {
			bmed, nmed := Median(metricValues(bs, m)), Median(metricValues(cur, m))
			if bmed == 0 {
				continue
			}
			fmt.Fprintf(&b, "  %-12s %-16s %12s %12s %+7.1f%%\n",
				cur.Name, m, fmtVal(m, bmed), fmtVal(m, nmed), 100*(nmed/bmed-1))
		}
		if shift := shareShift(bs, cur); shift != "" {
			fmt.Fprintf(&b, "  %-12s %-16s %s\n", cur.Name, "subsys-shift", shift)
		}
	}
	return b.String()
}

// shareShift summarizes the largest subsystem share movements.
func shareShift(base, now SuiteResult) string {
	type mv struct {
		name  string
		delta float64
	}
	var moves []mv
	seen := map[string]bool{}
	for name := range now.SubsysShare {
		seen[name] = true
		moves = append(moves, mv{name, now.SubsysShare[name] - base.SubsysShare[name]})
	}
	for name := range base.SubsysShare {
		if !seen[name] {
			moves = append(moves, mv{name, -base.SubsysShare[name]})
		}
	}
	sort.Slice(moves, func(i, j int) bool {
		ai, aj := math.Abs(moves[i].delta), math.Abs(moves[j].delta)
		if ai != aj {
			return ai > aj
		}
		return moves[i].name < moves[j].name
	})
	var parts []string
	for _, m := range moves {
		if math.Abs(m.delta) < 0.02 {
			break
		}
		parts = append(parts, fmt.Sprintf("%s %+0.1fpp", m.name, 100*m.delta))
		if len(parts) == 3 {
			break
		}
	}
	return strings.Join(parts, ", ")
}

// fmtVal renders a metric value in its natural unit.
func fmtVal(m Metric, v float64) string {
	switch m {
	case MetricWallNs:
		return fmt.Sprintf("%.1fms", v/1e6)
	case MetricEventsPerSec:
		return fmt.Sprintf("%.0f/s", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}
