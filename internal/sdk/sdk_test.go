package sdk

import (
	"bytes"
	"strings"
	"testing"

	"cellpilot/internal/cellbe"
	"cellpilot/internal/sim"
)

func newNode(t *testing.T) (*sim.Kernel, *cellbe.Node) {
	t.Helper()
	k := sim.NewKernel(1)
	return k, cellbe.NewCellNode(k, 0, "cell0", 1, cellbe.DefaultParams(), 1<<20)
}

func TestContextLifecycle(t *testing.T) {
	k, n := newNode(t)
	spe, _ := n.SPE(0)
	ctx, err := ContextCreate(k, spe)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ContextCreate(k, spe); err == nil {
		t.Fatal("double context on one SPE accepted")
	}
	if err := ctx.Run(0, nil); err == nil {
		t.Fatal("Run before Load accepted")
	}
	ran := false
	prog := &Program{Name: "hello", Main: func(c *Context, arg int, env any) {
		if arg != 42 || env.(string) != "env" {
			panic("args not delivered")
		}
		ran = true
	}}
	if err := ctx.Load(prog, 10336); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Run(42, "env"); err != nil {
		t.Fatal(err)
	}
	k.Spawn("ppe", func(p *sim.Proc) {
		ctx.Done.Wait(p)
		if !ctx.Finished() {
			p.Fatalf("Done fired before Finished")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("program did not run")
	}
	ctx.Destroy()
	if _, err := ContextCreate(k, spe); err != nil {
		t.Fatalf("SPE not released: %v", err)
	}
}

func TestLoadRespectsLSBudget(t *testing.T) {
	k, n := newNode(t)
	spe, _ := n.SPE(1)
	ctx, _ := ContextCreate(k, spe)
	big := &Program{Name: "big", CodeSize: 250 * 1024}
	err := ctx.Load(big, 36600) // DaCS-sized runtime cannot fit this code
	if err == nil || !strings.Contains(err.Error(), "local store overflow") {
		t.Fatalf("err = %v", err)
	}
	ok := &Program{Name: "ok", CodeSize: 200 * 1024, Main: func(*Context, int, any) {}}
	if err := ctx.Load(ok, 10336); err != nil {
		t.Fatalf("CellPilot-sized runtime should fit 200K of code: %v", err)
	}
}

func TestMailboxHandshakeAndDMA(t *testing.T) {
	k, n := newNode(t)
	spe, _ := n.SPE(2)
	ctx, _ := ContextCreate(k, spe)
	mainBuf, _ := n.Mem.Alloc(1600, 128)

	prog := &Program{Name: "pingpong", Main: func(c *Context, arg int, env any) {
		p := c.Proc
		lsAddr, err := c.SPE.LS.Alloc("buf", 1600, 128)
		if err != nil {
			p.Fatalf("%v", err)
		}
		w, _ := c.SPE.LS.Window(lsAddr, 1600)
		for i := range w {
			w[i] = byte(arg)
		}
		// DMA the buffer out, then tell the PPE where it lives.
		if err := c.MFCPut(p, lsAddr, mainBuf, 1600, 3); err != nil {
			p.Fatalf("%v", err)
		}
		c.TagWait(p, 1<<3)
		c.WriteOutMbox(p, lsAddr)
		// Wait for the PPE's ack.
		if v := c.ReadInMbox(p); v != 0xAC0 {
			p.Fatalf("bad ack %#x", v)
		}
	}}
	if err := ctx.Load(prog, 10336); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Run(9, nil); err != nil {
		t.Fatal(err)
	}
	k.Spawn("ppe", func(p *sim.Proc) {
		lsAddr := ctx.ReadOutMbox(p)
		mw, _ := n.Mem.Window(mainBuf, 1600)
		if !bytes.Equal(mw, bytes.Repeat([]byte{9}, 1600)) {
			p.Fatalf("DMA content wrong")
		}
		// The PPE can also see the SPE buffer through the EA map.
		ea := ctx.LSBase() + int64(lsAddr)
		win, err := n.EAWindow(ea, 1600)
		if err != nil {
			p.Fatalf("%v", err)
		}
		if !bytes.Equal(win, mw) {
			p.Fatalf("EA view differs from DMA copy")
		}
		ctx.WriteInMbox(p, 0xAC0)
		ctx.Done.Wait(p)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestTryReadOutMboxPolling(t *testing.T) {
	k, n := newNode(t)
	spe, _ := n.SPE(3)
	ctx, _ := ContextCreate(k, spe)
	prog := &Program{Name: "late", Main: func(c *Context, arg int, env any) {
		c.Proc.Advance(100 * sim.Microsecond)
		c.WriteOutMbox(c.Proc, 55)
	}}
	if err := ctx.Load(prog, 0); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Run(0, nil); err != nil {
		t.Fatal(err)
	}
	k.Spawn("poller", func(p *sim.Proc) {
		polls := 0
		for {
			if v, ok := ctx.TryReadOutMbox(p); ok {
				if v != 55 {
					p.Fatalf("got %d", v)
				}
				break
			}
			polls++
			p.Advance(10 * sim.Microsecond)
		}
		if polls == 0 {
			p.Fatalf("message was available immediately; polling untested")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleRunRejected(t *testing.T) {
	k, n := newNode(t)
	spe, _ := n.SPE(4)
	ctx, _ := ContextCreate(k, spe)
	blocker := sim.NewEvent(k, "hold")
	prog := &Program{Name: "spin", Main: func(c *Context, arg int, env any) {
		blocker.Wait(c.Proc)
	}}
	if err := ctx.Load(prog, 0); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Run(0, nil); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Run(0, nil); err == nil {
		t.Fatal("second Run accepted while running")
	}
	k.Spawn("release", func(p *sim.Proc) { blocker.Fire() })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}
