package sdk

import (
	"strings"
	"testing"

	"cellpilot/internal/cellbe"
	"cellpilot/internal/sim"
)

func TestSignalORAccumulates(t *testing.T) {
	k, n := newNode(t)
	spe, _ := n.SPE(5)
	ctx, _ := ContextCreate(k, spe)
	var got uint32
	prog := &Program{Name: "sig", Main: func(c *Context, _ int, _ any) {
		c.Proc.Advance(20 * sim.Microsecond) // let both senders write first
		got = c.ReadSignal1(c.Proc)
	}}
	if err := ctx.Load(prog, 0); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Run(0, nil); err != nil {
		t.Fatal(err)
	}
	// Two independent senders each set one bit before the SPU reads.
	k.Spawn("sender1", func(p *sim.Proc) {
		p.Advance(5 * sim.Microsecond)
		ctx.SignalWrite(p, 1, 1<<3)
	})
	k.Spawn("sender2", func(p *sim.Proc) {
		p.Advance(2 * sim.Microsecond)
		ctx.SignalWrite(p, 1, 1<<7)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 1<<3|1<<7 {
		t.Fatalf("OR-mode signal = %#x", got)
	}
	if spe.SNR1.Pending() != 0 {
		t.Fatal("read did not clear the register")
	}
}

func TestSignalOverwriteMode(t *testing.T) {
	k, n := newNode(t)
	spe, _ := n.SPE(6)
	ctx, _ := ContextCreate(k, spe)
	prog := &Program{Name: "sig2", Main: func(c *Context, _ int, _ any) {
		c.Proc.Advance(50 * sim.Microsecond) // both writes land first
		if v := c.ReadSignal2(c.Proc); v != 42 {
			c.Proc.Fatalf("overwrite-mode signal = %d, want the last write", v)
		}
	}}
	if err := ctx.Load(prog, 0); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Run(0, nil); err != nil {
		t.Fatal(err)
	}
	k.Spawn("writer", func(p *sim.Proc) {
		ctx.SignalWrite(p, 2, 7)
		ctx.SignalWrite(p, 2, 42)
		if err := ctx.SignalWrite(p, 3, 1); err == nil {
			p.Fatalf("signal register 3 accepted")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSignalBlocksUntilWritten(t *testing.T) {
	k, n := newNode(t)
	spe, _ := n.SPE(7)
	ctx, _ := ContextCreate(k, spe)
	var readAt sim.Time
	prog := &Program{Name: "waiter", Main: func(c *Context, _ int, _ any) {
		c.ReadSignal1(c.Proc)
		readAt = c.Proc.Now()
	}}
	if err := ctx.Load(prog, 0); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Run(0, nil); err != nil {
		t.Fatal(err)
	}
	k.Spawn("late", func(p *sim.Proc) {
		p.Advance(300 * sim.Microsecond)
		ctx.SignalWrite(p, 1, 1)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if readAt < 300*sim.Microsecond {
		t.Fatalf("signal read returned at %s, before the write", readAt)
	}
}

func TestOverlayLoadAndBudget(t *testing.T) {
	k, n := newNode(t)
	spe, _ := n.SPE(1)
	ctx, _ := ContextCreate(k, spe)
	prog := &Program{Name: "seg", CodeSize: 40 * 1024, OverlaySize: 32 * 1024,
		Main: func(c *Context, _ int, _ any) {
			p := c.Proc
			start := p.Now()
			if err := c.LoadOverlay(p, "phase2", 30*1024); err != nil {
				p.Fatalf("%v", err)
			}
			if p.Now() == start {
				p.Fatalf("overlay load charged no time")
			}
			if err := c.LoadOverlay(p, "too-big", 48*1024); err == nil {
				p.Fatalf("oversized overlay accepted")
			}
		}}
	if err := ctx.Load(prog, 10336); err != nil {
		t.Fatal(err)
	}
	// The overlay region participates in the LS budget.
	want := 10336 + 40*1024 + 32*1024 + cellbe.DefaultParams().StackReserve
	if spe.LS.Resident() != want {
		t.Fatalf("resident = %d, want %d", spe.LS.Resident(), want)
	}
	if err := ctx.Run(0, nil); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestOverlayBeforeLoadRejected(t *testing.T) {
	k, n := newNode(t)
	spe, _ := n.SPE(2)
	ctx, _ := ContextCreate(k, spe)
	k.Spawn("p", func(p *sim.Proc) {
		err := ctx.LoadOverlay(p, "x", 10)
		if err == nil || !strings.Contains(err.Error(), "before Load") {
			p.Fatalf("err = %v", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}
