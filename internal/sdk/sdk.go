// Package sdk is the simulated counterpart of IBM's SPE Runtime Management
// Library (libspe2): SPE program handles, contexts, program load and run,
// mailbox access from both sides, and MFC DMA entry points. CellPilot's
// implementation sits on exactly these functions (the paper uses "only the
// basic functions in libspe2"), and the hand-coded benchmark baselines are
// written directly against this API.
//
// Mapping to libspe2: Program ≈ spe_program_handle_t, Context ≈
// spe_context_t, Context.Run ≈ spe_context_run (spawned on a thread by the
// caller, as PPE code does), WriteInMbox ≈ spe_in_mbox_write, ReadOutMbox ≈
// spe_out_mbox_read, and the MFC methods ≈ mfc_put/mfc_get plus
// mfc_write_tag_mask/mfc_read_tag_status_all on the SPU side.
package sdk

import (
	"fmt"

	"cellpilot/internal/cellbe"
	"cellpilot/internal/sim"
)

// Program is an SPE executable: a Go function standing in for the SPU
// object code that the Cell toolchain would embed into the PPE binary.
type Program struct {
	// Name identifies the program in traces and errors.
	Name string
	// CodeSize is the local-store bytes its text+data segments occupy
	// (0 = the model's default). It participates in the 256 KB budget.
	CodeSize int
	// OverlaySize reserves a code-overlay region in the local store. The
	// paper notes programmers "may need to divide up their application
	// code accordingly, for which an overlay capability is available";
	// segments are swapped in at run time with LoadOverlay.
	OverlaySize int
	// Main is the program entry point, running in SPE context.
	Main func(ctx *Context, arg int, env any)
}

// Context is a loaded SPE context: one program occupying one SPE.
type Context struct {
	SPE  *cellbe.SPE
	Prog *Program
	// Done fires when the program returns; PPE code waits on it like the
	// pthread join around spe_context_run.
	Done *sim.Event
	// Proc is the sim proc running the program (nil until Run).
	Proc *sim.Proc

	k        *sim.Kernel
	runtime  int // library footprint loaded with the program
	loaded   bool
	running  bool
	finished bool
}

// ContextCreate claims an idle SPE (spe_context_create).
func ContextCreate(k *sim.Kernel, spe *cellbe.SPE) (*Context, error) {
	if spe.Busy {
		return nil, fmt.Errorf("sdk: %s is already running a context", spe.Name())
	}
	spe.Busy = true
	return &Context{SPE: spe, k: k, Done: sim.NewEvent(k, spe.Name()+"/done")}, nil
}

// Load places a program image in the SPE local store
// (spe_program_load). runtimeFootprint is the resident library size —
// cellpilot.o or libdacs.a in the paper's measurements — and is charged
// against the 256 KB alongside the program's code and stack reserve.
func (c *Context) Load(prog *Program, runtimeFootprint int) error {
	par := c.SPE.Cell.Node.Params
	code := prog.CodeSize
	if code == 0 {
		code = par.DefaultCodeSize
	}
	image := runtimeFootprint + code + prog.OverlaySize + par.StackReserve
	if err := c.SPE.LS.LoadImage(prog.Name, image); err != nil {
		return fmt.Errorf("sdk: loading %s onto %s: %w", prog.Name, c.SPE.Name(), err)
	}
	c.Prog = prog
	c.runtime = runtimeFootprint
	c.loaded = true
	return nil
}

// Run starts the loaded program with the given argument and environment
// pointer (spe_context_run, on its own thread as PPE code always arranges).
// It returns immediately; wait on Done for completion.
func (c *Context) Run(arg int, env any) error {
	if !c.loaded {
		return fmt.Errorf("sdk: Run on %s before Load", c.SPE.Name())
	}
	if c.running {
		return fmt.Errorf("sdk: %s context already running", c.SPE.Name())
	}
	c.running = true
	name := fmt.Sprintf("%s:%s", c.SPE.Name(), c.Prog.Name)
	c.Proc = c.k.Spawn(name, func(p *sim.Proc) {
		c.Prog.Main(c, arg, env)
		c.finished = true
		c.running = false
		c.Done.Fire()
	})
	return nil
}

// Destroy releases the SPE (spe_context_destroy).
func (c *Context) Destroy() {
	c.SPE.Busy = false
	c.loaded = false
}

// Finished reports whether the program has returned.
func (c *Context) Finished() bool { return c.finished }

// --- SPU-side operations (called from within Prog.Main) ---

// WriteOutMbox writes to the SPE→PPE mailbox (spu_write_out_mbox); it
// stalls while the single-entry mailbox is full.
func (c *Context) WriteOutMbox(p *sim.Proc, v uint32) { c.SPE.OutMbox.Write(p, v) }

// WriteOutMboxCtl is WriteOutMbox bounded by an absolute deadline (0 =
// none) and an optional stop predicate, so a stub whose Co-Pilot died is
// not parked forever against a full mailbox.
func (c *Context) WriteOutMboxCtl(p *sim.Proc, v uint32, deadline sim.Time, stop func() error) error {
	return c.SPE.OutMbox.WriteCtl(p, v, deadline, stop)
}

// ReadInMbox reads the PPE→SPE mailbox (spu_read_in_mbox), stalling while
// empty.
func (c *Context) ReadInMbox(p *sim.Proc) uint32 { return c.SPE.InMbox.Read(p) }

// ReadInMboxCtl is ReadInMbox bounded by an absolute deadline (0 = none)
// and an optional stop predicate; the hardened SPE stub uses it to bound
// its wait for the Co-Pilot's acknowledgement.
func (c *Context) ReadInMboxCtl(p *sim.Proc, deadline sim.Time, stop func() error) (uint32, error) {
	return c.SPE.InMbox.ReadCtl(p, deadline, stop)
}

// MFCPut issues a DMA from local store to an effective address (mfc_put
// followed by tag bookkeeping).
func (c *Context) MFCPut(p *sim.Proc, lsAddr uint32, ea int64, size, tag int) error {
	return c.SPE.MFC.Put(p, lsAddr, ea, size, tag)
}

// MFCGet issues a DMA from an effective address into local store (mfc_get).
func (c *Context) MFCGet(p *sim.Proc, lsAddr uint32, ea int64, size, tag int) error {
	return c.SPE.MFC.Get(p, lsAddr, ea, size, tag)
}

// MFCPutList issues a scatter DMA list (mfc_putl): consecutive LS data to
// scattered effective addresses under one tag.
func (c *Context) MFCPutList(p *sim.Proc, lsAddr uint32, list []cellbe.ListElement, tag int) error {
	return c.SPE.MFC.PutList(p, lsAddr, list, tag)
}

// MFCGetList issues a gather DMA list (mfc_getl).
func (c *Context) MFCGetList(p *sim.Proc, lsAddr uint32, list []cellbe.ListElement, tag int) error {
	return c.SPE.MFC.GetList(p, lsAddr, list, tag)
}

// TagWait blocks until DMAs on the masked tags complete
// (mfc_write_tag_mask + mfc_read_tag_status_all).
func (c *Context) TagWait(p *sim.Proc, mask uint32) { c.SPE.MFC.TagWait(p, mask) }

// --- PPE-side operations (called by the process managing the SPE) ---

// WriteInMbox writes the PPE→SPE mailbox (spe_in_mbox_write).
func (c *Context) WriteInMbox(p *sim.Proc, v uint32) { c.SPE.InMbox.Write(p, v) }

// ReadOutMbox reads the SPE→PPE mailbox (spe_out_mbox_read), stalling
// while empty.
func (c *Context) ReadOutMbox(p *sim.Proc) uint32 { return c.SPE.OutMbox.Read(p) }

// TryReadOutMbox polls the SPE→PPE mailbox (spe_out_mbox_status +
// conditional read) without stalling.
func (c *Context) TryReadOutMbox(p *sim.Proc) (uint32, bool) { return c.SPE.OutMbox.TryRead(p) }

// ReadOutMboxTimeout is ReadOutMbox bounded by a relative timeout; ok is
// false when no word arrived in time. The hardened Co-Pilot uses it to
// bound descriptor reads so a dropped mailbox word cannot wedge the
// service loop.
func (c *Context) ReadOutMboxTimeout(p *sim.Proc, d sim.Time) (uint32, bool) {
	return c.SPE.OutMbox.ReadTimeout(p, d)
}

// LSBase reports the effective address of the SPE's memory-mapped local
// store (spe_ls_area_get) — the mechanism Co-Pilot uses to address SPE
// buffers directly.
func (c *Context) LSBase() int64 { return c.SPE.LSBase() }

// ReadSignal1 blocks until SNR1 (OR mode) is non-zero, returning and
// clearing it (spu_read_signal1). SPU side.
func (c *Context) ReadSignal1(p *sim.Proc) uint32 { return c.SPE.SNR1.Read(p) }

// ReadSignal2 blocks until SNR2 (overwrite mode) is non-zero
// (spu_read_signal2). SPU side.
func (c *Context) ReadSignal2(p *sim.Proc) uint32 { return c.SPE.SNR2.Read(p) }

// SignalWrite delivers a value to one of the context's signal registers
// (spe_signal_write; reg is 1 or 2). Callable from the PPE or, through
// the problem-state mapping, from another SPE's program.
func (c *Context) SignalWrite(p *sim.Proc, reg int, v uint32) error {
	switch reg {
	case 1:
		c.SPE.SNR1.Write(p, v)
	case 2:
		c.SPE.SNR2.Write(p, v)
	default:
		return fmt.Errorf("sdk: no signal register %d", reg)
	}
	return nil
}

// LoadOverlay swaps a code segment of size bytes into the program's
// overlay region (the toolchain's overlay manager). It charges the DMA
// time to pull the segment from main storage and fails if the program
// reserved no large-enough region.
func (c *Context) LoadOverlay(p *sim.Proc, name string, size int) error {
	if !c.loaded || c.Prog == nil {
		return fmt.Errorf("sdk: LoadOverlay before Load")
	}
	if size <= 0 || size > c.Prog.OverlaySize {
		return fmt.Errorf("sdk: overlay %q needs %d bytes but %s reserved %d",
			name, size, c.Prog.Name, c.Prog.OverlaySize)
	}
	par := c.SPE.Cell.Node.Params
	p.Advance(par.DMASetup)
	done := c.SPE.Cell.EIB.Reserve(size)
	p.AdvanceTo(done)
	return nil
}
