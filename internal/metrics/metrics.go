// Package metrics provides the small counter/histogram registry the
// CellPilot observability layer aggregates into: fixed-bucket histograms
// (latency, payload size, bandwidth, queue depth) and monotonic counters,
// keyed by name. Everything is plain host-side arithmetic — observing a
// value costs zero virtual time, so an instrumented run reproduces the
// timings of an uninstrumented one exactly.
//
// The registry is used from simulation context only, which is
// single-threaded by construction, so no locking is needed.
package metrics

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Counter is a monotonic count.
type Counter struct {
	n int64
}

// Inc adds one.
func (c *Counter) Inc() { c.n++ }

// Add adds d.
func (c *Counter) Add(d int64) { c.n += d }

// Value reports the current count.
func (c *Counter) Value() int64 { return c.n }

// Gauge is an instantaneous value: a queue watermark, a utilization
// percentage, a resident count. Unlike a Counter it can move both ways.
type Gauge struct {
	v float64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.v = v }

// Add shifts the value by d.
func (g *Gauge) Add(d float64) { g.v += d }

// SetMax raises the value to v if v is larger — watermark tracking.
func (g *Gauge) SetMax(v float64) {
	if v > g.v {
		g.v = v
	}
}

// Value reports the current value.
func (g *Gauge) Value() float64 { return g.v }

// Histogram is a fixed-bucket histogram: bounds[i] is the inclusive upper
// edge of bucket i, with one implicit overflow bucket past the last bound.
type Histogram struct {
	bounds []float64
	counts []int64
	count  int64
	sum    float64
	min    float64
	max    float64
}

// NewHistogram creates a histogram over the given ascending bucket upper
// bounds. It panics on empty or unsorted bounds — bucket layouts are
// compiled into the program, so a bad one is a programming error.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("metrics: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: bucket bounds not ascending at %d: %g <= %g", i, bounds[i], bounds[i-1]))
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]int64, len(bounds)+1),
		min:    math.Inf(1),
		max:    math.Inf(-1),
	}
}

// ExpBuckets builds n bounds starting at start, each factor times the
// previous — the layout used for latency and bandwidth histograms.
func ExpBuckets(start, factor float64, n int) []float64 {
	if n <= 0 || start <= 0 || factor <= 1 {
		panic("metrics: ExpBuckets needs start > 0, factor > 1, n > 0")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBuckets builds n bounds start, start+width, ... — the layout used
// for queue-depth histograms.
func LinearBuckets(start, width float64, n int) []float64 {
	if n <= 0 || width <= 0 {
		panic("metrics: LinearBuckets needs width > 0, n > 0")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count reports the number of observations.
func (h *Histogram) Count() int64 { return h.count }

// Sum reports the sum of observations.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean reports the average observation, or 0 when empty.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min reports the smallest observation, or 0 when empty.
func (h *Histogram) Min() float64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max reports the largest observation, or 0 when empty.
func (h *Histogram) Max() float64 {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Bounds returns a copy of the bucket upper bounds.
func (h *Histogram) Bounds() []float64 { return append([]float64(nil), h.bounds...) }

// Counts returns a copy of the per-bucket counts; the last entry is the
// overflow bucket.
func (h *Histogram) Counts() []int64 { return append([]int64(nil), h.counts...) }

// Quantile estimates the q-quantile (0..1) by linear interpolation within
// the containing bucket, clamped to the observed min/max. It returns 0
// when the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min()
	}
	if q >= 1 {
		return h.Max()
	}
	target := q * float64(h.count)
	var cum int64
	for i, c := range h.counts {
		if float64(cum+c) < target {
			cum += c
			continue
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.max
		if i < len(h.bounds) && h.bounds[i] < hi {
			hi = h.bounds[i]
		}
		if hi < lo {
			hi = lo
		}
		frac := 0.0
		if c > 0 {
			frac = (target - float64(cum)) / float64(c)
		}
		v := lo + frac*(hi-lo)
		if v < h.Min() {
			v = h.Min()
		}
		if v > h.Max() {
			v = h.Max()
		}
		return v
	}
	return h.Max()
}

// String renders a one-line digest.
func (h *Histogram) String() string {
	if h.count == 0 {
		return "count=0"
	}
	return fmt.Sprintf("count=%d mean=%.2f min=%.2f p50=%.2f p99=%.2f max=%.2f",
		h.count, h.Mean(), h.Min(), h.Quantile(0.5), h.Quantile(0.99), h.Max())
}

// Registry is a named collection of counters, gauges and histograms.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Histogram returns the named histogram, creating it with the given bounds
// on first use (later calls ignore bounds).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// LookupHistogram returns the named histogram, or nil.
func (r *Registry) LookupHistogram(name string) *Histogram { return r.hists[name] }

// LookupCounter returns an existing counter or nil, never creating one —
// for read-only samplers that must not mutate the registry.
func (r *Registry) LookupCounter(name string) *Counter { return r.counters[name] }

// LookupGauge returns the named gauge, or nil.
func (r *Registry) LookupGauge(name string) *Gauge { return r.gauges[name] }

// GaugeNames reports the registered gauge names, sorted.
func (r *Registry) GaugeNames() []string {
	out := make([]string, 0, len(r.gauges))
	for name := range r.gauges {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Clone returns a deep copy of the registry: an immutable snapshot that
// can cross goroutine boundaries (the live-export path publishes clones
// to the HTTP handler while the simulation keeps mutating the original).
func (r *Registry) Clone() *Registry {
	out := NewRegistry()
	for name, c := range r.counters {
		out.counters[name] = &Counter{n: c.n}
	}
	for name, g := range r.gauges {
		out.gauges[name] = &Gauge{v: g.v}
	}
	for name, h := range r.hists {
		out.hists[name] = &Histogram{
			bounds: append([]float64(nil), h.bounds...),
			counts: append([]int64(nil), h.counts...),
			count:  h.count, sum: h.sum, min: h.min, max: h.max,
		}
	}
	return out
}

// CounterNames reports the registered counter names, sorted.
func (r *Registry) CounterNames() []string {
	out := make([]string, 0, len(r.counters))
	for name := range r.counters {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// HistogramNames reports the registered histogram names, sorted.
func (r *Registry) HistogramNames() []string {
	out := make([]string, 0, len(r.hists))
	for name := range r.hists {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Dump renders every metric as plain text, sorted by name within each
// section (counters, then gauges, then histograms).
func (r *Registry) Dump() string {
	var b strings.Builder
	for _, name := range r.CounterNames() {
		fmt.Fprintf(&b, "%-40s %d\n", name, r.counters[name].Value())
	}
	for _, name := range r.GaugeNames() {
		fmt.Fprintf(&b, "%-40s %g\n", name, r.gauges[name].Value())
	}
	for _, name := range r.HistogramNames() {
		fmt.Fprintf(&b, "%-40s %s\n", name, r.hists[name])
	}
	return b.String()
}

// histogramJSON is the wire form of a histogram.
type histogramJSON struct {
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	Min    float64   `json:"min"`
	Max    float64   `json:"max"`
	Mean   float64   `json:"mean"`
	P50    float64   `json:"p50"`
	P99    float64   `json:"p99"`
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
}

// MarshalJSON renders the registry as
// {"counters": {...}, "gauges": {...}, "histograms": {...}} with the keys
// of every object emitted in explicit sorted order, so two snapshots of
// the same state are byte-identical and diffable — goldens built on
// /metrics.json never churn from map-iteration order.
func (r *Registry) MarshalJSON() ([]byte, error) {
	var b bytes.Buffer
	b.WriteString(`{"counters":{`)
	for i, name := range r.CounterNames() {
		writeKey(&b, i, name)
		fmt.Fprintf(&b, "%d", r.counters[name].Value())
	}
	b.WriteString(`},"gauges":{`)
	for i, name := range r.GaugeNames() {
		writeKey(&b, i, name)
		v, err := json.Marshal(r.gauges[name].Value())
		if err != nil {
			return nil, err
		}
		b.Write(v)
	}
	b.WriteString(`},"histograms":{`)
	for i, name := range r.HistogramNames() {
		writeKey(&b, i, name)
		h := r.hists[name]
		v, err := json.Marshal(histogramJSON{
			Count: h.Count(), Sum: h.Sum(), Min: h.Min(), Max: h.Max(),
			Mean: h.Mean(), P50: h.Quantile(0.5), P99: h.Quantile(0.99),
			Bounds: h.Bounds(), Counts: h.Counts(),
		})
		if err != nil {
			return nil, err
		}
		b.Write(v)
	}
	b.WriteString("}}")
	return b.Bytes(), nil
}

// writeKey emits the separator and quoted key for the i-th object member.
func writeKey(b *bytes.Buffer, i int, name string) {
	if i > 0 {
		b.WriteByte(',')
	}
	k, _ := json.Marshal(name)
	b.Write(k)
	b.WriteByte(':')
}
