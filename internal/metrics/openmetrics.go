package metrics

import (
	"fmt"
	"io"
	"strconv"
)

// sanitizeName maps a registry name ("chan/type2/latency_us") onto the
// Prometheus metric-name alphabet [a-zA-Z0-9_:], prefixed so every
// exported series is namespaced under cellpilot_.
func sanitizeName(name string) string {
	out := make([]byte, 0, len(name)+len("cellpilot_"))
	out = append(out, "cellpilot_"...)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			out = append(out, c)
		case c >= '0' && c <= '9':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteOpenMetrics renders the registry in the Prometheus text exposition
// format (version 0.0.4, which OpenMetrics scrapers also accept):
// counters, gauges, and histograms with cumulative le-labelled buckets.
// Output is sorted by name, so it is deterministic.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	for _, name := range r.CounterNames() {
		n := sanitizeName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, r.counters[name].Value()); err != nil {
			return err
		}
	}
	for _, name := range r.GaugeNames() {
		n := sanitizeName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", n, n, fmtFloat(r.gauges[name].Value())); err != nil {
			return err
		}
	}
	for _, name := range r.HistogramNames() {
		h := r.hists[name]
		n := sanitizeName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", n); err != nil {
			return err
		}
		var cum int64
		bounds := h.bounds
		for i, c := range h.counts {
			cum += c
			le := "+Inf"
			if i < len(bounds) {
				le = fmtFloat(bounds[i])
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", n, le, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", n, fmtFloat(h.sum), n, h.count); err != nil {
			return err
		}
	}
	return nil
}
