package metrics

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram([]float64{1, 10})
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("empty count/sum = %d/%g", h.Count(), h.Sum())
	}
	if h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("empty mean/min/max = %g/%g/%g", h.Mean(), h.Min(), h.Max())
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if v := h.Quantile(q); v != 0 {
			t.Fatalf("empty Quantile(%g) = %g", q, v)
		}
	}
}

func TestHistogramSingleObservation(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	h.Observe(7)
	if h.Count() != 1 || h.Sum() != 7 || h.Mean() != 7 {
		t.Fatalf("count/sum/mean = %d/%g/%g", h.Count(), h.Sum(), h.Mean())
	}
	if h.Min() != 7 || h.Max() != 7 {
		t.Fatalf("min/max = %g/%g", h.Min(), h.Max())
	}
	// Every quantile of a one-sample distribution is that sample.
	for _, q := range []float64{0, 0.5, 1} {
		if v := h.Quantile(q); v != 7 {
			t.Fatalf("Quantile(%g) = %g, want 7", q, v)
		}
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	h := NewHistogram([]float64{1, 10})
	h.Observe(5)
	h.Observe(1e9) // beyond the last bound: lands in the +Inf bucket
	counts := h.Counts()
	if len(counts) != 3 {
		t.Fatalf("len(counts) = %d, want bounds+1", len(counts))
	}
	if counts[2] != 1 {
		t.Fatalf("+Inf bucket = %d, want 1", counts[2])
	}
	if h.Max() != 1e9 {
		t.Fatalf("max = %g", h.Max())
	}
	// Quantiles drawn from the overflow bucket must stay finite: clamped
	// to the observed max, not +Inf.
	if q := h.Quantile(0.99); math.IsInf(q, 0) || q > h.Max() {
		t.Fatalf("overflow quantile = %g", q)
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("depth")
	g.Set(4)
	g.Add(-1)
	if g.Value() != 3 {
		t.Fatalf("gauge = %g", g.Value())
	}
	g.SetMax(2) // lower: no-op
	if g.Value() != 3 {
		t.Fatalf("SetMax lowered the gauge to %g", g.Value())
	}
	g.SetMax(9)
	if g.Value() != 9 {
		t.Fatalf("SetMax did not raise the gauge: %g", g.Value())
	}
	if r.Gauge("depth") != g {
		t.Fatal("gauge not memoized")
	}
	if r.LookupGauge("missing") != nil {
		t.Fatal("lookup of missing gauge should be nil")
	}
}

func TestDumpAndJSONDeterministic(t *testing.T) {
	build := func(order []string) *Registry {
		r := NewRegistry()
		for _, n := range order {
			r.Counter("c/" + n).Inc()
			r.Gauge("g/" + n).Set(1)
			r.Histogram("h/"+n, []float64{1}).Observe(0.5)
		}
		return r
	}
	a := build([]string{"alpha", "beta", "gamma"})
	b := build([]string{"gamma", "alpha", "beta"})
	if a.Dump() != b.Dump() {
		t.Fatalf("Dump depends on insertion order:\n%s\nvs\n%s", a.Dump(), b.Dump())
	}
	ja, err := a.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	jb, err := b.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja, jb) {
		t.Fatalf("MarshalJSON depends on insertion order:\n%s\nvs\n%s", ja, jb)
	}
	var omA, omB bytes.Buffer
	if err := a.WriteOpenMetrics(&omA); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteOpenMetrics(&omB); err != nil {
		t.Fatal(err)
	}
	if omA.String() != omB.String() {
		t.Fatal("WriteOpenMetrics depends on insertion order")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	r := NewRegistry()
	r.Counter("ops").Add(2)
	r.Gauge("depth").Set(5)
	r.Histogram("lat", []float64{1, 10}).Observe(3)
	c := r.Clone()

	r.Counter("ops").Inc()
	r.Gauge("depth").Set(9)
	r.Histogram("lat", nil).Observe(4)

	if c.Counter("ops").Value() != 2 {
		t.Fatalf("clone counter = %d", c.Counter("ops").Value())
	}
	if c.Gauge("depth").Value() != 5 {
		t.Fatalf("clone gauge = %g", c.Gauge("depth").Value())
	}
	if c.Histogram("lat", nil).Count() != 1 {
		t.Fatalf("clone histogram count = %d", c.Histogram("lat", nil).Count())
	}
}

func TestWriteOpenMetricsContent(t *testing.T) {
	r := NewRegistry()
	r.Counter("chan/type2/ops").Add(3)
	r.Gauge("link/eib@cell0/utilization").Set(0.25)
	h := r.Histogram("lat_us", []float64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(5000)
	var buf bytes.Buffer
	if err := r.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE cellpilot_chan_type2_ops counter",
		"cellpilot_chan_type2_ops 3",
		"# TYPE cellpilot_link_eib_cell0_utilization gauge",
		"cellpilot_link_eib_cell0_utilization 0.25",
		"# TYPE cellpilot_lat_us histogram",
		`cellpilot_lat_us_bucket{le="10"} 1`,
		`cellpilot_lat_us_bucket{le="100"} 2`,
		`cellpilot_lat_us_bucket{le="+Inf"} 3`,
		"cellpilot_lat_us_sum 5055",
		"cellpilot_lat_us_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("OpenMetrics output lacks %q:\n%s", want, out)
		}
	}
}

func TestPublisherEndpoint(t *testing.T) {
	pub := NewPublisher()
	srv := httptest.NewServer(pub.Handler())
	defer srv.Close()

	// Scrapeable before the first Publish: empty but well-formed.
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("content type = %q", ct)
	}
	resp.Body.Close()

	r := NewRegistry()
	r.Counter("scrapes").Add(7)
	pub.Publish(r)
	r.Counter("scrapes").Add(100) // post-publish mutation must not leak

	resp, err = srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "cellpilot_scrapes 7") {
		t.Fatalf("served snapshot:\n%s", body)
	}

	resp, err = srv.Client().Get(srv.URL + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("json content type = %q", ct)
	}
	if !strings.Contains(string(body), `"scrapes":7`) {
		t.Fatalf("json snapshot:\n%s", body)
	}

	// Publish(nil) keeps the previous snapshot instead of clearing it.
	pub.Publish(nil)
	if pub.Snapshot().Counter("scrapes").Value() != 7 {
		t.Fatal("Publish(nil) replaced the snapshot")
	}
}

// The JSON snapshot must emit keys in sorted order — not merely be
// deterministic — so /metrics.json diffs line up across snapshots.
func TestMarshalJSONKeyOrder(t *testing.T) {
	r := NewRegistry()
	for _, n := range []string{"zeta", "alpha", "mid/dle"} {
		r.Counter("c/" + n).Inc()
		r.Gauge("g/" + n).Set(2)
		r.Histogram("h/"+n, []float64{1}).Observe(0.5)
	}
	data, err := r.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(data) {
		t.Fatalf("invalid JSON: %s", data)
	}
	// The three name families appear with their members sorted, in the
	// raw byte stream (encoding/json would hide ordering after decode).
	for _, section := range []string{"c/", "g/", "h/"} {
		want := []string{section + "alpha", section + "mid/dle", section + "zeta"}
		last := -1
		for _, name := range want {
			at := bytes.Index(data, []byte(`"`+name+`"`))
			if at < 0 {
				t.Fatalf("key %q missing from %s", name, data)
			}
			if at < last {
				t.Fatalf("key %q out of sorted order in %s", name, data)
			}
			last = at
		}
	}
	// The top-level sections are ordered too.
	ci := bytes.Index(data, []byte(`"counters"`))
	gi := bytes.Index(data, []byte(`"gauges"`))
	hi := bytes.Index(data, []byte(`"histograms"`))
	if !(ci < gi && gi < hi) {
		t.Fatalf("section order counters=%d gauges=%d histograms=%d", ci, gi, hi)
	}
}

// /timeline.json serves "{}" until a timeline is published, then the
// exact bytes handed to PublishTimeline.
func TestPublisherTimelineEndpoint(t *testing.T) {
	pub := NewPublisher()
	srv := httptest.NewServer(pub.Handler())
	defer srv.Close()

	get := func() string {
		resp, err := srv.Client().Get(srv.URL + "/timeline.json")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("content type = %q", ct)
		}
		body, _ := io.ReadAll(resp.Body)
		return string(body)
	}
	if got := strings.TrimSpace(get()); got != "{}" {
		t.Fatalf("pre-publish timeline = %q, want {}", got)
	}
	pub.PublishTimeline([]byte(`{"windows":3}`))
	if got := get(); got != `{"windows":3}` {
		t.Fatalf("published timeline = %q", got)
	}
	pub.PublishTimeline(nil)
	if got := strings.TrimSpace(get()); got != "{}" {
		t.Fatalf("reset timeline = %q, want {}", got)
	}
}
