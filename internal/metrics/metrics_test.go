package metrics

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 5, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Min() != 0.5 || h.Max() != 500 {
		t.Fatalf("min/max = %g/%g", h.Min(), h.Max())
	}
	if got := h.Sum(); got != 560.5 {
		t.Fatalf("sum = %g", got)
	}
	counts := h.Counts()
	want := []int64{1, 2, 1, 1}
	for i, c := range want {
		if counts[i] != c {
			t.Fatalf("bucket %d = %d, want %d", i, counts[i], c)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(ExpBuckets(1, 2, 10))
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty quantile should be 0")
	}
	for i := 0; i < 100; i++ {
		h.Observe(float64(i + 1))
	}
	p50 := h.Quantile(0.5)
	if p50 < 30 || p50 > 70 {
		t.Fatalf("p50 = %g, want near 50", p50)
	}
	if q := h.Quantile(0); q != h.Min() {
		t.Fatalf("q0 = %g", q)
	}
	if q := h.Quantile(1); q != h.Max() {
		t.Fatalf("q1 = %g", q)
	}
	if q := h.Quantile(0.999); q > h.Max() {
		t.Fatalf("q999 = %g exceeds max %g", q, h.Max())
	}
}

func TestBucketBuilders(t *testing.T) {
	exp := ExpBuckets(1, 10, 4)
	want := []float64{1, 10, 100, 1000}
	for i := range want {
		if exp[i] != want[i] {
			t.Fatalf("exp[%d] = %g", i, exp[i])
		}
	}
	lin := LinearBuckets(0, 2, 3)
	wantLin := []float64{0, 2, 4}
	for i := range wantLin {
		if lin[i] != wantLin[i] {
			t.Fatalf("lin[%d] = %g", i, lin[i])
		}
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Counter("ops").Add(3)
	r.Counter("ops").Inc()
	h := r.Histogram("lat", []float64{1, 10})
	h.Observe(4)
	if r.Counter("ops").Value() != 4 {
		t.Fatalf("ops = %d", r.Counter("ops").Value())
	}
	if r.Histogram("lat", nil) != h {
		t.Fatal("histogram not memoized")
	}
	if r.LookupHistogram("missing") != nil {
		t.Fatal("lookup of missing histogram should be nil")
	}
	dump := r.Dump()
	if !strings.Contains(dump, "ops") || !strings.Contains(dump, "lat") {
		t.Fatalf("dump: %s", dump)
	}

	raw, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		Counters   map[string]int64 `json:"counters"`
		Histograms map[string]struct {
			Count int64 `json:"count"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(raw, &parsed); err != nil {
		t.Fatal(err)
	}
	if parsed.Counters["ops"] != 4 || parsed.Histograms["lat"].Count != 1 {
		t.Fatalf("json roundtrip: %+v", parsed)
	}
}
