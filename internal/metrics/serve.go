package metrics

import (
	"encoding/json"
	"expvar"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
)

// Publisher hands registry snapshots across the simulation/HTTP boundary.
// The simulation side (single-threaded) calls Publish at convenient
// points — between benchmark repetitions, after a run — which stores a
// deep copy; HTTP handler goroutines only ever read whole snapshots
// through an atomic.Value, so the live registry is never shared and needs
// no locks.
type Publisher struct {
	v  atomic.Value // *Registry (always a private clone)
	tl atomic.Value // []byte: pre-rendered timeline JSON
	fl atomic.Value // []byte: pre-rendered flow-report JSON
}

// NewPublisher creates a publisher with an empty initial snapshot, so the
// endpoint is scrapeable before the first Publish.
func NewPublisher() *Publisher {
	p := &Publisher{}
	p.v.Store(NewRegistry())
	p.tl.Store([]byte("{}\n"))
	p.fl.Store([]byte("{}\n"))
	return p
}

// Publish snapshots the registry (deep copy) and makes it the served
// state. Call from the simulation/host side only.
func (p *Publisher) Publish(r *Registry) {
	if r == nil {
		return
	}
	p.v.Store(r.Clone())
}

// Snapshot returns the most recently published registry snapshot. The
// returned registry is never mutated again; treat it as read-only to keep
// it shareable.
func (p *Publisher) Snapshot() *Registry {
	return p.v.Load().(*Registry)
}

// PublishTimeline stores pre-rendered timeline JSON (an internal/timeline
// report) for /timeline.json. Raw bytes keep this package independent of
// the timeline package; callers marshal on the simulation side and hand
// over an immutable buffer. Empty or nil data resets to "{}".
func (p *Publisher) PublishTimeline(data []byte) {
	if len(data) == 0 {
		data = []byte("{}\n")
	}
	p.tl.Store(data)
}

// TimelineJSON returns the most recently published timeline bytes.
func (p *Publisher) TimelineJSON() []byte {
	return p.tl.Load().([]byte)
}

// PublishFlows stores pre-rendered flow-observatory JSON (an
// internal/flowmap report) for /flows.json, with the same raw-bytes
// contract as PublishTimeline. Empty or nil data resets to "{}".
func (p *Publisher) PublishFlows(data []byte) {
	if len(data) == 0 {
		data = []byte("{}\n")
	}
	p.fl.Store(data)
}

// FlowsJSON returns the most recently published flow-report bytes.
func (p *Publisher) FlowsJSON() []byte {
	return p.fl.Load().([]byte)
}

// Handler serves the published snapshot:
//
//	GET /metrics        Prometheus/OpenMetrics text exposition
//	GET /metrics.json   JSON snapshot of counters, gauges, histograms
//	GET /timeline.json  windowed telemetry timeline ("{}" until published)
//	GET /flows.json     flow observatory report ("{}" until published)
//
// Any other path redirects to /metrics.
func (p *Publisher) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = p.Snapshot().WriteOpenMetrics(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(p.Snapshot())
	})
	mux.HandleFunc("/timeline.json", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(p.TimelineJSON())
	})
	mux.HandleFunc("/flows.json", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(p.FlowsJSON())
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		http.Redirect(w, req, "/metrics", http.StatusFound)
	})
	return mux
}

// DebugHandler is Handler plus the Go runtime's host-side introspection
// endpoints, for digging into the wall-clock cost behind the host/*
// gauges without restarting the process:
//
//	GET /debug/pprof/      CPU, heap, goroutine, ... profiles
//	GET /debug/vars        expvar JSON (memstats, cmdline)
//
// The pprof endpoints profile the host process, not the simulation — the
// virtual timeline is invisible to them by construction.
func (p *Publisher) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", p.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}
