package sim

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

// shardPingRun wires two linked LPs that bounce a token back and forth
// `rounds` times over links with the given latency, returning each LP's
// receipt log and final clock.
func shardPingRun(t *testing.T, workers, rounds int, lat Time) [2][]string {
	t.Helper()
	var logs [2][]string
	var ks [2]*Kernel
	var qs [2]*Queue[int]
	for i := range ks {
		ks[i] = NewKernel(int64(100 + i))
		qs[i] = NewQueue[int](ks[i], "in", 64)
	}
	s := NewSharded(workers)
	var lps [2]*LP
	body := func(i int) func(*LP) error {
		return func(lp *LP) error {
			k := ks[i]
			lp.Attach(k)
			peer := lps[1-i]
			k.Spawn("player", func(p *Proc) {
				for r := 0; r < rounds; r++ {
					if i == 0 {
						v := r
						lp.Post(peer, lat, func() { qs[1].TryPut(1000 + v) })
					}
					got := qs[i].Get(p)
					logs[i] = append(logs[i], fmt.Sprintf("t=%s got %d", k.Now(), got))
					if i == 1 {
						v := got
						lp.Post(peer, lat, func() { qs[0].TryPut(v + 1000) })
					}
				}
			})
			if err := k.Run(); err != nil {
				return err
			}
			logs[i] = append(logs[i], fmt.Sprintf("end t=%s", k.Now()))
			return nil
		}
	}
	lps[0] = s.AddLP("a", body(0))
	lps[1] = s.AddLP("b", body(1))
	s.Link(lps[0], lps[1], lat)
	s.Link(lps[1], lps[0], lat)
	if err := s.Run(); err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	return logs
}

// TestShardedPingPongEquivalence is the core parallel-determinism gate at
// the sim layer: the same linked two-LP run must produce identical logs
// under 1 worker (the sequential reference) and 4 workers.
func TestShardedPingPongEquivalence(t *testing.T) {
	seqLogs := shardPingRun(t, 1, 200, 3*Microsecond)
	parLogs := shardPingRun(t, 4, 200, 3*Microsecond)
	for i := range seqLogs {
		if len(seqLogs[i]) != len(parLogs[i]) {
			t.Fatalf("lp%d: log lengths differ: seq=%d par=%d", i, len(seqLogs[i]), len(parLogs[i]))
		}
		for j := range seqLogs[i] {
			if seqLogs[i][j] != parLogs[i][j] {
				t.Fatalf("lp%d diverges at %d: seq=%q par=%q", i, j, seqLogs[i][j], parLogs[i][j])
			}
		}
	}
	// And the timing itself must be exact: each hop costs lat, token
	// returns every 2 hops, 200 rounds.
	want := fmt.Sprintf("end t=%s", Time(200*2*3*Microsecond))
	if got := seqLogs[0][len(seqLogs[0])-1]; got != want {
		t.Fatalf("final clock: got %q want %q", got, want)
	}
}

// TestShardedRing circulates a token around a 5-LP ring: progress proves
// the safe-time solver jumps horizons through the cycle instead of
// stalling or creeping.
func TestShardedRing(t *testing.T) {
	const n, laps = 5, 40
	lat := 2 * Microsecond
	var ks [n]*Kernel
	var qs [n]*Queue[int]
	for i := range ks {
		ks[i] = NewKernel(int64(i))
		qs[i] = NewQueue[int](ks[i], "ring", 4)
	}
	s := NewSharded(3)
	var lps [n]*LP
	var hops atomic.Int64
	for i := 0; i < n; i++ {
		i := i
		lps[i] = s.AddLP(fmt.Sprintf("n%d", i), func(lp *LP) error {
			k := ks[i]
			lp.Attach(k)
			next := lps[(i+1)%n]
			k.Spawn("relay", func(p *Proc) {
				if i == 0 {
					ni := (i + 1) % n
					lp.Post(next, lat, func() { qs[ni].TryPut(1) })
				}
				for lap := 0; lap < laps; lap++ {
					v := qs[i].Get(p)
					hops.Add(1)
					if i == 0 && lap == laps-1 {
						return // token retired after the last lap
					}
					ni := (i + 1) % n
					lp.Post(next, lat, func() { qs[ni].TryPut(v + 1) })
				}
			})
			return k.Run()
		})
	}
	for i := 0; i < n; i++ {
		s.Link(lps[i], lps[(i+1)%n], lat)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// The token visits every LP once per lap (the initial post plus n0's
	// laps-1 forwards each sweep the ring), so every LP receives exactly
	// laps times and the last delivery — the n*laps-th hop — lands at n0.
	if got := hops.Load(); got != n*laps {
		t.Fatalf("hops = %d, want %d", got, n*laps)
	}
	if now := ks[0].Now(); now != Time(n*laps)*lat {
		t.Fatalf("final clock at n0 = %s, want %s", now, Time(n*laps)*lat)
	}
}

// TestShardedSameInstantOrdering posts from two senders so both messages
// arrive at the receiver at the same virtual instant: execution order
// must follow (sender idx, sender seq), not host scheduling.
func TestShardedSameInstantOrdering(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		var order []int
		kc := NewKernel(9)
		s := NewSharded(3)
		var sender [2]*LP
		var recv *LP
		for i := 0; i < 2; i++ {
			i := i
			sender[i] = s.AddLP(fmt.Sprintf("s%d", i), func(lp *LP) error {
				k := NewKernel(int64(i))
				lp.Attach(k)
				k.Spawn("post", func(p *Proc) {
					// Stagger local clocks; deliveries still collide at 10us.
					p.Advance(Time(i) * Microsecond)
					d := Time(10-i) * Microsecond
					for j := 0; j < 3; j++ {
						j := j
						lp.Post(recv, d, func() { order = append(order, i*10+j) })
					}
				})
				return k.Run()
			})
		}
		recv = s.AddLP("recv", func(lp *LP) error {
			lp.Attach(kc)
			return kc.Run()
		})
		s.Link(sender[0], recv, Microsecond)
		s.Link(sender[1], recv, Microsecond)
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		want := "[0 1 2 10 11 12]"
		if got := fmt.Sprint(order); got != want {
			t.Fatalf("trial %d: delivery order %s, want %s", trial, got, want)
		}
	}
}

// TestShardedUnlinked runs independent LPs with no links: no protocol
// overhead, full completion, deterministic per-LP results.
func TestShardedUnlinked(t *testing.T) {
	const n = 8
	var finals [n]Time
	s := NewSharded(4)
	for i := 0; i < n; i++ {
		i := i
		s.AddLP(fmt.Sprintf("r%d", i), func(lp *LP) error {
			k := NewKernel(int64(i))
			k.Spawn("work", func(p *Proc) {
				for j := 0; j < 1000; j++ {
					p.Advance(Time(p.Rand().Intn(100)) * Nanosecond)
				}
			})
			if err := k.Run(); err != nil {
				return err
			}
			finals[i] = k.Now()
			return nil
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	var again [n]Time
	s2 := NewSharded(1)
	for i := 0; i < n; i++ {
		i := i
		s2.AddLP(fmt.Sprintf("r%d", i), func(lp *LP) error {
			k := NewKernel(int64(i))
			k.Spawn("work", func(p *Proc) {
				for j := 0; j < 1000; j++ {
					p.Advance(Time(p.Rand().Intn(100)) * Nanosecond)
				}
			})
			if err := k.Run(); err != nil {
				return err
			}
			again[i] = k.Now()
			return nil
		})
	}
	if err := s2.Run(); err != nil {
		t.Fatal(err)
	}
	if finals != again {
		t.Fatalf("parallel %v != sequential %v", finals, again)
	}
}

// TestShardedErrorStopsFleet: one failing body stops the whole run; the
// reported error is the root cause, not the induced shard stops.
func TestShardedErrorStopsFleet(t *testing.T) {
	boom := errors.New("boom")
	s := NewSharded(2)
	var lps [2]*LP
	lps[0] = s.AddLP("bad", func(lp *LP) error {
		k := NewKernel(1)
		lp.Attach(k)
		k.Spawn("fail", func(p *Proc) {
			p.Advance(Microsecond)
			p.Fatalf("boom")
		})
		if err := k.Run(); err != nil {
			return fmt.Errorf("%w: %v", boom, err)
		}
		return nil
	})
	lps[1] = s.AddLP("waiter", func(lp *LP) error {
		k := NewKernel(2)
		lp.Attach(k)
		q := NewQueue[int](k, "never", 1)
		k.Spawn("wait", func(p *Proc) { q.Get(p) })
		return k.Run()
	})
	s.Link(lps[0], lps[1], Microsecond)
	s.Link(lps[1], lps[0], Microsecond)
	err := s.Run()
	if !errors.Is(err, boom) {
		t.Fatalf("Run error = %v, want the root-cause failure", err)
	}
	if lps[1].err == nil {
		t.Fatal("surviving LP was not stopped")
	}
	if !errors.Is(lps[1].err, ErrShardStopped) && !strings.Contains(lps[1].err.Error(), "deadlock") {
		t.Fatalf("survivor error = %v, want induced stop", lps[1].err)
	}
}

// TestShardedLocalDeadlock: a linked LP whose procs can never run again
// quiesces globally and surfaces the standard per-LP deadlock report.
func TestShardedLocalDeadlock(t *testing.T) {
	s := NewSharded(2)
	var lps [2]*LP
	lps[0] = s.AddLP("stuck", func(lp *LP) error {
		k := NewKernel(1)
		lp.Attach(k)
		q := NewQueue[int](k, "q", 0)
		k.Spawn("blocked", func(p *Proc) { q.Get(p) })
		return k.Run()
	})
	lps[1] = s.AddLP("fine", func(lp *LP) error {
		k := NewKernel(2)
		lp.Attach(k)
		k.Spawn("quick", func(p *Proc) { p.Advance(Microsecond) })
		return k.Run()
	})
	s.Link(lps[0], lps[1], Microsecond)
	s.Link(lps[1], lps[0], Microsecond)
	err := s.Run()
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("Run error = %v, want deadlock report", err)
	}
	if !strings.Contains(err.Error(), "get on queue q") {
		t.Fatalf("deadlock report lost the park reason: %v", err)
	}
}

// TestShardedPostValidation: protocol misuse fails loudly.
func TestShardedPostValidation(t *testing.T) {
	s := NewSharded(1)
	var a, b *LP
	a = s.AddLP("a", func(lp *LP) error {
		k := NewKernel(1)
		lp.Attach(k)
		k.Spawn("p", func(p *Proc) {
			defer func() {
				if recover() == nil {
					p.Fatalf("Post below link latency did not panic")
				}
			}()
			lp.Post(b, Nanosecond, func() {}) // latency is 1us: must panic
		})
		return k.Run()
	})
	b = s.AddLP("b", func(lp *LP) error {
		k := NewKernel(2)
		lp.Attach(k)
		return k.Run()
	})
	s.Link(a, b, Microsecond)
	s.Link(b, a, Microsecond)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := func() (ok bool, err error) {
		defer func() {
			if recover() == nil {
				err = errors.New("zero-latency Link did not panic")
			}
		}()
		NewSharded(1).Link(a, b, 0)
		return
	}(); err != nil {
		t.Fatal(err)
	}
}
