package sim

import (
	"fmt"
	"strings"
	"testing"
)

func TestSpawnAfterDelay(t *testing.T) {
	k := NewKernel(1)
	var startedAt Time
	k.SpawnAfter("late", 7*Microsecond, func(p *Proc) {
		startedAt = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if startedAt != 7*Microsecond {
		t.Fatalf("started at %s", startedAt)
	}
}

func TestReadyIfParked(t *testing.T) {
	k := NewKernel(1)
	var p1 *Proc
	woken := false
	p1 = k.Spawn("sleeper", func(p *Proc) {
		p.Park("waiting for manual wake")
		woken = true
	})
	k.Spawn("waker", func(p *Proc) {
		p.Advance(Microsecond)
		if !k.ReadyIfParked(p1) {
			p.Fatalf("sleeper should be parked")
		}
		if k.ReadyIfParked(p1) {
			p.Fatalf("double wake must be a no-op")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !woken {
		t.Fatal("sleeper never resumed")
	}
}

func TestParkReasonInDeadlockReport(t *testing.T) {
	k := NewKernel(1)
	k.Spawn("stuck", func(p *Proc) {
		p.Park("custom reason xyz")
	})
	err := k.Run()
	if err == nil || !strings.Contains(err.Error(), "custom reason xyz") {
		t.Fatalf("err = %v", err)
	}
}

func TestTracer(t *testing.T) {
	k := NewKernel(1)
	var lines []string
	k.SetTracer(func(at Time, format string, args ...any) {
		lines = append(lines, fmt.Sprintf("%s "+format, append([]any{at}, args...)...))
	})
	k.tracef("hello %d", 5)
	if len(lines) != 1 || !strings.Contains(lines[0], "hello 5") {
		t.Fatalf("lines = %v", lines)
	}
}

func TestAdvanceToPastIsNoop(t *testing.T) {
	k := NewKernel(1)
	k.Spawn("p", func(p *Proc) {
		p.Advance(10 * Microsecond)
		before := p.Now()
		p.AdvanceTo(5 * Microsecond) // in the past
		if p.Now() != before {
			p.Fatalf("AdvanceTo moved backwards")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestNegativeAdvancePanics(t *testing.T) {
	k := NewKernel(1)
	k.Spawn("p", func(p *Proc) {
		defer func() {
			if recover() == nil {
				p.Fatalf("negative Advance accepted")
			}
			panic(shutdownSentinel{}) // unwind cleanly
		}()
		p.Advance(-1)
	})
	_ = k.Run()
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500, "500ns"},
		{1500, "1.500us"},
		{2500 * Microsecond, "2.500ms"},
		{3 * Second, "3.000000s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
	if Microsecond.Micros() != 1 {
		t.Fatal("Micros wrong")
	}
}

func TestRunFromProcPanics(t *testing.T) {
	k := NewKernel(1)
	result := make(chan any, 1)
	k.Spawn("p", func(p *Proc) {
		defer func() {
			result <- recover()
			panic(shutdownSentinel{})
		}()
		k.Run() // illegal reentrancy
	})
	_ = k.Run()
	if r := <-result; r == nil {
		t.Fatal("nested Run did not panic")
	}
}

func TestProcIdentity(t *testing.T) {
	k := NewKernel(1)
	p1 := k.Spawn("alpha", func(p *Proc) {
		if p.Name() != "alpha" || p.ID() != 1 || p.Kernel() != k {
			p.Fatalf("identity wrong: %s %d", p.Name(), p.ID())
		}
		if p.Rand() == nil || p.Rand() != p.Rand() {
			p.Fatalf("Rand not stable")
		}
	})
	if p1.Name() != "alpha" {
		t.Fatal("external Name wrong")
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}
