package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// Kernel owns the virtual clock, the event queue and all procs. All kernel
// state is confined by the execution protocol: exactly one goroutine (the
// scheduler or the single running proc) touches it at a time, so no locks
// are needed and runs are deterministic.
type Kernel struct {
	now  Time
	seq  uint64
	pq   eventQueue
	free []*event // recycled event objects, never shared across kernels
	ctl  chan struct{} // running proc -> scheduler: "I parked or exited"
	rng   *rand.Rand
	trac  Tracer
	host  HostProbe // wall-clock instrumentation; nil disables
	clock ClockHook // observes virtual-clock advances; nil disables

	// nCancelled counts cancelled events still sitting in the queue; when
	// they outnumber half the live entries the queue is compacted.
	nCancelled int

	// gov/grant attach this kernel to a Sharded run as one logical
	// process. grant is the safe-time horizon: events strictly below it
	// may dispatch without coordination. A detached kernel has grant ==
	// Forever, so the gate costs one comparison on the hot path.
	gov   *LP
	grant Time

	procs    []*Proc
	live     int // procs spawned and not yet finished
	running  *Proc
	shutdown bool
	abortErr error
	nextID   int
}

// Tracer receives a line for every significant kernel action. Nil disables
// tracing.
type Tracer func(at Time, format string, args ...any)

// HostProbe observes the kernel's host-side (wall-clock) cost: event and
// heap-operation counts plus the execution slices the scheduler hands out.
// Every callback is pure host bookkeeping — a probe must not touch the
// virtual timeline, and the kernel guarantees the calls are serialized by
// the execution protocol (scheduler and running proc alternate), so probes
// need no locking. Nil disables all probing; the only cost left on the
// event loop is a nil check per operation.
//
// A "slice" is one uninterrupted stretch of host execution dispatched by
// the scheduler: either a scheduler callback (SliceStart(-1)) or a proc
// running from resume to its next park/exit (SliceStart(proc id)). Slices
// never nest.
type HostProbe interface {
	// Event fires once per dispatched event (callback or proc wake).
	Event()
	// HeapPush fires after an event is pushed; depth is the new heap size.
	HeapPush(depth int)
	// HeapPop fires after any event is popped (including cancelled ones).
	HeapPop()
	// CancelPurge fires when a cancelled timer is discarded unexecuted.
	CancelPurge()
	// SliceStart/SliceEnd bracket one host execution slice; proc is the
	// running proc's id, or -1 for a scheduler callback.
	SliceStart(proc int)
	SliceEnd(proc int)
}

// NewKernel returns a kernel with the virtual clock at zero. The seed feeds
// the kernel RNG used by procs; identical seeds give identical runs. The
// event queue is the process-wide default kind (see SetDefaultQueueKind).
func NewKernel(seed int64) *Kernel {
	return NewKernelQueue(seed, DefaultQueueKind())
}

// NewKernelQueue is NewKernel with an explicit event-queue implementation,
// for differential testing: both kinds produce the identical pop order, so
// same-seed runs are bit-for-bit equal under either.
func NewKernelQueue(seed int64, kind QueueKind) *Kernel {
	return &Kernel{
		pq:    newEventQueue(kind),
		ctl:   make(chan struct{}),
		rng:   rand.New(rand.NewSource(seed)),
		grant: Forever,
	}
}

// noteCancel accounts one newly cancelled in-queue event and compacts the
// queue once cancelled entries exceed half of the live ones (3c > len ⇔
// c > (len-c)/2), so heavy GetTimeout churn cannot bloat the queue between
// the lazy at-the-head purges.
func (k *Kernel) noteCancel() {
	k.nCancelled++
	if n := k.pq.Len(); n >= 64 && 3*k.nCancelled > n {
		k.compact()
	}
}

func (k *Kernel) compact() {
	k.pq.Compact(func(ev *event) {
		if k.host != nil {
			k.host.HeapPop()
			k.host.CancelPurge()
		}
		k.freeEvent(ev)
	})
	k.nCancelled = 0
}

// Now reports the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Rand exposes the kernel's deterministic random source. It must only be
// used from scheduler or running-proc context.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// SetTracer installs a trace callback.
func (k *Kernel) SetTracer(t Tracer) { k.trac = t }

// SetHostProbe attaches a host-cost probe (nil detaches). Attach before
// Run; the probe observes wall-clock cost only and cannot perturb the
// virtual timeline, so instrumented runs stay bit-for-bit deterministic.
func (k *Kernel) SetHostProbe(h HostProbe) { k.host = h }

// ClockHook observes every virtual-clock advance. It fires after the
// clock moves to a popped event's timestamp but before that event
// dispatches, so the hook sees exactly the state produced by all events
// strictly before the new time — the contract the timeline recorder's
// windowing relies on. A hook must only read: it must never schedule
// events or touch procs, or it would perturb the deterministic timeline.
type ClockHook func(now Time)

// SetClockHook attaches a clock-advance observer (nil detaches). Attach
// before Run. The only event-loop cost when detached is a nil check per
// dispatched event, mirroring SetHostProbe.
func (k *Kernel) SetClockHook(h ClockHook) { k.clock = h }

func (k *Kernel) tracef(format string, args ...any) {
	if k.trac != nil {
		k.trac(k.now, format, args...)
	}
}

// Spawn creates a proc named name running fn and schedules its first
// activation after delay. It may be called before Run or from a running
// proc (e.g. a parent process launching a child).
func (k *Kernel) Spawn(name string, fn func(p *Proc)) *Proc {
	return k.SpawnAfter(name, 0, fn)
}

// SpawnAfter is Spawn with an initial activation delay.
func (k *Kernel) SpawnAfter(name string, delay Time, fn func(p *Proc)) *Proc {
	k.nextID++
	p := &Proc{
		k:    k,
		id:   k.nextID,
		name: name,
		wake: make(chan struct{}),
	}
	k.procs = append(k.procs, p)
	k.live++
	go p.run(fn)
	k.schedule(k.now+delay, p, nil)
	return p
}

// ready schedules p to resume at the current time. It is the wake-side half
// of every synchronization primitive.
func (k *Kernel) ready(p *Proc) {
	if p.state != procParked {
		panic(fmt.Sprintf("sim: ready(%s) but proc is not parked (state %d)", p.name, p.state))
	}
	p.state = procReady
	k.schedule(k.now, p, nil)
}

// Ready schedules a parked proc to resume at the current time. It is the
// wake-side counterpart of Proc.Park and panics if p is not parked.
func (k *Kernel) Ready(p *Proc) { k.ready(p) }

// ReadyIfParked is Ready, but a no-op when p is currently running or
// already scheduled — for completion paths that may fire either before or
// after the interested proc parks.
func (k *Kernel) ReadyIfParked(p *Proc) bool {
	if p.state == procParked {
		k.ready(p)
		return true
	}
	return false
}

// Abort stops the simulation with err. The current Run call returns err
// after unwinding every remaining proc.
func (k *Kernel) Abort(err error) {
	if k.abortErr == nil {
		k.abortErr = err
	}
	k.shutdown = true
}

// Run executes events until no proc can make progress. It returns nil when
// every proc finished, ErrDeadlock when procs remain parked with an empty
// event queue, or the Abort error.
func (k *Kernel) Run() error { return k.RunUntil(Forever) }

// RunUntil is Run bounded by a virtual deadline. Reaching the deadline with
// procs still live is not an error; the clock is left at the deadline.
func (k *Kernel) RunUntil(deadline Time) error {
	if k.running != nil {
		panic("sim: RunUntil called from proc context")
	}
	for !k.shutdown {
		ev := k.pq.Peek()
		if ev == nil {
			// Out of local work. An attached LP parks in the safe-time
			// protocol and may be handed cross-shard messages; a detached
			// kernel is simply done.
			if k.gov != nil && k.gov.awaitWork(k) {
				continue
			}
			break
		}
		if ev.cancelled {
			// Purged before the deadline check and before the clock moves:
			// a cancelled timer must not stretch the run's final time.
			k.pq.Pop()
			if k.nCancelled > 0 {
				k.nCancelled--
			}
			if k.host != nil {
				k.host.HeapPop()
				k.host.CancelPurge()
			}
			k.freeEvent(ev)
			continue
		}
		if k.gov != nil && ev.at >= k.grant {
			// Conservative gate: the next event is not yet proven safe.
			// awaitGrant blocks until the safe horizon extends past it or
			// earlier cross-shard messages arrive (then re-examine), or
			// aborts the kernel when the Sharded run is stopping.
			k.gov.awaitGrant(k, ev.at)
			continue
		}
		if ev.at > deadline {
			k.now = deadline
			if k.clock != nil {
				k.clock(k.now)
			}
			return nil
		}
		k.pq.Pop()
		k.now = ev.at
		if k.clock != nil {
			k.clock(k.now)
		}
		if k.host != nil {
			k.host.HeapPop()
			k.host.Event()
		}
		switch {
		case ev.fn != nil:
			fn := ev.fn
			// Recycle before running: if fn cancels its own (already
			// fired) timer, the bumped generation makes that a no-op
			// instead of a miscount.
			k.freeEvent(ev)
			if k.host != nil {
				k.host.SliceStart(-1)
				fn()
				k.host.SliceEnd(-1)
			} else {
				fn()
			}
		case ev.p != nil:
			p, epoch := ev.p, ev.epoch
			k.freeEvent(ev)
			if epoch == p.epoch {
				k.resume(p)
			}
		default:
			k.freeEvent(ev)
		}
	}
	if k.shutdown {
		k.drain()
		return k.abortErr
	}
	if k.live > 0 {
		err := k.deadlockError()
		k.Abort(err)
		k.drain()
		return err
	}
	return nil
}

// resume hands control to p and blocks until p parks or exits. A wake
// event whose epoch no longer matches (the proc was woken by something
// else and re-parked, or already finished) is stale and skipped.
func (k *Kernel) resume(p *Proc) {
	if p.state == procDone {
		return
	}
	p.epoch++
	p.state = procRunning
	k.running = p
	if k.host != nil {
		k.host.SliceStart(p.id)
	}
	p.wake <- struct{}{}
	<-k.ctl
	if k.host != nil {
		k.host.SliceEnd(p.id)
	}
	k.running = nil
}

// drain unwinds every parked proc after shutdown so no goroutines leak.
func (k *Kernel) drain() {
	for {
		progressed := false
		for _, p := range k.procs {
			if p.state == procParked || p.state == procReady {
				k.resume(p) // park() observes shutdown and panics out
				progressed = true
			}
		}
		if !progressed {
			break
		}
	}
	k.pq.Clear()
	k.nCancelled = 0
}

// ErrDeadlock is wrapped by the error Run returns when the simulation
// quiesces with live procs.
type ErrDeadlock struct {
	At      Time
	Blocked []BlockedProc
}

// BlockedProc describes one stuck proc in an ErrDeadlock.
type BlockedProc struct {
	Name   string
	Reason string
}

func (e *ErrDeadlock) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sim: deadlock at t=%s: %d proc(s) blocked:", e.At, len(e.Blocked))
	for _, bp := range e.Blocked {
		fmt.Fprintf(&b, "\n  %s: %s", bp.Name, bp.Reason)
	}
	return b.String()
}

func (k *Kernel) deadlockError() error {
	e := &ErrDeadlock{At: k.now}
	for _, p := range k.procs {
		if p.state == procParked {
			reason := p.waitReason
			if reason == "advancing" && p.waitTarget != 0 {
				// Formatted lazily here so the Advance hot path does not
				// build the string on every park.
				reason = fmt.Sprintf("advancing to %s", p.waitTarget)
			}
			e.Blocked = append(e.Blocked, BlockedProc{Name: p.name, Reason: reason})
		}
	}
	sort.Slice(e.Blocked, func(i, j int) bool { return e.Blocked[i].Name < e.Blocked[j].Name })
	return e
}

// Live reports how many procs have been spawned and not yet finished.
func (k *Kernel) Live() int { return k.live }
