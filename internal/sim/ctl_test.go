package sim

import (
	"errors"
	"testing"
)

// TestGetCtlDeliveryBeatsDeadline: a value arriving before the deadline is
// delivered normally, and the cancelled deadline timer must not extend the
// virtual clock past the delivery instant.
func TestGetCtlDeliveryBeatsDeadline(t *testing.T) {
	k := NewKernel(1)
	q := NewQueue[int](k, "q", 1)
	var got int
	var gotErr error
	var at Time
	k.Spawn("getter", func(p *Proc) {
		got, gotErr = q.GetCtl(p, 10*Millisecond, nil)
		at = p.Now()
	})
	k.Spawn("putter", func(p *Proc) {
		p.Advance(5 * Microsecond)
		q.Put(p, 7)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if gotErr != nil || got != 7 {
		t.Fatalf("got %d, err %v", got, gotErr)
	}
	if at != 5*Microsecond {
		t.Fatalf("delivered at %s, want 5us", at)
	}
	// The 10ms deadline timer was cancelled; it must not have dragged the
	// clock to the deadline.
	if k.Now() != 5*Microsecond {
		t.Fatalf("cancelled deadline timer extended the clock to %s", k.Now())
	}
}

// TestGetCtlTimeout: with no producer, GetCtl returns ErrTimeout at
// exactly the deadline, and the waiter is pruned (a later TryPut finds no
// stale getter to hand the value to).
func TestGetCtlTimeout(t *testing.T) {
	k := NewKernel(1)
	q := NewQueue[int](k, "q", 1)
	var gotErr error
	var at Time
	k.Spawn("getter", func(p *Proc) {
		_, gotErr = q.GetCtl(p, 3*Microsecond, nil)
		at = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(gotErr, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", gotErr)
	}
	if at != 3*Microsecond {
		t.Fatalf("timed out at %s, want exactly 3us", at)
	}
	if !q.TryPut(9) {
		t.Fatal("TryPut refused on an empty buffered queue")
	}
	if q.Len() != 1 {
		t.Fatalf("value went to a pruned waiter; Len = %d, want 1 (buffered)", q.Len())
	}
}

// TestGetTimeoutZeroBehavesLikeGet is the zero-cost contract at the
// primitive level: GetTimeout/GetCtl with deadline 0 parks exactly like
// Get and never times out.
func TestGetCtlZeroDeadline(t *testing.T) {
	k := NewKernel(1)
	q := NewQueue[int](k, "q", 0) // rendezvous
	var got int
	k.Spawn("getter", func(p *Proc) {
		v, err := q.GetCtl(p, 0, nil)
		if err != nil {
			p.Fatalf("GetCtl(0): %v", err)
		}
		got = v
	})
	k.Spawn("putter", func(p *Proc) {
		p.Advance(2 * Second) // far beyond any plausible accidental deadline
		q.Put(p, 11)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 11 {
		t.Fatalf("got %d", got)
	}
}

// TestPutCtlTimeoutWithdraws: an abandoned PutCtl withdraws its value — a
// later getter must not receive it.
func TestPutCtlTimeoutWithdraws(t *testing.T) {
	k := NewKernel(1)
	q := NewQueue[int](k, "q", 0) // rendezvous: put blocks until matched
	var putErr error
	k.Spawn("putter", func(p *Proc) {
		putErr = q.PutCtl(p, 13, 2*Microsecond, nil)
	})
	var ok bool
	k.Spawn("getter", func(p *Proc) {
		p.Advance(10 * Microsecond) // arrive well after the put gave up
		_, ok = q.TryGet()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(putErr, ErrTimeout) {
		t.Fatalf("put err = %v, want ErrTimeout", putErr)
	}
	if ok {
		t.Fatal("late getter received a value withdrawn by PutCtl's timeout")
	}
}

// TestCtlStopPredicate: a stop error is returned verbatim on the next
// wake, even with no deadline armed.
func TestCtlStopPredicate(t *testing.T) {
	k := NewKernel(1)
	q := NewQueue[int](k, "q", 1)
	boom := errors.New("channel poisoned")
	var armed bool
	stop := func() error {
		if armed {
			return boom
		}
		return nil
	}
	var gotErr error
	var getter *Proc
	getter = k.Spawn("getter", func(p *Proc) {
		_, gotErr = q.GetCtl(p, 0, stop)
	})
	k.Spawn("poisoner", func(p *Proc) {
		p.Advance(4 * Microsecond)
		armed = true
		k.ReadyIfParked(getter)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(gotErr, boom) {
		t.Fatalf("err = %v, want the stop error", gotErr)
	}
}

// TestTimerCancelNoClockExtension: a cancelled timer must neither fire nor
// drag the virtual clock to its expiry.
func TestTimerCancelNoClockExtension(t *testing.T) {
	k := NewKernel(1)
	fired := false
	tm := k.AfterTimer(1*Second, func() { fired = true })
	k.Spawn("p", func(p *Proc) {
		p.Advance(3 * Microsecond)
		tm.Cancel()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("cancelled timer fired")
	}
	if k.Now() != 3*Microsecond {
		t.Fatalf("clock ran to %s after cancel, want 3us", k.Now())
	}
}

// TestKillUnwindsParkedProc: Kill wakes a parked proc, unwinds its stack
// through its deferred cleanup, and the rest of the simulation continues.
func TestKillUnwindsParkedProc(t *testing.T) {
	k := NewKernel(1)
	q := NewQueue[int](k, "q", 0)
	cleaned := false
	victim := k.Spawn("victim", func(p *Proc) {
		defer func() {
			cleaned = true
			if r := recover(); r != nil {
				panic(r) // the kill sentinel must keep unwinding
			}
		}()
		q.Get(p) // parks forever; no putter exists
	})
	var after Time
	k.Spawn("killer", func(p *Proc) {
		p.Advance(5 * Microsecond)
		victim.Kill()
		p.Advance(5 * Microsecond)
		after = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !cleaned {
		t.Fatal("killed proc's deferred cleanup did not run")
	}
	if !victim.Done() || !victim.Killed() || !victim.Gone() {
		t.Fatalf("victim state: done=%v killed=%v gone=%v", victim.Done(), victim.Killed(), victim.Gone())
	}
	if after != 10*Microsecond {
		t.Fatalf("survivor stopped at %s, want 10us", after)
	}
}

// TestQueueSkipsKilledWaiters: values are never handed to a waiter that
// was killed while parked — the next live waiter (or the buffer) gets it.
func TestQueueSkipsKilledWaiters(t *testing.T) {
	k := NewKernel(1)
	q := NewQueue[int](k, "q", 0)
	var victim *Proc
	victim = k.Spawn("victim", func(p *Proc) {
		q.Get(p)
		t.Error("killed getter received a value")
	})
	var got int
	k.Spawn("survivor", func(p *Proc) {
		p.Advance(1 * Microsecond)
		got = q.Get(p)
	})
	k.Spawn("driver", func(p *Proc) {
		p.Advance(2 * Microsecond)
		victim.Kill()
		p.Advance(1 * Microsecond)
		q.Put(p, 21)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 21 {
		t.Fatalf("survivor got %d, want 21", got)
	}
}

// TestKillIdempotent: killing a dead or already-killed proc is a no-op.
func TestKillIdempotent(t *testing.T) {
	k := NewKernel(1)
	done := k.Spawn("done", func(p *Proc) {})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	done.Kill() // finished: must not flip Killed
	if done.Killed() {
		t.Fatal("Kill marked a finished proc as killed")
	}
}
