// Package sim implements a deterministic, process-oriented discrete-event
// simulation kernel.
//
// Simulated entities run as goroutines ("procs"), but the kernel enforces
// cooperative, one-at-a-time execution: exactly one proc (or the kernel
// scheduler itself) is runnable at any instant, so simulated code needs no
// locking and every run of the same program is bit-for-bit deterministic.
// Time is virtual: it only advances when procs block on a kernel primitive
// (Advance, queue operations, semaphores, events, resources).
//
// The kernel is the substrate for the Cell BE cluster model: processors,
// NICs, buses, MPI ranks and Pilot processes are all sim procs, and every
// hardware or protocol latency is charged as virtual time.
package sim

import "fmt"

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation. Durations use the same type.
type Time int64

// Common durations, mirroring time.Duration's constants but for virtual time.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Forever is a time later than any event the kernel will schedule.
const Forever Time = 1<<63 - 1

// Micros reports t as a floating-point number of microseconds. It is the
// unit the paper reports latencies in.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// String formats the time with a convenient unit.
func (t Time) String() string {
	switch {
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	case t < Second:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.6fs", float64(t)/float64(Second))
	}
}
