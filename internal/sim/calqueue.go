package sim

import "sort"

// calQueue is a calendar queue (Brown 1988): a power-of-two array of
// buckets, each a sorted slice of events, where bucket index is
// (at / width) mod nbuckets. One "year" spans width*nbuckets of virtual
// time. Pop scans forward from the current position, accepting the head
// of a bucket only while it falls inside that bucket's current-year
// window; because the windows tile virtual time contiguously starting at
// the last popped timestamp, the first acceptable head is the exact
// eventLess minimum. When a whole year is empty the queue falls back to a
// direct search over all bucket heads. The structure is tuned by resizing
// (doubling/halving the bucket count and re-deriving the width from the
// observed event span) when the population crosses 2x/0.5x the bucket
// count, which keeps both the push insertion sort and the pop scan O(1)
// amortized for the bursty short-horizon timer mix the Co-Pilot scan
// loops generate.
//
// Determinism: the queue orders purely by eventLess (at, src, seq) —
// events at equal timestamps land in the same bucket and are kept sorted
// there — so its pop sequence is bit-for-bit identical to heapQueue's.
type calQueue struct {
	buckets [][]*event
	mask    int  // len(buckets)-1; len is a power of two
	width   Time // virtual-time span of one bucket
	size    int
	// Current position: cur is the bucket the last pop came from and
	// curTop the end of its current-year window. The scan resumes here.
	cur    int
	curTop Time
	floor  Time // last popped timestamp; no event below it can be pushed
	// Cached Peek result and its location, so the Peek+Pop pair in the
	// scheduler loop pays for one scan, not two.
	pk       *event
	pkBucket int
	pkTop    Time
	scratch  []*event // rebuild buffer, reused across resizes
}

const (
	calMinBuckets = 1 << 4
	calMaxBuckets = 1 << 18
	// calInitWidth is the starting bucket width. Resizes re-derive it
	// from the live event spread, so this only matters until the first
	// resize at ~2*calMinBuckets events.
	calInitWidth = Time(1000) // 1us in virtual ns
	// calMaxWidth caps the derived bucket width so year-window math
	// (top = floor + k*width) stays far from Time overflow even with
	// events parked near Forever.
	calMaxWidth = Time(1) << 50
)

// calTop is the end of the current-year window of the bucket holding t:
// the smallest multiple of w strictly above t, saturating at Forever so
// events near the end of time degrade to the direct-search path instead
// of wrapping the window math.
func calTop(t, w Time) Time {
	top := (t/w + 1) * w
	if top < t {
		return Forever
	}
	return top
}

func newCalQueue() *calQueue {
	q := &calQueue{
		buckets: make([][]*event, calMinBuckets),
		mask:    calMinBuckets - 1,
		width:   calInitWidth,
	}
	q.setPos(0)
	return q
}

func (q *calQueue) Len() int { return q.size }

func (q *calQueue) bucketOf(at Time) int {
	return int(uint64(at/q.width) & uint64(q.mask))
}

// setPos aligns the scan position so that bucket cur's current-year
// window [curTop-width, curTop) contains t.
func (q *calQueue) setPos(t Time) {
	q.cur = q.bucketOf(t)
	q.curTop = calTop(t, q.width)
}

func (q *calQueue) Push(ev *event) {
	b := q.bucketOf(ev.at)
	s := q.buckets[b]
	// Monotone inserts (the common case: timers armed "now + d" with
	// fresh seq) append; otherwise binary-search the slot.
	if n := len(s); n == 0 || eventLess(s[n-1], ev) {
		q.buckets[b] = append(s, ev)
	} else {
		i := sort.Search(n, func(i int) bool { return eventLess(ev, s[i]) })
		s = append(s, nil)
		copy(s[i+1:], s[i:])
		s[i] = ev
		q.buckets[b] = s
	}
	q.size++
	if q.pk != nil && eventLess(ev, q.pk) {
		q.pk = nil
	}
	if q.size > 2*(q.mask+1) && q.mask+1 < calMaxBuckets {
		q.resize()
	}
}

// Peek locates the eventLess minimum and caches its position for Pop.
func (q *calQueue) Peek() *event {
	if q.pk != nil {
		return q.pk
	}
	if q.size == 0 {
		return nil
	}
	// Year scan from the current position: windows tile virtual time
	// contiguously from curTop-width, so any queued event earlier in
	// time maps to an earlier scan offset and the first in-window head
	// is the global minimum.
	i, top := q.cur, q.curTop
	for n := 0; n <= q.mask; n++ {
		if b := q.buckets[i]; len(b) > 0 && b[0].at < top {
			q.pk, q.pkBucket, q.pkTop = b[0], i, top
			return q.pk
		}
		i = (i + 1) & q.mask
		next := top + q.width
		if next < top { // virtual-time overflow: fall to direct search
			break
		}
		top = next
	}
	// Sparse year: direct search over all bucket heads.
	var best *event
	bestB := 0
	for j, b := range q.buckets {
		if len(b) > 0 && (best == nil || eventLess(b[0], best)) {
			best, bestB = b[0], j
		}
	}
	q.pk, q.pkBucket = best, bestB
	q.pkTop = calTop(best.at, q.width)
	return best
}

func (q *calQueue) Pop() *event {
	ev := q.Peek()
	if ev == nil {
		return nil
	}
	b := q.buckets[q.pkBucket]
	copy(b, b[1:])
	b[len(b)-1] = nil
	q.buckets[q.pkBucket] = b[:len(b)-1]
	q.cur, q.curTop = q.pkBucket, q.pkTop
	q.floor = ev.at
	q.size--
	q.pk = nil
	if n := q.mask + 1; n > calMinBuckets && q.size < n/2 {
		q.resize()
	}
	return ev
}

// resize rebuilds the calendar with a bucket count proportional to the
// population and a width derived from the live events' spread, then
// re-anchors the scan at the floor.
func (q *calQueue) resize() {
	evs := q.scratch[:0]
	for _, b := range q.buckets {
		evs = append(evs, b...)
	}
	nb := calMinBuckets
	for nb < q.size && nb < calMaxBuckets {
		nb <<= 1
	}
	var lo, hi Time
	if len(evs) > 0 {
		lo, hi = evs[0].at, evs[0].at
		for _, ev := range evs[1:] {
			if ev.at < lo {
				lo = ev.at
			}
			if ev.at > hi {
				hi = ev.at
			}
		}
	}
	// Width targets ~3 events per bucket over the observed span: wide
	// enough that the pop scan usually hits within a bucket or two,
	// narrow enough that per-bucket insertion sorts stay short.
	w := Time(1)
	if len(evs) > 1 {
		gap := (hi - lo) / Time(len(evs))
		if gap > calMaxWidth/3 {
			gap = calMaxWidth / 3
		}
		w = 3 * gap
		if w < 1 {
			w = 1
		}
	}
	q.buckets = make([][]*event, nb)
	q.mask = nb - 1
	q.width = w
	q.size = 0
	q.pk = nil
	q.setPos(q.floor)
	for _, ev := range evs {
		q.Push(ev)
	}
	// Keep the collected slice (emptied) for the next rebuild.
	for i := range evs {
		evs[i] = nil
	}
	q.scratch = evs[:0]
}

func (q *calQueue) Compact(onPurge func(*event)) {
	for bi, b := range q.buckets {
		kept := b[:0]
		for _, ev := range b {
			if ev.cancelled {
				onPurge(ev)
				q.size--
			} else {
				kept = append(kept, ev)
			}
		}
		for i := len(kept); i < len(b); i++ {
			b[i] = nil
		}
		q.buckets[bi] = kept
	}
	q.pk = nil
	if n := q.mask + 1; n > calMinBuckets && q.size < n/2 {
		q.resize()
	}
}

func (q *calQueue) Clear() {
	q.buckets = make([][]*event, calMinBuckets)
	q.mask = calMinBuckets - 1
	q.width = calInitWidth
	q.size = 0
	q.pk = nil
	q.scratch = nil
	q.floor = 0
	q.setPos(0)
}
