package sim

import (
	"errors"
	"fmt"
)

// ErrTimeout is returned by deadline-bounded primitives (Queue.GetCtl and
// the layers built on it) when the deadline passes first.
var ErrTimeout = errors.New("sim: operation timed out")

// Queue is a FIFO message queue in virtual time. Capacity 0 gives
// rendezvous semantics (a Put completes only when matched by a Get);
// capacity n > 0 buffers up to n items. It is the workhorse behind
// mailboxes, MPI matching queues and Co-Pilot request queues.
type Queue[T any] struct {
	k    *Kernel
	name string
	cap  int
	buf  []T
	puts []*qwaiter[T]
	gets []*qwaiter[T]
	high int
	// Park reasons are prebuilt at construction: blocking operations park
	// on every handoff and must not rebuild the same string each time.
	getReason string
	putReason string
	// wfree recycles qwaiter records between blocking operations on this
	// queue (single-owner lifecycle: the blocking call that takes one
	// returns it before completing).
	wfree []*qwaiter[T]
}

type qwaiter[T any] struct {
	p      *Proc
	v      T
	rdy    bool // getter: value delivered
	served bool // putter: value consumed or buffered
}

// NewQueue creates a queue with the given capacity (0 = rendezvous).
func NewQueue[T any](k *Kernel, name string, capacity int) *Queue[T] {
	if capacity < 0 {
		panic("sim: negative queue capacity")
	}
	return &Queue[T]{
		k: k, name: name, cap: capacity,
		getReason: "get on queue " + name,
		putReason: "put on queue " + name,
	}
}

// waiter takes a qwaiter from the queue's free list, or allocates one.
func (q *Queue[T]) waiter() *qwaiter[T] {
	if n := len(q.wfree); n > 0 {
		w := q.wfree[n-1]
		q.wfree[n-1] = nil
		q.wfree = q.wfree[:n-1]
		return w
	}
	return &qwaiter[T]{}
}

// popWaiter removes the head of a waiter list in place, keeping the
// backing array so the steady put/get handoff cycle never reallocates
// (the old `list = list[1:]` reslice leaked capacity one element per
// handoff). Waiter lists are short — one or two entries — so the
// copy-down is cheaper than a ring.
func popWaiter[T any](list *[]*qwaiter[T]) {
	s := *list
	copy(s, s[1:])
	s[len(s)-1] = nil
	*list = s[:len(s)-1]
}

// recycle returns a waiter whose blocking operation completed. Waiters
// abandoned by killed procs (the park panics out) are never recycled —
// they die with their owner's stack.
func (q *Queue[T]) recycle(w *qwaiter[T]) {
	var zero T
	w.p, w.v, w.rdy, w.served = nil, zero, false, false
	if len(q.wfree) < 16 {
		q.wfree = append(q.wfree, w)
	}
}

// Len reports the number of buffered items.
func (q *Queue[T]) Len() int { return len(q.buf) }

// Cap reports the queue capacity.
func (q *Queue[T]) Cap() int { return q.cap }

// HighWater reports the largest buffered occupancy the queue ever
// reached — the congestion watermark for mailboxes and service queues.
func (q *Queue[T]) HighWater() int { return q.high }

// bufAppend grows the buffer and tracks the occupancy high-water mark.
func (q *Queue[T]) bufAppend(v T) {
	q.buf = append(q.buf, v)
	if len(q.buf) > q.high {
		q.high = len(q.buf)
	}
}

// Put enqueues v, blocking p while the queue is full (or, for a rendezvous
// queue, until a receiver arrives). Spurious wakes re-park.
func (q *Queue[T]) Put(p *Proc, v T) {
	if q.TryPut(v) {
		return
	}
	w := q.waiter()
	w.p, w.v = p, v
	q.puts = append(q.puts, w)
	for !w.served {
		p.park(q.putReason)
	}
	q.recycle(w)
}

// TryPut enqueues v without blocking; it reports false if the queue is full
// and no receiver is waiting.
func (q *Queue[T]) TryPut(v T) bool {
	for len(q.gets) > 0 {
		g := q.gets[0]
		popWaiter(&q.gets)
		if g.p.Gone() {
			continue // killed mid-wait; never hand it a value
		}
		g.v, g.rdy = v, true
		q.k.ReadyIfParked(g.p)
		return true
	}
	if q.cap > 0 && len(q.buf) < q.cap {
		q.bufAppend(v)
		return true
	}
	return false
}

// Get dequeues an item, blocking p while the queue is empty.
func (q *Queue[T]) Get(p *Proc) T {
	if v, ok := q.TryGet(); ok {
		return v
	}
	w := q.waiter()
	w.p = p
	q.gets = append(q.gets, w)
	for !w.rdy {
		p.park(q.getReason)
	}
	v := w.v
	q.recycle(w)
	return v
}

// TryGet dequeues without blocking; ok is false if nothing is available.
func (q *Queue[T]) TryGet() (v T, ok bool) {
	if len(q.buf) > 0 {
		v = q.buf[0]
		copy(q.buf, q.buf[1:])
		q.buf = q.buf[:len(q.buf)-1]
		q.refill()
		return v, true
	}
	for len(q.puts) > 0 { // rendezvous, or cap exceeded by blocked putters
		w := q.puts[0]
		popWaiter(&q.puts)
		if w.p.Gone() {
			continue // a killed putter's value dies with it
		}
		w.served = true
		q.k.ReadyIfParked(w.p)
		return w.v, true
	}
	return v, false
}

// refill promotes a blocked putter into freed buffer space.
func (q *Queue[T]) refill() {
	for len(q.puts) > 0 && len(q.buf) < q.cap {
		w := q.puts[0]
		popWaiter(&q.puts)
		if w.p.Gone() {
			continue
		}
		q.bufAppend(w.v)
		w.served = true
		q.k.ReadyIfParked(w.p)
	}
}

// GetCtl is Get bounded by an optional virtual deadline (0 = none) and an
// optional stop check re-evaluated on every wake: a non-nil error from stop
// abandons the wait and is returned verbatim. With deadline 0 and stop nil
// it behaves exactly like Get — the same parks at the same instants — so
// hardened callers pay nothing when no fault machinery is armed.
func (q *Queue[T]) GetCtl(p *Proc, deadline Time, stop func() error) (T, error) {
	var zero T
	check := func() error {
		if stop != nil {
			if err := stop(); err != nil {
				return err
			}
		}
		if deadline > 0 && p.k.now >= deadline {
			return ErrTimeout
		}
		return nil
	}
	if err := check(); err != nil {
		return zero, err
	}
	if v, ok := q.TryGet(); ok {
		return v, nil
	}
	w := q.waiter()
	w.p = p
	q.gets = append(q.gets, w)
	var tm Timer
	if deadline > 0 {
		tm = p.k.afterTimer(deadline-p.k.now, p.readyCB())
	}
	for !w.rdy {
		p.park(q.getReason)
		if w.rdy {
			break
		}
		if err := check(); err != nil {
			for i, g := range q.gets {
				if g == w {
					q.gets = append(q.gets[:i], q.gets[i+1:]...)
					break
				}
			}
			tm.Cancel()
			q.recycle(w)
			return zero, err
		}
	}
	tm.Cancel()
	v := w.v
	q.recycle(w)
	return v, nil
}

// GetTimeout is GetCtl with only a relative timeout; ok reports whether a
// value arrived in time.
func (q *Queue[T]) GetTimeout(p *Proc, d Time) (T, bool) {
	v, err := q.GetCtl(p, p.k.now+d, nil)
	return v, err == nil
}

// PutCtl is Put bounded by an optional virtual deadline (0 = none) and an
// optional stop check, mirroring GetCtl. On abandonment the value is
// withdrawn (never delivered). With deadline 0 and stop nil it parks at
// exactly the same instants as Put.
func (q *Queue[T]) PutCtl(p *Proc, v T, deadline Time, stop func() error) error {
	check := func() error {
		if stop != nil {
			if err := stop(); err != nil {
				return err
			}
		}
		if deadline > 0 && p.k.now >= deadline {
			return ErrTimeout
		}
		return nil
	}
	if err := check(); err != nil {
		return err
	}
	if q.TryPut(v) {
		return nil
	}
	w := q.waiter()
	w.p, w.v = p, v
	q.puts = append(q.puts, w)
	var tm Timer
	if deadline > 0 {
		tm = p.k.afterTimer(deadline-p.k.now, p.readyCB())
	}
	for !w.served {
		p.park(q.putReason)
		if w.served {
			break
		}
		if err := check(); err != nil {
			for i, u := range q.puts {
				if u == w {
					q.puts = append(q.puts[:i], q.puts[i+1:]...)
					break
				}
			}
			tm.Cancel()
			q.recycle(w)
			return err
		}
	}
	tm.Cancel()
	q.recycle(w)
	return nil
}

// Semaphore is a counting semaphore with FIFO wakeup order.
type Semaphore struct {
	k       *Kernel
	name    string
	count   int
	waiters []*semWaiter
}

type semWaiter struct {
	p       *Proc
	n       int
	granted bool
}

// NewSemaphore creates a semaphore with the given initial count.
func NewSemaphore(k *Kernel, name string, count int) *Semaphore {
	return &Semaphore{k: k, name: name, count: count}
}

// Count reports the currently available units.
func (s *Semaphore) Count() int { return s.count }

// Acquire takes n units, blocking p until they are available. Waiters are
// served strictly in FIFO order (no barging), so Acquire is starvation-free.
func (s *Semaphore) Acquire(p *Proc, n int) {
	if len(s.waiters) == 0 && s.count >= n {
		s.count -= n
		return
	}
	w := &semWaiter{p: p, n: n}
	s.waiters = append(s.waiters, w)
	for !w.granted {
		p.park(fmt.Sprintf("acquire(%d) on semaphore %s", n, s.name))
	}
}

// Release returns n units and wakes eligible waiters in order.
func (s *Semaphore) Release(n int) {
	s.count += n
	for len(s.waiters) > 0 && s.count >= s.waiters[0].n {
		w := s.waiters[0]
		s.waiters = s.waiters[1:]
		s.count -= w.n
		w.granted = true
		s.k.ReadyIfParked(w.p)
	}
}

// Event is a one-shot broadcast: procs Wait until Fire, after which Wait
// returns immediately forever.
type Event struct {
	k       *Kernel
	name    string
	fired   bool
	waiters []*Proc
}

// NewEvent creates an unfired event.
func NewEvent(k *Kernel, name string) *Event {
	return &Event{k: k, name: name}
}

// Fired reports whether the event has fired.
func (e *Event) Fired() bool { return e.fired }

// Wait blocks p until the event fires.
func (e *Event) Wait(p *Proc) {
	if e.fired {
		return
	}
	e.waiters = append(e.waiters, p)
	for !e.fired {
		p.park(fmt.Sprintf("wait on event %s", e.name))
	}
}

// Fire releases all current and future waiters. Firing twice is a no-op.
func (e *Event) Fire() {
	if e.fired {
		return
	}
	e.fired = true
	for _, p := range e.waiters {
		e.k.ReadyIfParked(p)
	}
	e.waiters = nil
}
