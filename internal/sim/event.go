package sim

import (
	"container/heap"
	"sync/atomic"
)

// event is a scheduled kernel action: either waking a parked proc or
// running a callback inside the scheduler.
type event struct {
	at  Time
	seq uint64 // tie-breaker: insertion order, for determinism
	// src identifies where the event came from: localSrc for everything a
	// kernel schedules itself, or the sending LP's id for a cross-shard
	// message delivered by a Sharded run. It participates in the total
	// order (see eventLess) so message execution order is independent of
	// when the conservative protocol happened to integrate the message.
	src int32
	// gen is the pool generation. It increments every time the event
	// object is recycled, so a stale Timer handle (cancelled after its
	// timer fired and the event was reused) can detect it points at a
	// different logical event and turn into a no-op.
	gen   uint32
	p     *Proc  // proc to wake, or nil
	epoch uint64 // p's wake epoch at scheduling; stale events are skipped
	fn    func() // callback to run in the scheduler, or nil
	// cancelled events are discarded without running and without
	// advancing the clock — a cancelled timeout must not extend a run's
	// final virtual time. They are purged lazily when they surface at the
	// head of the queue, or in bulk when they outnumber half of the live
	// entries (Kernel.noteCancel).
	cancelled bool
}

// localSrc is the src of every locally scheduled event. It sorts before
// any cross-shard message source, so at equal timestamps local events run
// first and messages run in (sender id, sender seq) order.
const localSrc int32 = -1

// eventLess is the kernel's total order: timestamp, then source, then
// per-source sequence number. For a plain sequential kernel every event
// has src == localSrc, so the order reduces to the original (at, seq)
// pair and existing determinism fingerprints are unchanged.
func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.src != b.src {
		return a.src < b.src
	}
	return a.seq < b.seq
}

// eventQueue is the scheduler's priority queue: Pop removes and returns
// the eventLess-minimum, Peek returns it without removing. Two
// implementations exist — calQueue (calendar queue, the default) and
// heapQueue (the original container/heap queue, retained behind
// QueueHeap for differential testing) — and both yield the exact same
// pop order, so runs are bit-for-bit identical under either.
type eventQueue interface {
	Push(*event)
	Pop() *event
	Peek() *event
	Len() int
	// Compact removes every cancelled event, calling onPurge for each.
	Compact(onPurge func(*event))
	// Clear drops all events (kernel shutdown).
	Clear()
}

// QueueKind selects the event-queue implementation behind a kernel.
type QueueKind int32

const (
	// QueueCalendar is the calendar queue (O(1) amortized push/pop for
	// the bursty short-horizon timer mix the simulator generates).
	QueueCalendar QueueKind = iota
	// QueueHeap is the original container/heap binary heap, kept for
	// differential testing and as a fallback.
	QueueHeap
)

// defaultQueueKind is what NewKernel uses; atomic so tests can flip it
// while parallel (-race) suites run.
var defaultQueueKind atomic.Int32

// DefaultQueueKind reports the queue implementation NewKernel selects.
func DefaultQueueKind() QueueKind { return QueueKind(defaultQueueKind.Load()) }

// SetDefaultQueueKind changes the queue implementation NewKernel selects
// and returns the previous one. Differential suites flip it around a run
// to execute the identical workload on the other queue.
func SetDefaultQueueKind(kind QueueKind) QueueKind {
	return QueueKind(defaultQueueKind.Swap(int32(kind)))
}

func newEventQueue(kind QueueKind) eventQueue {
	if kind == QueueHeap {
		return &heapQueue{}
	}
	return newCalQueue()
}

// eventHeap is a min-heap in eventLess order (the QueueHeap backend).
type eventHeap []*event

func (h eventHeap) Len() int           { return len(h) }
func (h eventHeap) Less(i, j int) bool { return eventLess(h[i], h[j]) }
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// heapQueue adapts eventHeap to the eventQueue interface.
type heapQueue struct{ h eventHeap }

func (q *heapQueue) Push(ev *event) { heap.Push(&q.h, ev) }
func (q *heapQueue) Len() int       { return len(q.h) }

func (q *heapQueue) Pop() *event {
	if len(q.h) == 0 {
		return nil
	}
	return heap.Pop(&q.h).(*event)
}

func (q *heapQueue) Peek() *event {
	if len(q.h) == 0 {
		return nil
	}
	return q.h[0]
}

func (q *heapQueue) Compact(onPurge func(*event)) {
	kept := q.h[:0]
	for _, ev := range q.h {
		if ev.cancelled {
			onPurge(ev)
		} else {
			kept = append(kept, ev)
		}
	}
	for i := len(kept); i < len(q.h); i++ {
		q.h[i] = nil
	}
	q.h = kept
	heap.Init(&q.h)
}

func (q *heapQueue) Clear() { q.h = nil }

// maxFreeEvents bounds the per-kernel event free list so a burst (a huge
// fan-out of timers) does not pin its high-water mark of event objects
// forever.
const maxFreeEvents = 1 << 14

// newEvent takes an event from the kernel's free list, or allocates one.
// Events never migrate between kernels: a Timer handle may touch its
// event's gen field from this kernel's execution context at any later
// point, so recycling through a cross-kernel pool would race under a
// parallel Sharded run.
func (k *Kernel) newEvent() *event {
	if n := len(k.free); n > 0 {
		ev := k.free[n-1]
		k.free[n-1] = nil
		k.free = k.free[:n-1]
		return ev
	}
	return &event{}
}

// freeEvent recycles a popped event. Bumping gen invalidates any Timer
// handle still pointing here.
func (k *Kernel) freeEvent(ev *event) {
	ev.gen++
	ev.p = nil
	ev.fn = nil
	ev.epoch = 0
	ev.cancelled = false
	if len(k.free) < maxFreeEvents {
		k.free = append(k.free, ev)
	}
}

func (k *Kernel) schedule(at Time, p *Proc, fn func()) *event {
	if at < k.now {
		at = k.now
	}
	k.seq++
	ev := k.newEvent()
	ev.at, ev.seq, ev.src, ev.p, ev.fn = at, k.seq, localSrc, p, fn
	if p != nil {
		ev.epoch = p.epoch
	}
	k.pq.Push(ev)
	if k.host != nil {
		k.host.HeapPush(k.pq.Len())
	}
	return ev
}

// scheduleMessage inserts a cross-shard message delivered at `at`, keyed
// by the sending LP's identity so execution order does not depend on when
// the conservative protocol integrated it. The safe-time protocol
// guarantees messages are integrated before the local clock reaches their
// delivery time; a violation is a protocol bug, not a recoverable state.
func (k *Kernel) scheduleMessage(at Time, src int32, seq uint64, fn func()) {
	if at < k.now {
		panic("sim: cross-shard message delivered in the local past (lookahead protocol violated)")
	}
	ev := k.newEvent()
	ev.at, ev.seq, ev.src, ev.fn = at, seq, src, fn
	k.pq.Push(ev)
	if k.host != nil {
		k.host.HeapPush(k.pq.Len())
	}
}

// After schedules fn to run inside the scheduler after delay d. It must be
// called from scheduler context or before Run; procs should use Advance.
func (k *Kernel) After(d Time, fn func()) {
	k.schedule(k.now+d, nil, fn)
}

// Timer is a cancellable scheduled callback. Timeout/retransmit machinery
// needs cancellation: an armed-but-never-fired deadline must leave no
// trace in the virtual timeline once the guarded operation completes.
type Timer struct {
	k   *Kernel
	ev  *event
	gen uint32
}

// AfterTimer is After returning a handle that can cancel the callback.
func (k *Kernel) AfterTimer(d Time, fn func()) *Timer {
	t := k.afterTimer(d, fn)
	return &t
}

// afterTimer is AfterTimer by value, for internal callers (GetCtl/PutCtl)
// that arm and cancel a deadline on every bounded operation and must not
// allocate a Timer each time.
func (k *Kernel) afterTimer(d Time, fn func()) Timer {
	ev := k.schedule(k.now+d, nil, fn)
	return Timer{k: k, ev: ev, gen: ev.gen}
}

// Cancel discards the timer. The event stays queued but is purged without
// running or advancing the clock — lazily when it reaches the head, or in
// bulk once cancelled entries outnumber half the live ones. Safe to call
// more than once and after the timer fired.
func (t *Timer) Cancel() {
	if t == nil || t.ev == nil {
		return
	}
	ev := t.ev
	t.ev = nil
	if ev.gen != t.gen || ev.cancelled {
		// The timer already fired (the event was recycled, possibly into
		// a new role) or was already cancelled.
		return
	}
	ev.cancelled = true
	ev.fn = nil
	t.k.noteCancel()
}
