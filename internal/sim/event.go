package sim

import "container/heap"

// event is a scheduled kernel action: either waking a parked proc or
// running a callback inside the scheduler.
type event struct {
	at    Time
	seq   uint64 // tie-breaker: insertion order, for determinism
	p     *Proc  // proc to wake, or nil
	epoch uint64 // p's wake epoch at scheduling; stale events are skipped
	fn    func() // callback to run in the scheduler, or nil
	// cancelled events are discarded at the top of the heap without
	// advancing the clock — a cancelled timeout must not extend a run's
	// final virtual time.
	cancelled bool
}

// eventHeap is a min-heap ordered by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

func (k *Kernel) schedule(at Time, p *Proc, fn func()) *event {
	if at < k.now {
		at = k.now
	}
	k.seq++
	ev := &event{at: at, seq: k.seq, p: p, fn: fn}
	if p != nil {
		ev.epoch = p.epoch
	}
	heap.Push(&k.pq, ev)
	if k.host != nil {
		k.host.HeapPush(len(k.pq))
	}
	return ev
}

// After schedules fn to run inside the scheduler after delay d. It must be
// called from scheduler context or before Run; procs should use Advance.
func (k *Kernel) After(d Time, fn func()) {
	k.schedule(k.now+d, nil, fn)
}

// Timer is a cancellable scheduled callback. Timeout/retransmit machinery
// needs cancellation: an armed-but-never-fired deadline must leave no
// trace in the virtual timeline once the guarded operation completes.
type Timer struct {
	ev *event
}

// AfterTimer is After returning a handle that can cancel the callback.
func (k *Kernel) AfterTimer(d Time, fn func()) *Timer {
	return &Timer{ev: k.schedule(k.now+d, nil, fn)}
}

// Cancel discards the timer. The event stays in the heap but is purged
// without running or advancing the clock. Safe to call more than once and
// after the timer fired.
func (t *Timer) Cancel() {
	if t == nil || t.ev == nil {
		return
	}
	t.ev.cancelled = true
	t.ev.fn = nil
	t.ev = nil
}
