package sim

import (
	"fmt"
	"math/rand"
	"runtime/debug"
)

type procState int

const (
	procNew procState = iota
	procReady
	procRunning
	procParked
	procDone
)

// Proc is a simulated thread of control. A proc's body runs on its own
// goroutine but the kernel guarantees only one proc executes at a time;
// between kernel primitives a proc runs instantaneously in virtual time.
type Proc struct {
	k          *Kernel
	id         int
	name       string
	wake       chan struct{}
	state      procState
	waitReason string
	// waitTarget qualifies waitReason for Advance parks ("advancing to
	// <target>"): the formatted string is built lazily in deadlock
	// reports, keeping the Advance hot path allocation-free.
	waitTarget Time
	rng        *rand.Rand
	// readySelf is the cached "wake me if parked" callback handed to
	// deadline timers, built once per proc instead of once per bounded
	// operation.
	readySelf func()
	// epoch increments on every resume; wake events remember the epoch
	// they were scheduled under so stale wakes (the proc was resumed by
	// another source meanwhile) are discarded.
	epoch uint64
	// killed marks a proc condemned by fault injection: the next kernel
	// primitive it touches unwinds its stack (deferred cleanup still runs).
	killed bool
}

// shutdownSentinel unwinds a proc's stack during kernel shutdown.
type shutdownSentinel struct{}

// killSentinel unwinds one killed proc's stack; unlike shutdownSentinel it
// does not abort the simulation — the other procs keep running.
type killSentinel struct{}

func (p *Proc) run(fn func(p *Proc)) {
	<-p.wake // first activation, scheduled by Spawn
	defer func() {
		p.state = procDone
		p.k.live--
		if r := recover(); r != nil {
			_, isShutdown := r.(shutdownSentinel)
			_, isKill := r.(killSentinel)
			if !isShutdown && !isKill {
				// Real panic in simulated code: abort the simulation and
				// surface the panic (with stack) through Run's error.
				p.k.Abort(fmt.Errorf("sim: proc %q panicked: %v\n%s", p.name, r, debug.Stack()))
			}
		}
		p.k.ctl <- struct{}{}
	}()
	if p.k.shutdown || p.killed {
		return
	}
	p.state = procRunning
	fn(p)
}

// Name reports the proc's name.
func (p *Proc) Name() string { return p.name }

// ID reports the proc's unique id (1-based, in spawn order).
func (p *Proc) ID() int { return p.id }

// Kernel returns the owning kernel.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now reports current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// Rand returns a per-proc deterministic random source, lazily seeded from
// the kernel seed and the proc id.
func (p *Proc) Rand() *rand.Rand {
	if p.rng == nil {
		p.rng = rand.New(rand.NewSource(p.k.rng.Int63() ^ int64(p.id)<<32))
	}
	return p.rng
}

// readyCB returns the proc's cached self-wake callback for deadline
// timers: equivalent to func() { p.k.ReadyIfParked(p) } but allocated
// once per proc.
func (p *Proc) readyCB() func() {
	if p.readySelf == nil {
		p.readySelf = func() { p.k.ReadyIfParked(p) }
	}
	return p.readySelf
}

// checkRunning panics if a kernel primitive is invoked from a goroutine
// other than the currently running proc — the classic way to corrupt a
// cooperative simulation.
func (p *Proc) checkRunning() {
	if p.k.running != p {
		panic(fmt.Sprintf("sim: primitive called on proc %q which is not the running proc", p.name))
	}
}

// park blocks the proc until something calls Kernel.ready(p). reason is
// surfaced in deadlock reports.
func (p *Proc) park(reason string) {
	p.checkRunning()
	p.state = procParked
	p.waitReason = reason
	p.k.ctl <- struct{}{}
	<-p.wake
	p.waitReason = ""
	if p.k.shutdown {
		panic(shutdownSentinel{})
	}
	if p.killed {
		panic(killSentinel{})
	}
}

// Park blocks the proc until another component calls Kernel.Ready on it.
// It is the extension point synchronization layers (MPI matching, Pilot
// channels) build on; reason appears in deadlock reports.
func (p *Proc) Park(reason string) { p.park(reason) }

// Advance blocks the proc for duration d of virtual time. It models
// computation or a fixed hardware latency. A spurious wake from another
// component (e.g. an asynchronous completion poking the proc) re-parks
// until the full duration has elapsed, so timing is never shortened.
func (p *Proc) Advance(d Time) {
	p.checkRunning()
	if d < 0 {
		panic("sim: negative Advance")
	}
	target := p.k.now + d
	for p.k.now < target || d == 0 {
		d = -1 // a zero advance still yields exactly once
		p.state = procParked
		p.waitReason = "advancing"
		p.waitTarget = target
		p.k.schedule(target, p, nil)
		p.k.ctl <- struct{}{}
		<-p.wake
		p.waitReason = ""
		p.waitTarget = 0
		if p.k.shutdown {
			panic(shutdownSentinel{})
		}
		if p.killed {
			panic(killSentinel{})
		}
	}
}

// AdvanceTo blocks until virtual time t (no-op if t is in the past).
func (p *Proc) AdvanceTo(t Time) {
	if t > p.k.now {
		p.Advance(t - p.k.now)
	}
}

// Yield reschedules the proc at the current instant, letting other procs
// scheduled for the same time run first.
func (p *Proc) Yield() { p.Advance(0) }

// Fatalf aborts the whole simulation with a formatted error. It does not
// return.
func (p *Proc) Fatalf(format string, args ...any) {
	p.checkRunning()
	p.k.Abort(fmt.Errorf(format, args...))
	panic(shutdownSentinel{})
}

// Kill condemns the proc: if parked it is woken immediately, and the next
// kernel primitive it touches unwinds its stack (running its deferred
// cleanup) without aborting the simulation. Fault injection uses this to
// crash one simulated process while the rest of the application keeps
// going. Safe from scheduler context; killing a finished proc is a no-op.
func (p *Proc) Kill() {
	if p.state == procDone || p.killed {
		return
	}
	p.killed = true
	p.k.ReadyIfParked(p)
}

// Killed reports whether the proc was condemned by Kill.
func (p *Proc) Killed() bool { return p.killed }

// Done reports whether the proc has finished (normally or by unwinding).
func (p *Proc) Done() bool { return p.state == procDone }

// Gone reports whether the proc can no longer consume wakeups or values:
// finished, or killed and about to unwind. Queues use it to skip dead
// waiters.
func (p *Proc) Gone() bool { return p.state == procDone || p.killed }
