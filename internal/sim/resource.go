package sim

import "math"

// Resource models a serial transmission medium (a bus, a NIC, an Ethernet
// link): transfers queue FIFO for the medium, occupy it for
// startup + bytes/bandwidth, and then propagate for an additional fixed
// latency that does not occupy the medium.
type Resource struct {
	k *Kernel
	// Name identifies the resource in traces.
	Name string
	// Startup is per-transfer setup time occupying the medium.
	Startup Time
	// BytesPerSec is the medium bandwidth; zero or negative means infinite.
	BytesPerSec float64
	// Latency is propagation delay added after serialization.
	Latency Time

	busyUntil Time
	busy      Time
}

// NewResource creates a resource.
func NewResource(k *Kernel, name string, startup Time, bytesPerSec float64, latency Time) *Resource {
	return &Resource{k: k, Name: name, Startup: startup, BytesPerSec: bytesPerSec, Latency: latency}
}

// SerializationTime reports how long n bytes occupy the medium.
func (r *Resource) SerializationTime(n int) Time {
	d := r.Startup
	if r.BytesPerSec > 0 && n > 0 {
		d += Time(math.Ceil(float64(n) / r.BytesPerSec * float64(Second)))
	}
	return d
}

// Send blocks p while the transfer queues for and occupies the medium, and
// returns the virtual time at which the data arrives at the far end
// (occupancy end + propagation latency). The caller decides whether to wait
// for arrival (AdvanceTo) or to schedule a delivery callback.
func (r *Resource) Send(p *Proc, bytes int) (arrival Time) {
	start := r.k.now
	if r.busyUntil > start {
		start = r.busyUntil
	}
	end := start + r.SerializationTime(bytes)
	r.busyUntil = end
	r.busy += end - start
	p.AdvanceTo(end)
	return end + r.Latency
}

// Reserve is Send for scheduler context: it books medium occupancy without
// a proc to block, returning the arrival time. Used by asynchronous
// delivery paths.
func (r *Resource) Reserve(bytes int) (arrival Time) {
	start := r.k.now
	if r.busyUntil > start {
		start = r.busyUntil
	}
	end := start + r.SerializationTime(bytes)
	r.busyUntil = end
	r.busy += end - start
	return end + r.Latency
}

// ReserveFor books the medium for a caller-computed occupancy (the caller
// applies its own rate instead of the resource's BytesPerSec), returning
// the arrival time at the far end. The chunked transfer path uses this to
// book NIC time at the raw wire rate while plain messages on the same NIC
// keep the resource's end-to-end fitted rate.
func (r *Resource) ReserveFor(occupancy Time) (arrival Time) {
	start := r.k.now
	if r.busyUntil > start {
		start = r.busyUntil
	}
	end := start + occupancy
	r.busyUntil = end
	r.busy += end - start
	return end + r.Latency
}

// BusyUntil reports when the medium becomes free.
func (r *Resource) BusyUntil() Time { return r.busyUntil }

// Busy reports the cumulative time the medium spent occupied — the
// numerator of its saturation (Busy / elapsed virtual time).
func (r *Resource) Busy() Time { return r.busy }
