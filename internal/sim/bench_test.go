package sim

import "testing"

// BenchmarkEventThroughput measures raw scheduler speed: one proc
// advancing b.N times (one heap event each).
func BenchmarkEventThroughput(b *testing.B) {
	k := NewKernel(1)
	k.Spawn("ticker", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Advance(Microsecond)
		}
	})
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkQueueHandoff measures the rendezvous fast path: producer and
// consumer alternating through an unbuffered queue.
func BenchmarkQueueHandoff(b *testing.B) {
	k := NewKernel(1)
	q := NewQueue[int](k, "q", 0)
	k.Spawn("prod", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			q.Put(p, i)
		}
	})
	k.Spawn("cons", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			q.Get(p)
		}
	})
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkContextSwitch measures the goroutine ping-pong cost of the
// cooperative scheduler with many procs at one timestamp.
func BenchmarkContextSwitch(b *testing.B) {
	k := NewKernel(1)
	const procs = 64
	each := b.N/procs + 1
	for i := 0; i < procs; i++ {
		k.Spawn("p", func(p *Proc) {
			for j := 0; j < each; j++ {
				p.Yield()
			}
		})
	}
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}
