package sim

import "testing"

// BenchmarkEventThroughput measures raw scheduler speed: one proc
// advancing b.N times (one heap event each).
func BenchmarkEventThroughput(b *testing.B) {
	k := NewKernel(1)
	k.Spawn("ticker", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Advance(Microsecond)
		}
	})
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkQueueHandoff measures the rendezvous fast path: producer and
// consumer alternating through an unbuffered queue.
func BenchmarkQueueHandoff(b *testing.B) {
	k := NewKernel(1)
	q := NewQueue[int](k, "q", 0)
	k.Spawn("prod", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			q.Put(p, i)
		}
	})
	k.Spawn("cons", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			q.Get(p)
		}
	})
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkContextSwitch measures the goroutine ping-pong cost of the
// cooperative scheduler with many procs at one timestamp.
func BenchmarkContextSwitch(b *testing.B) {
	k := NewKernel(1)
	const procs = 64
	each := b.N/procs + 1
	for i := 0; i < procs; i++ {
		k.Spawn("p", func(p *Proc) {
			for j := 0; j < each; j++ {
				p.Yield()
			}
		})
	}
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkHeapPushPop measures the event queue alone: schedule b.N
// staggered callbacks, then drain them in timestamp order. The /calendar
// and /heap variants run the identical workload on each queue kind — the
// `make bench-kernel` comparison pair.
func BenchmarkHeapPushPop(b *testing.B) {
	b.Run("calendar", func(b *testing.B) { benchPushPop(b, QueueCalendar) })
	b.Run("heap", func(b *testing.B) { benchPushPop(b, QueueHeap) })
}

func benchPushPop(b *testing.B, kind QueueKind) {
	k := NewKernelQueue(1, kind)
	for i := 0; i < b.N; i++ {
		// Staggered deadlines exercise real resort work rather than the
		// sorted-append fast path; the horizon grows with b.N so event
		// density per unit of virtual time stays constant — the shape a
		// simulator generates — instead of piling every event the bench
		// harness adds onto the same thousand timestamps.
		at := Time(i/1000)*Millisecond + Time((i*7919)%1000)*Microsecond
		k.After(at, func() {})
	}
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkQueueChurn measures steady-state scheduling — a bounded
// population of in-flight timers with constant arm/fire churn, the shape
// Co-Pilot scan loops generate — on both queue kinds.
func BenchmarkQueueChurn(b *testing.B) {
	b.Run("calendar", func(b *testing.B) { benchChurn(b, QueueCalendar) })
	b.Run("heap", func(b *testing.B) { benchChurn(b, QueueHeap) })
}

func benchChurn(b *testing.B, kind QueueKind) {
	k := NewKernelQueue(1, kind)
	const fanout = 256
	n := b.N
	var arm func()
	fired := 0
	arm = func() {
		fired++
		if fired < n {
			k.After(Time(((fired*7919)%997)+1)*Microsecond, arm)
		}
	}
	for i := 0; i < fanout && i < n; i++ {
		k.After(Time(((i*6271)%997)+1)*Microsecond, arm)
	}
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkTimerCancelPurge measures the cancelled-timer path: every
// timer is armed and cancelled before it fires, so the run is pure
// schedule + purge/compact with no callback ever executing.
func BenchmarkTimerCancelPurge(b *testing.B) {
	b.Run("calendar", func(b *testing.B) { benchCancelPurge(b, QueueCalendar) })
	b.Run("heap", func(b *testing.B) { benchCancelPurge(b, QueueHeap) })
}

func benchCancelPurge(b *testing.B, kind QueueKind) {
	k := NewKernelQueue(1, kind)
	for i := 0; i < b.N; i++ {
		k.AfterTimer(Time(i)*Microsecond, func() { b.Error("cancelled timer fired") }).Cancel()
	}
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkEventDispatch measures the full dispatch cycle — heap pop,
// clock advance, proc wake, park — for a single proc self-scheduling.
func BenchmarkEventDispatch(b *testing.B) {
	benchDispatch(b, nil)
}

// BenchmarkEventDispatchProbed is BenchmarkEventDispatch with a host
// probe attached; the delta against the unprobed run is the
// instrumentation's whole per-event cost (the <2% overhead budget).
func BenchmarkEventDispatchProbed(b *testing.B) {
	benchDispatch(b, countingProbe{n: new(int)})
}

func benchDispatch(b *testing.B, probe HostProbe) {
	k := NewKernel(1)
	if probe != nil {
		k.SetHostProbe(probe)
	}
	k.Spawn("ticker", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Advance(Microsecond)
		}
	})
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// countingProbe is the cheapest possible HostProbe — the benchmark pair
// above isolates the kernel's hook-call overhead from any profiler logic.
type countingProbe struct{ n *int }

func (c countingProbe) Event()         { *c.n++ }
func (c countingProbe) HeapPush(int)   {}
func (c countingProbe) HeapPop()       {}
func (c countingProbe) CancelPurge()   {}
func (c countingProbe) SliceStart(int) {}
func (c countingProbe) SliceEnd(int)   {}
