package sim

import (
	"errors"
	"fmt"
	"sync"
)

// ErrShardStopped aborts the kernels of the surviving logical processes
// when another LP's body fails: their Run calls return it after unwinding.
var ErrShardStopped = errors.New("sim: sharded run stopped by another shard's failure")

// Sharded runs multiple kernels — logical processes (LPs) — concurrently
// on host goroutines under a conservative safe-time protocol. Each LP owns
// a private kernel (its own event queue, clock, procs and RNG), so the
// whole sequential machinery runs unmodified inside a shard. LPs that
// exchange messages must be connected by Link, which declares the minimum
// virtual latency (the lookahead) of every message on that edge; the
// protocol then computes, per LP, a safe horizon ("grant") below which
// events provably cannot be affected by any future cross-shard message,
// and kernels dispatch freely below it without coordination.
//
// Determinism: cross-shard messages are ordered by (delivery time, sender
// id, sender sequence) via the kernel's eventLess order, which makes
// execution independent of when the protocol happened to hand a message
// over. A Sharded run with W workers is therefore bit-for-bit identical
// to the same run with 1 worker.
//
// The protocol is barrier-free: there is no global epoch or synchronized
// round. A blocked LP computes the exact least-fixed-point safe horizon
// (a shortest-path relaxation over "earliest time each LP could possibly
// execute", with link latencies as edge weights) from a consistent
// snapshot under the coordinator mutex, so safe time jumps directly to
// the bound instead of creeping forward one lookahead per null-message
// exchange, and only the LPs whose horizon actually moved are woken.
type Sharded struct {
	mu       sync.Mutex
	lps      []*LP
	workers  int
	tokens   chan struct{}
	started  bool
	stopped  bool
	quiesced bool
	// solver scratch, reused across solves (all under mu)
	dist    []Time
	grants  []Time
	settled []bool
}

// lpStatus is an LP's coordination state, guarded by Sharded.mu.
type lpStatus int8

const (
	lpRunning  lpStatus = iota // body executing (or not yet started)
	lpBlocked                  // parked in awaitGrant/awaitWork
	lpFinished                 // body returned
)

// LP is one logical process of a Sharded run.
type LP struct {
	s    *Sharded
	idx  int
	name string
	body func(*LP) error

	in  []*shardLink
	out []*shardLink
	// minOutLat is the LP's lookahead: the smallest latency over its out
	// links, Forever when it has none (it can never send).
	minOutLat Time

	// All fields below are guarded by s.mu.
	k       *Kernel // attached kernel (nil until Attach)
	status  lpStatus
	nextAt  Time // when blocked: next local event time (Forever if none)
	wm      Time // published promise: no future delivery from this LP below wm; monotonic
	grant   Time // last computed safe horizon for this LP
	inbox   []xmsg
	postSeq uint64
	err     error

	kick chan struct{} // cap 1; wakes a blocked LP
}

type shardLink struct {
	from, to *LP
	latency  Time
}

// xmsg is one posted cross-shard message awaiting integration.
type xmsg struct {
	at  Time
	src int32
	seq uint64
	fn  func()
}

// NewSharded creates a parallel driver running at most workers LP bodies
// concurrently. workers < 1 panics; workers == 1 gives the sequential
// reference execution every parallel run must match bit-for-bit.
func NewSharded(workers int) *Sharded {
	if workers < 1 {
		panic("sim: Sharded needs at least one worker")
	}
	s := &Sharded{workers: workers, tokens: make(chan struct{}, workers)}
	for i := 0; i < workers; i++ {
		s.tokens <- struct{}{}
	}
	return s
}

// AddLP registers a logical process. body builds the LP's world (creating
// a kernel, calling lp.Attach on it if the LP exchanges messages) and
// returns when the shard's simulation is done. Must be called before Run.
func (s *Sharded) AddLP(name string, body func(*LP) error) *LP {
	if s.started {
		panic("sim: AddLP after Run")
	}
	lp := &LP{
		s:         s,
		idx:       len(s.lps),
		name:      name,
		body:      body,
		minOutLat: Forever,
		nextAt:    Forever,
		wm:        Forever, // no out links yet: cannot send at all
		grant:     Forever, // no in links yet: nothing can arrive
		kick:      make(chan struct{}, 1),
	}
	s.lps = append(s.lps, lp)
	return lp
}

// Link declares that from may post messages to to with at least latency
// of virtual delay — the lookahead the safe-time protocol leans on.
// Latency must be positive: a zero-lookahead cycle admits no conservative
// parallelism and would stall the protocol.
func (s *Sharded) Link(from, to *LP, latency Time) {
	if s.started {
		panic("sim: Link after Run")
	}
	if latency <= 0 {
		panic("sim: Link latency must be positive (it is the conservative lookahead)")
	}
	if from == to {
		panic("sim: self-link is meaningless (local sends need no protocol)")
	}
	l := &shardLink{from: from, to: to, latency: latency}
	from.out = append(from.out, l)
	to.in = append(to.in, l)
	if latency < from.minOutLat {
		from.minOutLat = latency
	}
	from.wm = from.minOutLat // initial promise: nothing can be sent before t=0 + lookahead
	to.grant = 0             // something may arrive; horizon starts at zero until solved
}

// Name reports the LP's name. Idx reports its stable index (its message
// source id: cross-shard ties at one instant resolve in index order).
func (lp *LP) Name() string { return lp.name }
func (lp *LP) Idx() int     { return lp.idx }

// Attach binds a kernel to this LP so its Run gates event dispatch on the
// safe-time protocol. Must be called from the LP's own body, before the
// kernel runs. LPs with no links may skip Attach; their kernels then run
// completely free of coordination.
func (lp *LP) Attach(k *Kernel) {
	s := lp.s
	s.mu.Lock()
	lp.k = k
	k.gov = lp
	s.solve()
	k.grant = lp.grant
	s.mu.Unlock()
}

// Post delivers fn into to's kernel after delay of virtual time (relative
// to the sending LP's clock). It must be called from the sending LP's
// execution context, delay must be at least the link latency, and a link
// from lp to to must exist. fn runs inside the receiving kernel's
// scheduler at the delivery instant; everything it captures is handed
// over with proper synchronization.
func (lp *LP) Post(to *LP, delay Time, fn func()) {
	if lp.k == nil {
		panic("sim: Post before Attach")
	}
	var link *shardLink
	for _, l := range lp.out {
		if l.to == to {
			link = l
			break
		}
	}
	if link == nil {
		panic(fmt.Sprintf("sim: Post %s->%s without a Link", lp.name, to.name))
	}
	if delay < link.latency {
		panic(fmt.Sprintf("sim: Post %s->%s delay %s below link latency %s", lp.name, to.name, delay, link.latency))
	}
	at := satAdd(lp.k.now, delay)
	s := lp.s
	s.mu.Lock()
	if at < lp.wm {
		// The sender is violating its own published promise — a protocol
		// bug, never a recoverable condition.
		s.mu.Unlock()
		panic(fmt.Sprintf("sim: Post %s->%s at %s below published watermark %s", lp.name, to.name, at, lp.wm))
	}
	lp.postSeq++
	if to.status != lpFinished {
		to.inbox = append(to.inbox, xmsg{at: at, src: int32(lp.idx), seq: lp.postSeq, fn: fn})
		if to.status == lpBlocked {
			to.kickLocked()
		}
	}
	s.mu.Unlock()
}

func (lp *LP) kickLocked() {
	select {
	case lp.kick <- struct{}{}:
	default:
	}
}

// integrateLocked moves pending inbox messages into the kernel's queue.
// The queue's (at, src, seq) order makes the insertion moment irrelevant
// to execution order. Caller holds s.mu and owns k.
func (lp *LP) integrateLocked(k *Kernel) bool {
	if len(lp.inbox) == 0 {
		return false
	}
	for i := range lp.inbox {
		m := &lp.inbox[i]
		k.scheduleMessage(m.at, m.src, m.seq, m.fn)
		m.fn = nil
	}
	lp.inbox = lp.inbox[:0]
	return true
}

// satAdd adds two virtual durations, saturating at Forever.
func satAdd(a, b Time) Time {
	if a >= Forever-b {
		return Forever
	}
	return a + b
}

// solve recomputes every LP's safe horizon from a consistent snapshot.
//
// dist[i] is the earliest virtual time LP i could possibly execute
// another event: its own next pending event or inbox delivery, or the
// earliest message any other LP could still send it. Blocked LPs expose
// their exact next-event time; running and finished LPs are opaque, but
// their published (monotonic, forever-valid) watermark bounds anything
// they may yet deliver. A Dijkstra relaxation over the link graph with
// latencies as edge weights yields the least fixed point directly —
// grant[i] = min over senders j of (dist[j] + latency(j,i)) — instead of
// creeping toward it one lookahead at a time.
//
// Caller holds s.mu.
func (s *Sharded) solve() {
	n := len(s.lps)
	if cap(s.dist) < n {
		s.dist = make([]Time, n)
		s.grants = make([]Time, n)
		s.settled = make([]bool, n)
	}
	dist, grants, settled := s.dist[:n], s.grants[:n], s.settled[:n]
	for i, lp := range s.lps {
		settled[i] = false
		grants[i] = Forever
		d := Forever
		if lp.status == lpBlocked {
			d = lp.nextAt
			for j := range lp.inbox {
				if lp.inbox[j].at < d {
					d = lp.inbox[j].at
				}
			}
		}
		dist[i] = d
	}
	// Opaque (running/finished) LPs bound their deliveries by their
	// published watermark.
	for _, lp := range s.lps {
		if lp.status != lpBlocked {
			for _, l := range lp.out {
				if lp.wm < grants[l.to.idx] {
					grants[l.to.idx] = lp.wm
				}
			}
		}
	}
	for i := range dist {
		if grants[i] < dist[i] {
			dist[i] = grants[i]
		}
	}
	// Dijkstra over blocked LPs (small n: linear selection).
	for {
		u, best := -1, Forever
		for i := range dist {
			if !settled[i] && dist[i] < best {
				u, best = i, dist[i]
			}
		}
		if u < 0 {
			break
		}
		settled[u] = true
		if lp := s.lps[u]; lp.status == lpBlocked {
			for _, l := range lp.out {
				cand := satAdd(best, l.latency)
				ti := l.to.idx
				if cand < grants[ti] {
					grants[ti] = cand
					if cand < dist[ti] {
						dist[ti] = cand
					}
				}
			}
		}
	}
	for i, lp := range s.lps {
		if len(lp.in) > 0 {
			lp.grant = grants[i]
		}
		if lp.status == lpBlocked {
			if w := satAdd(dist[i], lp.minOutLat); w > lp.wm {
				lp.wm = w
			}
		}
	}
}

// settleLocked runs after every coordination-state change (an LP blocked,
// finished, or new horizons were solved): it kicks every blocked LP that
// now has something to do — pending inbox messages or a horizon past its
// next event — and, if nothing in the system can make progress anymore,
// declares global quiescence and releases every parked LP. With positive
// lookahead on every link, "no LP running, none eligible" implies no
// finite pending event exists anywhere: nothing will ever happen again.
func (s *Sharded) settleLocked() {
	alive := false
	for _, lp := range s.lps {
		switch lp.status {
		case lpRunning:
			alive = true
		case lpBlocked:
			if len(lp.inbox) > 0 || lp.nextAt < lp.grant {
				lp.kickLocked()
				alive = true
			}
		}
	}
	if alive || s.quiesced || s.stopped {
		return
	}
	s.quiesced = true
	for _, lp := range s.lps {
		if lp.status == lpBlocked {
			lp.kickLocked()
		}
	}
}

// awaitGrant blocks the LP until its safe horizon extends past at, or
// earlier cross-shard messages arrive to integrate, or the run is
// stopping (then the kernel is aborted). Called from RunUntil when the
// next event is not yet proven safe.
func (lp *LP) awaitGrant(k *Kernel, at Time) {
	s := lp.s
	s.mu.Lock()
	for {
		if s.stopped {
			s.mu.Unlock()
			k.Abort(ErrShardStopped)
			return
		}
		if lp.integrateLocked(k) {
			at = k.nextEventAt()
		}
		if s.quiesced {
			// End of virtual time: every LP is drained, no message can
			// ever be produced again. Lift the gate entirely.
			k.grant = Forever
			s.mu.Unlock()
			return
		}
		if at < lp.grant {
			k.grant = lp.grant
			s.mu.Unlock()
			return
		}
		lp.status = lpBlocked
		lp.nextAt = at
		s.solve()
		s.settleLocked()
		if len(lp.inbox) > 0 || at < lp.grant {
			// Already serviceable (settleLocked queued a self-kick; it is
			// drained below so it cannot cause a stale wake later).
			lp.status = lpRunning
			s.drainKick(lp)
			continue
		}
		s.mu.Unlock()
		s.releaseToken()
		<-lp.kick
		s.acquireToken()
		s.mu.Lock()
		lp.status = lpRunning
		at = k.nextEventAt()
	}
}

func (s *Sharded) drainKick(lp *LP) {
	select {
	case <-lp.kick:
	default:
	}
}

// awaitWork parks an attached LP whose queue ran dry: cross-shard
// messages may still create work. It reports whether new work arrived;
// false means the run is globally quiescent (or stopping) and the kernel
// should wind down normally.
func (lp *LP) awaitWork(k *Kernel) bool {
	s := lp.s
	if len(lp.in) == 0 {
		return false // nothing can ever arrive
	}
	s.mu.Lock()
	for {
		if s.stopped {
			s.mu.Unlock()
			k.Abort(ErrShardStopped)
			return false
		}
		if lp.integrateLocked(k) {
			lp.status = lpRunning
			k.grant = lp.grant
			s.mu.Unlock()
			return true
		}
		if s.quiesced {
			s.mu.Unlock()
			return false
		}
		lp.status = lpBlocked
		lp.nextAt = Forever
		s.solve()
		s.settleLocked()
		s.mu.Unlock()
		s.releaseToken()
		<-lp.kick
		s.acquireToken()
		s.mu.Lock()
	}
}

func (k *Kernel) nextEventAt() Time {
	if ev := k.pq.Peek(); ev != nil {
		return ev.at
	}
	return Forever
}

func (s *Sharded) acquireToken() { <-s.tokens }
func (s *Sharded) releaseToken() { s.tokens <- struct{}{} }

// Run executes every LP body, at most `workers` concurrently, and blocks
// until all complete. It returns the first (by LP registration order)
// body error that is not the induced ErrShardStopped, or nil.
func (s *Sharded) Run() error {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		panic("sim: Sharded.Run called twice")
	}
	s.started = true
	s.mu.Unlock()
	var wg sync.WaitGroup
	for _, lp := range s.lps {
		wg.Add(1)
		go func(lp *LP) {
			defer wg.Done()
			s.acquireToken()
			err := lp.body(lp)
			s.mu.Lock()
			lp.err = err
			lp.status = lpFinished
			lp.wm = Forever
			lp.inbox = nil
			if err != nil {
				s.stopped = true
				for _, o := range s.lps {
					if o.status == lpBlocked {
						o.kickLocked()
					}
				}
			} else {
				s.solve()
				s.settleLocked()
			}
			s.mu.Unlock()
			s.releaseToken()
		}(lp)
	}
	wg.Wait()
	var induced error
	for _, lp := range s.lps {
		if lp.err != nil {
			if !errors.Is(lp.err, ErrShardStopped) {
				return lp.err
			}
			induced = lp.err
		}
	}
	return induced
}
