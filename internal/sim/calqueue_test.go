package sim

import (
	"fmt"
	"math/rand"
	"testing"
)

// queueHarness drives a raw eventQueue through the kernel's usage
// contract: pushes never go below the last popped timestamp (the kernel
// clamps at < now), cancels mark queued events, and Compact purges them.
type queueHarness struct {
	q     eventQueue
	floor Time
}

func (h *queueHarness) push(ev *event) {
	if ev.at < h.floor {
		ev.at = h.floor
	}
	h.q.Push(ev)
}

func (h *queueHarness) pop() *event {
	ev := h.q.Pop()
	if ev != nil {
		h.floor = ev.at
	}
	return ev
}

// evKey is a stable identity for comparing pop orders across queues.
func evKey(ev *event) string {
	if ev == nil {
		return "<nil>"
	}
	return fmt.Sprintf("%d/%d/%d", ev.at, ev.src, ev.seq)
}

// runDifferential feeds the identical operation stream to a calendar
// queue and a heap queue and asserts every pop (and compaction survivor
// set) matches. Each queue gets its own event objects (they are mutated
// in place by compaction) built from the same specs.
func runDifferential(t *testing.T, rng *rand.Rand, ops int) {
	t.Helper()
	cal := &queueHarness{q: newCalQueue()}
	hp := &queueHarness{q: &heapQueue{}}
	var seq uint64
	// Parallel live sets, index-aligned, for cancel targeting.
	var calLive, hpLive []*event
	for i := 0; i < ops; i++ {
		switch op := rng.Intn(10); {
		case op < 5: // push
			seq++
			at := cal.floor
			switch rng.Intn(4) {
			case 0: // clustered short-horizon (the Co-Pilot scan idiom)
				at += Time(rng.Intn(2000))
			case 1: // same-instant burst
			case 2: // long horizon
				at += Time(rng.Int63n(int64(Second)))
			case 3: // extreme, near end of time
				if rng.Intn(20) == 0 {
					at = Forever - Time(rng.Intn(3))
				} else {
					at += Time(rng.Int63n(int64(3600*Second)))
				}
			}
			src := localSrc
			if rng.Intn(4) == 0 {
				src = int32(rng.Intn(3))
			}
			ce := &event{at: at, seq: seq, src: src}
			he := &event{at: at, seq: seq, src: src}
			cal.push(ce)
			hp.push(he)
			calLive = append(calLive, ce)
			hpLive = append(hpLive, he)
		case op < 8: // pop (and purge cancelled heads, like the kernel)
			for {
				pc, ph := cal.pop(), hp.pop()
				if evKey(pc) != evKey(ph) {
					t.Fatalf("op %d: pop mismatch: cal=%s heap=%s", i, evKey(pc), evKey(ph))
				}
				if pc == nil || !pc.cancelled {
					break
				}
			}
		case op < 9: // cancel a random live event (both copies)
			if len(calLive) > 0 {
				j := rng.Intn(len(calLive))
				calLive[j].cancelled = true
				hpLive[j].cancelled = true
			}
		default: // compact
			var pc, ph []string
			cal.q.Compact(func(ev *event) { pc = append(pc, evKey(ev)) })
			hp.q.Compact(func(ev *event) { ph = append(ph, evKey(ev)) })
			if len(pc) != len(ph) {
				t.Fatalf("op %d: compact purged %d vs %d", i, len(pc), len(ph))
			}
			if cal.q.Len() != hp.q.Len() {
				t.Fatalf("op %d: post-compact len %d vs %d", i, cal.q.Len(), hp.q.Len())
			}
		}
		if cal.q.Len() != hp.q.Len() {
			t.Fatalf("op %d: len mismatch %d vs %d", i, cal.q.Len(), hp.q.Len())
		}
		if pk, hk := evKey(cal.q.Peek()), evKey(hp.q.Peek()); pk != hk {
			t.Fatalf("op %d: peek mismatch cal=%s heap=%s", i, pk, hk)
		}
	}
	// Drain both fully: the tails must agree too.
	for cal.q.Len() > 0 {
		if pc, ph := evKey(cal.pop()), evKey(hp.pop()); pc != ph {
			t.Fatalf("drain: pop mismatch cal=%s heap=%s", pc, ph)
		}
	}
	if hp.q.Len() != 0 {
		t.Fatalf("heap retains %d events after calendar drained", hp.q.Len())
	}
}

// TestQueueDifferentialProperty runs randomized schedule/cancel/compact
// streams against both queue implementations; identical pop orders are
// the determinism foundation the bit-for-bit guarantees sit on.
func TestQueueDifferentialProperty(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		runDifferential(t, rand.New(rand.NewSource(seed)), 600)
	}
}

// TestCalQueueResizeStress forces many grow/shrink cycles and checks
// global ordering across them.
func TestCalQueueResizeStress(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	q := newCalQueue()
	var seq uint64
	var floor Time
	phase := func(pushes, pops int) {
		for i := 0; i < pushes; i++ {
			seq++
			q.Push(&event{at: floor + Time(rng.Int63n(int64(Millisecond))), seq: seq})
		}
		last := struct {
			at  Time
			seq uint64
		}{-1, 0}
		for i := 0; i < pops && q.Len() > 0; i++ {
			ev := q.Pop()
			if ev.at < last.at || (ev.at == last.at && ev.seq < last.seq) {
				t.Fatalf("out of order: (%d,%d) after (%d,%d)", ev.at, ev.seq, last.at, last.seq)
			}
			last.at, last.seq = ev.at, ev.seq
			floor = ev.at
		}
	}
	phase(5000, 4000)  // grow far past the initial 16 buckets
	phase(100, 1050)   // shrink back down
	phase(20000, 8000) // grow again with a moved floor
	for q.Len() > 0 {
		phase(0, 1000)
	}
}

// TestCalQueueForeverEvents exercises the saturating window math at the
// end of virtual time.
func TestCalQueueForeverEvents(t *testing.T) {
	q := newCalQueue()
	q.Push(&event{at: Forever, seq: 2})
	q.Push(&event{at: Forever - 1, seq: 3})
	q.Push(&event{at: 5, seq: 1})
	for i, want := range []Time{5, Forever - 1, Forever} {
		if got := q.Pop(); got == nil || got.at != want {
			t.Fatalf("pop %d: got %v, want at=%d", i, got, want)
		}
	}
}

// FuzzQueueDifferential drives both queues from a fuzz-generated op
// stream; any divergence in pop order is a crash.
func FuzzQueueDifferential(f *testing.F) {
	f.Add([]byte{0x01, 0x40, 0x81, 0x02, 0xc0, 0x03})
	f.Add([]byte{0x00, 0x00, 0x80, 0x80, 0x40})
	f.Fuzz(func(t *testing.T, data []byte) {
		cal := &queueHarness{q: newCalQueue()}
		hp := &queueHarness{q: &heapQueue{}}
		var seq uint64
		var calLive, hpLive []*event
		for _, b := range data {
			switch b >> 6 {
			case 0, 1: // push; low bits scale the horizon
				seq++
				at := cal.floor + Time(b&0x3f)*Time(1)<<((b>>3)&0x7)
				ce := &event{at: at, seq: seq}
				he := &event{at: at, seq: seq}
				cal.push(ce)
				hp.push(he)
				calLive = append(calLive, ce)
				hpLive = append(hpLive, he)
			case 2: // pop
				pc, ph := cal.pop(), hp.pop()
				if evKey(pc) != evKey(ph) {
					t.Fatalf("pop mismatch: cal=%s heap=%s", evKey(pc), evKey(ph))
				}
			case 3: // cancel + occasionally compact
				if len(calLive) > 0 {
					j := int(b&0x3f) % len(calLive)
					calLive[j].cancelled = true
					hpLive[j].cancelled = true
				}
				if b&0x20 != 0 {
					n := 0
					cal.q.Compact(func(*event) { n++ })
					m := 0
					hp.q.Compact(func(*event) { m++ })
					if n != m {
						t.Fatalf("compact purged %d vs %d", n, m)
					}
				}
			}
		}
		for cal.q.Len() > 0 {
			if pc, ph := evKey(cal.pop()), evKey(hp.pop()); pc != ph {
				t.Fatalf("drain mismatch: cal=%s heap=%s", pc, ph)
			}
		}
		if hp.q.Len() != 0 {
			t.Fatalf("length divergence at drain")
		}
	})
}

// TestKernelQueueKindsEquivalent runs an identical proc workload —
// timers, cancellations, queue handoffs, random advances — on a
// heap-backed and a calendar-backed kernel and requires the dispatch
// traces to match exactly.
func TestKernelQueueKindsEquivalent(t *testing.T) {
	run := func(kind QueueKind) []string {
		var log []string
		k := NewKernelQueue(42, kind)
		q := NewQueue[int](k, "work", 2)
		for w := 0; w < 3; w++ {
			w := w
			k.Spawn(fmt.Sprintf("prod%d", w), func(p *Proc) {
				rng := p.Rand()
				for i := 0; i < 50; i++ {
					p.Advance(Time(rng.Intn(900)))
					q.Put(p, w*1000+i)
					if i%7 == 0 {
						tm := k.AfterTimer(Time(rng.Intn(500)), func() {
							log = append(log, fmt.Sprintf("t=%d timer %d/%d", k.Now(), w, i))
						})
						if i%14 == 0 {
							tm.Cancel()
						}
					}
				}
			})
		}
		k.Spawn("cons", func(p *Proc) {
			for i := 0; i < 150; i++ {
				v, ok := q.GetTimeout(p, 5*Millisecond)
				if !ok {
					log = append(log, fmt.Sprintf("t=%d timeout", k.Now()))
					continue
				}
				log = append(log, fmt.Sprintf("t=%d got %d", k.Now(), v))
			}
		})
		if err := k.Run(); err != nil {
			t.Fatalf("kind %d: %v", kind, err)
		}
		log = append(log, fmt.Sprintf("end t=%d", k.Now()))
		return log
	}
	hp, cal := run(QueueHeap), run(QueueCalendar)
	if len(hp) != len(cal) {
		t.Fatalf("trace lengths differ: heap=%d calendar=%d", len(hp), len(cal))
	}
	for i := range hp {
		if hp[i] != cal[i] {
			t.Fatalf("trace diverges at %d: heap=%q calendar=%q", i, hp[i], cal[i])
		}
	}
}

// tallyProbe counts every HostProbe callback.
type tallyProbe struct{ events, heapPush, heapPop, cancelPurge int }

func (t *tallyProbe) Event()         { t.events++ }
func (t *tallyProbe) HeapPush(int)   { t.heapPush++ }
func (t *tallyProbe) HeapPop()       { t.heapPop++ }
func (t *tallyProbe) CancelPurge()   { t.cancelPurge++ }
func (t *tallyProbe) SliceStart(int) {}
func (t *tallyProbe) SliceEnd(int)   {}

// TestCancelCompaction verifies heavy cancel churn triggers bulk
// compaction instead of letting cancelled entries accumulate.
func TestCancelCompaction(t *testing.T) {
	k := NewKernel(1)
	probe := &tallyProbe{}
	k.SetHostProbe(probe)
	k.Spawn("churn", func(p *Proc) {
		for i := 0; i < 500; i++ {
			tm := k.AfterTimer(3600*Second, func() {})
			tm.Cancel()
			if k.pq.Len() > 260 {
				// 500 cancelled Hour-away timers + a handful of live wake
				// events: without compaction the queue grows past 500.
				t.Errorf("queue grew to %d despite cancel compaction", k.pq.Len())
				return
			}
			p.Yield()
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if probe.cancelPurge != 500 {
		t.Fatalf("cancelPurge = %d, want 500 (every cancelled timer purged exactly once)", probe.cancelPurge)
	}
	if probe.heapPush != probe.heapPop {
		t.Fatalf("pushes %d != pops %d after drain", probe.heapPush, probe.heapPop)
	}
}
