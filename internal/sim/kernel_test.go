package sim

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestAdvanceOrdering(t *testing.T) {
	k := NewKernel(1)
	var log []string
	k.Spawn("a", func(p *Proc) {
		p.Advance(10 * Microsecond)
		log = append(log, fmt.Sprintf("a@%s", p.Now()))
	})
	k.Spawn("b", func(p *Proc) {
		p.Advance(5 * Microsecond)
		log = append(log, fmt.Sprintf("b@%s", p.Now()))
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"b@5.000us", "a@10.000us"}
	if len(log) != 2 || log[0] != want[0] || log[1] != want[1] {
		t.Fatalf("log = %v, want %v", log, want)
	}
	if k.Now() != 10*Microsecond {
		t.Fatalf("final time %s, want 10us", k.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	k := NewKernel(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			p.Advance(Microsecond)
			order = append(order, i)
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("events at equal time not FIFO: %v", order)
		}
	}
}

func TestZeroAdvanceYield(t *testing.T) {
	k := NewKernel(1)
	var log []string
	k.Spawn("a", func(p *Proc) {
		log = append(log, "a1")
		p.Yield()
		log = append(log, "a2")
	})
	k.Spawn("b", func(p *Proc) {
		log = append(log, "b1")
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	got := strings.Join(log, ",")
	if got != "a1,b1,a2" {
		t.Fatalf("log = %s, want a1,b1,a2", got)
	}
}

func TestSpawnFromProc(t *testing.T) {
	k := NewKernel(1)
	var childTime Time
	k.Spawn("parent", func(p *Proc) {
		p.Advance(3 * Microsecond)
		k.Spawn("child", func(c *Proc) {
			c.Advance(4 * Microsecond)
			childTime = c.Now()
		})
		p.Advance(Microsecond)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if childTime != 7*Microsecond {
		t.Fatalf("child finished at %s, want 7us", childTime)
	}
}

func TestDeadlockDetected(t *testing.T) {
	k := NewKernel(1)
	q := NewQueue[int](k, "q", 0)
	k.Spawn("stuck", func(p *Proc) {
		q.Get(p) // nobody ever puts
	})
	err := k.Run()
	var dl *ErrDeadlock
	if !errors.As(err, &dl) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	if len(dl.Blocked) != 1 || dl.Blocked[0].Name != "stuck" {
		t.Fatalf("blocked = %+v", dl.Blocked)
	}
	if !strings.Contains(dl.Blocked[0].Reason, "queue q") {
		t.Fatalf("reason %q does not mention queue q", dl.Blocked[0].Reason)
	}
}

func TestAbortUnwindsAllProcs(t *testing.T) {
	k := NewKernel(1)
	q := NewQueue[int](k, "q", 0)
	for i := 0; i < 5; i++ {
		k.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) { q.Get(p) })
	}
	k.Spawn("killer", func(p *Proc) {
		p.Advance(Microsecond)
		p.Fatalf("boom")
	})
	err := k.Run()
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v, want boom", err)
	}
	if k.Live() != 0 {
		t.Fatalf("live procs after abort: %d", k.Live())
	}
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	k := NewKernel(1)
	ticks := 0
	k.Spawn("ticker", func(p *Proc) {
		for {
			p.Advance(Millisecond)
			ticks++
		}
	})
	if err := k.RunUntil(10*Millisecond + Microsecond); err != nil {
		t.Fatal(err)
	}
	if ticks != 10 {
		t.Fatalf("ticks = %d, want 10", ticks)
	}
	if k.Now() != 10*Millisecond+Microsecond {
		t.Fatalf("now = %s", k.Now())
	}
	// Resume to the next deadline; state must be preserved.
	if err := k.RunUntil(20 * Millisecond); err != nil {
		t.Fatal(err)
	}
	if ticks != 20 {
		t.Fatalf("ticks after resume = %d, want 20", ticks)
	}
	k.Abort(errors.New("test done"))
	_ = k.RunUntil(Forever)
}

func TestDeterminism(t *testing.T) {
	run := func() []string {
		k := NewKernel(42)
		var log []string
		q := NewQueue[int](k, "q", 2)
		for i := 0; i < 4; i++ {
			i := i
			k.Spawn(fmt.Sprintf("prod%d", i), func(p *Proc) {
				p.Advance(Time(p.Rand().Intn(100)) * Microsecond)
				q.Put(p, i)
			})
		}
		k.Spawn("cons", func(p *Proc) {
			for n := 0; n < 4; n++ {
				v := q.Get(p)
				log = append(log, fmt.Sprintf("%d@%s", v, p.Now()))
			}
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return log
	}
	a, b := run(), run()
	if strings.Join(a, ";") != strings.Join(b, ";") {
		t.Fatalf("non-deterministic: %v vs %v", a, b)
	}
}

func TestPanicInProcAborts(t *testing.T) {
	k := NewKernel(1)
	k.Spawn("bad", func(p *Proc) {
		panic("kapow")
	})
	err := k.Run()
	if err == nil || !strings.Contains(err.Error(), "kapow") {
		t.Fatalf("err = %v, want panic value surfaced", err)
	}
	if k.Live() != 0 {
		t.Fatalf("live = %d after panic abort", k.Live())
	}
}
