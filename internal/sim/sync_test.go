package sim

import (
	"fmt"
	"testing"
	"testing/quick"
)

func runSim(t *testing.T, seed int64, setup func(k *Kernel)) {
	t.Helper()
	k := NewKernel(seed)
	setup(k)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestQueueRendezvous(t *testing.T) {
	runSim(t, 1, func(k *Kernel) {
		q := NewQueue[int](k, "q", 0)
		var got []int
		k.Spawn("producer", func(p *Proc) {
			for i := 0; i < 5; i++ {
				p.Advance(Microsecond)
				q.Put(p, i)
			}
		})
		k.Spawn("consumer", func(p *Proc) {
			for i := 0; i < 5; i++ {
				got = append(got, q.Get(p))
			}
			if fmt.Sprint(got) != "[0 1 2 3 4]" {
				p.Fatalf("got %v", got)
			}
		})
	})
}

func TestQueueRendezvousBlocksPutter(t *testing.T) {
	runSim(t, 1, func(k *Kernel) {
		q := NewQueue[int](k, "q", 0)
		var putDone Time
		k.Spawn("putter", func(p *Proc) {
			q.Put(p, 42)
			putDone = p.Now()
		})
		k.Spawn("getter", func(p *Proc) {
			p.Advance(9 * Microsecond)
			if v := q.Get(p); v != 42 {
				p.Fatalf("got %d", v)
			}
		})
		k.Spawn("checker", func(p *Proc) {
			p.Advance(20 * Microsecond)
			if putDone != 9*Microsecond {
				p.Fatalf("putter resumed at %s, want 9us", putDone)
			}
		})
	})
}

func TestQueueBufferedCapacity(t *testing.T) {
	runSim(t, 1, func(k *Kernel) {
		q := NewQueue[int](k, "q", 2)
		var thirdPutAt Time
		k.Spawn("putter", func(p *Proc) {
			q.Put(p, 1) // buffered
			q.Put(p, 2) // buffered
			q.Put(p, 3) // blocks until a Get frees space
			thirdPutAt = p.Now()
		})
		k.Spawn("getter", func(p *Proc) {
			p.Advance(5 * Microsecond)
			for want := 1; want <= 3; want++ {
				if v := q.Get(p); v != want {
					p.Fatalf("got %d want %d", v, want)
				}
			}
			p.Advance(Microsecond) // let the unblocked putter run
			if thirdPutAt != 5*Microsecond {
				p.Fatalf("third put completed at %s", thirdPutAt)
			}
		})
	})
}

func TestQueueTryOps(t *testing.T) {
	runSim(t, 1, func(k *Kernel) {
		q := NewQueue[string](k, "q", 1)
		k.Spawn("solo", func(p *Proc) {
			if _, ok := q.TryGet(); ok {
				p.Fatalf("TryGet on empty queue succeeded")
			}
			if !q.TryPut("a") {
				p.Fatalf("TryPut into empty buffered queue failed")
			}
			if q.TryPut("b") {
				p.Fatalf("TryPut into full queue succeeded")
			}
			v, ok := q.TryGet()
			if !ok || v != "a" {
				p.Fatalf("TryGet = %q, %v", v, ok)
			}
		})
	})
}

func TestSemaphoreFIFO(t *testing.T) {
	runSim(t, 1, func(k *Kernel) {
		s := NewSemaphore(k, "s", 0)
		var order []int
		for i := 0; i < 3; i++ {
			i := i
			k.SpawnAfter(fmt.Sprintf("w%d", i), Time(i)*Microsecond, func(p *Proc) {
				s.Acquire(p, 1)
				order = append(order, i)
			})
		}
		k.Spawn("releaser", func(p *Proc) {
			p.Advance(10 * Microsecond)
			s.Release(3)
			p.Advance(Microsecond)
			if fmt.Sprint(order) != "[0 1 2]" {
				p.Fatalf("wakeup order %v", order)
			}
		})
	})
}

func TestSemaphoreNoBarging(t *testing.T) {
	runSim(t, 1, func(k *Kernel) {
		s := NewSemaphore(k, "s", 0)
		var first string
		k.Spawn("big", func(p *Proc) {
			s.Acquire(p, 2) // arrives first, needs 2
			if first == "" {
				first = "big"
			}
		})
		k.SpawnAfter("small", Microsecond, func(p *Proc) {
			s.Acquire(p, 1) // would fit after Release(1), but must queue behind big
			if first == "" {
				first = "small"
			}
		})
		k.SpawnAfter("rel", 2*Microsecond, func(p *Proc) {
			s.Release(1) // big (first in line) needs 2: small must not barge
			p.Advance(Microsecond)
			s.Release(1) // big proceeds
			p.Advance(Microsecond)
			s.Release(1) // now small
			p.Advance(Microsecond)
			if first != "big" {
				p.Fatalf("FIFO violated: %q acquired first", first)
			}
		})
	})
}

func TestEventBroadcast(t *testing.T) {
	runSim(t, 1, func(k *Kernel) {
		e := NewEvent(k, "go")
		released := 0
		for i := 0; i < 4; i++ {
			k.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
				e.Wait(p)
				released++
			})
		}
		k.Spawn("firer", func(p *Proc) {
			p.Advance(3 * Microsecond)
			e.Fire()
			e.Fire() // idempotent
			p.Advance(Microsecond)
			if released != 4 {
				p.Fatalf("released = %d", released)
			}
			e.Wait(p) // post-fire wait returns immediately
		})
	})
}

func TestResourceSerializes(t *testing.T) {
	runSim(t, 1, func(k *Kernel) {
		// 1000 bytes/sec => 1 byte takes 1ms to serialize.
		r := NewResource(k, "link", 0, 1000, 5*Millisecond)
		var arrivals []Time
		for i := 0; i < 3; i++ {
			k.Spawn(fmt.Sprintf("s%d", i), func(p *Proc) {
				arr := r.Send(p, 10) // 10 ms serialization each
				arrivals = append(arrivals, arr)
			})
		}
		k.Spawn("check", func(p *Proc) {
			p.Advance(100 * Millisecond)
			want := []Time{15 * Millisecond, 25 * Millisecond, 35 * Millisecond}
			for i, w := range want {
				if arrivals[i] != w {
					p.Fatalf("arrival[%d] = %s, want %s", i, arrivals[i], w)
				}
			}
		})
	})
}

func TestResourceInfiniteBandwidth(t *testing.T) {
	runSim(t, 1, func(k *Kernel) {
		r := NewResource(k, "bus", 2*Microsecond, 0, 0)
		k.Spawn("s", func(p *Proc) {
			arr := r.Send(p, 1<<20)
			if arr != 2*Microsecond {
				p.Fatalf("arrival %s, want 2us", arr)
			}
		})
	})
}

// Property: for any sequence of puts with arbitrary inter-arrival times and
// any queue capacity, a FIFO consumer observes exactly the produced sequence.
func TestQueueFIFOProperty(t *testing.T) {
	prop := func(capacity uint8, vals []int16, gaps []uint16) bool {
		capn := int(capacity % 8)
		if len(vals) > 64 {
			vals = vals[:64]
		}
		k := NewKernel(7)
		q := NewQueue[int16](k, "q", capn)
		var got []int16
		k.Spawn("prod", func(p *Proc) {
			for i, v := range vals {
				if i < len(gaps) {
					p.Advance(Time(gaps[i]) * Nanosecond)
				}
				q.Put(p, v)
			}
		})
		k.Spawn("cons", func(p *Proc) {
			for range vals {
				got = append(got, q.Get(p))
			}
		})
		if err := k.Run(); err != nil {
			return false
		}
		if len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
