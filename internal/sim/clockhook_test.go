package sim

import "testing"

// The clock hook must see every distinct clock advance, monotonically,
// before the event at that time dispatches.
func TestClockHookObservesAdvances(t *testing.T) {
	k := NewKernel(1)
	var hookTimes []Time
	dispatched := map[Time]bool{}
	k.SetClockHook(func(now Time) {
		hookTimes = append(hookTimes, now)
		if dispatched[now] {
			t.Errorf("hook at t=%d fired after the event at that time dispatched", now)
		}
	})
	k.Spawn("p", func(p *Proc) {
		for _, d := range []Time{10, 20, 5} {
			p.Advance(d)
			dispatched[k.Now()] = true
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(hookTimes) == 0 {
		t.Fatal("clock hook never fired")
	}
	last := Time(-1)
	for _, at := range hookTimes {
		if at < last {
			t.Fatalf("clock hook went backwards: %d after %d", at, last)
		}
		last = at
	}
	if last != 35 {
		t.Fatalf("final hook time = %d, want 35", last)
	}
}

// Reaching a RunUntil deadline advances the clock; the hook must see it.
func TestClockHookDeadline(t *testing.T) {
	k := NewKernel(1)
	var last Time
	k.SetClockHook(func(now Time) { last = now })
	k.Spawn("p", func(p *Proc) { p.Advance(1000) })
	if err := k.RunUntil(100); err != nil {
		t.Fatal(err)
	}
	if last != 100 {
		t.Fatalf("hook saw t=%d at deadline, want 100", last)
	}
	k.SetClockHook(nil) // detaching must be safe mid-run
	if err := k.RunUntil(Forever); err != nil {
		t.Fatal(err)
	}
}
