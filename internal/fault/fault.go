// Package fault is the deterministic fault-injection layer for the
// simulated hybrid cluster. A Plan describes what goes wrong and when —
// scheduled on the sim kernel's virtual clock and drawn from a private
// seeded RNG, so a chaos run is exactly as reproducible as a clean one:
// the same seed yields the same fault log, the same virtual timeline and
// the same set of surviving processes.
//
// The injector is deliberately passive: it decides (kill this proc now,
// drop this frame, stall this mailbox word) and counts, while the runtime
// layers (interconnect/mpi/cellbe/core) own the recovery mechanics —
// retransmission, NACK/repost, channel poisoning. An injector with an
// empty plan changes nothing: every capability gate (UsesLinks,
// UsesMailbox, the event list) is off, and the instrumented run reproduces
// the uninstrumented virtual timeline bit for bit.
package fault

import (
	"fmt"
	"math/rand"
	"sort"

	"cellpilot/internal/sim"
)

// Kind is one injectable fault class.
type Kind int

// Fault kinds.
const (
	// CrashNode kills every process on a node at Event.At.
	CrashNode Kind = iota
	// KillSPE kills one SPE process (by Pilot process name) at Event.At.
	KillSPE
	// KillCoPilot kills the Co-Pilot service process of a node at Event.At.
	KillCoPilot
	// MailboxDrop arms a one-shot fault: the named process's next outbound
	// mailbox word after Event.At is silently dropped.
	MailboxDrop
	// MailboxStall arms a one-shot fault: the named process's next outbound
	// mailbox word after Event.At is delayed by Event.Delay.
	MailboxStall
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case CrashNode:
		return "crash-node"
	case KillSPE:
		return "kill-spe"
	case KillCoPilot:
		return "kill-copilot"
	case MailboxDrop:
		return "mailbox-drop"
	case MailboxStall:
		return "mailbox-stall"
	default:
		return fmt.Sprintf("fault(%d)", int(k))
	}
}

// Event is one scheduled fault.
type Event struct {
	// At is the virtual time the fault fires.
	At sim.Time
	// Kind selects the fault class.
	Kind Kind
	// Node identifies the target node (CrashNode, KillCoPilot).
	Node int
	// Proc names the target Pilot process (KillSPE, MailboxDrop,
	// MailboxStall) as reported by Process.Name().
	Proc string
	// Delay is the stall duration (MailboxStall).
	Delay sim.Time
}

// LinkPolicy makes one directed internode link lossy. Probabilities are
// evaluated per frame from the injector's seeded RNG.
type LinkPolicy struct {
	// From and To are node ids; the policy covers frames From -> To.
	From, To int
	// DropProb is the probability a frame vanishes in flight.
	DropProb float64
	// CorruptProb is the probability a frame arrives corrupted (the
	// receiver discards it on checksum, so it behaves like a counted drop).
	CorruptProb float64
	// DelayProb is the probability a frame is delayed by a uniform random
	// time in (0, MaxDelay].
	DelayProb float64
	// MaxDelay bounds the injected delay.
	MaxDelay sim.Time
	// After delays the policy's activation: before this virtual time the
	// link behaves perfectly and consumes no randomness. Zero means active
	// from the start. It lets a test land a link fault mid-transfer — e.g.
	// halfway through a chunked pipeline.
	After sim.Time
}

// Plan is a complete fault schedule. The zero Plan injects nothing.
type Plan struct {
	// Seed feeds the injector's private RNG (link probabilities, delays).
	Seed int64
	// Events are scheduled faults; order does not matter.
	Events []Event
	// Links are the lossy-link policies.
	Links []LinkPolicy
}

// Verdict is the injector's decision about one frame on a lossy link.
type Verdict struct {
	Drop    bool
	Corrupt bool
	Delay   sim.Time
}

// Counts aggregates everything the fault layer saw and everything the
// hardened runtime did about it. The injector owns the link/mailbox
// counters; the mpi reliability layer bumps the retransmission group; core
// bumps the protocol/degradation group.
type Counts struct {
	// Injected link faults.
	LinkDrops    int64
	LinkCorrupts int64
	LinkDelays   int64
	// MPI reliability reactions.
	Retransmits int64 // frames resent after an ack timeout
	DupFrames   int64 // duplicate frames discarded (and re-acked) at the receiver
	AckDrops    int64 // acks lost to the reverse link's policy
	GiveUps     int64 // sender abandoned a frame after the retry cap; the link pair is severed
	GiveUpDrops int64 // frames discarded on an already-severed pair (queued or sent later)
	// Injected mailbox faults.
	MailboxDrops  int64
	MailboxStalls int64
	// Co-Pilot mailbox protocol reactions.
	MailboxNacks   int64 // Co-Pilot rejected a garbled/incomplete descriptor
	MailboxReposts int64 // SPE stub reposted a descriptor after a NACK or ack timeout
	// Degradation outcomes.
	OpTimeouts    int64 // channel operations that hit Options.OpTimeout or a Try* deadline
	ChannelFaults int64 // channels poisoned
	ProcsKilled   int64 // processes killed by injection (directly or by node crash)
}

// Injector executes a Plan against one run. Create one per run with
// NewInjector, set OnEvent (the runtime's kill callbacks), then Arm it on
// the kernel before the simulation starts.
type Injector struct {
	plan  Plan
	rng   *rand.Rand
	k     *sim.Kernel // set by Arm; clocks LinkPolicy.After activation
	links map[[2]int]LinkPolicy
	// pending one-shot mailbox verdicts by process name.
	mboxDrop  map[string]int
	mboxStall map[string][]sim.Time

	// OnEvent receives CrashNode/KillSPE/KillCoPilot events when they fire
	// (in scheduler context). The runtime installs its kill paths here
	// before Arm; a nil OnEvent makes those events log-only.
	OnEvent func(e Event)

	// Counts is bumped in place by the injector and the hardened layers.
	Counts Counts

	log []string
}

// NewInjector builds an injector for one run of the given plan.
func NewInjector(plan Plan) *Injector {
	in := &Injector{
		plan:      plan,
		rng:       rand.New(rand.NewSource(plan.Seed)),
		links:     map[[2]int]LinkPolicy{},
		mboxDrop:  map[string]int{},
		mboxStall: map[string][]sim.Time{},
	}
	for _, lp := range plan.Links {
		in.links[[2]int{lp.From, lp.To}] = lp
	}
	return in
}

// Plan returns the plan the injector runs.
func (in *Injector) Plan() Plan { return in.plan }

// Arm schedules every plan event on the kernel. Call once, before Run.
func (in *Injector) Arm(k *sim.Kernel) {
	in.k = k
	// Sort by (At, original order) so identical plans arm identically no
	// matter how the caller assembled the event list.
	evs := append([]Event(nil), in.plan.Events...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	for _, e := range evs {
		e := e
		k.After(e.At-k.Now(), func() { in.fire(k, e) })
	}
}

func (in *Injector) fire(k *sim.Kernel, e Event) {
	switch e.Kind {
	case MailboxDrop:
		in.mboxDrop[e.Proc]++
		in.Logf(k.Now(), "arm mailbox-drop for %s", e.Proc)
	case MailboxStall:
		in.mboxStall[e.Proc] = append(in.mboxStall[e.Proc], e.Delay)
		in.Logf(k.Now(), "arm mailbox-stall %s for %s", e.Delay, e.Proc)
	default:
		in.Logf(k.Now(), "%s node=%d proc=%s", e.Kind, e.Node, e.Proc)
		if in.OnEvent != nil {
			in.OnEvent(e)
		}
	}
}

// UsesLinks reports whether any lossy-link policy exists. The MPI layer
// gates its reliability protocol on this, so a plan without link faults
// leaves the transport timing untouched.
func (in *Injector) UsesLinks() bool { return len(in.links) > 0 }

// UsesMailbox reports whether the plan injects mailbox faults. The SPE
// stub / Co-Pilot ACK protocol is gated on this.
func (in *Injector) UsesMailbox() bool {
	for _, e := range in.plan.Events {
		if e.Kind == MailboxDrop || e.Kind == MailboxStall {
			return true
		}
	}
	return false
}

// LinkFaulty reports whether an active policy covers the directed node
// pair. It consumes no randomness, so it is safe to call from gating code.
func (in *Injector) LinkFaulty(from, to int) bool {
	lp, ok := in.links[[2]int{from, to}]
	return ok && in.linkActive(lp)
}

// linkActive reports whether a policy's After activation time has passed.
func (in *Injector) linkActive(lp LinkPolicy) bool {
	if lp.After == 0 {
		return true
	}
	return in.k != nil && in.k.Now() >= lp.After
}

// LinkVerdict draws the fate of one frame on the directed link. Only
// active faulty links consume randomness (and always exactly three draws),
// so verdict sequences are deterministic per link-policy set.
func (in *Injector) LinkVerdict(from, to, bytes int) Verdict {
	lp, ok := in.links[[2]int{from, to}]
	if !ok || !in.linkActive(lp) {
		return Verdict{}
	}
	pDrop, pCorrupt, pDelay := in.rng.Float64(), in.rng.Float64(), in.rng.Float64()
	var v Verdict
	switch {
	case pDrop < lp.DropProb:
		v.Drop = true
		in.Counts.LinkDrops++
	case pCorrupt < lp.CorruptProb:
		v.Corrupt = true
		in.Counts.LinkCorrupts++
	case pDelay < lp.DelayProb && lp.MaxDelay > 0:
		v.Delay = sim.Time(in.rng.Int63n(int64(lp.MaxDelay))) + 1
		in.Counts.LinkDelays++
	}
	return v
}

// MailboxVerdict consumes one pending one-shot mailbox fault for the named
// process, if armed. Drops win over stalls when both are pending.
func (in *Injector) MailboxVerdict(proc string) (drop bool, stall sim.Time) {
	if in.mboxDrop[proc] > 0 {
		in.mboxDrop[proc]--
		in.Counts.MailboxDrops++
		return true, 0
	}
	if st := in.mboxStall[proc]; len(st) > 0 {
		in.mboxStall[proc] = st[1:]
		in.Counts.MailboxStalls++
		return false, st[0]
	}
	return false, 0
}

// Logf appends one timestamped line to the fault log.
func (in *Injector) Logf(at sim.Time, format string, args ...any) {
	in.log = append(in.log, fmt.Sprintf("[%12s] %s", at, fmt.Sprintf(format, args...)))
}

// Log returns the fault log in firing order — part of a chaos run's
// determinism fingerprint.
func (in *Injector) Log() []string { return append([]string(nil), in.log...) }
