package fault

import (
	"strings"
	"testing"

	"cellpilot/internal/sim"
)

// TestLinkVerdictDeterminism: the same seed yields the same verdict
// sequence; a different seed diverges.
func TestLinkVerdictDeterminism(t *testing.T) {
	plan := Plan{Seed: 17, Links: []LinkPolicy{
		{From: 0, To: 1, DropProb: 0.3, CorruptProb: 0.1, DelayProb: 0.2, MaxDelay: 5 * sim.Microsecond},
	}}
	draw := func(p Plan) []Verdict {
		in := NewInjector(p)
		out := make([]Verdict, 100)
		for i := range out {
			out[i] = in.LinkVerdict(0, 1, 64)
		}
		return out
	}
	a, b := draw(plan), draw(plan)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("verdict %d diverged for identical seeds: %+v vs %+v", i, a[i], b[i])
		}
	}
	other := plan
	other.Seed = 18
	c := draw(other)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced an identical 100-verdict sequence")
	}
}

// TestLinkVerdictCleanLink: an uncovered link never faults and consumes no
// randomness — interleaving clean-link calls must not perturb the faulty
// link's sequence.
func TestLinkVerdictCleanLink(t *testing.T) {
	plan := Plan{Seed: 5, Links: []LinkPolicy{{From: 0, To: 1, DropProb: 0.5}}}
	inA := NewInjector(plan)
	inB := NewInjector(plan)
	for i := 0; i < 50; i++ {
		if v := inB.LinkVerdict(1, 2, 64); v != (Verdict{}) {
			t.Fatalf("clean link returned a fault verdict: %+v", v)
		}
		a, b := inA.LinkVerdict(0, 1, 64), inB.LinkVerdict(0, 1, 64)
		if a != b {
			t.Fatalf("draw %d: clean-link calls perturbed the RNG stream: %+v vs %+v", i, a, b)
		}
	}
	if inB.Counts.LinkDrops == 0 {
		t.Fatal("50 draws at 50% drop produced no drops")
	}
}

// TestLinkVerdictDirected: policies are directed; the reverse direction of
// a covered pair is clean unless it has its own policy.
func TestLinkVerdictDirected(t *testing.T) {
	in := NewInjector(Plan{Seed: 1, Links: []LinkPolicy{{From: 0, To: 1, DropProb: 1.0}}})
	if !in.LinkFaulty(0, 1) || in.LinkFaulty(1, 0) {
		t.Fatal("LinkFaulty ignores direction")
	}
	if v := in.LinkVerdict(0, 1, 8); !v.Drop {
		t.Fatalf("forward draw on a 100%% lossy link: %+v", v)
	}
	if v := in.LinkVerdict(1, 0, 8); v != (Verdict{}) {
		t.Fatalf("reverse draw faulted without a policy: %+v", v)
	}
}

// TestMailboxVerdictOneShot: each armed MailboxDrop/MailboxStall fires
// exactly once, drops win over stalls, and only the named proc is hit.
func TestMailboxVerdictOneShot(t *testing.T) {
	k := sim.NewKernel(1)
	in := NewInjector(Plan{Events: []Event{
		{At: 0, Kind: MailboxDrop, Proc: "spe#0"},
		{At: 0, Kind: MailboxStall, Proc: "spe#0", Delay: 7 * sim.Microsecond},
	}})
	if !in.UsesMailbox() {
		t.Fatal("UsesMailbox false with mailbox events planned")
	}
	in.Arm(k)
	if err := k.Run(); err != nil { // fires the arming events at t=0
		t.Fatal(err)
	}
	if drop, _ := in.MailboxVerdict("other#1"); drop {
		t.Fatal("fault leaked to an unnamed process")
	}
	drop, stall := in.MailboxVerdict("spe#0")
	if !drop || stall != 0 {
		t.Fatalf("first verdict = (%v, %s), want the drop first", drop, stall)
	}
	drop, stall = in.MailboxVerdict("spe#0")
	if drop || stall != 7*sim.Microsecond {
		t.Fatalf("second verdict = (%v, %s), want the 7us stall", drop, stall)
	}
	if drop, stall = in.MailboxVerdict("spe#0"); drop || stall != 0 {
		t.Fatal("one-shot faults fired more than once")
	}
	if in.Counts.MailboxDrops != 1 || in.Counts.MailboxStalls != 1 {
		t.Fatalf("counts = %+v", in.Counts)
	}
}

// TestCapabilityGates: the zero plan arms nothing — both capability gates
// are off, so the hardened layers stay on their fast paths.
func TestCapabilityGates(t *testing.T) {
	in := NewInjector(Plan{})
	if in.UsesLinks() || in.UsesMailbox() {
		t.Fatal("zero plan claims capabilities")
	}
	in2 := NewInjector(Plan{Events: []Event{{Kind: KillSPE, Proc: "x#0"}}})
	if in2.UsesLinks() || in2.UsesMailbox() {
		t.Fatal("kill-only plan should not gate links or mailbox protocols on")
	}
	in3 := NewInjector(Plan{Links: []LinkPolicy{{From: 0, To: 1, DropProb: 0.1}}})
	if !in3.UsesLinks() || in3.UsesMailbox() {
		t.Fatal("link-only plan gates wrong")
	}
}

// TestArmOrderInsensitive: plans listing the same events in different
// orders fire them identically (sorted by At, stable).
func TestArmOrderInsensitive(t *testing.T) {
	run := func(evs []Event) []string {
		k := sim.NewKernel(1)
		in := NewInjector(Plan{Events: evs})
		var fired []string
		in.OnEvent = func(e Event) { fired = append(fired, e.Kind.String()+"/"+e.Proc) }
		in.Arm(k)
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return fired
	}
	a := run([]Event{
		{At: 2 * sim.Microsecond, Kind: KillSPE, Proc: "b#1"},
		{At: 1 * sim.Microsecond, Kind: KillSPE, Proc: "a#0"},
	})
	b := run([]Event{
		{At: 1 * sim.Microsecond, Kind: KillSPE, Proc: "a#0"},
		{At: 2 * sim.Microsecond, Kind: KillSPE, Proc: "b#1"},
	})
	if strings.Join(a, ",") != strings.Join(b, ",") {
		t.Fatalf("firing order depends on list order: %v vs %v", a, b)
	}
	if strings.Join(a, ",") != "kill-spe/a#0,kill-spe/b#1" {
		t.Fatalf("fired %v", a)
	}
}

// TestKindString covers the Stringer, including the unknown fallback.
func TestKindString(t *testing.T) {
	want := map[Kind]string{
		CrashNode:    "crash-node",
		KillSPE:      "kill-spe",
		KillCoPilot:  "kill-copilot",
		MailboxDrop:  "mailbox-drop",
		MailboxStall: "mailbox-stall",
		Kind(99):     "fault(99)",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), k.String(), s)
		}
	}
}

// TestLogDeterminism: Logf/Log render timestamps and are copied out (the
// caller cannot mutate the injector's log).
func TestLogDeterminism(t *testing.T) {
	in := NewInjector(Plan{})
	in.Logf(3*sim.Microsecond, "hello %d", 7)
	got := in.Log()
	if len(got) != 1 || !strings.Contains(got[0], "hello 7") {
		t.Fatalf("log = %v", got)
	}
	got[0] = "mutated"
	if in.Log()[0] == "mutated" {
		t.Fatal("Log returned the internal slice")
	}
}
