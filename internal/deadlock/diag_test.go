package deadlock

import (
	"strings"
	"testing"
)

// TestCycleThrough: a timed-out member of a circular wait is diagnosed as
// in-cycle; a process merely waiting on a slow (but runnable) peer is not.
func TestCycleThrough(t *testing.T) {
	d := New(map[int]string{1: "alice", 2: "bob", 3: "carol"})
	// alice <-> bob deadlock; carol waits on bob but is not part of it.
	if c := d.BlockReadAt(1, 2, 10, "a.go:1"); c != nil {
		t.Fatalf("premature cycle: %v", c)
	}
	if c := d.BlockReadAt(3, 2, 30, "c.go:3"); c != nil {
		t.Fatalf("premature cycle: %v", c)
	}
	if c := d.BlockReadAt(2, 1, 20, "b.go:2"); c == nil {
		t.Fatal("closing read did not report the cycle")
	}
	for _, id := range []int{1, 2} {
		cyc := d.CycleThrough(id)
		if cyc == nil {
			t.Fatalf("CycleThrough(%d) = nil for a cycle member", id)
		}
		if len(cyc.Procs) != 2 {
			t.Fatalf("CycleThrough(%d) walked %v", id, cyc.Procs)
		}
	}
	// carol's chain ENDS in the cycle but she is not ON it: whatever the
	// walk returns must not list her as a member.
	if cyc := d.CycleThrough(3); cyc != nil {
		for _, p := range cyc.Procs {
			if p == 3 {
				t.Fatalf("carol reported as a cycle member: %v", cyc.Procs)
			}
		}
	}
	if cyc := d.CycleThrough(99); cyc != nil {
		t.Fatal("CycleThrough of an unblocked proc found a cycle")
	}
}

// TestCycleThroughClearsWithUnblock: once a member resumes, the cycle
// dissolves for diagnostics too.
func TestCycleThroughClearsWithUnblock(t *testing.T) {
	d := New(nil)
	d.BlockRead(1, 2, 10)
	if c := d.BlockRead(2, 1, 20); c == nil {
		t.Fatal("no cycle")
	}
	d.Unblock(1)
	if c := d.CycleThrough(2); c != nil {
		t.Fatalf("stale cycle survives an unblock: %v", c.Procs)
	}
}

// TestWaitLoc: the recorded call site rides the wait-for edge and clears
// with it.
func TestWaitLoc(t *testing.T) {
	d := New(nil)
	if _, ok := d.WaitLoc(1); ok {
		t.Fatal("WaitLoc before any block")
	}
	d.BlockWriteAt(1, 2, 10, "app.go:42")
	loc, ok := d.WaitLoc(1)
	if !ok || loc != "app.go:42" {
		t.Fatalf("WaitLoc = %q, %v", loc, ok)
	}
	d.Unblock(1)
	if _, ok := d.WaitLoc(1); ok {
		t.Fatal("WaitLoc survives Unblock")
	}
}

// TestCycleErrorLocs: the cycle diagnostic names each member's blocked
// call site.
func TestCycleErrorLocs(t *testing.T) {
	d := New(map[int]string{1: "alice", 2: "bob"})
	d.BlockReadAt(1, 2, 10, "alice.go:5")
	c := d.BlockReadAt(2, 1, 20, "bob.go:9")
	if c == nil {
		t.Fatal("no cycle")
	}
	msg := c.Error()
	for _, want := range []string{"alice", "bob", "alice.go:5", "bob.go:9", "circular wait"} {
		if !strings.Contains(msg, want) {
			t.Errorf("cycle diagnostic lacks %q:\n%s", want, msg)
		}
	}
}
