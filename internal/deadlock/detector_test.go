package deadlock

import (
	"strings"
	"testing"
)

func TestTwoProcessReadCycle(t *testing.T) {
	d := New(map[int]string{1: "alice", 2: "bob"})
	if c := d.BlockRead(1, 2, 10); c != nil {
		t.Fatalf("premature cycle: %v", c)
	}
	c := d.BlockRead(2, 1, 11)
	if c == nil {
		t.Fatal("read-read cycle not detected")
	}
	msg := c.Error()
	for _, want := range []string{"alice", "bob", "channel 10", "channel 11", "PI_Read", "circular wait among 2"} {
		if !strings.Contains(msg, want) {
			t.Errorf("diagnostic missing %q: %s", want, msg)
		}
	}
}

func TestPendingSendPreventsFalseCycle(t *testing.T) {
	// Both processes wrote eagerly before reading: messages are in
	// flight, so the crossed reads are NOT a deadlock.
	d := New(nil)
	d.Sent(10) // 1 -> 2
	d.Sent(11) // 2 -> 1
	if c := d.BlockRead(1, 2, 11); c != nil {
		t.Fatalf("false cycle: %v", c)
	}
	if c := d.BlockRead(2, 1, 10); c != nil {
		t.Fatalf("false cycle: %v", c)
	}
	if d.Blocked() != 0 {
		t.Fatalf("blocked = %d, want 0 (both reads satisfied)", d.Blocked())
	}
}

func TestSentAfterBlockClearsReader(t *testing.T) {
	d := New(nil)
	if c := d.BlockRead(1, 2, 5); c != nil {
		t.Fatal(c)
	}
	if d.Blocked() != 1 {
		t.Fatal("reader not recorded")
	}
	d.Sent(5)
	if d.Blocked() != 0 {
		t.Fatal("sent did not clear the blocked reader")
	}
	// The late reader's own unblock must be a harmless no-op.
	d.Unblock(1)
	// And a second cycle attempt must still work afterwards.
	d.BlockRead(1, 2, 5)
	if c := d.BlockRead(2, 1, 6); c == nil {
		t.Fatal("real cycle missed after earlier satisfied wait")
	}
}

func TestRendezvousPairIsNotACycle(t *testing.T) {
	// Type-4 SPE transfer: writer blocked on channel 7, reader blocks on
	// the same channel — they satisfy each other.
	d := New(nil)
	if c := d.BlockWrite(1, 2, 7); c != nil {
		t.Fatal(c)
	}
	if c := d.BlockRead(2, 1, 7); c != nil {
		t.Fatalf("rendezvous pair reported as cycle: %v", c)
	}
	if d.Blocked() != 0 {
		t.Fatalf("blocked = %d after rendezvous match", d.Blocked())
	}
	// Same in the other arrival order.
	if c := d.BlockRead(2, 1, 7); c != nil {
		t.Fatal(c)
	}
	if c := d.BlockWrite(1, 2, 7); c != nil {
		t.Fatalf("rendezvous pair (reader first) reported as cycle: %v", c)
	}
	if d.Blocked() != 0 {
		t.Fatal("rendezvous (reader first) not matched")
	}
}

func TestWriteWriteCycleOnDistinctChannels(t *testing.T) {
	// Two rendezvous writes waiting on each other's reads: a real
	// deadlock.
	d := New(nil)
	if c := d.BlockWrite(1, 2, 1); c != nil {
		t.Fatal(c)
	}
	c := d.BlockWrite(2, 1, 2)
	if c == nil {
		t.Fatal("write-write cycle not detected")
	}
	if !strings.Contains(c.Error(), "PI_Write") {
		t.Fatalf("diagnostic lacks the op: %v", c)
	}
}

func TestChainWithoutCycle(t *testing.T) {
	d := New(nil)
	if c := d.BlockRead(1, 2, 0); c != nil {
		t.Fatal("1->2 is not a cycle")
	}
	if c := d.BlockWrite(2, 3, 1); c != nil {
		t.Fatal("1->2->3 is not a cycle")
	}
	d.Unblock(2)
	if c := d.BlockRead(3, 1, 2); c != nil {
		t.Fatalf("3->1->2(unblocked) is not a cycle: %v", c)
	}
	if d.Blocked() != 2 {
		t.Fatalf("blocked = %d", d.Blocked())
	}
}

func TestThreeProcessCycle(t *testing.T) {
	d := New(nil)
	d.BlockRead(1, 2, 0)
	d.BlockRead(2, 3, 1)
	c := d.BlockRead(3, 1, 2)
	if c == nil || len(c.Procs) != 3 {
		t.Fatalf("cycle = %+v", c)
	}
}

func TestDownstreamCycleNotReReported(t *testing.T) {
	d := New(nil)
	d.BlockRead(2, 3, 0)
	if c := d.BlockRead(3, 2, 1); c == nil {
		t.Fatal("2<->3 cycle missed")
	}
	// 1 now blocks on the already-cyclic pair: its own walk must not claim
	// a cycle through itself.
	if c := d.BlockRead(1, 2, 2); c != nil {
		t.Fatalf("1 is not part of the cycle: %+v", c)
	}
}

func TestSelfLoop(t *testing.T) {
	d := New(nil)
	c := d.BlockRead(1, 1, 0)
	if c == nil || len(c.Procs) != 1 {
		t.Fatalf("self wait not detected: %+v", c)
	}
}

func TestUnblockClears(t *testing.T) {
	d := New(nil)
	d.BlockRead(1, 2, 0)
	d.Unblock(1)
	if c := d.BlockRead(2, 1, 1); c != nil {
		t.Fatal("cycle reported after unblock")
	}
}
