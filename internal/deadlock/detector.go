// Package deadlock implements Pilot's optional circular-wait detection
// (the paper's "-pisvc=d" service, which consumes one MPI process). The
// Detector is the pure wait-for-graph logic; the service process in the
// core package feeds it BLOCK/UNBLOCK/SENT reports from channel
// operations and aborts the application with a diagnostic when a cycle
// forms.
//
// The detector is message-aware, which is what makes it sound: a process
// blocked in PI_Read is waiting for a *message*, not for its peer's
// progress, so a read whose channel already has an unconsumed send in
// flight contributes no wait-for edge, and a blocked writer/blocked
// reader pair on the same channel is a rendezvous about to complete, not
// a wait. Without this, eager sends and type-4 SPE rendezvous would
// produce false cycles.
//
// As in the paper, detection covers regular (PPE/non-Cell) Pilot
// processes; SPE operations report only when the CellPilot future-work
// extension (core.Options.SPEDeadlock) is enabled.
package deadlock

import (
	"fmt"
	"strings"
)

// Op is the blocking channel operation.
type Op int

// Channel operations that can block.
const (
	OpRead Op = iota
	OpWrite
)

// String implements fmt.Stringer.
func (o Op) String() string {
	if o == OpRead {
		return "PI_Read"
	}
	return "PI_Write"
}

// edge is one blocked process: it waits for peer to act on channel ch.
// loc is the user call site of the blocked operation ("file.go:42", may be
// empty) and rides along for diagnostics.
type edge struct {
	peer int
	ch   int
	op   Op
	loc  string
}

// Detector maintains the wait-for graph plus per-channel message
// accounting. A Pilot process blocks on at most one channel operation at
// a time, so each node has at most one outgoing edge and cycle detection
// is a single walk.
type Detector struct {
	waits   map[int]edge
	names   map[int]string
	pending map[int]int // channel -> sends not yet consumed by a read
	readers map[int]int // channel -> proc currently edge-blocked reading it
	writers map[int]int // channel -> proc currently edge-blocked writing it
}

// New creates an empty detector. names maps process ids to display names
// (nil is allowed).
func New(names map[int]string) *Detector {
	return &Detector{
		waits:   make(map[int]edge),
		names:   names,
		pending: make(map[int]int),
		readers: make(map[int]int),
		writers: make(map[int]int),
	}
}

// Cycle describes a detected circular wait, in walk order.
type Cycle struct {
	Procs []int
	Chans []int
	Ops   []Op
	// Locs are the user call sites of the blocked operations, parallel to
	// Procs; entries may be empty when a layer did not report one.
	Locs  []string
	names map[int]string
}

// Error implements error with the Pilot-style diagnostic naming every
// process and channel in the cycle, plus the blocked call site when known.
func (c *Cycle) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "pilot: deadlock detected: circular wait among %d processes:", len(c.Procs))
	for i, p := range c.Procs {
		next := c.Procs[(i+1)%len(c.Procs)]
		fmt.Fprintf(&b, "\n  %s blocked in %s on channel %d waiting for %s",
			c.name(p), c.Ops[i], c.Chans[i], c.name(next))
		if i < len(c.Locs) && c.Locs[i] != "" {
			fmt.Fprintf(&b, " (at %s)", c.Locs[i])
		}
	}
	return b.String()
}

func (c *Cycle) name(id int) string {
	if c.names != nil {
		if n, ok := c.names[id]; ok {
			return n
		}
	}
	return fmt.Sprintf("process %d", id)
}

// Sent records that a message was handed to the transport on ch. If a
// reader is edge-blocked on ch its wait is satisfied; otherwise the send
// stays pending for a future read.
func (d *Detector) Sent(ch int) {
	if proc, ok := d.readers[ch]; ok {
		d.clear(proc)
		return
	}
	d.pending[ch]++
}

// BlockRead records that proc is blocked reading ch, whose writer is
// peer. It reports the cycle it closes, if any.
func (d *Detector) BlockRead(proc, peer, ch int) *Cycle {
	return d.BlockReadAt(proc, peer, ch, "")
}

// BlockReadAt is BlockRead carrying the blocked operation's user call
// site for diagnostics.
func (d *Detector) BlockReadAt(proc, peer, ch int, loc string) *Cycle {
	if d.pending[ch] > 0 {
		// A message is already in flight: this read will complete.
		d.pending[ch]--
		return nil
	}
	if w, ok := d.writers[ch]; ok {
		// Rendezvous: the writer is blocked on the same channel waiting
		// for exactly this read. Both will proceed.
		d.clear(w)
		return nil
	}
	return d.block(proc, peer, ch, OpRead, loc)
}

// BlockWrite records that proc is blocked writing ch (a rendezvous-sized
// or SPE-rendezvous send), whose reader is peer.
func (d *Detector) BlockWrite(proc, peer, ch int) *Cycle {
	return d.BlockWriteAt(proc, peer, ch, "")
}

// BlockWriteAt is BlockWrite carrying the blocked operation's user call
// site for diagnostics.
func (d *Detector) BlockWriteAt(proc, peer, ch int, loc string) *Cycle {
	if r, ok := d.readers[ch]; ok {
		// The reader is already waiting on this very channel: a match.
		d.clear(r)
		return nil
	}
	return d.block(proc, peer, ch, OpWrite, loc)
}

func (d *Detector) block(proc, peer, ch int, op Op, loc string) *Cycle {
	d.waits[proc] = edge{peer: peer, ch: ch, op: op, loc: loc}
	if op == OpRead {
		d.readers[ch] = proc
	} else {
		d.writers[ch] = proc
	}
	// Walk from proc; if the walk returns to proc, that is a cycle.
	return d.walkFrom(proc)
}

// walkFrom follows wait-for edges starting at proc and returns the cycle
// through proc, if the walk closes back on it.
func (d *Detector) walkFrom(proc int) *Cycle {
	seen := map[int]bool{}
	cur := proc
	var procs []int
	var chans []int
	var ops []Op
	var locs []string
	for {
		e, blocked := d.waits[cur]
		if !blocked {
			return nil // chain ends at a runnable process
		}
		if seen[cur] {
			if cur != proc {
				// A cycle exists downstream but does not include proc; it
				// was reported when its own closing edge was added.
				return nil
			}
			return &Cycle{Procs: procs, Chans: chans, Ops: ops, Locs: locs, names: d.names}
		}
		seen[cur] = true
		procs = append(procs, cur)
		chans = append(chans, e.ch)
		ops = append(ops, e.op)
		locs = append(locs, e.loc)
		cur = e.peer
	}
}

// CycleThrough reports the circular wait containing proc in the current
// graph, or nil if proc's wait chain ends at a runnable process. Timeout
// diagnostics use it to distinguish "stuck in a cycle" from "merely slow
// or faulted".
func (d *Detector) CycleThrough(proc int) *Cycle {
	if _, ok := d.waits[proc]; !ok {
		return nil
	}
	return d.walkFrom(proc)
}

// WaitLoc reports the recorded call site of proc's blocked operation, if
// proc holds a wait-for edge.
func (d *Detector) WaitLoc(proc int) (string, bool) {
	e, ok := d.waits[proc]
	return e.loc, ok
}

// Unblock records that proc resumed. It is a no-op if the wait was
// already satisfied by a matching Sent or rendezvous pairing.
func (d *Detector) Unblock(proc int) { d.clear(proc) }

func (d *Detector) clear(proc int) {
	e, ok := d.waits[proc]
	if !ok {
		return
	}
	delete(d.waits, proc)
	if e.op == OpRead {
		if d.readers[e.ch] == proc {
			delete(d.readers, e.ch)
		}
	} else if d.writers[e.ch] == proc {
		delete(d.writers, e.ch)
	}
}

// Blocked reports how many processes currently hold wait-for edges.
func (d *Detector) Blocked() int { return len(d.waits) }
