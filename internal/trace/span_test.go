package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"cellpilot/internal/sim"
)

func TestSpansGroupByTransfer(t *testing.T) {
	r := NewRecorder(0)
	us := sim.Microsecond
	r.RecordPhase(PhaseEvent{Xfer: 7, Phase: PhaseMailboxReq, Proc: "spe", Channel: 1, ChanType: 2, Bytes: 64, Start: 2 * us, End: 3 * us})
	r.RecordPhase(PhaseEvent{Xfer: 7, Phase: PhaseCoPilotService, Proc: "cp", Channel: 1, ChanType: 2, Bytes: 64, Start: 4 * us, End: 5 * us})
	r.RecordPhase(PhaseEvent{Xfer: 7, Phase: PhaseCoPilotWait, Proc: "cp", Channel: 1, ChanType: 2, Bytes: 64, Start: 3 * us, End: 4 * us})
	r.RecordPhase(PhaseEvent{Xfer: 9, Phase: PhaseMPISend, Proc: "main", Channel: 0, ChanType: 1, Bytes: 8, Start: 1 * us, End: 2 * us})
	r.RecordPhase(PhaseEvent{Xfer: 0, Phase: PhasePack, Proc: "main", Channel: 0, Start: 0, End: 1 * us}) // uncorrelated

	spans := r.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	// Ordered by start: xfer 9 (1us) before xfer 7 (2us).
	if spans[0].ID != 9 || spans[1].ID != 7 {
		t.Fatalf("span order: %d, %d", spans[0].ID, spans[1].ID)
	}
	sp := spans[1]
	if sp.Start != 2*us || sp.End != 5*us || sp.Dur() != 3*us {
		t.Fatalf("span bounds: %s..%s", sp.Start, sp.End)
	}
	if len(sp.Phases) != 3 {
		t.Fatalf("phases = %d", len(sp.Phases))
	}
	// Phases sorted by start within the span.
	if sp.Phases[0].Phase != PhaseMailboxReq || sp.Phases[1].Phase != PhaseCoPilotWait {
		t.Fatalf("phase order: %v, %v", sp.Phases[0].Phase, sp.Phases[1].Phase)
	}
	if sp.PhaseTotal(PhaseCoPilotWait) != 1*us {
		t.Fatalf("copilot wait total = %s", sp.PhaseTotal(PhaseCoPilotWait))
	}
	if sp.ChanType != 2 || sp.Bytes != 64 {
		t.Fatalf("span meta: %+v", sp)
	}
}

func TestPhaseLimit(t *testing.T) {
	r := NewRecorder(2)
	for i := 0; i < 5; i++ {
		r.RecordPhase(PhaseEvent{Xfer: int64(i + 1), Phase: PhaseCopy})
	}
	if len(r.Phases()) != 2 || r.PhasesDropped() != 3 {
		t.Fatalf("phases=%d dropped=%d", len(r.Phases()), r.PhasesDropped())
	}
	// Flat-event accounting is independent.
	if r.Dropped() != 0 {
		t.Fatalf("event dropped = %d", r.Dropped())
	}
}

func TestNilRecorderSpanSafe(t *testing.T) {
	var r *Recorder
	r.RecordPhase(PhaseEvent{}) // must not panic
	if r.Phases() != nil || r.Spans() != nil || r.Events() != nil {
		t.Fatal("nil recorder accessors should return nil")
	}
}

func TestPhaseKindStrings(t *testing.T) {
	kinds := []PhaseKind{PhasePack, PhaseMailboxReq, PhaseMailboxWait, PhaseCoPilotWait,
		PhaseCoPilotService, PhaseCopy, PhaseRelay, PhaseMPISend, PhaseMPIWait}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || strings.HasPrefix(s, "phase(") || seen[s] {
			t.Fatalf("bad or duplicate name for %d: %q", int(k), s)
		}
		seen[s] = true
	}
	if got := PhaseKind(99).String(); got != "phase(99)" {
		t.Fatalf("unknown kind = %q", got)
	}
}

func TestWriteChrome(t *testing.T) {
	r := NewRecorder(0)
	us := sim.Microsecond
	r.RecordPhase(PhaseEvent{Xfer: 1, Phase: PhaseMPISend, Proc: "main(rank0@node0)", Channel: 0, ChanType: 1, Bytes: 8, Start: 1 * us, End: 2 * us})
	r.RecordPhase(PhaseEvent{Xfer: 1, Phase: PhaseMPIWait, Proc: "peer(rank1@node1)", Channel: 0, ChanType: 1, Bytes: 8, Start: 0, End: 3 * us})
	r.Record(Event{At: 2 * us, Kind: KindWrite, Proc: "main(rank0@node0)", Channel: 0, Bytes: 8, Xfer: 1})

	var buf bytes.Buffer
	if err := r.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Tid  int            `json:"tid"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, buf.String())
	}
	var threads, slices, instants int
	tids := map[int]bool{}
	for _, ev := range parsed.TraceEvents {
		switch {
		case ev.Ph == "M" && ev.Name == "thread_name":
			threads++
		case ev.Ph == "X":
			slices++
			tids[ev.Tid] = true
		case ev.Ph == "i":
			instants++
		}
	}
	if threads != 2 {
		t.Fatalf("thread_name events = %d, want 2", threads)
	}
	if slices != 2 || len(tids) != 2 {
		t.Fatalf("slices = %d on %d tracks", slices, len(tids))
	}
	if instants != 1 {
		t.Fatalf("instant events = %d", instants)
	}
}

func TestWriteJSONL(t *testing.T) {
	r := NewRecorder(0)
	r.Record(Event{At: 5 * sim.Microsecond, Kind: KindWrite, Proc: "a", Channel: 3, Bytes: 16, Xfer: 2})
	r.Record(Event{At: 6 * sim.Microsecond, Kind: KindRead, Proc: "b", Channel: 3, Bytes: 16, Xfer: 2})
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	var first struct {
		AtNs    int64  `json:"at_ns"`
		Kind    string `json:"kind"`
		Channel int    `json:"channel"`
		Xfer    int64  `json:"xfer"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if first.AtNs != 5000 || first.Kind != "write" || first.Channel != 3 || first.Xfer != 2 {
		t.Fatalf("first line: %+v", first)
	}
}

// SetCounters adds "C" (counter) events to the Chrome export, one per
// sample, under the shared pid.
func TestWriteChromeCounterEvents(t *testing.T) {
	r := NewRecorder(0)
	us := sim.Microsecond
	r.RecordPhase(PhaseEvent{Xfer: 1, Phase: PhaseMPISend, Proc: "main(rank0@node0)", Channel: 0, ChanType: 1, Bytes: 8, Start: 1 * us, End: 2 * us})
	r.SetCounters([]CounterPoint{
		{At: 1 * us, Name: "backlog/total", Value: 3},
		{At: 2 * us, Name: "backlog/total", Value: 1},
		{At: 2 * us, Name: "net/bytes", Value: 512},
	})
	var buf bytes.Buffer
	if err := r.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, buf.String())
	}
	var counters int
	for _, ev := range parsed.TraceEvents {
		if ev.Ph != "C" {
			continue
		}
		counters++
		if _, ok := ev.Args["value"]; !ok {
			t.Fatalf("counter event %q lacks args.value", ev.Name)
		}
	}
	if counters != 3 {
		t.Fatalf("counter events = %d, want 3", counters)
	}
}
