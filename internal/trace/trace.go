// Package trace records channel-level communication events from a
// CellPilot application on the virtual timeline and aggregates them into
// per-channel statistics. Recording is free of virtual-time cost, so an
// instrumented run reproduces exactly the timings of an uninstrumented
// one — the property that makes the recorder usable inside calibrated
// experiments.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"cellpilot/internal/sim"
)

// Kind classifies an event.
type Kind int

// Event kinds.
const (
	// KindWrite is a completed channel write (payload handed off).
	KindWrite Kind = iota
	// KindRead is a completed channel read (payload delivered).
	KindRead
	// KindCoPilot is a Co-Pilot servicing action (request, relay, copy).
	KindCoPilot
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindWrite:
		return "write"
	case KindRead:
		return "read"
	case KindCoPilot:
		return "copilot"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one recorded action.
type Event struct {
	At      sim.Time
	Kind    Kind
	Proc    string
	Channel int
	Bytes   int
	// Xfer is the transfer id correlating this event with the transfer's
	// phase span (0 when the run was not span-instrumented).
	Xfer int64
}

// Recorder accumulates events up to a limit (0 = unlimited). It is used
// from simulation context only, which is single-threaded by construction.
type Recorder struct {
	limit   int
	dropped int
	events  []Event

	phases        []PhaseEvent
	phasesDropped int

	sampleEvery int
	sampledOut  int

	counters []CounterPoint
}

// NewRecorder creates a recorder keeping at most limit events
// (0 = unlimited).
func NewRecorder(limit int) *Recorder {
	return &Recorder{limit: limit}
}

// SetSampleEvery keeps only every n-th transfer (by transfer id): the
// first of every n consecutive ids is retained, the rest are discarded
// with accounting, bounding memory at millions of transfers while keeping
// every phase of the retained transfers together. n <= 1 disables
// sampling. Events without a transfer id (Xfer == 0) are always kept.
// Sampling by id is deterministic, so repeated runs retain the same
// transfers.
func (r *Recorder) SetSampleEvery(n int) {
	if r == nil {
		return
	}
	if n < 1 {
		n = 1
	}
	r.sampleEvery = n
}

// SampleEvery reports the configured sampling rate (1 = keep everything).
func (r *Recorder) SampleEvery() int {
	if r == nil || r.sampleEvery < 1 {
		return 1
	}
	return r.sampleEvery
}

// sampledIn reports whether a transfer id survives the sampling filter.
func (r *Recorder) sampledIn(xfer int64) bool {
	if r.sampleEvery <= 1 || xfer == 0 {
		return true
	}
	return (xfer-1)%int64(r.sampleEvery) == 0
}

// SampledOut reports how many events the sampling filter discarded
// (flat events and phase events combined).
func (r *Recorder) SampledOut() int {
	if r == nil {
		return 0
	}
	return r.sampledOut
}

// Record appends an event, dropping it (with accounting) past the limit.
func (r *Recorder) Record(ev Event) {
	if r == nil {
		return
	}
	if !r.sampledIn(ev.Xfer) {
		r.sampledOut++
		return
	}
	if r.limit > 0 && len(r.events) >= r.limit {
		r.dropped++
		return
	}
	r.events = append(r.events, ev)
}

// Events returns a copy of the recorded events in order. (A copy, so
// callers cannot corrupt the recorder's internal state by mutating or
// appending to the returned slice.)
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	return append([]Event(nil), r.events...)
}

// Dropped reports events discarded past the limit.
func (r *Recorder) Dropped() int { return r.dropped }

// ChannelStats aggregates one channel's traffic.
type ChannelStats struct {
	Channel     int
	Writes      int
	Reads       int
	Bytes       int64
	First, Last sim.Time
}

// Span reports the time between the channel's first and last event. With
// fewer than two events there is no interval, so the span is 0 regardless
// of where the single event (if any) sits on the timeline.
func (st ChannelStats) Span() sim.Time {
	if st.Writes+st.Reads < 2 {
		return 0
	}
	return st.Last - st.First
}

// ByChannel aggregates events per channel id.
func (r *Recorder) ByChannel() []ChannelStats {
	agg := map[int]*ChannelStats{}
	for _, ev := range r.events {
		if ev.Kind == KindCoPilot {
			continue
		}
		st, ok := agg[ev.Channel]
		if !ok {
			st = &ChannelStats{Channel: ev.Channel, First: ev.At}
			agg[ev.Channel] = st
		}
		switch ev.Kind {
		case KindWrite:
			st.Writes++
			st.Bytes += int64(ev.Bytes)
		case KindRead:
			st.Reads++
		}
		if ev.At > st.Last {
			st.Last = ev.At
		}
		if ev.At < st.First {
			st.First = ev.At
		}
	}
	out := make([]ChannelStats, 0, len(agg))
	for _, st := range agg {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Channel < out[j].Channel })
	return out
}

// Summary renders a human-readable per-channel digest.
func (r *Recorder) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace: %d events (%d dropped)\n", len(r.events), r.dropped)
	for _, st := range r.ByChannel() {
		span := "0s"
		if s := st.Span(); s > 0 {
			span = s.String()
		}
		fmt.Fprintf(&b, "  channel %-3d writes=%-5d reads=%-5d bytes=%-8d span=%s\n",
			st.Channel, st.Writes, st.Reads, st.Bytes, span)
	}
	return b.String()
}

// CounterPoint is one sample of a named counter track for the Chrome
// exporter's "C" (counter) events — typically a timeline series window
// value stamped at the window's end.
type CounterPoint struct {
	At    sim.Time
	Name  string
	Value float64
}

// SetCounters attaches counter tracks to the Chrome export (replacing any
// previous set). Points must already be in deterministic order; the
// timeline recorder's Points() satisfies that.
func (r *Recorder) SetCounters(pts []CounterPoint) { r.counters = pts }
