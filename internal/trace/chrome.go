package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"cellpilot/internal/sim"
)

// chromeEvent is one entry of the Chrome trace_event format (the JSON
// about://tracing and Perfetto load). Timestamps and durations are in
// microseconds; we map each CellPilot process (and each Co-Pilot rank) to
// its own thread track under a single pid.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	S    string         `json:"s,omitempty"`
	ID   *int64         `json:"id,omitempty"`
	Bp   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

const chromePid = 1

func usec(t sim.Time) float64 { return float64(t) / float64(sim.Microsecond) }

// WriteChrome renders the recorder's spans and events as Chrome
// trace_event JSON: one thread track per process and per Co-Pilot, a
// complete ("X") slice per transfer phase, and an instant event per flat
// completion event. Open the output in Perfetto (ui.perfetto.dev) or
// about://tracing.
func (r *Recorder) WriteChrome(w io.Writer) error {
	// Deterministic track table: every proc seen in a phase or event, in
	// sorted order.
	seen := map[string]bool{}
	for _, pe := range r.phases {
		seen[pe.Proc] = true
	}
	for _, ev := range r.events {
		seen[ev.Proc] = true
	}
	names := make([]string, 0, len(seen))
	for name := range seen {
		names = append(names, name)
	}
	sort.Strings(names)
	tids := make(map[string]int, len(names))
	events := make([]chromeEvent, 0, 2*len(names)+len(r.phases)+len(r.events))
	for i, name := range names {
		tid := i + 1
		tids[name] = tid
		events = append(events,
			chromeEvent{Name: "thread_name", Ph: "M", Pid: chromePid, Tid: tid,
				Args: map[string]any{"name": name}},
			chromeEvent{Name: "thread_sort_index", Ph: "M", Pid: chromePid, Tid: tid,
				Args: map[string]any{"sort_index": tid}},
		)
	}
	for _, pe := range r.phases {
		dur := usec(pe.End - pe.Start)
		name := fmt.Sprintf("%s ch%d", pe.Phase, pe.Channel)
		args := map[string]any{
			"xfer": pe.Xfer, "channel": pe.Channel, "bytes": pe.Bytes,
			"phase": pe.Phase.String(),
		}
		if pe.Chunk > 0 {
			name = fmt.Sprintf("%s %d ch%d", pe.Phase, pe.Chunk-1, pe.Channel)
			args["stream"] = pe.Stream
			args["chunk"] = pe.Chunk - 1
		}
		events = append(events, chromeEvent{
			Name: name,
			Cat:  fmt.Sprintf("type%d", pe.ChanType),
			Ph:   "X", Pid: chromePid, Tid: tids[pe.Proc],
			Ts: usec(pe.Start), Dur: &dur,
			Args: args,
		})
	}
	events = append(events, r.flowEvents(tids)...)
	events = append(events, r.chunkFlowEvents(tids)...)
	for _, ev := range r.events {
		events = append(events, chromeEvent{
			Name: fmt.Sprintf("%s ch%d", ev.Kind, ev.Channel),
			Cat:  "event",
			Ph:   "i", Pid: chromePid, Tid: tids[ev.Proc],
			Ts: usec(ev.At), S: "t",
			Args: map[string]any{"channel": ev.Channel, "bytes": ev.Bytes, "xfer": ev.Xfer},
		})
	}
	// Counter ("C") events: one per (series, window) sample. Perfetto
	// renders each distinct name as its own counter track under the pid.
	for _, cp := range r.counters {
		events = append(events, chromeEvent{
			Name: cp.Name,
			Cat:  "counter",
			Ph:   "C", Pid: chromePid,
			Ts:   usec(cp.At),
			Args: map[string]any{"value": cp.Value},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"traceEvents":     events,
		"displayTimeUnit": "ns",
	})
}

// flowEvents links each transfer's phases across the tracks they ran on
// with Chrome flow ("s"/"t"/"f") events, so a transfer reads as one
// arrowed chain writer → Co-Pilot → reader in Perfetto. A flow arrow is
// emitted at the first phase of each distinct track the transfer visits;
// transfers confined to a single track need no arrows.
func (r *Recorder) flowEvents(tids map[string]int) []chromeEvent {
	spans := r.Spans()
	var out []chromeEvent
	for _, sp := range spans {
		// Anchor points: the first phase on each track, in timeline order.
		type anchor struct {
			proc string
			at   sim.Time
		}
		var anchors []anchor
		seen := map[string]bool{}
		for _, pe := range sp.Phases {
			if seen[pe.Proc] {
				continue
			}
			seen[pe.Proc] = true
			anchors = append(anchors, anchor{proc: pe.Proc, at: pe.Start})
		}
		if len(anchors) < 2 {
			continue
		}
		id := sp.ID
		for i, a := range anchors {
			ev := chromeEvent{
				Name: "xfer", Cat: "flow",
				Pid: chromePid, Tid: tids[a.proc],
				Ts: usec(a.at), ID: &id,
			}
			switch {
			case i == 0:
				ev.Ph = "s"
			case i == len(anchors)-1:
				ev.Ph = "f"
				ev.Bp = "e"
			default:
				ev.Ph = "t"
			}
			out = append(out, ev)
		}
	}
	return out
}

// chunkFlowEvents links each individual chunk frame across the tracks it
// visits: chunk k's injection on the writer (or Co-Pilot) track arrows to
// chunk k's drain on the reader side, so a pipelined stream reads as N
// parallel arrows instead of one whole-transfer arrow. Flow ids pack the
// stream id and chunk index so chunks of the same stream stay distinct;
// sampling keeps or drops a stream's frames together with its other
// phases (both filter on the same transfer id).
func (r *Recorder) chunkFlowEvents(tids map[string]int) []chromeEvent {
	type ckey struct {
		stream int64
		chunk  int
	}
	frames := map[ckey][]PhaseEvent{}
	var keys []ckey
	for _, pe := range r.phases {
		if pe.Phase != PhaseChunkFrame || pe.Chunk == 0 {
			continue
		}
		k := ckey{pe.Stream, pe.Chunk}
		if _, ok := frames[k]; !ok {
			keys = append(keys, k)
		}
		frames[k] = append(frames[k], pe)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].stream != keys[j].stream {
			return keys[i].stream < keys[j].stream
		}
		return keys[i].chunk < keys[j].chunk
	})
	var out []chromeEvent
	for _, k := range keys {
		fs := frames[k]
		if len(fs) < 2 {
			continue // frame seen on one side only: nothing to link
		}
		sort.Slice(fs, func(i, j int) bool {
			if fs[i].Start != fs[j].Start {
				return fs[i].Start < fs[j].Start
			}
			return fs[i].Proc < fs[j].Proc
		})
		id := k.stream<<12 | int64(k.chunk)
		for i, pe := range fs {
			ev := chromeEvent{
				Name: "chunk", Cat: "flow",
				Pid: chromePid, Tid: tids[pe.Proc],
				Ts: usec(pe.Start), ID: &id,
			}
			switch {
			case i == 0:
				ev.Ph = "s"
			case i == len(fs)-1:
				ev.Ph = "f"
				ev.Bp = "e"
			default:
				ev.Ph = "t"
			}
			out = append(out, ev)
		}
	}
	return out
}
