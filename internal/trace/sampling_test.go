package trace

import (
	"bytes"
	"encoding/json"
	"testing"

	"cellpilot/internal/sim"
)

func TestSamplingKeepsDeterministicSubset(t *testing.T) {
	r := NewRecorder(0)
	r.SetSampleEvery(3)
	if r.SampleEvery() != 3 {
		t.Fatalf("SampleEvery = %d", r.SampleEvery())
	}
	for i := 1; i <= 9; i++ {
		r.Record(Event{At: sim.Time(i), Kind: KindWrite, Proc: "p", Channel: 1, Xfer: int64(i)})
		r.RecordPhase(PhaseEvent{Xfer: int64(i), Phase: PhasePack, Proc: "p", Channel: 1,
			Start: sim.Time(i), End: sim.Time(i) + 1})
	}
	// (xfer-1)%3 == 0 keeps 1, 4, 7.
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("kept %d events, want 3: %+v", len(evs), evs)
	}
	for i, want := range []int64{1, 4, 7} {
		if evs[i].Xfer != want {
			t.Fatalf("event %d has xfer %d, want %d", i, evs[i].Xfer, want)
		}
	}
	if got := len(r.Spans()); got != 3 {
		t.Fatalf("kept %d spans, want 3", got)
	}
	if r.SampledOut() != 12 { // 6 events + 6 phases dropped
		t.Fatalf("SampledOut = %d, want 12", r.SampledOut())
	}
}

func TestSamplingKeepsUntaggedEvents(t *testing.T) {
	r := NewRecorder(0)
	r.SetSampleEvery(10)
	r.Record(Event{At: 1, Kind: KindWrite, Proc: "p", Channel: 1, Xfer: 0})
	r.Record(Event{At: 2, Kind: KindWrite, Proc: "p", Channel: 1, Xfer: 2})
	if got := len(r.Events()); got != 1 {
		t.Fatalf("kept %d events, want 1 (the untagged one)", got)
	}
	if r.Events()[0].Xfer != 0 {
		t.Fatal("the untagged event was dropped")
	}
}

func TestSamplingDefaultsAndClamps(t *testing.T) {
	r := NewRecorder(0)
	if r.SampleEvery() != 1 {
		t.Fatalf("default SampleEvery = %d, want 1", r.SampleEvery())
	}
	r.SetSampleEvery(0) // clamped to 1 = keep everything
	for i := 1; i <= 5; i++ {
		r.Record(Event{At: sim.Time(i), Kind: KindRead, Proc: "p", Channel: 1, Xfer: int64(i)})
	}
	if got := len(r.Events()); got != 5 {
		t.Fatalf("kept %d events, want all 5", got)
	}
	var nilRec *Recorder
	nilRec.SetSampleEvery(4) // must not panic
	if nilRec.SampleEvery() != 1 || nilRec.SampledOut() != 0 {
		t.Fatal("nil recorder sampling accessors not inert")
	}
}

// Flow events: a transfer whose phases run on several tracks is linked
// with ph "s"/"f" arrows carrying the transfer id; single-track transfers
// get none.
func TestChromeFlowEvents(t *testing.T) {
	r := NewRecorder(0)
	r.RecordPhase(PhaseEvent{Xfer: 1, Phase: PhaseMailboxReq, Proc: "writer", Channel: 1,
		Start: 0, End: 10})
	r.RecordPhase(PhaseEvent{Xfer: 1, Phase: PhaseCoPilotService, Proc: "copilot", Channel: 1,
		Start: 10, End: 30})
	r.RecordPhase(PhaseEvent{Xfer: 1, Phase: PhaseMailboxWait, Proc: "reader", Channel: 1,
		Start: 30, End: 50})
	r.RecordPhase(PhaseEvent{Xfer: 2, Phase: PhasePack, Proc: "writer", Channel: 2,
		Start: 60, End: 70}) // single track: no flow arrows

	var buf bytes.Buffer
	if err := r.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph string `json:"ph"`
			ID *int64 `json:"id"`
			Bp string `json:"bp"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome output is not JSON: %v", err)
	}
	var starts, steps, finishes int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "s", "t", "f":
			if ev.ID == nil || *ev.ID != 1 {
				t.Fatalf("flow event %+v does not carry transfer id 1", ev)
			}
			switch ev.Ph {
			case "s":
				starts++
			case "t":
				steps++
			case "f":
				finishes++
				if ev.Bp != "e" {
					t.Errorf("finishing flow event lacks bp=e: %+v", ev)
				}
			}
		}
	}
	if starts != 1 || steps != 1 || finishes != 1 {
		t.Fatalf("flow events s/t/f = %d/%d/%d, want 1/1/1", starts, steps, finishes)
	}
}
