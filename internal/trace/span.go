package trace

import (
	"fmt"
	"sort"

	"cellpilot/internal/sim"
)

// PhaseKind classifies one stage inside a channel transfer. A transfer
// (one message moving writer → reader) is identified by its Xfer id; the
// phase events sharing an id form the transfer's span, spread across the
// endpoint processes and the Co-Pilots that serviced it.
type PhaseKind int

// Transfer phases.
const (
	// PhasePack is the endpoint packing or unpacking cost (Pilot overhead
	// plus per-byte marshalling).
	PhasePack PhaseKind = iota
	// PhaseMailboxReq is an SPE stub posting its four-word request
	// descriptor through the outbound mailbox.
	PhaseMailboxReq
	// PhaseMailboxWait is an SPE stub blocked on the inbound mailbox for
	// the Co-Pilot's completion status.
	PhaseMailboxWait
	// PhaseCoPilotWait is the interval between a request being posted and
	// the Co-Pilot decoding it: mailbox transfer plus service-queue wait
	// plus polling quantization.
	PhaseCoPilotWait
	// PhaseCoPilotService is the Co-Pilot decoding and dispatching one
	// request.
	PhaseCoPilotService
	// PhaseCopy is a shared-memory data move: the type-4 EA-window memcpy
	// or the A1 direct-local handoff.
	PhaseCopy
	// PhaseRelay is a Co-Pilot MPI leg: relaying an SPE write onward, or
	// landing an inbound payload in the reader's local store.
	PhaseRelay
	// PhaseMPISend is an endpoint process inside MPI send (including any
	// rendezvous wait for the reader).
	PhaseMPISend
	// PhaseMPIWait is an endpoint process blocked in MPI receive.
	PhaseMPIWait
	// PhaseChunkRelay is one endpoint's leg of the pipelined chunked
	// transfer: streaming a large payload as fixed-size chunks whose DMA,
	// stack, and wire stages overlap. One event covers the whole stream on
	// that endpoint, not one per chunk.
	PhaseChunkRelay
	// PhaseChunkFrame is one individual chunk frame of a stream: the stack
	// injection (writer side) or drain (reader side) of chunk Chunk of
	// stream Stream. Frame events are annotations riding inside the
	// enclosing PhaseChunkRelay — they never compete for critical-path
	// attribution, but they let Chrome flow events link chunk k's injection
	// to chunk k's drain and give the blame analyzer per-chunk granularity.
	PhaseChunkFrame
	// PhaseChunkDMA is one chunk's LS↔EA move on the SPE's MFC DMA engine.
	// Like PhaseChunkFrame it is an annotation, but it additionally defines
	// the mfc-dma resource's occupancy intervals for queueing blame.
	PhaseChunkDMA
)

// IsAnnotation reports whether the kind is a sub-slice annotation (chunk
// frame or DMA) rather than a primary transfer stage. Annotations carry
// chunk-level detail and resource occupancy; the critical-path sweep and
// the profiler's exclusive buckets consider only primary stages, so the
// per-stage attributions keep summing to the end-to-end latency.
func (k PhaseKind) IsAnnotation() bool {
	return k == PhaseChunkFrame || k == PhaseChunkDMA
}

// String implements fmt.Stringer.
func (k PhaseKind) String() string {
	switch k {
	case PhasePack:
		return "pack"
	case PhaseMailboxReq:
		return "mbox-req"
	case PhaseMailboxWait:
		return "mbox-wait"
	case PhaseCoPilotWait:
		return "copilot-wait"
	case PhaseCoPilotService:
		return "copilot-service"
	case PhaseCopy:
		return "copy"
	case PhaseRelay:
		return "relay"
	case PhaseMPISend:
		return "mpi-send"
	case PhaseMPIWait:
		return "mpi-wait"
	case PhaseChunkRelay:
		return "chunk-relay"
	case PhaseChunkFrame:
		return "chunk-frame"
	case PhaseChunkDMA:
		return "mfc-dma"
	default:
		return fmt.Sprintf("phase(%d)", int(k))
	}
}

// PhaseEvent is one recorded transfer stage: who spent [Start, End] doing
// what, for which transfer.
type PhaseEvent struct {
	// Xfer identifies the transfer; all phases of one message share it.
	Xfer int64
	// Phase is the stage.
	Phase PhaseKind
	// Proc is the process (or Co-Pilot rank label) that executed the stage.
	Proc string
	// Channel is the channel id; ChanType its Table I type (1..5).
	Channel  int
	ChanType int
	// Bytes is the payload size of the transfer.
	Bytes      int
	Start, End sim.Time
	// Stream and Chunk annotate per-chunk events of a pipelined stream:
	// Stream is the owning stream's transfer id (equal to Xfer — recorded
	// explicitly so a chunk frame is self-describing even when inspected in
	// isolation, e.g. in a flight-recorder tail) and Chunk is the 1-based
	// chunk index. Both are zero on whole-transfer phase events.
	Stream int64
	Chunk  int
}

// Dur reports the phase duration.
func (pe PhaseEvent) Dur() sim.Time { return pe.End - pe.Start }

// RecordPhase appends a phase event, honouring the recorder's limit with
// separate drop accounting from flat events, and the sampling rate set by
// SetSampleEvery.
func (r *Recorder) RecordPhase(pe PhaseEvent) {
	if r == nil {
		return
	}
	if !r.sampledIn(pe.Xfer) {
		r.sampledOut++
		return
	}
	if r.limit > 0 && len(r.phases) >= r.limit {
		r.phasesDropped++
		return
	}
	r.phases = append(r.phases, pe)
}

// Phases returns a copy of the recorded phase events in recording order.
func (r *Recorder) Phases() []PhaseEvent {
	if r == nil {
		return nil
	}
	return append([]PhaseEvent(nil), r.phases...)
}

// PhasesDropped reports phase events discarded past the limit.
func (r *Recorder) PhasesDropped() int { return r.phasesDropped }

// Span is one assembled transfer: every phase sharing a transfer id,
// bounded by the earliest start and latest end.
type Span struct {
	ID         int64
	Channel    int
	ChanType   int
	Bytes      int
	Start, End sim.Time
	Phases     []PhaseEvent
}

// Dur reports the span's wall (virtual) duration.
func (s Span) Dur() sim.Time { return s.End - s.Start }

// PhaseTotal sums the durations of the span's phases of one kind.
func (s Span) PhaseTotal(k PhaseKind) sim.Time {
	var total sim.Time
	for _, pe := range s.Phases {
		if pe.Phase == k {
			total += pe.Dur()
		}
	}
	return total
}

// Spans groups the recorded phase events by transfer id, ordered by start
// time (id as tie-break). Phases recorded without an id (0) are not part
// of any transfer and are skipped.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	byID := map[int64]*Span{}
	for _, pe := range r.phases {
		if pe.Xfer == 0 {
			continue
		}
		sp, ok := byID[pe.Xfer]
		if !ok {
			sp = &Span{
				ID: pe.Xfer, Channel: pe.Channel, ChanType: pe.ChanType,
				Bytes: pe.Bytes, Start: pe.Start, End: pe.End,
			}
			byID[pe.Xfer] = sp
		}
		if pe.Start < sp.Start {
			sp.Start = pe.Start
		}
		if pe.End > sp.End {
			sp.End = pe.End
		}
		if pe.Bytes > sp.Bytes {
			sp.Bytes = pe.Bytes
		}
		sp.Phases = append(sp.Phases, pe)
	}
	out := make([]Span, 0, len(byID))
	for _, sp := range byID {
		sort.Slice(sp.Phases, func(i, j int) bool {
			a, b := sp.Phases[i], sp.Phases[j]
			if a.Start != b.Start {
				return a.Start < b.Start
			}
			return a.Phase < b.Phase
		})
		out = append(out, *sp)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].ID < out[j].ID
	})
	return out
}
