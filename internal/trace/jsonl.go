package trace

import (
	"encoding/json"
	"io"
)

// eventJSON is the JSON Lines wire form of an Event.
type eventJSON struct {
	AtNs    int64  `json:"at_ns"`
	Kind    string `json:"kind"`
	Proc    string `json:"proc"`
	Channel int    `json:"channel"`
	Bytes   int    `json:"bytes"`
	Xfer    int64  `json:"xfer,omitempty"`
}

// WriteJSONL emits the event timeline as JSON Lines (one event object per
// line), the scripting-friendly counterpart of the human-readable
// timeline.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, ev := range r.events {
		if err := enc.Encode(eventJSON{
			AtNs: int64(ev.At), Kind: ev.Kind.String(), Proc: ev.Proc,
			Channel: ev.Channel, Bytes: ev.Bytes, Xfer: ev.Xfer,
		}); err != nil {
			return err
		}
	}
	return nil
}
