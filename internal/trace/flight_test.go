package trace

import (
	"strings"
	"testing"

	"cellpilot/internal/sim"
)

func flightEvent(i int) PhaseEvent {
	return PhaseEvent{
		Xfer: int64(i), Phase: PhasePack, Proc: "p",
		Channel: 1, ChanType: 4, Bytes: 64,
		Start: sim.Time(i) * sim.Microsecond, End: sim.Time(i)*sim.Microsecond + 100,
	}
}

func TestFlightRingWraps(t *testing.T) {
	f := NewFlight(4)
	if f.Depth() != 4 {
		t.Fatalf("Depth = %d, want 4", f.Depth())
	}
	for i := 1; i <= 10; i++ {
		f.Record(flightEvent(i))
	}
	if f.Total() != 10 {
		t.Fatalf("Total = %d, want 10", f.Total())
	}
	tail := f.Tail(100) // more than depth: clamped to what is retained
	if len(tail) != 4 {
		t.Fatalf("Tail(100) kept %d events, want 4", len(tail))
	}
	// Chronological order: the oldest retained first, newest last.
	for i, pe := range tail {
		if want := int64(7 + i); pe.Xfer != want {
			t.Fatalf("tail[%d].Xfer = %d, want %d (tail %+v)", i, pe.Xfer, want, tail)
		}
	}
	if got := f.Tail(2); len(got) != 2 || got[1].Xfer != 10 {
		t.Fatalf("Tail(2) = %+v, want last two", got)
	}
}

func TestFlightBeforeWrap(t *testing.T) {
	f := NewFlight(8)
	for i := 1; i <= 3; i++ {
		f.Record(flightEvent(i))
	}
	tail := f.Tail(8)
	if len(tail) != 3 {
		t.Fatalf("Tail kept %d events, want 3", len(tail))
	}
	for i, pe := range tail {
		if pe.Xfer != int64(i+1) {
			t.Fatalf("tail[%d].Xfer = %d, want %d", i, pe.Xfer, i+1)
		}
	}
	if got := f.Tail(0); len(got) != 3 {
		t.Fatalf("Tail(0) = %+v, want all 3 retained events", got)
	}
}

func TestFlightDefaults(t *testing.T) {
	if f := NewFlight(0); f.Depth() != DefaultFlightDepth {
		t.Fatalf("default depth = %d, want %d", f.Depth(), DefaultFlightDepth)
	}
	if f := NewFlight(-3); f.Depth() != DefaultFlightDepth {
		t.Fatalf("negative depth = %d, want %d", f.Depth(), DefaultFlightDepth)
	}
}

func TestFlightNilSafe(t *testing.T) {
	var f *Flight
	f.Record(flightEvent(1)) // must not panic
	if f.Tail(4) != nil || f.TailLines(4) != nil || f.Total() != 0 || f.Depth() != 0 {
		t.Fatal("nil Flight is not inert")
	}
}

func TestFlightTailLines(t *testing.T) {
	f := NewFlight(4)
	f.Record(PhaseEvent{
		Xfer: 7, Phase: PhaseRelay, Proc: "copilot@cell0",
		Channel: 3, ChanType: 5, Bytes: 1600,
		Start: 250 * sim.Microsecond, End: 300 * sim.Microsecond,
	})
	lines := f.TailLines(4)
	if len(lines) != 1 {
		t.Fatalf("TailLines = %v, want 1 line", lines)
	}
	for _, want := range []string{"relay", "copilot@cell0", "ch=3", "type=5", "bytes=1600", "xfer=7"} {
		if !strings.Contains(lines[0], want) {
			t.Errorf("line %q lacks %q", lines[0], want)
		}
	}
}
