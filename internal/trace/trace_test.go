package trace

import (
	"strings"
	"testing"

	"cellpilot/internal/sim"
)

func TestRecorderAggregation(t *testing.T) {
	r := NewRecorder(0)
	r.Record(Event{At: 1 * sim.Microsecond, Kind: KindWrite, Proc: "a", Channel: 0, Bytes: 100})
	r.Record(Event{At: 2 * sim.Microsecond, Kind: KindRead, Proc: "b", Channel: 0, Bytes: 100})
	r.Record(Event{At: 3 * sim.Microsecond, Kind: KindWrite, Proc: "a", Channel: 0, Bytes: 50})
	r.Record(Event{At: 9 * sim.Microsecond, Kind: KindWrite, Proc: "c", Channel: 2, Bytes: 8})
	r.Record(Event{At: 5 * sim.Microsecond, Kind: KindCoPilot, Proc: "cp", Channel: 0, Bytes: 0})
	stats := r.ByChannel()
	if len(stats) != 2 {
		t.Fatalf("channels = %d", len(stats))
	}
	c0 := stats[0]
	if c0.Channel != 0 || c0.Writes != 2 || c0.Reads != 1 || c0.Bytes != 150 {
		t.Fatalf("c0 = %+v", c0)
	}
	if c0.First != 1*sim.Microsecond || c0.Last != 3*sim.Microsecond {
		t.Fatalf("span = %s..%s", c0.First, c0.Last)
	}
	if !strings.Contains(r.Summary(), "channel 2") {
		t.Fatalf("summary: %s", r.Summary())
	}
}

func TestRecorderLimit(t *testing.T) {
	r := NewRecorder(2)
	for i := 0; i < 5; i++ {
		r.Record(Event{Kind: KindWrite, Channel: i})
	}
	if len(r.Events()) != 2 || r.Dropped() != 3 {
		t.Fatalf("events=%d dropped=%d", len(r.Events()), r.Dropped())
	}
}

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Record(Event{}) // must not panic
}
