package trace

import (
	"strings"
	"testing"

	"cellpilot/internal/sim"
)

func TestRecorderAggregation(t *testing.T) {
	r := NewRecorder(0)
	r.Record(Event{At: 1 * sim.Microsecond, Kind: KindWrite, Proc: "a", Channel: 0, Bytes: 100})
	r.Record(Event{At: 2 * sim.Microsecond, Kind: KindRead, Proc: "b", Channel: 0, Bytes: 100})
	r.Record(Event{At: 3 * sim.Microsecond, Kind: KindWrite, Proc: "a", Channel: 0, Bytes: 50})
	r.Record(Event{At: 9 * sim.Microsecond, Kind: KindWrite, Proc: "c", Channel: 2, Bytes: 8})
	r.Record(Event{At: 5 * sim.Microsecond, Kind: KindCoPilot, Proc: "cp", Channel: 0, Bytes: 0})
	stats := r.ByChannel()
	if len(stats) != 2 {
		t.Fatalf("channels = %d", len(stats))
	}
	c0 := stats[0]
	if c0.Channel != 0 || c0.Writes != 2 || c0.Reads != 1 || c0.Bytes != 150 {
		t.Fatalf("c0 = %+v", c0)
	}
	if c0.First != 1*sim.Microsecond || c0.Last != 3*sim.Microsecond {
		t.Fatalf("span = %s..%s", c0.First, c0.Last)
	}
	if !strings.Contains(r.Summary(), "channel 2") {
		t.Fatalf("summary: %s", r.Summary())
	}
}

func TestRecorderLimit(t *testing.T) {
	r := NewRecorder(2)
	for i := 0; i < 5; i++ {
		r.Record(Event{Kind: KindWrite, Channel: i})
	}
	if len(r.Events()) != 2 || r.Dropped() != 3 {
		t.Fatalf("events=%d dropped=%d", len(r.Events()), r.Dropped())
	}
}

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Record(Event{}) // must not panic
}

func TestEventsReturnsCopy(t *testing.T) {
	r := NewRecorder(0)
	r.Record(Event{At: 1, Kind: KindWrite, Proc: "a", Channel: 0, Bytes: 4})
	r.Record(Event{At: 2, Kind: KindRead, Proc: "b", Channel: 0, Bytes: 4})
	evs := r.Events()
	evs[0].Channel = 99
	evs[0].Kind = KindCoPilot
	_ = append(evs[:1], Event{Channel: 42}) // clobbers the copy, not the recorder
	fresh := r.Events()
	if fresh[0].Channel != 0 || fresh[0].Kind != KindWrite || fresh[1].Channel != 0 {
		t.Fatalf("recorder state corrupted through Events(): %+v", fresh)
	}
	stats := r.ByChannel()
	if len(stats) != 1 || stats[0].Channel != 0 {
		t.Fatalf("aggregation saw corrupted events: %+v", stats)
	}
}

func TestSummaryDegenerateSpans(t *testing.T) {
	// Empty recorder: no per-channel lines, no garbage.
	empty := NewRecorder(0)
	if s := empty.Summary(); !strings.Contains(s, "0 events") || strings.Contains(s, "channel") {
		t.Fatalf("empty summary: %q", s)
	}

	// One event at t=0 and one event at t>0: both are point observations
	// with no interval, so both must render span=0s.
	r := NewRecorder(0)
	r.Record(Event{At: 0, Kind: KindWrite, Proc: "a", Channel: 0, Bytes: 1})
	r.Record(Event{At: 7 * sim.Microsecond, Kind: KindWrite, Proc: "a", Channel: 1, Bytes: 1})
	for _, st := range r.ByChannel() {
		if st.Span() != 0 {
			t.Fatalf("single-event channel %d span = %s, want 0", st.Channel, st.Span())
		}
	}
	sum := r.Summary()
	if got := strings.Count(sum, "span=0s"); got != 2 {
		t.Fatalf("want two span=0s lines, got %d in:\n%s", got, sum)
	}

	// Two events define a real interval again.
	r.Record(Event{At: 9 * sim.Microsecond, Kind: KindRead, Proc: "b", Channel: 1, Bytes: 1})
	for _, st := range r.ByChannel() {
		if st.Channel == 1 && st.Span() != 2*sim.Microsecond {
			t.Fatalf("channel 1 span = %s", st.Span())
		}
	}
}

func TestByChannelEdgeCases(t *testing.T) {
	// Empty recorder.
	if got := NewRecorder(0).ByChannel(); len(got) != 0 {
		t.Fatalf("empty ByChannel = %+v", got)
	}
	// Only Co-Pilot events: filtered out entirely.
	r := NewRecorder(0)
	r.Record(Event{At: 1, Kind: KindCoPilot, Proc: "cp", Channel: 5, Bytes: 10})
	r.Record(Event{At: 2, Kind: KindCoPilot, Proc: "cp", Channel: 5, Bytes: 10})
	if got := r.ByChannel(); len(got) != 0 {
		t.Fatalf("copilot-only ByChannel = %+v", got)
	}
	// Dropped events beyond the limit are accounted, not aggregated.
	lim := NewRecorder(1)
	lim.Record(Event{At: 1, Kind: KindWrite, Proc: "a", Channel: 0, Bytes: 8})
	lim.Record(Event{At: 2, Kind: KindWrite, Proc: "a", Channel: 0, Bytes: 8})
	if lim.Dropped() != 1 {
		t.Fatalf("dropped = %d", lim.Dropped())
	}
	st := lim.ByChannel()
	if len(st) != 1 || st[0].Writes != 1 || st[0].Bytes != 8 {
		t.Fatalf("limited aggregation = %+v", st)
	}
	if !strings.Contains(lim.Summary(), "(1 dropped)") {
		t.Fatalf("summary lacks drop accounting: %q", lim.Summary())
	}
}
