package trace

import (
	"fmt"
)

// Flight is an always-on bounded ring buffer of the most recent phase
// events — a flight recorder. Unlike the Recorder, which is opt-in and
// keeps everything up to a limit, the Flight keeps only the last N events
// and is cheap enough to leave attached to every run; its tail is stitched
// into fault diagnostics so a *ChannelFault or FaultSummary ships the
// moments leading up to the failure.
//
// Like the Recorder it is used from simulation context only, which is
// single-threaded by construction.
type Flight struct {
	buf   []PhaseEvent
	next  int
	total int64
}

// DefaultFlightDepth is the ring depth used when none is given.
const DefaultFlightDepth = 256

// NewFlight creates a flight recorder keeping the last depth phase events
// (depth <= 0 selects DefaultFlightDepth).
func NewFlight(depth int) *Flight {
	if depth <= 0 {
		depth = DefaultFlightDepth
	}
	return &Flight{buf: make([]PhaseEvent, 0, depth)}
}

// Record appends a phase event, overwriting the oldest past the depth.
func (f *Flight) Record(pe PhaseEvent) {
	if f == nil {
		return
	}
	f.total++
	if len(f.buf) < cap(f.buf) {
		f.buf = append(f.buf, pe)
		return
	}
	f.buf[f.next] = pe
	f.next = (f.next + 1) % len(f.buf)
}

// Depth reports the ring capacity.
func (f *Flight) Depth() int {
	if f == nil {
		return 0
	}
	return cap(f.buf)
}

// Total reports how many events were ever recorded (including overwritten
// ones).
func (f *Flight) Total() int64 {
	if f == nil {
		return 0
	}
	return f.total
}

// Tail returns the last n retained events in chronological order (all of
// them when n <= 0 or n exceeds the retained count).
func (f *Flight) Tail(n int) []PhaseEvent {
	if f == nil || len(f.buf) == 0 {
		return nil
	}
	out := make([]PhaseEvent, 0, len(f.buf))
	if len(f.buf) < cap(f.buf) {
		out = append(out, f.buf...)
	} else {
		out = append(out, f.buf[f.next:]...)
		out = append(out, f.buf[:f.next]...)
	}
	if n > 0 && n < len(out) {
		out = out[len(out)-n:]
	}
	return out
}

// TailLines renders the last n retained events as human-readable lines,
// oldest first — the form attached to fault reports.
func (f *Flight) TailLines(n int) []string {
	tail := f.Tail(n)
	if len(tail) == 0 {
		return nil
	}
	lines := make([]string, 0, len(tail))
	for _, pe := range tail {
		lines = append(lines, fmt.Sprintf(
			"t=%-12s %-18s %-14s ch=%-3d type=%d bytes=%-7d xfer=%-5d dur=%s",
			pe.Start, pe.Proc, pe.Phase, pe.Channel, pe.ChanType,
			pe.Bytes, pe.Xfer, pe.Dur()))
	}
	return lines
}
