package core

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"cellpilot/internal/cluster"
)

// TestChannelIntegrityProperty drives random payloads through every
// channel type and checks bit-exact delivery — the end-to-end invariant
// behind the whole Table I protocol zoo: whatever the route (plain MPI,
// Co-Pilot relay, mailbox + EA copy), the reader sees exactly the
// writer's bytes.
func TestChannelIntegrityProperty(t *testing.T) {
	prop := func(seed int64, sizeRaw uint16, typRaw uint8) bool {
		typ := int(typRaw)%5 + 1
		size := int(sizeRaw)%4096 + 1
		payload := make([]byte, size)
		s := uint32(seed)
		for i := range payload {
			s = s*1664525 + 1013904223
			payload[i] = byte(s >> 24)
		}
		got := make([]byte, size)

		c, err := cluster.New(cluster.Spec{CellNodes: 2, XeonNodes: 1})
		if err != nil {
			return false
		}
		a := NewApp(c, Options{})
		var ch *Channel
		write := func(w func(string, ...any)) { w("%*b", size, payload) }
		read := func(r func(string, ...any)) { r("%*b", size, got) }

		speWriter := &SPEProgram{Name: "w", Body: func(ctx *SPECtx) {
			write(func(f string, as ...any) { ctx.Write(ch, f, as...) })
		}}
		speReader := &SPEProgram{Name: "r", Body: func(ctx *SPECtx) {
			read(func(f string, as ...any) { ctx.Read(ch, f, as...) })
		}}

		var runErr error
		switch typ {
		case 1:
			rd := a.CreateProcessOn(2, "rd", func(ctx *Ctx, _ int, _ any) {
				read(func(f string, as ...any) { ctx.Read(ch, f, as...) })
			}, 0, nil)
			ch = a.CreateChannel(a.Main(), rd)
			runErr = a.Run(func(ctx *Ctx) {
				write(func(f string, as ...any) { ctx.Write(ch, f, as...) })
			})
		case 2:
			spe := a.CreateSPE(speReader, a.Main(), 0)
			ch = a.CreateChannel(a.Main(), spe)
			runErr = a.Run(func(ctx *Ctx) {
				ctx.RunSPE(spe, 0, nil)
				write(func(f string, as ...any) { ctx.Write(ch, f, as...) })
			})
		case 3:
			spe := a.CreateSPE(speWriter, a.Main(), 0)
			rd := a.CreateProcessOn(2, "rd", func(ctx *Ctx, _ int, _ any) {
				read(func(f string, as ...any) { ctx.Read(ch, f, as...) })
			}, 0, nil)
			_ = rd
			ch = a.CreateChannel(spe, rd)
			runErr = a.Run(func(ctx *Ctx) {
				ctx.RunSPE(spe, 0, nil)
			})
		case 4:
			sw := a.CreateSPE(speWriter, a.Main(), 0)
			sr := a.CreateSPE(speReader, a.Main(), 1)
			ch = a.CreateChannel(sw, sr)
			runErr = a.Run(func(ctx *Ctx) {
				ctx.RunSPE(sw, 0, nil)
				ctx.RunSPE(sr, 1, nil)
			})
		case 5:
			parent := a.CreateProcessOn(1, "par", func(ctx *Ctx, _ int, arg any) {
				ctx.RunSPE(arg.(*Process), 0, nil)
			}, 0, nil)
			sw := a.CreateSPE(speWriter, a.Main(), 0)
			sr := a.CreateSPE(speReader, parent, 0)
			parent.arg = sr
			ch = a.CreateChannel(sw, sr)
			runErr = a.Run(func(ctx *Ctx) {
				ctx.RunSPE(sw, 0, nil)
			})
		}
		if runErr != nil {
			t.Logf("type %d size %d: %v", typ, size, runErr)
			return false
		}
		for i := range payload {
			if got[i] != payload[i] {
				t.Logf("type %d size %d: corrupt at %d", typ, size, i)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40}
	if testing.Short() {
		cfg.MaxCount = 10
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestAccessors(t *testing.T) {
	c := newTestCluster(t)
	a := NewApp(c, Options{})
	if a.Main().ID() != 0 || a.Main().Name() != "PI_MAIN" || a.Main().IsSPE() {
		t.Fatal("PI_MAIN accessors wrong")
	}
	if r, ok := a.Main().Rank(); !ok || r != 0 {
		t.Fatal("PI_MAIN rank wrong")
	}
	prog := &SPEProgram{Name: "s", Body: func(*SPECtx) {}}
	spe := a.CreateSPE(prog, a.Main(), 3)
	if _, ok := spe.Rank(); ok {
		t.Fatal("SPE process must not have an MPI rank")
	}
	if spe.Parent() != a.Main() || spe.Kind() != KindSPE || spe.NodeID() != 0 {
		t.Fatal("SPE accessors wrong")
	}
	ch := a.CreateChannel(a.Main(), spe)
	if ch.ID() != 0 || ch.Type() != Type2 {
		t.Fatal("channel accessors wrong")
	}
	want := fmt.Sprintf("channel 0 (type2: %s -> %s)", a.Main(), spe)
	if ch.String() != want {
		t.Fatalf("channel String = %q, want %q", ch.String(), want)
	}
	b := a.CreateBundle(BundleBroadcast, []*Channel{a.CreateChannel(a.Main(), a.CreateProcessOn(1, "x", func(*Ctx, int, any) {}, 0, nil))})
	if b.ID() != 0 || b.Kind() != BundleBroadcast || b.Common() != a.Main() || len(b.Channels()) != 1 {
		t.Fatal("bundle accessors wrong")
	}
	if BundleBroadcast.String() != "broadcast" || BundleGather.String() != "gather" || BundleSelect.String() != "select" {
		t.Fatal("bundle kind strings wrong")
	}
	// The app cannot Run with a defined-but-never-run regular process
	// reading nothing — just ensure Processes/Channels enumerate.
	if len(a.Processes()) != 3 || len(a.Channels()) != 2 {
		t.Fatalf("processes=%d channels=%d", len(a.Processes()), len(a.Channels()))
	}
}

func TestPlacementCallback(t *testing.T) {
	c := newTestCluster(t)
	calls := 0
	a := NewApp(c, Options{Placement: func(procID, nodes int) int {
		calls++
		if nodes != 3 {
			t.Fatalf("nodes = %d", nodes)
		}
		return 2 // everything on the xeon
	}})
	p := a.CreateProcess("w", func(*Ctx, int, any) {}, 0, nil)
	if p.NodeID() != 2 || a.Main().NodeID() != 2 {
		t.Fatal("placement callback not honored")
	}
	if calls != 2 {
		t.Fatalf("placement consulted %d times", calls)
	}
}

func TestLogfHook(t *testing.T) {
	c := newTestCluster(t)
	a := NewApp(c, Options{})
	var lines []string
	a.Logf = func(format string, args ...any) {
		lines = append(lines, fmt.Sprintf(format, args...))
	}
	err := a.Run(func(ctx *Ctx) {
		ctx.Log("hello %d", 42)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 1 || !strings.Contains(lines[0], "hello 42") || !strings.Contains(lines[0], "PI_MAIN") {
		t.Fatalf("lines = %v", lines)
	}
}
