package core

import (
	"testing"

	"cellpilot/internal/cluster"
	"cellpilot/internal/sim"
)

// contentionApp drives `pairs` simultaneous type-4 pingpongs on one
// dual-Cell blade, half the pairs in each Cell, and reports completion
// time. It is the A4 ablation workload.
func contentionApp(t *testing.T, perCell bool, pairs, rounds int) sim.Time {
	t.Helper()
	c, err := cluster.New(cluster.Spec{CellNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	a := NewApp(c, Options{CoPilotPerCell: perCell})
	ab := make([]*Channel, pairs)
	ba := make([]*Channel, pairs)
	mkInit := func(i int) *SPEProgram {
		return &SPEProgram{Name: "init", Body: func(ctx *SPECtx) {
			buf := make([]byte, 64)
			for r := 0; r < rounds; r++ {
				ctx.Write(ab[i], "%64b", buf)
				ctx.Read(ba[i], "%64b", buf)
			}
		}}
	}
	mkEcho := func(i int) *SPEProgram {
		return &SPEProgram{Name: "echo", Body: func(ctx *SPECtx) {
			buf := make([]byte, 64)
			for r := 0; r < rounds; r++ {
				ctx.Read(ab[i], "%64b", buf)
				ctx.Write(ba[i], "%64b", buf)
			}
		}}
	}
	var spes []*Process
	for i := 0; i < pairs; i++ {
		// Pair i lives entirely in cell i%2: slots split 0..7 / 8..15.
		base := (i % 2) * 8
		slot := base + (i/2)*2
		w := a.CreateSPE(mkInit(i), a.Main(), slot)
		r := a.CreateSPE(mkEcho(i), a.Main(), slot+1)
		ab[i] = a.CreateChannel(w, r)
		ba[i] = a.CreateChannel(r, w)
		spes = append(spes, w, r)
	}
	err = a.Run(func(ctx *Ctx) {
		for i, s := range spes {
			ctx.RunSPE(s, i, nil)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return c.K.Now()
}

func TestCoPilotPerCellCorrectAndFaster(t *testing.T) {
	// Same workload, both designs must be correct; the per-cell design
	// must finish sooner under contention (two service loops in parallel).
	single := contentionApp(t, false, 6, 4)
	perCell := contentionApp(t, true, 6, 4)
	if perCell >= single {
		t.Fatalf("per-cell Co-Pilots (%s) not faster than single (%s) under contention", perCell, single)
	}
}

func TestCoPilotPerCellCrossCellType4(t *testing.T) {
	// A type-4 channel spanning the two Cells of one blade: with per-cell
	// Co-Pilots the reader's request must be forwarded to the writer's.
	c, err := cluster.New(cluster.Spec{CellNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	a := NewApp(c, Options{CoPilotPerCell: true})
	var ch *Channel
	var got []byte
	w := a.CreateSPE(&SPEProgram{Name: "w", Body: func(ctx *SPECtx) {
		buf := make([]byte, 256)
		for i := range buf {
			buf[i] = byte(i * 3)
		}
		ctx.Write(ch, "%256b", buf)
	}}, a.Main(), 0) // cell 0
	r := a.CreateSPE(&SPEProgram{Name: "r", Body: func(ctx *SPECtx) {
		got = make([]byte, 256)
		ctx.Read(ch, "%256b", got)
	}}, a.Main(), 8) // cell 1
	ch = a.CreateChannel(w, r)
	if ch.Type() != Type4 {
		t.Fatalf("cross-cell same-node channel is %s", ch.Type())
	}
	if err := a.Run(func(ctx *Ctx) {
		ctx.RunSPE(w, 0, nil)
		ctx.RunSPE(r, 8, nil)
	}); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != byte(i*3) {
			t.Fatalf("corrupt at %d", i)
		}
	}
	// Two Co-Pilot stat entries on the single blade.
	st := a.Stats()
	if len(st.CoPilots) != 2 {
		t.Fatalf("copilots = %d, want 2 (per cell)", len(st.CoPilots))
	}
	if st.CoPilots[0].Type4Copies+st.CoPilots[1].Type4Copies != 1 {
		t.Fatalf("type-4 copy not accounted: %+v", st.CoPilots)
	}
}
