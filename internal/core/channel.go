package core

import (
	"fmt"

	"cellpilot/internal/cellbe"
	"cellpilot/internal/sim"
)

// ChannelType is the paper's Table I taxonomy, derived from where the two
// endpoints live. It selects the transfer protocol and is transparent to
// the programmer.
type ChannelType int

// Channel types (paper Table I).
const (
	// Type1: PPE or non-Cell ↔ remote PPE or non-Cell — plain MPI.
	Type1 ChannelType = iota + 1
	// Type2: PPE ↔ local SPE — local MPI to Co-Pilot + mailbox + EA window.
	Type2
	// Type3: PPE or non-Cell ↔ remote SPE — MPI to the remote Co-Pilot.
	Type3
	// Type4: SPE ↔ local SPE — Co-Pilot memcpy between EA windows, no MPI.
	Type4
	// Type5: SPE ↔ remote SPE — two Co-Pilots relaying via MPI.
	Type5
)

// String implements fmt.Stringer.
func (t ChannelType) String() string { return fmt.Sprintf("type%d", int(t)) }

// resolveType classifies a channel by its endpoints' placement, exactly
// reproducing Table I. Two regular processes on the same node still use
// the MPI path (type 1); the paper's type 1/2 split is about SPE
// involvement, not node distance.
func resolveType(from, to *Process) ChannelType {
	fs, ts := from.IsSPE(), to.IsSPE()
	sameNode := from.nodeID == to.nodeID
	switch {
	case !fs && !ts:
		return Type1
	case fs && ts:
		if sameNode {
			return Type4
		}
		return Type5
	default: // exactly one SPE endpoint
		if sameNode {
			return Type2
		}
		return Type3
	}
}

// Channel is a unidirectional point-to-point message conduit bound to a
// process pair at configuration time. Only From may write and only To may
// read; Pilot enforces the configured architecture at run time.
type Channel struct {
	app  *App
	id   int
	name string
	From *Process
	To   *Process
	typ  ChannelType

	// fault, once set, poisons the channel: every subsequent operation on
	// it fails with a ChannelFault derived from this one (sticky; set by
	// App.failChannel when an endpoint or its Co-Pilot dies, or when a
	// hard-deadline operation dies mid-protocol).
	fault *ChannelFault

	// flow caches the channel's flow classification (key + hop lists),
	// computed lazily at first delivery (flow.go). Nil until then.
	flow *chanFlow
}

// Fault reports the poisoning fault, or nil while the channel is healthy.
func (c *Channel) Fault() *ChannelFault { return c.fault }

// ID reports the channel id.
func (c *Channel) ID() int { return c.id }

// Type reports the resolved channel type (Table I).
func (c *Channel) Type() ChannelType { return c.typ }

// tag is the MPI tag carrying this channel's payloads.
func (c *Channel) tag() int { return userTagBase + c.id }

// String implements fmt.Stringer.
func (c *Channel) String() string {
	return fmt.Sprintf("channel %d (%s: %s -> %s)", c.id, c.typ, c.From, c.To)
}

// userTagBase keeps channel tags clear of the MPI collectives' tag space.
const userTagBase = 1000

// BundleKind is the purpose a bundle is created for.
type BundleKind int

// Bundle kinds (Pilot V1.2 bundle operations).
const (
	// BundleBroadcast: the common endpoint writes once, every reader gets it.
	BundleBroadcast BundleKind = iota
	// BundleGather: every writer contributes, the common endpoint collects.
	BundleGather
	// BundleSelect: the common endpoint waits for any channel to have data.
	BundleSelect
)

// String implements fmt.Stringer.
func (k BundleKind) String() string {
	switch k {
	case BundleBroadcast:
		return "broadcast"
	case BundleGather:
		return "gather"
	case BundleSelect:
		return "select"
	case BundleScatter:
		return "scatter"
	case BundleReduce:
		return "reduce"
	default:
		return fmt.Sprintf("bundle(%d)", int(k))
	}
}

// Bundle is a set of channels with a common endpoint, created for one
// specific collective usage. As in the paper, bundles are an MPMD
// construct: only the common endpoint calls the bundle operation; the
// other ends use plain Read/Write on their member channel.
type Bundle struct {
	app    *App
	id     int
	name   string
	kind   BundleKind
	common *Process
	chans  []*Channel
}

// ID reports the bundle id.
func (b *Bundle) ID() int { return b.id }

// Kind reports the declared usage.
func (b *Bundle) Kind() BundleKind { return b.kind }

// Channels returns the member channels in creation order.
func (b *Bundle) Channels() []*Channel { return b.chans }

// Common returns the common endpoint process.
func (b *Bundle) Common() *Process { return b.common }

// wire header: every Pilot payload carries (format signature, payload
// size) so reader/writer mismatches abort with a diagnostic instead of
// corrupting data.
const hdrSize = 8

func putHeader(sig uint32, size int) []byte {
	var h [hdrSize]byte
	h[0] = byte(sig >> 24)
	h[1] = byte(sig >> 16)
	h[2] = byte(sig >> 8)
	h[3] = byte(sig)
	h[4] = byte(size >> 24)
	h[5] = byte(size >> 16)
	h[6] = byte(size >> 8)
	h[7] = byte(size)
	return h[:]
}

func parseHeader(h []byte) (sig uint32, size int) {
	sig = uint32(h[0])<<24 | uint32(h[1])<<16 | uint32(h[2])<<8 | uint32(h[3])
	size = int(uint32(h[4])<<24 | uint32(h[5])<<16 | uint32(h[6])<<8 | uint32(h[7]))
	return sig, size
}

// SPE request descriptors travel over the 32-bit mailboxes as four words:
// op|chan, local-store address, payload size, format signature.
type speOpcode uint32

const (
	opWrite speOpcode = 1
	opRead  speOpcode = 2
)

func reqWord0(op speOpcode, chanID int) uint32 {
	if chanID < 0 || chanID >= 1<<28 {
		panic(fmt.Sprintf("core: channel id %d does not fit a mailbox word", chanID))
	}
	return uint32(op)<<28 | uint32(chanID)
}

func parseWord0(w uint32) (speOpcode, int) {
	return speOpcode(w >> 28), int(w & (1<<28 - 1))
}

// speReq is a decoded SPE mailbox request held by a Co-Pilot.
type speReq struct {
	op     speOpcode
	ch     *Channel
	spe    *cellbe.SPE
	proc   *Process
	lsAddr uint32
	size   int
	sig    uint32

	// Observability bookkeeping (zero-valued when no sink is attached).
	xfer     int64    // correlating transfer id; 0 for unresolved reads
	postedAt sim.Time // when the SPE stub began posting the descriptor
	decodeAt sim.Time // when the Co-Pilot decoded it
	svcEnd   sim.Time // when decode/dispatch service finished

	// Chunk-stream state (transfer.go); nil outside the chunked path.
	stream  *streamSend
	rstream *streamRecv
}
