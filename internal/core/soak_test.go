package core

import (
	"fmt"
	"testing"

	"cellpilot/internal/cluster"
)

// TestPaperTestbedSoak runs a traffic soak on the full paper testbed
// (8 dual-Cell blades + 4 Xeons): every blade hosts a PPE process with
// four SPE children; SPEs exchange with a local partner (type 4), a
// remote partner (type 5) and their parent (type 2), while the PPEs ring
// messages across nodes (type 1) and the Xeons poll remote SPEs
// (type 3). Every payload is integrity-checked. This is the "cluster
// actually running a deployed application" test.
func TestPaperTestbedSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak in short mode")
	}
	c, err := cluster.New(cluster.PaperSpec())
	if err != nil {
		t.Fatal(err)
	}
	a := NewApp(c, Options{})
	const (
		blades  = 8
		spesPer = 4
		rounds  = 3
	)

	hosts := make([]*Process, blades)      // PPE process per blade (PI_MAIN is blade 0)
	spes := make([][]*Process, blades)     // SPE children
	toParent := make([][]*Channel, blades) // type 2 up
	fromParent := make([][]*Channel, blades)
	pair4 := make([][]*Channel, blades)  // type 4: spe[2i] -> spe[2i+1]
	cross5 := make([]*Channel, blades)   // type 5: blade b spe0 -> blade (b+1)%8 spe1
	ringPPE := make([]*Channel, blades)  // type 1 ring over hosts
	xeonPoll := make([]*Channel, blades) // type 3: blade b spe3 -> a xeon process

	fill := func(buf []int32, seed int) {
		for i := range buf {
			buf[i] = int32(seed*1000 + i)
		}
	}
	check := func(ctx interface{ Abort(string, ...any) }, buf []int32, seed int) {
		for i := range buf {
			if buf[i] != int32(seed*1000+i) {
				ctx.Abort("payload corrupted: seed %d index %d", seed, i)
			}
		}
	}

	speBody := func(ctx *SPECtx) {
		b := ctx.Arg() / 16 // blade
		s := ctx.Arg() % 16 // local spe slot (0..3)
		buf := make([]int32, 64)
		for r := 0; r < rounds; r++ {
			// Type 2: parent sends work, SPE echoes transformed.
			ctx.Read(fromParent[b][s], "%64d", buf)
			ctx.Write(toParent[b][s], "%64d", buf)
			switch s {
			case 0:
				fill(buf, b)
				ctx.Write(pair4[b][0], "%64d", buf) // type 4 to s=1
				fill(buf, 100+b)
				ctx.Write(cross5[b], "%64d", buf) // type 5 to next blade
			case 1:
				ctx.Read(pair4[b][0], "%64d", buf)
				check(ctx, buf, b)
				prev := (b + blades - 1) % blades
				ctx.Read(cross5[prev], "%64d", buf)
				check(ctx, buf, 100+prev)
			case 3:
				fill(buf, 200+b)
				ctx.Write(xeonPoll[b], "%64d", buf) // type 3 to a xeon
			}
		}
	}
	prog := &SPEProgram{Name: "soak", Body: speBody}

	hostBody := func(ctx *Ctx, index int, arg any) {
		b := index
		for _, sp := range spes[b] {
			ctx.RunSPE(sp, sp.index, nil)
		}
		buf := make([]int32, 64)
		for r := 0; r < rounds; r++ {
			for s := 0; s < spesPer; s++ {
				fill(buf, 300+b*10+s)
				ctx.Write(fromParent[b][s], "%64d", buf)
			}
			for s := 0; s < spesPer; s++ {
				ctx.Read(toParent[b][s], "%64d", buf)
				check(ctx, buf, 300+b*10+s)
			}
			// Type 1 ring: send to the next blade's host, read from prev.
			fill(buf, 400+b)
			ctx.Write(ringPPE[b], "%64d", buf)
			prev := (b + blades - 1) % blades
			ctx.Read(ringPPE[prev], "%64d", buf)
			check(ctx, buf, 400+prev)
		}
	}

	// Build processes.
	for b := 0; b < blades; b++ {
		if b == 0 {
			hosts[b] = a.Main()
		} else {
			hosts[b] = a.CreateProcessOn(b, fmt.Sprintf("host%d", b), hostBody, b, nil)
		}
	}
	xeons := make([]*Process, 2)
	xeonBody := func(ctx *Ctx, index int, _ any) {
		buf := make([]int32, 64)
		for r := 0; r < rounds; r++ {
			for b := index; b < blades; b += 2 {
				ctx.Read(xeonPoll[b], "%64d", buf)
				check(ctx, buf, 200+b)
			}
		}
	}
	for i := range xeons {
		xeons[i] = a.CreateProcessOn(8+i, fmt.Sprintf("xeon%d", i), xeonBody, i, nil)
	}
	for b := 0; b < blades; b++ {
		spes[b] = make([]*Process, spesPer)
		toParent[b] = make([]*Channel, spesPer)
		fromParent[b] = make([]*Channel, spesPer)
		for s := 0; s < spesPer; s++ {
			spes[b][s] = a.CreateSPE(prog, hosts[b], b*16+s)
			toParent[b][s] = a.CreateChannel(spes[b][s], hosts[b])
			fromParent[b][s] = a.CreateChannel(hosts[b], spes[b][s])
		}
		pair4[b] = []*Channel{a.CreateChannel(spes[b][0], spes[b][1])}
	}
	for b := 0; b < blades; b++ {
		next := (b + 1) % blades
		cross5[b] = a.CreateChannel(spes[b][0], spes[next][1])
		ringPPE[b] = a.CreateChannel(hosts[b], hosts[next])
		xeonPoll[b] = a.CreateChannel(spes[b][3], xeons[b%2])
	}

	// Sanity: the channel mix covers all five types.
	types := map[ChannelType]bool{}
	for _, ch := range a.Channels() {
		types[ch.Type()] = true
	}
	for typ := Type1; typ <= Type5; typ++ {
		if !types[typ] {
			t.Fatalf("soak does not exercise %s", typ)
		}
	}

	if err := a.Run(func(ctx *Ctx) { hostBody(ctx, 0, nil) }); err != nil {
		t.Fatal(err)
	}
	msgs, bytes := c.Net.Stats()
	if msgs == 0 || bytes == 0 {
		t.Fatal("soak moved nothing across the network")
	}
	t.Logf("soak: %d network messages, %d bytes, finished at %s", msgs, bytes, c.K.Now())
}
