package core

import (
	"cellpilot/internal/fmtmsg"
	"cellpilot/internal/mpi"
	"cellpilot/internal/sdk"
	"cellpilot/internal/sim"
	"cellpilot/internal/trace"
)

// copilot is the Co-Pilot: the second MPI process CellPilot creates on
// each Cell node (paper Section IV.B). It services the four SPE-connected
// channel types: SPE stubs post read/write requests through their
// mailboxes; the Co-Pilot translates the request's local-store address
// into a main-memory effective address and then moves the payload with
// MPI (types 2, 3, 5) or a plain memcpy (type 4), signalling completion
// back through the SPE's inbound mailbox. It is a separate process, not a
// thread, so it works under MPI_THREAD_SINGLE — the constraint the paper
// calls out explicitly.
type copilot struct {
	app    *App
	key    copilotKey
	nodeID int
	rank   *mpi.Rank
	q      *sim.Queue[struct{}]
	proc   *sim.Proc
	dead   bool

	bindings   []*speBinding
	pendWrites reqQueue
	pendReads  reqQueue
	// scanW/scanR rotate the pending-scan start when the chunk engine is on,
	// so concurrent streams interleave chunk-by-chunk instead of the first
	// stream monopolizing the loop. With chunking off the scan always starts
	// at 0, preserving the pre-engine service order exactly.
	scanW, scanR int
	// streamAdvanced is set by streamWrite/streamRead when they moved one
	// chunk but the stream is not finished: the request stays pending, yet
	// the step counts as work done.
	streamAdvanced bool
	stats          CoPilotStats
	// busy is the cumulative virtual time the service loop spent doing work
	// (stepping requests), as opposed to parked on the event queue. Divided
	// by elapsed virtual time it is the Co-Pilot's utilization.
	busy sim.Time
}

type speBinding struct {
	proc *Process
	sctx *sdk.Context
	// lastSeq is the sequence number of the most recently accepted
	// descriptor (mailbox-hardened runs); a repost of the same sequence is
	// a duplicate caused by a slow ACK and is re-ACKed but not dispatched.
	lastSeq int
}

const (
	speStatusOK uint32 = 0
)

func newCopilot(a *App, key copilotKey, rank *mpi.Rank) *copilot {
	cp := &copilot{
		app:    a,
		key:    key,
		nodeID: key.node,
		rank:   rank,
		q:      sim.NewQueue[struct{}](a.K, rank.Label()+"/events", 1<<14),
	}
	// Message arrivals for this rank nudge the event loop, so the Co-Pilot
	// never busy-waits yet still models polling latency (see loop).
	rank.OnArrival(func() { cp.q.TryPut(struct{}{}) })
	return cp
}

// nudge wakes the event loop; safe from any context.
func (cp *copilot) nudge() { cp.q.TryPut(struct{}{}) }

// register adds a newly launched SPE process to the polling set. Called by
// RunSPE before the SPE can issue its first request.
func (cp *copilot) register(sp *Process, sctx *sdk.Context) {
	cp.bindings = append(cp.bindings, &speBinding{proc: sp, sctx: sctx, lastSeq: -1})
	cp.nudge()
}

// loop is the Co-Pilot service loop. It blocks on the event queue; each
// wakeup is quantized to the next mailbox polling tick (modelling the
// paper's polling design and its latency contribution), then processes
// requests to a fixpoint.
func (cp *copilot) loop(p *sim.Proc) {
	for {
		if cp.app.allDone.Fired() {
			return
		}
		cp.q.Get(p)
		if cp.app.allDone.Fired() {
			return
		}
		for {
			if poll := cp.app.par.CoPilotPoll; poll > 0 {
				tick := (p.Now() + poll - 1) / poll * poll
				p.AdvanceTo(tick)
			}
			t0 := p.Now()
			advanced := cp.step(p)
			cp.busy += p.Now() - t0
			if !advanced {
				break
			}
		}
	}
}

// step performs at most one unit of Co-Pilot work — decoding one new
// mailbox request (progressing it immediately when possible) or
// progressing one pending request — and reports whether anything
// advanced. One unit per polling tick models the serial service loop the
// paper describes ("Co-Pilot polls for requests until the second SPE's
// request arrives") and is what makes SPE↔SPE channels pay two full
// Co-Pilot legs, as Table II shows.
func (cp *copilot) step(p *sim.Proc) bool {
	hardened := cp.app.hardened()
	// Hardened runs: shed queued requests whose process died or whose
	// channel was poisoned, so a dead peer cannot strand its partner.
	if hardened && cp.sweepFaults(p) {
		return true
	}
	// First progress pending requests, oldest first (deterministic). With
	// the chunk engine on, the scan start rotates past the last serviced
	// request so concurrent streams share the loop fairly.
	if done, i := cp.scanPending(p, &cp.pendWrites, cp.scanW, cp.tryWrite); done {
		cp.scanW = i
		return true
	}
	if done, i := cp.scanPending(p, &cp.pendReads, cp.scanR, cp.tryRead); done {
		cp.scanR = i
		return true
	}
	// Then decode one new request from the SPE mailboxes.
	mh := cp.app.mailboxHardened()
	for _, b := range cp.bindings {
		if hardened && b.proc.dead {
			continue
		}
		decodeStart := p.Now()
		w0, ok := b.sctx.TryReadOutMbox(p)
		if !ok {
			continue
		}
		var op speOpcode
		var chanID int
		var seq uint32
		if mh {
			op, seq, chanID = parseWord0Seq(w0)
		} else {
			op, chanID = parseWord0(w0)
		}
		var lsAddr, size, sig uint32
		if hardened {
			// A fault (or a mid-descriptor death) can garble or truncate
			// the four-word descriptor, so the remaining words are read
			// under a timeout and the whole descriptor is validated before
			// dispatch. Garbled descriptors are drained and NACKed
			// (mailbox-hardened) or dropped; the stub reposts.
			var words [3]uint32
			bad := false
			for i := range words {
				v, ok := b.sctx.ReadOutMboxTimeout(p, cp.app.descTimeout())
				if !ok {
					bad = true
					break
				}
				words[i] = v
			}
			if !bad && op != opWrite && op != opRead {
				bad = true
			}
			if !bad && (chanID < 0 || chanID >= len(cp.app.chans)) {
				bad = true
			}
			if bad {
				cp.dropDesc(p, b, seq)
				return true
			}
			lsAddr, size, sig = words[0], words[1], words[2]
			if mh {
				if b.lastSeq == int(seq) {
					// Duplicate repost after a slow ACK: re-ACK, discard.
					cp.ackDesc(p, b, speAck(seq))
					return true
				}
				b.lastSeq = int(seq)
				cp.ackDesc(p, b, speAck(seq))
			}
		} else {
			lsAddr = b.sctx.ReadOutMbox(p)
			size = b.sctx.ReadOutMbox(p)
			sig = b.sctx.ReadOutMbox(p)
			if chanID < 0 || chanID >= len(cp.app.chans) {
				p.Fatalf("%v", usageError("runtime", "co-pilot", "SPE %s requested unknown channel %d", b.proc, chanID))
			}
		}
		post := cp.app.speTakePost(b.proc)
		req := &speReq{
			op: op, ch: cp.app.chans[chanID],
			spe: b.sctx.SPE, proc: b.proc,
			lsAddr: lsAddr, size: int(size), sig: sig,
			xfer: post.xfer, postedAt: post.postedAt, decodeAt: decodeStart,
		}
		p.Advance(cp.app.par.CoPilotDispatch)
		req.svcEnd = p.Now()
		cp.app.meterCopilotReq(cp.rank.Label(), decodeStart-post.postedAt,
			cp.pendWrites.size()+cp.pendReads.size())
		if op == opWrite {
			cp.stats.WriteReqs++
		} else {
			cp.stats.ReadReqs++
		}
		// Under the per-Cell ablation, a type-4 channel whose endpoints
		// live under different Co-Pilots is owned by the writer's: forward
		// the reader's request there (any PPE can signal any local SPE's
		// mailbox, so the owner can still notify the reader directly).
		if op == opRead && req.ch.typ == Type4 {
			if owner := cp.app.copilotFor(req.ch.From); owner != cp {
				owner.pendReads.push(req)
				owner.nudge()
				return true
			}
		}
		switch {
		case op == opWrite && !cp.tryWrite(p, req):
			cp.streamAdvanced = false
			cp.pendWrites.push(req)
		case op == opRead && !cp.tryRead(p, req):
			cp.streamAdvanced = false
			cp.pendReads.push(req)
		}
		return true
	}
	return false
}

// scanPending walks one pending queue looking for a request that can make
// progress. It returns done=true when a request completed (it is removed)
// or when a stream moved one chunk (it stays queued), along with the
// logical index the next scan should start from. With the chunk engine off
// the start is pinned to 0, reproducing the pre-engine oldest-first order.
func (cp *copilot) scanPending(p *sim.Proc, q *reqQueue, scan int, try func(*sim.Proc, *speReq) bool) (bool, int) {
	n := q.size()
	if n == 0 {
		return false, 0
	}
	start := 0
	if cp.app.chunkingOn() {
		start = scan % n
	}
	for k := 0; k < n; k++ {
		i := (start + k) % n
		req := q.at(i)
		if try(p, req) {
			q.removeAt(i)
			return true, i
		}
		if cp.streamAdvanced {
			cp.streamAdvanced = false
			return true, i + 1
		}
	}
	return false, start
}

// sweepFaults drops queued requests whose SPE process has died and
// fault-notifies those whose channel was poisoned (a dead peer, a timed
// out partner). Reports whether anything was shed.
func (cp *copilot) sweepFaults(p *sim.Proc) bool {
	shed := false
	cp.pendWrites.filter(func(req *speReq) bool {
		if cp.shedFaulted(p, req) {
			shed = true
			return false
		}
		return true
	})
	cp.pendReads.filter(func(req *speReq) bool {
		if cp.shedFaulted(p, req) {
			shed = true
			return false
		}
		return true
	})
	return shed
}

// shedFaulted reports whether req must be dropped from the pending
// queues, notifying its (living) SPE with a fault status when the
// channel is poisoned.
func (cp *copilot) shedFaulted(p *sim.Proc, req *speReq) bool {
	inj := cp.app.opts.Faults
	if req.proc.dead {
		if inj != nil {
			inj.Logf(p.Now(), "%s drops queued request from dead %s on %s", cp.rank.Label(), req.proc, req.ch)
		}
		return true
	}
	if req.ch.fault != nil {
		if inj != nil {
			inj.Logf(p.Now(), "%s faults queued request from %s on poisoned %s", cp.rank.Label(), req.proc, req.ch)
		}
		cp.notify(p, req, speStatusFault)
		return true
	}
	return false
}

// dropDesc discards a garbled descriptor: the mailbox is drained and, in
// mailbox-hardened runs, the stub is NACKed so it reposts immediately
// (otherwise it reposts on ACK timeout, or the fault surfaces as an
// operation timeout).
func (cp *copilot) dropDesc(p *sim.Proc, b *speBinding, seq uint32) {
	for {
		if _, ok := b.sctx.TryReadOutMbox(p); !ok {
			break
		}
	}
	inj := cp.app.opts.Faults
	if cp.app.mailboxHardened() {
		inj.Counts.MailboxNacks++
		inj.Logf(p.Now(), "%s NACKs garbled descriptor seq=%d from %s", cp.rank.Label(), seq, b.proc)
		cp.ackDesc(p, b, speNack(seq))
	} else if inj != nil {
		inj.Logf(p.Now(), "%s drops garbled descriptor from %s", cp.rank.Label(), b.proc)
	}
}

// ackDesc writes an ACK/NACK word to a stub's inbound mailbox. The write
// is deadline-bounded so a stub that died or gave up mid-protocol cannot
// wedge the Co-Pilot; a dropped ACK is recovered by the stub's repost.
func (cp *copilot) ackDesc(p *sim.Proc, b *speBinding, word uint32) {
	if b.proc.dead {
		return
	}
	if err := b.sctx.SPE.InMbox.WriteCtl(p, word, p.Now()+cp.app.ackTimeout(), nil); err != nil {
		cp.app.opts.Faults.Logf(p.Now(), "%s drops mailbox ack for %s (%v)", cp.rank.Label(), b.proc, err)
	}
}

// lsWindow resolves a request's buffer through the node's EA map — the
// spe_ls_area_get trick at the heart of CellPilot's zero-copy transfers.
func (cp *copilot) lsWindow(p *sim.Proc, req *speReq) []byte {
	node := cp.app.Clu.Nodes[cp.nodeID]
	ea := req.spe.LSBase() + int64(req.lsAddr)
	w, err := node.EAWindow(ea, req.size)
	if err != nil {
		p.Fatalf("%v", usageError("runtime", "co-pilot", "bad SPE buffer from %s: %v", req.proc, err))
	}
	return w
}

// notify completes a request toward its SPE via the inbound mailbox. In
// hardened runs, completions for dead processes are discarded, OK
// statuses on poisoned channels are suppressed (the stub's late words
// must not be mistaken for a later operation's status), and the write is
// deadline-bounded so a vanished stub cannot wedge the Co-Pilot.
func (cp *copilot) notify(p *sim.Proc, req *speReq, status uint32) {
	if cp.app.hardened() {
		if req.proc.dead {
			return
		}
		if req.ch != nil && req.ch.fault != nil && status == speStatusOK {
			cp.app.opts.Faults.Logf(p.Now(), "%s suppresses completion for %s on poisoned %s", cp.rank.Label(), req.proc, req.ch)
			return
		}
		if err := req.spe.InMbox.WriteCtl(p, status, p.Now()+cp.app.ackTimeout(), nil); err != nil {
			cp.app.opts.Faults.Logf(p.Now(), "%s drops completion for %s (%v)", cp.rank.Label(), req.proc, err)
		}
		return
	}
	req.spe.InMbox.Write(p, status)
}

// tryWrite progresses a pending SPE write request; false means it must
// wait (only type 4, for its matching reader).
func (cp *copilot) tryWrite(p *sim.Proc, req *speReq) bool {
	ch := req.ch
	switch ch.typ {
	case Type4:
		// Both SPE processes send their buffer addresses; whichever arrives
		// first is stored until the other shows up, then the Co-Pilot
		// transfers the data with memcpy and notifies both mailboxes.
		var rd *speReq
		for i := 0; i < cp.pendReads.size(); i++ {
			if r := cp.pendReads.at(i); r.ch == ch {
				rd = r
				cp.pendReads.removeAt(i)
				break
			}
		}
		if rd == nil {
			return false
		}
		cp.validatePair(p, req, rd)
		rd.xfer = req.xfer // the reader's span is the writer's transfer
		src := cp.lsWindow(p, req)
		dst := cp.lsWindow(p, rd)
		copyStart := p.Now()
		if cp.app.opts.Transfer.ZeroCopyType4 {
			// B3 fast path: the Co-Pilot programs an LS→LS DMA over the EIB
			// instead of dragging the payload through the mapped-LS memcpy —
			// it pays command issue plus EIB time, not two uncached copies.
			p.Advance(cp.app.par.DMASetup + cp.app.par.EIBTime(req.size))
		} else {
			p.Advance(cp.app.par.MemcpyTime(req.size))
		}
		copy(dst, src)
		cp.app.spanPhase(req.xfer, trace.PhaseCopy, cp.rank.Label(), ch, req.size, copyStart, p.Now())
		cp.stats.Type4Copies++
		cp.stats.Type4Bytes += int64(req.size)
		cp.obsComplete(req)
		cp.notify(p, req, speStatusOK)
		cp.obsComplete(rd)
		cp.notify(p, rd, speStatusOK)
		return true

	case Type2, Type3:
		if cp.app.chunked(ch, req.size) { // type 3 only: type 2 is intra-node
			return cp.streamWrite(p, req, ch.To.rank)
		}
		// Peer is a regular process: relay the LS buffer to it over MPI,
		// with the validation header prepended. The relay is nonblocking
		// (the payload is snapshotted): a blocking send here could form a
		// circular wait with a PPE that is itself rendezvous-sending
		// toward this Co-Pilot.
		hdr := putHeader(req.sig, req.size)
		win := cp.lsWindow(p, req)
		relayStart := p.Now()
		if cp.app.opts.CoPilotDirectLocal && ch.typ == Type2 {
			// A1 ablation: hand the payload to the local reader directly —
			// same per-byte copy as the MPI path, none of its overheads.
			p.Advance(cp.app.par.ShmCopyTime(req.size))
			buf := append(append([]byte(nil), hdr...), win...)
			cp.app.directBox(ch).Put(p, dbMsg{data: buf, xfer: req.xfer})
			cp.app.spanPhase(req.xfer, trace.PhaseCopy, cp.rank.Label(), ch, req.size, relayStart, p.Now())
		} else {
			cp.rank.TagNextXfer(req.xfer)
			cp.rank.IsendVec(p, ch.To.rank, ch.tag(), hdr, win)
			cp.app.spanPhase(req.xfer, trace.PhaseRelay, cp.rank.Label(), ch, req.size, relayStart, p.Now())
		}
		cp.stats.RelayedBytes += int64(req.size)
		cp.obsComplete(req)
		cp.notify(p, req, speStatusOK)
		return true

	case Type5:
		if cp.app.chunked(ch, req.size) {
			return cp.streamWrite(p, req, cp.app.copilotRankFor(ch.To))
		}
		// Peer is a remote SPE: relay to its Co-Pilot, also nonblocking.
		hdr := putHeader(req.sig, req.size)
		win := cp.lsWindow(p, req)
		relayStart := p.Now()
		cp.rank.TagNextXfer(req.xfer)
		cp.rank.IsendVec(p, cp.app.copilotRankFor(ch.To), ch.tag(), hdr, win)
		cp.app.spanPhase(req.xfer, trace.PhaseRelay, cp.rank.Label(), ch, req.size, relayStart, p.Now())
		cp.stats.RelayedBytes += int64(req.size)
		cp.obsComplete(req)
		cp.notify(p, req, speStatusOK)
		return true

	default:
		p.Fatalf("%v", usageError("runtime", "co-pilot", "write request on %s, which has no SPE endpoint", ch))
		return false
	}
}

// tryRead progresses a pending SPE read request; false means the payload
// has not arrived yet.
func (cp *copilot) tryRead(p *sim.Proc, req *speReq) bool {
	ch := req.ch
	switch ch.typ {
	case Type4:
		// Driven from the matching write request in tryWrite.
		return false

	case Type2, Type3, Type5:
		src := ch.From.rank
		if ch.From.IsSPE() { // type 5: payload comes from the writer's Co-Pilot
			src = cp.app.copilotRankFor(ch.From)
		}
		if cp.app.chunked(ch, req.size) {
			return cp.streamRead(p, req, src)
		}
		if cp.app.opts.CoPilotDirectLocal && ch.typ == Type2 && !ch.From.IsSPE() {
			// A1 ablation: the local writer handed the payload off directly.
			msg, ok := cp.app.directBox(ch).TryGet()
			if !ok {
				return false
			}
			req.xfer = msg.xfer
			sig, size := parseHeader(msg.data)
			cp.validateIncoming(p, req, sig, size)
			copyStart := p.Now()
			p.Advance(cp.app.par.ShmCopyTime(req.size))
			copy(cp.lsWindow(p, req), msg.data[hdrSize:])
			cp.app.spanPhase(req.xfer, trace.PhaseCopy, cp.rank.Label(), ch, req.size, copyStart, p.Now())
			cp.obsComplete(req)
			cp.notify(p, req, speStatusOK)
			return true
		}
		st, ok := cp.rank.Iprobe(p, src, ch.tag())
		if !ok {
			return false
		}
		if st.Count != hdrSize+req.size {
			p.Fatalf("%v", usageError("runtime", "PI_Read", "size mismatch on %s: writer sent %d bytes, SPE reader %s expects %d",
				ch, st.Count-hdrSize, req.proc, req.size))
		}
		req.xfer = st.Xfer
		var hdr [hdrSize]byte
		win := cp.lsWindow(p, req)
		recvStart := p.Now()
		cp.rank.RecvIntoVec(p, src, ch.tag(), hdr[:], win)
		cp.app.spanPhase(req.xfer, trace.PhaseRelay, cp.rank.Label(), ch, req.size, recvStart, p.Now())
		sig, size := parseHeader(hdr[:])
		cp.validateIncoming(p, req, sig, size)
		cp.obsComplete(req)
		cp.notify(p, req, speStatusOK)
		return true

	default:
		p.Fatalf("%v", usageError("runtime", "co-pilot", "read request on %s, which has no SPE endpoint", ch))
		return false
	}
}

// streamWrite progresses a writer-side chunk stream: announce once with a
// header, then inject at most one chunk per call (so concurrent streams
// interleave), each chunk gated on its own LS→EA DMA and on the pipeline
// window. The SPE is notified only after the last chunk is on the wire.
func (cp *copilot) streamWrite(p *sim.Proc, req *speReq, dst int) bool {
	app := cp.app
	par := app.par
	chunk := app.opts.Transfer.ChunkSize
	if req.stream == nil {
		st := &streamSend{dst: dst, nchunks: chunkCount(req.size, chunk), startAt: p.Now()}
		req.stream = st
		cp.rank.TagNextXfer(req.xfer)
		cp.rank.Send(p, dst, req.ch.streamTag(), streamHeader(req.sig, req.size, chunk, st.nchunks))
		// Issue the whole stream's LS→EA fetches as one DMA list: the MFC
		// works through the elements back to back while the Co-Pilot injects
		// chunks, so fetch k+1 overlaps chunk k's stack serialization. The
		// payload cannot change underneath it — the writer stub is parked
		// until the stream completes.
		res := app.dmaRes(req.spe)
		st.dmaAt = make([]sim.Time, st.nchunks)
		for k := range st.dmaAt {
			n := chunkLen(req.size, chunk, k)
			d := par.ChunkDMATime(n)
			st.dmaAt[k] = res.ReserveFor(d)
			app.spanChunk(req.xfer, trace.PhaseChunkDMA, req.proc.String(), req.ch, n, st.dmaAt[k]-d, st.dmaAt[k], k)
		}
	}
	st := req.stream
	target := st.dmaAt[st.next]
	if depth := app.pipeDepth(); st.next >= depth {
		if a := st.arrivals[st.next-depth]; a > target {
			target = a // pipeline window full: wait for the oldest in-flight chunk
		}
	}
	if now := p.Now(); now < target {
		app.K.After(target-now, cp.nudge)
		return false
	}
	off := st.next * chunk
	n := chunkLen(req.size, chunk, st.next)
	win := cp.lsWindow(p, req)
	fb := fmtmsg.GetWireBuf(chunkIdxSize + n)
	frame := appendChunkFrame(*fb, st.next, win[off:off+n])
	injStart := p.Now()
	st.arrivals = append(st.arrivals, cp.rank.SendChunk(p, st.dst, req.ch.streamTag(), frame))
	*fb = frame
	fmtmsg.PutWireBuf(fb)
	app.spanChunk(req.xfer, trace.PhaseChunkFrame, cp.rank.Label(), req.ch, n, injStart, p.Now(), st.next)
	inflight := 0
	for _, a := range st.arrivals {
		if a > p.Now() {
			inflight++
		}
	}
	app.meterStreamInflight(streamSendDir, inflight)
	st.next++
	if st.next < st.nchunks {
		cp.streamAdvanced = true
		cp.nudge()
		return false
	}
	app.spanPhase(req.xfer, trace.PhaseChunkRelay, cp.rank.Label(), req.ch, req.size, st.startAt, p.Now())
	cp.stats.RelayedBytes += int64(req.size)
	cp.obsComplete(req)
	cp.notify(p, req, speStatusOK)
	return true
}

// streamRead progresses a reader-side chunk stream: receive the header,
// then drain at most one chunk per call straight into the SPE's LS window,
// booking each chunk's EA→LS DMA on the SPE's MFC. Completion is signalled
// only when every chunk has arrived AND the last DMA has landed — a stream
// cut short by a fault never produces an OK, so a torn payload is never
// delivered (the stalled reader surfaces as a timeout/poisoned channel).
func (cp *copilot) streamRead(p *sim.Proc, req *speReq, src int) bool {
	app := cp.app
	par := app.par
	tag := req.ch.streamTag()
	if req.rstream == nil {
		st, ok := cp.rank.Iprobe(p, src, tag)
		if !ok {
			return false
		}
		if st.Count != streamHdrSize {
			p.Fatalf("%v", usageError("runtime", "co-pilot", "malformed stream header on %s (%d bytes)", req.ch, st.Count))
		}
		data, hst := cp.rank.Recv(p, src, tag)
		sig, size, chunk, nchunks := parseStreamHeader(data)
		cp.validateIncoming(p, req, sig, size)
		req.xfer = hst.Xfer
		req.rstream = &streamRecv{src: src, chunk: chunk, nchunks: nchunks, startAt: p.Now()}
		app.meterStreamInflight(streamRecvDir, nchunks)
		cp.streamAdvanced = true
		return false
	}
	rs := req.rstream
	if rs.got < rs.nchunks {
		if _, ok := cp.rank.Iprobe(p, src, tag); !ok {
			return false
		}
		data, _ := cp.rank.Recv(p, src, tag)
		idx, payload, ok := parseChunkFrame(data)
		if !ok || idx != rs.got {
			p.Fatalf("%v", usageError("runtime", "co-pilot", "stream chunk %d arrived out of order on %s (expected %d)", idx, req.ch, rs.got))
		}
		drainStart := p.Now()
		p.Advance(par.ChunkStackTime(len(payload)))
		win := cp.lsWindow(p, req)
		copy(win[rs.got*rs.chunk:], payload)
		d := par.ChunkDMATime(len(payload))
		rs.dmaDone = app.dmaRes(req.spe).ReserveFor(d)
		app.spanChunk(req.xfer, trace.PhaseChunkFrame, cp.rank.Label(), req.ch, len(payload), drainStart, p.Now(), rs.got)
		app.spanChunk(req.xfer, trace.PhaseChunkDMA, req.proc.String(), req.ch, len(payload), rs.dmaDone-d, rs.dmaDone, rs.got)
		rs.got++
		app.meterStreamInflight(streamRecvDir, rs.nchunks-rs.got)
		if rs.got < rs.nchunks {
			cp.streamAdvanced = true
			return false
		}
	}
	if now := p.Now(); now < rs.dmaDone {
		app.K.After(rs.dmaDone-now, cp.nudge)
		return false
	}
	app.spanPhase(req.xfer, trace.PhaseChunkRelay, cp.rank.Label(), req.ch, req.size, rs.startAt, p.Now())
	cp.obsComplete(req)
	cp.notify(p, req, speStatusOK)
	return true
}

func (cp *copilot) validateIncoming(p *sim.Proc, req *speReq, sig uint32, size int) {
	if sig != req.sig {
		p.Fatalf("%v", usageError("runtime", "PI_Read", "format mismatch on %s: SPE reader %s used a different format than the writer",
			req.ch, req.proc))
	}
	if size != req.size {
		p.Fatalf("%v", usageError("runtime", "PI_Read", "size mismatch on %s: writer sent %d bytes, SPE reader %s expects %d",
			req.ch, size, req.proc, req.size))
	}
}

func (cp *copilot) validatePair(p *sim.Proc, wr, rd *speReq) {
	if wr.sig != rd.sig {
		p.Fatalf("%v", usageError("runtime", "PI_Read", "format mismatch on %s between %s and %s",
			wr.ch, wr.proc, rd.proc))
	}
	if wr.size != rd.size {
		p.Fatalf("%v", usageError("runtime", "PI_Read", "size mismatch on %s: %s wrote %d bytes, %s reads %d",
			wr.ch, wr.proc, wr.size, rd.proc, rd.size))
	}
}
