package core

import (
	"strings"
	"testing"

	"cellpilot/internal/fmtmsg"
)

func TestScatterDistributesChunks(t *testing.T) {
	c := newTestCluster(t)
	a := NewApp(c, Options{})
	const workers, chunk = 3, 4
	var toW []*Channel
	got := make([][]int32, workers)
	fn := func(ctx *Ctx, index int, _ any) {
		buf := make([]int32, chunk)
		ctx.Read(toW[index], "%4d", buf)
		got[index] = buf
	}
	var ws []*Process
	for i := 0; i < workers; i++ {
		ws = append(ws, a.CreateProcessOn(i%3, "w", fn, i, nil))
	}
	for i := 0; i < workers; i++ {
		toW = append(toW, a.CreateChannel(a.Main(), ws[i]))
	}
	b := a.CreateBundle(BundleScatter, toW)
	data := make([]int32, workers*chunk)
	for i := range data {
		data[i] = int32(i * 10)
	}
	if err := a.Run(func(ctx *Ctx) {
		ctx.Scatter(b, "%4d", data)
	}); err != nil {
		t.Fatal(err)
	}
	for w := 0; w < workers; w++ {
		for j := 0; j < chunk; j++ {
			if got[w][j] != int32((w*chunk+j)*10) {
				t.Fatalf("worker %d got %v", w, got[w])
			}
		}
	}
}

func TestReduceOperators(t *testing.T) {
	cases := []struct {
		op   ReduceOp
		want []int32
	}{
		{OpSum, []int32{3 + 5 + 7, 30 + 50 + 70}},
		{OpMin, []int32{3, 30}},
		{OpMax, []int32{7, 70}},
	}
	for _, tc := range cases {
		c := newTestCluster(t)
		a := NewApp(c, Options{})
		var fromW []*Channel
		contrib := [][]int32{{3, 30}, {5, 50}, {7, 70}}
		fn := func(ctx *Ctx, index int, _ any) {
			ctx.Write(fromW[index], "%2d", contrib[index])
		}
		var ws []*Process
		for i := 0; i < 3; i++ {
			ws = append(ws, a.CreateProcessOn(i%3, "w", fn, i, nil))
		}
		for i := 0; i < 3; i++ {
			fromW = append(fromW, a.CreateChannel(ws[i], a.Main()))
		}
		b := a.CreateBundle(BundleReduce, fromW)
		out := make([]int32, 2)
		if err := a.Run(func(ctx *Ctx) {
			ctx.Reduce(b, "%2d", tc.op, out)
		}); err != nil {
			t.Fatalf("%s: %v", tc.op, err)
		}
		if out[0] != tc.want[0] || out[1] != tc.want[1] {
			t.Fatalf("%s: out = %v, want %v", tc.op, out, tc.want)
		}
	}
}

func TestReduceFloatsAndNegatives(t *testing.T) {
	c := newTestCluster(t)
	a := NewApp(c, Options{})
	var fromW []*Channel
	contrib := [][]float64{{-1.5, 2.25}, {3.5, -4.5}}
	fn := func(ctx *Ctx, index int, _ any) {
		ctx.Write(fromW[index], "%2lf", contrib[index])
	}
	var ws []*Process
	for i := 0; i < 2; i++ {
		ws = append(ws, a.CreateProcessOn(i+1, "w", fn, i, nil))
	}
	for i := 0; i < 2; i++ {
		fromW = append(fromW, a.CreateChannel(ws[i], a.Main()))
	}
	b := a.CreateBundle(BundleReduce, fromW)
	out := make([]float64, 2)
	if err := a.Run(func(ctx *Ctx) {
		ctx.Reduce(b, "%2lf", OpSum, out)
	}); err != nil {
		t.Fatal(err)
	}
	if out[0] != 2.0 || out[1] != -2.25 {
		t.Fatalf("out = %v", out)
	}
}

func TestReduceOverSPEWriters(t *testing.T) {
	c := newTestCluster(t)
	a := NewApp(c, Options{SPECollectives: true})
	var fromW []*Channel
	mk := func(id int) *SPEProgram {
		return &SPEProgram{Name: "part", Body: func(ctx *SPECtx) {
			ctx.Write(fromW[id], "%d", int32(id+1))
		}}
	}
	spes := []*Process{
		a.CreateSPE(mk(0), a.Main(), 0),
		a.CreateSPE(mk(1), a.Main(), 1),
		a.CreateSPE(mk(2), a.Main(), 2),
	}
	for i := range spes {
		fromW = append(fromW, a.CreateChannel(spes[i], a.Main()))
	}
	b := a.CreateBundle(BundleReduce, fromW)
	out := make([]int32, 1)
	if err := a.Run(func(ctx *Ctx) {
		for i, s := range spes {
			ctx.RunSPE(s, i, nil)
		}
		ctx.Reduce(b, "%d", OpSum, out)
	}); err != nil {
		t.Fatal(err)
	}
	if out[0] != 6 {
		t.Fatalf("sum = %d", out[0])
	}
}

func TestScatterReduceMisuse(t *testing.T) {
	c := newTestCluster(t)
	a := NewApp(c, Options{})
	w := a.CreateProcessOn(1, "w", func(ctx *Ctx, _ int, arg any) {
		ctx.Read(arg.(*Channel), "%4d", make([]int32, 4))
	}, 0, nil)
	ch := a.CreateChannel(a.Main(), w)
	w.arg = ch
	b := a.CreateBundle(BundleScatter, []*Channel{ch})
	err := a.Run(func(ctx *Ctx) {
		// Star formats are rejected for scatter.
		ctx.Scatter(b, "%*d", make([]int32, 4))
	})
	if err == nil || !strings.Contains(err.Error(), "single fixed-count item") {
		t.Fatalf("err = %v", err)
	}

	c2 := newTestCluster(t)
	a2 := NewApp(c2, Options{})
	w2 := a2.CreateProcessOn(1, "w2", func(ctx *Ctx, _ int, arg any) {
		ctx.Write(arg.(*Channel), "%Lf", LongDoubleZero())
	}, 0, nil)
	ch2 := a2.CreateChannel(w2, a2.Main())
	w2.arg = ch2
	b2 := a2.CreateBundle(BundleReduce, []*Channel{ch2})
	err = a2.Run(func(ctx *Ctx) {
		ctx.Reduce(b2, "%Lf", OpSum, nil)
	})
	if err == nil || !strings.Contains(err.Error(), "cannot be reduced") {
		t.Fatalf("err = %v", err)
	}
}

// LongDoubleZero builds a zero long double for the misuse test.
func LongDoubleZero() fmtmsg.LongDoubleVal { return fmtmsg.LongDoubleVal{} }
