package core

import (
	"strings"
	"testing"

	"cellpilot/internal/sim"
)

func TestNamesAndBulkChannels(t *testing.T) {
	c := newTestCluster(t)
	a := NewApp(c, Options{})
	var ws []*Process
	for i := 0; i < 3; i++ {
		ws = append(ws, a.CreateProcessOn(i, "w", func(*Ctx, int, any) {}, i, nil))
	}
	out := a.CreateChannels(a.Main(), ws)
	in := a.CreateChannelsTo(ws, a.Main())
	if len(out) != 3 || len(in) != 3 {
		t.Fatal("bulk construction counts wrong")
	}
	for i := range out {
		if out[i].From != a.Main() || out[i].To != ws[i] {
			t.Fatalf("out[%d] endpoints wrong", i)
		}
		if in[i].From != ws[i] || in[i].To != a.Main() {
			t.Fatalf("in[%d] endpoints wrong", i)
		}
	}
	out[0].SetName("work-feed")
	if out[0].Name() != "work-feed" {
		t.Fatal("channel name not set")
	}
	if !strings.Contains(out[1].Name(), "channel 1") {
		t.Fatalf("default channel name = %q", out[1].Name())
	}
	b := a.CreateBundle(BundleBroadcast, out)
	b.SetName("the-farm")
	if b.Name() != "the-farm" {
		t.Fatal("bundle name not set")
	}
}

func TestVirtualTimers(t *testing.T) {
	c := newTestCluster(t)
	a := NewApp(c, Options{})
	err := a.Run(func(ctx *Ctx) {
		start := ctx.Now()
		ctx.P.Advance(123 * sim.Microsecond)
		if d := ctx.Elapsed(start); d != 123*sim.Microsecond {
			ctx.P.Fatalf("elapsed = %s", d)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestUserAbort(t *testing.T) {
	c := newTestCluster(t)
	a := NewApp(c, Options{})
	err := a.Run(func(ctx *Ctx) {
		ctx.Abort("input file %q is garbage", "x.dat")
	})
	if err == nil || !strings.Contains(err.Error(), `input file "x.dat" is garbage`) {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(err.Error(), "PI_Abort") || !strings.Contains(err.Error(), "api_extra_test.go:") {
		t.Fatalf("diagnostic incomplete: %v", err)
	}
}

func TestSPEAbort(t *testing.T) {
	c := newTestCluster(t)
	a := NewApp(c, Options{})
	prog := &SPEProgram{Name: "angry", Body: func(ctx *SPECtx) {
		if ctx.Now() >= 0 {
			ctx.Abort("spe gives up")
		}
	}}
	spe := a.CreateSPE(prog, a.Main(), 0)
	err := a.Run(func(ctx *Ctx) {
		ctx.RunSPE(spe, 0, nil)
	})
	if err == nil || !strings.Contains(err.Error(), "spe gives up") {
		t.Fatalf("err = %v", err)
	}
}
