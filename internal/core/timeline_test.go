package core

import (
	"strings"
	"testing"

	"cellpilot/internal/fault"
	"cellpilot/internal/sim"
	"cellpilot/internal/timeline"
)

// The attached timeline records every series family the sampler covers
// and surfaces through Stats().Timeline.
func TestTimelineRecordsRun(t *testing.T) {
	tl := timeline.New(20 * sim.Microsecond)
	app, vt := runFiveTypesSinks(t, 2, nil, NewMeter(), nil, nil, tl, Options{})
	rep := app.Stats().Timeline
	if rep == nil {
		t.Fatal("Stats().Timeline nil with a recorder attached")
	}
	if rep.Windows == 0 || rep.End != vt {
		t.Fatalf("report windows=%d end=%v, want >0 windows ending at %v", rep.Windows, rep.End, vt)
	}
	names := tl.SeriesNames()
	wantPrefixes := []string{"backlog/total", "net/bytes", "copilot/", "link/", "mailbox/", "backlog/type"}
	for _, want := range wantPrefixes {
		found := false
		for _, n := range names {
			if strings.HasPrefix(n, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no series with prefix %q (have %v)", want, names)
		}
	}
	// Traffic flowed, so bytes and busy time must be non-zero somewhere.
	bytes, ok := tl.Range("net/bytes", 0, 0)
	if !ok {
		t.Fatal("net/bytes series missing")
	}
	sum := 0.0
	for _, v := range bytes {
		sum += v
	}
	if sum <= 0 {
		t.Errorf("net/bytes windows sum to %v, want > 0", sum)
	}
	// Series names are sorted — the deterministic output order.
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("series names not sorted: %q before %q", names[i-1], names[i])
		}
	}
}

// Same seed, same workload → byte-identical timeline fingerprints.
func TestTimelineDeterministicAcrossRuns(t *testing.T) {
	run := func() string {
		tl := timeline.New(20 * sim.Microsecond)
		runFiveTypesSinks(t, 2, nil, NewMeter(), nil, nil, tl, Options{})
		return tl.Fingerprint()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("timeline fingerprints diverged across identical runs:\n%s\nvs\n%s", a, b)
	}
}

// Injected faults are marked on the timeline, and the fault counters show
// up as series whose windows record the injection.
func TestTimelineNotesFaults(t *testing.T) {
	plan := fault.Plan{Seed: 1, Events: []fault.Event{
		{At: sim.Millisecond, Kind: fault.KillSPE, Proc: "victim#0"},
	}}
	a, _, run := buildKillSPEApp(t, plan)
	tl := timeline.New(100 * sim.Microsecond)
	if err := a.SetTimeline(tl); err != nil {
		t.Fatalf("SetTimeline: %v", err)
	}
	run()
	marks := tl.Faults()
	if len(marks) != 1 {
		t.Fatalf("fault marks = %+v, want exactly one", marks)
	}
	if marks[0].Label != "kill-spe(victim#0)" || marks[0].At != sim.Millisecond {
		t.Errorf("mark = %+v, want kill-spe(victim#0) at 1ms", marks[0])
	}
	killed, ok := tl.Range("fault/procs_killed", 0, 0)
	if !ok {
		t.Fatal("fault/procs_killed series missing")
	}
	total := 0.0
	for _, v := range killed {
		total += v
	}
	if total != 1 {
		t.Errorf("fault/procs_killed windows sum to %v, want 1", total)
	}
	// The kill lands in the window containing t=1ms, not earlier.
	pre, _ := tl.Range("fault/procs_killed", 0, sim.Millisecond)
	for i, v := range pre {
		if v != 0 {
			t.Errorf("procs_killed window %d (before the fault) = %v", i, v)
		}
	}
}

// Options.FlightDepth sizes the always-on flight recorder ring.
func TestFlightDepthOption(t *testing.T) {
	c := newTestCluster(t)
	a := NewApp(c, Options{FlightDepth: 8})
	if got := a.flight.Depth(); got != 8 {
		t.Fatalf("flight depth = %d, want 8", got)
	}
	c2 := newTestCluster(t)
	if got := NewApp(c2, Options{}).flight.Depth(); got != 256 {
		t.Fatalf("default flight depth = %d, want 256", got)
	}
	defer func() {
		r := recover()
		if r == nil || !strings.Contains(r.(error).Error(), "FlightDepth") {
			t.Fatalf("negative FlightDepth panic = %v, want usage error naming FlightDepth", r)
		}
	}()
	NewApp(newTestCluster(t), Options{FlightDepth: -1})
}

// SetTimeline is a checked setter: refused once Run has started.
func TestSetTimelineAfterRunRejected(t *testing.T) {
	c := newTestCluster(t)
	a := NewApp(c, Options{})
	if err := a.SetTimeline(timeline.New(0)); err != nil {
		t.Fatalf("SetTimeline in config phase: %v", err)
	}
	if err := a.SetTimeline(nil); err != nil {
		t.Fatalf("SetTimeline(nil) in config phase: %v", err)
	}
	err := a.Run(func(ctx *Ctx) {
		if err := a.SetTimeline(timeline.New(0)); err == nil {
			t.Error("SetTimeline during Run succeeded")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
