package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"cellpilot/internal/fault"
	"cellpilot/internal/sim"
	"cellpilot/internal/trace"
)

// runFiveTypes runs a 2-Cell-node + 1-Xeon cluster workload that exercises
// every Table I channel type (1: PPE↔remote PPE, 2: PPE↔local SPE,
// 3: PPE↔remote SPE, 4: SPE↔local SPE, 5: SPE↔remote SPE), with the given
// observability sinks attached, and returns the final virtual time.
func runFiveTypes(t *testing.T, rounds int, rec *trace.Recorder, meter *Meter) (*App, sim.Time) {
	t.Helper()
	return runFiveTypesOpts(t, rounds, rec, meter, Options{})
}

// runFiveTypesOpts is runFiveTypes with explicit Options (used to prove
// the hardened code paths are virtually free when no fault fires).
func runFiveTypesOpts(t *testing.T, rounds int, rec *trace.Recorder, meter *Meter, opts Options) (*App, sim.Time) {
	t.Helper()
	c := newTestCluster(t)
	a := NewApp(c, opts)
	a.Trace = rec
	a.Metrics = meter

	var t1d, t1u, t2d, t2u, t3d, t3u, t4ab, t4ba, t5ab, t5ba *Channel
	mkEcho := func(down, up **Channel) *SPEProgram {
		return &SPEProgram{Name: "echo", Body: func(ctx *SPECtx) {
			buf := make([]int32, 16)
			for r := 0; r < rounds; r++ {
				ctx.Read(*down, "%16d", buf)
				ctx.Write(*up, "%16d", buf)
			}
		}}
	}
	mkInit := func(up, down **Channel) *SPEProgram {
		return &SPEProgram{Name: "init", Body: func(ctx *SPECtx) {
			buf := make([]int32, 16)
			for r := 0; r < rounds; r++ {
				ctx.Write(*up, "%16d", buf)
				ctx.Read(*down, "%16d", buf)
			}
		}}
	}

	spe2 := a.CreateSPE(mkEcho(&t2d, &t2u), a.Main(), 0)
	spe4a := a.CreateSPE(mkInit(&t4ab, &t4ba), a.Main(), 1)
	spe4b := a.CreateSPE(mkEcho(&t4ab, &t4ba), a.Main(), 2)
	parent := a.CreateProcessOn(1, "parent", func(ctx *Ctx, _ int, arg any) {
		for _, sp := range arg.([]*Process) {
			ctx.RunSPE(sp, 0, nil)
		}
		buf := make([]int32, 16)
		for r := 0; r < rounds; r++ {
			ctx.Read(t1d, "%16d", buf)
			ctx.Write(t1u, "%16d", buf)
		}
	}, 0, nil)
	spe5a := a.CreateSPE(mkInit(&t5ab, &t5ba), a.Main(), 3)
	spe5b := a.CreateSPE(mkEcho(&t5ab, &t5ba), parent, 0)
	spe3 := a.CreateSPE(mkEcho(&t3d, &t3u), parent, 1)
	parent.arg = []*Process{spe5b, spe3}

	t1d = a.CreateChannel(a.Main(), parent)
	t1u = a.CreateChannel(parent, a.Main())
	t2d = a.CreateChannel(a.Main(), spe2)
	t2u = a.CreateChannel(spe2, a.Main())
	t3d = a.CreateChannel(a.Main(), spe3)
	t3u = a.CreateChannel(spe3, a.Main())
	t4ab = a.CreateChannel(spe4a, spe4b)
	t4ba = a.CreateChannel(spe4b, spe4a)
	t5ab = a.CreateChannel(spe5a, spe5b)
	t5ba = a.CreateChannel(spe5b, spe5a)

	err := a.Run(func(ctx *Ctx) {
		ctx.RunSPE(spe2, 0, nil)
		ctx.RunSPE(spe4a, 0, nil)
		ctx.RunSPE(spe4b, 0, nil)
		ctx.RunSPE(spe5a, 0, nil)
		buf := make([]int32, 16)
		for r := 0; r < rounds; r++ {
			ctx.Write(t2d, "%16d", buf)
			ctx.Read(t2u, "%16d", buf)
			ctx.Write(t1d, "%16d", buf)
			ctx.Read(t1u, "%16d", buf)
			ctx.Write(t3d, "%16d", buf)
			ctx.Read(t3u, "%16d", buf)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return a, c.K.Now()
}

// E-OBS1: attaching the recorder, the meter, or both leaves the virtual
// timeline bit-for-bit identical — the tentpole's zero-cost guarantee.
func TestObservabilityZeroCost(t *testing.T) {
	_, bare := runFiveTypes(t, 2, nil, nil)
	recA := trace.NewRecorder(0)
	_, withRec := runFiveTypes(t, 2, recA, nil)
	_, withMeter := runFiveTypes(t, 2, nil, NewMeter())
	recB := trace.NewRecorder(0)
	_, withBoth := runFiveTypes(t, 2, recB, NewMeter())

	if bare != withRec || bare != withMeter || bare != withBoth {
		t.Fatalf("virtual time diverged: bare=%v rec=%v meter=%v both=%v",
			bare, withRec, withMeter, withBoth)
	}
	// An armed but empty fault plan routes every operation through the
	// hardened control paths (deadline-capable parks, sequence-free
	// descriptors, link tap). With nothing injected, the virtual timeline
	// must still be bit-for-bit that of the unhardened run.
	inj := fault.NewInjector(fault.Plan{})
	_, withFaults := runFiveTypesOpts(t, 2, nil, nil, Options{Faults: inj})
	if bare != withFaults {
		t.Fatalf("zero-fault hardened run diverged: bare=%v hardened=%v", bare, withFaults)
	}
	if got := inj.Counts; got != (fault.Counts{}) {
		t.Fatalf("empty plan recorded activity: %+v", got)
	}
	// Per-channel event times must also be identical across sink choices.
	evA, evB := recA.Events(), recB.Events()
	if len(evA) != len(evB) {
		t.Fatalf("event counts diverged: %d vs %d", len(evA), len(evB))
	}
	for i := range evA {
		if evA[i] != evB[i] {
			t.Fatalf("event %d diverged: %+v vs %+v", i, evA[i], evB[i])
		}
	}
}

// E-OBS2: every transfer on an SPE-connected channel type (2–5) becomes a
// span decomposed into mailbox, Co-Pilot, and copy-or-relay phases.
func TestSpansCoverAllSPETypes(t *testing.T) {
	rec := trace.NewRecorder(0)
	_, _ = runFiveTypes(t, 2, rec, nil)
	spans := rec.Spans()
	byType := map[int]int{}
	for _, sp := range spans {
		byType[sp.ChanType]++
		if sp.ChanType == 1 {
			continue
		}
		var mbox, copilot, move bool
		for _, ph := range sp.Phases {
			switch ph.Phase {
			case trace.PhaseMailboxReq, trace.PhaseMailboxWait:
				mbox = true
			case trace.PhaseCoPilotWait, trace.PhaseCoPilotService:
				copilot = true
			case trace.PhaseCopy, trace.PhaseRelay, trace.PhaseMPISend, trace.PhaseMPIWait:
				move = true
			}
		}
		if !mbox || !copilot || !move {
			t.Fatalf("span #%d (type%d) missing phases: mailbox=%v copilot=%v move=%v\nphases: %+v",
				sp.ID, sp.ChanType, mbox, copilot, move, sp.Phases)
		}
	}
	for typ := 1; typ <= 5; typ++ {
		// 2 rounds × 2 directions = 4 transfers per type.
		if byType[typ] != 4 {
			t.Fatalf("type%d spans = %d, want 4 (all: %v)", typ, byType[typ], byType)
		}
	}
}

// E-OBS3: the Chrome export is valid trace_event JSON with one named
// track per process and per Co-Pilot.
func TestChromeExportTracks(t *testing.T) {
	rec := trace.NewRecorder(0)
	_, _ = runFiveTypes(t, 2, rec, nil)
	var buf bytes.Buffer
	if err := rec.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
			Cat  string         `json:"cat"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	tracks := map[string]bool{}
	sliceTids := map[int]bool{}
	cats := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name == "thread_name" {
				tracks[ev.Args["name"].(string)] = true
			}
		case "X":
			sliceTids[ev.Tid] = true
			cats[ev.Cat] = true
		}
	}
	// 1 PI_MAIN + 1 parent + 6 SPE processes + 2 Co-Pilots have phases.
	var copilots, procs int
	for name := range tracks {
		if strings.Contains(name, "copilot") {
			copilots++
		} else {
			procs++
		}
	}
	if copilots != 2 {
		t.Fatalf("co-pilot tracks = %d, want 2 (tracks: %v)", copilots, tracks)
	}
	if procs != 8 {
		t.Fatalf("process tracks = %d, want 8 (tracks: %v)", procs, tracks)
	}
	for typ := 1; typ <= 5; typ++ {
		want := "type" + string(rune('0'+typ))
		if !cats[want] {
			t.Fatalf("no slices with category %s (cats: %v)", want, cats)
		}
	}
	if len(sliceTids) < 5 {
		t.Fatalf("slices land on only %d tracks", len(sliceTids))
	}
}

// E-OBS4: App.Stats reports per-channel-type histograms and per-process
// blocked-time attribution when a Meter is attached.
func TestStatsMetrics(t *testing.T) {
	meter := NewMeter()
	a, final := runFiveTypes(t, 2, nil, meter)
	st := a.Stats()
	if st.Registry == nil {
		t.Fatal("Stats.Registry nil with a meter attached")
	}
	if len(st.ChannelTypes) != 5 {
		t.Fatalf("ChannelTypes = %d, want all 5: %+v", len(st.ChannelTypes), st.ChannelTypes)
	}
	for _, ct := range st.ChannelTypes {
		// 2 rounds × 2 directions × 2 sides (write op + read op).
		if ct.Ops != 8 {
			t.Fatalf("%s ops = %d, want 8", ct.Type, ct.Ops)
		}
		if ct.Bytes != 8*64 {
			t.Fatalf("%s bytes = %d, want 512", ct.Type, ct.Bytes)
		}
		if ct.LatencyUs.Count() != 8 || ct.LatencyUs.Quantile(0.5) <= 0 {
			t.Fatalf("%s latency histogram: count=%d p50=%v", ct.Type, ct.LatencyUs.Count(), ct.LatencyUs.Quantile(0.5))
		}
		if ct.BandwidthMBps.Count() == 0 || ct.SizeBytes.Count() != 8 {
			t.Fatalf("%s bandwidth/size histograms empty", ct.Type)
		}
	}
	// 1 PI_MAIN + 1 parent + 6 SPE processes.
	if len(st.ProcTimes) != 8 {
		t.Fatalf("ProcTimes = %d, want 8", len(st.ProcTimes))
	}
	var sawMailbox, sawRead bool
	for _, pt := range st.ProcTimes {
		if pt.Total < 0 || pt.Compute < 0 {
			t.Fatalf("%s has negative time split: %+v", pt.Process, pt)
		}
		if pt.Total > final {
			t.Fatalf("%s total %v exceeds run time %v", pt.Process, pt.Total, final)
		}
		if sum := pt.Compute + pt.BlockedRead + pt.BlockedWrite + pt.MailboxWait; sum != pt.Total {
			t.Fatalf("%s split does not add up: %+v", pt.Process, pt)
		}
		if pt.MailboxWait > 0 {
			sawMailbox = true
		}
		if pt.BlockedRead > 0 {
			sawRead = true
		}
	}
	if !sawMailbox || !sawRead {
		t.Fatalf("blocked-time attribution missing: mailbox=%v read=%v", sawMailbox, sawRead)
	}
	// Co-Pilot queue metrics exist for both Cell nodes' service processes.
	var queues int
	for _, name := range st.Registry.HistogramNames() {
		if strings.HasPrefix(name, "copilot/") && strings.HasSuffix(name, "/queue_wait_us") {
			queues++
		}
	}
	if queues != 2 {
		t.Fatalf("copilot queue_wait_us histograms = %d, want 2 (%v)", queues, st.Registry.HistogramNames())
	}
}

// E-OBS5: Stats.String renders the metric sections; without a meter the
// report stays in its seed shape.
func TestStatsStringMetricsSections(t *testing.T) {
	meter := NewMeter()
	a, _ := runFiveTypes(t, 2, nil, meter)
	s := a.Stats().String()
	for _, want := range []string{"type1:", "type5:", "latency p50=", "bandwidth p50=", "compute", "mailbox"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Stats.String missing %q:\n%s", want, s)
		}
	}
	b, _ := runFiveTypes(t, 2, nil, nil)
	if s := b.Stats().String(); strings.Contains(s, "latency p50=") || strings.Contains(s, "compute") {
		t.Fatalf("Stats.String shows metric sections without a meter:\n%s", s)
	}
}

// E-OBS6: ConfigDump lists every process, channel and bundle of the
// configured application.
func TestConfigDumpListsConfiguration(t *testing.T) {
	c := newTestCluster(t)
	a := NewApp(c, Options{})
	peer := a.CreateProcessOn(1, "peer", func(ctx *Ctx, _ int, arg any) {
		var v int32
		ctx.Read(arg.(*Channel), "%d", &v)
	}, 0, nil)
	spe := a.CreateSPE(&SPEProgram{Name: "idle", Body: func(ctx *SPECtx) {}}, a.Main(), 0)
	_ = spe
	ch := a.CreateChannel(a.Main(), peer)
	peer.arg = ch
	dump := a.ConfigDump()
	for _, want := range []string{"processes (3):", "PI_MAIN", "peer", "idle#0", "channels (1):", "bundles (0):"} {
		if !strings.Contains(dump, want) {
			t.Fatalf("ConfigDump missing %q:\n%s", want, dump)
		}
	}
	if err := a.Run(func(ctx *Ctx) { ctx.Write(ch, "%d", int32(7)) }); err != nil {
		t.Fatal(err)
	}
}
