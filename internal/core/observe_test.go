package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"cellpilot/internal/fault"
	"cellpilot/internal/flowmap"
	"cellpilot/internal/hostprof"
	"cellpilot/internal/profile"
	"cellpilot/internal/sim"
	"cellpilot/internal/timeline"
	"cellpilot/internal/trace"
)

// runFiveTypes runs a 2-Cell-node + 1-Xeon cluster workload that exercises
// every Table I channel type (1: PPE↔remote PPE, 2: PPE↔local SPE,
// 3: PPE↔remote SPE, 4: SPE↔local SPE, 5: SPE↔remote SPE), with the given
// observability sinks attached, and returns the final virtual time.
func runFiveTypes(t *testing.T, rounds int, rec *trace.Recorder, meter *Meter) (*App, sim.Time) {
	t.Helper()
	return runFiveTypesFull(t, rounds, rec, meter, nil, nil, Options{})
}

// runFiveTypesOpts is runFiveTypes with explicit Options (used to prove
// the hardened code paths are virtually free when no fault fires).
func runFiveTypesOpts(t *testing.T, rounds int, rec *trace.Recorder, meter *Meter, opts Options) (*App, sim.Time) {
	t.Helper()
	return runFiveTypesFull(t, rounds, rec, meter, nil, nil, opts)
}

// runFiveTypesFull is the most general variant: every observability sink
// plus explicit Options.
func runFiveTypesFull(t *testing.T, rounds int, rec *trace.Recorder, meter *Meter, prof *profile.Profiler, host *hostprof.Profiler, opts Options) (*App, sim.Time) {
	t.Helper()
	return runFiveTypesSinks(t, rounds, rec, meter, prof, host, nil, opts)
}

// runFiveTypesSinks additionally attaches a timeline recorder.
func runFiveTypesSinks(t *testing.T, rounds int, rec *trace.Recorder, meter *Meter, prof *profile.Profiler, host *hostprof.Profiler, tl *timeline.Recorder, opts Options) (*App, sim.Time) {
	t.Helper()
	return runFiveTypesAllSinks(t, rounds, rec, meter, prof, host, tl, nil, opts)
}

// runFiveTypesAllSinks additionally attaches a flow observatory.
func runFiveTypesAllSinks(t *testing.T, rounds int, rec *trace.Recorder, meter *Meter, prof *profile.Profiler, host *hostprof.Profiler, tl *timeline.Recorder, fl *flowmap.Map, opts Options) (*App, sim.Time) {
	t.Helper()
	c := newTestCluster(t)
	a := NewApp(c, opts)
	a.Trace = rec
	a.Metrics = meter
	a.Profile = prof
	a.HostProf = host
	a.Timeline = tl
	a.Flows = fl

	var t1d, t1u, t2d, t2u, t3d, t3u, t4ab, t4ba, t5ab, t5ba *Channel
	mkEcho := func(down, up **Channel) *SPEProgram {
		return &SPEProgram{Name: "echo", Body: func(ctx *SPECtx) {
			buf := make([]int32, 16)
			for r := 0; r < rounds; r++ {
				ctx.Read(*down, "%16d", buf)
				ctx.Write(*up, "%16d", buf)
			}
		}}
	}
	mkInit := func(up, down **Channel) *SPEProgram {
		return &SPEProgram{Name: "init", Body: func(ctx *SPECtx) {
			buf := make([]int32, 16)
			for r := 0; r < rounds; r++ {
				ctx.Write(*up, "%16d", buf)
				ctx.Read(*down, "%16d", buf)
			}
		}}
	}

	spe2 := a.CreateSPE(mkEcho(&t2d, &t2u), a.Main(), 0)
	spe4a := a.CreateSPE(mkInit(&t4ab, &t4ba), a.Main(), 1)
	spe4b := a.CreateSPE(mkEcho(&t4ab, &t4ba), a.Main(), 2)
	parent := a.CreateProcessOn(1, "parent", func(ctx *Ctx, _ int, arg any) {
		for _, sp := range arg.([]*Process) {
			ctx.RunSPE(sp, 0, nil)
		}
		buf := make([]int32, 16)
		for r := 0; r < rounds; r++ {
			ctx.Read(t1d, "%16d", buf)
			ctx.Write(t1u, "%16d", buf)
		}
	}, 0, nil)
	spe5a := a.CreateSPE(mkInit(&t5ab, &t5ba), a.Main(), 3)
	spe5b := a.CreateSPE(mkEcho(&t5ab, &t5ba), parent, 0)
	spe3 := a.CreateSPE(mkEcho(&t3d, &t3u), parent, 1)
	parent.arg = []*Process{spe5b, spe3}

	t1d = a.CreateChannel(a.Main(), parent)
	t1u = a.CreateChannel(parent, a.Main())
	t2d = a.CreateChannel(a.Main(), spe2)
	t2u = a.CreateChannel(spe2, a.Main())
	t3d = a.CreateChannel(a.Main(), spe3)
	t3u = a.CreateChannel(spe3, a.Main())
	t4ab = a.CreateChannel(spe4a, spe4b)
	t4ba = a.CreateChannel(spe4b, spe4a)
	t5ab = a.CreateChannel(spe5a, spe5b)
	t5ba = a.CreateChannel(spe5b, spe5a)

	err := a.Run(func(ctx *Ctx) {
		ctx.RunSPE(spe2, 0, nil)
		ctx.RunSPE(spe4a, 0, nil)
		ctx.RunSPE(spe4b, 0, nil)
		ctx.RunSPE(spe5a, 0, nil)
		buf := make([]int32, 16)
		for r := 0; r < rounds; r++ {
			ctx.Write(t2d, "%16d", buf)
			ctx.Read(t2u, "%16d", buf)
			ctx.Write(t1d, "%16d", buf)
			ctx.Read(t1u, "%16d", buf)
			ctx.Write(t3d, "%16d", buf)
			ctx.Read(t3u, "%16d", buf)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return a, c.K.Now()
}

// E-OBS1: attaching the recorder, the meter, or both leaves the virtual
// timeline bit-for-bit identical — the tentpole's zero-cost guarantee.
func TestObservabilityZeroCost(t *testing.T) {
	bareApp, bare := runFiveTypes(t, 2, nil, nil)
	recA := trace.NewRecorder(0)
	_, withRec := runFiveTypes(t, 2, recA, nil)
	_, withMeter := runFiveTypes(t, 2, nil, NewMeter())
	recB := trace.NewRecorder(0)
	_, withBoth := runFiveTypes(t, 2, recB, NewMeter())
	profA := profile.New()
	_, withProf := runFiveTypesFull(t, 2, nil, nil, profA, nil, Options{})
	profB := profile.New()
	allApp, withAll := runFiveTypesFull(t, 2, trace.NewRecorder(0), NewMeter(), profB, nil, Options{})
	// The host profiler times the simulator itself with the wall clock —
	// strictly outside the virtual timeline. Stride 1 samples every slice,
	// the worst case for any accidental coupling.
	hostA := hostprof.New(1)
	hostApp, withHost := runFiveTypesFull(t, 2, nil, nil, nil, hostA, Options{})
	hostAll := hostprof.New(1)
	_, withHostAll := runFiveTypesFull(t, 2, trace.NewRecorder(0), NewMeter(), profile.New(), hostAll, Options{})
	// Timeline arms: the windowed recorder samples via the kernel clock
	// hook but never schedules, so attached or detached the virtual
	// timeline must match the bare run bit for bit.
	tlA := timeline.New(0)
	tlApp, withTimeline := runFiveTypesSinks(t, 2, nil, nil, nil, nil, tlA, Options{})
	// Flow arms: the flow observatory classifies deliveries and attributes
	// hop occupancy entirely from observed values — attached or detached
	// (nil flowmap) the virtual timeline must match the bare run bit for bit.
	flA := flowmap.New(0)
	flApp, withFlows := runFiveTypesAllSinks(t, 2, nil, nil, nil, nil, nil, flA, Options{})
	_, withEverything := runFiveTypesAllSinks(t, 2, trace.NewRecorder(0), NewMeter(), profile.New(), hostprof.New(1), timeline.New(0), flowmap.New(0), Options{})

	if bare != withRec || bare != withMeter || bare != withBoth {
		t.Fatalf("virtual time diverged: bare=%v rec=%v meter=%v both=%v",
			bare, withRec, withMeter, withBoth)
	}
	if bare != withProf || bare != withAll {
		t.Fatalf("virtual time diverged with profiler: bare=%v prof=%v all=%v",
			bare, withProf, withAll)
	}
	if bare != withHost || bare != withHostAll {
		t.Fatalf("virtual time diverged with host profiler: bare=%v host=%v host+all=%v",
			bare, withHost, withHostAll)
	}
	if bare != withTimeline || bare != withEverything {
		t.Fatalf("virtual time diverged with timeline: bare=%v timeline=%v all-sinks=%v",
			bare, withTimeline, withEverything)
	}
	if bare != withFlows {
		t.Fatalf("virtual time diverged with flowmap: bare=%v flows=%v", bare, withFlows)
	}
	// The flow observatory actually observed the run: every one of the
	// seven canonical routes appears (the workload drives all five channel
	// types, types 2 and 3 in both directions), and Stats surfaces the
	// report only when a flowmap is attached.
	flStats := flApp.Stats()
	if flStats.Flows == nil || flStats.Flows.FlowCount == 0 || flStats.Flows.TotalMsgs == 0 {
		t.Fatalf("flowmap recorded nothing: %+v", flStats.Flows)
	}
	if got, want := len(flStats.Flows.Routes), len(flowmap.Routes()); got != want {
		t.Fatalf("flowmap saw %d routes, want all %d: %+v", got, want, flStats.Flows.Routes)
	}
	if bareApp.Stats().Flows != nil {
		t.Fatal("Stats().Flows populated without a flowmap attached")
	}
	// The timeline actually observed the run and surfaces through Stats.
	tlStats := tlApp.Stats()
	if tlStats.Timeline == nil || tlStats.Timeline.Windows == 0 || len(tlStats.Timeline.Series) == 0 {
		t.Fatalf("timeline recorded nothing: %+v", tlStats.Timeline)
	}
	if bareApp.Stats().Timeline != nil {
		t.Fatal("Stats().Timeline populated without a recorder attached")
	}
	// The host profiler actually observed the run (events, slices, and
	// subsystem attribution for the Co-Pilot/MPI/interconnect/fmtmsg code
	// it hooked) and surfaces through Stats().Host.
	hsnap := hostA.Snapshot()
	if hsnap.Events == 0 || hsnap.Slices == 0 || hsnap.SampledNs == 0 {
		t.Fatalf("host profiler saw nothing: %+v", hsnap)
	}
	tagged := map[string]bool{}
	for _, sh := range hsnap.Subsystems {
		if sh.SampledNs > 0 {
			tagged[sh.Name] = true
		}
	}
	for _, want := range []string{"copilot", "mpi"} {
		if !tagged[want] {
			t.Errorf("no host time attributed to %s: %+v", want, hsnap.Subsystems)
		}
	}
	if st := hostApp.Stats(); st.Host == nil || st.Host.Events != hsnap.Events {
		t.Fatalf("Stats().Host missing or inconsistent: %+v", st.Host)
	}
	if bareApp.Stats().Host != nil {
		t.Fatal("Stats().Host non-nil without a host profiler attached")
	}
	// The profiler attributed non-compute time for every process and both
	// identically-configured profiled runs agree bucket-for-bucket.
	if len(profA.Procs()) == 0 {
		t.Fatal("profiler saw no processes")
	}
	var fa, fb bytes.Buffer
	if err := profA.FoldedStacks(&fa); err != nil {
		t.Fatal(err)
	}
	if err := profB.FoldedStacks(&fb); err != nil {
		t.Fatal(err)
	}
	if fa.String() != fb.String() {
		t.Fatalf("profiled runs diverged:\n%s\nvs\n%s", fa.String(), fb.String())
	}
	// The always-on flight recorder captured phase events in every run —
	// including the bare one — without perturbing it.
	for _, a := range []*App{bareApp, allApp} {
		if a.Flight().Total() == 0 {
			t.Fatal("flight recorder recorded nothing")
		}
	}
	// An armed but empty fault plan routes every operation through the
	// hardened control paths (deadline-capable parks, sequence-free
	// descriptors, link tap). With nothing injected, the virtual timeline
	// must still be bit-for-bit that of the unhardened run.
	inj := fault.NewInjector(fault.Plan{})
	_, withFaults := runFiveTypesOpts(t, 2, nil, nil, Options{Faults: inj})
	if bare != withFaults {
		t.Fatalf("zero-fault hardened run diverged: bare=%v hardened=%v", bare, withFaults)
	}
	if got := inj.Counts; got != (fault.Counts{}) {
		t.Fatalf("empty plan recorded activity: %+v", got)
	}
	// The critical-path analyzer is a pure post-run consumer of the span
	// DAG: with no recorder attached Stats carries no CritPath and the
	// timeline is the bare one (asserted above); with one, Stats().CritPath
	// decomposes every traced transfer exactly — the per-stage attributions
	// sum to the end-to-end virtual latency — and rendering it twice is
	// byte-identical.
	if bareApp.Stats().CritPath != nil {
		t.Fatal("Stats.CritPath non-nil without a recorder")
	}
	cp := allApp.Stats().CritPath
	if cp == nil || len(cp.Transfers) == 0 {
		t.Fatal("Stats.CritPath missing with a recorder attached")
	}
	for _, tr := range cp.Transfers {
		var sum sim.Time
		for _, sb := range tr.Stages {
			sum += sb.Total()
		}
		if d := tr.Dur() - sum; d != 0 {
			t.Fatalf("transfer #%d: stage attributions off end-to-end latency by %v", tr.ID, d)
		}
	}
	if again := allApp.Stats().CritPath; again.Table() != cp.Table() {
		t.Fatalf("critical-path report not deterministic:\n%s\nvs\n%s", cp.Table(), again.Table())
	}
	// Per-channel event times must also be identical across sink choices.
	evA, evB := recA.Events(), recB.Events()
	if len(evA) != len(evB) {
		t.Fatalf("event counts diverged: %d vs %d", len(evA), len(evB))
	}
	for i := range evA {
		if evA[i] != evB[i] {
			t.Fatalf("event %d diverged: %+v vs %+v", i, evA[i], evB[i])
		}
	}
}

// E-OBS2: every transfer on an SPE-connected channel type (2–5) becomes a
// span decomposed into mailbox, Co-Pilot, and copy-or-relay phases.
func TestSpansCoverAllSPETypes(t *testing.T) {
	rec := trace.NewRecorder(0)
	_, _ = runFiveTypes(t, 2, rec, nil)
	spans := rec.Spans()
	byType := map[int]int{}
	for _, sp := range spans {
		byType[sp.ChanType]++
		if sp.ChanType == 1 {
			continue
		}
		var mbox, copilot, move bool
		for _, ph := range sp.Phases {
			switch ph.Phase {
			case trace.PhaseMailboxReq, trace.PhaseMailboxWait:
				mbox = true
			case trace.PhaseCoPilotWait, trace.PhaseCoPilotService:
				copilot = true
			case trace.PhaseCopy, trace.PhaseRelay, trace.PhaseMPISend, trace.PhaseMPIWait:
				move = true
			}
		}
		if !mbox || !copilot || !move {
			t.Fatalf("span #%d (type%d) missing phases: mailbox=%v copilot=%v move=%v\nphases: %+v",
				sp.ID, sp.ChanType, mbox, copilot, move, sp.Phases)
		}
	}
	for typ := 1; typ <= 5; typ++ {
		// 2 rounds × 2 directions = 4 transfers per type.
		if byType[typ] != 4 {
			t.Fatalf("type%d spans = %d, want 4 (all: %v)", typ, byType[typ], byType)
		}
	}
}

// E-OBS3: the Chrome export is valid trace_event JSON with one named
// track per process and per Co-Pilot.
func TestChromeExportTracks(t *testing.T) {
	rec := trace.NewRecorder(0)
	_, _ = runFiveTypes(t, 2, rec, nil)
	var buf bytes.Buffer
	if err := rec.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
			Cat  string         `json:"cat"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	tracks := map[string]bool{}
	sliceTids := map[int]bool{}
	cats := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name == "thread_name" {
				tracks[ev.Args["name"].(string)] = true
			}
		case "X":
			sliceTids[ev.Tid] = true
			cats[ev.Cat] = true
		}
	}
	// 1 PI_MAIN + 1 parent + 6 SPE processes + 2 Co-Pilots have phases.
	var copilots, procs int
	for name := range tracks {
		if strings.Contains(name, "copilot") {
			copilots++
		} else {
			procs++
		}
	}
	if copilots != 2 {
		t.Fatalf("co-pilot tracks = %d, want 2 (tracks: %v)", copilots, tracks)
	}
	if procs != 8 {
		t.Fatalf("process tracks = %d, want 8 (tracks: %v)", procs, tracks)
	}
	for typ := 1; typ <= 5; typ++ {
		want := "type" + string(rune('0'+typ))
		if !cats[want] {
			t.Fatalf("no slices with category %s (cats: %v)", want, cats)
		}
	}
	if len(sliceTids) < 5 {
		t.Fatalf("slices land on only %d tracks", len(sliceTids))
	}
}

// E-OBS4: App.Stats reports per-channel-type histograms and per-process
// blocked-time attribution when a Meter is attached.
func TestStatsMetrics(t *testing.T) {
	meter := NewMeter()
	a, final := runFiveTypes(t, 2, nil, meter)
	st := a.Stats()
	if st.Registry == nil {
		t.Fatal("Stats.Registry nil with a meter attached")
	}
	if len(st.ChannelTypes) != 5 {
		t.Fatalf("ChannelTypes = %d, want all 5: %+v", len(st.ChannelTypes), st.ChannelTypes)
	}
	for _, ct := range st.ChannelTypes {
		// 2 rounds × 2 directions × 2 sides (write op + read op).
		if ct.Ops != 8 {
			t.Fatalf("%s ops = %d, want 8", ct.Type, ct.Ops)
		}
		if ct.Bytes != 8*64 {
			t.Fatalf("%s bytes = %d, want 512", ct.Type, ct.Bytes)
		}
		if ct.LatencyUs.Count() != 8 || ct.LatencyUs.Quantile(0.5) <= 0 {
			t.Fatalf("%s latency histogram: count=%d p50=%v", ct.Type, ct.LatencyUs.Count(), ct.LatencyUs.Quantile(0.5))
		}
		if ct.BandwidthMBps.Count() == 0 || ct.SizeBytes.Count() != 8 {
			t.Fatalf("%s bandwidth/size histograms empty", ct.Type)
		}
	}
	// 1 PI_MAIN + 1 parent + 6 SPE processes.
	if len(st.ProcTimes) != 8 {
		t.Fatalf("ProcTimes = %d, want 8", len(st.ProcTimes))
	}
	var sawMailbox, sawRead bool
	for _, pt := range st.ProcTimes {
		if pt.Total < 0 || pt.Compute < 0 {
			t.Fatalf("%s has negative time split: %+v", pt.Process, pt)
		}
		if pt.Total > final {
			t.Fatalf("%s total %v exceeds run time %v", pt.Process, pt.Total, final)
		}
		if sum := pt.Compute + pt.BlockedRead + pt.BlockedWrite + pt.MailboxWait; sum != pt.Total {
			t.Fatalf("%s split does not add up: %+v", pt.Process, pt)
		}
		if pt.MailboxWait > 0 {
			sawMailbox = true
		}
		if pt.BlockedRead > 0 {
			sawRead = true
		}
	}
	if !sawMailbox || !sawRead {
		t.Fatalf("blocked-time attribution missing: mailbox=%v read=%v", sawMailbox, sawRead)
	}
	// Co-Pilot queue metrics exist for both Cell nodes' service processes.
	var queues int
	for _, name := range st.Registry.HistogramNames() {
		if strings.HasPrefix(name, "copilot/") && strings.HasSuffix(name, "/queue_wait_us") {
			queues++
		}
	}
	if queues != 2 {
		t.Fatalf("copilot queue_wait_us histograms = %d, want 2 (%v)", queues, st.Registry.HistogramNames())
	}
}

// E-OBS5: Stats.String renders the metric sections; without a meter the
// report stays in its seed shape.
func TestStatsStringMetricsSections(t *testing.T) {
	meter := NewMeter()
	a, _ := runFiveTypes(t, 2, nil, meter)
	s := a.Stats().String()
	for _, want := range []string{"type1:", "type5:", "latency p50=", "bandwidth p50=", "compute", "mailbox"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Stats.String missing %q:\n%s", want, s)
		}
	}
	b, _ := runFiveTypes(t, 2, nil, nil)
	if s := b.Stats().String(); strings.Contains(s, "latency p50=") || strings.Contains(s, "compute") {
		t.Fatalf("Stats.String shows metric sections without a meter:\n%s", s)
	}
}

// E-OBS6: ConfigDump lists every process, channel and bundle of the
// configured application.
func TestConfigDumpListsConfiguration(t *testing.T) {
	c := newTestCluster(t)
	a := NewApp(c, Options{})
	peer := a.CreateProcessOn(1, "peer", func(ctx *Ctx, _ int, arg any) {
		var v int32
		ctx.Read(arg.(*Channel), "%d", &v)
	}, 0, nil)
	spe := a.CreateSPE(&SPEProgram{Name: "idle", Body: func(ctx *SPECtx) {}}, a.Main(), 0)
	_ = spe
	ch := a.CreateChannel(a.Main(), peer)
	peer.arg = ch
	dump := a.ConfigDump()
	for _, want := range []string{"processes (3):", "PI_MAIN", "peer", "idle#0", "channels (1):", "bundles (0):"} {
		if !strings.Contains(dump, want) {
			t.Fatalf("ConfigDump missing %q:\n%s", want, dump)
		}
	}
	if err := a.Run(func(ctx *Ctx) { ctx.Write(ch, "%d", int32(7)) }); err != nil {
		t.Fatal(err)
	}
}

// E-OBS7: the flight recorder's tail rides on fault diagnostics — a
// degraded run's FaultSummary carries the phase events that led up to the
// failure, and each operation fault carries its own tail.
func TestFaultDiagnosticsCarryFlightTail(t *testing.T) {
	inj := fault.NewInjector(fault.Plan{Seed: 1, Events: []fault.Event{
		{At: 300 * time100us, Kind: fault.KillSPE, Proc: "echo#0"},
	}})
	c := newTestCluster(t)
	a := NewApp(c, Options{Faults: inj, OpTimeout: 50 * sim.Millisecond})
	var down, up *Channel
	victim := a.CreateSPE(&SPEProgram{Name: "echo", Body: func(ctx *SPECtx) {
		buf := make([]int32, 16)
		for r := 0; r < 1000; r++ {
			ctx.Read(down, "%16d", buf)
			ctx.Write(up, "%16d", buf)
		}
	}}, a.Main(), 0)
	down = a.CreateChannel(a.Main(), victim)
	up = a.CreateChannel(victim, a.Main())

	err := a.Run(func(ctx *Ctx) {
		ctx.RunSPE(victim, 0, nil)
		buf := make([]int32, 16)
		for r := 0; r < 1000; r++ {
			ctx.Write(down, "%16d", buf)
			ctx.Read(up, "%16d", buf)
		}
	})
	if err == nil {
		t.Fatal("killed-SPE run returned nil")
	}
	sum, ok := err.(*FaultSummary)
	if !ok {
		t.Fatalf("Run error %T is not a *FaultSummary: %v", err, err)
	}
	if len(sum.FlightTail) == 0 {
		t.Fatal("FaultSummary.FlightTail is empty")
	}
	if !strings.Contains(err.Error(), "flight recorder tail") {
		t.Errorf("summary text lacks the flight tail:\n%v", err)
	}
	tailFaults := 0
	for _, cf := range sum.Faults {
		if len(cf.Tail) > 0 {
			tailFaults++
			if !strings.Contains(cf.Error(), "phase event(s) before the fault") {
				t.Errorf("fault text lacks its tail:\n%v", cf)
			}
		}
	}
	if tailFaults == 0 {
		t.Fatalf("no operation fault carried a flight tail: %v", sum.Faults)
	}
}

const time100us = 100 * sim.Microsecond

// E-OBS8: attaching observability sinks after Run has started is a
// configuration error, and late writes to the public fields are inert —
// Run records through the snapshot taken when it started.
func TestAttachAfterRunRejected(t *testing.T) {
	c := newTestCluster(t)
	a := NewApp(c, Options{})
	// In the configuration phase the checked setters succeed.
	rec := trace.NewRecorder(0)
	if err := a.SetTrace(rec); err != nil {
		t.Fatalf("SetTrace in config phase: %v", err)
	}
	if err := a.SetTrace(nil); err != nil {
		t.Fatalf("SetTrace(nil) in config phase: %v", err)
	}
	var ch *Channel
	peer := a.CreateProcessOn(1, "peer", func(ctx *Ctx, _ int, _ any) {
		var v int32
		ctx.Read(ch, "%d", &v)
		// Execution phase: every checked setter must refuse.
		if err := a.SetTrace(trace.NewRecorder(0)); err == nil {
			t.Error("SetTrace during Run succeeded")
		}
		if err := a.SetMetrics(NewMeter()); err == nil {
			t.Error("SetMetrics during Run succeeded")
		}
		if err := a.SetProfile(profile.New()); err == nil {
			t.Error("SetProfile during Run succeeded")
		}
	}, 0, nil)
	ch = a.CreateChannel(a.Main(), peer)

	lateRec := trace.NewRecorder(0)
	lateMeter := NewMeter()
	err := a.Run(func(ctx *Ctx) {
		// Late direct field writes are inert: the run records through the
		// snapshot bound at Run entry (nil sinks here).
		a.Trace = lateRec
		a.Metrics = lateMeter
		ctx.Write(ch, "%d", int32(7))
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(lateRec.Events()); got != 0 {
		t.Errorf("late-attached recorder captured %d events, want 0", got)
	}
	if got := len(lateMeter.Registry().CounterNames()); got != 0 {
		t.Errorf("late-attached meter has counters %v, want none", lateMeter.Registry().CounterNames())
	}
	// After Run the setters still refuse (the run is over; attach to a new
	// App instead).
	if err := a.SetMetrics(NewMeter()); err == nil {
		t.Error("SetMetrics after Run succeeded")
	}
}

// E-OBS9: congestion telemetry — queue-depth watermarks, Co-Pilot
// utilization and link saturation — lands in Stats and, as gauges, in the
// metric registry.
func TestCongestionTelemetry(t *testing.T) {
	meter := NewMeter()
	a, vt := runFiveTypes(t, 3, nil, meter)
	st := a.Stats()
	if vt <= 0 {
		t.Fatal("no virtual time elapsed")
	}
	busy := 0
	for _, cp := range st.CoPilots {
		if cp.Busy > 0 {
			busy++
			if cp.Utilization <= 0 || cp.Utilization > 1 {
				t.Errorf("copilot@node%d utilization %v out of (0,1]", cp.Node, cp.Utilization)
			}
		}
	}
	if busy == 0 {
		t.Fatal("no Co-Pilot accumulated busy time")
	}
	if len(st.Links) == 0 {
		t.Fatal("no link stats")
	}
	saturated := 0
	for _, lu := range st.Links {
		if lu.Busy > 0 {
			saturated++
		}
	}
	if saturated == 0 {
		t.Fatal("no link accumulated busy time despite remote transfers")
	}
	outHigh := 0
	for _, spe := range st.SPEs {
		if spe.OutMboxHighWater > 0 {
			outHigh++
		}
	}
	if outHigh == 0 {
		t.Fatal("no SPE outbound mailbox ever held a word")
	}
	types := map[ChannelType]bool{}
	for _, ct := range st.ChannelTypes {
		types[ct.Type] = true
	}
	for typ := Type1; typ <= Type5; typ++ {
		if !types[typ] {
			t.Errorf("no metrics for channel %v", typ)
		}
	}
	// The same telemetry is published as gauges.
	gauges := st.Registry.GaugeNames()
	wantPrefixes := []string{"copilot/", "link/", "spe/"}
	for _, p := range wantPrefixes {
		found := false
		for _, g := range gauges {
			if strings.HasPrefix(g, p) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no %s* gauge published; gauges: %v", p, gauges)
		}
	}
}
