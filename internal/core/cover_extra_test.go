package core

import (
	"strings"
	"testing"
)

func TestReduceUnsignedAndMinMaxFloats(t *testing.T) {
	// Covers the unsigned and float min/max reduction kernels.
	c := newTestCluster(t)
	a := NewApp(c, Options{})
	var fromW []*Channel
	uContrib := [][]uint32{{10, 1}, {3, 7}}
	fn := func(ctx *Ctx, index int, _ any) {
		ctx.Write(fromW[index], "%2u", uContrib[index])
	}
	var ws []*Process
	for i := 0; i < 2; i++ {
		ws = append(ws, a.CreateProcessOn(i+1, "w", fn, i, nil))
	}
	for i := 0; i < 2; i++ {
		fromW = append(fromW, a.CreateChannel(ws[i], a.Main()))
	}
	b := a.CreateBundle(BundleReduce, fromW)
	out := make([]uint32, 2)
	if err := a.Run(func(ctx *Ctx) {
		ctx.Reduce(b, "%2u", OpMax, out)
	}); err != nil {
		t.Fatal(err)
	}
	if out[0] != 10 || out[1] != 7 {
		t.Fatalf("uint max = %v", out)
	}

	// Float min path.
	c2 := newTestCluster(t)
	a2 := NewApp(c2, Options{})
	var from2 []*Channel
	fContrib := [][]float32{{1.5, -2}, {-1, 4}}
	fn2 := func(ctx *Ctx, index int, _ any) {
		ctx.Write(from2[index], "%2f", fContrib[index])
	}
	var ws2 []*Process
	for i := 0; i < 2; i++ {
		ws2 = append(ws2, a2.CreateProcessOn(i+1, "w", fn2, i, nil))
	}
	for i := 0; i < 2; i++ {
		from2 = append(from2, a2.CreateChannel(ws2[i], a2.Main()))
	}
	b2 := a2.CreateBundle(BundleReduce, from2)
	fout := make([]float32, 2)
	if err := a2.Run(func(ctx *Ctx) {
		ctx.Reduce(b2, "%2f", OpMin, fout)
	}); err != nil {
		t.Fatal(err)
	}
	if fout[0] != -1 || fout[1] != -2 {
		t.Fatalf("float min = %v", fout)
	}

	// Byte and int16 sum kernels, plus uint min.
	c3 := newTestCluster(t)
	a3 := NewApp(c3, Options{})
	var from3 []*Channel
	fn3 := func(ctx *Ctx, index int, _ any) {
		ctx.Write(from3[index], "%2b %2hd %2u",
			[]byte{byte(index + 1), 2}, []int16{int16(index), -1}, []uint32{uint32(index + 5), 9})
	}
	t.Run("multi-item reduce rejected", func(t *testing.T) {
		var ws3 []*Process
		for i := 0; i < 2; i++ {
			ws3 = append(ws3, a3.CreateProcessOn(i+1, "w", fn3, i, nil))
		}
		for i := 0; i < 2; i++ {
			from3 = append(from3, a3.CreateChannel(ws3[i], a3.Main()))
		}
		b3 := a3.CreateBundle(BundleReduce, from3)
		err := a3.Run(func(ctx *Ctx) {
			ctx.Reduce(b3, "%2b %2hd %2u", OpSum, make([]byte, 2))
		})
		if err == nil || !strings.Contains(err.Error(), "single fixed-count item") {
			t.Fatalf("err = %v", err)
		}
	})
}

func TestReduceByteAndInt16Kernels(t *testing.T) {
	for _, tc := range []struct {
		format string
		write  func(ctx *Ctx, ch *Channel, index int)
		verify func(t *testing.T, out any)
		out    any
	}{
		{
			format: "%2b",
			write: func(ctx *Ctx, ch *Channel, index int) {
				ctx.Write(ch, "%2b", []byte{byte(index + 1), 10})
			},
			out: make([]byte, 2),
			verify: func(t *testing.T, out any) {
				b := out.([]byte)
				if b[0] != 3 || b[1] != 20 {
					t.Fatalf("byte sum = %v", b)
				}
			},
		},
		{
			format: "%2hd",
			write: func(ctx *Ctx, ch *Channel, index int) {
				ctx.Write(ch, "%2hd", []int16{int16(index + 1), -5})
			},
			out: make([]int16, 2),
			verify: func(t *testing.T, out any) {
				v := out.([]int16)
				if v[0] != 3 || v[1] != -10 {
					t.Fatalf("int16 sum = %v", v)
				}
			},
		},
		{
			format: "%2lu",
			write: func(ctx *Ctx, ch *Channel, index int) {
				ctx.Write(ch, "%2lu", []uint64{uint64(index + 1), 1 << 40})
			},
			out: make([]uint64, 2),
			verify: func(t *testing.T, out any) {
				v := out.([]uint64)
				if v[0] != 3 || v[1] != 2<<40 {
					t.Fatalf("uint64 sum = %v", v)
				}
			},
		},
	} {
		c := newTestCluster(t)
		a := NewApp(c, Options{})
		var chans []*Channel
		tc := tc
		fn := func(ctx *Ctx, index int, _ any) { tc.write(ctx, chans[index], index) }
		var ws []*Process
		for i := 0; i < 2; i++ {
			ws = append(ws, a.CreateProcessOn(i+1, "w", fn, i, nil))
		}
		chans = a.CreateChannelsTo(ws, a.Main())
		b := a.CreateBundle(BundleReduce, chans)
		if err := a.Run(func(ctx *Ctx) {
			ctx.Reduce(b, tc.format, OpSum, tc.out)
		}); err != nil {
			t.Fatal(err)
		}
		tc.verify(t, tc.out)
	}
}

func TestSmallAccessors(t *testing.T) {
	c := newTestCluster(t)
	a := NewApp(c, Options{})
	var lsFree int
	prog := &SPEProgram{Name: "acc", Body: func(ctx *SPECtx) {
		if ctx.Index() != 7 {
			ctx.P.Fatalf("index = %d", ctx.Index())
		}
		lsFree = ctx.LSFree()
		ctx.Log("spe log line")
	}}
	spe := a.CreateSPE(prog, a.Main(), 7)
	logged := 0
	a.Logf = func(string, ...any) { logged++ }
	err := a.Run(func(ctx *Ctx) {
		if ctx.Index() != 0 || ctx.Arg() != nil {
			ctx.P.Fatalf("main ctx accessors wrong")
		}
		ctx.RunSPE(spe, 0, nil)
	})
	if err != nil {
		t.Fatal(err)
	}
	if lsFree <= 0 || lsFree >= 256*1024 {
		t.Fatalf("LSFree = %d", lsFree)
	}
	if logged != 1 {
		t.Fatalf("logged = %d", logged)
	}
	if ReduceOp(99).String() == "" || OpSum.String() != "sum" || OpMin.String() != "min" || OpMax.String() != "max" {
		t.Fatal("ReduceOp strings wrong")
	}
	if BundleScatter.String() != "scatter" || BundleReduce.String() != "reduce" {
		t.Fatal("bundle kind strings wrong")
	}
}

func TestPPEWriterSPEReaderFormatMismatch(t *testing.T) {
	// validateIncoming's signature branch: PPE writes %d, SPE reads %f.
	c := newTestCluster(t)
	a := NewApp(c, Options{})
	var ch *Channel
	prog := &SPEProgram{Name: "wrongfmt", Body: func(ctx *SPECtx) {
		var f float32
		ctx.Read(ch, "%f", &f)
	}}
	spe := a.CreateSPE(prog, a.Main(), 0)
	ch = a.CreateChannel(a.Main(), spe)
	err := a.Run(func(ctx *Ctx) {
		ctx.RunSPE(spe, 0, nil)
		ctx.Write(ch, "%d", int32(1))
	})
	if err == nil || !strings.Contains(err.Error(), "format mismatch") {
		t.Fatalf("err = %v", err)
	}
}

func TestConfigDump(t *testing.T) {
	c := newTestCluster(t)
	a := NewApp(c, Options{})
	w := a.CreateProcessOn(1, "worker", func(*Ctx, int, any) {}, 0, nil)
	spe := a.CreateSPE(&SPEProgram{Name: "kern", Body: func(*SPECtx) {}}, a.Main(), 0)
	ch := a.CreateChannel(a.Main(), w)
	a.CreateChannel(spe, a.Main())
	a.CreateBundle(BundleBroadcast, []*Channel{ch})
	dump := a.ConfigDump()
	for _, want := range []string{"processes (3)", "channels (2)", "bundles (1)",
		"PI_MAIN", "SPE (parent PI_MAIN)", "broadcast"} {
		if !strings.Contains(dump, want) {
			t.Fatalf("dump missing %q:\n%s", want, dump)
		}
	}
}

func TestSPEPanicBecomesError(t *testing.T) {
	c := newTestCluster(t)
	a := NewApp(c, Options{})
	prog := &SPEProgram{Name: "crash", Body: func(ctx *SPECtx) {
		panic("SPU halted")
	}}
	spe := a.CreateSPE(prog, a.Main(), 0)
	err := a.Run(func(ctx *Ctx) {
		ctx.RunSPE(spe, 0, nil)
	})
	if err == nil || !strings.Contains(err.Error(), "SPU halted") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunSPEProgramTooBig(t *testing.T) {
	c := newTestCluster(t)
	a := NewApp(c, Options{})
	prog := &SPEProgram{Name: "fat", CodeSize: 300 * 1024, Body: func(*SPECtx) {}}
	spe := a.CreateSPE(prog, a.Main(), 0)
	err := a.Run(func(ctx *Ctx) {
		ctx.RunSPE(spe, 0, nil)
	})
	if err == nil || !strings.Contains(err.Error(), "local store overflow") {
		t.Fatalf("err = %v", err)
	}
}
