package core

import (
	"errors"
	"fmt"
	"strings"

	"cellpilot/internal/fault"
	"cellpilot/internal/mpi"
	"cellpilot/internal/sim"
)

// This file is the Pilot-level half of the fault story: the injector
// (internal/fault) decides what breaks; the code here decides what the
// application sees. The contract is graceful degradation — a dead SPE,
// Co-Pilot, or node poisons exactly the channels whose transfer path
// touches it, operations on poisoned channels fail with a structured
// ChannelFault carrying a Pilot-style file:line, the faulted process
// unwinds cleanly, unaffected processes run to completion, and App.Run
// returns a FaultSummary instead of panicking.
//
// Everything here is gated on App.hardened(): with no injector and no
// OpTimeout, every operation takes the exact pre-existing code path and
// the virtual timeline is bit-identical to an unhardened build.

// ChannelFault is the structured error a channel operation fails with
// when its channel was poisoned by a fault, or when it exceeded its
// deadline. It is returned by TryRead/TryWrite and recorded (with the
// failing process unwound) for blocking Read/Write.
type ChannelFault struct {
	// Loc is the user call site of the failing operation ("file.go:42").
	Loc string
	// API names the operation (PI_Read, PI_Write, ...).
	API string
	// Channel describes the faulted channel; ChannelID is its id.
	Channel   string
	ChannelID int
	// Reason says what went wrong ("SPE worker#1 died: killed by fault
	// injection", "operation timed out", ...).
	Reason string
	// Timeout marks deadline expiry (Options.OpTimeout or a Try* bound)
	// rather than a poisoned channel.
	Timeout bool
	// InCycle reports whether, at timeout, the operation was part of a
	// circular wait the deadlock service could see; CycleDetail then
	// carries the cycle diagnostic. When false, CycleDetail explains what
	// the service knew (merely slow, faulted peer, detection off).
	InCycle     bool
	CycleDetail string
	// Tail is the flight recorder's view of the phase events that led up
	// to the fault (most recent last), attached automatically when the
	// fault is raised.
	Tail []string
}

// faultTailDepth is how many flight-recorder lines ride on a single
// ChannelFault; faultSummaryTailDepth is the (longer) tail attached to
// the run-level FaultSummary.
const (
	faultTailDepth        = 16
	faultSummaryTailDepth = 32
)

// Error implements error in the Pilot diagnostic style.
func (f *ChannelFault) Error() string {
	s := fmt.Sprintf("pilot: %s: %s: channel fault on %s: %s", f.Loc, f.API, f.Channel, f.Reason)
	if f.CycleDetail != "" {
		s += "\n  " + f.CycleDetail
	}
	if len(f.Tail) > 0 {
		s += fmt.Sprintf("\n  last %d phase event(s) before the fault:", len(f.Tail))
		for _, line := range f.Tail {
			s += "\n    " + line
		}
	}
	return s
}

// FaultSummary is what App.Run returns when the run completed in degraded
// mode: every surviving process ran to completion, but faults killed
// processes and/or failed channel operations along the way.
type FaultSummary struct {
	// Faults are the channel-operation failures, in occurrence order.
	Faults []*ChannelFault
	// Killed lists the processes (and Co-Pilots) terminated by injection.
	Killed []string
	// FlightTail is the flight recorder's tail at the end of the run: the
	// last phase events across all channels, for post-mortem context.
	FlightTail []string
}

// Error implements error.
func (s *FaultSummary) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "pilot: run completed degraded: %d process(es) killed, %d channel operation fault(s)",
		len(s.Killed), len(s.Faults))
	for _, k := range s.Killed {
		fmt.Fprintf(&b, "\n  killed: %s", k)
	}
	for _, f := range s.Faults {
		fmt.Fprintf(&b, "\n  fault: %v", f)
	}
	if len(s.FlightTail) > 0 {
		fmt.Fprintf(&b, "\n  flight recorder tail (%d event(s)):", len(s.FlightTail))
		for _, line := range s.FlightTail {
			fmt.Fprintf(&b, "\n    %s", line)
		}
	}
	return b.String()
}

// procFault unwinds exactly one process out of a failed blocking channel
// operation; the spawn wrappers recover it, record the fault, and let the
// process's normal end-of-life bookkeeping (userDone, meters) run.
type procFault struct {
	cf *ChannelFault
}

// hardened reports whether any fault machinery is armed. Every divergence
// from the plain code paths is gated on it.
func (a *App) hardened() bool {
	return a.opts.Faults != nil || a.opts.OpTimeout > 0
}

// mailboxHardened reports whether the SPE↔Co-Pilot mailbox protocol must
// carry sequence numbers and ACKs (the plan injects mailbox word faults).
func (a *App) mailboxHardened() bool {
	return a.opts.Faults != nil && a.opts.Faults.UsesMailbox()
}

// opDeadline resolves the absolute deadline for one operation: an
// explicit Try* timeout wins, else Options.OpTimeout, else none.
func (a *App) opDeadline(now sim.Time, soft sim.Time) sim.Time {
	if soft > 0 {
		return now + soft
	}
	if a.opts.OpTimeout > 0 {
		return now + a.opts.OpTimeout
	}
	return 0
}

// watchChannel registers p as blocked on ch so failChannel can wake it;
// the returned func unregisters.
func (a *App) watchChannel(ch *Channel, p *sim.Proc) func() {
	if a.chanWaiters == nil {
		a.chanWaiters = map[int][]*sim.Proc{}
	}
	a.chanWaiters[ch.id] = append(a.chanWaiters[ch.id], p)
	return func() {
		ws := a.chanWaiters[ch.id]
		for i, w := range ws {
			if w == p {
				a.chanWaiters[ch.id] = append(ws[:i], ws[i+1:]...)
				return
			}
		}
	}
}

// chanStop is the stop predicate hardened blocking operations pass down:
// it fires as soon as the channel is poisoned.
func (a *App) chanStop(ch *Channel) func() error {
	return func() error {
		if ch.fault != nil {
			return ch.fault
		}
		return nil
	}
}

// failChannel poisons ch (sticky; the first reason wins) and wakes every
// process blocked on it so their stop predicates can fire.
func (a *App) failChannel(ch *Channel, reason string) {
	if ch.fault != nil {
		return
	}
	ch.fault = &ChannelFault{
		Loc: "runtime", API: "channel",
		Channel: ch.String(), ChannelID: ch.id, Reason: reason,
	}
	if inj := a.opts.Faults; inj != nil {
		inj.Counts.ChannelFaults++
		inj.Logf(a.K.Now(), "poison %s: %s", ch, reason)
	}
	for _, p := range a.chanWaiters[ch.id] {
		a.K.ReadyIfParked(p)
	}
	// Wake the Co-Pilots so they shed queued requests on this channel
	// (and from dead processes) instead of sleeping on them.
	for _, key := range a.copilotOrder {
		a.copilots[key].nudge()
	}
}

// opFault converts a low-level abandonment error (poisoned channel,
// deadline expiry) into the operation's ChannelFault.
func (a *App) opFault(loc, api string, proc *Process, ch *Channel, err error) *ChannelFault {
	var base *ChannelFault
	if errors.As(err, &base) {
		cp := *base
		cp.Loc, cp.API = loc, api
		cp.Tail = a.flight.TailLines(faultTailDepth)
		return &cp
	}
	if errors.Is(err, sim.ErrTimeout) || errors.Is(err, mpi.ErrDeadline) {
		a.opTimeouts++
		if inj := a.opts.Faults; inj != nil {
			inj.Counts.OpTimeouts++
		}
		inCycle, detail := a.timeoutDetail(proc)
		return &ChannelFault{
			Loc: loc, API: api, Channel: ch.String(), ChannelID: ch.id,
			Reason: "operation timed out", Timeout: true,
			InCycle: inCycle, CycleDetail: detail,
			Tail: a.flight.TailLines(faultTailDepth),
		}
	}
	return &ChannelFault{
		Loc: loc, API: api, Channel: ch.String(), ChannelID: ch.id,
		Reason: err.Error(), Tail: a.flight.TailLines(faultTailDepth),
	}
}

// timeoutDetail asks the deadlock service what it knows about the timed
// out process: part of a detected circular wait, or merely slow/faulted.
func (a *App) timeoutDetail(proc *Process) (inCycle bool, detail string) {
	if a.svc == nil {
		return false, "deadlock detection is off; the peer is slow, dead, or the link is faulted"
	}
	if cyc := a.svc.det.CycleThrough(proc.id); cyc != nil {
		return true, "the blocked operation is part of a detected circular wait:\n  " +
			strings.ReplaceAll(cyc.Error(), "\n", "\n  ")
	}
	if loc, ok := a.svc.det.WaitLoc(proc.id); ok {
		where := ""
		if loc != "" {
			where = fmt.Sprintf(" (blocked at %s)", loc)
		}
		return false, "not part of any detected wait cycle" + where + "; the peer is slow, dead, or the link is faulted"
	}
	return false, "no wait-for edge recorded for this operation; the peer is slow, dead, or the link is faulted"
}

// raiseFault ends the calling process with cf: blocking Read/Write have
// no error return (Pilot's API), so a hard fault unwinds the process; the
// spawn wrapper's recover records it. A hard timeout also poisons the
// channel — the operation died mid-protocol, the channel state is gone.
func (a *App) raiseFault(proc *Process, ch *Channel, cf *ChannelFault, blocked bool) {
	if blocked {
		a.reportUnblock(proc)
	}
	if cf.Timeout && ch != nil {
		a.failChannel(ch, fmt.Sprintf("%s at %s timed out in %s", cf.API, cf.Loc, proc))
	}
	panic(procFault{cf: cf})
}

// recoverFault is installed (last, so it runs first) in every process
// spawn wrapper: it absorbs procFault panics, records the fault, and lets
// the remaining deferred bookkeeping run; anything else keeps unwinding.
func (a *App) recoverFault(proc *Process) {
	r := recover()
	if r == nil {
		return
	}
	pf, ok := r.(procFault)
	if !ok {
		panic(r)
	}
	a.faults = append(a.faults, pf.cf)
	if inj := a.opts.Faults; inj != nil {
		inj.Logf(a.K.Now(), "process %s unwound: %v", proc, pf.cf)
	}
}

// applyFault is the injector's OnEvent callback (scheduler context).
func (a *App) applyFault(e fault.Event) {
	if tl := a.obs.tline; tl != nil {
		target := e.Proc
		if e.Kind != fault.KillSPE {
			target = fmt.Sprintf("node%d", e.Node)
		}
		tl.NoteFault(a.K.Now(), fmt.Sprintf("%s(%s)", e.Kind, target))
	}
	switch e.Kind {
	case fault.KillSPE:
		for _, p := range a.procs {
			if p.IsSPE() && p.name == e.Proc {
				a.killProcess(p, "killed by fault injection")
			}
		}
	case fault.KillCoPilot:
		for _, key := range a.copilotOrder {
			if key.node == e.Node {
				a.killCopilot(a.copilots[key], "killed by fault injection")
			}
		}
	case fault.CrashNode:
		reason := fmt.Sprintf("node %d crashed", e.Node)
		for _, p := range a.procs {
			if p.nodeID == e.Node {
				a.killProcess(p, reason)
			}
		}
		for _, key := range a.copilotOrder {
			if key.node == e.Node {
				a.killCopilot(a.copilots[key], reason)
			}
		}
	}
}

// killProcess terminates one Pilot process and poisons every channel
// bound to it. The sim-level Kill unwinds the proc at its next park or
// advance; its deferred bookkeeping (userDone, meters) still runs.
func (a *App) killProcess(proc *Process, reason string) {
	if proc.dead {
		return
	}
	proc.dead = true
	a.killed = append(a.killed, fmt.Sprintf("%s: %s", proc, reason))
	if inj := a.opts.Faults; inj != nil {
		inj.Counts.ProcsKilled++
		inj.Logf(a.K.Now(), "kill %s: %s", proc, reason)
	}
	a.reportUnblock(proc)
	for _, ch := range a.chans {
		if ch.From == proc || ch.To == proc {
			a.failChannel(ch, fmt.Sprintf("%s died: %s", proc, reason))
		}
	}
	if proc.simProc != nil {
		proc.simProc.Kill()
	}
}

// killCopilot terminates a Co-Pilot service process. Every channel whose
// transfer path runs through it is poisoned; the SPEs it served survive
// unless they touch those channels.
func (a *App) killCopilot(cp *copilot, reason string) {
	if cp == nil || cp.dead {
		return
	}
	cp.dead = true
	a.killed = append(a.killed, fmt.Sprintf("%s: %s", cp.rank.Label(), reason))
	if inj := a.opts.Faults; inj != nil {
		inj.Counts.ProcsKilled++
		inj.Logf(a.K.Now(), "kill %s: %s", cp.rank.Label(), reason)
	}
	for _, ch := range a.chans {
		if (ch.From.IsSPE() && a.copilotFor(ch.From) == cp) ||
			(ch.To.IsSPE() && a.copilotFor(ch.To) == cp) {
			a.failChannel(ch, fmt.Sprintf("co-pilot %s died: %s", cp.rank.Label(), reason))
		}
	}
	if cp.proc != nil {
		cp.proc.Kill()
	}
}

// ChannelFaults returns the channel-operation faults recorded so far, in
// occurrence order.
func (a *App) ChannelFaults() []*ChannelFault {
	return append([]*ChannelFault(nil), a.faults...)
}

// KilledProcs lists the processes terminated by fault injection.
func (a *App) KilledProcs() []string { return append([]string(nil), a.killed...) }

// FaultLog returns the injector's timestamped fault log (nil without an
// injector) — the determinism fingerprint of a chaos run.
func (a *App) FaultLog() []string {
	if a.opts.Faults == nil {
		return nil
	}
	return a.opts.Faults.Log()
}

// faultSummary builds the Run return value for a degraded-but-completed
// run; nil when nothing went wrong.
func (a *App) faultSummary() error {
	if len(a.faults) == 0 && len(a.killed) == 0 {
		return nil
	}
	return &FaultSummary{
		Faults:     append([]*ChannelFault(nil), a.faults...),
		Killed:     append([]string(nil), a.killed...),
		FlightTail: a.flight.TailLines(faultSummaryTailDepth),
	}
}

// --- mailbox protocol hardening (sequence numbers + ACK/NACK) ---

// Completion statuses beyond speStatusOK, used only in hardened runs.
// ACK/NACK words carry the descriptor's 4-bit sequence number in the low
// bits so stubs can discard strays from reposted descriptors.
const (
	speStatusFault    uint32 = 0xF0F0F00F
	speStatusAckBase  uint32 = 0xA5A50000
	speStatusNackBase uint32 = 0x5A5A0000
	speStatusKindMask uint32 = 0xFFFF0000
	speSeqMask        uint32 = 0xF
)

func speAck(seq uint32) uint32  { return speStatusAckBase | (seq & speSeqMask) }
func speNack(seq uint32) uint32 { return speStatusNackBase | (seq & speSeqMask) }

// isAckNack reports whether an inbound-mailbox word is a descriptor
// ACK/NACK rather than a completion status.
func isAckNack(v uint32) bool {
	k := v & speStatusKindMask
	return k == speStatusAckBase || k == speStatusNackBase
}

// Hardened-mode word0 layout: op(4) | seq(4) | chan(24). The plain-mode
// layout (op(4) | chan(28), reqWord0) is kept bit-identical for clean
// runs; both sides switch on mailboxHardened().
func reqWord0Seq(op speOpcode, seq uint32, chanID int) uint32 {
	if chanID < 0 || chanID >= 1<<24 {
		panic(fmt.Sprintf("core: channel id %d does not fit a sequenced mailbox word", chanID))
	}
	return uint32(op)<<28 | (seq&speSeqMask)<<24 | uint32(chanID)
}

func parseWord0Seq(w uint32) (op speOpcode, seq uint32, chanID int) {
	return speOpcode(w >> 28), (w >> 24) & speSeqMask, int(w & (1<<24 - 1))
}

// descTimeout bounds the Co-Pilot's wait for each of descriptor words
// 1-3 once word0 arrived; generous against mailbox stalls, small against
// run time.
func (a *App) descTimeout() sim.Time {
	if d := a.par.CoPilotPoll; d > 0 {
		return 16 * d
	}
	return 200 * sim.Microsecond
}

// ackTimeout bounds the stub's wait for the Co-Pilot's descriptor ACK
// before reposting. It deliberately exceeds descTimeout (per word) so a
// NACK normally arrives first; an overdue ACK leads to a repost that the
// Co-Pilot's sequence check discards as a duplicate.
func (a *App) ackTimeout() sim.Time {
	return 4*a.descTimeout() + 64*a.par.MailboxWrite
}

// maxReposts bounds descriptor repost attempts before the stub declares
// the channel dead.
const maxReposts = 8
