package core

import (
	"fmt"
	"strings"
	"testing"

	"cellpilot/internal/fault"
	"cellpilot/internal/sim"
	"cellpilot/internal/trace"
)

// runType1Bounce runs one type-1 round trip of the given payload size
// between the main PPE (node 0) and a PPE on node 1, optionally under a
// fault plan and soft timeouts, and reports the round-trip outcome.
type bounceResult struct {
	vt       sim.Time
	writeErr string
	readErr  string
	faulted  bool
	got      []byte
}

func runType1Bounce(t *testing.T, bytes int, opts Options, rec *trace.Recorder, timeout sim.Time) bounceResult {
	t.Helper()
	c := newTestCluster(t)
	a := NewApp(c, opts)
	a.Trace = rec
	format := fmt.Sprintf("%%%db", bytes)
	msg := make([]byte, bytes)
	for i := range msg {
		msg[i] = byte(i*7 + 1)
	}
	var res bounceResult
	res.got = make([]byte, bytes)
	var ab, ba *Channel
	peer := a.CreateProcessOn(1, "bounce_peer", func(ctx *Ctx, _ int, _ any) {
		buf := make([]byte, bytes)
		if timeout > 0 {
			if ctx.TryRead(ab, timeout, format, buf) != nil {
				return
			}
			ctx.TryWrite(ba, timeout, format, buf)
			return
		}
		ctx.Read(ab, format, buf)
		ctx.Write(ba, format, buf)
	}, 0, nil)
	ab = a.CreateChannel(a.Main(), peer)
	ba = a.CreateChannel(peer, a.Main())
	err := a.Run(func(ctx *Ctx) {
		if timeout > 0 {
			if err := ctx.TryWrite(ab, timeout, format, msg); err != nil {
				res.writeErr = err.Error()
			}
			if err := ctx.TryRead(ba, timeout, format, res.got); err != nil {
				res.readErr = err.Error()
			}
			return
		}
		ctx.Write(ab, format, msg)
		ctx.Read(ba, format, res.got)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	res.vt = a.K.Now()
	res.faulted = ab.Fault() != nil || ba.Fault() != nil
	if res.writeErr == "" && res.readErr == "" {
		for i := range msg {
			if res.got[i] != msg[i] {
				t.Fatalf("payload corrupted at %d: got %d want %d", i, res.got[i], msg[i])
			}
		}
	}
	return res
}

// countChunkRelay counts recorded chunk-relay phases across all spans.
func countChunkRelay(rec *trace.Recorder) int {
	n := 0
	for _, sp := range rec.Spans() {
		for _, ph := range sp.Phases {
			if ph.Phase == trace.PhaseChunkRelay {
				n++
			}
		}
	}
	return n
}

// E-TR1: with the engine disabled (zero ChunkSize), the other knobs are
// inert — the virtual timeline is bit-for-bit the pre-engine one no matter
// what PipelineDepth/EagerMax/ZeroCopyType4 the options carry alongside a
// zero ChunkSize... except ZeroCopyType4, which is its own independent
// switch and must be off too for strict equality.
func TestTransferDisabledZeroCost(t *testing.T) {
	_, bare := runFiveTypesOpts(t, 2, nil, nil, Options{})
	_, knobs := runFiveTypesOpts(t, 2, nil, nil, Options{
		Transfer: TransferOptions{ChunkSize: 0, PipelineDepth: 9, EagerMax: 123},
	})
	if bare != knobs {
		t.Fatalf("zero ChunkSize is not inert: bare=%v with-knobs=%v", bare, knobs)
	}
}

// E-TR2: the eager/stream boundary sits exactly at EagerMax on-wire bytes:
// hdrSize+wire == EagerMax stays on the plain path, one byte more streams.
// Both deliver the payload intact.
func TestTransferEagerBoundary(t *testing.T) {
	opts := Options{Transfer: TransferOptions{ChunkSize: 4096}}
	eagerMax := 4096 // default: Params.EagerThreshold

	recAt := trace.NewRecorder(0)
	runType1Bounce(t, eagerMax-hdrSize, opts, recAt, 0)
	if n := countChunkRelay(recAt); n != 0 {
		t.Fatalf("wire size == EagerMax took the chunked path (%d chunk-relay phases)", n)
	}

	recOver := trace.NewRecorder(0)
	runType1Bounce(t, eagerMax-hdrSize+1, opts, recOver, 0)
	if n := countChunkRelay(recOver); n == 0 {
		t.Fatal("wire size == EagerMax+1 did not take the chunked path")
	}
}

// E-TR3: a chunked transfer is deterministic and faster than the
// store-and-forward rendezvous it replaces at large sizes.
func TestTransferChunkedFasterAndDeterministic(t *testing.T) {
	const bytes = 65536
	base := runType1Bounce(t, bytes, Options{}, nil, 0)
	c1 := runType1Bounce(t, bytes, Options{Transfer: TransferOptions{ChunkSize: 8192}}, nil, 0)
	c2 := runType1Bounce(t, bytes, Options{Transfer: TransferOptions{ChunkSize: 8192}}, nil, 0)
	if c1.vt != c2.vt {
		t.Fatalf("chunked run not deterministic: %v vs %v", c1.vt, c2.vt)
	}
	if c1.vt >= base.vt {
		t.Fatalf("chunked %dB round trip (%v) not faster than baseline (%v)", bytes, c1.vt, base.vt)
	}
}

// E-TR4: a link that dies mid-pipeline poisons the channel instead of
// delivering a torn payload, and the outcome is deterministic.
func TestTransferLinkFaultMidStream(t *testing.T) {
	once := func() bounceResult {
		plan := fault.Plan{Seed: 3, Links: []fault.LinkPolicy{
			{From: 0, To: 1, DropProb: 1, After: 500 * sim.Microsecond},
			{From: 1, To: 0, DropProb: 1, After: 500 * sim.Microsecond},
		}}
		return runType1Bounce(t, 65536, Options{
			Faults:   fault.NewInjector(plan),
			Transfer: TransferOptions{ChunkSize: 8192},
		}, nil, 20*sim.Millisecond)
	}
	r1 := once()
	r2 := once()
	if r1.readErr == "" {
		t.Fatal("reader completed across a dead link")
	}
	if !r1.faulted {
		t.Fatal("mid-stream link death did not poison the channel")
	}
	// The torn payload must never reach the reader's buffer.
	for i, b := range r1.got {
		if b != 0 {
			t.Fatalf("torn payload leaked into the reader's buffer at %d", i)
		}
	}
	if r1.vt != r2.vt || r1.writeErr != r2.writeErr || r1.readErr != r2.readErr {
		t.Fatalf("faulted chunked run not deterministic:\n%v %q %q\n%v %q %q",
			r1.vt, r1.writeErr, r1.readErr, r2.vt, r2.writeErr, r2.readErr)
	}
	if !strings.Contains(r1.readErr, "channel") && !strings.Contains(r1.readErr, "deadline") {
		t.Errorf("reader error does not look like a channel fault: %q", r1.readErr)
	}
}

// E-TR5: the zero-copy type-4 fast path moves large local SPE↔SPE payloads
// over the EIB instead of through the Co-Pilot's mapped-LS memcpy, and is
// substantially faster for DMA-sized payloads.
func TestTransferZeroCopyType4(t *testing.T) {
	run := func(opts Options) sim.Time {
		c := newTestCluster(t)
		a := NewApp(c, opts)
		const n = 4096
		format := fmt.Sprintf("%%%dd", n/4)
		var ab, ba *Channel
		echo := &SPEProgram{Name: "zc_echo", Body: func(ctx *SPECtx) {
			buf := make([]int32, n/4)
			ctx.Read(ab, format, buf)
			ctx.Write(ba, format, buf)
		}}
		initp := &SPEProgram{Name: "zc_init", Body: func(ctx *SPECtx) {
			buf := make([]int32, n/4)
			for i := range buf {
				buf[i] = int32(i)
			}
			ctx.Write(ab, format, buf)
			got := make([]int32, n/4)
			ctx.Read(ba, format, got)
			for i := range got {
				if got[i] != int32(i) {
					ctx.P.Fatalf("corrupted at %d", i)
				}
			}
		}}
		s1 := a.CreateSPE(initp, a.Main(), 0)
		s2 := a.CreateSPE(echo, a.Main(), 1)
		ab = a.CreateChannel(s1, s2)
		ba = a.CreateChannel(s2, s1)
		if err := a.Run(func(ctx *Ctx) {
			ctx.RunSPE(s1, 0, nil)
			ctx.RunSPE(s2, 0, nil)
		}); err != nil {
			t.Fatal(err)
		}
		return a.K.Now()
	}
	base := run(Options{})
	zc := run(Options{Transfer: TransferOptions{ZeroCopyType4: true}})
	if zc >= base {
		t.Fatalf("zero-copy type 4 (%v) not faster than mapped memcpy (%v)", zc, base)
	}
}
