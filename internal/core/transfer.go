package core

import (
	"fmt"

	"cellpilot/internal/cellbe"
	"cellpilot/internal/sim"
)

// This file is the chunked transfer engine: the size-adaptive protocol
// split that replaces whole-payload store-and-forward for large internode
// messages. Small messages (wire size ≤ the eager bound) keep the exact
// paper-faithful path; large type-1/3/5 payloads are announced with a
// stream header and then pipelined in fixed-size chunks, so chunk k's MPI
// stack serialization overlaps chunk k+1's LS↔EA DMA and the wire time of
// the chunks already in flight. The zero value of TransferOptions disables
// all of it, and a disabled engine reproduces the pre-engine virtual
// timeline bit for bit.

// TransferOptions tune the transfer engine. The zero value is the
// paper-faithful configuration: no chunking, no zero-copy type-4 path.
type TransferOptions struct {
	// ChunkSize, when positive, enables the pipelined chunk protocol for
	// internode transfers (channel types 1, 3 and 5) whose on-wire size
	// exceeds the eager bound; payloads move as ceil(size/ChunkSize)
	// chunks. Zero disables chunking entirely.
	ChunkSize int
	// PipelineDepth bounds how many chunks may be in flight (injected but
	// not yet arrived) at once; chunk k is injected only after chunk
	// k-PipelineDepth has arrived. Zero means the default of 4.
	PipelineDepth int
	// EagerMax is the on-wire size (header + payload) at or below which a
	// chunk-eligible transfer still takes the plain eager path. Zero means
	// Params.EagerThreshold, so exactly the messages that would rendezvous
	// are the ones that stream.
	EagerMax int
	// ZeroCopyType4 routes type-4 (SPE ↔ local SPE) copies through an
	// LS-window→LS-window DMA over the EIB instead of the Co-Pilot's mapped
	// local-store memcpy — the B3 fast path.
	ZeroCopyType4 bool
}

// defaultPipelineDepth is the in-flight chunk window when
// TransferOptions.PipelineDepth is zero.
const defaultPipelineDepth = 4

// chunkingOn reports whether the chunk protocol is enabled at all.
func (a *App) chunkingOn() bool { return a.opts.Transfer.ChunkSize > 0 }

// transferEagerMax is the on-wire size at or below which chunk-eligible
// transfers stay on the plain path.
func (a *App) transferEagerMax() int {
	if e := a.opts.Transfer.EagerMax; e > 0 {
		return e
	}
	return a.par.EagerThreshold
}

// pipeDepth is the effective in-flight chunk window.
func (a *App) pipeDepth() int {
	if d := a.opts.Transfer.PipelineDepth; d > 0 {
		return d
	}
	return defaultPipelineDepth
}

// streamEligible reports whether ch could ever carry a chunk stream: the
// engine is on, the channel crosses nodes, and its type moves payloads
// over the interconnect (types 2 and 4 are intra-node by construction).
func (a *App) streamEligible(ch *Channel) bool {
	if !a.chunkingOn() {
		return false
	}
	switch ch.typ {
	case Type1, Type3, Type5:
	default:
		return false
	}
	return ch.From.nodeID != ch.To.nodeID
}

// chunked is the protocol split both endpoints compute independently: a
// transfer streams exactly when the channel is eligible and its on-wire
// size exceeds the eager bound. Writer and reader agree because Pilot
// already requires their sizes to agree (a mismatch is a format error).
func (a *App) chunked(ch *Channel, wireLen int) bool {
	return a.streamEligible(ch) && hdrSize+wireLen > a.transferEagerMax()
}

// dmaRes returns the per-SPE MFC DMA engine resource the chunk pipeline
// books LS↔EA moves on. Modelling it as a resource (rather than advancing
// the Co-Pilot) is what lets a chunk's DMA overlap the previous chunk's
// stack injection; one resource per SPE keeps concurrent streams from
// different SPEs independent while serializing one SPE's own chunks.
func (a *App) dmaRes(spe *cellbe.SPE) *sim.Resource {
	if a.speDMA == nil {
		a.speDMA = map[*cellbe.SPE]*sim.Resource{}
	}
	r, ok := a.speDMA[spe]
	if !ok {
		r = sim.NewResource(a.K, "mfc-dma", 0, 0, 0)
		a.speDMA[spe] = r
	}
	return r
}

// streamTagOffset lifts a channel's stream traffic into its own tag space,
// so a chunk stream never matches a plain receive on the channel tag (and
// vice versa). Header and chunks share the stream tag: MPI non-overtaking
// per (source, tag) plus the reliability layer's strict in-order delivery
// guarantee the header arrives first and the chunks arrive in index order.
const streamTagOffset = 1 << 20

// streamTag is the MPI tag carrying ch's stream header and chunks.
func (c *Channel) streamTag() int { return streamTagOffset + userTagBase + c.id }

// Stream header: 16 bytes announcing a chunk stream — format signature,
// payload wire size, chunk size, chunk count. Small enough to always be
// eager, so sending it never blocks on the reader.
const streamHdrSize = 16

// chunkIdxSize prefixes every chunk with its big-endian index. Delivery
// order is already guaranteed; the index is an integrity assertion.
const chunkIdxSize = 4

func streamHeader(sig uint32, size, chunkBytes, nchunks int) []byte {
	b := make([]byte, streamHdrSize)
	be32(b[0:], sig)
	be32(b[4:], uint32(size))
	be32(b[8:], uint32(chunkBytes))
	be32(b[12:], uint32(nchunks))
	return b
}

func parseStreamHeader(b []byte) (sig uint32, size, chunkBytes, nchunks int) {
	return rd32(b[0:]), int(rd32(b[4:])), int(rd32(b[8:])), int(rd32(b[12:]))
}

func be32(b []byte, v uint32) {
	b[0] = byte(v >> 24)
	b[1] = byte(v >> 16)
	b[2] = byte(v >> 8)
	b[3] = byte(v)
}

func rd32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

// appendChunkFrame appends one chunk frame (index prefix + payload) to buf.
func appendChunkFrame(buf []byte, idx int, payload []byte) []byte {
	buf = append(buf, byte(idx>>24), byte(idx>>16), byte(idx>>8), byte(idx))
	return append(buf, payload...)
}

// parseChunkFrame splits a chunk frame into its index and payload.
func parseChunkFrame(data []byte) (idx int, payload []byte, ok bool) {
	if len(data) <= chunkIdxSize {
		return 0, nil, false
	}
	return int(rd32(data)), data[chunkIdxSize:], true
}

// chunkCount is the number of chunks an n-byte payload splits into.
func chunkCount(n, chunk int) int { return (n + chunk - 1) / chunk }

// chunkLen is the length of chunk k of an n-byte payload.
func chunkLen(n, chunk, k int) int {
	if rem := n - k*chunk; rem < chunk {
		return rem
	}
	return chunk
}

// streamSend is the writer-side state of one in-progress chunk stream
// (held on the Co-Pilot's speReq; the PPE writer streams inline and needs
// no persistent state).
type streamSend struct {
	dst      int // destination rank
	nchunks  int
	next     int        // next chunk index to inject
	arrivals []sim.Time // nominal arrival time of each injected chunk
	dmaAt    []sim.Time // per-chunk LS→EA fetch completion (one DMA list)
	startAt  sim.Time   // for the chunk-relay span
}

// streamRecv is the reader-side state of one in-progress chunk stream.
type streamRecv struct {
	src     int // source rank
	chunk   int // chunk size announced by the header
	nchunks int
	got     int      // chunks landed in the LS window
	dmaDone sim.Time // completion of the last chunk's EA→LS DMA
	startAt sim.Time
}

// reqQueue is the Co-Pilot's pending-request queue: slice semantics (stable
// logical order, indexed access) with an amortized-O(1) front removal via a
// head cursor, instead of the old per-removal slice shift.
type reqQueue struct {
	items []*speReq
	head  int
}

func (q *reqQueue) size() int        { return len(q.items) - q.head }
func (q *reqQueue) at(i int) *speReq { return q.items[q.head+i] }
func (q *reqQueue) push(req *speReq) { q.items = append(q.items, req) }

// removeAt drops the request at logical index i. The front (the common
// case: requests are serviced oldest-first) just advances the cursor; the
// backlog is compacted once the dead prefix dominates.
func (q *reqQueue) removeAt(i int) {
	if i == 0 {
		q.items[q.head] = nil
		q.head++
		if q.head > 32 && q.head > len(q.items)/2 {
			q.items = append(q.items[:0], q.items[q.head:]...)
			q.head = 0
		}
		return
	}
	p := q.head + i
	copy(q.items[p:], q.items[p+1:])
	q.items = q.items[:len(q.items)-1]
}

// filter keeps only the requests keep returns true for, preserving order.
func (q *reqQueue) filter(keep func(*speReq) bool) {
	kept := q.items[:0]
	for i := q.head; i < len(q.items); i++ {
		if keep(q.items[i]) {
			kept = append(kept, q.items[i])
		}
	}
	for i := len(kept); i < len(q.items); i++ {
		q.items[i] = nil
	}
	q.items = kept
	q.head = 0
}

// streamMismatch shapes the diagnostic for a stream whose announced
// payload disagrees with what the reader expects.
func streamMismatch(ch *Channel, reader fmt.Stringer, sent, want int) string {
	return fmt.Sprintf("size mismatch on %s: writer sent %d bytes, reader %v expects %d", ch, sent, reader, want)
}
