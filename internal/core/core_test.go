package core

import (
	"errors"
	"strings"
	"testing"

	"cellpilot/internal/cluster"
	"cellpilot/internal/sim"
)

// newTestCluster builds the standard test machine: 2 Cell blades + 1 Xeon.
func newTestCluster(t *testing.T) *cluster.Cluster {
	t.Helper()
	c, err := cluster.New(cluster.Spec{CellNodes: 2, XeonNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestChannelTypeResolution(t *testing.T) {
	// E6: the Table I taxonomy, for every endpoint combination.
	c := newTestCluster(t)
	a := NewApp(c, Options{})
	ppe0 := a.Main() // node 0 (cell0)
	ppe1 := a.CreateProcessOn(1, "ppe1", func(*Ctx, int, any) {}, 0, nil)
	xeon := a.CreateProcessOn(2, "xeon", func(*Ctx, int, any) {}, 0, nil)
	prog := &SPEProgram{Name: "s", Body: func(*SPECtx) {}}
	spe0a := a.CreateSPE(prog, ppe0, 0)
	spe0b := a.CreateSPE(prog, ppe0, 1)
	spe1 := a.CreateSPE(prog, ppe1, 0)

	cases := []struct {
		from, to *Process
		want     ChannelType
	}{
		{ppe0, ppe1, Type1},  // PPE <-> remote PPE
		{ppe0, xeon, Type1},  // PPE <-> non-Cell
		{ppe0, spe0a, Type2}, // PPE <-> local SPE
		{spe0a, ppe0, Type2},
		{ppe1, spe0a, Type3}, // remote PPE <-> SPE
		{xeon, spe1, Type3},  // non-Cell <-> SPE
		{spe1, xeon, Type3},
		{spe0a, spe0b, Type4}, // SPE <-> local SPE
		{spe0a, spe1, Type5},  // SPE <-> remote SPE
		{spe1, spe0b, Type5},
	}
	for _, tc := range cases {
		ch := a.CreateChannel(tc.from, tc.to)
		if ch.Type() != tc.want {
			t.Errorf("channel %s -> %s resolved to %s, want %s", tc.from, tc.to, ch.Type(), tc.want)
		}
	}
}

func TestType1TransferAcrossArch(t *testing.T) {
	// Cell PPE (big-endian) to Xeon (little-endian): values must survive.
	c := newTestCluster(t)
	a := NewApp(c, Options{})
	var got []float64
	var gotN int32
	reader := a.CreateProcessOn(2, "reader", func(ctx *Ctx, index int, arg any) {
		out := make([]float64, 4)
		var n int32
		ctx.Read(arg.(*Channel), "%d %4lf", &n, out)
		got, gotN = out, n
	}, 0, nil)
	ch := a.CreateChannel(a.Main(), reader)
	reader.arg = ch
	err := a.Run(func(ctx *Ctx) {
		ctx.Write(ch, "%d %4lf", int32(7), []float64{1.5, -2.25, 3.125, 1e300})
	})
	if err != nil {
		t.Fatal(err)
	}
	if gotN != 7 || got[0] != 1.5 || got[1] != -2.25 || got[2] != 3.125 || got[3] != 1e300 {
		t.Fatalf("got n=%d vals=%v", gotN, got)
	}
}

func TestType2PingPong(t *testing.T) {
	c := newTestCluster(t)
	a := NewApp(c, Options{})
	prog := &SPEProgram{Name: "echo", Body: func(ctx *SPECtx) {
		in := make([]int32, 64)
		ctx.Read(ctx.Env().(map[string]*Channel)["down"], "%64d", in)
		for i := range in {
			in[i] *= 2
		}
		ctx.Write(ctx.Env().(map[string]*Channel)["up"], "%64d", in)
	}}
	spe := a.CreateSPE(prog, a.Main(), 0)
	down := a.CreateChannel(a.Main(), spe)
	up := a.CreateChannel(spe, a.Main())
	if down.Type() != Type2 || up.Type() != Type2 {
		t.Fatalf("types %s/%s", down.Type(), up.Type())
	}
	var got []int32
	err := a.Run(func(ctx *Ctx) {
		ctx.RunSPE(spe, 0, map[string]*Channel{"down": down, "up": up})
		out := make([]int32, 64)
		for i := range out {
			out[i] = int32(i)
		}
		ctx.Write(down, "%64d", out)
		got = make([]int32, 64)
		ctx.Read(up, "%64d", got)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != int32(2*i) {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
}

func TestType3RemoteSPE(t *testing.T) {
	c := newTestCluster(t)
	a := NewApp(c, Options{})
	prog := &SPEProgram{Name: "worker", Body: func(ctx *SPECtx) {
		chs := ctx.Env().([]*Channel)
		var v float32
		ctx.Read(chs[0], "%f", &v)
		ctx.Write(chs[1], "%f", v*v)
	}}
	ppe := a.CreateProcessOn(0, "parent", func(ctx *Ctx, index int, arg any) {
		chs := arg.([]*Channel)
		ctx.RunSPE(ctx.app.procs[2], 0, chs) // spe is process id 2
	}, 0, nil)
	spe := a.CreateSPE(prog, ppe, 0)
	xeon := a.CreateProcessOn(2, "xeon", func(ctx *Ctx, index int, arg any) {
		chs := arg.([]*Channel)
		ctx.Write(chs[0], "%f", float32(1.5))
		var sq float32
		ctx.Read(chs[1], "%f", &sq)
		if sq != 2.25 {
			ctx.app.K.Abort(errors.New("wrong square"))
		}
	}, 0, nil)
	toSPE := a.CreateChannel(xeon, spe)
	fromSPE := a.CreateChannel(spe, xeon)
	if toSPE.Type() != Type3 || fromSPE.Type() != Type3 {
		t.Fatalf("types %s/%s", toSPE.Type(), fromSPE.Type())
	}
	chs := []*Channel{toSPE, fromSPE}
	ppe.arg = chs
	xeon.arg = chs
	if err := a.Run(func(ctx *Ctx) {}); err != nil {
		t.Fatal(err)
	}
}

func TestType4LocalSPEPair(t *testing.T) {
	c := newTestCluster(t)
	a := NewApp(c, Options{})
	var ch *Channel
	send := &SPEProgram{Name: "send", Body: func(ctx *SPECtx) {
		arr := make([]byte, 1600)
		for i := range arr {
			arr[i] = byte(i % 251)
		}
		ctx.Write(ch, "%1600b", arr)
	}}
	recv := &SPEProgram{Name: "recv", Body: func(ctx *SPECtx) {
		arr := make([]byte, 1600)
		ctx.Read(ch, "%1600b", arr)
		for i := range arr {
			if arr[i] != byte(i%251) {
				ctx.P.Fatalf("corrupt at %d", i)
			}
		}
	}}
	s1 := a.CreateSPE(send, a.Main(), 0)
	s2 := a.CreateSPE(recv, a.Main(), 1)
	ch = a.CreateChannel(s1, s2)
	if ch.Type() != Type4 {
		t.Fatalf("type %s", ch.Type())
	}
	var msgs int
	err := a.Run(func(ctx *Ctx) {
		ctx.RunSPE(s1, 0, nil)
		ctx.RunSPE(s2, 0, nil)
	})
	if err != nil {
		t.Fatal(err)
	}
	// Type 4 must not touch MPI's network path.
	msgs, _ = c.Net.Stats()
	if msgs != 0 {
		t.Fatalf("type-4 transfer crossed the network: %d messages", msgs)
	}
}

// TestPaperFigure34 reproduces the paper's sample program: two Cell
// nodes; each PPE starts one SPE; one SPE writes an array of 100 integers
// to the other over a Type 5 channel, relayed through two Co-Pilots.
func TestPaperFigure34(t *testing.T) {
	c := newTestCluster(t)
	a := NewApp(c, Options{})
	var betweenSPEs *Channel
	speSend := &SPEProgram{Name: "spe_send", Body: func(ctx *SPECtx) {
		arr := make([]int32, 100)
		for i := range arr {
			arr[i] = int32(i)
		}
		ctx.Write(betweenSPEs, "%100d", arr)
	}}
	var got []int32
	speRecv := &SPEProgram{Name: "spe_recv", Body: func(ctx *SPECtx) {
		arr := make([]int32, 100)
		ctx.Read(betweenSPEs, "%*d", 100, arr) // the paper's "%*d" syntax
		got = arr
	}}
	recvPPE := a.CreateProcessOn(1, "recvFunc", func(ctx *Ctx, index int, arg any) {
		ctx.RunSPE(arg.(*Process), 0, nil)
	}, 0, nil)
	sendSPE := a.CreateSPE(speSend, a.Main(), 0)
	recvSPE := a.CreateSPE(speRecv, recvPPE, 0)
	recvPPE.arg = recvSPE
	betweenSPEs = a.CreateChannel(sendSPE, recvSPE)
	if betweenSPEs.Type() != Type5 {
		t.Fatalf("type %s, want type5", betweenSPEs.Type())
	}
	err := a.Run(func(ctx *Ctx) {
		ctx.RunSPE(sendSPE, 0, nil)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != int32(i) {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
}

func TestWriterEnforcement(t *testing.T) {
	c := newTestCluster(t)
	a := NewApp(c, Options{})
	other := a.CreateProcessOn(1, "other", func(ctx *Ctx, index int, arg any) {
		// other is the reader but tries to write.
		ctx.Write(arg.(*Channel), "%d", int32(1))
	}, 0, nil)
	ch := a.CreateChannel(a.Main(), other)
	other.arg = ch
	err := a.Run(func(ctx *Ctx) {})
	if err == nil || !strings.Contains(err.Error(), "is not the writer") {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(err.Error(), "core_test.go:") {
		t.Fatalf("diagnostic lacks file:line: %v", err)
	}
}

func TestFormatMismatchAborts(t *testing.T) {
	c := newTestCluster(t)
	a := NewApp(c, Options{})
	reader := a.CreateProcessOn(1, "reader", func(ctx *Ctx, index int, arg any) {
		var f float32
		ctx.Read(arg.(*Channel), "%f", &f) // writer sends %d
	}, 0, nil)
	ch := a.CreateChannel(a.Main(), reader)
	reader.arg = ch
	err := a.Run(func(ctx *Ctx) {
		ctx.Write(ch, "%d", int32(1))
	})
	if err == nil || !strings.Contains(err.Error(), "does not match") {
		t.Fatalf("err = %v", err)
	}
}

func TestSizeMismatchAborts(t *testing.T) {
	c := newTestCluster(t)
	a := NewApp(c, Options{})
	reader := a.CreateProcessOn(1, "reader", func(ctx *Ctx, index int, arg any) {
		out := make([]int32, 5)
		ctx.Read(arg.(*Channel), "%5d", out) // writer sends 10
	}, 0, nil)
	ch := a.CreateChannel(a.Main(), reader)
	reader.arg = ch
	err := a.Run(func(ctx *Ctx) {
		ctx.Write(ch, "%10d", make([]int32, 10))
	})
	if err == nil || !strings.Contains(err.Error(), "size mismatch") {
		t.Fatalf("err = %v", err)
	}
}

func TestSPESizeMismatchAborts(t *testing.T) {
	c := newTestCluster(t)
	a := NewApp(c, Options{})
	var ch *Channel
	prog := &SPEProgram{Name: "short", Body: func(ctx *SPECtx) {
		out := make([]int32, 5)
		ctx.Read(ch, "%5d", out)
	}}
	spe := a.CreateSPE(prog, a.Main(), 0)
	ch = a.CreateChannel(a.Main(), spe)
	err := a.Run(func(ctx *Ctx) {
		ctx.RunSPE(spe, 0, nil)
		ctx.Write(ch, "%10d", make([]int32, 10))
	})
	if err == nil || !strings.Contains(err.Error(), "size mismatch") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunSPEOnlyByParent(t *testing.T) {
	c := newTestCluster(t)
	a := NewApp(c, Options{})
	ppe := a.CreateProcessOn(1, "owner", func(ctx *Ctx, index int, arg any) {}, 0, nil)
	prog := &SPEProgram{Name: "s", Body: func(*SPECtx) {}}
	spe := a.CreateSPE(prog, ppe, 0)
	err := a.Run(func(ctx *Ctx) {
		ctx.RunSPE(spe, 0, nil) // PI_MAIN is not the parent
	})
	if err == nil || !strings.Contains(err.Error(), "must be started by its parent") {
		t.Fatalf("err = %v", err)
	}
}

func TestConfigPhaseEnforced(t *testing.T) {
	c := newTestCluster(t)
	a := NewApp(c, Options{})
	err := a.Run(func(ctx *Ctx) {})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		if r == nil || !strings.Contains(r.(error).Error(), "configuration phase") {
			t.Fatalf("recover = %v", r)
		}
	}()
	a.CreateProcess("late", func(*Ctx, int, any) {}, 0, nil)
}

func TestCreateSPEOnXeonRejected(t *testing.T) {
	c := newTestCluster(t)
	a := NewApp(c, Options{})
	xeon := a.CreateProcessOn(2, "xeon", func(*Ctx, int, any) {}, 0, nil)
	defer func() {
		r := recover()
		if r == nil || !strings.Contains(r.(error).Error(), "no SPEs") {
			t.Fatalf("recover = %v", r)
		}
	}()
	a.CreateSPE(&SPEProgram{Name: "s", Body: func(*SPECtx) {}}, xeon, 0)
}

func TestSPEReservationLimit(t *testing.T) {
	c, err := cluster.New(cluster.Spec{CellNodes: 1, CellsPerNode: 1}) // 8 SPEs
	if err != nil {
		t.Fatal(err)
	}
	a := NewApp(c, Options{})
	prog := &SPEProgram{Name: "s", Body: func(*SPECtx) {}}
	for i := 0; i < 8; i++ {
		a.CreateSPE(prog, a.Main(), i)
	}
	defer func() {
		r := recover()
		if r == nil || !strings.Contains(r.(error).Error(), "all are reserved") {
			t.Fatalf("recover = %v", r)
		}
	}()
	a.CreateSPE(prog, a.Main(), 8)
}

func TestLSOverflowOnHugeWrite(t *testing.T) {
	c := newTestCluster(t)
	a := NewApp(c, Options{})
	var ch *Channel
	prog := &SPEProgram{Name: "hog", Body: func(ctx *SPECtx) {
		// 300 KB cannot be staged in a 256 KB local store.
		ctx.Write(ch, "%*b", 300*1024, make([]byte, 300*1024))
	}}
	spe := a.CreateSPE(prog, a.Main(), 0)
	ch = a.CreateChannel(spe, a.Main())
	err := a.Run(func(ctx *Ctx) {
		ctx.RunSPE(spe, 0, nil)
		buf := make([]byte, 300*1024)
		ctx.Read(ch, "%*b", 300*1024, buf)
	})
	if err == nil || !strings.Contains(err.Error(), "local store overflow") {
		t.Fatalf("err = %v", err)
	}
}

func TestDeadlockServiceDetectsCycle(t *testing.T) {
	c := newTestCluster(t)
	a := NewApp(c, Options{DeadlockDetection: true})
	peer := a.CreateProcessOn(1, "peer", func(ctx *Ctx, index int, arg any) {
		chs := arg.([]*Channel)
		var v int32
		ctx.Read(chs[0], "%d", &v) // waits for main, which waits for us
	}, 0, nil)
	toPeer := a.CreateChannel(a.Main(), peer)
	toMain := a.CreateChannel(peer, a.Main())
	peer.arg = []*Channel{toPeer} // peer waits for main to write
	err := a.Run(func(ctx *Ctx) {
		var v int32
		ctx.Read(toMain, "%d", &v) // main waits for peer: circular wait
	})
	if err == nil || !strings.Contains(err.Error(), "circular wait") {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(err.Error(), "PI_MAIN") || !strings.Contains(err.Error(), "peer") {
		t.Fatalf("diagnostic does not name the processes: %v", err)
	}
}

func TestDeadlockWithoutServiceStillDiagnosed(t *testing.T) {
	// Without -pisvc=d the sim kernel's quiescence detector still reports
	// who is stuck (the "mysterious hang" becomes an error in the model).
	c := newTestCluster(t)
	a := NewApp(c, Options{})
	peer := a.CreateProcessOn(1, "peer", func(ctx *Ctx, index int, arg any) {
		var v int32
		ctx.Read(arg.(*Channel), "%d", &v)
	}, 0, nil)
	chFromMain := a.CreateChannel(a.Main(), peer)
	chToMain := a.CreateChannel(peer, a.Main())
	peer.arg = chFromMain
	err := a.Run(func(ctx *Ctx) {
		var v int32
		ctx.Read(chToMain, "%d", &v)
	})
	var dl *sim.ErrDeadlock
	if !errors.As(err, &dl) {
		t.Fatalf("err = %v", err)
	}
}

func TestBundleBroadcastGatherSelect(t *testing.T) {
	c := newTestCluster(t)
	a := NewApp(c, Options{})
	const workers = 3
	var bcast, gather *Bundle
	var toW, fromW []*Channel
	wfn := func(ctx *Ctx, index int, arg any) {
		var seed int32
		ctx.Read(toW[index], "%d", &seed) // receive broadcast with plain Read (MPMD)
		vals := []int32{seed + int32(index), seed + int32(index)*10}
		ctx.Write(fromW[index], "%2d", vals)
	}
	var ws []*Process
	for i := 0; i < workers; i++ {
		ws = append(ws, a.CreateProcessOn(i%3, "worker", wfn, i, nil))
	}
	for i := 0; i < workers; i++ {
		toW = append(toW, a.CreateChannel(a.Main(), ws[i]))
		fromW = append(fromW, a.CreateChannel(ws[i], a.Main()))
	}
	bcast = a.CreateBundle(BundleBroadcast, toW)
	gather = a.CreateBundle(BundleGather, fromW)
	var got []int32
	err := a.Run(func(ctx *Ctx) {
		ctx.Broadcast(bcast, "%d", int32(100))
		got = make([]int32, 2*workers)
		ctx.Gather(gather, "%2d", got)
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int32{100, 100, 101, 110, 102, 120}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("gather = %v, want %v", got, want)
		}
	}
}

func TestSelectAndHasData(t *testing.T) {
	c := newTestCluster(t)
	a := NewApp(c, Options{})
	const n = 3
	var chans []*Channel
	fn := func(ctx *Ctx, index int, arg any) {
		ctx.P.Advance(sim.Time(100*(index+1)) * sim.Microsecond)
		ctx.Write(chans[index], "%d", int32(index))
	}
	var ws []*Process
	for i := 0; i < n; i++ {
		ws = append(ws, a.CreateProcessOn((i+1)%3, "w", fn, i, nil))
	}
	for i := 0; i < n; i++ {
		chans = append(chans, a.CreateChannel(ws[i], a.Main()))
	}
	sel := a.CreateBundle(BundleSelect, chans)
	err := a.Run(func(ctx *Ctx) {
		seen := map[int]bool{}
		for len(seen) < n {
			if ctx.TrySelect(sel) == -1 && len(seen) == 0 {
				// nothing ready yet at t=0: fine
			}
			i := ctx.Select(sel)
			if !ctx.HasData(chans[i]) {
				ctx.P.Fatalf("select said %d ready but HasData is false", i)
			}
			var v int32
			ctx.Read(chans[i], "%d", &v)
			if int(v) != i {
				ctx.P.Fatalf("channel %d delivered %d", i, v)
			}
			seen[i] = true
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBundleRejectsSPEChannels(t *testing.T) {
	c := newTestCluster(t)
	a := NewApp(c, Options{})
	prog := &SPEProgram{Name: "s", Body: func(*SPECtx) {}}
	spe := a.CreateSPE(prog, a.Main(), 0)
	ch := a.CreateChannel(spe, a.Main())
	defer func() {
		r := recover()
		if r == nil || !strings.Contains(r.(error).Error(), "not supported") {
			t.Fatalf("recover = %v", r)
		}
	}()
	a.CreateBundle(BundleGather, []*Channel{ch})
}

func TestDirectLocalAblationStillCorrect(t *testing.T) {
	// A1: the fast-path type 2 must deliver identical data.
	c := newTestCluster(t)
	a := NewApp(c, Options{CoPilotDirectLocal: true})
	var down, up *Channel
	prog := &SPEProgram{Name: "echo", Body: func(ctx *SPECtx) {
		buf := make([]byte, 256)
		ctx.Read(down, "%256b", buf)
		ctx.Write(up, "%256b", buf)
	}}
	spe := a.CreateSPE(prog, a.Main(), 0)
	down = a.CreateChannel(a.Main(), spe)
	up = a.CreateChannel(spe, a.Main())
	var got []byte
	err := a.Run(func(ctx *Ctx) {
		ctx.RunSPE(spe, 0, nil)
		msg := make([]byte, 256)
		for i := range msg {
			msg[i] = byte(255 - i%256)
		}
		ctx.Write(down, "%256b", msg)
		got = make([]byte, 256)
		ctx.Read(up, "%256b", got)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != byte(255-i%256) {
			t.Fatalf("byte %d corrupted", i)
		}
	}
}

func TestManySPEsAllBusy(t *testing.T) {
	// Keep all 16 SPEs of one blade computing in parallel, the paper's
	// "all SPEs kept busy" claim, each talking type 2 to PI_MAIN.
	c, err := cluster.New(cluster.Spec{CellNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	a := NewApp(c, Options{})
	const n = 16
	chans := make([]*Channel, n)
	prog := &SPEProgram{Name: "sq", Body: func(ctx *SPECtx) {
		v := int32(ctx.Arg())
		ctx.Write(chans[ctx.Arg()], "%d", v*v)
	}}
	spes := make([]*Process, n)
	for i := 0; i < n; i++ {
		spes[i] = a.CreateSPE(prog, a.Main(), i)
		chans[i] = a.CreateChannel(spes[i], a.Main())
	}
	results := make([]int32, n)
	err = a.Run(func(ctx *Ctx) {
		for i := 0; i < n; i++ {
			ctx.RunSPE(spes[i], i, nil)
		}
		for i := 0; i < n; i++ {
			ctx.Read(chans[i], "%d", &results[i])
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r != int32(i*i) {
			t.Fatalf("spe %d returned %d", i, r)
		}
	}
}
