package core

import (
	"fmt"
	"math"

	"cellpilot/internal/deadlock"
	"cellpilot/internal/fmtmsg"
	"cellpilot/internal/trace"
)

// This file implements the bundle operations Pilot gained after V1.2
// (the version the paper describes): PI_Scatter and PI_Reduce. They keep
// the MPMD convention — only the common endpoint calls the collective;
// the other ends use plain Read/Write — and, with Options.SPECollectives,
// they work over SPE member channels like the V1.2 operations.

// Scatter and reduce bundle kinds (post-V1.2 Pilot).
const (
	// BundleScatter: the common endpoint writes a distinct chunk to each
	// channel; each reader receives its own slice.
	BundleScatter BundleKind = iota + 100
	// BundleReduce: every writer contributes; the common endpoint combines
	// the contributions elementwise with a reduction operator.
	BundleReduce
)

// ReduceOp is a predefined elementwise reduction operator.
type ReduceOp int

// Reduction operators.
const (
	OpSum ReduceOp = iota
	OpMin
	OpMax
)

// String implements fmt.Stringer.
func (o ReduceOp) String() string {
	switch o {
	case OpSum:
		return "sum"
	case OpMin:
		return "min"
	case OpMax:
		return "max"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// Scatter writes chunk i of data to channel i of a scatter bundle
// (PI_Scatter). format describes one reader's chunk — a single
// fixed-count item (e.g. "%16d") — and data must hold count × channels
// elements in channel order. Each reader calls Read with the same format.
func (c *Ctx) Scatter(b *Bundle, format string, data any) {
	loc := callerLoc(1)
	if b == nil || b.kind != BundleScatter {
		c.fail(loc, "PI_Scatter", "bundle was not created for scatter")
	}
	if b.common != c.Self {
		c.fail(loc, "PI_Scatter", "%s is not the bundle's writer", c.Self)
	}
	spec, err := fmtmsg.Parse(format)
	if err != nil {
		c.fail(loc, "PI_Scatter", "%v", err)
	}
	if len(spec.Items) != 1 || spec.Items[0].Star {
		c.fail(loc, "PI_Scatter", "scatter format must be a single fixed-count item, got %q", format)
	}
	item := spec.Items[0]
	total := item.Count * len(b.chans)
	synth := fmtmsg.MustParse(fmt.Sprintf("%%%d%s", total, item.Type.Verb()))
	wire, err := synth.Pack(data)
	if err != nil {
		c.fail(loc, "PI_Scatter", "%v", err)
	}
	c.P.Advance(c.app.par.PilotOverhead + c.app.par.PackTime(len(wire)))
	per := item.Count * item.Type.Size()
	hdr := putHeader(spec.Signature(), per)
	for i, ch := range b.chans {
		xfer := c.app.newXfer()
		sendStart := c.P.Now()
		c.rank.TagNextXfer(xfer)
		c.rank.SendVec(c.P, c.peerRank(ch.To), ch.tag(), hdr, wire[i*per:(i+1)*per])
		c.app.reportSent(ch)
		c.app.spanPhase(xfer, trace.PhaseMPISend, c.Self.String(), ch, per, sendStart, c.P.Now())
		c.app.meterBlocked(c.Self, blockWrite, c.P.Now()-sendStart)
		c.app.meterOp(ch, per, c.P.Now()-sendStart)
		c.app.record(c.P, trace.KindWrite, c.Self, ch, per, xfer, c.P.Now()-sendStart)
	}
}

// Reduce collects one contribution per channel of a reduce bundle and
// combines them elementwise with op into out (PI_Reduce). format is a
// single fixed-count item; out must be a slice of the matching element
// type with room for that count. Writers each call Write with the same
// format. Long-double contributions are not reducible (as in C Pilot).
func (c *Ctx) Reduce(b *Bundle, format string, op ReduceOp, out any) {
	loc := callerLoc(1)
	if b == nil || b.kind != BundleReduce {
		c.fail(loc, "PI_Reduce", "bundle was not created for reduce")
	}
	if b.common != c.Self {
		c.fail(loc, "PI_Reduce", "%s is not the bundle's reader", c.Self)
	}
	spec, err := fmtmsg.Parse(format)
	if err != nil {
		c.fail(loc, "PI_Reduce", "%v", err)
	}
	if len(spec.Items) != 1 || spec.Items[0].Star {
		c.fail(loc, "PI_Reduce", "reduce format must be a single fixed-count item, got %q", format)
	}
	item := spec.Items[0]
	if item.Type == fmtmsg.LongDouble {
		c.fail(loc, "PI_Reduce", "%%Lf contributions cannot be reduced")
	}
	per := item.Count * item.Type.Size()
	var acc []byte
	for i, ch := range b.chans {
		waitStart := c.P.Now()
		c.app.reportBlock(c.Self, ch.From, ch, deadlock.OpRead, loc)
		data, st := c.rank.Recv(c.P, c.peerRank(ch.From), ch.tag())
		c.app.reportUnblock(c.Self)
		if len(data) < hdrSize {
			c.fail(loc, "PI_Reduce", "malformed message on %s", ch)
		}
		sig, size := parseHeader(data)
		if sig != spec.Signature() || size != per {
			c.fail(loc, "PI_Reduce", "writer on %s sent %d bytes with a different format; expected %q (%d bytes)",
				ch, size, format, per)
		}
		c.app.spanPhase(st.Xfer, trace.PhaseMPIWait, c.Self.String(), ch, size, waitStart, c.P.Now())
		c.app.meterBlocked(c.Self, blockRead, c.P.Now()-waitStart)
		c.app.meterOp(ch, size, c.P.Now()-waitStart)
		c.app.record(c.P, trace.KindRead, c.Self, ch, size, st.Xfer, c.P.Now()-waitStart)
		if i == 0 {
			acc = append([]byte(nil), data[hdrSize:]...)
			continue
		}
		combineWire(acc, data[hdrSize:], item.Type, op)
	}
	c.P.Advance(c.app.par.PilotOverhead + c.app.par.PackTime(per*len(b.chans)))
	synth := fmtmsg.MustParse(fmt.Sprintf("%%%d%s", item.Count, item.Type.Verb()))
	if err := synth.Unpack(acc, out); err != nil {
		c.fail(loc, "PI_Reduce", "%v", err)
	}
}

// combineWire folds in into acc elementwise, both in canonical wire form.
func combineWire(acc, in []byte, typ fmtmsg.ElemType, op ReduceOp) {
	sz := typ.Size()
	for off := 0; off+sz <= len(acc); off += sz {
		a := acc[off : off+sz]
		b := in[off : off+sz]
		switch typ {
		case fmtmsg.Byte, fmtmsg.Char:
			a[0] = byte(combineInt(int64(a[0]), int64(b[0]), op))
		case fmtmsg.Int16:
			putInt(a, combineInt(int64(int16(getUint(a))), int64(int16(getUint(b))), op))
		case fmtmsg.Int32:
			putInt(a, combineInt(int64(int32(getUint(a))), int64(int32(getUint(b))), op))
		case fmtmsg.Int64:
			putInt(a, combineInt(int64(getUint(a)), int64(getUint(b)), op))
		case fmtmsg.Uint32, fmtmsg.Uint64:
			putUint(a, combineUint(getUint(a), getUint(b), op))
		case fmtmsg.Float32:
			f := combineFloat(float64(math.Float32frombits(uint32(getUint(a)))),
				float64(math.Float32frombits(uint32(getUint(b)))), op)
			putUint(a, uint64(math.Float32bits(float32(f))))
		case fmtmsg.Float64:
			f := combineFloat(math.Float64frombits(getUint(a)), math.Float64frombits(getUint(b)), op)
			putUint(a, math.Float64bits(f))
		}
	}
}

func getUint(b []byte) uint64 {
	var v uint64
	for _, x := range b {
		v = v<<8 | uint64(x)
	}
	return v
}

func putUint(b []byte, v uint64) {
	for i := len(b) - 1; i >= 0; i-- {
		b[i] = byte(v)
		v >>= 8
	}
}

func putInt(b []byte, v int64) { putUint(b, uint64(v)) }

func combineInt(a, b int64, op ReduceOp) int64 {
	switch op {
	case OpMin:
		if b < a {
			return b
		}
		return a
	case OpMax:
		if b > a {
			return b
		}
		return a
	default:
		return a + b
	}
}

func combineUint(a, b uint64, op ReduceOp) uint64 {
	switch op {
	case OpMin:
		if b < a {
			return b
		}
		return a
	case OpMax:
		if b > a {
			return b
		}
		return a
	default:
		return a + b
	}
}

func combineFloat(a, b float64, op ReduceOp) float64 {
	switch op {
	case OpMin:
		return math.Min(a, b)
	case OpMax:
		return math.Max(a, b)
	default:
		return a + b
	}
}
