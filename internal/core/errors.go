package core

import (
	"fmt"
	"path/filepath"
	"runtime"
)

// callerLoc reports the user code location (file:line) skip frames above
// the caller. Pilot's hallmark diagnostics report API misuse by source
// file and line number; every abort in this package carries one.
func callerLoc(skip int) string {
	_, file, line, ok := runtime.Caller(skip + 1)
	if !ok {
		return "unknown:0"
	}
	return fmt.Sprintf("%s:%d", filepath.Base(file), line)
}

// usageError formats a Pilot-style diagnostic: location, API name, detail.
func usageError(loc, api, format string, args ...any) error {
	return fmt.Errorf("pilot: %s: %s: %s", loc, api, fmt.Sprintf(format, args...))
}
