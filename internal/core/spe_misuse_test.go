package core

import (
	"strings"
	"testing"
)

func TestSPEWriterEnforcement(t *testing.T) {
	c := newTestCluster(t)
	a := NewApp(c, Options{})
	var ch *Channel
	prog := &SPEProgram{Name: "thief", Body: func(ctx *SPECtx) {
		ctx.Write(ch, "%d", int32(1)) // the SPE is the reader, not writer
	}}
	spe := a.CreateSPE(prog, a.Main(), 0)
	ch = a.CreateChannel(a.Main(), spe)
	err := a.Run(func(ctx *Ctx) {
		ctx.RunSPE(spe, 0, nil)
		ctx.Write(ch, "%d", int32(2))
	})
	if err == nil || !strings.Contains(err.Error(), "is not the writer") {
		t.Fatalf("err = %v", err)
	}
}

func TestSPEReaderEnforcement(t *testing.T) {
	c := newTestCluster(t)
	a := NewApp(c, Options{})
	var ch *Channel
	prog := &SPEProgram{Name: "wrongway", Body: func(ctx *SPECtx) {
		var v int32
		ctx.Read(ch, "%d", &v) // the SPE is the writer, not reader
	}}
	spe := a.CreateSPE(prog, a.Main(), 0)
	ch = a.CreateChannel(spe, a.Main())
	err := a.Run(func(ctx *Ctx) {
		ctx.RunSPE(spe, 0, nil)
	})
	if err == nil || !strings.Contains(err.Error(), "is not the reader") {
		t.Fatalf("err = %v", err)
	}
}

func TestSPEBadFormatAborts(t *testing.T) {
	c := newTestCluster(t)
	a := NewApp(c, Options{})
	var ch *Channel
	prog := &SPEProgram{Name: "fmt", Body: func(ctx *SPECtx) {
		ctx.Write(ch, "%zz", int32(1))
	}}
	spe := a.CreateSPE(prog, a.Main(), 0)
	ch = a.CreateChannel(spe, a.Main())
	err := a.Run(func(ctx *Ctx) {
		ctx.RunSPE(spe, 0, nil)
		var v int32
		ctx.Read(ch, "%d", &v)
	})
	if err == nil || !strings.Contains(err.Error(), "unknown conversion") {
		t.Fatalf("err = %v", err)
	}
}

func TestSPEFormatMismatchDetectedByCoPilot(t *testing.T) {
	// Type 4 with mismatched formats between the two SPEs: the Co-Pilot
	// compares the request signatures.
	c := newTestCluster(t)
	a := NewApp(c, Options{})
	var ch *Channel
	w := a.CreateSPE(&SPEProgram{Name: "w", Body: func(ctx *SPECtx) {
		ctx.Write(ch, "%4d", make([]int32, 4))
	}}, a.Main(), 0)
	r := a.CreateSPE(&SPEProgram{Name: "r", Body: func(ctx *SPECtx) {
		ctx.Read(ch, "%4f", make([]float32, 4)) // wrong element type
	}}, a.Main(), 1)
	ch = a.CreateChannel(w, r)
	err := a.Run(func(ctx *Ctx) {
		ctx.RunSPE(w, 0, nil)
		ctx.RunSPE(r, 1, nil)
	})
	if err == nil || !strings.Contains(err.Error(), "format mismatch") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunTwiceRejected(t *testing.T) {
	c := newTestCluster(t)
	a := NewApp(c, Options{})
	if err := a.Run(func(ctx *Ctx) {}); err != nil {
		t.Fatal(err)
	}
	if err := a.Run(func(ctx *Ctx) {}); err == nil {
		t.Fatal("second Run accepted")
	}
}

func TestDoubleRunSPERejected(t *testing.T) {
	c := newTestCluster(t)
	a := NewApp(c, Options{})
	prog := &SPEProgram{Name: "s", Body: func(*SPECtx) {}}
	spe := a.CreateSPE(prog, a.Main(), 0)
	err := a.Run(func(ctx *Ctx) {
		ctx.RunSPE(spe, 0, nil)
		ctx.RunSPE(spe, 0, nil)
	})
	if err == nil || !strings.Contains(err.Error(), "already started") {
		t.Fatalf("err = %v", err)
	}
}
