package core

import (
	"strings"

	"cellpilot/internal/flowmap"
	"cellpilot/internal/hostprof"
	"cellpilot/internal/metrics"
	"cellpilot/internal/profile"
	"cellpilot/internal/sim"
	"cellpilot/internal/timeline"
	"cellpilot/internal/trace"
)

// This file is the core side of the observability subsystem: per-transfer
// ids correlating the stages of a channel operation into trace spans, and
// the Meter aggregating latency/bandwidth histograms and per-process
// blocked-time attribution. Everything here is host-side bookkeeping — no
// call in this file advances virtual time, so an instrumented run keeps
// the calibrated timings of an uninstrumented one bit-for-bit.

// blockKind classifies where a process's non-compute virtual time went.
type blockKind int

const (
	blockRead    blockKind = iota // blocked in a channel read (MPI recv or handoff)
	blockWrite                    // inside a channel write (send overhead + rendezvous wait)
	blockMailbox                  // SPE stub posting a request or awaiting completion
)

// procAcc accumulates one process's virtual-time split.
type procAcc struct {
	start, end sim.Time
	ended      bool
	blocked    [3]sim.Time
}

// Histogram bucket layouts. Latencies and waits are recorded in
// microseconds (the paper's unit), payload sizes in bytes, bandwidth in
// MB/s, queue depth in requests.
var (
	latencyBucketsUs = metrics.ExpBuckets(0.5, 2, 24)
	sizeBuckets      = metrics.ExpBuckets(1, 4, 16)
	bwBucketsMBps    = metrics.ExpBuckets(0.125, 2, 24)
	depthBuckets     = metrics.LinearBuckets(0, 1, 33)
)

// Meter aggregates run-wide communication metrics: per-channel-type
// operation latency, payload size and achieved bandwidth histograms,
// Co-Pilot service-queue wait and depth, per-channel in-flight backlog
// watermarks, and per-process blocked-time attribution. Attach one via
// App.Metrics before Run; read the results from App.Stats after. Like
// the trace recorder, a Meter observes at zero virtual-time cost.
type Meter struct {
	reg   *metrics.Registry
	procs map[int]*procAcc // by process id

	// In-flight operation backlog per channel id: writes completed but not
	// yet matched by a completed read. The high-water mark is the channel's
	// congestion watermark.
	backlog     map[int]int
	backlogHigh map[int]int
}

// NewMeter creates an empty meter.
func NewMeter() *Meter {
	return &Meter{
		reg: metrics.NewRegistry(), procs: map[int]*procAcc{},
		backlog: map[int]int{}, backlogHigh: map[int]int{},
	}
}

// noteBacklog tracks a channel's in-flight operation backlog: a completed
// write raises it, a completed read drains it.
func (m *Meter) noteBacklog(chID int, kind trace.Kind) {
	switch kind {
	case trace.KindWrite:
		m.backlog[chID]++
		if m.backlog[chID] > m.backlogHigh[chID] {
			m.backlogHigh[chID] = m.backlog[chID]
		}
	case trace.KindRead:
		m.backlog[chID]--
	}
}

// BacklogHighWater reports a channel's in-flight backlog watermark.
func (m *Meter) BacklogHighWater(chID int) int { return m.backlogHigh[chID] }

// Registry exposes the raw metric registry (for dumps and exports).
func (m *Meter) Registry() *metrics.Registry { return m.reg }

func (m *Meter) acc(p *Process) *procAcc {
	a, ok := m.procs[p.id]
	if !ok {
		a = &procAcc{}
		m.procs[p.id] = a
	}
	return a
}

// obsSinks is the set of observability sinks a Run records into. It is
// snapshotted from the public fields when Run starts, so attaching a
// recorder or meter after the simulation began is inert (the checked
// SetTrace/SetMetrics/SetProfile methods additionally report the misuse
// as a configuration error) instead of racing with recording.
type obsSinks struct {
	trace  *trace.Recorder
	meter  *Meter
	prof   *profile.Profiler
	flight *trace.Flight
	host   *hostprof.Profiler
	tline  *timeline.Recorder
	flow   *flowmap.Map
}

// newXfer allocates the next transfer id (ids are 1-based; 0 means
// "untagged"). With the always-on flight recorder every transfer is
// tagged; the id is pure host-side bookkeeping riding out-of-band, so the
// virtual timeline is unaffected.
func (a *App) newXfer() int64 {
	a.lastXfer++
	return a.lastXfer
}

// spanPhase dispatches one transfer phase to every attached sink: the
// always-on flight recorder, the optional span recorder, and the optional
// virtual-time profiler.
func (a *App) spanPhase(xfer int64, phase trace.PhaseKind, proc string, ch *Channel, bytes int, start, end sim.Time) {
	if xfer == 0 {
		return
	}
	pe := trace.PhaseEvent{
		Xfer: xfer, Phase: phase, Proc: proc,
		Channel: ch.id, ChanType: int(ch.typ), Bytes: bytes,
		Start: start, End: end,
	}
	a.obs.flight.Record(pe)
	if a.obs.trace != nil {
		a.obs.trace.RecordPhase(pe)
	}
	if a.obs.prof != nil {
		a.profAttribute(pe)
	}
	// Flow observatory: a copy/relay span executed by a Co-Pilot is that
	// hop's measured occupancy on behalf of the channel's flow.
	if f := a.obs.flow; f != nil {
		switch phase {
		case trace.PhaseCopy, trace.PhaseRelay, trace.PhaseChunkRelay:
			if strings.HasPrefix(proc, copilotLabelPrefix) {
				f.HopBusy(proc, a.flowInfo(ch).key, end-start)
			}
		}
	}
}

// spanChunk dispatches one per-chunk annotation event (a chunk frame's
// stack injection/drain, or its LS↔EA move on the MFC DMA engine). The
// event carries the owning stream's id and the 1-based chunk index, so
// Chrome flow events can link chunk k's injection to chunk k's drain and
// the critical-path analyzer gets mfc-dma occupancy intervals. Annotations
// share the stream's transfer id, so sampling keeps or drops a stream's
// chunk events together with its primary phases; they are never fed to the
// profiler, whose buckets are exclusive over primary stages only.
func (a *App) spanChunk(xfer int64, phase trace.PhaseKind, proc string, ch *Channel, bytes int, start, end sim.Time, chunk int) {
	if xfer == 0 {
		return
	}
	pe := trace.PhaseEvent{
		Xfer: xfer, Phase: phase, Proc: proc,
		Channel: ch.id, ChanType: int(ch.typ), Bytes: bytes,
		Start: start, End: end,
		Stream: xfer, Chunk: chunk + 1,
	}
	a.obs.flight.Record(pe)
	if a.obs.trace != nil {
		a.obs.trace.RecordPhase(pe)
	}
}

// Stream-backlog gauge directions.
const (
	streamSendDir = "send" // chunks injected but not yet landed on the wire
	streamRecvDir = "recv" // chunks announced by the header but not yet drained
)

// noteStreamInflight publishes a chunked stream's in-flight backlog: the
// live gauge tracks the most recent observation (what /metrics samples),
// the highwater gauge the run's worst case.
func (m *Meter) noteStreamInflight(dir string, n int) {
	g := "copilot/stream/inflight_" + dir
	m.reg.Gauge(g).Set(float64(n))
	m.reg.Gauge(g + "_highwater").SetMax(float64(n))
}

// meterStreamInflight feeds noteStreamInflight when a meter is attached.
func (a *App) meterStreamInflight(dir string, n int) {
	if m := a.obs.meter; m != nil {
		m.noteStreamInflight(dir, n)
	}
}

// profAttribute folds one phase into the profiler's exclusive buckets.
// PhaseCoPilotWait is deliberately excluded: it spans the requester's
// posting and waiting interval (already attributed on the SPE side), not
// Co-Pilot execution. A PhaseMailboxReq that contains fault-protocol
// reposts is split: the repost portion (noted by the stub via
// noteBackoff) lands in fault-backoff, the remainder in mbox-req.
func (a *App) profAttribute(pe trace.PhaseEvent) {
	prof := a.obs.prof
	d := pe.End - pe.Start
	switch pe.Phase {
	case trace.PhasePack:
		prof.Attribute(pe.Proc, profile.BucketPack, d)
	case trace.PhaseMailboxReq:
		if back := a.backoff[pe.Proc]; back > 0 {
			delete(a.backoff, pe.Proc)
			if back > d {
				back = d
			}
			prof.Attribute(pe.Proc, profile.BucketFaultBackoff, back)
			d -= back
		}
		prof.Attribute(pe.Proc, profile.BucketMboxReq, d)
	case trace.PhaseMailboxWait:
		prof.Attribute(pe.Proc, profile.BucketMboxWait, d)
	case trace.PhaseCoPilotService:
		prof.Attribute(pe.Proc, profile.BucketCoPilotService, d)
	case trace.PhaseCopy:
		prof.Attribute(pe.Proc, profile.BucketCopy, d)
	case trace.PhaseRelay:
		prof.Attribute(pe.Proc, profile.BucketRelay, d)
	case trace.PhaseMPISend:
		prof.Attribute(pe.Proc, profile.BucketMPISend, d)
	case trace.PhaseMPIWait:
		prof.Attribute(pe.Proc, profile.BucketMPIWait, d)
	case trace.PhaseChunkRelay:
		prof.Attribute(pe.Proc, profile.BucketChunkRelay, d)
	}
}

// noteBackoff records that proc spent d of its current mailbox request in
// the fault-protocol repost loop, so the profiler can attribute it to
// fault-backoff instead of mbox-req.
func (a *App) noteBackoff(proc string, d sim.Time) {
	if a.obs.prof == nil || d <= 0 {
		return
	}
	if a.backoff == nil {
		a.backoff = map[string]sim.Time{}
	}
	a.backoff[proc] += d
}

// meterOp records one completed channel operation (read or write side).
func (a *App) meterOp(ch *Channel, bytes int, dur sim.Time) {
	m := a.obs.meter
	if m == nil {
		return
	}
	prefix := "chan/" + ch.typ.String()
	m.reg.Counter(prefix + "/ops").Inc()
	m.reg.Counter(prefix + "/payload_bytes_total").Add(int64(bytes))
	m.reg.Histogram(prefix+"/latency_us", latencyBucketsUs).Observe(dur.Micros())
	m.reg.Histogram(prefix+"/payload_bytes", sizeBuckets).Observe(float64(bytes))
	if dur > 0 && bytes > 0 {
		mbps := float64(bytes) / (float64(dur) / float64(sim.Second)) / 1e6
		m.reg.Histogram(prefix+"/bandwidth_mbps", bwBucketsMBps).Observe(mbps)
	}
}

// meterCopilotReq records one decoded Co-Pilot request: how long it sat
// between the SPE posting it and the Co-Pilot decoding it (mailbox
// transfer + polling quantization + service-queue wait), and the queue
// depth found at decode time.
func (a *App) meterCopilotReq(label string, wait sim.Time, depth int) {
	m := a.obs.meter
	if m == nil {
		return
	}
	prefix := "copilot/" + label
	m.reg.Counter(prefix + "/requests").Inc()
	m.reg.Histogram(prefix+"/queue_wait_us", latencyBucketsUs).Observe(wait.Micros())
	m.reg.Histogram(prefix+"/queue_depth", depthBuckets).Observe(float64(depth))
}

// meterBlocked attributes d of proc p's virtual time to a blocked state.
func (a *App) meterBlocked(p *Process, k blockKind, d sim.Time) {
	if a.obs.meter == nil || d <= 0 {
		return
	}
	a.obs.meter.acc(p).blocked[k] += d
}

// meterProcStart marks the process alive from virtual time at (meter and
// profiler sinks).
func (a *App) meterProcStart(p *Process, at sim.Time) {
	if m := a.obs.meter; m != nil {
		m.acc(p).start = at
	}
	a.obs.prof.ProcStart(p.String(), at)
}

// meterProcEnd marks the process finished at virtual time at.
func (a *App) meterProcEnd(p *Process, at sim.Time) {
	if m := a.obs.meter; m != nil {
		acc := m.acc(p)
		acc.end = at
		acc.ended = true
	}
	a.obs.prof.ProcEnd(p.String(), at)
}

// spePost is the side-band record of an SPE's in-flight mailbox request.
// The four-word descriptor has no room for a transfer id, and widening it
// would change the calibrated mailbox timings — so the id travels next to
// the simulated protocol, not in it.
type spePost struct {
	xfer     int64 // writer-allocated transfer id; 0 for read requests
	postedAt sim.Time
}

// spePosted records that p began posting a request descriptor at `at`.
// Called by the SPE stub immediately before the first mailbox word.
func (a *App) spePosted(p *Process, xfer int64, at sim.Time) {
	a.spePosts[p.id] = spePost{xfer: xfer, postedAt: at}
}

// speTakePost consumes the pending post record for p (decode time).
func (a *App) speTakePost(p *Process) spePost {
	post := a.spePosts[p.id]
	delete(a.spePosts, p.id)
	return post
}

// speSetDone hands the transfer id of a completed request back to the SPE
// stub (a reader learns its transfer's id only when the payload arrives).
func (a *App) speSetDone(p *Process, xfer int64) {
	a.speDone[p.id] = xfer
}

// speTakeDone consumes the completed-transfer id for p.
func (a *App) speTakeDone(p *Process) int64 {
	xfer := a.speDone[p.id]
	delete(a.speDone, p.id)
	return xfer
}

// obsComplete records the Co-Pilot-side phases of a finished SPE request
// (queue wait, decode/dispatch service) and hands the transfer id back to
// the stub for its own phase records.
func (cp *copilot) obsComplete(req *speReq) {
	a := cp.app
	if req.xfer != 0 {
		lbl := cp.rank.Label()
		a.spanPhase(req.xfer, trace.PhaseCoPilotWait, lbl, req.ch, req.size, req.postedAt, req.decodeAt)
		a.spanPhase(req.xfer, trace.PhaseCoPilotService, lbl, req.ch, req.size, req.decodeAt, req.svcEnd)
	}
	if req.op == opRead {
		// A reading stub learns its transfer's id only here, from the
		// payload; a writing stub allocated the id itself.
		a.speSetDone(req.proc, req.xfer)
	}
}
