// Package core implements Pilot and its CellPilot extension on the
// simulated hybrid cluster: the two-phase process/channel programming
// model, the stdio-style Read/Write API, bundles (broadcast, gather,
// select), SPE process launch, the per-Cell-node Co-Pilot service process,
// and the five channel-type transfer protocols of the paper's Table I.
package core

import (
	"fmt"

	"cellpilot/internal/cellbe"
	"cellpilot/internal/cluster"
	"cellpilot/internal/fault"
	"cellpilot/internal/flowmap"
	"cellpilot/internal/hostprof"
	"cellpilot/internal/mpi"
	"cellpilot/internal/profile"
	"cellpilot/internal/sim"
	"cellpilot/internal/timeline"
	"cellpilot/internal/trace"
)

// Options configure an App.
type Options struct {
	// DeadlockDetection enables the Pilot deadlock service (the paper's
	// "-pisvc=d"), which consumes one extra MPI rank.
	DeadlockDetection bool
	// Placement overrides the default round-robin node assignment for
	// regular processes: it receives the process id and node count and
	// returns a node index. PI_MAIN (id 0) is also consulted.
	Placement func(procID, nodes int) int
	// CoPilotDirectLocal is the A1 ablation: route the PPE↔Co-Pilot leg of
	// type-2 channels through a direct shared-memory copy instead of local
	// MPI (the speed-up the paper's Section V analysis suggests).
	CoPilotDirectLocal bool
	// SPECollectives implements the paper's first future-work item:
	// bundles whose member channels have SPE endpoints (the common
	// endpoint stays a regular process, which broadcasts to / gathers
	// from / selects over a mixture of SPE and other processes).
	SPECollectives bool
	// SPEDeadlock implements the paper's second future-work item: SPE
	// channel operations also report to the deadlock service, so circular
	// waits involving SPE processes are diagnosed too. Requires
	// DeadlockDetection.
	SPEDeadlock bool
	// CoPilotPerCell is the A4 ablation: one Co-Pilot rank per Cell
	// processor instead of the paper's one per node. A dual-Cell blade
	// then services its two SPE groups in parallel (each Cell's spare PPE
	// hardware thread hosts one), at the cost of an extra MPI rank.
	CoPilotPerCell bool
	// OpTimeout bounds every blocking channel operation (0 = unbounded,
	// the classic Pilot behaviour). An operation that exceeds it fails
	// with a ChannelFault whose diagnostic says whether the operation was
	// part of a detected wait cycle or merely slow/faulted; the failing
	// process unwinds and Run returns a FaultSummary.
	OpTimeout sim.Time
	// Faults attaches a fault injector (internal/fault) for chaos runs.
	// An injector with an empty plan changes nothing — the virtual
	// timeline stays bit-identical to a run without one.
	Faults *fault.Injector
	// Transfer tunes the chunked transfer engine (transfer.go). The zero
	// value disables it and keeps the virtual timeline bit-identical to the
	// pre-engine paths.
	Transfer TransferOptions
	// FlightDepth sizes the always-on flight-recorder ring of recent
	// phase events stitched into fault diagnostics (0 selects
	// trace.DefaultFlightDepth; negative is a configuration error).
	FlightDepth int
}

type phase int

const (
	phaseConfig phase = iota
	phaseExec
	phaseDone
)

// App is one Pilot application: configuration tables plus the runtime.
// Build it over a fresh cluster, define processes and channels
// (configuration phase), then Run the execution phase to completion.
type App struct {
	Clu  *cluster.Cluster
	K    *sim.Kernel
	par  *cellbe.Params
	opts Options

	phase    phase
	procs    []*Process
	regulars []*Process
	chans    []*Channel
	bundles  []*Bundle
	speUsed  map[int]int // nodeID -> SPEs reserved

	world *mpi.World
	// Co-Pilots are keyed by (node, cell); with the default one-per-node
	// design the cell component is always 0. copilotOrder fixes a
	// deterministic iteration order (rank order) for spawning and nudging.
	copilots     map[copilotKey]*copilot
	copilotRank  map[copilotKey]int
	copilotOrder []copilotKey
	svc          *svcState

	// Fault-layer state (see fault.go); all empty in clean runs.
	chanWaiters        map[int][]*sim.Proc
	faults             []*ChannelFault
	killed             []string
	opTimeouts         int64
	faultMetricsPushed bool

	userLive int
	allDone  *sim.Event

	directBoxes map[int]*sim.Queue[dbMsg]

	// speDMA holds one MFC DMA-engine resource per SPE (lazily created by
	// dmaRes); the chunk pipeline books LS↔EA moves on it so they overlap
	// the Co-Pilot's per-chunk stack work.
	speDMA map[*cellbe.SPE]*sim.Resource

	// Observability side-band state (see observe.go): the transfer-id
	// counter and the per-SPE in-flight request records that correlate
	// mailbox requests with Co-Pilot service into spans.
	lastXfer int64
	spePosts map[int]spePost
	speDone  map[int]int64

	// obs is the sink set snapshotted from the public fields when Run
	// starts; recording goes through it, so late attachment is inert.
	obs obsSinks
	// flight is the always-on bounded ring of recent phase events; its
	// tail is stitched into fault diagnostics.
	flight *trace.Flight
	// backoff accumulates per-process fault-repost time pending profiler
	// attribution (see noteBackoff).
	backoff map[string]sim.Time

	// Logf, when set, receives trace lines from Ctx.Log and SPECtx.Log
	// prefixed with virtual time and process identity.
	Logf func(format string, args ...any)
	// Trace, when set, records every completed channel operation and the
	// phases inside it (at zero virtual-time cost, so traced runs keep
	// calibrated timings). Attach before Run (or via SetTrace, which
	// reports misuse): Run snapshots the sinks, so a later write to this
	// field records nothing.
	Trace *trace.Recorder
	// Metrics, when set, aggregates per-channel-type histograms, Co-Pilot
	// queue statistics and per-process blocked-time attribution, surfaced
	// through Stats. Also free of virtual-time cost. Attach before Run.
	Metrics *Meter
	// Profile, when set, folds every process's virtual timeline into
	// exclusive attribution buckets (internal/profile) exportable as
	// folded stacks or pprof. Also free of virtual-time cost. Attach
	// before Run.
	Profile *profile.Profiler
	// HostProf, when set, measures what the run costs on the host:
	// wall-clock kernel counters (events, heap traffic) and per-subsystem
	// host-time attribution (internal/hostprof). It rides strictly outside
	// the virtual timeline — virtual results and chaos fingerprints stay
	// bit-for-bit identical with it attached. Attach before Run.
	HostProf *hostprof.Profiler
	// Timeline, when set, buckets live telemetry (Co-Pilot utilization,
	// link saturation, per-type backlog, fault counters, ...) into fixed
	// virtual-time windows via the kernel's clock hook
	// (internal/timeline), surfaced through Stats().Timeline. Also free
	// of virtual-time cost. Attach before Run.
	Timeline *timeline.Recorder
	// Flows, when set, classifies every delivered message into a flow
	// (src proc, dst proc, channel type, route) and aggregates the
	// node×node traffic matrix, per-hop attribution, and heavy-hitter
	// table (internal/flowmap), surfaced through Stats().Flows. Also free
	// of virtual-time cost. Attach before Run.
	Flows *flowmap.Map
}

// NewApp starts the configuration phase on a cluster. The PI_MAIN process
// (id 0, rank 0) is created implicitly.
func NewApp(c *cluster.Cluster, opts Options) *App {
	a := &App{
		Clu:         c,
		K:           c.K,
		par:         c.Params,
		opts:        opts,
		speUsed:     map[int]int{},
		copilots:    map[copilotKey]*copilot{},
		copilotRank: map[copilotKey]int{},
		spePosts:    map[int]spePost{},
		speDone:     map[int]int64{},
		flight:      trace.NewFlight(opts.FlightDepth),
	}
	if opts.FlightDepth < 0 {
		panic(usageError(callerLoc(1), "NewApp", "FlightDepth must be >= 0 (0 selects the default depth)"))
	}
	if opts.SPEDeadlock && !opts.DeadlockDetection {
		panic(usageError(callerLoc(1), "NewApp", "SPEDeadlock requires DeadlockDetection"))
	}
	a.allDone = sim.NewEvent(c.K, "pilot/all-done")
	main := &Process{app: a, id: 0, name: "PI_MAIN", kind: KindRegular, nodeID: a.placeRegular(0)}
	a.procs = append(a.procs, main)
	a.regulars = append(a.regulars, main)
	return a
}

func (a *App) placeRegular(procID int) int {
	if a.opts.Placement != nil {
		n := a.opts.Placement(procID, len(a.Clu.Nodes))
		if n < 0 || n >= len(a.Clu.Nodes) {
			panic(fmt.Sprintf("core: Placement returned node %d of %d", n, len(a.Clu.Nodes)))
		}
		return n
	}
	return procID % len(a.Clu.Nodes)
}

// Main returns the PI_MAIN process.
func (a *App) Main() *Process { return a.procs[0] }

// Flight returns the always-on flight recorder: the bounded ring of the
// run's most recent transfer-phase events.
func (a *App) Flight() *trace.Flight { return a.flight }

// ProcNodes maps every trace track label — process names and Co-Pilot rank
// labels — to the node it runs on. The critical-path analyzer uses it to
// fold wire-occupying phases into per-node link resources, so MPI stages
// split into service vs link queueing.
func (a *App) ProcNodes() map[string]int {
	nodes := make(map[string]int, len(a.procs)+len(a.copilotOrder))
	for _, p := range a.procs {
		nodes[p.String()] = p.nodeID
	}
	for _, key := range a.copilotOrder {
		if cp := a.copilots[key]; cp != nil {
			nodes[cp.rank.Label()] = key.node
		}
	}
	return nodes
}

// attachErr shapes the configuration error the checked sink setters
// return when Run has already started.
func (a *App) attachErr(api string) error {
	if a.phase == phaseConfig {
		return nil
	}
	return fmt.Errorf("pilot: %s: observability sinks must be attached in the configuration phase, before Run starts (attaching later would race with recording)", api)
}

// SetTrace attaches the span recorder, rejecting the attachment with a
// configuration error once Run has started (a late attach through the
// public field is inert; through here it is diagnosed).
func (a *App) SetTrace(rec *trace.Recorder) error {
	if err := a.attachErr("SetTrace"); err != nil {
		return err
	}
	a.Trace = rec
	return nil
}

// SetMetrics attaches the meter, with the same configuration-phase check
// as SetTrace.
func (a *App) SetMetrics(m *Meter) error {
	if err := a.attachErr("SetMetrics"); err != nil {
		return err
	}
	a.Metrics = m
	return nil
}

// SetProfile attaches the virtual-time profiler, with the same
// configuration-phase check as SetTrace.
func (a *App) SetProfile(p *profile.Profiler) error {
	if err := a.attachErr("SetProfile"); err != nil {
		return err
	}
	a.Profile = p
	return nil
}

// SetHostProf attaches the wall-clock (host-cost) profiler, with the same
// configuration-phase check as SetTrace.
func (a *App) SetHostProf(p *hostprof.Profiler) error {
	if err := a.attachErr("SetHostProf"); err != nil {
		return err
	}
	a.HostProf = p
	return nil
}

// SetTimeline attaches the windowed telemetry recorder, with the same
// configuration-phase check as SetTrace.
func (a *App) SetTimeline(tl *timeline.Recorder) error {
	if err := a.attachErr("SetTimeline"); err != nil {
		return err
	}
	a.Timeline = tl
	return nil
}

// SetFlows attaches the flow observatory, with the same
// configuration-phase check as SetTrace.
func (a *App) SetFlows(f *flowmap.Map) error {
	if err := a.attachErr("SetFlows"); err != nil {
		return err
	}
	a.Flows = f
	return nil
}

// Processes returns all processes in creation order.
func (a *App) Processes() []*Process { return a.procs }

// Channels returns all channels in creation order.
func (a *App) Channels() []*Channel { return a.chans }

// configOnly guards configuration-phase APIs. Configuration runs on the
// host goroutine (before the simulation starts), so misuse panics with the
// Pilot diagnostic rather than aborting a simulation that isn't running.
func (a *App) configOnly(api string) {
	if a.phase != phaseConfig {
		panic(usageError(callerLoc(2), api, "only allowed in the configuration phase"))
	}
}

// CreateProcess defines a regular Pilot process running fn(index, arg)
// during the execution phase (PI_CreateProcess).
func (a *App) CreateProcess(name string, fn ProcessFunc, index int, arg any) *Process {
	a.configOnly("PI_CreateProcess")
	if fn == nil {
		panic(usageError(callerLoc(1), "PI_CreateProcess", "nil process function"))
	}
	p := &Process{
		app: a, id: len(a.procs), name: name, kind: KindRegular,
		fn: fn, index: index, arg: arg,
	}
	p.rank = len(a.regulars)
	p.nodeID = a.placeRegular(p.id)
	a.procs = append(a.procs, p)
	a.regulars = append(a.regulars, p)
	return p
}

// CreateProcessOn is CreateProcess with an explicit node placement, the
// equivalent of the mpirun host mapping the paper describes.
func (a *App) CreateProcessOn(node int, name string, fn ProcessFunc, index int, arg any) *Process {
	a.configOnly("PI_CreateProcess")
	if node < 0 || node >= len(a.Clu.Nodes) {
		panic(usageError(callerLoc(1), "PI_CreateProcess", "no node %d in a %d-node cluster", node, len(a.Clu.Nodes)))
	}
	p := a.CreateProcess(name, fn, index, arg)
	p.nodeID = node
	return p
}

// CreateSPE defines an SPE process (PI_CreateSPE): prog will run on an SPE
// of the parent process's Cell node, but stays dormant until the parent
// calls RunSPE during its execution phase.
func (a *App) CreateSPE(prog *SPEProgram, parent *Process, index int) *Process {
	a.configOnly("PI_CreateSPE")
	loc := callerLoc(1)
	if prog == nil || prog.Body == nil {
		panic(usageError(loc, "PI_CreateSPE", "nil SPE program"))
	}
	if parent == nil {
		panic(usageError(loc, "PI_CreateSPE", "nil parent process"))
	}
	if parent.IsSPE() {
		panic(usageError(loc, "PI_CreateSPE", "parent %s is an SPE process; SPE processes are controlled by a PPE process", parent))
	}
	node := a.Clu.Nodes[parent.nodeID]
	if node.Arch != cellbe.ArchCell {
		panic(usageError(loc, "PI_CreateSPE", "parent %s runs on %s, which has no SPEs", parent, node.Name))
	}
	used := a.speUsed[parent.nodeID]
	if used >= len(node.SPEs()) {
		panic(usageError(loc, "PI_CreateSPE", "node %s has only %d SPEs; all are reserved", node.Name, len(node.SPEs())))
	}
	a.speUsed[parent.nodeID] = used + 1
	p := &Process{
		app: a, id: len(a.procs),
		name:   fmt.Sprintf("%s#%d", prog.Name, index),
		kind:   KindSPE,
		prog:   prog,
		parent: parent,
		index:  index,
		nodeID: parent.nodeID,
		speIdx: used,
	}
	a.procs = append(a.procs, p)
	return p
}

// CreateChannel binds a unidirectional channel to a process pair
// (PI_CreateChannel). The channel type (Table I) is resolved here and is
// invisible to the programmer.
func (a *App) CreateChannel(from, to *Process) *Channel {
	a.configOnly("PI_CreateChannel")
	loc := callerLoc(1)
	if from == nil || to == nil {
		panic(usageError(loc, "PI_CreateChannel", "nil endpoint"))
	}
	if from == to {
		panic(usageError(loc, "PI_CreateChannel", "%s cannot be both endpoints", from))
	}
	ch := &Channel{app: a, id: len(a.chans), From: from, To: to, typ: resolveType(from, to)}
	a.chans = append(a.chans, ch)
	return ch
}

// CreateBundle groups channels sharing a common endpoint for one specific
// collective usage (PI_CreateBundle). As in the paper, bundle operations
// are not yet available to SPE processes.
func (a *App) CreateBundle(kind BundleKind, chans []*Channel) *Bundle {
	a.configOnly("PI_CreateBundle")
	loc := callerLoc(1)
	if len(chans) == 0 {
		panic(usageError(loc, "PI_CreateBundle", "empty channel list"))
	}
	var common *Process
	for _, ch := range chans {
		if (ch.From.IsSPE() || ch.To.IsSPE()) && !a.opts.SPECollectives {
			panic(usageError(loc, "PI_CreateBundle",
				"%s has an SPE endpoint; collective operations on SPE processes are not supported (CellPilot future work; enable Options.SPECollectives)", ch))
		}
		end := ch.From // broadcast/scatter: common endpoint writes
		role := "writer"
		if kind == BundleGather || kind == BundleSelect || kind == BundleReduce {
			end = ch.To
			role = "reader"
		}
		if end.IsSPE() {
			panic(usageError(loc, "PI_CreateBundle",
				"the bundle's common endpoint must be a regular process, not SPE process %s", end))
		}
		if common == nil {
			common = end
		} else if common != end {
			panic(usageError(loc, "PI_CreateBundle", "channels do not share a common %s endpoint", role))
		}
	}
	b := &Bundle{app: a, id: len(a.bundles), kind: kind, common: common, chans: append([]*Channel(nil), chans...)}
	a.bundles = append(a.bundles, b)
	return b
}

// Run executes the application: it freezes the configuration, builds the
// MPI world (user ranks, one Co-Pilot rank per Cell node, and the optional
// deadlock service rank), starts every regular process plus mainBody as
// PI_MAIN, and drives the simulation to completion. It returns the first
// error the run aborted with, or nil.
func (a *App) Run(mainBody func(ctx *Ctx)) error {
	if a.phase != phaseConfig {
		return fmt.Errorf("pilot: Run called twice")
	}
	a.phase = phaseExec
	// Freeze the observability sinks: everything recorded during the run
	// goes through this snapshot, so writing the public fields after this
	// point cannot race with recording (see SetTrace et al.).
	a.obs = obsSinks{trace: a.Trace, meter: a.Metrics, prof: a.Profile, flight: a.flight, host: a.HostProf, tline: a.Timeline, flow: a.Flows}
	// Wire the host-cost profiler into the kernel's probe hooks. Guarded:
	// a typed-nil assigned into the HostProbe interface would defeat the
	// kernel's `host != nil` fast path.
	if a.obs.host != nil {
		a.K.SetHostProbe(a.obs.host)
		a.Clu.Net.SetHostProf(a.obs.host)
	}
	// Wire the timeline recorder into the kernel's clock hook (guarded
	// for the same typed-nil reason as the host probe).
	a.installTimeline()

	// Rank layout: regular processes first (PI_MAIN = 0), then Co-Pilots,
	// then the deadlock service.
	placements := make([]mpi.Placement, 0, len(a.regulars)+len(a.Clu.Nodes)+1)
	for _, p := range a.regulars {
		placements = append(placements, mpi.Placement{Node: p.nodeID, Label: p.name})
	}
	for _, n := range a.Clu.Nodes {
		if n.Arch != cellbe.ArchCell {
			continue
		}
		groups := 1
		if a.opts.CoPilotPerCell {
			groups = len(n.Cells)
		}
		for g := 0; g < groups; g++ {
			key := copilotKey{n.ID, g}
			a.copilotRank[key] = len(placements)
			a.copilotOrder = append(a.copilotOrder, key)
			label := fmt.Sprintf("copilot@%s", n.Name)
			if groups > 1 {
				label = fmt.Sprintf("copilot@%s/cell%d", n.Name, g)
			}
			placements = append(placements, mpi.Placement{Node: n.ID, Label: label})
		}
	}
	svcRank := -1
	if a.opts.DeadlockDetection {
		svcRank = len(placements)
		placements = append(placements, mpi.Placement{Node: 0, Label: "pisvc=d"})
	}
	world, err := mpi.NewWorld(a.Clu, placements)
	if err != nil {
		return err
	}
	a.world = world
	world.Faults = a.opts.Faults
	world.Host = a.obs.host
	// Wire the flow observatory into the layers that see node→node and
	// wire-level traffic: every delivered MPI message fills the matrix,
	// every frame the interconnect carries is tallied per link.
	if f := a.obs.flow; f != nil {
		f.SetNodes(len(a.Clu.Nodes))
		world.Flow = f.Node
		a.Clu.Net.SetFlowHook(f.Wire)
	}

	// Co-Pilot service processes, spawned in rank order (deterministic).
	for _, key := range a.copilotOrder {
		rank := a.copilotRank[key]
		cp := newCopilot(a, key, world.Rank(rank))
		a.copilots[key] = cp
		label := world.Rank(rank).Label()
		cp.proc = a.K.Spawn(label, func(sp *sim.Proc) {
			a.obs.prof.ProcStart(label, sp.Now())
			defer func() { a.obs.prof.ProcEnd(label, sp.Now()) }()
			// The whole service loop runs under one host-attribution frame:
			// the per-proc tag persists across parks, so only the Co-Pilot's
			// own execution slices are charged to it.
			a.obs.host.Enter(hostprof.SubsysCoPilot)
			defer a.obs.host.Exit()
			cp.loop(sp)
		})
	}
	// Deadlock service.
	if svcRank >= 0 {
		a.svc = newSvc(a)
		a.K.Spawn("pilot/pisvc=d", a.svc.loop)
	}

	// User processes.
	a.userLive = len(a.regulars)
	for _, p := range a.regulars {
		p := p
		body := p.fn
		if p.id == 0 {
			body = func(ctx *Ctx, _ int, _ any) { mainBody(ctx) }
		}
		p.simProc = a.K.Spawn(p.name, func(sp *sim.Proc) {
			defer a.userDone()
			a.meterProcStart(p, sp.Now())
			defer func() { a.meterProcEnd(p, sp.Now()) }()
			// Registered last so it runs first: absorbs procFault unwinds
			// (recording the fault) while the bookkeeping above still runs.
			defer a.recoverFault(p)
			ctx := &Ctx{app: a, P: sp, Self: p, rank: world.Rank(p.rank)}
			body(ctx, p.index, p.arg)
		})
	}

	// Arm the fault injector last, so its events see the full process set.
	if inj := a.opts.Faults; inj != nil {
		inj.OnEvent = a.applyFault
		inj.Arm(a.K)
	}

	err = a.K.Run()
	a.phase = phaseDone
	// Close still-open profiler lifetimes (killed procs, service loops
	// that never observed shutdown) at the final virtual clock.
	a.obs.prof.Finish(a.K.Now())
	// Close the timeline's trailing partial window at the final clock.
	a.obs.tline.Finish(a.K.Now())
	if err == nil {
		err = a.faultSummary()
	}
	return err
}

// userDone retires one user process; when the last one finishes the
// service processes are told to shut down (the paper's PI_StopMain
// synchronization point).
func (a *App) userDone() {
	a.userLive--
	if a.userLive == 0 {
		a.allDone.Fire()
		for _, key := range a.copilotOrder {
			a.copilots[key].nudge()
		}
		if a.svc != nil {
			a.svc.post(svcMsg{kind: svcExit})
		}
	}
}

// copilotKey identifies a Co-Pilot: the node it serves and, under the
// CoPilotPerCell ablation, the Cell processor group (otherwise 0).
type copilotKey struct{ node, cell int }

// copilotKeyFor locates the Co-Pilot responsible for an SPE process.
func (a *App) copilotKeyFor(p *Process) copilotKey {
	cell := 0
	if a.opts.CoPilotPerCell {
		cell = p.speIdx / 8
	}
	return copilotKey{p.nodeID, cell}
}

// copilotFor returns the Co-Pilot servicing an SPE process.
func (a *App) copilotFor(p *Process) *copilot { return a.copilots[a.copilotKeyFor(p)] }

// copilotRankFor returns that Co-Pilot's MPI rank.
func (a *App) copilotRankFor(p *Process) int { return a.copilotRank[a.copilotKeyFor(p)] }

// dbMsg is one payload in a direct-handoff box, carrying its transfer id
// alongside (not inside) the wire bytes so the timing stays unchanged.
type dbMsg struct {
	data []byte
	xfer int64
}

// directBox returns the per-channel handoff queue used by the
// CoPilotDirectLocal ablation (created lazily).
func (a *App) directBox(ch *Channel) *sim.Queue[dbMsg] {
	if a.directBoxes == nil {
		a.directBoxes = map[int]*sim.Queue[dbMsg]{}
	}
	q, ok := a.directBoxes[ch.id]
	if !ok {
		q = sim.NewQueue[dbMsg](a.K, fmt.Sprintf("directbox/%d", ch.id), 4)
		a.directBoxes[ch.id] = q
	}
	return q
}

// logf routes Ctx.Log/SPECtx.Log lines to the application's Logf hook.
func (a *App) logf(p *sim.Proc, proc *Process, format string, args ...any) {
	if a.Logf != nil {
		a.Logf("[%12s] %-24s %s", p.Now(), proc, fmt.Sprintf(format, args...))
	}
}

// record feeds the optional trace recorder, the meter's per-channel
// backlog watermark, and — on the delivery (read) side — the flow
// observatory. dur is the operation's blocked time, which the flow layer
// uses as the delivery latency sample.
func (a *App) record(p *sim.Proc, kind trace.Kind, proc *Process, ch *Channel, bytes int, xfer int64, dur sim.Time) {
	if m := a.obs.meter; m != nil {
		m.noteBacklog(ch.id, kind)
	}
	if a.obs.trace != nil {
		a.obs.trace.Record(trace.Event{At: p.Now(), Kind: kind, Proc: proc.String(), Channel: ch.id, Bytes: bytes, Xfer: xfer})
	}
	if kind == trace.KindRead {
		a.flowDeliver(ch, bytes, dur)
	}
}
