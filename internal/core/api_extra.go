package core

import "cellpilot/internal/sim"

// This file rounds out the Pilot API surface beyond the calls the paper's
// examples use: entity naming (PI_SetName/PI_GetName), bulk channel
// construction (PI_CopyChannels' use case), virtual-time measurement
// (PI_StartTime/PI_EndTime) and user-initiated aborts (PI_Abort).

// SetName labels the channel for diagnostics (PI_SetName).
func (c *Channel) SetName(name string) { c.name = name }

// Name reports the channel's label (PI_GetName), or its default
// description when unnamed.
func (c *Channel) Name() string {
	if c.name != "" {
		return c.name
	}
	return c.String()
}

// SetName labels the bundle for diagnostics (PI_SetName).
func (b *Bundle) SetName(name string) { b.name = name }

// Name reports the bundle's label (PI_GetName).
func (b *Bundle) Name() string {
	if b.name != "" {
		return b.name
	}
	return b.kind.String()
}

// CreateChannels builds one channel from `from` to each process in `tos`,
// in order — the fan-out pattern PI_CopyChannels serves in Pilot
// programs (one call instead of a loop, ready for PI_CreateBundle).
func (a *App) CreateChannels(from *Process, tos []*Process) []*Channel {
	a.configOnly("PI_CreateChannel")
	out := make([]*Channel, len(tos))
	for i, to := range tos {
		out[i] = a.CreateChannel(from, to)
	}
	return out
}

// CreateChannelsTo builds one channel from each process in `froms` to
// `to` — the fan-in counterpart.
func (a *App) CreateChannelsTo(froms []*Process, to *Process) []*Channel {
	a.configOnly("PI_CreateChannel")
	out := make([]*Channel, len(froms))
	for i, from := range froms {
		out[i] = a.CreateChannel(from, to)
	}
	return out
}

// Now reports the current virtual time (the quantity PI_StartTime
// samples).
func (c *Ctx) Now() sim.Time { return c.P.Now() }

// Elapsed reports virtual time since a Now() sample (PI_EndTime usage).
func (c *Ctx) Elapsed(since sim.Time) sim.Time { return c.P.Now() - since }

// Abort terminates the whole application with a diagnostic carrying this
// call's file:line (PI_Abort). It does not return.
func (c *Ctx) Abort(format string, args ...any) {
	c.fail(callerLoc(1), "PI_Abort", format, args...)
}

// Now reports the current virtual time on the SPE.
func (c *SPECtx) Now() sim.Time { return c.P.Now() }

// Abort terminates the whole application from an SPE process (PI_Abort).
func (c *SPECtx) Abort(format string, args ...any) {
	c.fail(callerLoc(1), "PI_Abort", format, args...)
}
