package core

import (
	"fmt"
	"sort"
	"strings"

	"cellpilot/internal/sim"
)

// CoPilotStats counts one Co-Pilot's service activity.
type CoPilotStats struct {
	// Node is the Cell node the Co-Pilot runs on.
	Node int
	// WriteReqs and ReadReqs are decoded SPE mailbox requests by kind.
	WriteReqs, ReadReqs int
	// RelayedBytes is payload relayed over MPI (types 2, 3, 5).
	RelayedBytes int64
	// Type4Copies counts intra-node SPE↔SPE memcpy transfers.
	Type4Copies int
	// Type4Bytes is the payload those copies moved.
	Type4Bytes int64
}

// SPEStats reports one launched SPE process's local-store usage.
type SPEStats struct {
	Process   string
	Node      int
	Resident  int
	HighWater int
}

// Stats is an application-wide utilization report, available after Run.
type Stats struct {
	// VirtualTime is the run's final clock value.
	VirtualTime sim.Time
	// NetworkMessages and NetworkBytes count interconnect traffic.
	NetworkMessages int
	NetworkBytes    int64
	// CoPilots, indexed by node order, covers every Cell node's service
	// process.
	CoPilots []CoPilotStats
	// SPEs covers every SPE process that was launched.
	SPEs []SPEStats
}

// Stats collects the utilization report. Call it after Run returns.
func (a *App) Stats() Stats {
	st := Stats{VirtualTime: a.K.Now()}
	st.NetworkMessages, st.NetworkBytes = a.Clu.Net.Stats()
	keys := make([]copilotKey, 0, len(a.copilots))
	for k := range a.copilots {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].node != keys[j].node {
			return keys[i].node < keys[j].node
		}
		return keys[i].cell < keys[j].cell
	})
	for _, k := range keys {
		cs := a.copilots[k].stats
		cs.Node = k.node
		st.CoPilots = append(st.CoPilots, cs)
	}
	for _, p := range a.procs {
		if p.IsSPE() && p.sctx != nil {
			ls := p.sctx.SPE.LS
			st.SPEs = append(st.SPEs, SPEStats{
				Process:   p.String(),
				Node:      p.nodeID,
				Resident:  ls.Resident(),
				HighWater: ls.HighWater(),
			})
		}
	}
	return st
}

// ConfigDump renders the configured architecture — the process and
// channel tables Pilot builds during the configuration phase — for
// debugging and documentation.
func (a *App) ConfigDump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "processes (%d):\n", len(a.procs))
	for _, p := range a.procs {
		role := "regular"
		if p.IsSPE() {
			role = fmt.Sprintf("SPE (parent %s)", p.parent.name)
		}
		fmt.Fprintf(&b, "  %-3d %-28s %s\n", p.id, p.String(), role)
	}
	fmt.Fprintf(&b, "channels (%d):\n", len(a.chans))
	for _, ch := range a.chans {
		fmt.Fprintf(&b, "  %s\n", ch.Name())
	}
	fmt.Fprintf(&b, "bundles (%d):\n", len(a.bundles))
	for _, bd := range a.bundles {
		fmt.Fprintf(&b, "  %-10s common=%s channels=%d\n", bd.Name(), bd.common.name, len(bd.chans))
	}
	return b.String()
}

// String renders the report.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "run: %s virtual, %d network messages (%d bytes)\n",
		s.VirtualTime, s.NetworkMessages, s.NetworkBytes)
	for _, cp := range s.CoPilots {
		fmt.Fprintf(&b, "  copilot@node%d: %d write + %d read requests, %d bytes relayed, %d type-4 copies (%d bytes)\n",
			cp.Node, cp.WriteReqs, cp.ReadReqs, cp.RelayedBytes, cp.Type4Copies, cp.Type4Bytes)
	}
	for _, spe := range s.SPEs {
		fmt.Fprintf(&b, "  %-28s LS resident %6d, high water %6d\n", spe.Process, spe.Resident, spe.HighWater)
	}
	return b.String()
}
