package core

import (
	"fmt"
	"sort"
	"strings"

	"cellpilot/internal/critpath"
	"cellpilot/internal/fault"
	"cellpilot/internal/flowmap"
	"cellpilot/internal/hostprof"
	"cellpilot/internal/metrics"
	"cellpilot/internal/sim"
	"cellpilot/internal/timeline"
)

// CoPilotStats counts one Co-Pilot's service activity.
type CoPilotStats struct {
	// Node is the Cell node the Co-Pilot runs on.
	Node int
	// WriteReqs and ReadReqs are decoded SPE mailbox requests by kind.
	WriteReqs, ReadReqs int
	// RelayedBytes is payload relayed over MPI (types 2, 3, 5).
	RelayedBytes int64
	// Type4Copies counts intra-node SPE↔SPE memcpy transfers.
	Type4Copies int
	// Type4Bytes is the payload those copies moved.
	Type4Bytes int64
	// Busy is the virtual time the service loop spent stepping requests
	// (vs parked waiting for work); Utilization is Busy over the run's
	// virtual time, the Co-Pilot's service-loop saturation.
	Busy        sim.Time
	Utilization float64
}

// SPEStats reports one launched SPE process's local-store usage and
// mailbox congestion watermarks.
type SPEStats struct {
	Process   string
	Node      int
	Resident  int
	HighWater int
	// InMboxHighWater and OutMboxHighWater are the largest occupancies the
	// SPE's inbound (capacity 4) and outbound (capacity 1) mailboxes ever
	// reached — sustained high values mean the SPE or its Co-Pilot could
	// not drain its partner fast enough.
	InMboxHighWater  int
	OutMboxHighWater int
	// DMABusy is the virtual time the SPE's MFC DMA engine spent moving
	// chunk-stream payloads between local store and main memory;
	// DMAUtilization is that over the run's virtual time. Both are zero
	// when the chunked transfer engine is off or the SPE never streamed.
	DMABusy        sim.Time
	DMAUtilization float64
}

// LinkUtil reports one interconnect link's cumulative occupancy.
type LinkUtil struct {
	// Name identifies the NIC ("nic0", ...), in node order.
	Name string
	// Busy is the virtual time the link spent serializing frames;
	// Utilization is Busy over the run's virtual time.
	Busy        sim.Time
	Utilization float64
}

// ChannelTypeMetrics aggregates every operation that completed on
// channels of one Table I type. Populated only when a Meter was attached
// (App.Metrics); the histograms are live views into the meter's registry.
type ChannelTypeMetrics struct {
	Type ChannelType
	// Ops counts completed read and write operations; Bytes is the total
	// payload they carried.
	Ops   int64
	Bytes int64
	// LatencyUs is per-operation latency in microseconds, SizeBytes the
	// payload-size distribution, BandwidthMBps achieved per-operation
	// bandwidth in MB/s.
	LatencyUs     *metrics.Histogram
	SizeBytes     *metrics.Histogram
	BandwidthMBps *metrics.Histogram
	// BacklogHighWater is the largest in-flight operation backlog (writes
	// completed but not yet read) any single channel of this type reached.
	BacklogHighWater int
}

// ProcTime attributes one process's virtual lifetime: compute versus the
// three ways a CellPilot process blocks on communication. Populated only
// when a Meter was attached.
type ProcTime struct {
	Process string
	// Total is the process's lifetime (spawn to return).
	Total sim.Time
	// Compute is Total minus all blocked time.
	Compute sim.Time
	// BlockedRead is time inside channel reads, BlockedWrite inside
	// channel writes, MailboxWait inside the SPE mailbox protocol
	// (posting the request descriptor and awaiting completion).
	BlockedRead  sim.Time
	BlockedWrite sim.Time
	MailboxWait  sim.Time
}

// FaultStats summarizes a hardened run: the faults the injector fired
// and how the runtime reacted to them. Present in Stats only when
// Options.Faults was set.
type FaultStats struct {
	// Counts carries the injector's fault and reaction counters.
	fault.Counts
	// Killed lists the processes fault injection removed ("name: reason"),
	// in kill order.
	Killed []string
	// ChannelFaults lists every operation fault raised during the run
	// (also available as App.ChannelFaults).
	Faults []*ChannelFault
}

// Stats is an application-wide utilization report, available after Run.
type Stats struct {
	// VirtualTime is the run's final clock value.
	VirtualTime sim.Time
	// NetworkMessages and NetworkBytes count interconnect traffic.
	NetworkMessages int
	NetworkBytes    int64
	// CoPilots, indexed by node order, covers every Cell node's service
	// process.
	CoPilots []CoPilotStats
	// SPEs covers every SPE process that was launched.
	SPEs []SPEStats
	// Links reports per-NIC occupancy and saturation, in node order.
	Links []LinkUtil
	// ChannelTypes, ProcTimes and Registry carry the Meter's aggregates
	// when App.Metrics was attached; all are nil otherwise.
	ChannelTypes []ChannelTypeMetrics
	ProcTimes    []ProcTime
	Registry     *metrics.Registry
	// Faults is the fault-injection summary; nil unless Options.Faults
	// was set.
	Faults *FaultStats
	// CritPath is the causal critical-path decomposition of the run's
	// traced transfers — per-stage service/queueing blame and the top
	// victim/aggressor contention pairs. Populated only when a trace
	// recorder was attached (the analyzer consumes its spans); nil
	// otherwise, at zero cost to the run either way.
	CritPath *critpath.Report
	// Host is the wall-clock (host-cost) profile: kernel event and heap
	// counters plus per-subsystem host-time shares. Populated only when
	// App.HostProf was attached; nil otherwise.
	Host *hostprof.Snapshot
	// Timeline is the windowed telemetry report (per-window series plus
	// peak/mean/p95/burst/recovery analytics). Populated only when
	// App.Timeline was attached; nil otherwise.
	Timeline *timeline.Report
	// Flows is the flow observatory report: node×node traffic matrix,
	// top-K heavy-hitter flows, per-route aggregates, and per-resource
	// (NIC/Co-Pilot) contribution breakdowns. Populated only when
	// App.Flows was attached; nil otherwise.
	Flows *flowmap.Report
}

// Stats collects the utilization report. Call it after Run returns.
func (a *App) Stats() Stats {
	st := Stats{VirtualTime: a.K.Now()}
	st.NetworkMessages, st.NetworkBytes = a.Clu.Net.Stats()
	if a.obs.tline != nil {
		st.Timeline = a.obs.tline.Report()
	}
	if f := a.obs.flow; f != nil {
		st.Flows = f.Report(0)
	}
	elapsed := float64(st.VirtualTime)
	keys := make([]copilotKey, 0, len(a.copilots))
	for k := range a.copilots {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].node != keys[j].node {
			return keys[i].node < keys[j].node
		}
		return keys[i].cell < keys[j].cell
	})
	for _, k := range keys {
		cp := a.copilots[k]
		cs := cp.stats
		cs.Node = k.node
		cs.Busy = cp.busy
		if elapsed > 0 {
			cs.Utilization = float64(cp.busy) / elapsed
		}
		st.CoPilots = append(st.CoPilots, cs)
	}
	for _, p := range a.procs {
		if p.IsSPE() && p.sctx != nil {
			spe := p.sctx.SPE
			ss := SPEStats{
				Process:          p.String(),
				Node:             p.nodeID,
				Resident:         spe.LS.Resident(),
				HighWater:        spe.LS.HighWater(),
				InMboxHighWater:  spe.InMbox.HighWater(),
				OutMboxHighWater: spe.OutMbox.HighWater(),
			}
			if res := a.speDMA[spe]; res != nil {
				ss.DMABusy = res.Busy()
				if elapsed > 0 {
					ss.DMAUtilization = float64(res.Busy()) / elapsed
				}
			}
			st.SPEs = append(st.SPEs, ss)
		}
	}
	for _, ls := range a.Clu.Net.LinkStats() {
		lu := LinkUtil{Name: ls.Name, Busy: ls.Busy}
		if elapsed > 0 {
			lu.Utilization = float64(ls.Busy) / elapsed
		}
		st.Links = append(st.Links, lu)
	}
	if rec := a.obs.trace; rec != nil {
		st.CritPath = critpath.Analyze(rec.Spans(), critpath.Options{ProcNodes: a.ProcNodes()})
	}
	if hp := a.obs.host; hp != nil {
		snap := hp.Snapshot()
		st.Host = &snap
	}
	m := a.obs.meter
	if m == nil {
		m = a.Metrics // Stats before Run: nothing recorded, but keep the registry visible
	}
	if inj := a.opts.Faults; inj != nil {
		st.Faults = &FaultStats{
			Counts: inj.Counts,
			Killed: append([]string(nil), a.killed...),
			Faults: append([]*ChannelFault(nil), a.faults...),
		}
		if m != nil {
			a.pushFaultMetrics(m.reg)
		}
	}
	if m != nil {
		st.Registry = m.reg
		a.pushTelemetryGauges(m.reg, st)
		for t := Type1; t <= Type5; t++ {
			prefix := "chan/" + t.String()
			lat := m.reg.LookupHistogram(prefix + "/latency_us")
			if lat == nil {
				continue // no operation completed on this channel type
			}
			backlog := 0
			for _, ch := range a.chans {
				if ch.typ == t && m.BacklogHighWater(ch.id) > backlog {
					backlog = m.BacklogHighWater(ch.id)
				}
			}
			st.ChannelTypes = append(st.ChannelTypes, ChannelTypeMetrics{
				Type:             t,
				Ops:              m.reg.Counter(prefix + "/ops").Value(),
				Bytes:            m.reg.Counter(prefix + "/payload_bytes_total").Value(),
				LatencyUs:        lat,
				SizeBytes:        m.reg.LookupHistogram(prefix + "/payload_bytes"),
				BandwidthMBps:    m.reg.LookupHistogram(prefix + "/bandwidth_mbps"),
				BacklogHighWater: backlog,
			})
		}
		for _, p := range a.procs {
			acc, ok := m.procs[p.id]
			if !ok {
				continue
			}
			end := acc.end
			if !acc.ended {
				end = a.K.Now()
			}
			pt := ProcTime{
				Process:      p.String(),
				Total:        end - acc.start,
				BlockedRead:  acc.blocked[blockRead],
				BlockedWrite: acc.blocked[blockWrite],
				MailboxWait:  acc.blocked[blockMailbox],
			}
			pt.Compute = pt.Total - pt.BlockedRead - pt.BlockedWrite - pt.MailboxWait
			st.ProcTimes = append(st.ProcTimes, pt)
		}
	}
	return st
}

// pushTelemetryGauges publishes the congestion/utilization telemetry into
// the metrics registry as gauges (idempotent: Set overwrites, so calling
// Stats twice is safe) so it rides along in dumps, JSON snapshots and the
// OpenMetrics endpoint.
func (a *App) pushTelemetryGauges(reg *metrics.Registry, st Stats) {
	for _, key := range a.copilotOrder {
		cp := a.copilots[key]
		prefix := "copilot/" + cp.rank.Label()
		reg.Gauge(prefix + "/busy_us").Set(cp.busy.Micros())
		if st.VirtualTime > 0 {
			reg.Gauge(prefix + "/utilization").Set(float64(cp.busy) / float64(st.VirtualTime))
		}
	}
	for _, lu := range st.Links {
		prefix := "link/" + lu.Name
		reg.Gauge(prefix + "/busy_us").Set(lu.Busy.Micros())
		reg.Gauge(prefix + "/utilization").Set(lu.Utilization)
	}
	for _, spe := range st.SPEs {
		prefix := "spe/" + spe.Process
		reg.Gauge(prefix + "/inmbox_highwater").Set(float64(spe.InMboxHighWater))
		reg.Gauge(prefix + "/outmbox_highwater").Set(float64(spe.OutMboxHighWater))
		if spe.DMABusy > 0 {
			reg.Gauge(prefix + "/mfcdma_busy_us").Set(spe.DMABusy.Micros())
			reg.Gauge(prefix + "/mfcdma_utilization").Set(spe.DMAUtilization)
		}
	}
	if m := a.obs.meter; m != nil {
		for _, ch := range a.chans {
			if hw := m.BacklogHighWater(ch.id); hw > 0 {
				reg.Gauge(fmt.Sprintf("chan/%s/backlog_highwater", ch.typ)).SetMax(float64(hw))
			}
		}
	}
	if st.Host != nil {
		st.Host.PublishTo(reg)
	}
	if fr := st.Flows; fr != nil {
		reg.Gauge("flow/flows").Set(float64(fr.FlowCount))
		reg.Gauge("flow/messages_total").Set(float64(fr.TotalMsgs))
		reg.Gauge("flow/bytes_total").Set(float64(fr.TotalBytes))
		for _, rt := range fr.Routes {
			reg.Gauge("flow/route/" + rt.Route + "/bytes").Set(float64(rt.Bytes))
			reg.Gauge("flow/route/" + rt.Route + "/messages").Set(float64(rt.Msgs))
		}
	}
}

// pushFaultMetrics publishes the injector's counters into the metrics
// registry under fault/*, once per run, so they appear in dumps and
// exports alongside the channel metrics.
func (a *App) pushFaultMetrics(reg *metrics.Registry) {
	if a.faultMetricsPushed {
		return
	}
	a.faultMetricsPushed = true
	c := a.opts.Faults.Counts
	for _, kv := range []struct {
		name string
		v    int64
	}{
		{"fault/link_drops", c.LinkDrops},
		{"fault/link_corrupts", c.LinkCorrupts},
		{"fault/link_delays", c.LinkDelays},
		{"fault/retransmits", c.Retransmits},
		{"fault/dup_frames", c.DupFrames},
		{"fault/ack_drops", c.AckDrops},
		{"fault/give_ups", c.GiveUps},
		{"fault/give_up_drops", c.GiveUpDrops},
		{"fault/mailbox_drops", c.MailboxDrops},
		{"fault/mailbox_stalls", c.MailboxStalls},
		{"fault/mailbox_nacks", c.MailboxNacks},
		{"fault/mailbox_reposts", c.MailboxReposts},
		{"fault/op_timeouts", c.OpTimeouts},
		{"fault/channel_faults", c.ChannelFaults},
		{"fault/procs_killed", c.ProcsKilled},
	} {
		reg.Counter(kv.name).Add(kv.v)
	}
}

// ConfigDump renders the configured architecture — the process and
// channel tables Pilot builds during the configuration phase — for
// debugging and documentation.
func (a *App) ConfigDump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "processes (%d):\n", len(a.procs))
	for _, p := range a.procs {
		role := "regular"
		if p.IsSPE() {
			role = fmt.Sprintf("SPE (parent %s)", p.parent.name)
		}
		fmt.Fprintf(&b, "  %-3d %-28s %s\n", p.id, p.String(), role)
	}
	fmt.Fprintf(&b, "channels (%d):\n", len(a.chans))
	for _, ch := range a.chans {
		fmt.Fprintf(&b, "  %s\n", ch.Name())
	}
	fmt.Fprintf(&b, "bundles (%d):\n", len(a.bundles))
	for _, bd := range a.bundles {
		fmt.Fprintf(&b, "  %-10s common=%s channels=%d\n", bd.Name(), bd.common.name, len(bd.chans))
	}
	return b.String()
}

// String renders the report.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "run: %s virtual, %d network messages (%d bytes)\n",
		s.VirtualTime, s.NetworkMessages, s.NetworkBytes)
	for _, cp := range s.CoPilots {
		fmt.Fprintf(&b, "  copilot@node%d: %d write + %d read requests, %d bytes relayed, %d type-4 copies (%d bytes), busy %v (%.1f%% utilized)\n",
			cp.Node, cp.WriteReqs, cp.ReadReqs, cp.RelayedBytes, cp.Type4Copies, cp.Type4Bytes, cp.Busy, 100*cp.Utilization)
	}
	for _, spe := range s.SPEs {
		fmt.Fprintf(&b, "  %-28s LS resident %6d, high water %6d, mbox high water in=%d out=%d",
			spe.Process, spe.Resident, spe.HighWater, spe.InMboxHighWater, spe.OutMboxHighWater)
		if spe.DMABusy > 0 {
			fmt.Fprintf(&b, ", mfc-dma busy %v (%.1f%% utilized)", spe.DMABusy, 100*spe.DMAUtilization)
		}
		b.WriteByte('\n')
	}
	for _, lu := range s.Links {
		fmt.Fprintf(&b, "  %-6s busy %v (%.1f%% saturated)\n", lu.Name, lu.Busy, 100*lu.Utilization)
	}
	for _, ct := range s.ChannelTypes {
		fmt.Fprintf(&b, "  %s: %d ops, %d bytes, latency p50=%.1fus p99=%.1fus",
			ct.Type, ct.Ops, ct.Bytes, ct.LatencyUs.Quantile(0.5), ct.LatencyUs.Quantile(0.99))
		if ct.BandwidthMBps != nil && ct.BandwidthMBps.Count() > 0 {
			fmt.Fprintf(&b, ", bandwidth p50=%.1fMB/s", ct.BandwidthMBps.Quantile(0.5))
		}
		if ct.BacklogHighWater > 0 {
			fmt.Fprintf(&b, ", backlog high water %d", ct.BacklogHighWater)
		}
		b.WriteByte('\n')
	}
	for _, pt := range s.ProcTimes {
		fmt.Fprintf(&b, "  %-28s total %v: compute %v, read-blocked %v, write-blocked %v, mailbox %v\n",
			pt.Process, pt.Total, pt.Compute, pt.BlockedRead, pt.BlockedWrite, pt.MailboxWait)
	}
	if h := s.Host; h != nil && h.Events > 0 {
		fmt.Fprintf(&b, "  host: %d events, %.0fns/event sampled, max heap depth %d\n",
			h.Events, h.NsPerSlice, h.MaxHeapDepth)
	}
	if fr := s.Flows; fr != nil {
		fmt.Fprintf(&b, "  flows: %d flows, %d messages (%d bytes) across %d routes\n",
			fr.FlowCount, fr.TotalMsgs, fr.TotalBytes, len(fr.Routes))
	}
	if cp := s.CritPath; cp != nil && cp.CritTotal > 0 {
		fmt.Fprintf(&b, "  critical path: %d traced transfers, %v summed, %v queueing behind other transfers\n",
			len(cp.Transfers), cp.CritTotal, cp.QueueTotal)
	}
	if f := s.Faults; f != nil {
		fmt.Fprintf(&b, "  faults: %d process(es) killed, %d channel(s) poisoned, %d op timeout(s)\n",
			f.ProcsKilled, f.ChannelFaults, f.OpTimeouts)
		fmt.Fprintf(&b, "  link: %d drops, %d corrupts, %d delays; %d retransmits, %d dup frames, %d lost acks, %d give-ups (%d late drops)\n",
			f.LinkDrops, f.LinkCorrupts, f.LinkDelays, f.Retransmits, f.DupFrames, f.AckDrops, f.GiveUps, f.GiveUpDrops)
		fmt.Fprintf(&b, "  mailbox: %d drops, %d stalls, %d nacks, %d reposts\n",
			f.MailboxDrops, f.MailboxStalls, f.MailboxNacks, f.MailboxReposts)
		for _, k := range f.Killed {
			fmt.Fprintf(&b, "    killed %s\n", k)
		}
	}
	return b.String()
}
