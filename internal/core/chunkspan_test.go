package core

import (
	"strings"
	"testing"

	"cellpilot/internal/trace"
)

// chunkEvents groups the recorded per-chunk annotations (frame and
// mfc-dma) by owning stream id.
func chunkEvents(rec *trace.Recorder) map[int64][]trace.PhaseEvent {
	out := map[int64][]trace.PhaseEvent{}
	for _, pe := range rec.Phases() {
		if pe.Phase == trace.PhaseChunkFrame || pe.Phase == trace.PhaseChunkDMA {
			out[pe.Xfer] = append(out[pe.Xfer], pe)
		}
	}
	return out
}

// E-CS1: chunk annotations are self-describing — each carries the owning
// stream id and a 1-based chunk index — and the sampling filter keeps or
// drops a stream's chunk events atomically with the stream itself.
func TestChunkSpanSamplingConsistent(t *testing.T) {
	const payload = 64 << 10
	opts := Options{Transfer: TransferOptions{ChunkSize: 8 << 10}}

	full := trace.NewRecorder(0)
	runType1Bounce(t, payload, opts, full, 0)
	all := chunkEvents(full)
	if len(all) < 2 {
		t.Fatalf("chunked bounce produced %d streams with chunk events, want 2 (request + reply)", len(all))
	}
	for xfer, evs := range all {
		for _, pe := range evs {
			if pe.Stream != xfer || pe.Chunk < 1 {
				t.Fatalf("chunk annotation not self-describing: %+v", pe)
			}
		}
	}

	sampled := trace.NewRecorder(0)
	sampled.SetSampleEvery(2)
	runType1Bounce(t, payload, opts, sampled, 0)
	kept := chunkEvents(sampled)
	dropped := 0
	for xfer, evs := range all {
		if (xfer-1)%2 == 0 {
			// Retained stream: the full chunk set survives.
			if len(kept[xfer]) != len(evs) {
				t.Fatalf("stream %d kept %d of %d chunk events", xfer, len(kept[xfer]), len(evs))
			}
			continue
		}
		dropped++
		if n := len(kept[xfer]); n != 0 {
			t.Fatalf("sampled-out stream %d still has %d chunk events", xfer, n)
		}
	}
	if dropped == 0 {
		t.Fatal("no stream fell to the sampling filter; test exercises nothing")
	}
	if sampled.SampledOut() == 0 {
		t.Fatal("sampling filter reported nothing discarded")
	}
}

// E-CS2: a chunked run with a meter attached publishes the in-flight
// stream backlog gauges, live value plus high-water, for both directions.
func TestStreamInflightGauges(t *testing.T) {
	c := newTestCluster(t)
	a := NewApp(c, Options{Transfer: TransferOptions{ChunkSize: 8 << 10}})
	meter := NewMeter()
	a.Metrics = meter
	const payload = 64 << 10
	msg := make([]byte, payload)
	got := make([]byte, payload)
	var ab, ba *Channel
	peer := a.CreateProcessOn(1, "bounce_peer", func(ctx *Ctx, _ int, _ any) {
		buf := make([]byte, payload)
		ctx.Read(ab, "%65536b", buf)
		ctx.Write(ba, "%65536b", buf)
	}, 0, nil)
	ab = a.CreateChannel(a.Main(), peer)
	ba = a.CreateChannel(peer, a.Main())
	err := a.Run(func(ctx *Ctx) {
		ctx.Write(ab, "%65536b", msg)
		ctx.Read(ba, "%65536b", got)
	})
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, g := range meter.Registry().GaugeNames() {
		if strings.HasPrefix(g, "copilot/stream/") {
			names[g] = true
		}
	}
	for _, want := range []string{
		"copilot/stream/inflight_send",
		"copilot/stream/inflight_send_highwater",
		"copilot/stream/inflight_recv",
		"copilot/stream/inflight_recv_highwater",
	} {
		if !names[want] {
			t.Fatalf("gauge %s missing; stream gauges: %v", want, names)
		}
	}
	if hw := meter.Registry().Gauge("copilot/stream/inflight_send_highwater").Value(); hw < 1 {
		t.Fatalf("send high-water %v, want >= 1 on a pipelined stream", hw)
	}
	if hw := meter.Registry().Gauge("copilot/stream/inflight_recv_highwater").Value(); hw < 1 {
		t.Fatalf("recv high-water %v, want >= 1 on a pipelined stream", hw)
	}
}
