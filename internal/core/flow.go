package core

import (
	"fmt"

	"cellpilot/internal/flowmap"
	"cellpilot/internal/sim"
)

// copilotLabelPrefix prefixes every Co-Pilot rank label ("copilot@cell0",
// "copilot@cell1/cell1" under the per-cell ablation). The flow layer uses
// it to recognize relay occupancy spans without per-site hooks.
const copilotLabelPrefix = "copilot@"

// chanFlow is a channel's flow classification: the flow key every
// delivery on it maps to, plus the resources each delivered byte
// traversed. Computed once per channel at first delivery (the Co-Pilot
// ranks it names exist only once Run has built the MPI world) and cached
// on the channel.
type chanFlow struct {
	key flowmap.Key
	// hops are the Co-Pilot rank labels on the route, in traversal order
	// (writer side first). Empty for type 1.
	hops []string
	// nics are the NIC resource names the payload serializes through
	// ("nic<node>" of the transmitting node). Empty for on-node routes.
	nics []string
}

// flowRoute maps a channel type and direction onto the route taxonomy.
// Type 1 keeps one route for both same-node and cross-node pairs: the
// paper's taxonomy is about SPE involvement, and both go through MPI.
func flowRoute(ch *Channel) string {
	switch ch.typ {
	case Type1:
		return flowmap.RoutePPEtoPPE
	case Type2:
		if ch.To.IsSPE() {
			return flowmap.RoutePPEtoSPE
		}
		return flowmap.RouteSPEtoPPE
	case Type3:
		if ch.To.IsSPE() {
			return flowmap.RoutePPEtoRemSPE
		}
		return flowmap.RouteRemSPEtoPPE
	case Type4:
		return flowmap.RouteSPEtoSPE
	default:
		return flowmap.RouteSPEtoRemSPE
	}
}

// flowInfo computes (or returns the cached) flow classification of a
// channel: key plus hop and NIC attribution lists.
func (a *App) flowInfo(ch *Channel) *chanFlow {
	if ch.flow != nil {
		return ch.flow
	}
	cf := &chanFlow{key: flowmap.Key{
		Src:   ch.From.String(),
		Dst:   ch.To.String(),
		Type:  int(ch.typ),
		Route: flowRoute(ch),
	}}
	cpLabel := func(p *Process) string { return a.copilotFor(p).rank.Label() }
	crossNode := ch.From.nodeID != ch.To.nodeID
	switch ch.typ {
	case Type1:
		// Plain MPI; a Co-Pilot never touches the payload.
	case Type2:
		if ch.To.IsSPE() {
			cf.hops = []string{cpLabel(ch.To)}
		} else {
			cf.hops = []string{cpLabel(ch.From)}
		}
	case Type3:
		if ch.To.IsSPE() {
			cf.hops = []string{cpLabel(ch.To)}
		} else {
			cf.hops = []string{cpLabel(ch.From)}
		}
	case Type4:
		cf.hops = []string{cpLabel(ch.From)}
	case Type5:
		cf.hops = []string{cpLabel(ch.From), cpLabel(ch.To)}
	}
	if crossNode {
		// The payload serializes out of the writer's node exactly once on
		// every cross-node route (the type-5 relay leg also leaves from
		// the writer's node: its Co-Pilot forwards over MPI from there).
		cf.nics = []string{fmt.Sprintf("nic%d", ch.From.nodeID)}
	}
	ch.flow = cf
	return cf
}

// flowDeliver classifies one delivered message into its flow: the flow
// table and route aggregates take the payload size and latency sample,
// and every hop on the route is attributed the delivered bytes (NICs
// additionally their serialization occupancy; Co-Pilot occupancy comes
// from the relay spans via spanPhase, which measures queueing too).
func (a *App) flowDeliver(ch *Channel, bytes int, dur sim.Time) {
	f := a.obs.flow
	if f == nil {
		return
	}
	fi := a.flowInfo(ch)
	f.Deliver(fi.key, bytes, dur)
	for _, h := range fi.hops {
		f.HopBytes(h, fi.key, bytes)
	}
	for _, nic := range fi.nics {
		f.HopBytes(nic, fi.key, bytes)
		f.HopBusy(nic, fi.key, a.Clu.Net.SerializationTime(bytes))
	}
}

