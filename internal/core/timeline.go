package core

import (
	"fmt"

	"cellpilot/internal/timeline"
)

// installTimeline wires the timeline recorder into the kernel's clock
// hook. Like every sink, the recorder only reads: the sampler walks live
// runtime state (Co-Pilot busy time, link occupancy, channel backlog,
// fault counters) without scheduling anything, so an attached timeline
// cannot move a single virtual timestamp.
func (a *App) installTimeline() {
	tl := a.obs.tline
	if tl == nil {
		return
	}
	tl.SetSampler(a.timelineSample)
	a.K.SetClockHook(tl.Observe)
}

// timelineSample reads one window's worth of live state. Series names
// follow the metrics registry's naming where a registry counterpart
// exists, so the timeline and /metrics.json speak the same vocabulary.
func (a *App) timelineSample(s *timeline.Sample) {
	for _, key := range a.copilotOrder {
		cp := a.copilots[key]
		s.Add("copilot/"+cp.rank.Label()+"/utilization", timeline.Busy, float64(cp.busy))
	}
	for _, ls := range a.Clu.Net.LinkStats() {
		s.Add("link/"+ls.Name+"/saturation", timeline.Busy, float64(ls.Busy))
	}
	msgs, bytes := a.Clu.Net.Stats()
	s.Add("net/bytes", timeline.Counter, float64(bytes))
	s.Add("net/messages", timeline.Counter, float64(msgs))
	if f := a.obs.flow; f != nil {
		// Per-route delivered-byte counters. RouteNames is sorted, so
		// series creation order — and with it the timeline fingerprint —
		// is deterministic.
		for _, r := range f.RouteNames() {
			s.Add("flow/"+r, timeline.Counter, float64(f.RouteBytes(r)))
		}
	}
	for _, p := range a.procs {
		if p.IsSPE() && p.sctx != nil {
			s.Add("mailbox/"+p.String()+"/in_highwater", timeline.Gauge, float64(p.sctx.SPE.InMbox.HighWater()))
		}
	}
	if m := a.obs.meter; m != nil {
		total := 0
		var byType [6]int
		var present [6]bool
		for _, ch := range a.chans {
			t := int(ch.typ)
			if t < 1 || t > 5 {
				continue
			}
			present[t] = true
			n := m.backlog[ch.id]
			byType[t] += n
			total += n
		}
		s.Add("backlog/total", timeline.Gauge, float64(total))
		for t := 1; t <= 5; t++ {
			if !present[t] {
				continue
			}
			s.Add(fmt.Sprintf("backlog/type%d", t), timeline.Gauge, float64(byType[t]))
			// Bytes moved per type: read-only registry lookup — creating
			// the counter here would mutate the registry from a sampler.
			name := fmt.Sprintf("chan/type%d/payload_bytes_total", t)
			if c := m.reg.LookupCounter(name); c != nil {
				s.Add(name, timeline.Counter, float64(c.Value()))
			}
		}
		for _, name := range []string{"copilot/stream/inflight_send", "copilot/stream/inflight_recv"} {
			if g := m.reg.LookupGauge(name); g != nil {
				s.Add(name, timeline.Gauge, g.Value())
			}
		}
	}
	if inj := a.opts.Faults; inj != nil {
		c := &inj.Counts
		for _, fc := range []struct {
			name string
			v    int64
		}{
			{"fault/link_drops", c.LinkDrops},
			{"fault/link_corrupts", c.LinkCorrupts},
			{"fault/link_delays", c.LinkDelays},
			{"fault/retransmits", c.Retransmits},
			{"fault/dup_frames", c.DupFrames},
			{"fault/ack_drops", c.AckDrops},
			{"fault/give_ups", c.GiveUps},
			{"fault/give_up_drops", c.GiveUpDrops},
			{"fault/mailbox_drops", c.MailboxDrops},
			{"fault/mailbox_stalls", c.MailboxStalls},
			{"fault/mailbox_nacks", c.MailboxNacks},
			{"fault/mailbox_reposts", c.MailboxReposts},
			{"fault/op_timeouts", c.OpTimeouts},
			{"fault/channel_faults", c.ChannelFaults},
			{"fault/procs_killed", c.ProcsKilled},
		} {
			s.Add(fc.name, timeline.Counter, float64(fc.v))
		}
	}
}
