package core

import (
	"strings"
	"testing"
)

func TestStatsReport(t *testing.T) {
	c := newTestCluster(t)
	a := NewApp(c, Options{})
	var down, up, cross *Channel
	echo := &SPEProgram{Name: "echo", Body: func(ctx *SPECtx) {
		buf := make([]byte, 128)
		ctx.Read(down, "%128b", buf)
		ctx.Write(up, "%128b", buf)
		ctx.Write(cross, "%128b", buf) // type 4 to sibling
	}}
	sink := &SPEProgram{Name: "sink", Body: func(ctx *SPECtx) {
		buf := make([]byte, 128)
		ctx.Read(cross, "%128b", buf)
	}}
	s1 := a.CreateSPE(echo, a.Main(), 0)
	s2 := a.CreateSPE(sink, a.Main(), 1)
	down = a.CreateChannel(a.Main(), s1)
	up = a.CreateChannel(s1, a.Main())
	cross = a.CreateChannel(s1, s2)
	err := a.Run(func(ctx *Ctx) {
		ctx.RunSPE(s1, 0, nil)
		ctx.RunSPE(s2, 1, nil)
		buf := make([]byte, 128)
		ctx.Write(down, "%128b", buf)
		ctx.Read(up, "%128b", buf)
	})
	if err != nil {
		t.Fatal(err)
	}
	st := a.Stats()
	if st.VirtualTime <= 0 {
		t.Fatal("no virtual time")
	}
	if len(st.CoPilots) != 2 { // one per Cell node in the cluster
		t.Fatalf("copilots = %d", len(st.CoPilots))
	}
	cp := st.CoPilots[0] // node 0 hosts all the action
	// Requests: s1 read (down), s1 write (up), s1 write (cross), s2 read
	// (cross) = 2 writes + 2 reads.
	if cp.WriteReqs != 2 || cp.ReadReqs != 2 {
		t.Fatalf("requests = %d writes, %d reads", cp.WriteReqs, cp.ReadReqs)
	}
	if cp.Type4Copies != 1 || cp.Type4Bytes != 128 {
		t.Fatalf("type4 = %d copies, %d bytes", cp.Type4Copies, cp.Type4Bytes)
	}
	if cp.RelayedBytes != 128 { // only the "up" relay crosses MPI
		t.Fatalf("relayed = %d", cp.RelayedBytes)
	}
	if len(st.SPEs) != 2 {
		t.Fatalf("SPE stats = %d", len(st.SPEs))
	}
	for _, spe := range st.SPEs {
		if spe.Resident <= 0 || spe.HighWater < spe.Resident {
			t.Fatalf("LS accounting wrong: %+v", spe)
		}
		if spe.HighWater <= spe.Resident {
			t.Fatalf("%s staged buffers but high water did not move", spe.Process)
		}
	}
	out := st.String()
	for _, want := range []string{"copilot@node0", "type-4 copies", "high water"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}
