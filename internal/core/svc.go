package core

import (
	"fmt"

	"cellpilot/internal/deadlock"
	"cellpilot/internal/sim"
)

// svcKind tags deadlock-service messages.
type svcKind int

const (
	svcBlock svcKind = iota
	svcUnblock
	svcSent
	svcExit
)

// svcMsg is one report to the deadlock service.
type svcMsg struct {
	kind svcKind
	proc *Process
	peer *Process
	ch   *Channel
	op   deadlock.Op
	loc  string // user call site of the blocked operation (may be empty)
}

// svcState is the deadlock-detection service (the paper's "-pisvc=d"): a
// dedicated process consuming BLOCK/UNBLOCK reports from channel
// operations and aborting the run when a circular wait forms. Reports
// travel on an out-of-band queue so enabling the service does not perturb
// the calibrated channel timings (the real service rides MPI; its
// perturbation is not part of any measured experiment).
type svcState struct {
	app *App
	q   *sim.Queue[svcMsg]
	det *deadlock.Detector
}

func newSvc(a *App) *svcState {
	names := make(map[int]string, len(a.procs))
	for _, p := range a.procs {
		names[p.id] = p.String()
	}
	return &svcState{
		app: a,
		q:   sim.NewQueue[svcMsg](a.K, "pisvc", 1<<15),
		det: deadlock.New(names),
	}
}

func (s *svcState) post(m svcMsg) {
	if !s.q.TryPut(m) {
		// The queue is far larger than any plausible in-flight report set;
		// overflowing it means the service died or the app leaked reports.
		s.app.K.Abort(fmt.Errorf("pilot: deadlock service queue overflow"))
	}
}

func (s *svcState) loop(p *sim.Proc) {
	for {
		m := s.q.Get(p)
		switch m.kind {
		case svcExit:
			return
		case svcBlock:
			var cyc *deadlock.Cycle
			if m.op == deadlock.OpRead {
				cyc = s.det.BlockReadAt(m.proc.id, m.peer.id, m.ch.id, m.loc)
			} else {
				cyc = s.det.BlockWriteAt(m.proc.id, m.peer.id, m.ch.id, m.loc)
			}
			if cyc != nil {
				// With an operation timeout armed, a circular wait degrades
				// instead of aborting: the member operations time out, and
				// each timeout fault carries this cycle as its diagnostic
				// (the wait graph keeps the cycle until then).
				if s.app.opts.OpTimeout > 0 {
					if inj := s.app.opts.Faults; inj != nil {
						inj.Logf(s.app.K.Now(), "deadlock detected, degrading via timeouts: %v", cyc)
					}
					continue
				}
				s.app.K.Abort(cyc)
				return
			}
		case svcSent:
			s.det.Sent(m.ch.id)
		case svcUnblock:
			s.det.Unblock(m.proc.id)
		}
	}
}

// reportBlock tells the deadlock service proc is blocked on ch waiting for
// peer, at user call site loc. No-op unless the service is enabled.
func (a *App) reportBlock(proc, peer *Process, ch *Channel, op deadlock.Op, loc string) {
	if a.svc != nil {
		a.svc.post(svcMsg{kind: svcBlock, proc: proc, peer: peer, ch: ch, op: op, loc: loc})
	}
}

// reportUnblock tells the deadlock service proc resumed.
func (a *App) reportUnblock(proc *Process) {
	if a.svc != nil {
		a.svc.post(svcMsg{kind: svcUnblock, proc: proc})
	}
}

// reportSent tells the deadlock service a message was handed to the
// transport on ch, so a present or future blocked read on ch is not a
// wait-for edge.
func (a *App) reportSent(ch *Channel) {
	if a.svc != nil {
		a.svc.post(svcMsg{kind: svcSent, ch: ch})
	}
}
