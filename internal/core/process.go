package core

import (
	"fmt"

	"cellpilot/internal/sdk"
	"cellpilot/internal/sim"
)

// Kind distinguishes regular Pilot processes (MPI ranks on PPEs or
// conventional cores) from SPE processes (served by a Co-Pilot).
type Kind int

// Process kinds.
const (
	KindRegular Kind = iota
	KindSPE
)

// ProcessFunc is a regular Pilot process body (the function passed to
// PI_CreateProcess). index and arg are the values given at creation, in
// the pthread_create style the paper describes.
type ProcessFunc func(ctx *Ctx, index int, arg any)

// SPEFunc is an SPE process body — the code between the paper's
// PI_SPE_PROCESS and PI_SPE_END macros.
type SPEFunc func(ctx *SPECtx)

// SPEProgram is the simulated counterpart of an spe_program_handle_t: an
// SPE executable embedded in the application (referred to through the
// PI_SPE_FUNC macro in the paper so configuration code also compiles on
// non-Cell nodes).
type SPEProgram struct {
	// Name identifies the program.
	Name string
	// CodeSize is the local-store footprint of its text+data (0 = model
	// default). The CellPilot runtime footprint is added on load.
	CodeSize int
	// Body is the program.
	Body SPEFunc
}

// Process is one Pilot process: a site for channel endpoints. Regular
// processes start automatically in the execution phase; SPE processes
// stay dormant until their parent calls RunSPE (PI_StartSPE/PI_RunSPE).
type Process struct {
	app  *App
	id   int
	name string
	kind Kind

	// Regular processes.
	fn     ProcessFunc
	index  int
	arg    any
	rank   int // MPI rank (PI_MAIN = 0)
	nodeID int

	// SPE processes.
	prog    *SPEProgram
	parent  *Process
	speIdx  int // reserved SPE (node-global index) on the parent's node
	sctx    *sdk.Context
	started bool

	// Fault-layer state (untouched in clean runs): the sim proc backing
	// the process once running (so injection can kill it), whether the
	// process was killed, and the stub's mailbox descriptor sequence.
	simProc *sim.Proc
	dead    bool
	mboxSeq uint32
}

// ID reports the process id (creation order; PI_MAIN is 0).
func (p *Process) ID() int { return p.id }

// Name reports the process name.
func (p *Process) Name() string { return p.name }

// Kind reports whether this is a regular or SPE process.
func (p *Process) Kind() Kind { return p.kind }

// IsSPE reports whether the process runs on an SPE.
func (p *Process) IsSPE() bool { return p.kind == KindSPE }

// NodeID reports the cluster node hosting the process.
func (p *Process) NodeID() int { return p.nodeID }

// Rank reports the MPI rank of a regular process; SPE processes have no
// rank (their Co-Pilot speaks MPI for them).
func (p *Process) Rank() (int, bool) {
	if p.kind != KindRegular {
		return 0, false
	}
	return p.rank, true
}

// Parent reports the controlling PPE process of an SPE process.
func (p *Process) Parent() *Process { return p.parent }

// SetArg replaces the argument a regular process will receive — useful
// when the argument (e.g. a channel) can only be created after the
// process. Configuration phase only.
func (p *Process) SetArg(arg any) {
	p.app.configOnly("PI_CreateProcess")
	p.arg = arg
}

// String implements fmt.Stringer.
func (p *Process) String() string {
	if p.kind == KindSPE {
		return fmt.Sprintf("%s(spe@node%d)", p.name, p.nodeID)
	}
	return fmt.Sprintf("%s(rank%d@node%d)", p.name, p.rank, p.nodeID)
}
