package core

import (
	"strings"
	"testing"

	"cellpilot/internal/sim"
)

// These tests cover the paper's two future-work items, implemented here
// as opt-in extensions: collective operations over SPE processes
// (Options.SPECollectives) and deadlock checking for SPE channel
// operations (Options.SPEDeadlock).

func TestSPECollectiveBroadcast(t *testing.T) {
	c := newTestCluster(t)
	a := NewApp(c, Options{SPECollectives: true})
	var chans []*Channel
	got := make([]int32, 3)
	speBody := func(slot int) *SPEProgram {
		return &SPEProgram{Name: "bcast_rx", Body: func(ctx *SPECtx) {
			var v int32
			ctx.Read(chans[slot], "%d", &v)
			got[slot] = v
		}}
	}
	spe0 := a.CreateSPE(speBody(0), a.Main(), 0)
	spe1 := a.CreateSPE(speBody(1), a.Main(), 1)
	reg := a.CreateProcessOn(1, "reg", func(ctx *Ctx, _ int, _ any) {
		var v int32
		ctx.Read(chans[2], "%d", &v)
		got[2] = v
	}, 0, nil)
	chans = []*Channel{
		a.CreateChannel(a.Main(), spe0),
		a.CreateChannel(a.Main(), spe1),
		a.CreateChannel(a.Main(), reg),
	}
	b := a.CreateBundle(BundleBroadcast, chans)
	err := a.Run(func(ctx *Ctx) {
		ctx.RunSPE(spe0, 0, nil)
		ctx.RunSPE(spe1, 1, nil)
		ctx.Broadcast(b, "%d", int32(4242))
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != 4242 {
			t.Fatalf("receiver %d got %d", i, v)
		}
	}
}

func TestSPECollectiveGatherAndSelect(t *testing.T) {
	c := newTestCluster(t)
	a := NewApp(c, Options{SPECollectives: true})
	var from []*Channel
	mk := func(id int) *SPEProgram {
		return &SPEProgram{Name: "contrib", Body: func(ctx *SPECtx) {
			ctx.P.Advance(sim.Time(10*(id+1)) * sim.Microsecond)
			ctx.Write(from[id], "%2d", []int32{int32(id), int32(id * 100)})
		}}
	}
	spes := []*Process{
		a.CreateSPE(mk(0), a.Main(), 0),
		a.CreateSPE(mk(1), a.Main(), 1),
	}
	from = []*Channel{
		a.CreateChannel(spes[0], a.Main()),
		a.CreateChannel(spes[1], a.Main()),
	}
	gather := a.CreateBundle(BundleGather, from)
	err := a.Run(func(ctx *Ctx) {
		for i, s := range spes {
			ctx.RunSPE(s, i, nil)
		}
		out := make([]int32, 4)
		ctx.Gather(gather, "%2d", out)
		if out[0] != 0 || out[1] != 0 || out[2] != 1 || out[3] != 100 {
			ctx.P.Fatalf("gather = %v", out)
		}
	})
	if err != nil {
		t.Fatal(err)
	}

	// Select over SPE writers on a fresh application.
	c2 := newTestCluster(t)
	a2 := NewApp(c2, Options{SPECollectives: true})
	var from2 []*Channel
	mk2 := func(id int) *SPEProgram {
		return &SPEProgram{Name: "sel", Body: func(ctx *SPECtx) {
			ctx.P.Advance(sim.Time(100*(2-id)) * sim.Microsecond) // id 1 first
			ctx.Write(from2[id], "%d", int32(id))
		}}
	}
	s0 := a2.CreateSPE(mk2(0), a2.Main(), 0)
	s1 := a2.CreateSPE(mk2(1), a2.Main(), 1)
	from2 = []*Channel{a2.CreateChannel(s0, a2.Main()), a2.CreateChannel(s1, a2.Main())}
	sel := a2.CreateBundle(BundleSelect, from2)
	err = a2.Run(func(ctx *Ctx) {
		ctx.RunSPE(s0, 0, nil)
		ctx.RunSPE(s1, 1, nil)
		first := ctx.Select(sel)
		if first != 1 {
			ctx.P.Fatalf("select returned %d, want the earlier writer 1", first)
		}
		var v int32
		ctx.Read(from2[first], "%d", &v)
		ctx.Read(from2[0], "%d", &v)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSPECommonEndpointStillRejected(t *testing.T) {
	c := newTestCluster(t)
	a := NewApp(c, Options{SPECollectives: true})
	prog := &SPEProgram{Name: "s", Body: func(*SPECtx) {}}
	spe := a.CreateSPE(prog, a.Main(), 0)
	other := a.CreateProcessOn(1, "o", func(*Ctx, int, any) {}, 0, nil)
	ch := a.CreateChannel(other, spe)
	defer func() {
		r := recover()
		if r == nil || !strings.Contains(r.(error).Error(), "common endpoint must be a regular process") {
			t.Fatalf("recover = %v", r)
		}
	}()
	a.CreateBundle(BundleGather, []*Channel{ch}) // common endpoint = SPE reader
}

func TestSPEDeadlockDetection(t *testing.T) {
	// Two SPE processes on one node, each reading from the other: a
	// type-4 circular wait. With the extension enabled it is diagnosed
	// instead of hanging until the kernel's quiescence detector fires.
	c := newTestCluster(t)
	a := NewApp(c, Options{DeadlockDetection: true, SPEDeadlock: true})
	var ab, ba *Channel
	mk := func(read, write **Channel) *SPEProgram {
		return &SPEProgram{Name: "dl", Body: func(ctx *SPECtx) {
			var v int32
			ctx.Read(*read, "%d", &v)
			ctx.Write(*write, "%d", v)
		}}
	}
	s1 := a.CreateSPE(mk(&ba, &ab), a.Main(), 0)
	s2 := a.CreateSPE(mk(&ab, &ba), a.Main(), 1)
	ab = a.CreateChannel(s1, s2)
	ba = a.CreateChannel(s2, s1)
	err := a.Run(func(ctx *Ctx) {
		ctx.RunSPE(s1, 0, nil)
		ctx.RunSPE(s2, 1, nil)
	})
	if err == nil || !strings.Contains(err.Error(), "circular wait") {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(err.Error(), "dl#0") || !strings.Contains(err.Error(), "dl#1") {
		t.Fatalf("diagnostic does not name the SPE processes: %v", err)
	}
}

func TestSPEDeadlockMixedCycle(t *testing.T) {
	// A cycle through a regular process and an SPE process.
	c := newTestCluster(t)
	a := NewApp(c, Options{DeadlockDetection: true, SPEDeadlock: true})
	var toSPE, toPPE *Channel
	prog := &SPEProgram{Name: "mix", Body: func(ctx *SPECtx) {
		var v int32
		ctx.Read(toSPE, "%d", &v) // waits for PI_MAIN...
		ctx.Write(toPPE, "%d", v)
	}}
	spe := a.CreateSPE(prog, a.Main(), 0)
	toSPE = a.CreateChannel(a.Main(), spe)
	toPPE = a.CreateChannel(spe, a.Main())
	err := a.Run(func(ctx *Ctx) {
		ctx.RunSPE(spe, 0, nil)
		var v int32
		ctx.Read(toPPE, "%d", &v) // ...while PI_MAIN waits for the SPE.
		ctx.Write(toSPE, "%d", v)
	})
	if err == nil || !strings.Contains(err.Error(), "circular wait") {
		t.Fatalf("err = %v", err)
	}
}

func TestSPEDeadlockNoFalsePositiveOnEagerWrites(t *testing.T) {
	// Two SPEs that each write to the other first (small payloads) and
	// then read: eager relays make this succeed, and the extension must
	// not report a write-write cycle.
	c := newTestCluster(t)
	a := NewApp(c, Options{DeadlockDetection: true, SPEDeadlock: true})
	var ab, ba *Channel
	// Different nodes => type 5, so writes complete via MPI relays.
	other := a.CreateProcessOn(1, "parent", func(ctx *Ctx, _ int, arg any) {
		ctx.RunSPE(arg.(*Process), 0, nil)
	}, 0, nil)
	mk := func(write, read **Channel) *SPEProgram {
		return &SPEProgram{Name: "xw", Body: func(ctx *SPECtx) {
			ctx.Write(*write, "%d", int32(5))
			var v int32
			ctx.Read(*read, "%d", &v)
			if v != 5 {
				ctx.P.Fatalf("got %d", v)
			}
		}}
	}
	s1 := a.CreateSPE(mk(&ab, &ba), a.Main(), 0)
	s2 := a.CreateSPE(mk(&ba, &ab), other, 0)
	other.SetArg(s2)
	ab = a.CreateChannel(s1, s2)
	ba = a.CreateChannel(s2, s1)
	err := a.Run(func(ctx *Ctx) {
		ctx.RunSPE(s1, 0, nil)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSPEDeadlockRequiresService(t *testing.T) {
	c := newTestCluster(t)
	defer func() {
		if recover() == nil {
			t.Fatal("SPEDeadlock without DeadlockDetection accepted")
		}
	}()
	NewApp(c, Options{SPEDeadlock: true})
}
