package core

import (
	"errors"
	"strings"
	"testing"

	"cellpilot/internal/fault"
	"cellpilot/internal/sim"
)

// TestTryReadTimeoutThenRecover: a Try* deadline expires on a slow (not
// dead) peer; the operation returns a structured ChannelFault, and the
// abandoned receive leaves the channel usable — a later blocking Read
// still gets the message.
func TestTryReadTimeoutThenRecover(t *testing.T) {
	c := newTestCluster(t)
	a := NewApp(c, Options{})
	var ch *Channel
	writer := a.CreateProcessOn(1, "writer", func(ctx *Ctx, _ int, arg any) {
		ctx.P.Advance(2 * sim.Millisecond) // slow, not dead
		ctx.Write(arg.(*Channel), "%d", int32(42))
	}, 0, nil)
	ch = a.CreateChannel(writer, a.Main())
	writer.arg = ch

	var cf *ChannelFault
	var got int32
	err := a.Run(func(ctx *Ctx) {
		var v int32
		terr := ctx.TryRead(ch, 200*sim.Microsecond, "%d", &v)
		if terr == nil {
			t.Error("TryRead succeeded before the writer wrote")
		}
		if !errors.As(terr, &cf) {
			t.Errorf("TryRead error %T is not a *ChannelFault", terr)
		}
		ctx.Read(ch, "%d", &got)
	})
	if err != nil {
		t.Fatalf("soft timeout must not degrade the run: %v", err)
	}
	if got != 42 {
		t.Fatalf("recovery Read got %d, want 42", got)
	}
	if cf == nil || !cf.Timeout {
		t.Fatalf("fault %+v: want Timeout=true", cf)
	}
	if cf.API != "PI_TryRead" {
		t.Errorf("fault API = %q", cf.API)
	}
	if cf.InCycle {
		t.Errorf("no deadlock service ran, yet InCycle is set: %+v", cf)
	}
	if !strings.Contains(cf.Error(), "fault_test.go") {
		t.Errorf("fault location %q does not point at the caller", cf.Error())
	}
}

// TestOpTimeoutCycleDiagnostic: a genuine circular wait under
// DeadlockDetection + OpTimeout degrades instead of aborting — the
// deadlocked operations time out, and their faults carry the detected
// cycle with the blocked call sites.
func TestOpTimeoutCycleDiagnostic(t *testing.T) {
	c := newTestCluster(t)
	a := NewApp(c, Options{DeadlockDetection: true, OpTimeout: sim.Millisecond})
	var toPeer, fromPeer *Channel
	peer := a.CreateProcessOn(1, "peer", func(ctx *Ctx, _ int, _ any) {
		var v int32
		ctx.Read(toPeer, "%d", &v) // waits for main, which waits for us
	}, 0, nil)
	toPeer = a.CreateChannel(a.Main(), peer)
	fromPeer = a.CreateChannel(peer, a.Main())

	mainDone := false
	err := a.Run(func(ctx *Ctx) {
		var v int32
		ctx.Read(fromPeer, "%d", &v)
		mainDone = true // unreachable: the read faults and unwinds
	})
	if err == nil {
		t.Fatal("deadlocked run returned nil")
	}
	if mainDone {
		t.Fatal("main continued past a hard-faulted Read")
	}
	var sum *FaultSummary
	if !errors.As(err, &sum) {
		t.Fatalf("Run error %T is not a *FaultSummary: %v", err, err)
	}
	inCycle := 0
	for _, f := range sum.Faults {
		if !f.Timeout {
			continue
		}
		if f.InCycle {
			inCycle++
			if !strings.Contains(f.CycleDetail, "circular wait") {
				t.Errorf("cycle detail %q", f.CycleDetail)
			}
			if !strings.Contains(f.CycleDetail, "fault_test.go") {
				t.Errorf("cycle detail lacks blocked call sites: %q", f.CycleDetail)
			}
		}
	}
	if inCycle == 0 {
		t.Fatalf("no timeout fault carried the cycle diagnostic: %v", err)
	}
}

// TestOpTimeoutSlowPeerDiagnostic: with the deadlock service on, a
// timeout on a merely-slow peer must say it was NOT in a cycle, and name
// the blocked call site.
func TestOpTimeoutSlowPeerDiagnostic(t *testing.T) {
	c := newTestCluster(t)
	a := NewApp(c, Options{DeadlockDetection: true})
	var ch *Channel
	writer := a.CreateProcessOn(1, "writer", func(ctx *Ctx, _ int, arg any) {
		ctx.P.Advance(5 * sim.Millisecond)
		ctx.Write(arg.(*Channel), "%d", int32(1))
	}, 0, nil)
	ch = a.CreateChannel(writer, a.Main())
	writer.arg = ch

	var cf *ChannelFault
	err := a.Run(func(ctx *Ctx) {
		var v int32
		terr := ctx.TryRead(ch, 500*sim.Microsecond, "%d", &v)
		if !errors.As(terr, &cf) {
			t.Errorf("TryRead error %T is not a *ChannelFault", terr)
		}
		ctx.Read(ch, "%d", &v) // drain so the writer finishes
	})
	if err != nil {
		t.Fatal(err)
	}
	if cf == nil || !cf.Timeout || cf.InCycle {
		t.Fatalf("fault %+v: want Timeout=true InCycle=false", cf)
	}
	if !strings.Contains(cf.CycleDetail, "not part of any detected wait cycle") {
		t.Errorf("diagnostic %q", cf.CycleDetail)
	}
}

// buildKillSPEApp wires the degradation scenario: a victim SPE blocked on
// a read the injector kills mid-run, plus a healthy SPE doing a pingpong
// that must be unaffected.
func buildKillSPEApp(t *testing.T, plan fault.Plan) (*App, *fault.Injector, func() (healthy int32, tryErr error, readErr error)) {
	t.Helper()
	c := newTestCluster(t)
	inj := fault.NewInjector(plan)
	a := NewApp(c, Options{Faults: inj})

	var toVictim, fromVictim, toEcho, fromEcho *Channel
	victim := &SPEProgram{Name: "victim", Body: func(ctx *SPECtx) {
		var v int32
		ctx.Read(toVictim, "%d", &v) // no writer: parked until killed
		ctx.Write(fromVictim, "%d", v)
	}}
	echo := &SPEProgram{Name: "echo", Body: func(ctx *SPECtx) {
		var v int32
		ctx.Read(toEcho, "%d", &v)
		ctx.Write(fromEcho, "%d", v+1)
	}}
	vp := a.CreateSPE(victim, a.Main(), 0)
	ep := a.CreateSPE(echo, a.Main(), 1)
	toVictim = a.CreateChannel(a.Main(), vp)
	fromVictim = a.CreateChannel(vp, a.Main())
	toEcho = a.CreateChannel(a.Main(), ep)
	fromEcho = a.CreateChannel(ep, a.Main())

	var healthy int32
	var tryErr, readErr error
	run := func() (int32, error, error) {
		err := a.Run(func(ctx *Ctx) {
			ctx.RunSPE(vp, 0, nil)
			ctx.RunSPE(ep, 0, nil)
			ctx.Write(toEcho, "%d", int32(7))
			ctx.Read(fromEcho, "%d", &healthy)
			// By now the victim is dead; both its channels are poisoned.
			tryErr = ctx.TryRead(fromVictim, 5*sim.Millisecond, "%d", new(int32))
			readErr = ctx.TryWrite(toVictim, sim.Millisecond, "%d", int32(9))
		})
		if err == nil {
			t.Error("degraded run returned nil error")
		}
		var sum *FaultSummary
		if !errors.As(err, &sum) {
			t.Fatalf("Run error %T is not a *FaultSummary: %v", err, err)
		}
		if len(sum.Killed) != 1 || !strings.Contains(sum.Killed[0], "victim#0") {
			t.Errorf("killed = %v, want exactly victim#0", sum.Killed)
		}
		return healthy, tryErr, readErr
	}
	return a, inj, run
}

// TestKillSPEDegradation: killing one SPE mid-run faults only that SPE's
// channels; unaffected processes run to completion and App.Run returns a
// FaultSummary instead of panicking.
func TestKillSPEDegradation(t *testing.T) {
	plan := fault.Plan{Seed: 1, Events: []fault.Event{
		{At: sim.Millisecond, Kind: fault.KillSPE, Proc: "victim#0"},
	}}
	a, inj, run := buildKillSPEApp(t, plan)
	healthy, tryErr, readErr := run()
	if healthy != 8 {
		t.Errorf("healthy pingpong got %d, want 8", healthy)
	}
	for _, e := range []error{tryErr, readErr} {
		var cf *ChannelFault
		if !errors.As(e, &cf) {
			t.Fatalf("op on poisoned channel returned %T (%v), want *ChannelFault", e, e)
		}
		if !strings.Contains(cf.Reason, "killed") && !strings.Contains(cf.Reason, "dead") {
			t.Errorf("fault reason %q does not mention the kill", cf.Reason)
		}
	}
	if inj.Counts.ProcsKilled != 1 {
		t.Errorf("ProcsKilled = %d", inj.Counts.ProcsKilled)
	}
	st := a.Stats()
	if st.Faults == nil || st.Faults.ProcsKilled != 1 || len(st.Faults.Killed) != 1 {
		t.Errorf("Stats.Faults = %+v", st.Faults)
	}
	if !strings.Contains(st.String(), "killed victim#0") {
		t.Errorf("Stats rendering lacks the kill:\n%s", st)
	}
	// The Co-Pilots must not retain the dead SPE's queued request.
	for _, key := range a.copilotOrder {
		cp := a.copilots[key]
		if cp.pendWrites.size()+cp.pendReads.size() != 0 {
			t.Errorf("copilot %v retains %d+%d pending requests",
				key, cp.pendWrites.size(), cp.pendReads.size())
		}
	}
}

// TestFaultDeterminism: the same seeded plan over the same program yields
// a bit-identical outcome — virtual end time, counters, and fault log.
func TestFaultDeterminism(t *testing.T) {
	type outcome struct {
		vt     sim.Time
		counts fault.Counts
		log    string
		errStr string
	}
	once := func() outcome {
		plan := fault.Plan{Seed: 7, Events: []fault.Event{
			{At: 700 * sim.Microsecond, Kind: fault.KillSPE, Proc: "victim#0"},
		}}
		a, inj, run := buildKillSPEApp(t, plan)
		run()
		return outcome{
			vt:     a.K.Now(),
			counts: inj.Counts,
			log:    strings.Join(inj.Log(), "\n"),
			errStr: a.faultSummary().Error(),
		}
	}
	o1, o2 := once(), once()
	if o1 != o2 {
		t.Fatalf("seeded fault run is not deterministic:\n--- run 1 ---\n%+v\n--- run 2 ---\n%+v", o1, o2)
	}
}

// TestCrashNodeDegradation: crashing a whole node kills its processes
// and Co-Pilot; survivors on other nodes still finish.
func TestCrashNodeDegradation(t *testing.T) {
	c := newTestCluster(t)
	inj := fault.NewInjector(fault.Plan{Events: []fault.Event{
		{At: sim.Millisecond, Kind: fault.CrashNode, Node: 1},
	}})
	a := NewApp(c, Options{Faults: inj})
	var chDoomed, chOK *Channel
	doomed := a.CreateProcessOn(1, "doomed", func(ctx *Ctx, _ int, _ any) {
		var v int32
		ctx.Read(chDoomed, "%d", &v) // parked on node 1 until the crash
	}, 0, nil)
	friend := a.CreateProcessOn(2, "friend", func(ctx *Ctx, _ int, _ any) {
		ctx.Write(chOK, "%d", int32(5))
	}, 0, nil)
	chDoomed = a.CreateChannel(a.Main(), doomed)
	chOK = a.CreateChannel(friend, a.Main())

	var got int32
	err := a.Run(func(ctx *Ctx) {
		ctx.Read(chOK, "%d", &got)
		ctx.P.Advance(2 * sim.Millisecond) // let the crash land
		if terr := ctx.TryWrite(chDoomed, sim.Millisecond, "%d", int32(1)); terr == nil {
			t.Error("write to crashed node succeeded")
		}
	})
	var sum *FaultSummary
	if !errors.As(err, &sum) {
		t.Fatalf("Run error %T: %v", err, err)
	}
	if got != 5 {
		t.Errorf("survivor transfer got %d, want 5", got)
	}
	// The crash takes out both the doomed process and node 1's Co-Pilot.
	if inj.Counts.ProcsKilled != 2 {
		t.Errorf("ProcsKilled = %d, want 2 (doomed + copilot)", inj.Counts.ProcsKilled)
	}
	if !strings.Contains(strings.Join(sum.Killed, " "), "doomed") {
		t.Errorf("killed = %v", sum.Killed)
	}
}

// TestCopilotDrainUnderConcurrentTraffic drives types 2, 3, 4 and 5
// concurrently while one type-4 writer dies with its request queued in
// the Co-Pilot; every other flow completes, and the pending queues drain.
func TestCopilotDrainUnderConcurrentTraffic(t *testing.T) {
	c := newTestCluster(t)
	inj := fault.NewInjector(fault.Plan{Events: []fault.Event{
		{At: 800 * sim.Microsecond, Kind: fault.KillSPE, Proc: "t4w#2"},
	}})
	a := NewApp(c, Options{Faults: inj})

	var t2down, t2up, t3down, t3up, t4, t5 *Channel

	// Type 2: PPE <-> local SPE pingpong.
	t2 := &SPEProgram{Name: "t2", Body: func(ctx *SPECtx) {
		var v int32
		ctx.Read(t2down, "%d", &v)
		ctx.Write(t2up, "%d", v*2)
	}}
	// Type 3: Xeon <-> SPE.
	t3 := &SPEProgram{Name: "t3", Body: func(ctx *SPECtx) {
		var v int32
		ctx.Read(t3down, "%d", &v)
		ctx.Write(t3up, "%d", v+100)
	}}
	// Type 4 pair: writer posts immediately and queues in the Co-Pilot
	// (the reader is deliberately slow), then dies.
	t4w := &SPEProgram{Name: "t4w", Body: func(ctx *SPECtx) {
		ctx.Write(t4, "%d", int32(1)) // queues, then the kill fires
	}}
	t4r := &SPEProgram{Name: "t4r", Body: func(ctx *SPECtx) {
		// Post the read only after the writer is dead: the poisoned
		// channel must fault this stub, not hang it.
		err := ctx.TryRead(t4, 2*sim.Millisecond, "%d", new(int32))
		if err == nil {
			t.Error("type-4 read from dead writer succeeded")
		}
	}}
	// Type 5: SPE on node 0 -> SPE on node 1.
	t5w := &SPEProgram{Name: "t5w", Body: func(ctx *SPECtx) {
		ctx.Write(t5, "%d", int32(55))
	}}
	t5r := &SPEProgram{Name: "t5r", Body: func(ctx *SPECtx) {
		var v int32
		ctx.Read(t5, "%d", &v)
		if v != 55 {
			t.Errorf("type-5 got %d", v)
		}
	}}

	ppe1 := a.CreateProcessOn(1, "ppe1", func(ctx *Ctx, _ int, arg any) {
		for _, sp := range arg.([]*Process) {
			ctx.RunSPE(sp, 0, nil)
		}
	}, 0, nil)
	xeon := a.CreateProcessOn(2, "xeon", func(ctx *Ctx, _ int, _ any) {
		ctx.Write(t3down, "%d", int32(3))
		var v int32
		ctx.Read(t3up, "%d", &v)
		if v != 103 {
			t.Errorf("type-3 got %d", v)
		}
	}, 0, nil)

	t2p := a.CreateSPE(t2, a.Main(), 0)
	t3p := a.CreateSPE(t3, a.Main(), 1)
	t4wp := a.CreateSPE(t4w, a.Main(), 2)
	t4rp := a.CreateSPE(t4r, a.Main(), 3)
	t5rp := a.CreateSPE(t5r, ppe1, 0)
	t5wp := a.CreateSPE(t5w, a.Main(), 4)
	ppe1.arg = []*Process{t5rp}

	t2down = a.CreateChannel(a.Main(), t2p)
	t2up = a.CreateChannel(t2p, a.Main())
	t3down = a.CreateChannel(xeon, t3p)
	t3up = a.CreateChannel(t3p, xeon)
	t4 = a.CreateChannel(t4wp, t4rp)
	t5 = a.CreateChannel(t5wp, t5rp)

	err := a.Run(func(ctx *Ctx) {
		for _, sp := range []*Process{t2p, t3p, t4wp, t5wp} {
			ctx.RunSPE(sp, 0, nil)
		}
		ctx.P.Advance(1500 * sim.Microsecond) // let the kill land first
		ctx.RunSPE(t4rp, 0, nil)
		ctx.Write(t2down, "%d", int32(21))
		var v int32
		ctx.Read(t2up, "%d", &v)
		if v != 42 {
			t.Errorf("type-2 got %d", v)
		}
	})
	var sum *FaultSummary
	if !errors.As(err, &sum) {
		t.Fatalf("Run error %T: %v", err, err)
	}
	if len(sum.Killed) != 1 || !strings.Contains(sum.Killed[0], "t4w#2") {
		t.Errorf("killed = %v", sum.Killed)
	}
	for _, key := range a.copilotOrder {
		cp := a.copilots[key]
		if cp.pendWrites.size()+cp.pendReads.size() != 0 {
			t.Errorf("copilot %v retains %d pending writes, %d pending reads",
				key, cp.pendWrites.size(), cp.pendReads.size())
		}
	}
}

// TestKillCoPilot: killing a Co-Pilot poisons the SPE channels it
// services; the stubs fault (bounded by OpTimeout) instead of hanging.
func TestKillCoPilot(t *testing.T) {
	c := newTestCluster(t)
	inj := fault.NewInjector(fault.Plan{Events: []fault.Event{
		{At: 300 * sim.Microsecond, Kind: fault.KillCoPilot, Node: 0},
	}})
	a := NewApp(c, Options{Faults: inj, OpTimeout: 2 * sim.Millisecond})
	var down *Channel
	spe := &SPEProgram{Name: "spe", Body: func(ctx *SPECtx) {
		var v int32
		ctx.Read(down, "%d", &v) // its Co-Pilot dies under it
	}}
	sp := a.CreateSPE(spe, a.Main(), 0)
	down = a.CreateChannel(a.Main(), sp)
	err := a.Run(func(ctx *Ctx) {
		ctx.RunSPE(sp, 0, nil)
		ctx.P.Advance(sim.Millisecond)
		// The write is eager (fire-and-forget toward the dead Co-Pilot);
		// main itself must still finish.
	})
	var sum *FaultSummary
	if !errors.As(err, &sum) {
		t.Fatalf("Run error %T: %v", err, err)
	}
	if len(sum.Killed) == 0 || !strings.Contains(strings.Join(sum.Killed, " "), "copilot") {
		t.Errorf("killed = %v, want the node-0 copilot", sum.Killed)
	}
}

// TestMailboxDropRecovery: a dropped descriptor word is NACKed by the
// Co-Pilot and reposted by the stub; the transfer still completes and
// the protocol counters record the recovery.
func TestMailboxDropRecovery(t *testing.T) {
	c := newTestCluster(t)
	inj := fault.NewInjector(fault.Plan{Events: []fault.Event{
		{At: 0, Kind: fault.MailboxDrop, Proc: "echo#0"},
	}})
	a := NewApp(c, Options{Faults: inj})
	var down, up *Channel
	echo := &SPEProgram{Name: "echo", Body: func(ctx *SPECtx) {
		var v int32
		ctx.Read(down, "%d", &v)
		ctx.Write(up, "%d", v*3)
	}}
	sp := a.CreateSPE(echo, a.Main(), 0)
	down = a.CreateChannel(a.Main(), sp)
	up = a.CreateChannel(sp, a.Main())
	var got int32
	err := a.Run(func(ctx *Ctx) {
		ctx.RunSPE(sp, 0, nil)
		ctx.Write(down, "%d", int32(11))
		ctx.Read(up, "%d", &got)
	})
	if err != nil {
		t.Fatalf("dropped mailbox word was not recovered: %v", err)
	}
	if got != 33 {
		t.Fatalf("got %d, want 33", got)
	}
	if inj.Counts.MailboxDrops != 1 {
		t.Errorf("MailboxDrops = %d, want 1", inj.Counts.MailboxDrops)
	}
	if inj.Counts.MailboxReposts == 0 {
		t.Errorf("drop recovered without a repost? counts=%+v", inj.Counts)
	}
}

// TestMailboxStallRecovery: a stalled descriptor word delays the request
// but must not corrupt the protocol; the transfer completes.
func TestMailboxStallRecovery(t *testing.T) {
	c := newTestCluster(t)
	inj := fault.NewInjector(fault.Plan{Events: []fault.Event{
		{At: 0, Kind: fault.MailboxStall, Proc: "echo#0", Delay: 400 * sim.Microsecond},
	}})
	a := NewApp(c, Options{Faults: inj})
	var down, up *Channel
	echo := &SPEProgram{Name: "echo", Body: func(ctx *SPECtx) {
		var v int32
		ctx.Read(down, "%d", &v)
		ctx.Write(up, "%d", v+1)
	}}
	sp := a.CreateSPE(echo, a.Main(), 0)
	down = a.CreateChannel(a.Main(), sp)
	up = a.CreateChannel(sp, a.Main())
	var got int32
	err := a.Run(func(ctx *Ctx) {
		ctx.RunSPE(sp, 0, nil)
		ctx.Write(down, "%d", int32(1))
		ctx.Read(up, "%d", &got)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Fatalf("got %d, want 2", got)
	}
	if inj.Counts.MailboxStalls != 1 {
		t.Errorf("MailboxStalls = %d, want 1", inj.Counts.MailboxStalls)
	}
}

// TestLossyLinkType1Delivery: a 10%-lossy internode link still delivers
// eager Type-1 traffic via retransmission, and the retry counters are
// visible in Stats and the metrics dump.
func TestLossyLinkType1Delivery(t *testing.T) {
	c := newTestCluster(t)
	inj := fault.NewInjector(fault.Plan{
		Seed: 42,
		Links: []fault.LinkPolicy{
			{From: 0, To: 1, DropProb: 0.10},
			{From: 1, To: 0, DropProb: 0.10},
		},
	})
	a := NewApp(c, Options{Faults: inj})
	a.Metrics = NewMeter()
	var down, up *Channel
	peer := a.CreateProcessOn(1, "peer", func(ctx *Ctx, _ int, _ any) {
		buf := make([]int32, 200)
		for i := 0; i < 20; i++ {
			ctx.Read(down, "%200d", buf)
			ctx.Write(up, "%200d", buf)
		}
	}, 0, nil)
	down = a.CreateChannel(a.Main(), peer)
	up = a.CreateChannel(peer, a.Main())
	buf := make([]int32, 200)
	for i := range buf {
		buf[i] = int32(i)
	}
	err := a.Run(func(ctx *Ctx) {
		got := make([]int32, 200)
		for i := 0; i < 20; i++ {
			ctx.Write(down, "%200d", buf)
			ctx.Read(up, "%200d", got)
		}
		for i := range got {
			if got[i] != int32(i) {
				t.Fatalf("corrupted delivery at %d: %d", i, got[i])
			}
		}
	})
	if err != nil {
		t.Fatalf("lossy link was not recovered: %v", err)
	}
	if inj.Counts.LinkDrops == 0 {
		t.Fatalf("10%% loss over 40 transfers dropped nothing; counts=%+v", inj.Counts)
	}
	if inj.Counts.Retransmits == 0 {
		t.Errorf("drops were never retransmitted; counts=%+v", inj.Counts)
	}
	st := a.Stats()
	if st.Faults == nil || st.Faults.Retransmits != inj.Counts.Retransmits {
		t.Errorf("Stats.Faults retransmits mismatch: %+v", st.Faults)
	}
	if dump := st.Registry.Dump(); !strings.Contains(dump, "fault/retransmits") {
		t.Errorf("metrics dump lacks fault counters:\n%s", dump)
	}
}
