package core

import (
	"testing"

	"cellpilot/internal/sim"
)

// TestCoPilotRelayNoCircularWait is the regression test for a deadlock
// found by the matmul workload: PI_MAIN rendezvous-sends a large payload
// toward the Co-Pilot (for an SPE reader) while the Co-Pilot is relaying
// another SPE's large finished result back to PI_MAIN. With a blocking
// relay both sides wait forever; the Co-Pilot must relay nonblocking.
func TestCoPilotRelayNoCircularWait(t *testing.T) {
	c := newTestCluster(t)
	a := NewApp(c, Options{})
	const big = 8 * 1024 // over the 4 KiB eager threshold: rendezvous
	var toB, fromA *Channel

	// SPE A computes instantly and writes a big result to PI_MAIN.
	speA := a.CreateSPE(&SPEProgram{Name: "producer", Body: func(ctx *SPECtx) {
		ctx.Write(fromA, "%*b", big, make([]byte, big))
	}}, a.Main(), 0)
	// SPE B waits for a big input from PI_MAIN.
	var got []byte
	speB := a.CreateSPE(&SPEProgram{Name: "consumer", Body: func(ctx *SPECtx) {
		got = make([]byte, big)
		ctx.Read(toB, "%*b", big, got)
	}}, a.Main(), 1)
	fromA = a.CreateChannel(speA, a.Main())
	toB = a.CreateChannel(a.Main(), speB)

	err := a.Run(func(ctx *Ctx) {
		ctx.RunSPE(speA, 0, nil)
		ctx.RunSPE(speB, 1, nil)
		// Give SPE A time to finish and park its result at the Co-Pilot.
		ctx.P.Advance(2 * sim.Millisecond)
		buf := make([]byte, big)
		for i := range buf {
			buf[i] = byte(i)
		}
		ctx.Write(toB, "%*b", big, buf) // rendezvous toward the Co-Pilot
		in := make([]byte, big)
		ctx.Read(fromA, "%*b", big, in) // only now is A's relay consumed
	})
	if err != nil {
		t.Fatalf("circular wait between PI_MAIN and Co-Pilot: %v", err)
	}
	for i := range got {
		if got[i] != byte(i) {
			t.Fatalf("payload corrupted at %d", i)
		}
	}
}

// TestCoPilotManyConcurrentChannels floods one Co-Pilot with eight
// simultaneous type-2 exchanges; everything must drain without loss.
func TestCoPilotManyConcurrentChannels(t *testing.T) {
	c := newTestCluster(t)
	a := NewApp(c, Options{})
	const n = 8
	down := make([]*Channel, n)
	up := make([]*Channel, n)
	spes := make([]*Process, n)
	prog := &SPEProgram{Name: "echo", Body: func(ctx *SPECtx) {
		id := ctx.Arg()
		for r := 0; r < 5; r++ {
			var v int32
			ctx.Read(down[id], "%d", &v)
			ctx.Write(up[id], "%d", v*10)
		}
	}}
	for i := 0; i < n; i++ {
		spes[i] = a.CreateSPE(prog, a.Main(), i)
		down[i] = a.CreateChannel(a.Main(), spes[i])
		up[i] = a.CreateChannel(spes[i], a.Main())
	}
	err := a.Run(func(ctx *Ctx) {
		for i := 0; i < n; i++ {
			ctx.RunSPE(spes[i], i, nil)
		}
		for r := 0; r < 5; r++ {
			for i := 0; i < n; i++ {
				ctx.Write(down[i], "%d", int32(r*n+i))
			}
			for i := 0; i < n; i++ {
				var v int32
				ctx.Read(up[i], "%d", &v)
				if v != int32((r*n+i)*10) {
					ctx.P.Fatalf("round %d spe %d: got %d", r, i, v)
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
