package core

import (
	"fmt"

	"cellpilot/internal/deadlock"
	"cellpilot/internal/fmtmsg"
	"cellpilot/internal/hostprof"
	"cellpilot/internal/mpi"
	"cellpilot/internal/sdk"
	"cellpilot/internal/sim"
	"cellpilot/internal/trace"
)

// Ctx is the execution-phase handle of a regular Pilot process: the
// receiver for every PI_* call the process body makes.
type Ctx struct {
	app  *App
	P    *sim.Proc
	Self *Process
	rank *mpi.Rank
}

// Index reports the index given at CreateProcess.
func (c *Ctx) Index() int { return c.Self.index }

// Arg reports the argument given at CreateProcess.
func (c *Ctx) Arg() any { return c.Self.arg }

// fail aborts the application with a Pilot diagnostic at the user's call
// site (loc from callerLoc) and unwinds this process.
func (c *Ctx) fail(loc, api, format string, args ...any) {
	c.P.Fatalf("%v", usageError(loc, api, format, args...))
}

// peerRank resolves the MPI rank this process exchanges channel payloads
// with: the peer itself when regular, or the peer's Co-Pilot when the
// peer is an SPE process (the heart of the CellPilot design).
func (c *Ctx) peerRank(peer *Process) int {
	if peer.IsSPE() {
		return c.app.copilotRankFor(peer)
	}
	return peer.rank
}

// Write sends args, described by the Pilot format string, on ch
// (PI_Write). Only the configured writer endpoint may call it.
func (c *Ctx) Write(ch *Channel, format string, args ...any) {
	loc := callerLoc(1)
	c.writeFrom(loc, "PI_Write", ch, 0, false, format, args...)
}

// TryWrite is Write bounded by a relative timeout (0 falls back to
// Options.OpTimeout). Instead of unwinding the process, a deadline expiry
// or poisoned channel is returned as a *ChannelFault; nil means the write
// completed. A TryWrite timeout does not poison the channel unless the
// operation died mid-protocol.
func (c *Ctx) TryWrite(ch *Channel, timeout sim.Time, format string, args ...any) error {
	loc := callerLoc(1)
	return c.writeFrom(loc, "PI_TryWrite", ch, timeout, true, format, args...)
}

func (c *Ctx) writeFrom(loc, api string, ch *Channel, timeout sim.Time, soft bool, format string, args ...any) error {
	if ch == nil {
		c.fail(loc, api, "nil channel")
	}
	if ch.From != c.Self {
		c.fail(loc, api, "%s is not the writer of %s", c.Self, ch)
	}
	c.app.obs.host.Enter(hostprof.SubsysFmtmsg)
	spec, err := fmtmsg.Parse(format)
	if err != nil {
		c.app.obs.host.Exit()
		c.fail(loc, api, "%v", err)
	}
	// Pack into a pooled wire buffer: every transport below snapshots or
	// copies the bytes before returning, so the buffer recycles per call.
	bp := fmtmsg.GetWireBuf(0)
	defer fmtmsg.PutWireBuf(bp)
	wire, err := spec.PackInto(*bp, args...)
	c.app.obs.host.Exit()
	if err != nil {
		c.fail(loc, api, "%v", err)
	}
	*bp = wire
	useCtl := timeout > 0 || c.app.hardened()
	if useCtl && ch.fault != nil {
		cf := c.app.opFault(loc, api, c.Self, ch, ch.fault)
		if soft {
			return cf
		}
		c.app.raiseFault(c.Self, ch, cf, false)
	}
	opStart := c.P.Now()
	deadline := c.app.opDeadline(opStart, timeout)
	c.P.Advance(c.app.par.PilotOverhead + c.app.par.PackTime(len(wire)))
	hdr := putHeader(spec.Signature(), len(wire))
	xfer := c.app.newXfer()
	self := c.Self.String()
	c.app.spanPhase(xfer, trace.PhasePack, self, ch, len(wire), opStart, c.P.Now())

	if c.app.chunked(ch, len(wire)) {
		return c.writeChunked(loc, api, ch, spec, wire, xfer, opStart, deadline, soft, useCtl)
	}

	// A1 ablation: type-2 writes go through a direct shared-memory handoff
	// to the Co-Pilot instead of local MPI.
	if c.app.opts.CoPilotDirectLocal && ch.typ == Type2 && ch.To.IsSPE() {
		copyStart := c.P.Now()
		c.P.Advance(c.app.par.ShmCopyTime(len(wire)))
		box := c.app.directBox(ch)
		msg := dbMsg{data: append(append([]byte(nil), hdr...), wire...), xfer: xfer}
		if useCtl {
			unwatch := c.app.watchChannel(ch, c.P)
			err := box.PutCtl(c.P, msg, deadline, c.app.chanStop(ch))
			unwatch()
			if err != nil {
				cf := c.app.opFault(loc, api, c.Self, ch, err)
				if soft {
					return cf
				}
				c.app.raiseFault(c.Self, ch, cf, false)
			}
		} else {
			box.Put(c.P, msg)
		}
		c.app.copilotFor(ch.To).nudge()
		c.app.reportSent(ch)
		c.app.spanPhase(xfer, trace.PhaseCopy, self, ch, len(wire), copyStart, c.P.Now())
		c.app.meterBlocked(c.Self, blockWrite, c.P.Now()-copyStart)
		c.app.meterOp(ch, len(wire), c.P.Now()-opStart)
		c.app.record(c.P, trace.KindWrite, c.Self, ch, len(wire), xfer, c.P.Now()-opStart)
		return nil
	}

	dst := c.peerRank(ch.To)
	blocking := hdrSize+len(wire) > c.app.par.EagerThreshold
	if blocking {
		// A rendezvous send completes only when the reader posts the
		// matching receive; the detector pairs it with that read.
		c.app.reportBlock(c.Self, ch.To, ch, deadlock.OpWrite, loc)
	}
	sendStart := c.P.Now()
	c.rank.TagNextXfer(xfer)
	if useCtl {
		unwatch := c.app.watchChannel(ch, c.P)
		err := c.rank.SendVecCtl(c.P, dst, ch.tag(), mpi.Ctl{Deadline: deadline, Stop: c.app.chanStop(ch)}, hdr, wire)
		unwatch()
		if err != nil {
			cf := c.app.opFault(loc, api, c.Self, ch, err)
			if soft {
				if blocking {
					c.app.reportUnblock(c.Self)
				}
				return cf
			}
			c.app.raiseFault(c.Self, ch, cf, blocking)
		}
	} else {
		c.rank.SendVec(c.P, dst, ch.tag(), hdr, wire)
	}
	if blocking {
		c.app.reportUnblock(c.Self)
	} else {
		// An eager send is in flight regardless of the reader: tell the
		// detector so a blocked read on ch is not treated as a wait.
		c.app.reportSent(ch)
	}
	c.app.spanPhase(xfer, trace.PhaseMPISend, self, ch, len(wire), sendStart, c.P.Now())
	c.app.meterBlocked(c.Self, blockWrite, c.P.Now()-sendStart)
	c.app.meterOp(ch, len(wire), c.P.Now()-opStart)
	c.app.record(c.P, trace.KindWrite, c.Self, ch, len(wire), xfer, c.P.Now()-opStart)
	return nil
}

// Read receives a message from ch into args (PI_Read). The format must
// describe the same element types the writer used, and the sizes must
// agree, or the application aborts with a diagnostic — the classes of
// error Pilot exists to catch.
func (c *Ctx) Read(ch *Channel, format string, args ...any) {
	loc := callerLoc(1)
	c.readFrom(loc, "PI_Read", ch, 0, false, format, args...)
}

// TryRead is Read bounded by a relative timeout (0 falls back to
// Options.OpTimeout). A deadline expiry or poisoned channel is returned
// as a *ChannelFault instead of unwinding the process; nil means the read
// completed and args are filled.
func (c *Ctx) TryRead(ch *Channel, timeout sim.Time, format string, args ...any) error {
	loc := callerLoc(1)
	return c.readFrom(loc, "PI_TryRead", ch, timeout, true, format, args...)
}

func (c *Ctx) readFrom(loc, api string, ch *Channel, timeout sim.Time, soft bool, format string, args ...any) error {
	if ch == nil {
		c.fail(loc, api, "nil channel")
	}
	if ch.To != c.Self {
		c.fail(loc, api, "%s is not the reader of %s", c.Self, ch)
	}
	spec, err := fmtmsg.Parse(format)
	if err != nil {
		c.fail(loc, api, "%v", err)
	}
	expected, err := spec.WireSize(args...)
	if err != nil {
		c.fail(loc, api, "%v", err)
	}
	useCtl := timeout > 0 || c.app.hardened()
	if useCtl && ch.fault != nil {
		cf := c.app.opFault(loc, api, c.Self, ch, ch.fault)
		if soft {
			return cf
		}
		c.app.raiseFault(c.Self, ch, cf, false)
	}

	opStart := c.P.Now()
	deadline := c.app.opDeadline(opStart, timeout)
	self := c.Self.String()
	var data []byte
	var xfer int64
	waitStart := c.P.Now()
	if c.app.opts.CoPilotDirectLocal && ch.typ == Type2 && ch.From.IsSPE() {
		// A1 ablation: take the payload from the direct handoff box.
		box := c.app.directBox(ch)
		c.app.reportBlock(c.Self, ch.From, ch, deadlock.OpRead, loc)
		var msg dbMsg
		if useCtl {
			unwatch := c.app.watchChannel(ch, c.P)
			m, err := box.GetCtl(c.P, deadline, c.app.chanStop(ch))
			unwatch()
			if err != nil {
				cf := c.app.opFault(loc, api, c.Self, ch, err)
				if soft {
					c.app.reportUnblock(c.Self)
					return cf
				}
				c.app.raiseFault(c.Self, ch, cf, true)
			}
			msg = m
		} else {
			msg = box.Get(c.P)
		}
		c.app.reportUnblock(c.Self)
		data, xfer = msg.data, msg.xfer
		c.app.spanPhase(xfer, trace.PhaseMPIWait, self, ch, len(data)-hdrSize, waitStart, c.P.Now())
		c.app.meterBlocked(c.Self, blockRead, c.P.Now()-waitStart)
		copyStart := c.P.Now()
		c.P.Advance(c.app.par.ShmCopyTime(len(data) - hdrSize))
		c.app.spanPhase(xfer, trace.PhaseCopy, self, ch, len(data)-hdrSize, copyStart, c.P.Now())
	} else {
		if c.app.chunked(ch, expected) {
			return c.readChunked(loc, api, ch, spec, expected, opStart, deadline, soft, useCtl, args...)
		}
		src := c.peerRank(ch.From)
		c.app.reportBlock(c.Self, ch.From, ch, deadlock.OpRead, loc)
		var st mpi.Status
		if useCtl {
			unwatch := c.app.watchChannel(ch, c.P)
			d, s, err := c.rank.RecvCtl(c.P, src, ch.tag(), mpi.Ctl{Deadline: deadline, Stop: c.app.chanStop(ch)})
			unwatch()
			if err != nil {
				cf := c.app.opFault(loc, api, c.Self, ch, err)
				if soft {
					c.app.reportUnblock(c.Self)
					return cf
				}
				c.app.raiseFault(c.Self, ch, cf, true)
			}
			data, st = d, s
		} else {
			data, st = c.rank.Recv(c.P, src, ch.tag())
		}
		c.app.reportUnblock(c.Self)
		xfer = st.Xfer
		c.app.spanPhase(xfer, trace.PhaseMPIWait, self, ch, len(data)-hdrSize, waitStart, c.P.Now())
		c.app.meterBlocked(c.Self, blockRead, c.P.Now()-waitStart)
	}

	if len(data) < hdrSize {
		c.fail(loc, api, "malformed message on %s", ch)
	}
	sig, size := parseHeader(data)
	if sig != spec.Signature() {
		c.fail(loc, api, "format %q does not match what the writer sent on %s", format, ch)
	}
	if size != expected || size != len(data)-hdrSize {
		c.fail(loc, api, "size mismatch on %s: writer sent %d bytes, reader expects %d", ch, size, expected)
	}
	unpackStart := c.P.Now()
	c.P.Advance(c.app.par.PilotOverhead + c.app.par.PackTime(size))
	c.app.obs.host.Enter(hostprof.SubsysFmtmsg)
	err = spec.Unpack(data[hdrSize:], args...)
	c.app.obs.host.Exit()
	if err != nil {
		c.fail(loc, api, "%v", err)
	}
	c.app.spanPhase(xfer, trace.PhasePack, self, ch, size, unpackStart, c.P.Now())
	c.app.meterOp(ch, size, c.P.Now()-opStart)
	c.app.record(c.P, trace.KindRead, c.Self, ch, size, xfer, c.P.Now()-opStart)
	return nil
}

// writeChunked is the writer side of the chunk-stream protocol for regular
// processes (type 1, and type 3 when the writer is the regular end): send
// the stream header, then pipeline the payload in fixed-size chunks. Each
// chunk costs the writer only per-chunk stack injection; wire time is
// booked on the NIC asynchronously, throttled by the pipeline window.
// Unlike the rendezvous path, the write completes as soon as the last
// chunk is on the wire — bounded-buffered eager semantics.
func (c *Ctx) writeChunked(loc, api string, ch *Channel, spec *fmtmsg.Spec, wire []byte, xfer int64, opStart, deadline sim.Time, soft, useCtl bool) error {
	dst := c.peerRank(ch.To)
	chunk := c.app.opts.Transfer.ChunkSize
	nchunks := chunkCount(len(wire), chunk)
	depth := c.app.pipeDepth()
	stag := ch.streamTag()
	sendStart := c.P.Now()
	c.rank.TagNextXfer(xfer)
	hdrMsg := streamHeader(spec.Signature(), len(wire), chunk, nchunks)
	var stop func() error
	if useCtl {
		unwatch := c.app.watchChannel(ch, c.P)
		defer unwatch()
		stop = c.app.chanStop(ch)
		if err := c.rank.SendCtl(c.P, dst, stag, hdrMsg, mpi.Ctl{Deadline: deadline, Stop: stop}); err != nil {
			cf := c.app.opFault(loc, api, c.Self, ch, err)
			if soft {
				return cf
			}
			c.app.raiseFault(c.Self, ch, cf, false)
		}
	} else {
		c.rank.Send(c.P, dst, stag, hdrMsg)
	}
	arrivals := make([]sim.Time, 0, nchunks)
	for k := 0; k < nchunks; k++ {
		if k >= depth {
			if a := arrivals[k-depth]; a > c.P.Now() {
				c.P.AdvanceTo(a) // pipeline window full: wait for the oldest chunk to land
			}
		}
		if useCtl {
			// A stream abandoned mid-flight leaves the reader with a partial
			// payload, so — like an SPE-side mid-protocol timeout — the
			// channel is poisoned before the fault is surfaced.
			var serr error
			if stop != nil {
				serr = stop()
			}
			if serr == nil && deadline > 0 && c.P.Now() >= deadline {
				serr = mpi.ErrDeadline
			}
			if serr != nil {
				c.app.failChannel(ch, fmt.Sprintf("%s at %s abandoned a chunked stream on %s after %d of %d chunks", api, loc, ch, k, nchunks))
				cf := c.app.opFault(loc, api, c.Self, ch, serr)
				if soft {
					return cf
				}
				c.app.raiseFault(c.Self, ch, cf, false)
			}
		}
		off := k * chunk
		n := chunkLen(len(wire), chunk, k)
		fb := fmtmsg.GetWireBuf(chunkIdxSize + n)
		frame := appendChunkFrame(*fb, k, wire[off:off+n])
		injStart := c.P.Now()
		arrivals = append(arrivals, c.rank.SendChunk(c.P, dst, stag, frame))
		*fb = frame
		fmtmsg.PutWireBuf(fb)
		c.app.spanChunk(xfer, trace.PhaseChunkFrame, c.Self.String(), ch, n, injStart, c.P.Now(), k)
		inflight := 0
		for _, a := range arrivals {
			if a > c.P.Now() {
				inflight++
			}
		}
		c.app.meterStreamInflight(streamSendDir, inflight)
	}
	// The stream is buffered in flight regardless of the reader: tell the
	// detector so a blocked read on ch is not treated as a wait.
	c.app.reportSent(ch)
	self := c.Self.String()
	c.app.spanPhase(xfer, trace.PhaseChunkRelay, self, ch, len(wire), sendStart, c.P.Now())
	c.app.meterBlocked(c.Self, blockWrite, c.P.Now()-sendStart)
	c.app.meterOp(ch, len(wire), c.P.Now()-opStart)
	c.app.record(c.P, trace.KindWrite, c.Self, ch, len(wire), xfer, c.P.Now()-opStart)
	return nil
}

// readChunked is the reader side of the chunk-stream protocol for regular
// processes: receive the header, drain the chunks into a pooled reassembly
// buffer (charging per-chunk stack extraction), then unpack in place. A
// drain abandoned by a deadline or stop poisons the channel — the partial
// payload is discarded, never delivered.
func (c *Ctx) readChunked(loc, api string, ch *Channel, spec *fmtmsg.Spec, expected int, opStart, deadline sim.Time, soft, useCtl bool, args ...any) error {
	src := c.peerRank(ch.From)
	stag := ch.streamTag()
	self := c.Self.String()
	par := c.app.par
	recvOne := func() ([]byte, mpi.Status, error) {
		if useCtl {
			unwatch := c.app.watchChannel(ch, c.P)
			d, s, err := c.rank.RecvCtl(c.P, src, stag, mpi.Ctl{Deadline: deadline, Stop: c.app.chanStop(ch)})
			unwatch()
			return d, s, err
		}
		d, s := c.rank.Recv(c.P, src, stag)
		return d, s, nil
	}
	c.app.reportBlock(c.Self, ch.From, ch, deadlock.OpRead, loc)
	waitStart := c.P.Now()
	hdrData, st, err := recvOne()
	if err != nil {
		cf := c.app.opFault(loc, api, c.Self, ch, err)
		if soft {
			c.app.reportUnblock(c.Self)
			return cf
		}
		c.app.raiseFault(c.Self, ch, cf, true)
	}
	if len(hdrData) != streamHdrSize {
		c.fail(loc, api, "malformed stream header on %s", ch)
	}
	xfer := st.Xfer
	sig, size, _, nchunks := parseStreamHeader(hdrData)
	if sig != spec.Signature() {
		c.fail(loc, api, "format %q does not match what the writer sent on %s", spec.Format, ch)
	}
	if size != expected {
		c.fail(loc, api, "size mismatch on %s: writer sent %d bytes, reader expects %d", ch, size, expected)
	}
	c.app.spanPhase(xfer, trace.PhaseMPIWait, self, ch, size, waitStart, c.P.Now())
	drainStart := c.P.Now()
	bp := fmtmsg.GetWireBuf(size)
	defer fmtmsg.PutWireBuf(bp)
	buf := *bp
	for k := 0; k < nchunks; k++ {
		cdata, _, err := recvOne()
		if err != nil {
			c.app.failChannel(ch, fmt.Sprintf("%s at %s abandoned a chunked stream on %s after %d of %d chunks", api, loc, ch, k, nchunks))
			cf := c.app.opFault(loc, api, c.Self, ch, err)
			if soft {
				c.app.reportUnblock(c.Self)
				return cf
			}
			c.app.raiseFault(c.Self, ch, cf, true)
		}
		idx, payload, ok := parseChunkFrame(cdata)
		if !ok || idx != k {
			c.fail(loc, api, "stream chunk %d arrived out of order on %s (expected %d)", idx, ch, k)
		}
		chunkStart := c.P.Now()
		c.P.Advance(par.ChunkStackTime(len(payload)))
		buf = append(buf, payload...)
		c.app.spanChunk(xfer, trace.PhaseChunkFrame, self, ch, len(payload), chunkStart, c.P.Now(), k)
		c.app.meterStreamInflight(streamRecvDir, nchunks-k-1)
	}
	*bp = buf
	c.app.reportUnblock(c.Self)
	c.app.spanPhase(xfer, trace.PhaseChunkRelay, self, ch, size, drainStart, c.P.Now())
	c.app.meterBlocked(c.Self, blockRead, c.P.Now()-waitStart)
	if len(buf) != size {
		c.fail(loc, api, "stream on %s delivered %d bytes, header announced %d", ch, len(buf), size)
	}
	unpackStart := c.P.Now()
	c.P.Advance(par.PilotOverhead + par.PackTime(size))
	c.app.obs.host.Enter(hostprof.SubsysFmtmsg)
	_, uerr := spec.UnpackFrom(buf, args...)
	c.app.obs.host.Exit()
	if uerr != nil {
		c.fail(loc, api, "%v", uerr)
	}
	c.app.spanPhase(xfer, trace.PhasePack, self, ch, size, unpackStart, c.P.Now())
	c.app.meterOp(ch, size, c.P.Now()-opStart)
	c.app.record(c.P, trace.KindRead, c.Self, ch, size, xfer, c.P.Now()-opStart)
	return nil
}

// RunSPE launches a dormant SPE process created with CreateSPE
// (PI_RunSPE/PI_StartSPE): it loads the program plus the CellPilot runtime
// into the SPE local store and starts it with (arg, env), returning
// immediately while the SPE computes. Only the parent process may launch
// it — SPE processes form a hierarchy under their controlling PPE process.
func (c *Ctx) RunSPE(sp *Process, arg int, env any) {
	loc := callerLoc(1)
	if sp == nil || !sp.IsSPE() {
		c.fail(loc, "PI_RunSPE", "%v is not an SPE process", sp)
	}
	if sp.parent != c.Self {
		c.fail(loc, "PI_RunSPE", "%s must be started by its parent %s, not %s", sp, sp.parent, c.Self)
	}
	if sp.started {
		c.fail(loc, "PI_RunSPE", "%s already started", sp)
	}
	if sp.dead {
		// The SPE (or its node) was killed before launch: this parent's
		// operation faults, but the application keeps running degraded.
		c.app.raiseFault(c.Self, nil, &ChannelFault{
			Loc: loc, API: "PI_RunSPE", Channel: sp.String(), ChannelID: -1,
			Reason: "SPE process was killed by fault injection before launch",
		}, false)
	}
	node := c.app.Clu.Nodes[sp.nodeID]
	spe, err := node.SPE(sp.speIdx)
	if err != nil {
		c.fail(loc, "PI_RunSPE", "%v", err)
	}
	sctx, err := sdk.ContextCreate(c.app.K, spe)
	if err != nil {
		c.fail(loc, "PI_RunSPE", "%v", err)
	}
	app := c.app
	prog := &sdk.Program{
		Name:     sp.prog.Name,
		CodeSize: sp.prog.CodeSize,
		Main: func(sc *sdk.Context, a int, e any) {
			defer app.userDone()
			app.meterProcStart(sp, sc.Proc.Now())
			defer func() { app.meterProcEnd(sp, sc.Proc.Now()) }()
			defer app.recoverFault(sp)
			sp.simProc = sc.Proc
			sctx2 := &SPECtx{app: app, P: sc.Proc, Self: sp, sctx: sc, arg: a, env: e}
			sp.prog.Body(sctx2)
		},
	}
	if err := sctx.Load(prog, c.app.par.CellPilotFootprint); err != nil {
		c.fail(loc, "PI_RunSPE", "%v", err)
	}
	c.P.Advance(c.app.par.SPELaunch)
	sp.started = true
	sp.sctx = sctx
	if inj := app.opts.Faults; inj != nil && inj.UsesMailbox() {
		// Route this SPE's mailbox words through the injector: its outbound
		// (descriptor) words can be dropped or stalled per the plan.
		name := sp.name
		spe.OutMbox.SetFaultHook(func() (bool, sim.Time) { return inj.MailboxVerdict(name) })
	}
	app.userLive++
	app.copilotFor(sp).register(sp, sctx)
	if err := sctx.Run(arg, env); err != nil {
		c.fail(loc, "PI_RunSPE", "%v", err)
	}
}

// Broadcast writes the same message to every channel of a broadcast
// bundle (PI_Broadcast). Following Pilot's MPMD convention, only the
// common (writing) endpoint calls this; each receiver simply calls Read
// on its own channel.
func (c *Ctx) Broadcast(b *Bundle, format string, args ...any) {
	loc := callerLoc(1)
	if b == nil || b.kind != BundleBroadcast {
		c.fail(loc, "PI_Broadcast", "bundle was not created for broadcast")
	}
	if b.common != c.Self {
		c.fail(loc, "PI_Broadcast", "%s is not the bundle's writer", c.Self)
	}
	spec, err := fmtmsg.Parse(format)
	if err != nil {
		c.fail(loc, "PI_Broadcast", "%v", err)
	}
	wire, err := spec.Pack(args...)
	if err != nil {
		c.fail(loc, "PI_Broadcast", "%v", err)
	}
	c.P.Advance(c.app.par.PilotOverhead + c.app.par.PackTime(len(wire)))
	hdr := putHeader(spec.Signature(), len(wire))
	useCtl := c.app.hardened()
	for _, ch := range b.chans {
		if useCtl && ch.fault != nil {
			c.app.raiseFault(c.Self, ch, c.app.opFault(loc, "PI_Broadcast", c.Self, ch, ch.fault), false)
		}
		xfer := c.app.newXfer()
		sendStart := c.P.Now()
		c.rank.TagNextXfer(xfer)
		if useCtl {
			unwatch := c.app.watchChannel(ch, c.P)
			err := c.rank.SendVecCtl(c.P, c.peerRank(ch.To), ch.tag(),
				mpi.Ctl{Deadline: c.app.opDeadline(sendStart, 0), Stop: c.app.chanStop(ch)}, hdr, wire)
			unwatch()
			if err != nil {
				c.app.raiseFault(c.Self, ch, c.app.opFault(loc, "PI_Broadcast", c.Self, ch, err), false)
			}
		} else {
			c.rank.SendVec(c.P, c.peerRank(ch.To), ch.tag(), hdr, wire)
		}
		c.app.reportSent(ch)
		c.app.spanPhase(xfer, trace.PhaseMPISend, c.Self.String(), ch, len(wire), sendStart, c.P.Now())
		c.app.meterBlocked(c.Self, blockWrite, c.P.Now()-sendStart)
		c.app.meterOp(ch, len(wire), c.P.Now()-sendStart)
		c.app.record(c.P, trace.KindWrite, c.Self, ch, len(wire), xfer, c.P.Now()-sendStart)
	}
}

// Gather collects one contribution per channel of a gather bundle into
// out (PI_Gather). format describes a single per-writer item with a fixed
// count (e.g. "%5d"); out must be a slice of the matching element type
// with room for count × len(channels) elements, filled in channel order.
// Writers each call Write on their own channel with the same format.
func (c *Ctx) Gather(b *Bundle, format string, out any) {
	loc := callerLoc(1)
	if b == nil || b.kind != BundleGather {
		c.fail(loc, "PI_Gather", "bundle was not created for gather")
	}
	if b.common != c.Self {
		c.fail(loc, "PI_Gather", "%s is not the bundle's reader", c.Self)
	}
	spec, err := fmtmsg.Parse(format)
	if err != nil {
		c.fail(loc, "PI_Gather", "%v", err)
	}
	if len(spec.Items) != 1 || spec.Items[0].Star {
		c.fail(loc, "PI_Gather", "gather format must be a single fixed-count item, got %q", format)
	}
	item := spec.Items[0]
	perWriter := item.Count * item.Type.Size()
	var all []byte
	useCtl := c.app.hardened()
	for _, ch := range b.chans {
		if useCtl && ch.fault != nil {
			c.app.raiseFault(c.Self, ch, c.app.opFault(loc, "PI_Gather", c.Self, ch, ch.fault), false)
		}
		waitStart := c.P.Now()
		deadline := c.app.opDeadline(waitStart, 0)
		c.app.reportBlock(c.Self, ch.From, ch, deadlock.OpRead, loc)
		var data []byte
		var st mpi.Status
		if useCtl {
			unwatch := c.app.watchChannel(ch, c.P)
			d, s, err := c.rank.RecvCtl(c.P, c.peerRank(ch.From), ch.tag(), mpi.Ctl{Deadline: deadline, Stop: c.app.chanStop(ch)})
			unwatch()
			if err != nil {
				c.app.raiseFault(c.Self, ch, c.app.opFault(loc, "PI_Gather", c.Self, ch, err), true)
			}
			data, st = d, s
		} else {
			data, st = c.rank.Recv(c.P, c.peerRank(ch.From), ch.tag())
		}
		c.app.reportUnblock(c.Self)
		if len(data) < hdrSize {
			c.fail(loc, "PI_Gather", "malformed message on %s", ch)
		}
		c.app.spanPhase(st.Xfer, trace.PhaseMPIWait, c.Self.String(), ch, len(data)-hdrSize, waitStart, c.P.Now())
		c.app.meterBlocked(c.Self, blockRead, c.P.Now()-waitStart)
		c.app.meterOp(ch, len(data)-hdrSize, c.P.Now()-waitStart)
		c.app.record(c.P, trace.KindRead, c.Self, ch, len(data)-hdrSize, st.Xfer, c.P.Now()-waitStart)
		sig, size := parseHeader(data)
		if sig != spec.Signature() || size != perWriter {
			c.fail(loc, "PI_Gather", "writer on %s sent %d bytes with a different format; expected %q (%d bytes)",
				ch, size, format, perWriter)
		}
		all = append(all, data[hdrSize:]...)
	}
	c.P.Advance(c.app.par.PilotOverhead + c.app.par.PackTime(len(all)))
	total := item.Count * len(b.chans)
	synth := fmtmsg.MustParse(fmt.Sprintf("%%%d%s", total, item.Type.Verb()))
	if err := synth.Unpack(all, out); err != nil {
		c.fail(loc, "PI_Gather", "%v", err)
	}
}

// Select blocks until some channel in a select bundle has data ready to
// read, and returns its index within the bundle (PI_Select). A subsequent
// Read on that channel will not block.
func (c *Ctx) Select(b *Bundle) int {
	loc := callerLoc(1)
	if b == nil || b.kind != BundleSelect {
		c.fail(loc, "PI_Select", "bundle was not created for select")
	}
	if b.common != c.Self {
		c.fail(loc, "PI_Select", "%s is not the bundle's reader", c.Self)
	}
	c.P.Advance(c.app.par.PilotOverhead)
	specs := make([]mpi.ProbeSpec, 0, len(b.chans))
	owner := make([]int, 0, len(b.chans))
	for i, ch := range b.chans {
		specs = append(specs, mpi.ProbeSpec{Src: c.peerRank(ch.From), Tag: ch.tag()})
		owner = append(owner, i)
		if c.app.streamEligible(ch) {
			// A chunked transfer announces itself on the stream tag, so an
			// eligible channel is ready when either tag has data.
			specs = append(specs, mpi.ProbeSpec{Src: c.peerRank(ch.From), Tag: ch.streamTag()})
			owner = append(owner, i)
		}
	}
	waitStart := c.P.Now()
	idx, _ := c.rank.ProbeMulti(c.P, specs)
	c.app.meterBlocked(c.Self, blockRead, c.P.Now()-waitStart)
	return owner[idx]
}

// TrySelect is the non-blocking Select: it returns the index of a channel
// with data, or -1 (PI_TrySelect).
func (c *Ctx) TrySelect(b *Bundle) int {
	loc := callerLoc(1)
	if b == nil || b.kind != BundleSelect {
		c.fail(loc, "PI_TrySelect", "bundle was not created for select")
	}
	if b.common != c.Self {
		c.fail(loc, "PI_TrySelect", "%s is not the bundle's reader", c.Self)
	}
	c.P.Advance(c.app.par.PilotOverhead)
	for i, ch := range b.chans {
		if _, ok := c.rank.Iprobe(c.P, c.peerRank(ch.From), ch.tag()); ok {
			return i
		}
		if c.app.streamEligible(ch) {
			if _, ok := c.rank.Iprobe(c.P, c.peerRank(ch.From), ch.streamTag()); ok {
				return i
			}
		}
	}
	return -1
}

// HasData reports whether a Read on ch would complete without blocking
// (PI_ChannelHasData).
func (c *Ctx) HasData(ch *Channel) bool {
	loc := callerLoc(1)
	if ch == nil || ch.To != c.Self {
		c.fail(loc, "PI_ChannelHasData", "%s is not the reader of %v", c.Self, ch)
	}
	c.P.Advance(c.app.par.PilotOverhead)
	if _, ok := c.rank.Iprobe(c.P, c.peerRank(ch.From), ch.tag()); ok {
		return true
	}
	if c.app.streamEligible(ch) {
		_, ok := c.rank.Iprobe(c.P, c.peerRank(ch.From), ch.streamTag())
		return ok
	}
	return false
}

// Log emits a trace line tagged with the process and virtual time; a
// stand-in for the printf debugging the paper's examples use.
func (c *Ctx) Log(format string, args ...any) {
	c.app.logf(c.P, c.Self, format, args...)
}
