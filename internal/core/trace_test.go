package core

import (
	"testing"

	"cellpilot/internal/trace"
)

func TestTraceRecordsChannelOps(t *testing.T) {
	c := newTestCluster(t)
	a := NewApp(c, Options{})
	rec := trace.NewRecorder(0)
	a.Trace = rec
	var down, up *Channel
	prog := &SPEProgram{Name: "echo", Body: func(ctx *SPECtx) {
		buf := make([]byte, 64)
		for i := 0; i < 3; i++ {
			ctx.Read(down, "%64b", buf)
			ctx.Write(up, "%64b", buf)
		}
	}}
	spe := a.CreateSPE(prog, a.Main(), 0)
	down = a.CreateChannel(a.Main(), spe)
	up = a.CreateChannel(spe, a.Main())
	err := a.Run(func(ctx *Ctx) {
		ctx.RunSPE(spe, 0, nil)
		buf := make([]byte, 64)
		for i := 0; i < 3; i++ {
			ctx.Write(down, "%64b", buf)
			ctx.Read(up, "%64b", buf)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	stats := rec.ByChannel()
	if len(stats) != 2 {
		t.Fatalf("channels traced = %d", len(stats))
	}
	for _, st := range stats {
		if st.Writes != 3 || st.Reads != 3 || st.Bytes != 3*64 {
			t.Fatalf("channel %d stats = %+v", st.Channel, st)
		}
	}
}

func TestTraceDoesNotPerturbTiming(t *testing.T) {
	run := func(withTrace bool) Time {
		c := newTestCluster(t)
		a := NewApp(c, Options{})
		if withTrace {
			a.Trace = trace.NewRecorder(0)
		}
		peer := a.CreateProcessOn(1, "peer", func(ctx *Ctx, _ int, arg any) {
			var v int32
			ctx.Read(arg.(*Channel), "%d", &v)
		}, 0, nil)
		ch := a.CreateChannel(a.Main(), peer)
		peer.arg = ch
		if err := a.Run(func(ctx *Ctx) { ctx.Write(ch, "%d", int32(1)) }); err != nil {
			t.Fatal(err)
		}
		return Time(c.K.Now())
	}
	if run(false) != run(true) {
		t.Fatal("tracing changed the virtual timeline")
	}
}

// Time aliases sim.Time for the helper above without another import.
type Time int64
