package core

import (
	"cellpilot/internal/deadlock"
	"cellpilot/internal/fmtmsg"
	"cellpilot/internal/sdk"
	"cellpilot/internal/sim"
	"cellpilot/internal/trace"
)

// SPECtx is the execution handle of an SPE process: the CellPilot SPE
// stub. Its Read and Write pack or unpack the message in a local-store
// buffer, post a four-word request descriptor through the outbound
// mailbox, and wait for the Co-Pilot's completion status in the inbound
// mailbox — exactly the protocol of paper Section IV.B, with no DMA
// programming in sight.
type SPECtx struct {
	app  *App
	P    *sim.Proc
	Self *Process
	sctx *sdk.Context
	arg  int
	env  any
}

// Arg reports the int argument passed to RunSPE — the paper's mechanism
// for giving each instance of a data-parallel SPE function its own index.
func (c *SPECtx) Arg() int { return c.arg }

// Env reports the environment pointer passed to RunSPE.
func (c *SPECtx) Env() any { return c.env }

// Index reports the index given at CreateSPE.
func (c *SPECtx) Index() int { return c.Self.index }

// LSFree reports the local-store bytes still available to message buffers
// — what remains of the 256 KB after the CellPilot runtime, the program
// image and the stack reserve.
func (c *SPECtx) LSFree() int { return c.sctx.SPE.LS.Free() }

func (c *SPECtx) fail(loc, api, format string, args ...any) {
	c.P.Fatalf("%v", usageError(loc, api, format, args...))
}

// request posts a four-word request descriptor through the outbound
// mailbox and nudges the Co-Pilot. The 1-entry outbound mailbox makes the
// later words stall until the Co-Pilot drains them — a real contributor
// to the latencies in paper Table II.
func (c *SPECtx) request(op speOpcode, ch *Channel, lsAddr uint32, size int, sig uint32) {
	c.sctx.WriteOutMbox(c.P, reqWord0(op, ch.id))
	c.app.copilotFor(c.Self).nudge()
	c.sctx.WriteOutMbox(c.P, lsAddr)
	c.sctx.WriteOutMbox(c.P, uint32(size))
	c.sctx.WriteOutMbox(c.P, sig)
}

// Write sends args on ch (PI_Write from an SPE process).
func (c *SPECtx) Write(ch *Channel, format string, args ...any) {
	loc := callerLoc(1)
	if ch == nil {
		c.fail(loc, "PI_Write", "nil channel")
	}
	if ch.From != c.Self {
		c.fail(loc, "PI_Write", "%s is not the writer of %s", c.Self, ch)
	}
	spec, err := fmtmsg.Parse(format)
	if err != nil {
		c.fail(loc, "PI_Write", "%v", err)
	}
	wire, err := spec.Pack(args...)
	if err != nil {
		c.fail(loc, "PI_Write", "%v", err)
	}
	packStart := c.P.Now()
	c.P.Advance(c.app.par.SPEStubOverhead + c.app.par.PackTime(len(wire)))
	xfer := c.app.newXfer()
	c.app.spanPhase(xfer, trace.PhasePack, c.Self.String(), ch, len(wire), packStart, c.P.Now())
	ls := c.sctx.SPE.LS
	lsAddr, err := ls.Alloc("PI_Write buffer", len(wire), 16)
	if err != nil {
		// The 256 KB discipline the paper stresses: the programmer still
		// has to cope with limited SPE memory.
		c.fail(loc, "PI_Write", "%v", err)
	}
	win, err := ls.Window(lsAddr, len(wire))
	if err != nil {
		c.fail(loc, "PI_Write", "%v", err)
	}
	copy(win, wire)
	// With the SPE-deadlock extension, writes that genuinely wait for the
	// peer (type-4 rendezvous, rendezvous-sized payloads) report to the
	// service; eager relays complete regardless of the reader and must not
	// create false cycles.
	blocking := c.app.opts.SPEDeadlock &&
		(ch.typ == Type4 || hdrSize+len(wire) > c.app.par.EagerThreshold)
	if blocking {
		c.app.reportBlock(c.Self, ch.To, ch, deadlock.OpWrite)
	}
	postStart := c.P.Now()
	c.app.spePosted(c.Self, xfer, postStart)
	c.request(opWrite, ch, lsAddr, len(wire), spec.Signature())
	postEnd := c.P.Now()
	if status := c.sctx.ReadInMbox(c.P); status != speStatusOK {
		c.fail(loc, "PI_Write", "transfer failed on %s (status %d)", ch, status)
	}
	if blocking {
		c.app.reportUnblock(c.Self)
	} else {
		c.app.reportSent(ch) // eager relay: in flight regardless of reader
	}
	self := c.Self.String()
	c.app.spanPhase(xfer, trace.PhaseMailboxReq, self, ch, len(wire), postStart, postEnd)
	c.app.spanPhase(xfer, trace.PhaseMailboxWait, self, ch, len(wire), postEnd, c.P.Now())
	c.app.meterBlocked(c.Self, blockMailbox, c.P.Now()-postStart)
	c.app.meterOp(ch, len(wire), c.P.Now()-packStart)
	c.app.record(c.P, trace.KindWrite, c.Self, ch, len(wire), xfer)
	ls.Release()
}

// Read receives a message from ch into args (PI_Read from an SPE
// process). The Co-Pilot lands the payload directly in this SPE's local
// store through the effective-address mapping; the stub then unpacks it.
func (c *SPECtx) Read(ch *Channel, format string, args ...any) {
	loc := callerLoc(1)
	if ch == nil {
		c.fail(loc, "PI_Read", "nil channel")
	}
	if ch.To != c.Self {
		c.fail(loc, "PI_Read", "%s is not the reader of %s", c.Self, ch)
	}
	spec, err := fmtmsg.Parse(format)
	if err != nil {
		c.fail(loc, "PI_Read", "%v", err)
	}
	expected, err := spec.WireSize(args...)
	if err != nil {
		c.fail(loc, "PI_Read", "%v", err)
	}
	ls := c.sctx.SPE.LS
	lsAddr, err := ls.Alloc("PI_Read buffer", expected, 16)
	if err != nil {
		c.fail(loc, "PI_Read", "%v", err)
	}
	if c.app.opts.SPEDeadlock {
		c.app.reportBlock(c.Self, ch.From, ch, deadlock.OpRead)
	}
	postStart := c.P.Now()
	c.app.spePosted(c.Self, 0, postStart) // reader: id arrives with the payload
	c.request(opRead, ch, lsAddr, expected, spec.Signature())
	postEnd := c.P.Now()
	if status := c.sctx.ReadInMbox(c.P); status != speStatusOK {
		c.fail(loc, "PI_Read", "transfer failed on %s (status %d)", ch, status)
	}
	if c.app.opts.SPEDeadlock {
		c.app.reportUnblock(c.Self)
	}
	waitEnd := c.P.Now()
	xfer := c.app.speTakeDone(c.Self)
	win, err := ls.Window(lsAddr, expected)
	if err != nil {
		c.fail(loc, "PI_Read", "%v", err)
	}
	c.P.Advance(c.app.par.SPEStubOverhead + c.app.par.PackTime(expected))
	if err := spec.Unpack(win, args...); err != nil {
		c.fail(loc, "PI_Read", "%v", err)
	}
	self := c.Self.String()
	c.app.spanPhase(xfer, trace.PhaseMailboxReq, self, ch, expected, postStart, postEnd)
	c.app.spanPhase(xfer, trace.PhaseMailboxWait, self, ch, expected, postEnd, waitEnd)
	c.app.spanPhase(xfer, trace.PhasePack, self, ch, expected, waitEnd, c.P.Now())
	c.app.meterBlocked(c.Self, blockMailbox, waitEnd-postStart)
	c.app.meterOp(ch, expected, c.P.Now()-postStart)
	c.app.record(c.P, trace.KindRead, c.Self, ch, expected, xfer)
	ls.Release()
}

// Log emits a trace line tagged with the SPE process and virtual time.
func (c *SPECtx) Log(format string, args ...any) {
	c.app.logf(c.P, c.Self, format, args...)
}
