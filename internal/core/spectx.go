package core

import (
	"errors"
	"fmt"

	"cellpilot/internal/deadlock"
	"cellpilot/internal/fmtmsg"
	"cellpilot/internal/hostprof"
	"cellpilot/internal/sdk"
	"cellpilot/internal/sim"
	"cellpilot/internal/trace"
)

// SPECtx is the execution handle of an SPE process: the CellPilot SPE
// stub. Its Read and Write pack or unpack the message in a local-store
// buffer, post a four-word request descriptor through the outbound
// mailbox, and wait for the Co-Pilot's completion status in the inbound
// mailbox — exactly the protocol of paper Section IV.B, with no DMA
// programming in sight.
type SPECtx struct {
	app  *App
	P    *sim.Proc
	Self *Process
	sctx *sdk.Context
	arg  int
	env  any
}

// Arg reports the int argument passed to RunSPE — the paper's mechanism
// for giving each instance of a data-parallel SPE function its own index.
func (c *SPECtx) Arg() int { return c.arg }

// Env reports the environment pointer passed to RunSPE.
func (c *SPECtx) Env() any { return c.env }

// Index reports the index given at CreateSPE.
func (c *SPECtx) Index() int { return c.Self.index }

// LSFree reports the local-store bytes still available to message buffers
// — what remains of the 256 KB after the CellPilot runtime, the program
// image and the stack reserve.
func (c *SPECtx) LSFree() int { return c.sctx.SPE.LS.Free() }

func (c *SPECtx) fail(loc, api, format string, args ...any) {
	c.P.Fatalf("%v", usageError(loc, api, format, args...))
}

// request posts a four-word request descriptor through the outbound
// mailbox and nudges the Co-Pilot. The 1-entry outbound mailbox makes the
// later words stall until the Co-Pilot drains them — a real contributor
// to the latencies in paper Table II.
func (c *SPECtx) request(op speOpcode, ch *Channel, lsAddr uint32, size int, sig uint32) {
	c.sctx.WriteOutMbox(c.P, reqWord0(op, ch.id))
	c.app.copilotFor(c.Self).nudge()
	c.sctx.WriteOutMbox(c.P, lsAddr)
	c.sctx.WriteOutMbox(c.P, uint32(size))
	c.sctx.WriteOutMbox(c.P, sig)
}

// postDesc posts the request descriptor in whichever mode the run
// requires: plain (clean runs — identical to request()), deadline-bounded
// (hardened, no mailbox faults), or the full sequence-numbered ACK/repost
// protocol (mailbox faults in the plan). A non-nil return is the
// operation's fault, already shaped by opFault.
func (c *SPECtx) postDesc(loc, api string, op speOpcode, ch *Channel, lsAddr uint32, size int, sig uint32, deadline sim.Time) error {
	if !c.app.hardened() {
		c.request(op, ch, lsAddr, size, sig)
		return nil
	}
	stop := c.app.chanStop(ch)
	if !c.app.mailboxHardened() {
		// Same four words at the same instants as request(), but a write
		// against a dead Co-Pilot's full mailbox cannot park forever.
		for i, w := range [4]uint32{reqWord0(op, ch.id), lsAddr, uint32(size), sig} {
			if err := c.sctx.WriteOutMboxCtl(c.P, w, deadline, stop); err != nil {
				return c.app.opFault(loc, api, c.Self, ch, err)
			}
			if i == 0 {
				c.app.copilotFor(c.Self).nudge()
			}
		}
		return nil
	}
	// Mailbox-hardened: word0 carries a 4-bit sequence number; the
	// Co-Pilot ACKs every decoded descriptor and NACKs garbled ones. The
	// stub reposts on NACK or ACK timeout; the Co-Pilot's per-SPE sequence
	// check discards duplicates (re-ACKing them), so a repost racing a
	// slow ACK is harmless.
	seq := c.Self.mboxSeq & speSeqMask
	c.Self.mboxSeq++
	inj := c.app.opts.Faults
	// Time spent from the first repost onward is fault-protocol backoff,
	// not nominal posting cost; the profiler attributes it separately.
	repostFrom := sim.Time(-1)
	defer func() {
		if repostFrom >= 0 {
			c.app.noteBackoff(c.Self.String(), c.P.Now()-repostFrom)
		}
	}()
	for attempt := 0; ; attempt++ {
		if attempt == 1 {
			repostFrom = c.P.Now()
		}
		if attempt > 0 {
			inj.Counts.MailboxReposts++
			inj.Logf(c.P.Now(), "%s reposts descriptor seq=%d on %s (attempt %d)", c.Self, seq, ch, attempt+1)
		}
		if attempt >= maxReposts {
			c.app.failChannel(ch, fmt.Sprintf("%s could not hand a request descriptor to its co-pilot after %d attempts", c.Self, attempt))
			return c.app.opFault(loc, api, c.Self, ch, ch.fault)
		}
		for i, w := range [4]uint32{reqWord0Seq(op, seq, ch.id), lsAddr, uint32(size), sig} {
			if err := c.sctx.WriteOutMboxCtl(c.P, w, deadline, stop); err != nil {
				return c.app.opFault(loc, api, c.Self, ch, err)
			}
			if i == 0 {
				c.app.copilotFor(c.Self).nudge()
			}
		}
		ackBy := c.P.Now() + c.app.ackTimeout()
		if deadline > 0 && deadline < ackBy {
			ackBy = deadline
		}
		acked, err := c.awaitAck(ch, seq, ackBy, stop)
		if err != nil {
			if errors.Is(err, sim.ErrTimeout) && (deadline == 0 || c.P.Now() < deadline) {
				continue // ACK overdue, not the operation deadline: repost
			}
			return c.app.opFault(loc, api, c.Self, ch, err)
		}
		if acked {
			return nil
		}
		// NACK: the Co-Pilot saw a garbled/incomplete descriptor. Repost.
	}
}

// awaitAck waits for the ACK/NACK of descriptor seq. Stray words
// (suppressed completions, ACKs of earlier sequences) are discarded.
func (c *SPECtx) awaitAck(ch *Channel, seq uint32, ackBy sim.Time, stop func() error) (acked bool, err error) {
	for {
		v, rerr := c.sctx.ReadInMboxCtl(c.P, ackBy, stop)
		if rerr != nil {
			return false, rerr
		}
		if !isAckNack(v) || v&speSeqMask != seq {
			continue
		}
		return v&speStatusKindMask == speStatusAckBase, nil
	}
}

// waitStatus reads the Co-Pilot's completion status for the current
// request. In mailbox-hardened mode, stale ACK/NACK words of reposted
// descriptors are skipped.
func (c *SPECtx) waitStatus(loc, api string, ch *Channel, deadline sim.Time) (uint32, error) {
	if !c.app.hardened() {
		return c.sctx.ReadInMbox(c.P), nil
	}
	stop := c.app.chanStop(ch)
	mh := c.app.mailboxHardened()
	for {
		v, err := c.sctx.ReadInMboxCtl(c.P, deadline, stop)
		if err != nil {
			return 0, c.app.opFault(loc, api, c.Self, ch, err)
		}
		if mh && isAckNack(v) {
			continue // stale ACK/NACK of a reposted descriptor
		}
		return v, nil
	}
}

// speSoftFail finishes a Try* operation that faulted: a timeout poisons
// the channel (the mailbox protocol is mid-flight and its late completion
// words must be suppressed), the blocked report is cleared, and the
// fault is returned to the caller.
func (c *SPECtx) speSoftFail(ch *Channel, cf *ChannelFault, blocked bool) error {
	if blocked {
		c.app.reportUnblock(c.Self)
	}
	if cf.Timeout {
		c.app.failChannel(ch, fmt.Sprintf("%s at %s timed out in %s mid-protocol", cf.API, cf.Loc, c.Self))
	}
	return cf
}

// Write sends args on ch (PI_Write from an SPE process).
func (c *SPECtx) Write(ch *Channel, format string, args ...any) {
	loc := callerLoc(1)
	c.writeFrom(loc, "PI_Write", ch, 0, false, format, args...)
}

// TryWrite is Write bounded by a relative timeout (0 falls back to
// Options.OpTimeout), returning a *ChannelFault instead of unwinding the
// process. Because a timed-out mailbox protocol leaves the channel state
// indeterminate, an SPE-side TryWrite timeout poisons the channel.
func (c *SPECtx) TryWrite(ch *Channel, timeout sim.Time, format string, args ...any) error {
	loc := callerLoc(1)
	return c.writeFrom(loc, "PI_TryWrite", ch, timeout, true, format, args...)
}

func (c *SPECtx) writeFrom(loc, api string, ch *Channel, timeout sim.Time, soft bool, format string, args ...any) error {
	if ch == nil {
		c.fail(loc, api, "nil channel")
	}
	if ch.From != c.Self {
		c.fail(loc, api, "%s is not the writer of %s", c.Self, ch)
	}
	c.app.obs.host.Enter(hostprof.SubsysFmtmsg)
	spec, err := fmtmsg.Parse(format)
	if err != nil {
		c.app.obs.host.Exit()
		c.fail(loc, api, "%v", err)
	}
	bp := fmtmsg.GetWireBuf(0)
	defer fmtmsg.PutWireBuf(bp)
	wire, err := spec.PackInto(*bp, args...)
	c.app.obs.host.Exit()
	if err != nil {
		c.fail(loc, api, "%v", err)
	}
	*bp = wire
	useCtl := timeout > 0 || c.app.hardened()
	if useCtl && ch.fault != nil {
		cf := c.app.opFault(loc, api, c.Self, ch, ch.fault)
		if soft {
			return cf
		}
		c.app.raiseFault(c.Self, ch, cf, false)
	}
	packStart := c.P.Now()
	deadline := sim.Time(0)
	if useCtl {
		deadline = c.app.opDeadline(packStart, timeout)
		defer c.app.watchChannel(ch, c.P)()
	}
	c.P.Advance(c.app.par.SPEStubOverhead + c.app.par.PackTime(len(wire)))
	xfer := c.app.newXfer()
	c.app.spanPhase(xfer, trace.PhasePack, c.Self.String(), ch, len(wire), packStart, c.P.Now())
	ls := c.sctx.SPE.LS
	lsAddr, err := ls.Alloc("PI_Write buffer", len(wire), 16)
	if err != nil {
		// The 256 KB discipline the paper stresses: the programmer still
		// has to cope with limited SPE memory.
		c.fail(loc, api, "%v", err)
	}
	win, err := ls.Window(lsAddr, len(wire))
	if err != nil {
		c.fail(loc, api, "%v", err)
	}
	copy(win, wire)
	// With the SPE-deadlock extension, writes that genuinely wait for the
	// peer (type-4 rendezvous, rendezvous-sized payloads) report to the
	// service; eager relays complete regardless of the reader and must not
	// create false cycles.
	blocking := c.app.opts.SPEDeadlock &&
		(ch.typ == Type4 || hdrSize+len(wire) > c.app.par.EagerThreshold)
	if blocking {
		c.app.reportBlock(c.Self, ch.To, ch, deadlock.OpWrite, loc)
	}
	postStart := c.P.Now()
	c.app.spePosted(c.Self, xfer, postStart)
	if err := c.postDesc(loc, api, opWrite, ch, lsAddr, len(wire), spec.Signature(), deadline); err != nil {
		cf := err.(*ChannelFault)
		if soft {
			rerr := c.speSoftFail(ch, cf, blocking)
			if lerr := ls.Release(); lerr != nil {
				c.fail(loc, api, "%v", lerr)
			}
			return rerr
		}
		c.app.raiseFault(c.Self, ch, cf, blocking)
	}
	postEnd := c.P.Now()
	status, serr := c.waitStatus(loc, api, ch, deadline)
	if serr != nil {
		cf := serr.(*ChannelFault)
		if soft {
			rerr := c.speSoftFail(ch, cf, blocking)
			if lerr := ls.Release(); lerr != nil {
				c.fail(loc, api, "%v", lerr)
			}
			return rerr
		}
		c.app.raiseFault(c.Self, ch, cf, blocking)
	}
	if status != speStatusOK {
		if useCtl && status == speStatusFault {
			src := error(ch.fault)
			if ch.fault == nil {
				src = fmt.Errorf("the co-pilot faulted the transfer (peer dead or channel poisoned)")
			}
			cf := c.app.opFault(loc, api, c.Self, ch, src)
			if soft {
				rerr := c.speSoftFail(ch, cf, blocking)
				if lerr := ls.Release(); lerr != nil {
					c.fail(loc, api, "%v", lerr)
				}
				return rerr
			}
			c.app.raiseFault(c.Self, ch, cf, blocking)
		}
		c.fail(loc, api, "transfer failed on %s (status %d)", ch, status)
	}
	if blocking {
		c.app.reportUnblock(c.Self)
	} else {
		c.app.reportSent(ch) // eager relay: in flight regardless of reader
	}
	self := c.Self.String()
	c.app.spanPhase(xfer, trace.PhaseMailboxReq, self, ch, len(wire), postStart, postEnd)
	c.app.spanPhase(xfer, trace.PhaseMailboxWait, self, ch, len(wire), postEnd, c.P.Now())
	c.app.meterBlocked(c.Self, blockMailbox, c.P.Now()-postStart)
	c.app.meterOp(ch, len(wire), c.P.Now()-packStart)
	c.app.record(c.P, trace.KindWrite, c.Self, ch, len(wire), xfer, c.P.Now()-packStart)
	if err := ls.Release(); err != nil {
		c.fail(loc, api, "%v", err)
	}
	return nil
}

// Read receives a message from ch into args (PI_Read from an SPE
// process). The Co-Pilot lands the payload directly in this SPE's local
// store through the effective-address mapping; the stub then unpacks it.
func (c *SPECtx) Read(ch *Channel, format string, args ...any) {
	loc := callerLoc(1)
	c.readFrom(loc, "PI_Read", ch, 0, false, format, args...)
}

// TryRead is Read bounded by a relative timeout (0 falls back to
// Options.OpTimeout), returning a *ChannelFault instead of unwinding the
// process. Like TryWrite, an SPE-side timeout poisons the channel.
func (c *SPECtx) TryRead(ch *Channel, timeout sim.Time, format string, args ...any) error {
	loc := callerLoc(1)
	return c.readFrom(loc, "PI_TryRead", ch, timeout, true, format, args...)
}

func (c *SPECtx) readFrom(loc, api string, ch *Channel, timeout sim.Time, soft bool, format string, args ...any) error {
	if ch == nil {
		c.fail(loc, api, "nil channel")
	}
	if ch.To != c.Self {
		c.fail(loc, api, "%s is not the reader of %s", c.Self, ch)
	}
	spec, err := fmtmsg.Parse(format)
	if err != nil {
		c.fail(loc, api, "%v", err)
	}
	expected, err := spec.WireSize(args...)
	if err != nil {
		c.fail(loc, api, "%v", err)
	}
	useCtl := timeout > 0 || c.app.hardened()
	if useCtl && ch.fault != nil {
		cf := c.app.opFault(loc, api, c.Self, ch, ch.fault)
		if soft {
			return cf
		}
		c.app.raiseFault(c.Self, ch, cf, false)
	}
	deadline := sim.Time(0)
	if useCtl {
		deadline = c.app.opDeadline(c.P.Now(), timeout)
		defer c.app.watchChannel(ch, c.P)()
	}
	ls := c.sctx.SPE.LS
	lsAddr, err := ls.Alloc("PI_Read buffer", expected, 16)
	if err != nil {
		c.fail(loc, api, "%v", err)
	}
	blocking := c.app.opts.SPEDeadlock
	if blocking {
		c.app.reportBlock(c.Self, ch.From, ch, deadlock.OpRead, loc)
	}
	postStart := c.P.Now()
	c.app.spePosted(c.Self, 0, postStart) // reader: id arrives with the payload
	if err := c.postDesc(loc, api, opRead, ch, lsAddr, expected, spec.Signature(), deadline); err != nil {
		cf := err.(*ChannelFault)
		if soft {
			rerr := c.speSoftFail(ch, cf, blocking)
			if lerr := ls.Release(); lerr != nil {
				c.fail(loc, api, "%v", lerr)
			}
			return rerr
		}
		c.app.raiseFault(c.Self, ch, cf, blocking)
	}
	postEnd := c.P.Now()
	status, serr := c.waitStatus(loc, api, ch, deadline)
	if serr != nil {
		cf := serr.(*ChannelFault)
		if soft {
			rerr := c.speSoftFail(ch, cf, blocking)
			if lerr := ls.Release(); lerr != nil {
				c.fail(loc, api, "%v", lerr)
			}
			return rerr
		}
		c.app.raiseFault(c.Self, ch, cf, blocking)
	}
	if status != speStatusOK {
		if useCtl && status == speStatusFault {
			src := error(ch.fault)
			if ch.fault == nil {
				src = fmt.Errorf("the co-pilot faulted the transfer (peer dead or channel poisoned)")
			}
			cf := c.app.opFault(loc, api, c.Self, ch, src)
			if soft {
				rerr := c.speSoftFail(ch, cf, blocking)
				if lerr := ls.Release(); lerr != nil {
					c.fail(loc, api, "%v", lerr)
				}
				return rerr
			}
			c.app.raiseFault(c.Self, ch, cf, blocking)
		}
		c.fail(loc, api, "transfer failed on %s (status %d)", ch, status)
	}
	if blocking {
		c.app.reportUnblock(c.Self)
	}
	waitEnd := c.P.Now()
	xfer := c.app.speTakeDone(c.Self)
	win, err := ls.Window(lsAddr, expected)
	if err != nil {
		c.fail(loc, api, "%v", err)
	}
	c.P.Advance(c.app.par.SPEStubOverhead + c.app.par.PackTime(expected))
	c.app.obs.host.Enter(hostprof.SubsysFmtmsg)
	err = spec.Unpack(win, args...)
	c.app.obs.host.Exit()
	if err != nil {
		c.fail(loc, api, "%v", err)
	}
	self := c.Self.String()
	c.app.spanPhase(xfer, trace.PhaseMailboxReq, self, ch, expected, postStart, postEnd)
	c.app.spanPhase(xfer, trace.PhaseMailboxWait, self, ch, expected, postEnd, waitEnd)
	c.app.spanPhase(xfer, trace.PhasePack, self, ch, expected, waitEnd, c.P.Now())
	c.app.meterBlocked(c.Self, blockMailbox, waitEnd-postStart)
	c.app.meterOp(ch, expected, c.P.Now()-postStart)
	c.app.record(c.P, trace.KindRead, c.Self, ch, expected, xfer, c.P.Now()-postStart)
	if err := ls.Release(); err != nil {
		c.fail(loc, api, "%v", err)
	}
	return nil
}

// Log emits a trace line tagged with the SPE process and virtual time.
func (c *SPECtx) Log(format string, args ...any) {
	c.app.logf(c.P, c.Self, format, args...)
}
