package interconnect

import (
	"math"
	"testing"

	"cellpilot/internal/cellbe"
	"cellpilot/internal/sim"
)

func newNet(t *testing.T, nodes int) (*sim.Kernel, *Network, *cellbe.Params) {
	t.Helper()
	k := sim.NewKernel(1)
	par := cellbe.DefaultParams()
	return k, New(k, par, nodes), par
}

func TestOneWayTimeComposition(t *testing.T) {
	_, n, par := newNet(t, 2)
	got := n.OneWayTime(1600)
	want := par.LinkStartup + sim.Time(math.Ceil(float64(1600)/par.NetBytesPerSec*float64(sim.Second))) + par.NetLatency
	if got != want {
		t.Fatalf("OneWayTime = %s, want %s", got, want)
	}
	if n.SerializationTime(0) != par.LinkStartup {
		t.Fatalf("zero-byte serialization should be just startup")
	}
}

func TestMinLinkLatencyIsFloorOfAnyTransfer(t *testing.T) {
	_, n, par := newNet(t, 2)
	if got, want := n.MinLinkLatency(), par.NetLatency+par.LinkStartup; got != want {
		t.Fatalf("MinLinkLatency = %s, want %s", got, want)
	}
	// The lookahead bound must hold even for the cheapest possible message.
	if got := n.OneWayTime(0); got < n.MinLinkLatency() {
		t.Fatalf("zero-byte OneWayTime %s undercuts MinLinkLatency %s", got, n.MinLinkLatency())
	}
}

func TestSelfSendErrors(t *testing.T) {
	k, n, _ := newNet(t, 2)
	k.Spawn("bad", func(p *sim.Proc) {
		if _, err := n.Send(p, 0, 0, 10); err == nil {
			p.Fatalf("self-send did not error")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownNodeErrors(t *testing.T) {
	k, n, _ := newNet(t, 2)
	k.Spawn("bad", func(p *sim.Proc) {
		if _, err := n.Send(p, 0, 5, 10); err == nil {
			p.Fatalf("unknown-node send did not error")
		}
		if _, err := n.Reserve(5, 0, 10); err == nil {
			p.Fatalf("unknown-node reserve did not error")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDistinctSendersDoNotQueueOnEachOther(t *testing.T) {
	k, n, _ := newNet(t, 3)
	var a1, a2 sim.Time
	k.Spawn("s0", func(p *sim.Proc) { a1, _ = n.Send(p, 0, 2, 100000) })
	k.Spawn("s1", func(p *sim.Proc) { a2, _ = n.Send(p, 1, 2, 100000) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Fatalf("independent NICs must not serialize: %s vs %s", a1, a2)
	}
}

func TestStatsAccumulate(t *testing.T) {
	k, n, _ := newNet(t, 2)
	k.Spawn("s", func(p *sim.Proc) {
		n.Send(p, 0, 1, 10)
		n.Send(p, 1, 0, 20)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	msgs, bytes := n.Stats()
	if msgs != 2 || bytes != 30 {
		t.Fatalf("stats = %d msgs, %d bytes", msgs, bytes)
	}
}
