// Package interconnect models the cluster fabric: per-node NICs feeding a
// non-blocking switch over gigabit Ethernet. Transfers between distinct
// nodes queue on the sender's NIC (startup + serialization at the effective
// bandwidth) and then propagate with a fixed latency; the intra-node path
// is handled by the MPI layer's shared-memory model, not here.
package interconnect

import (
	"fmt"

	"cellpilot/internal/cellbe"
	"cellpilot/internal/hostprof"
	"cellpilot/internal/sim"
)

// Network is the cluster interconnect.
type Network struct {
	k   *sim.Kernel
	par *cellbe.Params
	tx  []*sim.Resource
	// host receives wall-clock attribution frames around the transmit
	// paths (hostprof); nil disables. Never touches virtual time.
	host *hostprof.Profiler
	// flow, when set, observes every frame a NIC transmits (link name,
	// bytes) — including retransmits and control frames, so it counts
	// wire-level truth rather than delivered payload. Never touches
	// virtual time.
	flow func(link string, bytes int)

	// stats
	messages int
	bytes    int64
}

// SetHostProf attaches the wall-clock profiler (nil detaches).
func (n *Network) SetHostProf(h *hostprof.Profiler) { n.host = h }

// SetFlowHook attaches a per-frame observer called with the transmitting
// NIC's name and the frame size on every Send/Reserve/ReserveRaw (nil
// detaches). Purely observational: virtual time is unaffected.
func (n *Network) SetFlowHook(fn func(link string, bytes int)) { n.flow = fn }

// New builds a network for nNodes nodes using the calibration in par.
func New(k *sim.Kernel, par *cellbe.Params, nNodes int) *Network {
	n := &Network{k: k, par: par}
	for i := 0; i < nNodes; i++ {
		n.tx = append(n.tx, sim.NewResource(
			k, fmt.Sprintf("nic%d", i), par.LinkStartup, par.NetBytesPerSec, par.NetLatency))
	}
	return n
}

// check validates a node pair. Sending to the sender's own node is a
// programming error here (use the local MPI path), as is an out-of-range
// node id; both used to panic, but are now reported as errors so the
// protocol layers can route them through the application's abort path
// with a Pilot-style diagnostic instead of crashing the host process.
func (n *Network) check(from, to int) error {
	if from == to {
		return fmt.Errorf("interconnect: send from node %d to itself (use the local path)", from)
	}
	if from < 0 || from >= len(n.tx) || to < 0 || to >= len(n.tx) {
		return fmt.Errorf("interconnect: send between unknown nodes %d->%d (cluster has %d)", from, to, len(n.tx))
	}
	return nil
}

// Send models node from transmitting bytes to node to. It blocks p for NIC
// queueing and serialization and returns the arrival time at the receiver.
func (n *Network) Send(p *sim.Proc, from, to, bytes int) (arrival sim.Time, err error) {
	n.host.Enter(hostprof.SubsysInterconnect)
	defer n.host.Exit()
	if err := n.check(from, to); err != nil {
		return 0, err
	}
	n.messages++
	n.bytes += int64(bytes)
	if n.flow != nil {
		n.flow(n.tx[from].Name, bytes)
	}
	return n.tx[from].Send(p, bytes), nil
}

// Reserve is Send for scheduler context: it books NIC occupancy and
// returns the arrival time without blocking any proc. The MPI reliability
// layer retransmits through it — a timer has no proc to charge, but the
// resent bytes still occupy the wire.
func (n *Network) Reserve(from, to, bytes int) (arrival sim.Time, err error) {
	n.host.Enter(hostprof.SubsysInterconnect)
	defer n.host.Exit()
	if err := n.check(from, to); err != nil {
		return 0, err
	}
	n.messages++
	n.bytes += int64(bytes)
	if n.flow != nil {
		n.flow(n.tx[from].Name, bytes)
	}
	return n.tx[from].Reserve(bytes), nil
}

// ReserveRaw books NIC occupancy for one chunk of a pipelined large
// message at the raw wire rate (LinkStartup + bytes/ChunkWireBytesPerSec)
// instead of the end-to-end fitted NetBytesPerSec, returning the arrival
// time without blocking any proc. The fitted rate folds the endpoint
// TCP-stack and copy costs into the NIC; the chunked path charges those
// stages explicitly on the endpoint processes, so its NIC booking must
// reflect only the wire.
func (n *Network) ReserveRaw(from, to, bytes int) (arrival sim.Time, err error) {
	n.host.Enter(hostprof.SubsysInterconnect)
	defer n.host.Exit()
	if err := n.check(from, to); err != nil {
		return 0, err
	}
	n.messages++
	n.bytes += int64(bytes)
	if n.flow != nil {
		n.flow(n.tx[from].Name, bytes)
	}
	return n.tx[from].ReserveFor(n.par.LinkStartup + n.par.ChunkWireTime(bytes)), nil
}

// OneWayTime predicts the unloaded one-way time for a message of the given
// size; useful for tests and analytical checks.
func (n *Network) OneWayTime(bytes int) sim.Time {
	return n.tx[0].SerializationTime(bytes) + n.par.NetLatency
}

// MinLinkLatency reports the smallest virtual delay any cross-node
// message can experience on this fabric: the fixed propagation latency
// plus the per-message startup cost (even a zero-byte message pays both).
// This is the conservative lookahead a sharded simulation may claim when
// cluster replicas on different logical processes exchange messages —
// nothing can cross the fabric faster, so events farther than this bound
// below a peer's clock are provably unaffected by its future sends.
func (n *Network) MinLinkLatency() sim.Time {
	return n.par.NetLatency + n.par.LinkStartup
}

// SerializationTime reports how long bytes occupy a NIC (uniform across
// nodes). Used by protocol layers that schedule transfers asynchronously.
func (n *Network) SerializationTime(bytes int) sim.Time {
	return n.tx[0].SerializationTime(bytes)
}

// Stats reports total messages and bytes sent through the fabric.
func (n *Network) Stats() (messages int, bytes int64) { return n.messages, n.bytes }

// LinkStat is one NIC's cumulative occupancy.
type LinkStat struct {
	// Name identifies the NIC ("nic0", "nic1", ...).
	Name string
	// Busy is the cumulative virtual time the NIC spent serializing.
	Busy sim.Time
}

// LinkStats reports per-NIC cumulative busy time, in node order. Divided
// by elapsed virtual time it gives each link's saturation.
func (n *Network) LinkStats() []LinkStat {
	out := make([]LinkStat, 0, len(n.tx))
	for _, r := range n.tx {
		out = append(out, LinkStat{Name: r.Name, Busy: r.Busy()})
	}
	return out
}
