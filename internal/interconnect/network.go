// Package interconnect models the cluster fabric: per-node NICs feeding a
// non-blocking switch over gigabit Ethernet. Transfers between distinct
// nodes queue on the sender's NIC (startup + serialization at the effective
// bandwidth) and then propagate with a fixed latency; the intra-node path
// is handled by the MPI layer's shared-memory model, not here.
package interconnect

import (
	"fmt"

	"cellpilot/internal/cellbe"
	"cellpilot/internal/sim"
)

// Network is the cluster interconnect.
type Network struct {
	k   *sim.Kernel
	par *cellbe.Params
	tx  []*sim.Resource

	// stats
	messages int
	bytes    int64
}

// New builds a network for nNodes nodes using the calibration in par.
func New(k *sim.Kernel, par *cellbe.Params, nNodes int) *Network {
	n := &Network{k: k, par: par}
	for i := 0; i < nNodes; i++ {
		n.tx = append(n.tx, sim.NewResource(
			k, fmt.Sprintf("nic%d", i), par.LinkStartup, par.NetBytesPerSec, par.NetLatency))
	}
	return n
}

// Send models node from transmitting bytes to node to. It blocks p for NIC
// queueing and serialization and returns the arrival time at the receiver.
// Sending to the sender's own node is a programming error here; use the
// local MPI path instead.
func (n *Network) Send(p *sim.Proc, from, to, bytes int) (arrival sim.Time) {
	if from == to {
		panic(fmt.Sprintf("interconnect: Send from node %d to itself", from))
	}
	if from < 0 || from >= len(n.tx) || to < 0 || to >= len(n.tx) {
		panic(fmt.Sprintf("interconnect: Send between unknown nodes %d->%d", from, to))
	}
	n.messages++
	n.bytes += int64(bytes)
	return n.tx[from].Send(p, bytes)
}

// OneWayTime predicts the unloaded one-way time for a message of the given
// size; useful for tests and analytical checks.
func (n *Network) OneWayTime(bytes int) sim.Time {
	return n.tx[0].SerializationTime(bytes) + n.par.NetLatency
}

// SerializationTime reports how long bytes occupy a NIC (uniform across
// nodes). Used by protocol layers that schedule transfers asynchronously.
func (n *Network) SerializationTime(bytes int) sim.Time {
	return n.tx[0].SerializationTime(bytes)
}

// Stats reports total messages and bytes sent through the fabric.
func (n *Network) Stats() (messages int, bytes int64) { return n.messages, n.bytes }
