package workload

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"cellpilot/internal/cellbe"
	"cellpilot/internal/sim"
)

// Table2Row is one (type, size) row of paper Table II with all three
// methods measured.
type Table2Row struct {
	Type  int
	Bytes int
	// One-way latencies.
	CellPilot, DMA, Copy sim.Time
}

// PaperTable2 is the published Table II (µs one-way), used for
// paper-vs-measured reporting.
var PaperTable2 = map[[2]int][3]float64{
	{1, 1}:    {105, 98, 98},
	{1, 1600}: {173, 160, 160},
	{2, 1}:    {59, 15, 15},
	{2, 1600}: {76, 15, 30},
	{3, 1}:    {140, 114, 107},
	{3, 1600}: {219, 181, 175},
	{4, 1}:    {112, 30, 30},
	{4, 1600}: {123, 30, 60},
	{5, 1}:    {189, 131, 117},
	{5, 1600}: {263, 195, 194},
}

// Table2 measures the full Table II grid: 5 channel types × {1, 1600}
// bytes × {CellPilot, DMA, Copy}, reps round trips each.
func Table2(reps int) ([]Table2Row, error) {
	var rows []Table2Row
	for typ := 1; typ <= 5; typ++ {
		for _, bytes := range []int{1, 1600} {
			row := Table2Row{Type: typ, Bytes: bytes}
			for _, m := range []Method{MethodCellPilot, MethodDMA, MethodCopy} {
				res, err := PingPong(PingPongConfig{Type: typ, Bytes: bytes, Method: m, Reps: reps})
				if err != nil {
					return nil, fmt.Errorf("type %d %dB %s: %w", typ, bytes, m, err)
				}
				switch m {
				case MethodCellPilot:
					row.CellPilot = res.OneWay
				case MethodDMA:
					row.DMA = res.OneWay
				case MethodCopy:
					row.Copy = res.OneWay
				}
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// FormatTable2 renders the measured grid against the paper's numbers.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table II — CellPilot vs hand-coded timing (µs, one-way)\n")
	fmt.Fprintf(&b, "%-5s %-6s | %-18s | %-18s | %-18s\n", "Type", "Bytes", "CellPilot", "DMA", "Copy")
	fmt.Fprintf(&b, "%-5s %-6s | %8s %9s | %8s %9s | %8s %9s\n", "", "", "measured", "paper", "measured", "paper", "measured", "paper")
	for _, r := range rows {
		p := PaperTable2[[2]int{r.Type, r.Bytes}]
		fmt.Fprintf(&b, "%-5d %-6d | %8.1f %9.0f | %8.1f %9.0f | %8.1f %9.0f\n",
			r.Type, r.Bytes, r.CellPilot.Micros(), p[0], r.DMA.Micros(), p[1], r.Copy.Micros(), p[2])
	}
	return b.String()
}

// Figure5Bar is one bar of paper Figure 5: per (type, method), the solid
// 1-byte latency and the hashed 1600-byte top.
type Figure5Bar struct {
	Type    int
	Method  Method
	OneByte sim.Time
	Array   sim.Time
}

// Figure5 derives the Figure 5 bar series from the Table II grid.
func Figure5(rows []Table2Row) []Figure5Bar {
	pick := func(r Table2Row, m Method) sim.Time {
		switch m {
		case MethodCellPilot:
			return r.CellPilot
		case MethodDMA:
			return r.DMA
		default:
			return r.Copy
		}
	}
	byKey := map[[2]int]Table2Row{}
	for _, r := range rows {
		byKey[[2]int{r.Type, r.Bytes}] = r
	}
	var bars []Figure5Bar
	for typ := 1; typ <= 5; typ++ {
		for _, m := range []Method{MethodCellPilot, MethodDMA, MethodCopy} {
			bars = append(bars, Figure5Bar{
				Type:    typ,
				Method:  m,
				OneByte: pick(byKey[[2]int{typ, 1}], m),
				Array:   pick(byKey[[2]int{typ, 1600}], m),
			})
		}
	}
	return bars
}

// FormatFigure5 renders the bars as an ASCII chart (solid = 1 byte,
// hashed top = 1600 bytes), the shape of paper Figure 5.
func FormatFigure5(bars []Figure5Bar) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5 — latencies for CellPilot vs hand-coded transfers\n")
	fmt.Fprintf(&b, "(each bar: '#' = 1-byte latency, '/' = additional time for 1600 bytes; 1 char = 5 µs)\n")
	for _, bar := range bars {
		solid := int(bar.OneByte.Micros() / 5)
		hash := int((bar.Array - bar.OneByte).Micros() / 5)
		if hash < 0 {
			hash = 0
		}
		fmt.Fprintf(&b, "type%d %-9s |%s%s %.0f/%.0f us\n",
			bar.Type, bar.Method, strings.Repeat("#", solid), strings.Repeat("/", hash),
			bar.OneByte.Micros(), bar.Array.Micros())
	}
	return b.String()
}

// Figure6Point is one point of paper Figure 6: throughput of the
// 1600-byte array case.
type Figure6Point struct {
	Type   int
	Method Method
	MBps   float64
}

// Figure6 derives the throughput series from the Table II grid.
func Figure6(rows []Table2Row) []Figure6Point {
	var pts []Figure6Point
	for _, r := range rows {
		if r.Bytes != 1600 {
			continue
		}
		for m, t := range map[Method]sim.Time{
			MethodCellPilot: r.CellPilot, MethodDMA: r.DMA, MethodCopy: r.Copy,
		} {
			pts = append(pts, Figure6Point{Type: r.Type, Method: m,
				MBps: 1600 / (float64(t) / float64(sim.Second)) / 1e6})
		}
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].Type != pts[j].Type {
			return pts[i].Type < pts[j].Type
		}
		return pts[i].Method < pts[j].Method
	})
	return pts
}

// FormatFigure6 renders the throughput chart.
func FormatFigure6(pts []Figure6Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6 — throughput for the 100-long-double array (MB/s; 1 char = 2 MB/s)\n")
	for _, p := range pts {
		fmt.Fprintf(&b, "type%d %-9s |%s %.1f MB/s\n",
			p.Type, p.Method, strings.Repeat("=", int(p.MBps/2)), p.MBps)
	}
	return b.String()
}

// CodeSizeRow is one row of the programmability comparison (paper
// Section IV.C: 80 vs 186 vs 114 lines).
type CodeSizeRow struct {
	Variant    string
	File       string
	Lines      int
	PaperLines int
}

// CodeSizes counts the effective lines (non-blank, non-comment) of the
// three relay example programs under repoRoot.
func CodeSizes(repoRoot string) ([]CodeSizeRow, error) {
	rows := []CodeSizeRow{
		{Variant: "CellPilot", File: "examples/relay_cellpilot/main.go", PaperLines: 80},
		{Variant: "DaCS", File: "examples/relay_dacs/main.go", PaperLines: 114},
		{Variant: "Cell SDK", File: "examples/relay_sdk/main.go", PaperLines: 186},
	}
	for i := range rows {
		n, err := countCodeLines(filepath.Join(repoRoot, rows[i].File))
		if err != nil {
			return nil, err
		}
		rows[i].Lines = n
	}
	return rows, nil
}

func countCodeLines(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	n := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "//") {
			continue
		}
		n++
	}
	return n, sc.Err()
}

// FormatCodeSizes renders the comparison.
func FormatCodeSizes(rows []CodeSizeRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Programmability — lines of code for the 3-hop relay (Section IV.C)\n")
	fmt.Fprintf(&b, "%-10s %-36s %8s %8s\n", "Variant", "File", "measured", "paper")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %-36s %8d %8d\n", r.Variant, r.File, r.Lines, r.PaperLines)
	}
	return b.String()
}

// FootprintRow is one row of the SPE memory-footprint experiment (paper
// Section V: cellpilot.o = 10336 bytes vs libdacs.a = 36600 bytes).
type FootprintRow struct {
	Library   string
	Footprint int
	// UsableLS is what remains for application buffers after the library,
	// a default program image and the stack reserve.
	UsableLS int
	// MaxMessage is the largest single message the SPE stub can stage.
	MaxMessage int
}

// Footprints computes the local-store budget under each library.
func Footprints(par *cellbe.Params) []FootprintRow {
	if par == nil {
		par = cellbe.DefaultParams()
	}
	mk := func(name string, fp int) FootprintRow {
		ls := cellbe.NewLocalStore(par.LSSize)
		image := fp + par.DefaultCodeSize + par.StackReserve
		if err := ls.LoadImage(name, image); err != nil {
			return FootprintRow{Library: name, Footprint: fp}
		}
		usable := ls.Free()
		// Largest single staging buffer (16-byte aligned).
		max := usable &^ 15
		return FootprintRow{Library: name, Footprint: fp, UsableLS: usable, MaxMessage: max}
	}
	return []FootprintRow{
		mk("CellPilot (cellpilot.o)", par.CellPilotFootprint),
		mk("DaCS (libdacs.a)", par.DaCSFootprint),
	}
}

// FormatFootprints renders the footprint table.
func FormatFootprints(rows []FootprintRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "SPE local-store footprint (Section V; 256 KB total)\n")
	fmt.Fprintf(&b, "%-26s %10s %12s %12s\n", "Library", "resident", "usable LS", "max message")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-26s %10d %12d %12d\n", r.Library, r.Footprint, r.UsableLS, r.MaxMessage)
	}
	return b.String()
}

// AblationDirectLocal measures the A1 ablation: type-2 latency with the
// paper's MPI path versus the direct shared-memory handoff its Section V
// analysis suggests.
func AblationDirectLocal(reps int) (mpiPath, direct [2]sim.Time, err error) {
	for i, bytes := range []int{1, 1600} {
		r, e := PingPong(PingPongConfig{Type: 2, Bytes: bytes, Method: MethodCellPilot, Reps: reps})
		if e != nil {
			return mpiPath, direct, e
		}
		mpiPath[i] = r.OneWay
		r, e = PingPong(PingPongConfig{Type: 2, Bytes: bytes, Method: MethodCellPilot, Reps: reps, DirectLocal: true})
		if e != nil {
			return mpiPath, direct, e
		}
		direct[i] = r.OneWay
	}
	return mpiPath, direct, nil
}

// AblationPoll measures the A2 ablation: type-4 latency versus the
// Co-Pilot polling interval.
func AblationPoll(intervals []sim.Time, reps int) (map[sim.Time]sim.Time, error) {
	out := map[sim.Time]sim.Time{}
	for _, iv := range intervals {
		r, err := PingPong(PingPongConfig{Type: 4, Bytes: 1, Method: MethodCellPilot, Reps: reps, PollInterval: iv})
		if err != nil {
			return nil, err
		}
		out[iv] = r.OneWay
	}
	return out, nil
}

// AblationEager measures the A3 ablation: type-1 latency across payload
// sizes under different eager/rendezvous thresholds.
func AblationEager(sizes []int, thresholds []int, reps int) (map[[2]int]sim.Time, error) {
	out := map[[2]int]sim.Time{}
	for _, th := range thresholds {
		for _, sz := range sizes {
			r, err := PingPong(PingPongConfig{Type: 1, Bytes: sz, Method: MethodCellPilot, Reps: reps, EagerThreshold: th})
			if err != nil {
				return nil, err
			}
			out[[2]int{th, sz}] = r.OneWay
		}
	}
	return out, nil
}
