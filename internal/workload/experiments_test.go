package workload

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cellpilot/internal/sim"
)

func TestExperimentPipelines(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment pipeline in short mode")
	}
	rows, err := Table2(50)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("rows = %d", len(rows))
	}
	tbl := FormatTable2(rows)
	for _, want := range []string{"Table II", "CellPilot", "paper", "measured"} {
		if !strings.Contains(tbl, want) {
			t.Fatalf("table missing %q:\n%s", want, tbl)
		}
	}
	bars := Figure5(rows)
	if len(bars) != 15 {
		t.Fatalf("bars = %d", len(bars))
	}
	f5 := FormatFigure5(bars)
	if !strings.Contains(f5, "type5 Copy") || !strings.Contains(f5, "#") {
		t.Fatalf("figure 5 malformed:\n%s", f5)
	}
	pts := Figure6(rows)
	if len(pts) != 15 {
		t.Fatalf("points = %d", len(pts))
	}
	// Sorted by (type, method) and every throughput positive.
	for i, p := range pts {
		if p.MBps <= 0 {
			t.Fatalf("point %d nonpositive", i)
		}
		if i > 0 && (pts[i-1].Type > p.Type || (pts[i-1].Type == p.Type && pts[i-1].Method >= p.Method)) {
			t.Fatalf("points unsorted at %d", i)
		}
	}
	if !strings.Contains(FormatFigure6(pts), "MB/s") {
		t.Fatal("figure 6 malformed")
	}
}

func TestCodeSizesOrdering(t *testing.T) {
	// Locate the repo root relative to this test file's cwd.
	root := "../.."
	if _, err := os.Stat(filepath.Join(root, "examples/relay_cellpilot/main.go")); err != nil {
		t.Skip("examples not found from test cwd")
	}
	rows, err := CodeSizes(root)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]int{}
	for _, r := range rows {
		if r.Lines <= 0 {
			t.Fatalf("%s counted %d lines", r.Variant, r.Lines)
		}
		byName[r.Variant] = r.Lines
	}
	// The paper's ordering: CellPilot < DaCS < SDK.
	if !(byName["CellPilot"] < byName["DaCS"] && byName["DaCS"] < byName["Cell SDK"]) {
		t.Fatalf("LoC ordering violated: %+v", byName)
	}
	if !strings.Contains(FormatCodeSizes(rows), "Programmability") {
		t.Fatal("format malformed")
	}
	if _, err := CodeSizes("/nonexistent"); err == nil {
		t.Fatal("bad root accepted")
	}
}

func TestFootprintsExperiment(t *testing.T) {
	rows := Footprints(nil)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	cp, dacs := rows[0], rows[1]
	if cp.Footprint != 10336 || dacs.Footprint != 36600 {
		t.Fatalf("footprints %d/%d", cp.Footprint, dacs.Footprint)
	}
	if cp.UsableLS <= dacs.UsableLS {
		t.Fatal("CellPilot must leave more usable local store")
	}
	delta := cp.UsableLS - dacs.UsableLS
	if delta < 36600-10336 || delta > 36600-10336+16 { // ±16B image alignment
		t.Fatalf("budget delta %d", delta)
	}
	if !strings.Contains(FormatFootprints(rows), "libdacs.a") {
		t.Fatal("format malformed")
	}
}

func TestAblationsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations in short mode")
	}
	mpiPath, direct, err := AblationDirectLocal(50)
	if err != nil {
		t.Fatal(err)
	}
	// The direct path must not be slower (it removes MPI overheads).
	for i := range mpiPath {
		if direct[i] > mpiPath[i] {
			t.Fatalf("direct path slower: %s vs %s", direct[i], mpiPath[i])
		}
	}
	poll, err := AblationPoll([]sim.Time{5 * sim.Microsecond, 80 * sim.Microsecond}, 50)
	if err != nil {
		t.Fatal(err)
	}
	if poll[80*sim.Microsecond] <= poll[5*sim.Microsecond] {
		t.Fatalf("slow polling should hurt type 4: %v", poll)
	}
	eager, err := AblationEager([]int{64}, []int{1, 1 << 20}, 50)
	if err != nil {
		t.Fatal(err)
	}
	if eager[[2]int{1, 64}] <= eager[[2]int{1 << 20, 64}] {
		t.Fatalf("forced rendezvous should cost more for small messages: %v", eager)
	}
}
