package workload

import "testing"

func TestStencilMatchesReference(t *testing.T) {
	res, err := Stencil(StencilConfig{Workers: 8, CellsPerWorker: 32, Iterations: 25})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxErr != 0 {
		t.Fatalf("max error %g; halo exchange must be bit-exact", res.MaxErr)
	}
	if res.Elapsed <= 0 {
		t.Fatal("no virtual time elapsed")
	}
}

func TestStencilWorkerCounts(t *testing.T) {
	for _, w := range []int{2, 3, 5, 16} {
		res, err := Stencil(StencilConfig{Workers: w, CellsPerWorker: 16, Iterations: 10})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if res.MaxErr != 0 {
			t.Fatalf("workers=%d: max error %g", w, res.MaxErr)
		}
	}
	if _, err := Stencil(StencilConfig{Workers: 1}); err == nil {
		t.Fatal("1-worker stencil accepted (no ring)")
	}
	if _, err := Stencil(StencilConfig{Workers: 17}); err == nil {
		t.Fatal("17 workers on one blade accepted")
	}
}

func TestStencilEnergyDissipates(t *testing.T) {
	// Physical sanity: diffusion with cold boundaries loses energy.
	init := StencilInit(128)
	out := StencilSequential(StencilConfig{Iterations: 50}, init)
	var e0, e1 float64
	for i := range init {
		e0 += init[i] * init[i]
		e1 += out[i] * out[i]
	}
	if e1 >= e0 {
		t.Fatalf("energy grew: %g -> %g", e0, e1)
	}
}
