package workload

import (
	"sort"

	"cellpilot/internal/cluster"
	"cellpilot/internal/core"
	"cellpilot/internal/hostprof"
	"cellpilot/internal/sim"
)

// SizeSweepConfig drives the transfer-engine size sweep: PingPong over
// every channel type across payload sizes from 64 B up, once with the
// chunk engine disabled (the paper-faithful protocol) and once enabled.
// The paired points quantify what the pipelined path buys per size and
// confirm the small-message latencies are untouched.
type SizeSweepConfig struct {
	// Reps is the number of timed round trips per point (default 20; the
	// simulation is deterministic, so samples differ only through backlog
	// effects and a handful suffice for stable quantiles).
	Reps int
	// Transfer is the chunked arm's engine configuration. A zero ChunkSize
	// selects the sweep default: 8 KiB chunks, depth 4, zero-copy type 4.
	Transfer core.TransferOptions
	// Sizes overrides the payload sizes (default 64 B .. 1 MiB, with
	// SPE-endpoint types capped at 128 KiB by the local-store budget).
	Sizes []int
	// Host, when non-nil, accumulates host-side (wall-clock) cost across
	// every PingPong run of the sweep.
	Host *hostprof.Profiler
	// Spec overrides the simulated cluster for every point (nil = the
	// paper's two-Cell + one-Xeon corner).
	Spec *cluster.Spec
}

// SizeSweepPoint is one (type, size, arm) measurement.
type SizeSweepPoint struct {
	Type    int
	Bytes   int
	Chunked bool
	// OneWayP50/P99 are quantiles over the per-round one-way latency
	// (round trip / 2) of the timed window.
	OneWayP50 sim.Time
	OneWayP99 sim.Time
	// BandwidthMBps is Bytes / OneWayP50.
	BandwidthMBps float64
}

// sizeSweepDefaults are the default sweep sizes. SPE-endpoint types stop
// at 128 KiB: a 256 KiB local store less the CellPilot runtime, code and
// stack cannot hold a larger transfer buffer.
var sizeSweepDefaults = []int{64, 256, 1024, 4096, 16384, 65536, 131072, 262144, 1048576}

// speSizeCap is the largest payload an SPE endpoint can stage in its
// local store alongside the runtime footprint.
const speSizeCap = 131072

func (c SizeSweepConfig) withDefaults() SizeSweepConfig {
	if c.Reps == 0 {
		c.Reps = 20
	}
	if c.Transfer.ChunkSize == 0 {
		c.Transfer = core.TransferOptions{ChunkSize: 8192, PipelineDepth: 4, ZeroCopyType4: true}
	}
	if c.Sizes == nil {
		c.Sizes = sizeSweepDefaults
	}
	return c
}

// SizeSweep measures every (type, size) cell with the chunk engine off and
// on. Points come out grouped by type, then size, baseline before chunked.
func SizeSweep(cfg SizeSweepConfig) ([]SizeSweepPoint, error) {
	cfg = cfg.withDefaults()
	var out []SizeSweepPoint
	for typ := 1; typ <= 5; typ++ {
		for _, bytes := range cfg.Sizes {
			if typ != 1 && bytes > speSizeCap {
				continue
			}
			for _, chunked := range []bool{false, true} {
				pp := PingPongConfig{
					Type: typ, Bytes: bytes, Method: MethodCellPilot, Reps: cfg.Reps,
					Host: cfg.Host, Spec: cfg.Spec,
				}
				if chunked {
					pp.Transfer = cfg.Transfer
				}
				var rtts []sim.Time
				pp.RoundTrips = &rtts
				if _, err := PingPong(pp); err != nil {
					return nil, err
				}
				p50, p99 := latencyQuantiles(rtts)
				pt := SizeSweepPoint{
					Type: typ, Bytes: bytes, Chunked: chunked,
					OneWayP50: p50, OneWayP99: p99,
				}
				if p50 > 0 {
					pt.BandwidthMBps = float64(bytes) / (float64(p50) / float64(sim.Second)) / 1e6
				}
				out = append(out, pt)
			}
		}
	}
	return out, nil
}

// latencyQuantiles reduces per-round round-trip samples to one-way p50/p99.
func latencyQuantiles(rtts []sim.Time) (p50, p99 sim.Time) {
	if len(rtts) == 0 {
		return 0, 0
	}
	s := append([]sim.Time(nil), rtts...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	at := func(q float64) sim.Time {
		i := int(q * float64(len(s)-1))
		return s[i] / 2
	}
	return at(0.5), at(0.99)
}
