package workload

import (
	"fmt"
	"sort"
	"strings"

	"cellpilot/internal/cellbe"
	"cellpilot/internal/cluster"
	"cellpilot/internal/core"
	"cellpilot/internal/fault"
	"cellpilot/internal/flowmap"
	"cellpilot/internal/hostprof"
	"cellpilot/internal/sim"
	"cellpilot/internal/timeline"
	"cellpilot/internal/trace"
)

// ChaosConfig describes one seeded chaos run: concurrent pingpong traffic
// over all five Table I channel types inside ONE application, under a
// deterministic fault plan (lossy links, SPE kills, mailbox faults). The
// run uses the hardened API (Try* deadline variants), so injected faults
// degrade flows instead of hanging or crashing the run.
type ChaosConfig struct {
	// Seed feeds the injector's RNG (link loss draws, delays).
	Seed int64
	// Reps is the number of round trips per channel type (default 20).
	Reps int
	// Bytes is the payload per message (default 256; keep it under the
	// eager threshold so cross-node traffic exercises the retransmit path).
	Bytes int
	// LossProb, when > 0, applies a symmetric drop probability to the
	// node0 <-> node1 link.
	LossProb float64
	// KillSPE kills the type-4 writer SPE at KillAt; its flow faults, the
	// other four must still complete.
	KillSPE bool
	// KillAt is the kill time (default 2ms).
	KillAt sim.Time
	// MailboxDrops arms N one-shot outbound-mailbox word drops, spread
	// over the run's first milliseconds across the SPE stubs.
	MailboxDrops int
	// SoftTimeout bounds every Try* operation (default 200ms — far above
	// any retransmit backoff, so it only fires on genuine faults).
	SoftTimeout sim.Time
	// Params overrides the timing calibration (nil = defaults).
	Params *cellbe.Params
	// Transfer tunes the chunked transfer engine (zero value = disabled).
	// With chunking on and Bytes past the eager bound, the internode flows
	// (types 1, 3 and 5) exercise the chunk pipeline under injection.
	Transfer core.TransferOptions
	// Host, when non-nil, measures the run's host-side (wall-clock) cost.
	// The Fingerprint deliberately contains no host-dependent data, so an
	// instrumented chaos run fingerprints identically to a bare one — the
	// determinism test relies on exactly that.
	Host *hostprof.Profiler
	// Spec overrides the cluster topology (nil = the default two-Cell +
	// one-Xeon corner). The chaos traffic pins processes to nodes 0, 1 and
	// 2, so the first two nodes must be Cell blades and a third node of any
	// kind must exist; larger topologies carry the extra nodes idle.
	Spec *cluster.Spec
	// Plan overrides the config-derived fault schedule with an explicit one
	// (the scenario DSL's lowered product). Seed still names the injector
	// RNG seed; the plan's own Seed field is ignored.
	Plan *fault.Plan
	// Trace, when non-nil, records the run's events and transfer spans
	// (observation is free in virtual time, so traced chaos runs keep
	// bit-identical fingerprints).
	Trace *trace.Recorder
	// Stats, when non-nil, receives the application's post-run report.
	// With Trace also attached it includes the critical-path blame
	// decomposition (Stats.CritPath) and contention pairs.
	Stats *core.Stats
	// Timeline, when non-nil, records windowed time-series of the run's
	// gauges and counters (backlog, utilization, fault counters). Like the
	// other sinks it only reads, so a chaos run with a timeline attached
	// keeps a bit-identical fingerprint.
	Timeline *timeline.Recorder
	// Flows, when non-nil, accumulates the run's flow observatory (traffic
	// matrix, per-route aggregates, heavy hitters). Same zero-virtual-cost
	// contract as the other sinks.
	Flows *flowmap.Map
}

// ChaosSPEs lists the SPE stub process names a chaos run creates — the
// valid targets for kill-spe and mailbox fault injection. The scenario
// DSL validates fault targets against this set before lowering.
func ChaosSPEs() []string {
	return []string{"c2e#0", "c3e#1", "c4w#2", "c4r#3", "c5i#4", "c5e#0"}
}

// ChaosNodes is how many leading cluster nodes the chaos traffic pins
// processes to (nodes 0 and 1 must be Cell blades; node 2 may be either).
const ChaosNodes = 3

// ChaosResult is one chaos run's complete observable outcome. Two runs of
// the same config must produce identical Fingerprints.
type ChaosResult struct {
	Config ChaosResult_Config
	// VirtualTime is the run's final clock.
	VirtualTime sim.Time
	// Completed counts full round trips per channel type (1..5).
	Completed [6]int
	// Counts is the injector's fault/reaction counters.
	Counts fault.Counts
	// Killed lists processes removed by injection.
	Killed []string
	// FaultLog is the injector's chronological event log.
	FaultLog []string
	// RunErr is App.Run's error rendering ("" for a clean run).
	RunErr string
	// MetricsFaultLines are the fault/* counters from the metrics dump.
	MetricsFaultLines []string
}

// ChaosResult_Config is the subset of ChaosConfig echoed into the result.
type ChaosResult_Config struct {
	Seed         int64
	LossProb     float64
	KillSPE      bool
	MailboxDrops int
}

// Fingerprint renders everything observable about the run into one
// string; bit-for-bit equality across runs is the determinism contract.
func (r ChaosResult) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d loss=%g kill=%v mbox=%d\n",
		r.Config.Seed, r.Config.LossProb, r.Config.KillSPE, r.Config.MailboxDrops)
	fmt.Fprintf(&b, "vt=%d\n", int64(r.VirtualTime))
	fmt.Fprintf(&b, "completed=%v\n", r.Completed)
	fmt.Fprintf(&b, "counts=%+v\n", r.Counts)
	fmt.Fprintf(&b, "killed=%v\n", r.Killed)
	fmt.Fprintf(&b, "err=%s\n", r.RunErr)
	for _, l := range r.FaultLog {
		fmt.Fprintf(&b, "log %s\n", l)
	}
	for _, l := range r.MetricsFaultLines {
		fmt.Fprintf(&b, "metric %s\n", l)
	}
	return b.String()
}

func (c ChaosConfig) withDefaults() ChaosConfig {
	if c.Reps == 0 {
		c.Reps = 20
	}
	if c.Bytes == 0 {
		c.Bytes = 256
	}
	if c.KillAt == 0 {
		c.KillAt = 2 * sim.Millisecond
	}
	if c.SoftTimeout == 0 {
		c.SoftTimeout = 200 * sim.Millisecond
	}
	if c.Params == nil {
		c.Params = cellbe.DefaultParams()
	}
	return c
}

// plan builds the deterministic fault schedule for this config.
func (c ChaosConfig) plan() fault.Plan {
	p := fault.Plan{Seed: c.Seed}
	if c.LossProb > 0 {
		p.Links = append(p.Links,
			fault.LinkPolicy{From: 0, To: 1, DropProb: c.LossProb},
			fault.LinkPolicy{From: 1, To: 0, DropProb: c.LossProb})
	}
	if c.KillSPE {
		p.Events = append(p.Events, fault.Event{At: c.KillAt, Kind: fault.KillSPE, Proc: "c4w#2"})
	}
	// Spread the mailbox drops across the SPE stubs early in the run.
	targets := []string{"c2e#0", "c3e#1", "c5i#4", "c5e#0"}
	for i := 0; i < c.MailboxDrops; i++ {
		p.Events = append(p.Events, fault.Event{
			At:   sim.Time(i+1) * 300 * sim.Microsecond,
			Kind: fault.MailboxDrop,
			Proc: targets[i%len(targets)],
		})
	}
	return p
}

// Chaos runs one seeded chaos experiment on a fresh cluster.
func Chaos(cfg ChaosConfig) (ChaosResult, error) {
	cfg = cfg.withDefaults()
	spec := cluster.Spec{CellNodes: 2, XeonNodes: 1, Params: cfg.Params, Seed: 7}
	if cfg.Spec != nil {
		spec = *cfg.Spec
		if spec.Params == nil {
			spec.Params = cfg.Params
		}
		if spec.Seed == 0 {
			spec.Seed = 7
		}
	}
	if spec.CellNodes < 2 || spec.CellNodes+spec.XeonNodes < ChaosNodes {
		return ChaosResult{}, fmt.Errorf(
			"chaos: topology needs at least 2 Cell nodes and %d nodes total, got %d Cell + %d Xeon",
			ChaosNodes, spec.CellNodes, spec.XeonNodes)
	}
	clu, err := cluster.New(spec)
	if err != nil {
		return ChaosResult{}, err
	}
	plan := cfg.plan()
	if cfg.Plan != nil {
		plan = *cfg.Plan
		plan.Seed = cfg.Seed
	}
	inj := fault.NewInjector(plan)
	a := core.NewApp(clu, core.Options{Faults: inj, Transfer: cfg.Transfer})
	a.Metrics = core.NewMeter()
	a.HostProf = cfg.Host
	a.Trace = cfg.Trace
	a.Timeline = cfg.Timeline
	a.Flows = cfg.Flows

	res := ChaosResult{Config: ChaosResult_Config{
		Seed: cfg.Seed, LossProb: cfg.LossProb, KillSPE: cfg.KillSPE, MailboxDrops: cfg.MailboxDrops,
	}}
	n := cfg.Bytes / 4
	format := fmt.Sprintf("%%%dd", n)
	mk := func(round int) []int32 {
		arr := make([]int32, n)
		for i := range arr {
			arr[i] = int32(round + i)
		}
		return arr
	}
	check := func(typ, round int, arr []int32) error {
		for i := range arr {
			if arr[i] != int32(round+i) {
				return fmt.Errorf("type %d round %d corrupted at %d: %d", typ, round, i, arr[i])
			}
		}
		return nil
	}
	to := cfg.SoftTimeout

	// Soft-op adapters: a flow stops at its first fault instead of
	// unwinding its process, so one faulted flow cannot take down the
	// others that share the process (main drives types 1, 2 and 4's
	// launches concurrently with its own traffic).
	type wr func(ch *core.Channel, f string, args ...any) error
	initiate := func(typ int, write, read wr, ab, ba *core.Channel) error {
		for r := 0; r < cfg.Reps; r++ {
			if err := write(ab, format, mk(r)); err != nil {
				return err
			}
			got := make([]int32, n)
			if err := read(ba, format, got); err != nil {
				return err
			}
			if err := check(typ, r, got); err != nil {
				return err
			}
			res.Completed[typ]++
		}
		return nil
	}
	echo := func(write, read wr, ab, ba *core.Channel) {
		for r := 0; r < cfg.Reps; r++ {
			got := make([]int32, n)
			if read(ab, format, got) != nil {
				return
			}
			if write(ba, format, got) != nil {
				return
			}
		}
	}
	ctxWr := func(ctx *core.Ctx) (wr, wr) {
		return func(ch *core.Channel, f string, args ...any) error { return ctx.TryWrite(ch, to, f, args...) },
			func(ch *core.Channel, f string, args ...any) error { return ctx.TryRead(ch, to, f, args...) }
	}
	speWr := func(ctx *core.SPECtx) (wr, wr) {
		return func(ch *core.Channel, f string, args ...any) error { return ctx.TryWrite(ch, to, f, args...) },
			func(ch *core.Channel, f string, args ...any) error { return ctx.TryRead(ch, to, f, args...) }
	}

	var t1ab, t1ba, t2ab, t2ba, t3ab, t3ba, t4ab, t4ba, t5ab, t5ba *core.Channel

	// Type 1 echo: PPE on node 1 (also parent of the type-5 echo SPE).
	ppe1 := a.CreateProcessOn(1, "chaos_ppe1", func(ctx *core.Ctx, _ int, arg any) {
		ctx.RunSPE(arg.(*core.Process), 0, nil)
		w, r := ctxWr(ctx)
		echo(w, r, t1ab, t1ba)
	}, 0, nil)
	// Type 3 initiator: the Xeon node.
	xeon := a.CreateProcessOn(2, "chaos_xeon", func(ctx *core.Ctx, _ int, _ any) {
		w, r := ctxWr(ctx)
		if err := initiate(3, w, r, t3ab, t3ba); err != nil {
			return
		}
	}, 0, nil)

	c2e := &core.SPEProgram{Name: "c2e", Body: func(ctx *core.SPECtx) {
		w, r := speWr(ctx)
		echo(w, r, t2ab, t2ba)
	}}
	c3e := &core.SPEProgram{Name: "c3e", Body: func(ctx *core.SPECtx) {
		w, r := speWr(ctx)
		echo(w, r, t3ab, t3ba)
	}}
	c4w := &core.SPEProgram{Name: "c4w", Body: func(ctx *core.SPECtx) {
		w, r := speWr(ctx)
		if err := initiate(4, w, r, t4ab, t4ba); err != nil {
			return
		}
	}}
	c4r := &core.SPEProgram{Name: "c4r", Body: func(ctx *core.SPECtx) {
		w, r := speWr(ctx)
		echo(w, r, t4ab, t4ba)
	}}
	c5i := &core.SPEProgram{Name: "c5i", Body: func(ctx *core.SPECtx) {
		w, r := speWr(ctx)
		if err := initiate(5, w, r, t5ab, t5ba); err != nil {
			return
		}
	}}
	c5e := &core.SPEProgram{Name: "c5e", Body: func(ctx *core.SPECtx) {
		w, r := speWr(ctx)
		echo(w, r, t5ab, t5ba)
	}}

	s2 := a.CreateSPE(c2e, a.Main(), 0)
	s3 := a.CreateSPE(c3e, a.Main(), 1)
	s4w := a.CreateSPE(c4w, a.Main(), 2)
	s4r := a.CreateSPE(c4r, a.Main(), 3)
	s5i := a.CreateSPE(c5i, a.Main(), 4)
	s5e := a.CreateSPE(c5e, ppe1, 0)
	ppe1.SetArg(s5e)

	t1ab = a.CreateChannel(a.Main(), ppe1)
	t1ba = a.CreateChannel(ppe1, a.Main())
	t2ab = a.CreateChannel(a.Main(), s2)
	t2ba = a.CreateChannel(s2, a.Main())
	t3ab = a.CreateChannel(xeon, s3)
	t3ba = a.CreateChannel(s3, xeon)
	t4ab = a.CreateChannel(s4w, s4r)
	t4ba = a.CreateChannel(s4r, s4w)
	t5ab = a.CreateChannel(s5i, s5e)
	t5ba = a.CreateChannel(s5e, s5i)

	runErr := a.Run(func(ctx *core.Ctx) {
		for _, sp := range []*core.Process{s2, s3, s4w, s4r, s5i} {
			ctx.RunSPE(sp, 0, nil)
		}
		w, r := ctxWr(ctx)
		if err := initiate(1, w, r, t1ab, t1ba); err != nil {
			return
		}
		if err := initiate(2, w, r, t2ab, t2ba); err != nil {
			return
		}
	})
	res.VirtualTime = a.K.Now()
	res.Counts = inj.Counts
	res.Killed = append(res.Killed, a.KilledProcs()...)
	res.FaultLog = inj.Log()
	if runErr != nil {
		res.RunErr = runErr.Error()
	}
	for _, line := range strings.Split(a.Stats().Registry.Dump(), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "fault/") {
			res.MetricsFaultLines = append(res.MetricsFaultLines, strings.TrimSpace(line))
		}
	}
	sort.Strings(res.MetricsFaultLines)
	if cfg.Stats != nil {
		*cfg.Stats = a.Stats()
	}
	return res, nil
}

// ChaosSweep runs the same scenario across several seeds.
func ChaosSweep(base ChaosConfig, seeds []int64) ([]ChaosResult, error) {
	out := make([]ChaosResult, 0, len(seeds))
	for _, s := range seeds {
		cfg := base
		cfg.Seed = s
		r, err := Chaos(cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
