package workload

import (
	"testing"

	"cellpilot/internal/core"
	"cellpilot/internal/sim"
	"cellpilot/internal/timeline"
)

// chaosArmRun executes the reference chaos scenario with the stats and
// timeline sinks attached, returning every observable the kernel-arm
// determinism contract covers: the chaos fingerprint, the rendered
// post-run App.Stats() report, and the windowed telemetry fingerprint.
func chaosArmRun() (fp, stats, tlFP string, err error) {
	var st core.Stats
	tl := timeline.New(200 * sim.Microsecond)
	r, err := Chaos(ChaosConfig{
		Seed: 11, LossProb: 0.1, KillSPE: true, MailboxDrops: 3,
		Stats: &st, Timeline: tl,
	})
	if err != nil {
		return "", "", "", err
	}
	return r.Fingerprint(), st.String(), tl.Fingerprint(), nil
}

// TestChaosKernelArmsDeterminism is the kernel-replacement acceptance
// check at the workload layer: the reference chaos run must produce
// bit-identical fingerprints, stats reports and timeline series under
// (1) the default calendar queue, (2) the original heap queue, and
// (3) the sharded parallel driver with a concurrent neighbour LP
// competing for host workers.
func TestChaosKernelArmsDeterminism(t *testing.T) {
	fp, st, tlfp, err := chaosArmRun()
	if err != nil {
		t.Fatal(err)
	}

	// Arm: the retained heap queue must reproduce the calendar result.
	prev := sim.SetDefaultQueueKind(sim.QueueHeap)
	hfp, hst, htl, err := chaosArmRun()
	sim.SetDefaultQueueKind(prev)
	if err != nil {
		t.Fatal(err)
	}
	if hfp != fp {
		t.Fatalf("heap-queue chaos fingerprint diverges:\n--- calendar ---\n%s\n--- heap ---\n%s", fp, hfp)
	}
	if hst != st {
		t.Fatalf("heap-queue stats report diverges:\n--- calendar ---\n%s\n--- heap ---\n%s", st, hst)
	}
	if htl != tlfp {
		t.Fatalf("heap-queue timeline fingerprint diverges:\n--- calendar ---\n%s\n--- heap ---\n%s", tlfp, htl)
	}

	// Arm: the same run inside a 2-worker sharded fleet, racing a noisy
	// neighbour replica for the worker tokens.
	var sfp, sst, stl string
	s := sim.NewSharded(2)
	s.AddLP("chaos", func(lp *sim.LP) error {
		var err error
		sfp, sst, stl, err = chaosArmRun()
		return err
	})
	s.AddLP("noise", func(lp *sim.LP) error {
		_, err := PingPong(PingPongConfig{Type: 1, Bytes: 256, Method: MethodCellPilot, Reps: 20})
		return err
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if sfp != fp {
		t.Fatalf("sharded chaos fingerprint diverges:\n--- sequential ---\n%s\n--- sharded ---\n%s", fp, sfp)
	}
	if sst != st {
		t.Fatalf("sharded stats report diverges:\n--- sequential ---\n%s\n--- sharded ---\n%s", st, sst)
	}
	if stl != tlfp {
		t.Fatalf("sharded timeline fingerprint diverges:\n--- sequential ---\n%s\n--- sharded ---\n%s", tlfp, stl)
	}
}
