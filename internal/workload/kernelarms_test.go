package workload

import (
	"testing"

	"cellpilot/internal/core"
	"cellpilot/internal/flowmap"
	"cellpilot/internal/sim"
	"cellpilot/internal/timeline"
)

// chaosArmResult is every observable the kernel-arm determinism contract
// covers: the chaos fingerprint, the rendered post-run App.Stats() report,
// the windowed telemetry fingerprint, the flow-observatory fingerprint and
// its full rendered report (matrix, top-K, resources), plus the raw stats
// struct for field-level equivalence checks.
type chaosArmResult struct {
	fp, stats, tlFP    string
	flowFP, flowReport string
	st                 core.Stats
}

// chaosArmRun executes the reference chaos scenario with the stats,
// timeline and flowmap sinks attached.
func chaosArmRun() (chaosArmResult, error) {
	var st core.Stats
	tl := timeline.New(200 * sim.Microsecond)
	fl := flowmap.New(0)
	r, err := Chaos(ChaosConfig{
		Seed: 11, LossProb: 0.1, KillSPE: true, MailboxDrops: 3,
		Stats: &st, Timeline: tl, Flows: fl,
	})
	if err != nil {
		return chaosArmResult{}, err
	}
	return chaosArmResult{
		fp: r.Fingerprint(), stats: st.String(), tlFP: tl.Fingerprint(),
		flowFP: fl.Fingerprint(), flowReport: fl.Report(0).String(),
		st: st,
	}, nil
}

// compareArms fails the test on the first observable that diverges
// between two arms of the same chaos run.
func compareArms(t *testing.T, labelA, labelB string, a, b chaosArmResult) {
	t.Helper()
	check := func(what, va, vb string) {
		t.Helper()
		if va != vb {
			t.Fatalf("%s diverges:\n--- %s ---\n%s\n--- %s ---\n%s", what, labelA, va, labelB, vb)
		}
	}
	check("chaos fingerprint", a.fp, b.fp)
	check("stats report", a.stats, b.stats)
	check("timeline fingerprint", a.tlFP, b.tlFP)
	check("flow fingerprint", a.flowFP, b.flowFP)
	check("flow report", a.flowReport, b.flowReport)
}

// TestChaosKernelArmsDeterminism is the kernel-replacement acceptance
// check at the workload layer: the reference chaos run must produce
// bit-identical fingerprints, stats reports, timeline series and flow
// tables under (1) the default calendar queue, (2) the original heap
// queue, and (3) the sharded parallel driver with a concurrent neighbour
// LP competing for host workers.
func TestChaosKernelArmsDeterminism(t *testing.T) {
	ref, err := chaosArmRun()
	if err != nil {
		t.Fatal(err)
	}

	// Arm: the retained heap queue must reproduce the calendar result.
	prev := sim.SetDefaultQueueKind(sim.QueueHeap)
	heap, err := chaosArmRun()
	sim.SetDefaultQueueKind(prev)
	if err != nil {
		t.Fatal(err)
	}
	compareArms(t, "calendar", "heap", ref, heap)

	// Arm: the same run inside a 2-worker sharded fleet, racing a noisy
	// neighbour replica for the worker tokens.
	var sharded chaosArmResult
	s := sim.NewSharded(2)
	s.AddLP("chaos", func(lp *sim.LP) error {
		var err error
		sharded, err = chaosArmRun()
		return err
	})
	s.AddLP("noise", func(lp *sim.LP) error {
		_, err := PingPong(PingPongConfig{Type: 1, Bytes: 256, Method: MethodCellPilot, Reps: 20})
		return err
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	compareArms(t, "sequential", "sharded", ref, sharded)

	// Field-level equivalence on the shared-resource accounting the flow
	// observatory attributes against: per-NIC link occupancy and per-node
	// Co-Pilot relay counters must match sequential vs sharded exactly.
	if len(sharded.st.Links) != len(ref.st.Links) {
		t.Fatalf("link count diverges: sequential %d, sharded %d", len(ref.st.Links), len(sharded.st.Links))
	}
	for i, lu := range ref.st.Links {
		if sharded.st.Links[i] != lu {
			t.Errorf("LinkStats[%d] diverges: sequential %+v, sharded %+v", i, lu, sharded.st.Links[i])
		}
	}
	if len(sharded.st.CoPilots) != len(ref.st.CoPilots) {
		t.Fatalf("Co-Pilot count diverges: sequential %d, sharded %d", len(ref.st.CoPilots), len(sharded.st.CoPilots))
	}
	for i, cp := range ref.st.CoPilots {
		if got := sharded.st.CoPilots[i].RelayedBytes; got != cp.RelayedBytes {
			t.Errorf("CoPilots[%d].RelayedBytes diverges: sequential %d, sharded %d", i, cp.RelayedBytes, got)
		}
	}
}
