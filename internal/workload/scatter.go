package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"cellpilot/internal/cluster"
	"cellpilot/internal/core"
	"cellpilot/internal/sim"
)

// This file implements the paper's Section VI case study: the
// parallelization of scatter search — "a well-known meta-heuristic that
// has been successfully applied to a variety of NP-hard problems,
// primarily in the areas of combinatorial optimization" — over CellPilot.
// The concrete problem is 0/1 knapsack (a standard binary-optimization
// target for scatter search, cf. the paper's reference [22]); the
// coordinator runs as PI_MAIN on a PPE and the improvement step is
// offloaded to SPE worker processes over ordinary CellPilot channels.

// Knapsack is a 0/1 knapsack instance.
type Knapsack struct {
	Weights  []int32
	Values   []int32
	Capacity int64
}

// NewKnapsack generates a deterministic instance with n items.
func NewKnapsack(n int, seed int64) *Knapsack {
	rng := rand.New(rand.NewSource(seed))
	k := &Knapsack{
		Weights: make([]int32, n),
		Values:  make([]int32, n),
	}
	var totalW int64
	for i := 0; i < n; i++ {
		k.Weights[i] = int32(rng.Intn(95) + 5)
		// Values loosely correlated with weights, so greedy is good but
		// not optimal.
		k.Values[i] = k.Weights[i] + int32(rng.Intn(40))
		totalW += int64(k.Weights[i])
	}
	k.Capacity = totalW / 2
	return k
}

// Items reports the instance size.
func (k *Knapsack) Items() int { return len(k.Weights) }

// Eval reports a solution's total value and weight. sol holds one 0/1
// byte per item.
func (k *Knapsack) Eval(sol []byte) (value, weight int64) {
	for i, b := range sol {
		if b != 0 {
			value += int64(k.Values[i])
			weight += int64(k.Weights[i])
		}
	}
	return value, weight
}

// Feasible reports whether sol fits the capacity.
func (k *Knapsack) Feasible(sol []byte) bool {
	_, w := k.Eval(sol)
	return w <= k.Capacity
}

// Repair drops the worst value-density items until sol is feasible.
func (k *Knapsack) Repair(sol []byte) {
	_, w := k.Eval(sol)
	if w <= k.Capacity {
		return
	}
	type cand struct {
		idx     int
		density float64
	}
	var in []cand
	for i, b := range sol {
		if b != 0 {
			in = append(in, cand{i, float64(k.Values[i]) / float64(k.Weights[i])})
		}
	}
	sort.Slice(in, func(a, b int) bool { return in[a].density < in[b].density })
	for _, c := range in {
		if w <= k.Capacity {
			break
		}
		sol[c.idx] = 0
		w -= int64(k.Weights[c.idx])
	}
}

// Improve is the local-search step the SPE workers run: repeatedly try to
// add unused items (best density first) and 1-1 swaps that increase value
// while staying feasible. rounds bounds the work.
func (k *Knapsack) Improve(sol []byte, rounds int) {
	k.Repair(sol)
	n := len(sol)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		da := float64(k.Values[order[a]]) / float64(k.Weights[order[a]])
		db := float64(k.Values[order[b]]) / float64(k.Weights[order[b]])
		return da > db
	})
	for r := 0; r < rounds; r++ {
		improved := false
		_, w := k.Eval(sol)
		// Additions.
		for _, i := range order {
			if sol[i] == 0 && w+int64(k.Weights[i]) <= k.Capacity {
				sol[i] = 1
				w += int64(k.Weights[i])
				improved = true
			}
		}
		// 1-1 swaps.
		for _, i := range order {
			if sol[i] != 0 {
				continue
			}
			for j := n - 1; j >= 0; j-- {
				jj := order[j]
				if sol[jj] == 0 || jj == i {
					continue
				}
				nw := w - int64(k.Weights[jj]) + int64(k.Weights[i])
				if nw <= k.Capacity && k.Values[i] > k.Values[jj] {
					sol[jj], sol[i] = 0, 1
					w = nw
					improved = true
					break
				}
			}
		}
		if !improved {
			break
		}
	}
}

// Combine builds a child solution from two parents: common items are
// kept, disputed items decided by value density with a deterministic
// dither, then the child is repaired.
func (k *Knapsack) Combine(a, b []byte, rng *rand.Rand) []byte {
	child := make([]byte, len(a))
	for i := range a {
		switch {
		case a[i] != 0 && b[i] != 0:
			child[i] = 1
		case a[i] != 0 || b[i] != 0:
			if rng.Intn(100) < 60 {
				child[i] = 1
			}
		}
	}
	k.Repair(child)
	return child
}

// diversify produces a random feasible solution.
func (k *Knapsack) diversify(rng *rand.Rand) []byte {
	sol := make([]byte, k.Items())
	for i := range sol {
		if rng.Intn(2) == 1 {
			sol[i] = 1
		}
	}
	k.Repair(sol)
	return sol
}

// ScatterConfig configures the case study.
type ScatterConfig struct {
	// Items is the knapsack size (default 256; must leave the solution
	// well inside an SPE local store).
	Items int
	// Workers is the number of SPE improvement workers (default 8).
	Workers int
	// RefSetSize is the reference set size (default 10).
	RefSetSize int
	// Iterations is the number of scatter-search rounds (default 8).
	Iterations int
	// ImproveRounds bounds each worker's local search (default 6).
	ImproveRounds int
	// Seed drives instance generation and the heuristic's randomness.
	Seed int64
	// CellNodes sizes the cluster (default 1).
	CellNodes int
}

func (c ScatterConfig) withDefaults() ScatterConfig {
	if c.Items == 0 {
		c.Items = 256
	}
	if c.Workers == 0 {
		c.Workers = 8
	}
	if c.RefSetSize == 0 {
		c.RefSetSize = 10
	}
	if c.Iterations == 0 {
		c.Iterations = 8
	}
	if c.ImproveRounds == 0 {
		c.ImproveRounds = 6
	}
	if c.Seed == 0 {
		c.Seed = 11
	}
	if c.CellNodes == 0 {
		c.CellNodes = 1
	}
	return c
}

// ScatterResult reports a run.
type ScatterResult struct {
	Best        int64
	GreedyValue int64
	Solution    []byte
	Elapsed     sim.Time
	Evaluations int
}

// Greedy reports the density-greedy baseline value.
func (k *Knapsack) Greedy() int64 {
	sol := make([]byte, k.Items())
	for i := range sol {
		sol[i] = 1
	}
	k.Repair(sol)
	v, _ := k.Eval(sol)
	return v
}

// ScatterSearchSequential runs the same heuristic single-threaded — the
// correctness and quality reference for the CellPilot version.
func ScatterSearchSequential(cfg ScatterConfig) ScatterResult {
	cfg = cfg.withDefaults()
	k := NewKnapsack(cfg.Items, cfg.Seed)
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	evals := 0
	improveBatch := func(batch [][]byte) {
		for _, sol := range batch {
			k.Improve(sol, cfg.ImproveRounds)
			evals++
		}
	}
	res := scatterCoreBatched(cfg, k, rng, improveBatch)
	res.Evaluations = evals
	return res
}

// ScatterSearch runs the case study on a simulated Cell cluster with the
// improvement operator offloaded to SPE workers over CellPilot channels:
// the PI_MAIN coordinator ships candidate solutions out, SPE processes
// run the local search (charging SPU compute time), and results come back
// on the reverse channels.
func ScatterSearch(cfg ScatterConfig) (ScatterResult, error) {
	cfg = cfg.withDefaults()
	clu, err := cluster.New(cluster.Spec{CellNodes: cfg.CellNodes, Seed: cfg.Seed})
	if err != nil {
		return ScatterResult{}, err
	}
	maxWorkers := clu.TotalSPEs()
	if cfg.Workers > maxWorkers {
		return ScatterResult{}, fmt.Errorf("workload: %d workers but only %d SPEs", cfg.Workers, maxWorkers)
	}
	k := NewKnapsack(cfg.Items, cfg.Seed)
	app := core.NewApp(clu, core.Options{})

	toW := make([]*core.Channel, cfg.Workers)
	fromW := make([]*core.Channel, cfg.Workers)
	// SPU local-search cost model: ~3ns per item per round plus fixed
	// kernel launch overhead, charged in virtual time.
	improveCost := sim.Time(3*cfg.Items*cfg.ImproveRounds)*sim.Nanosecond + 2*sim.Microsecond

	worker := &core.SPEProgram{Name: "ss_improve", Body: func(ctx *core.SPECtx) {
		id := ctx.Arg()
		sol := make([]byte, cfg.Items)
		for {
			var op byte
			hdr := make([]byte, 1)
			ctx.Read(toW[id], "%b", hdr)
			op = hdr[0]
			if op == 0 { // shutdown
				return
			}
			ctx.Read(toW[id], "%*b", cfg.Items, sol)
			ctx.P.Advance(improveCost)
			k.Improve(sol, cfg.ImproveRounds)
			ctx.Write(fromW[id], "%*b", cfg.Items, sol)
		}
	}}
	spes := make([]*core.Process, cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		spes[i] = app.CreateSPE(worker, app.Main(), i)
		toW[i] = app.CreateChannel(app.Main(), spes[i])
		fromW[i] = app.CreateChannel(spes[i], app.Main())
	}

	var res ScatterResult
	evals := 0
	runErr := app.Run(func(ctx *core.Ctx) {
		for i := 0; i < cfg.Workers; i++ {
			ctx.RunSPE(spes[i], i, nil)
		}
		rng := rand.New(rand.NewSource(cfg.Seed + 1))
		start := ctx.P.Now()

		// The offloaded improvement operator: batch candidates across the
		// SPE farm, one in flight per worker.
		improveBatch := func(batch [][]byte) {
			for base := 0; base < len(batch); base += cfg.Workers {
				n := cfg.Workers
				if base+n > len(batch) {
					n = len(batch) - base
				}
				for i := 0; i < n; i++ {
					ctx.Write(toW[i], "%b", []byte{1})
					ctx.Write(toW[i], "%*b", cfg.Items, batch[base+i])
				}
				for i := 0; i < n; i++ {
					ctx.Read(fromW[i], "%*b", cfg.Items, batch[base+i])
					evals++
				}
			}
		}
		res = scatterCoreBatched(cfg, k, rng, improveBatch)
		res.Elapsed = ctx.P.Now() - start
		res.Evaluations = evals
		// Shut the farm down.
		for i := 0; i < cfg.Workers; i++ {
			ctx.Write(toW[i], "%b", []byte{0})
		}
	})
	if runErr != nil {
		return ScatterResult{}, runErr
	}
	return res, nil
}

// Hamming reports the number of differing positions between two
// solutions — scatter search's standard diversity metric.
func Hamming(a, b []byte) int {
	d := 0
	for i := range a {
		if a[i] != b[i] {
			d++
		}
	}
	return d
}

// selectRefSet builds the classic two-tier reference set from a candidate
// pool sorted best-first: the top half by objective value, then the
// candidates maximizing their minimum Hamming distance to the set so far
// (diversity tier). Duplicates never enter.
func selectRefSet(pool [][]byte, size int) [][]byte {
	uniq := pool[:0]
	seen := map[string]bool{}
	for _, s := range pool {
		if !seen[string(s)] {
			seen[string(s)] = true
			uniq = append(uniq, s)
		}
	}
	pool = uniq
	if len(pool) <= size {
		return pool
	}
	quality := size - size/2
	ref := append([][]byte(nil), pool[:quality]...)
	rest := pool[quality:]
	for len(ref) < size && len(rest) > 0 {
		bestIdx, bestDist := 0, -1
		for i, cand := range rest {
			minD := len(cand) + 1
			for _, r := range ref {
				if d := Hamming(cand, r); d < minD {
					minD = d
				}
			}
			if minD > bestDist {
				bestDist, bestIdx = minD, i
			}
		}
		ref = append(ref, rest[bestIdx])
		rest = append(rest[:bestIdx], rest[bestIdx+1:]...)
	}
	return ref
}

// scatterCoreBatched is the scatter-search coordinator: diversification,
// two-tier reference set maintenance (quality + diversity), pairwise
// combination, and improvement of candidate sets as whole batches (so the
// SPE farm works in parallel).
func scatterCoreBatched(cfg ScatterConfig, k *Knapsack, rng *rand.Rand,
	improveBatch func([][]byte)) ScatterResult {
	ref := make([][]byte, 0, cfg.RefSetSize*2)
	for i := 0; i < cfg.RefSetSize*2; i++ {
		ref = append(ref, k.diversify(rng))
	}
	improveBatch(ref)
	byValue := func(ss [][]byte) {
		sort.SliceStable(ss, func(a, b int) bool {
			va, _ := k.Eval(ss[a])
			vb, _ := k.Eval(ss[b])
			return va > vb
		})
	}
	byValue(ref)
	ref = selectRefSet(ref, cfg.RefSetSize)
	for it := 0; it < cfg.Iterations; it++ {
		var children [][]byte
		for i := 0; i < len(ref); i++ {
			for j := i + 1; j < len(ref); j++ {
				children = append(children, k.Combine(ref[i], ref[j], rng))
			}
		}
		improveBatch(children)
		ref = append(ref, children...)
		byValue(ref)
		ref = selectRefSet(ref, cfg.RefSetSize)
	}
	byValue(ref)
	best := ref[0]
	v, _ := k.Eval(best)
	return ScatterResult{Best: v, GreedyValue: k.Greedy(), Solution: append([]byte(nil), best...)}
}
