package workload

import (
	"fmt"

	"cellpilot/internal/cluster"
	"cellpilot/internal/core"
	"cellpilot/internal/sim"
)

// CoPilotContention is the A4 ablation workload: `pairs` simultaneous
// type-4 pingpongs on one dual-Cell blade, half the pairs in each Cell.
// With the paper's single Co-Pilot every transfer serializes through one
// service loop; with Options.CoPilotPerCell each Cell's spare PPE thread
// hosts its own.
func CoPilotContention(perCell bool, pairs, rounds int) (sim.Time, error) {
	if pairs < 1 || pairs > 8 {
		return 0, fmt.Errorf("workload: contention pairs must be 1..8, got %d", pairs)
	}
	c, err := cluster.New(cluster.Spec{CellNodes: 1, Seed: 13})
	if err != nil {
		return 0, err
	}
	a := core.NewApp(c, core.Options{CoPilotPerCell: perCell})
	ab := make([]*core.Channel, pairs)
	ba := make([]*core.Channel, pairs)
	mk := func(i int, initiator bool) *core.SPEProgram {
		name := "echo"
		if initiator {
			name = "init"
		}
		return &core.SPEProgram{Name: name, Body: func(ctx *core.SPECtx) {
			buf := make([]byte, 64)
			for r := 0; r < rounds; r++ {
				if initiator {
					ctx.Write(ab[i], "%64b", buf)
					ctx.Read(ba[i], "%64b", buf)
				} else {
					ctx.Read(ab[i], "%64b", buf)
					ctx.Write(ba[i], "%64b", buf)
				}
			}
		}}
	}
	var spes []*core.Process
	for i := 0; i < pairs; i++ {
		base := (i % 2) * 8 // alternate pairs across the blade's two Cells
		slot := base + (i/2)*2
		w := a.CreateSPE(mk(i, true), a.Main(), slot)
		r := a.CreateSPE(mk(i, false), a.Main(), slot+1)
		ab[i] = a.CreateChannel(w, r)
		ba[i] = a.CreateChannel(r, w)
		spes = append(spes, w, r)
	}
	err = a.Run(func(ctx *core.Ctx) {
		for i, s := range spes {
			ctx.RunSPE(s, i, nil)
		}
	})
	if err != nil {
		return 0, err
	}
	return c.K.Now(), nil
}
