package workload

import (
	"runtime"
	"testing"
	"time"

	"cellpilot/internal/hostprof"
)

// TestKiloscaleSeqParEquivalence is the workload-level parallel-determinism
// gate: the same fleet must fingerprint identically under 1 worker (the
// sequential reference) and several.
func TestKiloscaleSeqParEquivalence(t *testing.T) {
	for _, wl := range []string{"pingpong", "chaos"} {
		base := KiloscaleConfig{Nodes: 24, Workload: wl, Seed: 11, Reps: 3}
		seq := base
		seq.Workers = 1
		par := base
		par.Workers = 4
		rs, err := Kiloscale(seq)
		if err != nil {
			t.Fatalf("%s seq: %v", wl, err)
		}
		rp, err := Kiloscale(par)
		if err != nil {
			t.Fatalf("%s par: %v", wl, err)
		}
		if rs.Fingerprint != rp.Fingerprint {
			t.Fatalf("%s: fingerprints diverge: seq=%s par=%s", wl, rs.Fingerprint, rp.Fingerprint)
		}
		if rs.VirtualTime != rp.VirtualTime || rs.Events != rp.Events {
			t.Fatalf("%s: aggregates diverge: seq=%+v par=%+v", wl, rs, rp)
		}
		if rs.Replicas != 8 || rs.SimNodes != 24 {
			t.Fatalf("%s: tiling wrong: %+v", wl, rs)
		}
		if rs.Events == 0 {
			t.Fatalf("%s: no events counted", wl)
		}
	}
}

// TestKiloscaleAbsorbsHostProfile: the fleet-wide profiler reports the
// replica count and the summed event total.
func TestKiloscaleAbsorbsHostProfile(t *testing.T) {
	h := hostprof.New(0)
	res, err := Kiloscale(KiloscaleConfig{Nodes: 9, Workers: 2, Seed: 3, Reps: 2, Host: h})
	if err != nil {
		t.Fatal(err)
	}
	s := h.Snapshot()
	if s.Shards != res.Replicas {
		t.Fatalf("absorbed shards = %d, want %d", s.Shards, res.Replicas)
	}
	if s.Events != res.Events {
		t.Fatalf("absorbed events = %d, want %d", s.Events, res.Events)
	}
}

// TestKiloscaleRejectsUnknownWorkload: misconfiguration fails loudly.
func TestKiloscaleRejectsUnknownWorkload(t *testing.T) {
	if _, err := Kiloscale(KiloscaleConfig{Nodes: 3, Workload: "nope", Workers: 1}); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

// TestKiloscaleParallelSpeedup asserts the point of the sharded runtime: on
// a multi-core host the parallel arm must beat the sequential arm by >=2x.
// Hosts with fewer than 4 cores cannot honestly make that bet, so the
// assertion (not the equivalence contract, tested above) is skipped there.
func TestKiloscaleParallelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("speedup measurement is wall-clock; skipped in -short")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("host has %d CPUs; speedup assertion needs >= 4", runtime.NumCPU())
	}
	cfg := KiloscaleConfig{Nodes: 120, Seed: 5, Reps: 20}
	seq := cfg
	seq.Workers = 1
	par := cfg
	par.Workers = runtime.NumCPU()
	t0 := time.Now()
	rs, err := Kiloscale(seq)
	if err != nil {
		t.Fatal(err)
	}
	seqWall := time.Since(t0)
	t0 = time.Now()
	rp, err := Kiloscale(par)
	if err != nil {
		t.Fatal(err)
	}
	parWall := time.Since(t0)
	if rs.Fingerprint != rp.Fingerprint {
		t.Fatalf("fingerprints diverge: seq=%s par=%s", rs.Fingerprint, rp.Fingerprint)
	}
	if speedup := float64(seqWall) / float64(parWall); speedup < 2 {
		t.Fatalf("parallel speedup %.2fx < 2x (seq %v, par %v, %d workers)",
			speedup, seqWall, parWall, par.Workers)
	}
}
