package workload

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKnapsackEvalRepair(t *testing.T) {
	k := NewKnapsack(64, 3)
	sol := make([]byte, 64)
	for i := range sol {
		sol[i] = 1
	}
	if k.Feasible(sol) {
		t.Fatal("all-items solution should exceed half-total capacity")
	}
	k.Repair(sol)
	if !k.Feasible(sol) {
		t.Fatal("repair left solution infeasible")
	}
	v, w := k.Eval(sol)
	if v <= 0 || w <= 0 || w > k.Capacity {
		t.Fatalf("eval: v=%d w=%d cap=%d", v, w, k.Capacity)
	}
}

func TestImproveNeverWorsensFeasibility(t *testing.T) {
	prop := func(seed int64, pattern []byte) bool {
		k := NewKnapsack(48, seed%1000+1)
		sol := make([]byte, 48)
		for i := range sol {
			if i < len(pattern) && pattern[i]%2 == 1 {
				sol[i] = 1
			}
		}
		before, _ := k.Eval(sol)
		wasFeasible := k.Feasible(sol)
		k.Improve(sol, 4)
		if !k.Feasible(sol) {
			return false
		}
		after, _ := k.Eval(sol)
		// Improvement must not reduce the value of a feasible solution.
		return !wasFeasible || after >= before
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCombineFeasible(t *testing.T) {
	k := NewKnapsack(64, 5)
	seq := ScatterSearchSequential(ScatterConfig{Items: 64, Seed: 5, Iterations: 2})
	a := seq.Solution
	b := make([]byte, 64)
	k.Repair(b)
	rng := newTestRand()
	child := k.Combine(a, b, rng)
	if !k.Feasible(child) {
		t.Fatal("combine produced infeasible child")
	}
	if len(child) != 64 {
		t.Fatal("child size wrong")
	}
}

func TestScatterSequentialBeatsGreedyOrMatches(t *testing.T) {
	res := ScatterSearchSequential(ScatterConfig{Items: 128, Seed: 7})
	if res.Best < res.GreedyValue {
		t.Fatalf("scatter search (%d) worse than greedy (%d)", res.Best, res.GreedyValue)
	}
	if res.Evaluations == 0 {
		t.Fatal("no improvement evaluations recorded")
	}
}

func TestScatterSearchOnCellPilot(t *testing.T) {
	cfg := ScatterConfig{Items: 128, Seed: 7, Workers: 8, Iterations: 4}
	par, err := ScatterSearch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	k := NewKnapsack(cfg.Items, cfg.Seed)
	if !k.Feasible(par.Solution) {
		t.Fatal("parallel result infeasible")
	}
	if par.Best < par.GreedyValue {
		t.Fatalf("parallel scatter search (%d) worse than greedy (%d)", par.Best, par.GreedyValue)
	}
	// Identical algorithm and seed: parallel and sequential agree exactly.
	seq := ScatterSearchSequential(ScatterConfig{Items: 128, Seed: 7, Iterations: 4})
	if par.Best != seq.Best || !bytes.Equal(par.Solution, seq.Solution) {
		t.Fatalf("parallel best %d != sequential best %d", par.Best, seq.Best)
	}
	if par.Elapsed <= 0 {
		t.Fatal("no virtual time elapsed")
	}
	if par.Evaluations != seq.Evaluations {
		t.Fatalf("evaluation counts differ: %d vs %d", par.Evaluations, seq.Evaluations)
	}
}

func TestScatterWorkerLimit(t *testing.T) {
	if _, err := ScatterSearch(ScatterConfig{Workers: 1000}); err == nil {
		t.Fatal("absurd worker count accepted")
	}
}

func newTestRand() *rand.Rand { return rand.New(rand.NewSource(99)) }

func TestHammingAndRefSetSelection(t *testing.T) {
	if Hamming([]byte{1, 0, 1}, []byte{1, 1, 0}) != 2 {
		t.Fatal("Hamming wrong")
	}
	// Pool sorted best-first; duplicates must be dropped and the
	// diversity tier must prefer the farthest candidate.
	pool := [][]byte{
		{1, 1, 1, 1}, // best
		{1, 1, 1, 0}, // second
		{1, 1, 1, 0}, // duplicate
		{1, 1, 0, 0}, // near the firsts
		{0, 0, 0, 0}, // maximally diverse
	}
	ref := selectRefSet(pool, 3)
	if len(ref) != 3 {
		t.Fatalf("refset size %d", len(ref))
	}
	if string(ref[0]) != string([]byte{1, 1, 1, 1}) || string(ref[1]) != string([]byte{1, 1, 1, 0}) {
		t.Fatalf("quality tier wrong: %v", ref)
	}
	if string(ref[2]) != string([]byte{0, 0, 0, 0}) {
		t.Fatalf("diversity tier picked %v", ref[2])
	}
	// Small pools pass through deduplicated.
	small := selectRefSet([][]byte{{1}, {1}, {0}}, 5)
	if len(small) != 2 {
		t.Fatalf("dedup wrong: %v", small)
	}
}
