package workload

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"testing"

	"cellpilot/internal/cellbe"
	"cellpilot/internal/core"
	"cellpilot/internal/critpath"
	"cellpilot/internal/trace"
)

// tracedPingPong runs one CellPilot ping-pong cell with the recorder
// attached and returns the post-run report carrying Stats.CritPath.
func tracedPingPong(t *testing.T, cfg PingPongConfig) core.Stats {
	t.Helper()
	var st core.Stats
	cfg.Method = MethodCellPilot
	cfg.Trace = trace.NewRecorder(0)
	cfg.Stats = &st
	if _, err := PingPong(cfg); err != nil {
		t.Fatal(err)
	}
	if st.CritPath == nil {
		t.Fatal("Stats.CritPath nil with a recorder attached")
	}
	return st
}

// E-CP1 (acceptance): for every ping-pong transfer the per-stage blame
// attributions partition the end-to-end virtual latency exactly — within
// 1 ns per transfer, and in fact to the nanosecond.
func TestCritPathPartitionMatchesLatency(t *testing.T) {
	for typ := 1; typ <= 5; typ++ {
		st := tracedPingPong(t, PingPongConfig{Type: typ, Bytes: 1600, Reps: 20})
		if len(st.CritPath.Transfers) == 0 {
			t.Fatalf("type%d: no transfers analyzed", typ)
		}
		for _, tr := range st.CritPath.Transfers {
			var sum, queue int64
			for _, sb := range tr.Stages {
				sum += int64(sb.Total())
				queue += int64(sb.Queue)
			}
			if d := int64(tr.Dur()) - sum; d > 1 || d < -1 {
				t.Errorf("type%d transfer #%d: stages sum to %dns, end-to-end %v (off by %dns)",
					typ, tr.ID, sum, tr.Dur(), d)
			}
			if queue < 0 || queue > sum {
				t.Errorf("type%d transfer #%d: queueing %dns outside [0, %dns]", typ, tr.ID, queue, sum)
			}
		}
	}
}

// E-CP2: the full rendered report — human table, folded stacks and the
// machine-readable blame file — is byte-identical across repeated runs of
// the same seed, for both the plain protocol and the chunked engine (the
// size-sweep configuration).
func TestCritPathReportDeterministic(t *testing.T) {
	fingerprint := func(cfg PingPongConfig) string {
		st := tracedPingPong(t, cfg)
		var b bytes.Buffer
		b.WriteString(st.CritPath.Table())
		if err := st.CritPath.FoldedStacks(&b); err != nil {
			t.Fatal(err)
		}
		if err := st.CritPath.ToFile("det", cfg.Bytes, cfg.Reps).Write(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	for _, cfg := range []PingPongConfig{
		{Type: 3, Bytes: 1600, Reps: 50},
		{Type: 1, Bytes: 64 << 10, Reps: 10,
			Transfer: core.TransferOptions{ChunkSize: 8 << 10}},
	} {
		a, b := fingerprint(cfg), fingerprint(cfg)
		if a == "" {
			t.Fatalf("type%d: empty report", cfg.Type)
		}
		if a != b {
			t.Fatalf("type%d: report fingerprint diverged across runs:\n%s\nvs\n%s", cfg.Type, a, b)
		}
	}
}

// E-CP3: golden blame table for the five Table I channel types at the
// paper payload — which stage dominates each type's critical path and in
// what order the rest follow. Any drift here means a protocol or
// calibration change and must be deliberate.
func TestGoldenBlameTable(t *testing.T) {
	if testing.Short() {
		t.Skip("golden blame grid in short mode")
	}
	golden := map[int][]string{ // type -> stages by critical-path share, descending
		1: {"mpi-wait", "mpi-send", "pack"},
		2: {"mbox-wait", "mpi-wait", "relay", "copilot-wait", "pack", "copilot-service", "mpi-send"},
		3: {"mbox-wait", "mpi-wait", "relay", "mpi-send", "pack", "copilot-service", "copilot-wait"},
		4: {"mbox-wait", "copy", "copilot-service", "copilot-wait", "pack"},
		5: {"mbox-wait", "relay", "copilot-service", "pack", "copilot-wait"},
	}
	dominantShare := map[int]float64{ // type -> share of the top stage
		1: 0.7095, 2: 0.3823, 3: 0.3635, 4: 0.5315, 5: 0.6992,
	}
	for typ := 1; typ <= 5; typ++ {
		st := tracedPingPong(t, PingPongConfig{Type: typ, Bytes: 1600, Reps: 100})
		name := fmt.Sprintf("type%d", typ)
		tj, ok := st.CritPath.ToFile("pingpong", 1600, 100).TypeByName(name)
		if !ok {
			t.Fatalf("%s: no blame entry", name)
		}
		// TypeJSON emits stages in protocol (stage-kind) order; the golden
		// table ranks them by critical-path share.
		ranked := append([]critpath.StageJSON(nil), tj.Stages...)
		sort.SliceStable(ranked, func(i, j int) bool { return ranked[i].Share > ranked[j].Share })
		var got []string
		for _, s := range ranked {
			got = append(got, s.Stage)
		}
		want := golden[typ]
		if strings.Join(got, ",") != strings.Join(want, ",") {
			t.Errorf("%s stage order = %v, golden %v", name, got, want)
		}
		if top := ranked[0].Share; top < dominantShare[typ]-0.02 || top > dominantShare[typ]+0.02 {
			t.Errorf("%s dominant stage share = %.4f, golden %.4f", name, top, dominantShare[typ])
		}
	}
}

// E-CP4 (acceptance): injecting a slowdown into one stage and diffing the
// blame decomposition against the unslowed baseline names the slowed
// stage — the same diff the bench guard prints when its 10%% gate trips.
func TestBlameDiffNamesSlowedStage(t *testing.T) {
	cfg := PingPongConfig{Type: 2, Bytes: 1600, Reps: 50}
	base := tracedPingPong(t, cfg)

	// Cripple pack/unpack bandwidth 100x — the pack stage, and only the
	// pack stage, gets slower.
	slow := cellbe.DefaultParams()
	slow.PackBytesPerSec /= 100
	slowCfg := cfg
	slowCfg.Params = slow
	now := tracedPingPong(t, slowCfg)

	bt, ok := base.CritPath.ToFile("pingpong", 1600, 50).TypeByName("type2")
	if !ok {
		t.Fatal("baseline has no type2 entry")
	}
	nt, ok := now.CritPath.ToFile("pingpong", 1600, 50).TypeByName("type2")
	if !ok {
		t.Fatal("slowed run has no type2 entry")
	}
	deltas := critpath.DiffType(bt, nt)
	if len(deltas) == 0 {
		t.Fatal("diff is empty despite a 100x pack slowdown")
	}
	if deltas[0].Stage != "pack" {
		t.Fatalf("top blame delta is %q (%+.1fus), want pack; all: %+v",
			deltas[0].Stage, deltas[0].DeltaUs, deltas)
	}
	out := critpath.FormatDiff("type2", deltas)
	if !strings.Contains(out, "blame: "+deltas[0].Stage) {
		t.Fatalf("formatted diff does not name the slowed stage:\n%s", out)
	}
}
