// Package workload implements the paper's experiment drivers: the IMB-style
// PingPong benchmark over every channel type and method (Table II,
// Figures 5 and 6), and the scatter-search case study of Section VI.
package workload

import (
	"fmt"

	"cellpilot/internal/cellbe"
	"cellpilot/internal/cluster"
	"cellpilot/internal/core"
	"cellpilot/internal/flowmap"
	"cellpilot/internal/fmtmsg"
	"cellpilot/internal/hostprof"
	"cellpilot/internal/mpi"
	"cellpilot/internal/profile"
	"cellpilot/internal/sdk"
	"cellpilot/internal/sim"
	"cellpilot/internal/timeline"
	"cellpilot/internal/trace"
)

// Method selects the transfer implementation, matching the paper's three
// test kinds.
type Method int

// Methods of paper Section V.
const (
	// MethodCellPilot routes through the full library (Co-Pilot included).
	MethodCellPilot Method = iota
	// MethodDMA is the hand-coded SPE/PPE baseline using explicit DMA.
	MethodDMA
	// MethodCopy is the hand-coded baseline using memory-mapped copying
	// (CellPilot's mechanism without the Co-Pilot's generality).
	MethodCopy
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case MethodCellPilot:
		return "CellPilot"
	case MethodDMA:
		return "DMA"
	case MethodCopy:
		return "Copy"
	default:
		return fmt.Sprintf("method(%d)", int(m))
	}
}

// PingPongConfig describes one Table II cell.
type PingPongConfig struct {
	// Type is the channel type 1..5 (paper Table I).
	Type int
	// Bytes is the payload size; the paper uses 1 (single "%b") and 1600
	// (100 long doubles, "%100Lf").
	Bytes int
	// Method selects CellPilot or a hand-coded baseline.
	Method Method
	// Reps is the number of round trips (paper: 1000).
	Reps int
	// Params overrides the timing calibration (nil = defaults).
	Params *cellbe.Params
	// DirectLocal enables the A1 ablation (type 2 fast path).
	DirectLocal bool
	// PollInterval overrides the Co-Pilot poll interval when > 0 (A2).
	PollInterval sim.Time
	// EagerThreshold overrides MPI's eager/rendezvous split when > 0 (A3).
	EagerThreshold int
	// Transfer tunes the chunked transfer engine (zero value = disabled,
	// the paper-faithful protocol). MethodCellPilot only.
	Transfer core.TransferOptions
	// RoundTrips, when non-nil, receives every timed round's round-trip
	// time in order (MethodCellPilot only) — the raw samples behind the
	// size-sweep's latency quantiles.
	RoundTrips *[]sim.Time
	// Trace, when non-nil, records the CellPilot run's events and transfer
	// spans (MethodCellPilot only; observation is free in virtual time).
	Trace *trace.Recorder
	// Metrics, when non-nil, aggregates the CellPilot run's histograms.
	Metrics *core.Meter
	// Profile, when non-nil, attributes every process's virtual time into
	// exclusive buckets (MethodCellPilot only).
	Profile *profile.Profiler
	// Host, when non-nil, measures the run's host-side (wall-clock) cost
	// (MethodCellPilot only). It never perturbs the virtual timeline.
	Host *hostprof.Profiler
	// Timeline, when non-nil, records windowed time-series of the run's
	// gauges and counters (MethodCellPilot only; observation is free in
	// virtual time).
	Timeline *timeline.Recorder
	// Flows, when non-nil, accumulates the run's flow observatory
	// (MethodCellPilot only; same zero-virtual-cost contract).
	Flows *flowmap.Map
	// Stats, when non-nil, receives the application's post-run report
	// (MethodCellPilot only). With Trace also attached it includes the
	// critical-path blame decomposition (Stats.CritPath).
	Stats *core.Stats
	// Spec overrides the simulated cluster (nil = the paper's two-Cell +
	// one-Xeon corner). The five-type grid pins its endpoints to nodes 0
	// and 1, so at least two Cell nodes are required; extra nodes idle.
	Spec *cluster.Spec
}

// Result is a measured Table II cell.
type Result struct {
	Config PingPongConfig
	// OneWay is the average one-way latency (paper reports microseconds).
	OneWay sim.Time
	// ThroughputMBps is Bytes / OneWay, the Figure 6 series.
	ThroughputMBps float64
}

func (c PingPongConfig) withDefaults() PingPongConfig {
	if c.Reps == 0 {
		c.Reps = 1000
	}
	if c.Params == nil {
		c.Params = cellbe.DefaultParams()
	}
	if c.PollInterval > 0 {
		c.Params.CoPilotPoll = c.PollInterval
	}
	if c.EagerThreshold > 0 {
		c.Params.EagerThreshold = c.EagerThreshold
	}
	return c
}

// payloadFormat reproduces the paper's payload encodings: "%b" for the
// single byte, "%100Lf" for the 1600-byte long-double array, and a byte
// array for any other size.
func payloadFormat(bytes int) (format string, mk func(round int) []any, rd func() ([]any, func(round int) error)) {
	switch {
	case bytes == 1:
		format = "%b"
		mk = func(round int) []any { return []any{[]byte{byte(round)}} }
		rd = func() ([]any, func(int) error) {
			v := make([]byte, 1)
			return []any{v}, func(round int) error {
				if v[0] != byte(round) {
					return fmt.Errorf("payload corrupted: got %d want %d", v[0], byte(round))
				}
				return nil
			}
		}
	case bytes%16 == 0:
		n := bytes / 16
		format = fmt.Sprintf("%%%dLf", n)
		mk = func(round int) []any {
			arr := make([]fmtmsg.LongDoubleVal, n)
			for i := range arr {
				arr[i] = fmtmsg.LongDoubleVal{Hi: float64(round), Lo: float64(i)}
			}
			return []any{arr}
		}
		rd = func() ([]any, func(int) error) {
			arr := make([]fmtmsg.LongDoubleVal, n)
			return []any{arr}, func(round int) error {
				for i := range arr {
					if arr[i].Hi != float64(round) || arr[i].Lo != float64(i) {
						return fmt.Errorf("payload corrupted at %d", i)
					}
				}
				return nil
			}
		}
	default:
		format = fmt.Sprintf("%%%db", bytes)
		mk = func(round int) []any {
			arr := make([]byte, bytes)
			for i := range arr {
				arr[i] = byte(round + i)
			}
			return []any{arr}
		}
		rd = func() ([]any, func(int) error) {
			arr := make([]byte, bytes)
			return []any{arr}, func(round int) error {
				for i := range arr {
					if arr[i] != byte(round+i) {
						return fmt.Errorf("payload corrupted at %d", i)
					}
				}
				return nil
			}
		}
	}
	return format, mk, rd
}

// PingPong measures one Table II cell on a fresh simulated cluster.
func PingPong(cfg PingPongConfig) (Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Type < 1 || cfg.Type > 5 {
		return Result{}, fmt.Errorf("workload: channel type %d out of range", cfg.Type)
	}
	var (
		total sim.Time
		err   error
	)
	if cfg.Method == MethodCellPilot {
		total, err = pingPongCellPilot(cfg)
	} else {
		total, err = pingPongHandCoded(cfg)
	}
	if err != nil {
		return Result{}, err
	}
	oneWay := total / sim.Time(2*cfg.Reps)
	res := Result{Config: cfg, OneWay: oneWay}
	if oneWay > 0 {
		res.ThroughputMBps = float64(cfg.Bytes) / (float64(oneWay) / float64(sim.Second)) / 1e6
	}
	return res, nil
}

// newPingPongCluster builds the two-Cell + one-Xeon corner of the paper's
// testbed that the five channel types need, or the caller's topology.
func newPingPongCluster(cfg PingPongConfig) (*cluster.Cluster, error) {
	spec := cluster.Spec{CellNodes: 2, XeonNodes: 1, Params: cfg.Params, Seed: 7}
	if cfg.Spec != nil {
		spec = *cfg.Spec
		if spec.Params == nil {
			spec.Params = cfg.Params
		}
		if spec.Seed == 0 {
			spec.Seed = 7
		}
	}
	if spec.CellNodes < 2 {
		return nil, fmt.Errorf("workload: pingpong needs at least 2 Cell nodes, got %d", spec.CellNodes)
	}
	return cluster.New(spec)
}

// pingPongCellPilot runs the full-library benchmark. Endpoint A initiates;
// B echoes. Per the paper, regular endpoints are PPEs (slower than Xeons).
func pingPongCellPilot(cfg PingPongConfig) (sim.Time, error) {
	c, err := newPingPongCluster(cfg)
	if err != nil {
		return 0, err
	}
	a := core.NewApp(c, core.Options{CoPilotDirectLocal: cfg.DirectLocal, Transfer: cfg.Transfer})
	a.Trace = cfg.Trace
	a.Metrics = cfg.Metrics
	a.Profile = cfg.Profile
	a.HostProf = cfg.Host
	a.Timeline = cfg.Timeline
	a.Flows = cfg.Flows
	format, mk, rd := payloadFormat(cfg.Bytes)

	var ab, ba *core.Channel
	var total sim.Time
	rounds := cfg.Reps + 1 // one warmup round before the timed window

	initiator := func(write func(string, ...any), read func(string, ...any), now func() sim.Time) error {
		var start sim.Time
		for r := 0; r < rounds; r++ {
			if r == 1 {
				start = now()
			}
			rstart := now()
			write(format, mk(r)...)
			args, verify := rd()
			read(format, args...)
			if err := verify(r); err != nil {
				return err
			}
			if cfg.RoundTrips != nil && r >= 1 {
				*cfg.RoundTrips = append(*cfg.RoundTrips, now()-rstart)
			}
		}
		total = now() - start
		return nil
	}
	echo := func(write func(string, ...any), read func(string, ...any)) {
		for r := 0; r < rounds; r++ {
			args, _ := rd()
			read(format, args...)
			write(format, args...)
		}
	}

	speEcho := &core.SPEProgram{Name: "pp_echo", Body: func(ctx *core.SPECtx) {
		echo(func(f string, as ...any) { ctx.Write(ba, f, as...) },
			func(f string, as ...any) { ctx.Read(ab, f, as...) })
	}}
	speInit := &core.SPEProgram{Name: "pp_init", Body: func(ctx *core.SPECtx) {
		if err := initiator(
			func(f string, as ...any) { ctx.Write(ab, f, as...) },
			func(f string, as ...any) { ctx.Read(ba, f, as...) },
			ctx.P.Now); err != nil {
			ctx.P.Fatalf("%v", err)
		}
	}}

	var runErr error
	switch cfg.Type {
	case 1: // PPE (cell0) <-> PPE (cell1)
		b := a.CreateProcessOn(1, "pp_b", func(ctx *core.Ctx, _ int, _ any) {
			echo(func(f string, as ...any) { ctx.Write(ba, f, as...) },
				func(f string, as ...any) { ctx.Read(ab, f, as...) })
		}, 0, nil)
		ab = a.CreateChannel(a.Main(), b)
		ba = a.CreateChannel(b, a.Main())
		runErr = a.Run(func(ctx *core.Ctx) {
			_ = initiator(
				func(f string, as ...any) { ctx.Write(ab, f, as...) },
				func(f string, as ...any) { ctx.Read(ba, f, as...) },
				ctx.P.Now)
		})
	case 2: // PPE (cell0) <-> local SPE
		spe := a.CreateSPE(speEcho, a.Main(), 0)
		ab = a.CreateChannel(a.Main(), spe)
		ba = a.CreateChannel(spe, a.Main())
		runErr = a.Run(func(ctx *core.Ctx) {
			ctx.RunSPE(spe, 0, nil)
			_ = initiator(
				func(f string, as ...any) { ctx.Write(ab, f, as...) },
				func(f string, as ...any) { ctx.Read(ba, f, as...) },
				ctx.P.Now)
		})
	case 3: // PPE (cell1) <-> remote SPE (cell0)
		spe := a.CreateSPE(speEcho, a.Main(), 0)
		b := a.CreateProcessOn(1, "pp_a", func(ctx *core.Ctx, _ int, _ any) {
			_ = initiator(
				func(f string, as ...any) { ctx.Write(ab, f, as...) },
				func(f string, as ...any) { ctx.Read(ba, f, as...) },
				ctx.P.Now)
		}, 0, nil)
		ab = a.CreateChannel(b, spe)
		ba = a.CreateChannel(spe, b)
		runErr = a.Run(func(ctx *core.Ctx) {
			ctx.RunSPE(spe, 0, nil)
		})
	case 4: // SPE <-> SPE, same Cell node
		s1 := a.CreateSPE(speInit, a.Main(), 0)
		s2 := a.CreateSPE(speEcho, a.Main(), 1)
		ab = a.CreateChannel(s1, s2)
		ba = a.CreateChannel(s2, s1)
		runErr = a.Run(func(ctx *core.Ctx) {
			ctx.RunSPE(s1, 0, nil)
			ctx.RunSPE(s2, 0, nil)
		})
	case 5: // SPE (cell0) <-> SPE (cell1)
		b := a.CreateProcessOn(1, "pp_parent", func(ctx *core.Ctx, _ int, arg any) {
			ctx.RunSPE(arg.(*core.Process), 0, nil)
		}, 0, nil)
		s1 := a.CreateSPE(speInit, a.Main(), 0)
		s2 := a.CreateSPE(speEcho, b, 0)
		b.SetArg(s2)
		ab = a.CreateChannel(s1, s2)
		ba = a.CreateChannel(s2, s1)
		runErr = a.Run(func(ctx *core.Ctx) {
			ctx.RunSPE(s1, 0, nil)
		})
	}
	if runErr != nil {
		return 0, runErr
	}
	if cfg.Stats != nil {
		*cfg.Stats = a.Stats()
	}
	return total, nil
}

// pingPongHandCoded runs the DMA and memory-mapped-copy baselines: the
// code a programmer would write against MPI and libspe2 directly, with no
// Co-Pilot and no format engine.
func pingPongHandCoded(cfg PingPongConfig) (sim.Time, error) {
	c, err := newPingPongCluster(cfg)
	if err != nil {
		return 0, err
	}
	switch cfg.Type {
	case 1:
		return handType1(c, cfg)
	case 2:
		return handType2(c, cfg)
	case 3:
		return handType3(c, cfg)
	case 4:
		return handType4(c, cfg)
	case 5:
		return handType5(c, cfg)
	}
	return 0, fmt.Errorf("workload: bad type %d", cfg.Type)
}

// handType1: plain MPI pingpong between two PPEs; DMA and Copy coincide.
func handType1(c *cluster.Cluster, cfg PingPongConfig) (sim.Time, error) {
	w, err := mpi.NewWorld(c, []mpi.Placement{{Node: 0, Label: "a"}, {Node: 1, Label: "b"}})
	if err != nil {
		return 0, err
	}
	var total sim.Time
	rounds := cfg.Reps + 1
	buf := make([]byte, cfg.Bytes)
	c.K.Spawn("a", func(p *sim.Proc) {
		var start sim.Time
		for r := 0; r < rounds; r++ {
			if r == 1 {
				start = p.Now()
			}
			w.Rank(0).Send(p, 1, 0, buf)
			w.Rank(0).Recv(p, 1, 0)
		}
		total = p.Now() - start
	})
	c.K.Spawn("b", func(p *sim.Proc) {
		for r := 0; r < rounds; r++ {
			data, _ := w.Rank(1).Recv(p, 0, 0)
			w.Rank(1).Send(p, 0, 0, data)
		}
	})
	if err := c.K.Run(); err != nil {
		return 0, err
	}
	return total, nil
}

// handType2: PPE <-> local SPE, hand-coded both ways.
func handType2(c *cluster.Cluster, cfg PingPongConfig) (sim.Time, error) {
	node := c.Nodes[0]
	spe, _ := node.SPE(0)
	ctx, err := sdk.ContextCreate(c.K, spe)
	if err != nil {
		return 0, err
	}
	mainBuf, err := node.Mem.Alloc(cellbe.Align(cfg.Bytes, 128), 128)
	if err != nil {
		return 0, err
	}
	rounds := cfg.Reps + 1
	dmaSize := cellbe.Align(cfg.Bytes, 16)
	par := c.Params

	prog := &sdk.Program{Name: "hand_echo", Main: func(sc *sdk.Context, _ int, _ any) {
		p := sc.Proc
		lsAddr, err := sc.SPE.LS.Alloc("buf", dmaSize, 128)
		if err != nil {
			p.Fatalf("%v", err)
		}
		for r := 0; r < rounds; r++ {
			sc.ReadInMbox(p) // "data ready"
			if cfg.Method == MethodDMA {
				if err := sc.MFCGet(p, lsAddr, mainBuf, dmaSize, 1); err != nil {
					p.Fatalf("%v", err)
				}
				sc.TagWait(p, 1<<1)
				if err := sc.MFCPut(p, lsAddr, mainBuf, dmaSize, 2); err != nil {
					p.Fatalf("%v", err)
				}
				sc.TagWait(p, 1<<2)
			}
			// Copy method: the PPE moves the data through the mapped LS;
			// the SPE only synchronizes.
			sc.WriteOutMbox(p, uint32(lsAddr))
		}
	}}
	if err := ctx.Load(prog, 0); err != nil {
		return 0, err
	}
	if err := ctx.Run(0, nil); err != nil {
		return 0, err
	}
	var total sim.Time
	c.K.Spawn("ppe", func(p *sim.Proc) {
		var start sim.Time
		for r := 0; r < rounds; r++ {
			if r == 1 {
				start = p.Now()
			}
			if cfg.Method == MethodCopy {
				// PPE copies into the mapped LS...
				p.Advance(par.MemcpyTime(cfg.Bytes))
			}
			ctx.WriteInMbox(p, 1)
			lsAddr := ctx.ReadOutMbox(p)
			if cfg.Method == MethodCopy {
				// ...and back out of it.
				_ = lsAddr
				p.Advance(par.MemcpyTime(cfg.Bytes))
			}
		}
		total = p.Now() - start
	})
	if err := c.K.Run(); err != nil {
		return 0, err
	}
	return total, nil
}

// handType3: remote PPE <-> SPE, staged through a hand-coded PPE helper on
// the SPE's node.
func handType3(c *cluster.Cluster, cfg PingPongConfig) (sim.Time, error) {
	w, err := mpi.NewWorld(c, []mpi.Placement{{Node: 1, Label: "remote"}, {Node: 0, Label: "helper"}})
	if err != nil {
		return 0, err
	}
	node := c.Nodes[0]
	spe, _ := node.SPE(0)
	ctx, err := sdk.ContextCreate(c.K, spe)
	if err != nil {
		return 0, err
	}
	mainBuf, err := node.Mem.Alloc(cellbe.Align(cfg.Bytes, 128), 128)
	if err != nil {
		return 0, err
	}
	rounds := cfg.Reps + 1
	dmaSize := cellbe.Align(cfg.Bytes, 16)
	par := c.Params

	prog := &sdk.Program{Name: "hand_echo3", Main: func(sc *sdk.Context, _ int, _ any) {
		p := sc.Proc
		lsAddr, err := sc.SPE.LS.Alloc("buf", dmaSize, 128)
		if err != nil {
			p.Fatalf("%v", err)
		}
		for r := 0; r < rounds; r++ {
			sc.ReadInMbox(p)
			if cfg.Method == MethodDMA {
				sc.MFCGet(p, lsAddr, mainBuf, dmaSize, 1)
				sc.TagWait(p, 1<<1)
				sc.MFCPut(p, lsAddr, mainBuf, dmaSize, 2)
				sc.TagWait(p, 1<<2)
			}
			sc.WriteOutMbox(p, uint32(lsAddr))
		}
	}}
	if err := ctx.Load(prog, 0); err != nil {
		return 0, err
	}
	if err := ctx.Run(0, nil); err != nil {
		return 0, err
	}
	var total sim.Time
	c.K.Spawn("remote", func(p *sim.Proc) {
		buf := make([]byte, cfg.Bytes)
		var start sim.Time
		for r := 0; r < rounds; r++ {
			if r == 1 {
				start = p.Now()
			}
			w.Rank(0).Send(p, 1, 0, buf)
			w.Rank(0).Recv(p, 1, 0)
		}
		total = p.Now() - start
	})
	c.K.Spawn("helper", func(p *sim.Proc) {
		window, _ := node.Mem.Window(mainBuf, cfg.Bytes)
		for r := 0; r < rounds; r++ {
			w.Rank(1).RecvInto(p, 0, 0, window)
			if cfg.Method == MethodCopy {
				p.Advance(par.MemcpyTime(cfg.Bytes))
			}
			ctx.WriteInMbox(p, 1)
			ctx.ReadOutMbox(p)
			if cfg.Method == MethodCopy {
				p.Advance(par.MemcpyTime(cfg.Bytes))
			}
			w.Rank(1).Send(p, 0, 0, window)
		}
	})
	if err := c.K.Run(); err != nil {
		return 0, err
	}
	return total, nil
}

// handType4: SPE <-> local SPE, staged through main memory (two DMAs per
// direction for the DMA method; two mapped copies by a PPE helper for the
// Copy method).
func handType4(c *cluster.Cluster, cfg PingPongConfig) (sim.Time, error) {
	node := c.Nodes[0]
	s1, _ := node.SPE(0)
	s2, _ := node.SPE(1)
	ctx1, err := sdk.ContextCreate(c.K, s1)
	if err != nil {
		return 0, err
	}
	ctx2, err := sdk.ContextCreate(c.K, s2)
	if err != nil {
		return 0, err
	}
	mainBuf, err := node.Mem.Alloc(cellbe.Align(cfg.Bytes, 128), 128)
	if err != nil {
		return 0, err
	}
	rounds := cfg.Reps + 1
	dmaSize := cellbe.Align(cfg.Bytes, 16)
	par := c.Params
	var total sim.Time

	// Initiator SPE: sends, then waits for the echo.
	prog1 := &sdk.Program{Name: "hand4_init", Main: func(sc *sdk.Context, _ int, _ any) {
		p := sc.Proc
		lsAddr, _ := sc.SPE.LS.Alloc("buf", dmaSize, 128)
		var start sim.Time
		for r := 0; r < rounds; r++ {
			if r == 1 {
				start = p.Now()
			}
			if cfg.Method == MethodDMA {
				sc.MFCPut(p, lsAddr, mainBuf, dmaSize, 1)
				sc.TagWait(p, 1<<1)
			}
			sc.WriteOutMbox(p, 1) // tell the helper/peer data is staged
			sc.ReadInMbox(p)      // wait for the echo to be staged
			if cfg.Method == MethodDMA {
				sc.MFCGet(p, lsAddr, mainBuf, dmaSize, 2)
				sc.TagWait(p, 1<<2)
			}
		}
		total = p.Now() - start
	}}
	prog2 := &sdk.Program{Name: "hand4_echo", Main: func(sc *sdk.Context, _ int, _ any) {
		p := sc.Proc
		lsAddr, _ := sc.SPE.LS.Alloc("buf", dmaSize, 128)
		for r := 0; r < rounds; r++ {
			sc.ReadInMbox(p)
			if cfg.Method == MethodDMA {
				sc.MFCGet(p, lsAddr, mainBuf, dmaSize, 1)
				sc.TagWait(p, 1<<1)
				sc.MFCPut(p, lsAddr, mainBuf, dmaSize, 2)
				sc.TagWait(p, 1<<2)
			}
			sc.WriteOutMbox(p, 1)
		}
	}}
	if err := ctx1.Load(prog1, 0); err != nil {
		return 0, err
	}
	if err := ctx2.Load(prog2, 0); err != nil {
		return 0, err
	}
	if err := ctx1.Run(0, nil); err != nil {
		return 0, err
	}
	if err := ctx2.Run(0, nil); err != nil {
		return 0, err
	}
	// PPE helper relays the mailbox signals (and does the copies for the
	// Copy method — one mapped read plus one mapped write per hop).
	c.K.Spawn("helper", func(p *sim.Proc) {
		for r := 0; r < rounds; r++ {
			ctx1.ReadOutMbox(p)
			if cfg.Method == MethodCopy {
				p.Advance(2 * par.MemcpyTime(cfg.Bytes))
			}
			ctx2.WriteInMbox(p, 1)
			ctx2.ReadOutMbox(p)
			if cfg.Method == MethodCopy {
				p.Advance(2 * par.MemcpyTime(cfg.Bytes))
			}
			ctx1.WriteInMbox(p, 1)
		}
	})
	if err := c.K.Run(); err != nil {
		return 0, err
	}
	return total, nil
}

// handType5: SPE <-> remote SPE through two PPE helpers and MPI.
func handType5(c *cluster.Cluster, cfg PingPongConfig) (sim.Time, error) {
	w, err := mpi.NewWorld(c, []mpi.Placement{{Node: 0, Label: "h0"}, {Node: 1, Label: "h1"}})
	if err != nil {
		return 0, err
	}
	rounds := cfg.Reps + 1
	dmaSize := cellbe.Align(cfg.Bytes, 16)
	par := c.Params
	var total sim.Time

	type side struct {
		node *cellbe.Node
		ctx  *sdk.Context
		buf  int64
	}
	mkSide := func(nodeIdx int, prog *sdk.Program) (*side, error) {
		node := c.Nodes[nodeIdx]
		spe, _ := node.SPE(0)
		ctx, err := sdk.ContextCreate(c.K, spe)
		if err != nil {
			return nil, err
		}
		buf, err := node.Mem.Alloc(cellbe.Align(cfg.Bytes, 128), 128)
		if err != nil {
			return nil, err
		}
		if err := ctx.Load(prog, 0); err != nil {
			return nil, err
		}
		return &side{node: node, ctx: ctx, buf: buf}, nil
	}
	var s0, s1 *side
	prog0 := &sdk.Program{Name: "hand5_init", Main: func(sc *sdk.Context, _ int, _ any) {
		p := sc.Proc
		lsAddr, _ := sc.SPE.LS.Alloc("buf", dmaSize, 128)
		var start sim.Time
		for r := 0; r < rounds; r++ {
			if r == 1 {
				start = p.Now()
			}
			if cfg.Method == MethodDMA {
				sc.MFCPut(p, lsAddr, s0.buf, dmaSize, 1)
				sc.TagWait(p, 1<<1)
			}
			sc.WriteOutMbox(p, 1)
			sc.ReadInMbox(p)
			if cfg.Method == MethodDMA {
				sc.MFCGet(p, lsAddr, s0.buf, dmaSize, 2)
				sc.TagWait(p, 1<<2)
			}
		}
		total = p.Now() - start
	}}
	prog1 := &sdk.Program{Name: "hand5_echo", Main: func(sc *sdk.Context, _ int, _ any) {
		p := sc.Proc
		lsAddr, _ := sc.SPE.LS.Alloc("buf", dmaSize, 128)
		for r := 0; r < rounds; r++ {
			sc.ReadInMbox(p)
			if cfg.Method == MethodDMA {
				sc.MFCGet(p, lsAddr, s1.buf, dmaSize, 1)
				sc.TagWait(p, 1<<1)
				sc.MFCPut(p, lsAddr, s1.buf, dmaSize, 2)
				sc.TagWait(p, 1<<2)
			}
			sc.WriteOutMbox(p, 1)
		}
	}}
	if s0, err = mkSide(0, prog0); err != nil {
		return 0, err
	}
	if s1, err = mkSide(1, prog1); err != nil {
		return 0, err
	}
	if err := s0.ctx.Run(0, nil); err != nil {
		return 0, err
	}
	if err := s1.ctx.Run(0, nil); err != nil {
		return 0, err
	}
	c.K.Spawn("h0", func(p *sim.Proc) {
		win, _ := s0.node.Mem.Window(s0.buf, cfg.Bytes)
		for r := 0; r < rounds; r++ {
			s0.ctx.ReadOutMbox(p)
			if cfg.Method == MethodCopy {
				p.Advance(par.MemcpyTime(cfg.Bytes)) // LS -> main via mapping
			}
			w.Rank(0).Send(p, 1, 0, win)
			w.Rank(0).RecvInto(p, 1, 0, win)
			if cfg.Method == MethodCopy {
				p.Advance(par.MemcpyTime(cfg.Bytes)) // main -> LS via mapping
			}
			s0.ctx.WriteInMbox(p, 1)
		}
	})
	c.K.Spawn("h1", func(p *sim.Proc) {
		win, _ := s1.node.Mem.Window(s1.buf, cfg.Bytes)
		for r := 0; r < rounds; r++ {
			w.Rank(1).RecvInto(p, 0, 0, win)
			if cfg.Method == MethodCopy {
				p.Advance(par.MemcpyTime(cfg.Bytes))
			}
			s1.ctx.WriteInMbox(p, 1)
			s1.ctx.ReadOutMbox(p)
			if cfg.Method == MethodCopy {
				p.Advance(par.MemcpyTime(cfg.Bytes))
			}
			w.Rank(1).Send(p, 0, 0, win)
		}
	})
	if err := c.K.Run(); err != nil {
		return 0, err
	}
	return total, nil
}
