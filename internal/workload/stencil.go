package workload

import (
	"fmt"
	"math"

	"cellpilot/internal/cluster"
	"cellpilot/internal/core"
	"cellpilot/internal/sim"
)

// 1-D Jacobi heat diffusion over a ring of SPE processes with halo
// exchange on type-4 channels — the classic nearest-neighbour HPC
// pattern (examples/stencil is the runnable demonstration; this is the
// tested library form).

// StencilConfig configures a run.
type StencilConfig struct {
	// Workers is the number of SPE processes (≤ 16, one blade).
	Workers int
	// CellsPerWorker is the interior cells each worker owns.
	CellsPerWorker int
	// Iterations is the Jacobi step count.
	Iterations int
	// Alpha is the diffusion coefficient.
	Alpha float64
}

func (c StencilConfig) withDefaults() StencilConfig {
	if c.Workers == 0 {
		c.Workers = 8
	}
	if c.CellsPerWorker == 0 {
		c.CellsPerWorker = 64
	}
	if c.Iterations == 0 {
		c.Iterations = 20
	}
	if c.Alpha == 0 {
		c.Alpha = 0.25
	}
	return c
}

// StencilResult reports a run.
type StencilResult struct {
	Final   []float64
	Elapsed sim.Time
	// MaxErr is the largest deviation from the sequential reference.
	MaxErr float64
}

// StencilSequential computes the reference evolution.
func StencilSequential(cfg StencilConfig, init []float64) []float64 {
	cfg = cfg.withDefaults()
	n := len(init)
	u := make([]float64, n+2)
	copy(u[1:], init)
	next := make([]float64, n+2)
	for it := 0; it < cfg.Iterations; it++ {
		u[0], u[n+1] = 0, 0
		for i := 1; i <= n; i++ {
			next[i] = u[i] + cfg.Alpha*(u[i-1]-2*u[i]+u[i+1])
		}
		u, next = next, u
	}
	return append([]float64(nil), u[1:n+1]...)
}

// StencilInit builds the standard initial condition.
func StencilInit(n int) []float64 {
	init := make([]float64, n)
	for i := range init {
		init[i] = math.Sin(float64(i) / float64(n) * math.Pi * 3)
	}
	return init
}

// Stencil runs the distributed version on one simulated blade and
// compares against the sequential reference.
func Stencil(cfg StencilConfig) (StencilResult, error) {
	cfg = cfg.withDefaults()
	if cfg.Workers < 2 || cfg.Workers > 16 {
		return StencilResult{}, fmt.Errorf("workload: stencil needs 2..16 workers, got %d", cfg.Workers)
	}
	clu, err := cluster.New(cluster.Spec{CellNodes: 1, Seed: 9})
	if err != nil {
		return StencilResult{}, err
	}
	app := core.NewApp(clu, core.Options{SPECollectives: true})
	n := cfg.Workers * cfg.CellsPerWorker
	cw := cfg.CellsPerWorker
	chunkFmt := fmt.Sprintf("%%%dlf", cw)

	scatterCh := make([]*core.Channel, cfg.Workers)
	gatherCh := make([]*core.Channel, cfg.Workers)
	rightCh := make([]*core.Channel, cfg.Workers)
	leftCh := make([]*core.Channel, cfg.Workers)

	worker := &core.SPEProgram{Name: "stencil", Body: func(ctx *core.SPECtx) {
		id := ctx.Arg()
		u := make([]float64, cw+2)
		ctx.Read(scatterCh[id], "%*lf", cw, u[1:cw+1])
		next := make([]float64, cw+2)
		for it := 0; it < cfg.Iterations; it++ {
			recvLeft := make([]float64, 1)
			recvRight := make([]float64, 1)
			if id%2 == 0 {
				if id+1 < cfg.Workers {
					ctx.Write(rightCh[id], "%lf", u[cw])
					ctx.Read(leftCh[id+1], "%*lf", 1, recvRight)
				}
				if id > 0 {
					ctx.Write(leftCh[id], "%lf", u[1])
					ctx.Read(rightCh[id-1], "%*lf", 1, recvLeft)
				}
			} else {
				ctx.Read(rightCh[id-1], "%*lf", 1, recvLeft)
				ctx.Write(leftCh[id], "%lf", u[1])
				if id+1 < cfg.Workers {
					ctx.Read(leftCh[id+1], "%*lf", 1, recvRight)
					ctx.Write(rightCh[id], "%lf", u[cw])
				}
			}
			if id > 0 {
				u[0] = recvLeft[0]
			} else {
				u[0] = 0
			}
			if id+1 < cfg.Workers {
				u[cw+1] = recvRight[0]
			} else {
				u[cw+1] = 0
			}
			ctx.P.Advance(2 * sim.Microsecond) // SPU compute
			for i := 1; i <= cw; i++ {
				next[i] = u[i] + cfg.Alpha*(u[i-1]-2*u[i]+u[i+1])
			}
			u, next = next, u
		}
		ctx.Write(gatherCh[id], "%*lf", cw, u[1:cw+1])
	}}

	spes := make([]*core.Process, cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		spes[i] = app.CreateSPE(worker, app.Main(), i)
	}
	for i := 0; i < cfg.Workers; i++ {
		scatterCh[i] = app.CreateChannel(app.Main(), spes[i])
		gatherCh[i] = app.CreateChannel(spes[i], app.Main())
		if i+1 < cfg.Workers {
			rightCh[i] = app.CreateChannel(spes[i], spes[i+1])
		}
		if i > 0 {
			leftCh[i] = app.CreateChannel(spes[i], spes[i-1])
		}
	}
	scatter := app.CreateBundle(core.BundleScatter, scatterCh)
	gather := app.CreateBundle(core.BundleGather, gatherCh)

	init := StencilInit(n)
	res := StencilResult{Final: make([]float64, n)}
	err = app.Run(func(ctx *core.Ctx) {
		start := ctx.Now()
		for i, s := range spes {
			ctx.RunSPE(s, i, nil)
		}
		ctx.Scatter(scatter, chunkFmt, init)
		ctx.Gather(gather, chunkFmt, res.Final)
		res.Elapsed = ctx.Elapsed(start)
	})
	if err != nil {
		return StencilResult{}, err
	}
	want := StencilSequential(cfg, init)
	for i := range want {
		if d := math.Abs(res.Final[i] - want[i]); d > res.MaxErr {
			res.MaxErr = d
		}
	}
	return res, nil
}
