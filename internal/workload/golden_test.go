package workload

import (
	"testing"

	"cellpilot/internal/sim"
)

// TestTable2Golden pins the exact measured values of the calibrated
// model at the paper's repetition count. The simulation is deterministic,
// so any drift here means a change to the protocols or the calibration —
// which must be deliberate and re-recorded in EXPERIMENTS.md.
func TestTable2Golden(t *testing.T) {
	if testing.Short() {
		t.Skip("golden grid in short mode")
	}
	golden := map[[3]int]float64{ // {type, bytes, method} -> one-way µs
		{1, 1, 0}: 104.3, {1, 1, 1}: 98.0, {1, 1, 2}: 98.0,
		{1, 1600, 0}: 169.0, {1, 1600, 1}: 159.5, {1, 1600, 2}: 159.5,
		{2, 1, 0}: 63.0, {2, 1, 1}: 17.1, {2, 1, 2}: 16.0,
		{2, 1600, 0}: 70.0, {2, 1600, 1}: 17.2, {2, 1600, 2}: 30.5,
		{3, 1, 0}: 140.0, {3, 1, 1}: 115.1, {3, 1, 2}: 114.0,
		{3, 1600, 0}: 203.0, {3, 1600, 1}: 176.7, {3, 1600, 2}: 190.1,
		{4, 1, 0}: 112.0, {4, 1, 1}: 34.2, {4, 1, 2}: 32.0,
		{4, 1600, 0}: 126.0, {4, 1600, 1}: 34.3, {4, 1600, 2}: 61.1,
		{5, 1, 0}: 168.0, {5, 1, 1}: 132.2, {5, 1, 2}: 130.1,
		{5, 1600, 0}: 238.0, {5, 1600, 1}: 193.9, {5, 1600, 2}: 220.6,
	}
	for key, want := range golden {
		res, err := PingPong(PingPongConfig{
			Type: key[0], Bytes: key[1], Method: Method(key[2]), Reps: 1000,
		})
		if err != nil {
			t.Fatalf("%v: %v", key, err)
		}
		got := res.OneWay.Micros()
		if got < want-0.15 || got > want+0.15 {
			t.Errorf("type %d %dB %s: %.2fus, golden %.2fus",
				key[0], key[1], Method(key[2]), got, want)
		}
	}
}

// TestDeterminismAcrossGrid re-runs three representative cells and
// demands bit-identical virtual times.
func TestDeterminismAcrossGrid(t *testing.T) {
	for _, cfg := range []PingPongConfig{
		{Type: 2, Bytes: 1600, Method: MethodCellPilot, Reps: 100},
		{Type: 4, Bytes: 1, Method: MethodCellPilot, Reps: 100},
		{Type: 5, Bytes: 1600, Method: MethodCopy, Reps: 100},
	} {
		a, err := PingPong(cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := PingPong(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if a.OneWay != b.OneWay {
			t.Fatalf("%+v: %s vs %s", cfg, a.OneWay, b.OneWay)
		}
		if a.OneWay <= 0 || a.OneWay > sim.Millisecond {
			t.Fatalf("%+v: implausible %s", cfg, a.OneWay)
		}
	}
}
